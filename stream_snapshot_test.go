package watchman_test

import (
	"bytes"
	"testing"

	watchman "repro"
)

// TestGoldenTPCDStreamedSnapshot is the facade-level acceptance check for
// the streaming snapshot path: over a golden TPC-D-driven cache (adaptive
// admission included), the chunked streaming capture must emit exactly
// the bytes of the materialize-then-encode path, restore to the same
// report, and re-snapshot from the restored cache to the same bytes.
func TestGoldenTPCDStreamedSnapshot(t *testing.T) {
	tr, err := watchman.TPCDTrace(0.005, watchman.WorkloadConfig{Queries: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	newCache := func() (*watchman.Sharded, *watchman.AdmissionTuner) {
		tuner, err := watchman.NewAdmissionTuner(watchman.AdmissionConfig{
			Capacity: watchman.CacheBytesForFraction(tr, 0.25), K: 4, Window: 1 << 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		sc, err := watchman.NewSharded(watchman.ShardedConfig{
			Shards: 8,
			Cache: watchman.Config{
				Capacity: watchman.CacheBytesForFraction(tr, 0.25),
				K:        4,
				Policy:   watchman.LNCRA,
			},
			Tuner: tuner,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sc, tuner
	}

	sc, tuner := newCache()
	for i := range tr.Records {
		rec := &tr.Records[i]
		req := watchman.Request{
			QueryID:   rec.QueryID,
			Time:      rec.Time,
			Class:     rec.Class,
			Size:      rec.Size,
			Cost:      rec.Cost,
			Relations: rec.Relations,
			Payload:   []byte("rows"),
		}
		if rec.Plan != nil {
			req.Plan = rec.Plan
		}
		sc.Reference(req)
	}
	if _, ok := tuner.TuneOnce(); !ok {
		t.Fatal("tuning round did not score")
	}

	// The two capture paths must agree byte for byte on a quiesced cache.
	var old bytes.Buffer
	if err := watchman.WriteSnapshot(&old, sc.ExportState()); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	info, err := sc.StreamSnapshot(&streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old.Bytes(), streamed.Bytes()) {
		t.Fatalf("streamed TPC-D snapshot differs from ExportState+WriteSnapshot: %d vs %d bytes",
			streamed.Len(), old.Len())
	}
	if info.Resident != sc.Resident() || info.Bytes != int64(streamed.Len()) {
		t.Fatalf("SnapshotInfo %+v (cache resident %d, %d bytes)", info, sc.Resident(), streamed.Len())
	}

	// Both captures restore to the same report...
	restore := func(raw []byte) (*watchman.Sharded, watchman.RestoreReport) {
		dst, _ := newCache()
		rep, err := dst.Restore(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return dst, rep
	}
	dstOld, repOld := restore(old.Bytes())
	dstNew, repNew := restore(streamed.Bytes())
	if repOld != repNew {
		t.Fatalf("restore reports differ:\n  old path %+v\n  streamed %+v", repOld, repNew)
	}
	if err := dstNew.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// ...and the restored caches re-snapshot to the same bytes.
	var reOld, reNew bytes.Buffer
	if err := dstOld.Snapshot(&reOld); err != nil {
		t.Fatal(err)
	}
	if err := dstNew.Snapshot(&reNew); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reOld.Bytes(), reNew.Bytes()) {
		t.Fatal("re-snapshots of the two restored caches differ")
	}
	if !bytes.Equal(reNew.Bytes(), streamed.Bytes()) {
		t.Fatal("re-snapshot of the restored cache differs from the original capture")
	}
}
