package watchman

// This file exposes the simulation and experiment layers through the public
// API so that examples, tools and downstream users can replay traces and
// regenerate the paper's tables without reaching into internal packages.

import (
	"repro/internal/experiments"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Trace is a workload trace: a timestamped sequence of query submissions
// with sizes and execution costs.
type Trace = trace.Trace

// TraceRecord is one submission in a trace.
type TraceRecord = trace.Record

// TraceStats summarizes a trace, including the exact infinite-cache CSR and
// HR bounds.
type TraceStats = trace.Stats

// ComputeTraceStats scans a trace and returns its summary.
func ComputeTraceStats(t *Trace) TraceStats { return trace.ComputeStats(t) }

// WorkloadConfig parameterizes benchmark trace generation.
type WorkloadConfig = workload.Config

// TPCDTrace generates the paper's TPC-D benchmark trace. Scale 0 selects
// the paper's 30 MB database (scale factor 0.03 of TPC-D's 1 GB).
func TPCDTrace(scale float64, cfg WorkloadConfig) (*Trace, error) {
	_, tr, err := workload.StandardTPCD(scale, cfg)
	return tr, err
}

// SetQueryTrace generates the paper's Set Query benchmark trace. Scale 0
// selects the paper's 100 MB database.
func SetQueryTrace(scale float64, cfg WorkloadConfig) (*Trace, error) {
	_, tr, err := workload.StandardSetQuery(scale, cfg)
	return tr, err
}

// MulticlassTrace generates the three-class TPC-D extension workload with
// bursty per-class activity (§6 of the paper).
func MulticlassTrace(scale float64, cfg WorkloadConfig) (*Trace, error) {
	_, tr, err := workload.GenerateMulticlass(scale, workload.MulticlassConfig{Config: cfg})
	return tr, err
}

// SimResult is the outcome of replaying a trace against one configuration.
type SimResult = sim.Result

// Replay feeds a trace through a cache built from cfg and returns both the
// aggregate result and the cache for inspection.
func Replay(tr *Trace, cfg Config) (SimResult, *Cache, error) {
	return sim.Replay(tr, cfg)
}

// CacheBytesForFraction converts a cache-size percentage of the trace's
// database into bytes.
func CacheBytesForFraction(tr *Trace, pct float64) int64 {
	return sim.CacheBytesForFraction(tr, pct)
}

// ExperimentOptions scales the experiment suite; the zero value reproduces
// the paper's setup.
type ExperimentOptions = experiments.Options

// ExperimentSuite memoizes traces and runs the paper's figures.
type ExperimentSuite = experiments.Suite

// NewExperimentSuite creates an experiment suite.
func NewExperimentSuite(opts ExperimentOptions) *ExperimentSuite {
	return experiments.NewSuite(opts)
}

// DefaultPageSize is the storage page size used by the synthetic databases.
const DefaultPageSize = relation.DefaultPageSize

// BufferSimConfig parameterizes the WATCHMAN ↔ buffer-manager cooperation
// experiment (Figure 7 of the paper).
type BufferSimConfig = sim.BufferSimConfig

// BufferSimResult reports one cooperation run.
type BufferSimResult = sim.BufferSimResult

// RunWarehouseBufferSim runs the buffer-manager cooperation simulation over
// the §4.2 warehouse database (14 relations; scale 1 = the paper's 100 MB).
func RunWarehouseBufferSim(scale float64, cfg BufferSimConfig) (BufferSimResult, error) {
	if scale <= 0 {
		scale = 1
	}
	db := relation.Warehouse(scale, relation.DefaultPageSize)
	return sim.RunBufferSim(db, workload.WarehouseTemplates(db), cfg)
}
