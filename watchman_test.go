package watchman_test

import (
	"fmt"
	"testing"

	watchman "repro"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestPublicCacheAPI(t *testing.T) {
	cache, err := watchman.New(watchman.Config{
		Capacity: 10 << 10,
		K:        4,
		Policy:   watchman.LNCRA,
	})
	if err != nil {
		t.Fatal(err)
	}
	hit, _ := cache.Reference(watchman.Request{
		QueryID: "select sum(x) from t",
		Time:    1, Size: 64, Cost: 1000,
		Relations: []string{"t"},
		Payload:   []int64{42},
	})
	if hit {
		t.Fatal("first reference hit")
	}
	hit, payload := cache.Reference(watchman.Request{
		QueryID: "select  sum(x)  from t", // same query, different spacing
		Time:    2, Size: 64, Cost: 1000,
	})
	if !hit {
		t.Fatal("normalized resubmission missed")
	}
	if rows, ok := payload.([]int64); !ok || rows[0] != 42 {
		t.Fatalf("payload = %v", payload)
	}
	if got := cache.Stats().CostSavingsRatio(); got != 0.5 {
		t.Fatalf("CSR = %g", got)
	}
	if n := cache.Invalidate("t"); n != 1 {
		t.Fatalf("invalidated %d", n)
	}
}

func TestPublicPolicies(t *testing.T) {
	for _, p := range []watchman.PolicyKind{
		watchman.LRU, watchman.LRUK, watchman.LFU,
		watchman.LCS, watchman.LNCR, watchman.LNCRA,
	} {
		c, err := watchman.New(watchman.Config{Capacity: 1024, Policy: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		c.Reference(watchman.Request{QueryID: "q", Time: 1, Size: 10, Cost: 5})
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

func TestPublicIDHelpers(t *testing.T) {
	id := watchman.CompressID("select a,  b from t")
	if watchman.Signature(id) != watchman.Signature(id) {
		t.Fatal("signature unstable")
	}
}

func TestPublicTraceAndReplay(t *testing.T) {
	tr, err := watchman.TPCDTrace(0.005, watchman.WorkloadConfig{Queries: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := watchman.ComputeTraceStats(tr)
	if st.Queries != 1000 {
		t.Fatalf("stats queries = %d", st.Queries)
	}
	res, cache, err := watchman.Replay(tr, watchman.Config{
		Capacity: watchman.CacheBytesForFraction(tr, 1),
		K:        4,
		Policy:   watchman.LNCRA,
		Evictor:  watchman.HeapEvictor,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CSR() <= 0 || res.CSR() > st.MaxCostSavings+1e-9 {
		t.Fatalf("CSR = %g (bound %g)", res.CSR(), st.MaxCostSavings)
	}
	if err := cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSetQueryAndMulticlass(t *testing.T) {
	sq, err := watchman.SetQueryTrace(0.02, watchman.WorkloadConfig{Queries: 600, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sq.Len() != 600 {
		t.Fatal("setquery trace length")
	}
	mc, err := watchman.MulticlassTrace(0.005, watchman.WorkloadConfig{Queries: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Len() != 600 {
		t.Fatal("multiclass trace length")
	}
}

func TestPublicLNCStar(t *testing.T) {
	items := []watchman.Item{
		{ID: "hot", Prob: 0.9, Cost: 100, Size: 10},
		{ID: "cold", Prob: 0.1, Cost: 1, Size: 10},
	}
	sel := watchman.LNCStar(items, 10)
	if !sel[0] || sel[1] {
		t.Fatalf("selection = %v", sel)
	}
	if s := watchman.ExpectedCostSavings(items, sel); s <= 0.9 {
		t.Fatalf("savings = %g", s)
	}
}

func TestPublicBufferSim(t *testing.T) {
	res, err := watchman.RunWarehouseBufferSim(0.05, watchman.BufferSimConfig{
		Queries: 200, Seed: 6, PoolBytes: 1 << 20, CacheBytes: 1 << 20, P0: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PageReferences == 0 {
		t.Fatal("buffer sim did nothing")
	}
}

func TestPublicExperimentSuite(t *testing.T) {
	s := watchman.NewExperimentSuite(watchman.ExperimentOptions{Queries: 800, Seed: 7})
	tb, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("figure 2 rows = %d", len(tb.Rows))
	}
}

func TestPublicShardedAPI(t *testing.T) {
	var loads int
	cache, err := watchman.NewSharded(watchman.ShardedConfig{
		Shards: 4,
		Cache:  watchman.Config{Capacity: 1 << 20, K: 4, Policy: watchman.LNCRA},
		Loader: func(req watchman.Request) (any, int64, float64, error) {
			loads++
			return "rows", 128, 900, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cache.NumShards() != 4 {
		t.Fatalf("shards = %d", cache.NumShards())
	}
	payload, hit, err := cache.Load(watchman.Request{QueryID: "select sum(x) from t"})
	if err != nil || hit || payload != "rows" {
		t.Fatalf("first Load: payload=%v hit=%v err=%v", payload, hit, err)
	}
	payload, hit, err = cache.Load(watchman.Request{QueryID: "select  sum(x)  from t"})
	if err != nil || !hit || payload != "rows" {
		t.Fatalf("second Load: payload=%v hit=%v err=%v", payload, hit, err)
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	st := cache.Stats()
	if st.References != 2 || st.Hits != 1 || st.LoaderCalls != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if hit, _ := cache.Reference(watchman.Request{QueryID: "other", Size: 64, Cost: 10}); hit {
		t.Fatal("fresh Reference cannot hit")
	}
	if clock := watchman.WallClock(); clock() < 0 {
		t.Fatal("wall clock negative")
	}
	if watchman.DefaultShards != 16 {
		t.Fatalf("DefaultShards = %d", watchman.DefaultShards)
	}
}

func TestPublicAdaptiveAdmissionAPI(t *testing.T) {
	tuner, err := watchman.NewAdmissionTuner(watchman.AdmissionConfig{Capacity: 1 << 20, K: 2, Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if got := tuner.Threshold(); got != 1 {
		t.Fatalf("initial threshold = %g, want the static LNC-A setting 1", got)
	}
	cache, err := watchman.NewSharded(watchman.ShardedConfig{
		Shards: 2,
		Cache:  watchman.Config{Capacity: 1 << 20, K: 2, Policy: watchman.LNCRA},
		Tuner:  tuner,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Tuner() != tuner {
		t.Fatal("Sharded.Tuner() must return the installed tuner")
	}
	for i := 0; i < 64; i++ {
		cache.Reference(watchman.Request{
			QueryID: fmt.Sprintf("select %d", i%8), Size: 256, Cost: 100,
		})
	}
	round, ok := tuner.TuneOnce()
	if !ok || round.Samples != 64 {
		t.Fatalf("tuning round = %+v ok=%v, want 64 samples", round, ok)
	}

	// A custom Admitter plugs into the single-threaded cache too: one that
	// rejects everything keeps the cache empty under pressure.
	never := watchman.AdmitterFunc(func(watchman.AdmissionDecision) bool { return false })
	c, err := watchman.New(watchman.Config{Capacity: 1024, K: 1, Policy: watchman.LRU, Admitter: never})
	if err != nil {
		t.Fatal(err)
	}
	c.Reference(watchman.Request{QueryID: "a", Time: 1, Size: 600, Cost: 1})
	c.Reference(watchman.Request{QueryID: "b", Time: 2, Size: 600, Cost: 1})
	if c.Resident() != 1 {
		t.Fatalf("resident = %d, want 1 (second set needs an eviction and the admitter refused)", c.Resident())
	}
	if !watchman.LNCA().Admit(watchman.AdmissionDecision{Profit: 2, Bar: 1}) {
		t.Fatal("LNCA must admit profit 2 over bar 1")
	}
}
