// Command drilldown reproduces the paper's headline comparison on a
// generated TPC-D drill-down workload: the same trace replayed under
// vanilla LRU, LNC-R and LNC-RA at several cache sizes, showing the
// cost-savings-ratio gap that motivates cost/size-aware caching.
//
// Run with:
//
//	go run ./examples/drilldown [-queries 8000] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	watchman "repro"
)

func main() {
	queries := flag.Int("queries", 8000, "trace length")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	tr, err := watchman.TPCDTrace(0, watchman.WorkloadConfig{
		Queries: *queries,
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := watchman.ComputeTraceStats(tr)
	fmt.Printf("TPC-D drill-down trace: %d queries, %d unique, infinite-cache CSR %.3f\n\n",
		st.Queries, st.Unique, st.MaxCostSavings)

	policies := []struct {
		name   string
		policy watchman.PolicyKind
		k      int
	}{
		{"LRU", watchman.LRU, 1},
		{"LNC-R", watchman.LNCR, 4},
		{"LNC-RA", watchman.LNCRA, 4},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cache\tpolicy\tCSR\tHR\tadmitted\trejected\tevicted")
	for _, pct := range []float64{0.5, 1, 2} {
		capacity := watchman.CacheBytesForFraction(tr, pct)
		for _, p := range policies {
			res, _, err := watchman.Replay(tr, watchman.Config{
				Capacity: capacity,
				K:        p.k,
				Policy:   p.policy,
			})
			if err != nil {
				log.Fatal(err)
			}
			s := res.Stats
			fmt.Fprintf(w, "%.1f%%\t%s\t%.3f\t%.3f\t%d\t%d\t%d\n",
				pct, p.name, res.CSR(), res.HR(), s.Admissions, s.Rejections, s.Evictions)
		}
		fmt.Fprintln(w, "\t\t\t\t\t\t")
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("LNC-RA keeps the expensive, small, frequently re-referenced aggregates")
	fmt.Println("and refuses the cheap bulky sets; LRU caches whatever came last.")
}
