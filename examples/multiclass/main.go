// Command multiclass runs the paper's §6 future-work scenario: a workload
// of several query classes with distinct, bursty reference characteristics.
// This is the environment where keeping more than the last reference time
// (K > 1) pays off — a single reference time cannot distinguish a set from
// a burst-active class from one that merely got touched once.
//
// Run with:
//
//	go run ./examples/multiclass [-queries 8000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	watchman "repro"
)

func main() {
	queries := flag.Int("queries", 8000, "trace length")
	seed := flag.Int64("seed", 5, "workload seed")
	flag.Parse()

	tr, err := watchman.MulticlassTrace(0, watchman.WorkloadConfig{
		Queries: *queries,
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Count the class mix for context.
	classes := map[int]int{}
	for i := range tr.Records {
		classes[tr.Records[i].Class]++
	}
	fmt.Printf("three-class TPC-D stream: %d queries (class mix:", len(tr.Records))
	for c := 0; c < len(classes); c++ {
		fmt.Printf(" %d:%d", c, classes[c])
	}
	fmt.Println(")")
	fmt.Println()

	capacity := watchman.CacheBytesForFraction(tr, 1)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "K\tLNC-RA CSR\tLRU-K CSR")
	for k := 1; k <= 5; k++ {
		lnc, _, err := watchman.Replay(tr, watchman.Config{
			Capacity: capacity, K: k, Policy: watchman.LNCRA,
		})
		if err != nil {
			log.Fatal(err)
		}
		lruk, _, err := watchman.Replay(tr, watchman.Config{
			Capacity: capacity, K: k, Policy: watchman.LRUK,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", k, lnc.CSR(), lruk.CSR())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("cache = 1% of the database. LRU-K dips while K is smaller than the")
	fmt.Println("correlated burst length and recovers once K exceeds it; LNC-RA stays")
	fmt.Println("flat because LNC-A already refuses the one-shot noise at admission.")
}
