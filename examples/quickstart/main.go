// Command quickstart shows the minimal WATCHMAN workflow: create a cache
// with the LNC-RA policy, present query submissions to it, and read the
// paper's metrics back.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	watchman "repro"
)

func main() {
	// A 3 KiB cache with the paper's integrated replacement + admission
	// policy and a 4-reference sliding window.
	cache, err := watchman.New(watchman.Config{
		Capacity: 3072,
		K:        4,
		Policy:   watchman.LNCRA,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three warehouse queries with very different profiles:
	//   sum   — expensive to compute (a 25 000-block-read join), tiny result.
	//   avg   — moderately expensive aggregate, tiny result.
	//   proj  — cheap projection whose retrieved set would evict everything
	//           else in the cache. LNC-A exists to keep this one out.
	type query struct {
		id   string
		size int64
		cost float64
		rels []string
	}
	sum := query{"select sum(revenue) from sales group by region", 96, 25000, []string{"sales"}}
	avg := query{"select avg(price) from lineitem where year = 1995", 8, 9000, []string{"lineitem"}}
	proj := query{"select distinct custkey, name from customer", 3000, 40, []string{"customer"}}

	submit := func(q query, at float64) {
		hit, _ := cache.Reference(watchman.Request{
			QueryID:   q.id,
			Time:      at,
			Size:      q.size,
			Cost:      q.cost,
			Relations: q.rels,
			Payload:   fmt.Sprintf("<retrieved set of %q>", q.id),
		})
		status := "miss"
		if hit {
			status = "hit "
		}
		fmt.Printf("t=%5.1fs  %s  %-55.55s\n", at, status, q.id)
	}

	// The expensive aggregates repeat — classic drill-down behaviour —
	// while the big projection shows up now and then.
	t := 0.0
	for round := 0; round < 4; round++ {
		submit(sum, t+1)
		submit(avg, t+3)
		submit(proj, t+5)
		t += 10
	}

	stats := cache.Stats()
	fmt.Println()
	fmt.Printf("references        %d\n", stats.References)
	fmt.Printf("hits              %d\n", stats.Hits)
	fmt.Printf("hit ratio         %.3f\n", stats.HitRatio())
	fmt.Printf("cost savings      %.3f  (the paper's CSR metric)\n", stats.CostSavingsRatio())
	fmt.Printf("admissions        %d\n", stats.Admissions)
	fmt.Printf("rejected by LNC-A %d\n", stats.Rejections)

	// Coherence: a warehouse update to the sales relation invalidates the
	// cached sum (the cache tracks base relations per entry).
	fmt.Printf("\nresident sets before update: %d\n", cache.Resident())
	dropped := cache.Invalidate("sales")
	fmt.Printf("after updating relation sales: %d set(s) invalidated, resident=%d\n",
		dropped, cache.Resident())
}
