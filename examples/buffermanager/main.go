// Command buffermanager demonstrates the WATCHMAN ↔ buffer-manager
// cooperation of §3 of the paper: after caching a retrieved set, WATCHMAN
// hints the buffer pool to demote pages that became p₀-redundant (most of
// the queries referencing them are now served from the retrieved-set
// cache). A well-chosen threshold frees buffer space for pages that still
// matter; an aggressive one (p₀ → 0) degenerates toward MRU and hurts.
//
// Run with:
//
//	go run ./examples/buffermanager [-queries 3000]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	watchman "repro"
)

func main() {
	queries := flag.Int("queries", 4000, "number of queries to simulate")
	seed := flag.Int64("seed", 3, "workload seed")
	flag.Parse()

	// The paper's §4.2 configuration: 100 MB warehouse, 15 MB buffer pool,
	// 15 MB WATCHMAN cache. Each threshold replays the full workload, so
	// this example takes a minute or two.
	base := watchman.BufferSimConfig{
		Queries:    *queries,
		Seed:       *seed,
		PoolBytes:  15 << 20,
		CacheBytes: 15 << 20,
	}

	fmt.Println("buffer pool hit ratio as the hint threshold p0 varies")
	fmt.Println("(14-relation warehouse, LNC-RA retrieved-set cache in front of the pool)")
	fmt.Println()

	run := func(label string, p0 float64) {
		cfg := base
		cfg.P0 = p0
		res, err := watchman.RunWarehouseBufferSim(1, cfg)
		if err != nil {
			log.Fatal(err)
		}
		hr := res.BufferHitRatio()
		bar := strings.Repeat("#", int(hr*50))
		fmt.Printf("%-9s HR %.3f  %-50s  (refs %d, hints %d, demotions %d)\n",
			label, hr, bar, res.PageReferences, res.HintsSent, res.PagesDemoted)
	}

	run("no hints", -1)
	for _, p0 := range []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.0} {
		run(fmt.Sprintf("p0=%.0f%%", p0*100), p0)
	}

	fmt.Println()
	fmt.Println("Selective thresholds beat the no-hint baseline; aggressive ones demote")
	fmt.Println("pages the ad-hoc queries still need and forfeit the gain.")
}
