// Package shard provides a concurrent, sharded front for the WATCHMAN
// cache. The single-threaded core.Cache is deliberately lock-free and
// deterministic; this package partitions total capacity across a
// power-of-two number of shards, each owning a mutex-guarded core.Cache,
// and routes every request by the same signature hash the core's lookup
// index uses (core.Signature of the compressed query ID). Because a query
// ID always hashes to the same shard, each shard observes a coherent
// sub-trace and the LNC-R/LNC-A profit accounting stays exact per shard.
//
// On top of the partitioning the package adds the two features a serving
// deployment needs that a trace replayer does not:
//
//   - singleflight miss coalescing: when a Loader is configured, N
//     concurrent Load calls for the same (not yet cached) query ID execute
//     the query once; the followers block on the leader's flight and then
//     charge an ordinary reference against the freshly admitted set.
//   - a wall-clock time source: core works in logical seconds from the
//     trace; WallClock adapts real time to that scale so live traffic and
//     replayed traces share one λ (reference-rate) estimator.
package shard

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	flightrec "repro/internal/flight" // aliased: this package's singleflight struct is also named flight
	"repro/internal/telemetry"
	"repro/internal/whatif"
)

// Request is one query submission; it aliases core.Request so callers of
// the concurrent layer need not import core.
type Request = core.Request

// Loader executes a query on behalf of the cache when a Load call misses.
// It returns the materialized retrieved set, its size in bytes and the
// execution cost in logical block reads — exactly the quantities a trace
// record carries. The loader runs outside all shard locks.
type Loader func(req core.Request) (payload any, size int64, cost float64, err error)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 16

// Config parameterizes a Sharded cache.
type Config struct {
	// Shards is the number of partitions; it must be a power of two.
	// Zero selects DefaultShards.
	Shards int
	// Cache configures every shard's core.Cache. Capacity is the TOTAL
	// across all shards and is split evenly; the remainder bytes go to the
	// low-numbered shards. The per-shard callbacks (OnAdmit, OnEvict,
	// OnReject) are invoked with the owning shard's mutex held and must
	// not call back into the Sharded cache.
	Cache core.Config
	// Loader, if non-nil, enables the Load path with singleflight miss
	// coalescing.
	Loader Loader
	// Deriver, if non-nil, enables semantic derivation: every shard's
	// cache consults it on the Reference miss path, and Load tries a
	// derivation inside the singleflight flight before running the Loader
	// — concurrent misses on the same query coalesce onto one derivation
	// exactly as they coalesce onto one loader execution. The same
	// Deriver instance is shared by all shards (it synchronizes
	// internally) and observes every shard's lifecycle events.
	Deriver core.Deriver
	// Registry, if non-nil, receives every cache lifecycle event: each
	// shard's core cache gets a per-shard sink fanning into this one
	// registry (composed with any Cache.Sink the caller configured), the
	// Load path's loader executions are timed into its latency histogram,
	// and the external-miss outcomes Load charges via Cache.Account are
	// counted. GET /metrics and the per-class /stats sections read it.
	Registry *telemetry.Registry
	// Tuner, if non-nil, enables adaptive admission: every shard's cache
	// is gated by the tuner's published threshold (overriding
	// Cache.Admitter), every reference is recorded into a per-shard
	// profile, and a background tuning round runs whenever the window
	// fills. The hot-path threshold read is a single atomic load; shadow
	// replays run off the request path.
	Tuner *admission.Tuner
	// Recorder, if non-nil, enables the flight recorder: every shard's
	// cache gets a per-shard span tracer and decision sink writing into
	// the recorder's rings, and loader/derivation executions on the Load
	// path are timed so spans attribute their wall time. Nil keeps the
	// lifecycle untraced (zero overhead beyond a nil check per hook).
	Recorder *flightrec.Recorder
	// WhatIf, if non-nil, attaches the ghost-cache matrix: every shard's
	// lifecycle events fan into it (sampled references feed the
	// counterfactual grid), Invalidate forwards coherence to the ghosts
	// exactly as it does to the admission tuner's shadows, and Close
	// stops the matrix worker after the queued slice is applied. The
	// caller builds the matrix (whatif.New) from the same total-capacity
	// Config passed here.
	WhatIf *whatif.Matrix
	// Now supplies the logical-seconds timestamp for requests whose Time
	// is zero. Nil selects WallClock(), anchored at construction.
	Now func() float64
	// Buffered enables the contention-free hit path: hits are answered
	// from a per-shard lock-free read index and their recency/λ/profit
	// bookkeeping is applied in batches by a per-shard worker. See the
	// package comment in buffered.go for the consistency model; Drain is
	// the synchronization barrier.
	Buffered bool
	// PromoteBuffer is the per-shard promotion queue depth (buffered mode
	// only; zero selects DefaultPromoteBuffer). When the queue is full a
	// hit is still served and counted, but its bookkeeping is shed —
	// counted in Stats.PromotesSkipped.
	PromoteBuffer int
	// DeleteBuffer is the per-shard maintenance queue depth (buffered mode
	// only; zero selects DefaultDeleteBuffer). It carries drain barriers
	// and the worker stop signal; unlike promotions these never drop — a
	// full buffer blocks the producer.
	DeleteBuffer int
	// GetsPerPromote applies deferred bookkeeping for one hit in N
	// (buffered mode only; zero or one applies every hit). Values above
	// one trade λ-estimation fidelity for throughput; sampled-out hits are
	// still counted, in Stats.PromotesSampled.
	GetsPerPromote int
}

// Stats aggregates the core counters across shards and adds the
// concurrency layer's own counters.
type Stats struct {
	core.Stats
	// LoaderCalls is the number of times the Loader actually executed.
	LoaderCalls int64 `json:"loader_calls"`
	// Coalesced is the number of Load calls that were served by waiting on
	// another caller's in-flight execution of the same query.
	Coalesced int64 `json:"coalesced"`
	// Derivations is the number of singleflight flights answered by
	// semantic derivation instead of a loader execution. Followers that
	// waited on such a flight are counted in Coalesced as usual.
	Derivations int64 `json:"derivations"`
	// BufferedHits is the number of hits served by buffered mode's
	// lock-free read index (zero with Buffered off).
	BufferedHits int64 `json:"buffered_hits,omitempty"`
	// PromotesSkipped counts buffered hits whose deferred bookkeeping was
	// shed because the promote buffer was full. The references, cost
	// savings and bytes of shed hits are still counted above — only their
	// recency/λ signal was lost.
	PromotesSkipped int64 `json:"promotes_skipped,omitempty"`
	// PromotesSampled counts buffered hits whose deferred bookkeeping was
	// skipped by GetsPerPromote sampling (their counts, too, are included
	// above).
	PromotesSampled int64 `json:"promotes_sampled,omitempty"`
	// PendingApplies is the number of promotions enqueued but not yet
	// applied at the instant Stats was read — a queue-depth gauge, not a
	// counter; zero right after Drain.
	PendingApplies int64 `json:"pending_applies,omitempty"`
}

// flight is one in-progress loader execution that followers wait on.
type flight struct {
	wg      sync.WaitGroup
	payload any
	size    int64
	cost    float64
	err     error
	// stale is set when the query's base relations were invalidated while
	// the loader ran: the result may predate the update, so neither the
	// leader nor any follower admits it.
	stale bool
	// derivation is non-nil when the leader answered the flight by
	// semantic derivation instead of running the loader; size and cost
	// then carry the derived-set size and the remote-cost basis.
	derivation *core.Derivation
	// execNanos is the wall time the leader spent in the loader (or the
	// derivation attempt), measured outside the shard lock; the flight
	// recorder attributes it to the span's load/derive stage. Zero when
	// untimed.
	execNanos int64
	// epoch is the shard's invalidation epoch at the moment the leader
	// admitted the result; followers re-check their relations against it
	// under the lock so an invalidation landing after the admission cannot
	// be undone by a follower re-admitting the payload.
	epoch uint64
}

// shard is one partition: a mutex-guarded core cache plus the in-flight
// load table for singleflight coalescing.
type shard struct {
	mu       sync.Mutex
	cache    *core.Cache
	inflight map[string]*flight
	// epoch counts invalidations and invalEpoch records the epoch at which
	// each base relation was last invalidated; flights compare them across
	// their loader execution to detect a coherence event that actually
	// touches their query's relations.
	epoch      uint64
	invalEpoch map[string]uint64
	// clearedAt is the epoch at which invalEpoch was last pruned. Flights
	// older than it are conservatively treated as stale (their entries
	// may have been pruned), which keeps pruning safe: a false positive
	// only skips caching one result, never serves a stale one.
	clearedAt uint64
	// profile receives every reference this shard serves when adaptive
	// admission is enabled; nil otherwise. It has its own tiny mutex, so
	// recording happens outside the shard lock.
	profile *admission.Profile
	// buf is the buffered-mode state (read index, promotion queue,
	// deferred cells); nil when Config.Buffered is off.
	buf *shardBuffers
}

// observe records one served reference into the shard's admission profile
// (outside the shard lock) and triggers a background tuning round when the
// window fills. It is a no-op without a tuner.
func (sh *shard) observe(tuner *admission.Tuner, id string, sig uint64, size int64, cost, t float64, relations []string) {
	if sh.profile == nil {
		return
	}
	if sh.profile.Record(admission.Sample{ID: id, Sig: sig, Size: size, Cost: cost, Time: t, Relations: relations}) {
		tuner.TriggerAsync()
	}
}

// staleSince reports whether any of the given relations was invalidated
// after the epoch snapshot. Must be called with mu held. A query that
// declares no relations has opted out of coherence and is never stale; a
// flight older than the last invalEpoch prune is conservatively stale.
func (sh *shard) staleSince(relations []string, epoch uint64) bool {
	if len(relations) == 0 {
		return false
	}
	if epoch < sh.clearedAt {
		return true
	}
	for _, r := range relations {
		if sh.invalEpoch[r] > epoch {
			return true
		}
	}
	return false
}

// Sharded is a concurrent cache partitioned over multiple core.Cache
// instances. All methods are safe for concurrent use.
type Sharded struct {
	shards  []*shard
	mask    uint64
	loader  Loader
	now     func() float64
	tuner   *admission.Tuner
	reg     *telemetry.Registry
	deriver core.Deriver
	rec     *flightrec.Recorder
	whatif  *whatif.Matrix

	loaderCalls atomic.Int64
	coalesced   atomic.Int64
	derivations atomic.Int64

	// Buffered-mode state: getsPerPromote is the resolved sampling stride,
	// closed gates the fast path off once Close has stopped the workers,
	// and workerWG tracks the per-shard apply workers.
	buffered       bool
	getsPerPromote int
	closed         atomic.Bool
	workerWG       sync.WaitGroup
}

// New creates a sharded cache. The configuration must name a power-of-two
// shard count and enough capacity for every shard to hold at least one
// byte of payload.
func New(cfg Config) (*Sharded, error) {
	n := cfg.Shards
	if n == 0 {
		n = DefaultShards
	}
	if n < 1 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("shard: shard count %d is not a power of two", n)
	}
	per, rem := cfg.Cache.Capacity/int64(n), cfg.Cache.Capacity%int64(n)
	if cfg.Cache.Capacity == core.Unlimited {
		per, rem = core.Unlimited, 0
	}
	if per <= 0 {
		return nil, fmt.Errorf("shard: capacity %d spread over %d shards leaves nothing per shard",
			cfg.Cache.Capacity, n)
	}
	if cfg.PromoteBuffer < 0 || cfg.DeleteBuffer < 0 || cfg.GetsPerPromote < 0 {
		return nil, fmt.Errorf("shard: negative buffer sizing (promote %d, delete %d, gets-per-promote %d)",
			cfg.PromoteBuffer, cfg.DeleteBuffer, cfg.GetsPerPromote)
	}
	s := &Sharded{
		shards:         make([]*shard, n),
		mask:           uint64(n - 1),
		loader:         cfg.Loader,
		now:            cfg.Now,
		tuner:          cfg.Tuner,
		reg:            cfg.Registry,
		deriver:        cfg.Deriver,
		rec:            cfg.Recorder,
		whatif:         cfg.WhatIf,
		buffered:       cfg.Buffered,
		getsPerPromote: max(cfg.GetsPerPromote, 1),
	}
	if s.now == nil {
		s.now = WallClock()
	}
	promoteDepth, deleteDepth := cfg.PromoteBuffer, cfg.DeleteBuffer
	if promoteDepth == 0 {
		promoteDepth = DefaultPromoteBuffer
	}
	if deleteDepth == 0 {
		deleteDepth = DefaultDeleteBuffer
	}
	for i := range s.shards {
		scfg := cfg.Cache
		scfg.Capacity = per
		if int64(i) < rem {
			scfg.Capacity++
		}
		if s.deriver != nil {
			// Every shard consults the shared deriver on its miss path;
			// core.New also wires it into the shard's event stream so the
			// candidate index sees all admissions and departures.
			scfg.Deriver = s.deriver
		}
		if s.tuner != nil {
			scfg.Admitter = s.tuner.Admitter()
		}
		if s.reg != nil {
			// Fan this shard's lifecycle events into the shared registry,
			// preserving any sink the caller installed.
			scfg.Sink = core.MultiSink(scfg.Sink, s.reg.ShardSink(i))
		}
		if s.rec != nil {
			// The flight recorder taps both hooks: spans via the tracer,
			// admission/eviction decision records via the event stream.
			scfg.Tracer = s.rec.ShardTracer(i)
			scfg.Sink = core.MultiSink(scfg.Sink, s.rec.ShardSink(i))
		}
		if s.whatif != nil {
			// All shards share one matrix: its Emit only samples, counts
			// and enqueues, so it is safe (and cheap) under any shard's
			// lock.
			scfg.Sink = core.MultiSink(scfg.Sink, s.whatif)
		}
		var buf *shardBuffers
		if s.buffered {
			// The read index rides the shard's event stream: admissions and
			// restores store, evictions and invalidations delete — all
			// under the shard lock, so index and residency never diverge.
			buf = &shardBuffers{
				promote: make(chan promotion, promoteDepth),
				ops:     make(chan bufOp, deleteDepth),
				stopped: make(chan struct{}),
				batch:   make([]promotion, 0, applyBatchSize),
			}
			scfg.Sink = core.MultiSink(scfg.Sink, indexSink{buf: buf})
		}
		c, err := core.New(scfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards[i] = &shard{
			cache:      c,
			inflight:   make(map[string]*flight),
			invalEpoch: make(map[string]uint64),
			buf:        buf,
		}
		if s.tuner != nil {
			s.shards[i].profile = s.tuner.NewProfile()
		}
	}
	if s.buffered {
		for _, sh := range s.shards {
			s.workerWG.Add(1)
			go s.worker(sh)
		}
	}
	return s, nil
}

// NumShards returns the number of partitions.
func (s *Sharded) NumShards() int { return len(s.shards) }

// shardFor routes a signature to its shard.
func (s *Sharded) shardFor(sig uint64) *shard { return s.shards[sig&s.mask] }

// timestamp resolves a request time: zero means "now" per the time source.
func (s *Sharded) timestamp(t float64) float64 {
	if t == 0 {
		return s.now()
	}
	return t
}

// Reference processes one query submission exactly as core.Cache.Reference
// does — hit returns the cached payload, miss runs admission/replacement —
// under the owning shard's lock. A zero Request.Time is replaced by the
// configured time source.
//
//watchman:accounted
func (s *Sharded) Reference(req core.Request) (hit bool, payload any) {
	id := core.CompressID(req.QueryID)
	req.QueryID = id
	req.Time = s.timestamp(req.Time)
	sig := core.Signature(id)
	sh := s.shardFor(sig)
	if s.buffered && !s.closed.Load() {
		if v, ok := sh.buf.index.Load(id); ok {
			// Lock-free hit: serve the payload snapshot and defer the
			// bookkeeping, charging the request's cost as the locked hit
			// path would.
			re := v.(*readEntry)
			s.fastHit(sh, re, req.Time, req.Class, req.Cost)
			return true, re.payload
		}
	}
	sh.mu.Lock()
	hit, payload = sh.cache.ReferenceCanonical(req, sig)
	sh.mu.Unlock()
	sh.observe(s.tuner, id, sig, req.Size, req.Cost, req.Time, req.Relations)
	return hit, payload
}

// Tuner returns the adaptive admission tuner, or nil when the cache runs
// a static admission policy.
func (s *Sharded) Tuner() *admission.Tuner { return s.tuner }

// Deriver returns the semantic deriver the cache consults on misses, or
// nil when derivation is disabled.
func (s *Sharded) Deriver() core.Deriver { return s.deriver }

// Registry returns the telemetry registry the cache's lifecycle events
// fan into, or nil when none was configured.
func (s *Sharded) Registry() *telemetry.Registry { return s.reg }

// FlightRecorder returns the flight recorder capturing this cache's spans
// and decision records, or nil when tracing is disabled.
func (s *Sharded) FlightRecorder() *flightrec.Recorder { return s.rec }

// WhatIf returns the ghost-cache matrix fed by this cache's event stream,
// or nil when what-if observability is disabled.
func (s *Sharded) WhatIf() *whatif.Matrix { return s.whatif }

// accountExternal charges a Load outcome that never reached the core miss
// lifecycle — a stale singleflight result or a failed loader execution —
// into the owning shard's Stats as an external miss, so the CSR and
// hit-ratio denominators stay honest under invalidation churn (the
// reference consulted the cache; pretending it never happened would
// overstate savings).
//
//watchman:accounting
func (s *Sharded) accountExternal(sh *shard, req core.Request) {
	sh.mu.Lock()
	sh.cache.Account(req, false)
	sh.mu.Unlock()
}

// Load looks the query up and, on a miss, executes it through the
// configured Loader with singleflight coalescing: concurrent Load calls
// for the same query ID run the loader once and share its result. The
// request's Size and Cost are ignored (the loader supplies them); a zero
// Time is replaced by the time source.
//
//watchman:accounted
func (s *Sharded) Load(req core.Request) (payload any, hit bool, err error) {
	if s.loader == nil {
		// A misconfigured front never consulted the cache: nothing was
		// looked up, so there is no reference to charge.
		//lint:ignore accounthonesty config error precedes the lookup; the cache was never consulted
		return nil, false, fmt.Errorf("shard: no Loader configured")
	}
	id := core.CompressID(req.QueryID)
	req.QueryID = id
	req.Time = s.timestamp(req.Time)
	sig := core.Signature(id)
	sh := s.shardFor(sig)

	if s.buffered && !s.closed.Load() {
		if v, ok := sh.buf.index.Load(id); ok {
			// Lock-free hit: serve the indexed payload and defer the
			// bookkeeping, charging the entry's stored cost as the locked
			// Load hit path (ReferenceEntry) would.
			re := v.(*readEntry)
			s.fastHit(sh, re, req.Time, req.Class, re.cost)
			return re.payload, true, nil
		}
	}

	sh.mu.Lock()
	if e, ok := sh.cache.LookupCanonical(id, sig); ok {
		// Resident: charge a hit against the entry we just found — no
		// second index probe inside the critical section.
		size, cost, rels := e.Size, e.Cost, e.Relations
		p := sh.cache.ReferenceEntry(e, req.Time, req.Class)
		sh.mu.Unlock()
		sh.observe(s.tuner, id, sig, size, cost, req.Time, rels)
		return p, true, nil
	}
	if f, ok := sh.inflight[id]; ok {
		// Another caller is executing this query right now: wait for its
		// result, then charge an ordinary reference (normally a hit, since
		// the leader just admitted the set).
		s.coalesced.Add(1)
		sh.mu.Unlock()
		f.wg.Wait()
		if f.err != nil {
			// The flight failed: the caller still referenced the cache, so
			// charge an external miss (cost unknown — the query never ran
			// to completion).
			s.accountExternal(sh, core.Request{QueryID: id, Time: req.Time, Class: req.Class, Relations: req.Relations})
			return nil, false, f.err
		}
		if f.stale {
			s.accountExternal(sh, core.Request{QueryID: id, Time: req.Time, Class: req.Class,
				Size: f.size, Cost: f.cost, Relations: req.Relations})
			return f.payload, false, nil
		}
		sh.mu.Lock()
		if sh.staleSince(req.Relations, f.epoch) {
			// An invalidation of this query's relations landed after the
			// leader's admission: the payload must not be re-admitted (and
			// admitting it without a payload would turn later Load hits
			// into nil results), so serve the caller without touching the
			// cache — but still charge the reference.
			sh.cache.Account(core.Request{QueryID: id, Time: req.Time, Class: req.Class,
				Size: f.size, Cost: f.cost, Relations: req.Relations}, false)
			sh.mu.Unlock()
			return f.payload, false, nil
		}
		refHit, p := sh.cache.ReferenceCanonical(core.Request{
			QueryID: id, Time: req.Time, Class: req.Class, Size: f.size, Cost: f.cost,
			Relations: req.Relations, Payload: f.payload, Plan: req.Plan,
		}, sig)
		sh.mu.Unlock()
		sh.observe(s.tuner, id, sig, f.size, f.cost, req.Time, req.Relations)
		if refHit {
			return p, true, nil
		}
		return f.payload, false, nil
	}

	// Leader: publish the flight, then — unlocked — try answering by
	// derivation from cached content before paying for a loader
	// execution. Either way, feed the result through the admission path.
	// Followers waiting on the flight coalesce onto whichever happened.
	f := &flight{}
	f.wg.Add(1)
	sh.inflight[id] = f
	epoch := sh.epoch
	sh.mu.Unlock()

	if s.deriver != nil && req.Plan != nil {
		// Load's contract is "returns the data", so only materialized
		// derivations count here: a bookkeeping-only outcome (nil
		// payload) would hand the caller nothing and admit a payload-less
		// entry that turns every later Load hit into a nil result with
		// the loader bypassed. Those fall through to the loader.
		var start time.Time
		if s.rec != nil {
			start = monotime()
		}
		if d, ok := s.deriver.Derive(core.Request{QueryID: id, Class: req.Class,
			Relations: req.Relations, Plan: req.Plan}); ok && d.Payload != nil {
			f.payload, f.size, f.cost = d.Payload, d.Size, d.Remote
			f.derivation = &d
			s.derivations.Add(1)
		}
		if s.rec != nil {
			f.execNanos = sinceNanos(start)
		}
	}
	if f.derivation == nil {
		s.runLoader(f, req)
	}

	sh.mu.Lock()
	delete(sh.inflight, id)
	// An invalidation of this query's relations during the loader run (or
	// the derivation — the ancestor's data may predate the update too)
	// means the result may predate the base-relation update: hand it to
	// the callers but do not cache it.
	f.stale = sh.staleSince(req.Relations, epoch)
	f.epoch = sh.epoch
	if f.err == nil && !f.stale {
		if f.derivation != nil {
			sh.cache.ReferenceDerived(core.Request{
				QueryID: id, Time: req.Time, Class: req.Class, Size: f.size, Cost: f.cost,
				Relations: req.Relations, Plan: req.Plan, ExecNanos: f.execNanos,
			}, sig, *f.derivation)
		} else {
			sh.cache.ReferenceExecuted(core.Request{
				QueryID: id, Time: req.Time, Class: req.Class, Size: f.size, Cost: f.cost,
				Relations: req.Relations, Payload: f.payload, Plan: req.Plan, ExecNanos: f.execNanos,
			}, sig)
		}
	} else {
		// The leader's outcome never reaches the miss lifecycle (loader
		// failure, or a coherence event made the result stale): charge the
		// reference as an external miss while the lock is already held.
		areq := core.Request{QueryID: id, Time: req.Time, Class: req.Class, Relations: req.Relations, ExecNanos: f.execNanos}
		if f.err == nil {
			areq.Size, areq.Cost = f.size, f.cost
		}
		sh.cache.Account(areq, false)
	}
	if len(sh.inflight) == 0 && len(sh.invalEpoch) > 0 {
		// The invalidation epochs exist only to fence in-flight loads;
		// prune the map so one entry per relation name ever invalidated
		// cannot accumulate forever. Pending followers of flights that
		// completed at an older epoch fall back to the conservative
		// clearedAt check above.
		clear(sh.invalEpoch)
		sh.clearedAt = sh.epoch
	}
	sh.mu.Unlock()
	f.wg.Done()
	if f.err != nil {
		return nil, false, f.err
	}
	sh.observe(s.tuner, id, sig, f.size, f.cost, req.Time, req.Relations)
	// A derived answer was served from cache content; report it as a hit
	// so callers know no remote execution happened.
	return f.payload, f.derivation != nil && !f.stale, nil
}

// runLoader executes the loader outside all locks, converting a panic into
// an error so a misbehaving loader cannot strand the flight's followers —
// the inflight entry must always be removed and the WaitGroup completed.
// With a registry attached, the execution is timed into the load-latency
// histogram; with a flight recorder attached, the wall time lands on the
// flight so the leader's span can attribute it to its load stage.
func (s *Sharded) runLoader(f *flight, req core.Request) {
	var start time.Time
	if s.reg != nil || s.rec != nil {
		start = monotime()
	}
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("shard: loader panicked: %v", r)
		}
		s.loaderCalls.Add(1)
		if s.reg != nil {
			s.reg.ObserveLoad(sinceSeconds(start), f.err != nil)
		}
		if s.rec != nil {
			f.execNanos += sinceNanos(start)
		}
	}()
	f.payload, f.size, f.cost, f.err = s.loader(req)
}

// Peek reports whether the query's retrieved set is resident, without
// recording a reference.
func (s *Sharded) Peek(queryID string) (payload any, ok bool) {
	id := core.CompressID(queryID)
	sh := s.shardFor(core.Signature(id))
	if s.buffered {
		// The read index mirrors residency exactly (it mutates under the
		// shard lock with the core), so an index hit answers lock-free; a
		// miss falls through to the authoritative locked probe.
		if v, ok := sh.buf.index.Load(id); ok {
			return v.(*readEntry).payload, true
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cache.Peek(id)
}

// Invalidate drops every entry touching any of the given base relations
// from every shard and returns the number of resident sets dropped.
func (s *Sharded) Invalidate(relations ...string) int {
	if dr, ok := s.deriver.(interface{ DropRelations(...string) }); ok {
		// Purge the derivation index before the per-shard sweep: shards
		// are locked sequentially, and a reference racing the sweep must
		// not derive from a candidate in a shard the sweep has not
		// reached yet and plant pre-update data into one it already has.
		dr.DropRelations(relations...)
	}
	dropped := 0
	for _, sh := range s.shards {
		// Buffered mode: flush pending hit applications first, so hits
		// served before the invalidation are applied against their entries
		// (full bookkeeping) rather than falling back to plain accounting
		// after the sweep removes them.
		s.drainShard(sh)
		sh.mu.Lock()
		// Fence in-flight loads that read these relations: their results
		// may now be stale.
		sh.epoch++
		for _, r := range relations {
			sh.invalEpoch[r] = sh.epoch
		}
		dropped += sh.cache.Invalidate(relations...)
		sh.mu.Unlock()
	}
	if s.tuner != nil {
		// Keep the shadow caches coherent too, or candidate scores would
		// credit hits on sets the live cache just dropped.
		s.tuner.Invalidate(relations...)
	}
	if s.whatif != nil {
		// Same coherence path as the tuner shadows: the ghosts drop the
		// relations once, in stream order relative to sampled references.
		s.whatif.Invalidate(relations...)
	}
	return dropped
}

// Stats returns the counters aggregated across all shards plus the
// concurrency layer's loader/coalescing counters.
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.statsLocked()
		sh.mu.Unlock()
		out.Stats.Add(st)
		if sh.buf != nil {
			out.BufferedHits += sh.buf.fastHits.Load()
			out.PromotesSkipped += sh.buf.skipped.Load()
			out.PromotesSampled += sh.buf.sampled.Load()
			out.PendingApplies += sh.buf.pending.Load()
		}
	}
	out.LoaderCalls = s.loaderCalls.Load()
	out.Coalesced = s.coalesced.Load()
	out.Derivations = s.derivations.Load()
	return out
}

// ShardStats returns each shard's own counters, for balance diagnostics.
func (s *Sharded) ShardStats() []core.Stats {
	out := make([]core.Stats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = sh.statsLocked()
		sh.mu.Unlock()
	}
	return out
}

// Resident returns the total number of cached retrieved sets.
func (s *Sharded) Resident() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.cache.Resident()
		sh.mu.Unlock()
	}
	return n
}

// UsedBytes returns the payload plus metadata bytes charged across shards.
func (s *Sharded) UsedBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.cache.UsedBytes()
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the total configured capacity across shards.
func (s *Sharded) Capacity() int64 {
	var n int64
	for _, sh := range s.shards {
		if sh.cache.Config().Capacity == core.Unlimited {
			return core.Unlimited
		}
		n += sh.cache.Config().Capacity
	}
	return n
}

// Clock returns the largest logical time any shard has seen.
func (s *Sharded) Clock() float64 {
	var max float64
	for _, sh := range s.shards {
		sh.mu.Lock()
		if t := sh.cache.Clock(); t > max {
			max = t
		}
		sh.mu.Unlock()
	}
	return max
}

// CheckInvariants verifies every shard's internal consistency, that no
// flight outlived its execution and — in buffered mode — that the
// lock-free read index mirrors the resident set exactly. Tests drive it
// after concurrent hammering.
func (s *Sharded) CheckInvariants() error {
	for i, sh := range s.shards {
		sh.mu.Lock()
		err := sh.cache.CheckInvariants()
		if err == nil {
			err = sh.checkIndexLocked()
		}
		n := len(sh.inflight)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if n != 0 {
			return fmt.Errorf("shard %d: %d flights leaked", i, n)
		}
	}
	return nil
}
