package shard

// The buffered-mode test battery: golden equivalence against the serial
// core (the buffered path must change nothing observable once drained),
// deterministic drain/pending harness, a -race hammer over the full API
// surface, zero-allocation proofs for the hit path, and the
// snapshot-flushes-buffers guarantee. None of these tests sleep: Drain()
// and PendingApplies() are the synchronization points, and stalling the
// worker deterministically is done by holding the shard mutex it applies
// under.

import (
	"bytes"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// zeroClock keeps zero-valued request times at zero, so a buffered replay
// sees exactly the timestamps a serial core.Cache replay sees.
func zeroClock() float64 { return 0 }

// goldenTraces builds the three equivalence workloads: TPC-D, multiclass
// and drilldown.
func goldenTraces(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	out := make(map[string]*trace.Trace)
	_, tr, err := workload.StandardTPCD(0, workload.Config{Queries: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	out["tpcd"] = tr
	_, tr, err = workload.GenerateMulticlass(0, workload.MulticlassConfig{Config: workload.Config{Queries: 4000, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	out["multiclass"] = tr
	_, tr, err = workload.StandardDrilldown(0, workload.Config{Queries: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	out["drilldown"] = tr
	return out
}

// traceReq builds the identical request both the serial and the buffered
// replays submit for one trace record.
func traceReq(rec *trace.Record) core.Request {
	return core.Request{
		QueryID:   rec.QueryID,
		Time:      rec.Time,
		Class:     rec.Class,
		Size:      rec.Size,
		Cost:      rec.Cost,
		Relations: rec.Relations,
	}
}

// TestBufferedGoldenEquivalence replays each golden trace serially through
// one core.Cache and through a single-shard buffered cache with a drain
// barrier after every reference, and requires every Stats counter — float
// cost accumulators included — to be bit-identical: with the queue drained
// at each step, deferred application must be indistinguishable from the
// serial hit path. A second variant drains only once at the end, where the
// deferred reference-window updates may shift a few admission decisions,
// and bounds the cost-savings-ratio drift at 0.01. How stale recency gets
// before the worker catches up depends on scheduling — under a loaded
// machine (the full test suite runs packages in parallel) the drift sits
// around 0.005, so the bound carries headroom above that.
func TestBufferedGoldenEquivalence(t *testing.T) {
	for name, tr := range goldenTraces(t) {
		t.Run(name, func(t *testing.T) {
			capacity := sim.CacheBytesForFraction(tr, 1)
			ccfg := core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA}
			serial, err := core.New(ccfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tr.Records {
				serial.Reference(traceReq(&tr.Records[i]))
			}

			s := newSharded(t, Config{Shards: 1, Cache: ccfg, Buffered: true, Now: zeroClock})
			defer s.Close()
			for i := range tr.Records {
				s.Reference(traceReq(&tr.Records[i]))
				s.Drain()
			}
			if n := s.PendingApplies(); n != 0 {
				t.Fatalf("%d promotions pending after drain", n)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			got, want := s.Stats().Stats, serial.Stats()
			if got != want {
				t.Errorf("drain-barrier replay diverged from serial core:\n got  %+v\n want %+v", got, want)
			}
			if s.Stats().BufferedHits != want.Hits {
				t.Errorf("served %d hits lock-free, serial saw %d hits", s.Stats().BufferedHits, want.Hits)
			}

			// End-drain variant: fresh instance, no barriers until the end.
			e := newSharded(t, Config{Shards: 1, Cache: ccfg, Buffered: true, Now: zeroClock})
			defer e.Close()
			for i := range tr.Records {
				e.Reference(traceReq(&tr.Records[i]))
			}
			e.Drain()
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			est := e.Stats()
			if est.References != int64(len(tr.Records)) {
				t.Fatalf("end-drain replay counted %d of %d references", est.References, len(tr.Records))
			}
			if d := math.Abs(est.CostSavingsRatio() - want.CostSavingsRatio()); d > 0.01 {
				t.Errorf("end-drain CSR %.5f vs serial %.5f: drifted by %.5f > 0.01",
					est.CostSavingsRatio(), want.CostSavingsRatio(), d)
			}
			t.Logf("CSR serial %.5f, drain-barrier %.5f, end-drain %.5f (skipped %d, sampled %d)",
				want.CostSavingsRatio(), got.CostSavingsRatio(), est.CostSavingsRatio(),
				est.PromotesSkipped, est.PromotesSampled)
		})
	}
}

// TestBufferedThetaEquivalence replays the TPC-D trace through a locked
// and a buffered single-shard cache with identical adaptive tuners (drain
// barrier after every reference), runs one synchronous tuning round on
// each, and requires bit-identical thresholds: with barriers, the buffered
// worker feeds the admission profile the exact sample sequence the locked
// path records.
func TestBufferedThetaEquivalence(t *testing.T) {
	_, tr, err := workload.StandardTPCD(0, workload.Config{Queries: 3000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	capacity := sim.CacheBytesForFraction(tr, 1)
	build := func(buffered bool) (*Sharded, *admission.Tuner) {
		// A window larger than the trace keeps async rounds from firing;
		// the single TuneOnce below is the only θ update on either side.
		tuner, err := admission.New(admission.Config{Capacity: capacity, K: 4, Window: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		s := newSharded(t, Config{
			Shards: 1,
			Cache:  core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA},
			Tuner:  tuner, Buffered: buffered, Now: zeroClock,
		})
		return s, tuner
	}
	locked, ltuner := build(false)
	buffered, btuner := build(true)
	defer buffered.Close()
	for i := range tr.Records {
		req := traceReq(&tr.Records[i])
		locked.Reference(req)
		buffered.Reference(req)
		buffered.Drain()
	}
	lround, lok := ltuner.TuneOnce()
	bround, bok := btuner.TuneOnce()
	if lok != bok {
		t.Fatalf("tuning round fired on one side only: locked %v, buffered %v", lok, bok)
	}
	if lt, bt := ltuner.Threshold(), btuner.Threshold(); lt != bt {
		t.Errorf("θ diverged: locked %v, buffered %v (rounds %+v vs %+v)", lt, bt, lround, bround)
	}
}

// TestBufferedDrainDeterministic pins the drain harness: holding the shard
// mutex stalls the apply worker (it applies under that mutex), so enqueued
// promotions stay observably pending — no sleeps, no racing the worker —
// and Drain is the exact barrier that retires them.
func TestBufferedDrainDeterministic(t *testing.T) {
	s := newSharded(t, Config{
		Shards:   1,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Buffered: true, Now: zeroClock,
	})
	defer s.Close()
	s.Reference(core.Request{QueryID: "hot", Time: 1, Size: 256, Cost: 50})

	sh := s.shards[0]
	sh.mu.Lock()
	const hits = 50
	for i := 0; i < hits; i++ {
		if ok, _ := s.Reference(core.Request{QueryID: "hot", Time: float64(i + 2), Size: 256, Cost: 50}); !ok {
			sh.mu.Unlock()
			t.Fatalf("hit %d missed on the lock-free path", i)
		}
	}
	if n := s.PendingApplies(); n != hits {
		sh.mu.Unlock()
		t.Fatalf("stalled worker: %d pending, want %d", n, hits)
	}
	// The counts are already visible while every application is pending —
	// read the deferred cells directly (Stats would block on the mutex we
	// hold to stall the worker).
	if h := sh.buf.hits.Load(); h != hits {
		sh.mu.Unlock()
		t.Fatalf("deferred cells hold %d hits while stalled, want %d", h, hits)
	}
	sh.mu.Unlock()

	s.Drain()
	if n := s.PendingApplies(); n != 0 {
		t.Fatalf("%d pending after drain", n)
	}
	st := s.Stats()
	if st.References != hits+1 || st.Hits != hits || st.BufferedHits != hits {
		t.Fatalf("post-drain stats: %d references, %d hits, %d buffered; want %d, %d, %d",
			st.References, st.Hits, st.BufferedHits, hits+1, hits, hits)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Drain and PendingApplies are no-ops on an unbuffered cache.
	u := newSharded(t, Config{Shards: 1, Cache: core.Config{Capacity: 1 << 20, K: 2}})
	u.Drain()
	if u.PendingApplies() != 0 {
		t.Fatal("unbuffered cache reports pending applies")
	}
}

// TestBufferedClose verifies Close drains everything, is idempotent, and
// leaves a fully usable cache behind on the locked path.
func TestBufferedClose(t *testing.T) {
	s := newSharded(t, Config{
		Shards:   2,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Buffered: true, Now: zeroClock,
	})
	s.Reference(core.Request{QueryID: "hot", Time: 1, Size: 256, Cost: 50})
	for i := 0; i < 20; i++ {
		s.Reference(core.Request{QueryID: "hot", Time: float64(i + 2), Size: 256, Cost: 50})
	}
	s.Close()
	s.Close() // idempotent
	if n := s.PendingApplies(); n != 0 {
		t.Fatalf("%d pending after close", n)
	}
	before := s.Stats().BufferedHits
	hit, _ := s.Reference(core.Request{QueryID: "hot", Time: 100, Size: 256, Cost: 50})
	if !hit {
		t.Fatal("post-close reference missed")
	}
	if s.Stats().BufferedHits != before {
		t.Fatal("post-close reference took the lock-free path")
	}
	st := s.Stats()
	if st.References != 22 || st.Hits != 21 {
		t.Fatalf("post-close stats: %d references, %d hits; want 22, 21", st.References, st.Hits)
	}
	s.Drain() // inline flush path, still a no-op error-free
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferedHammer is the -race battery: 32 goroutines mixing lock-free
// references, singleflight loads, invalidations, snapshots and state
// exports against the buffered path. After the final drain every invariant
// must hold and every reference must be counted exactly once — References
// is compared against a client-side tally, so a lost or double-counted
// reference fails the test no matter which internal path served it.
func TestBufferedHammer(t *testing.T) {
	loader := func(req core.Request) (any, int64, float64, error) {
		return "payload:" + req.QueryID, 512, 100, nil
	}
	s := newSharded(t, Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 22, K: 2, Policy: core.LNCRA},
		Loader: loader, Buffered: true, Now: logical(),
		// A small promote buffer on purpose: the hammer must shed some
		// promotions and still account for every reference.
		PromoteBuffer: 64,
	})
	defer s.Close()

	const workers = 32
	const perWorker = 500
	var refs atomic.Int64
	var wg sync.WaitGroup
	rels := []string{"r0", "r1", "r2"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch {
				case i%97 == 13:
					s.Invalidate(rels[i%len(rels)])
				case i%113 == 17:
					_ = s.Snapshot(io.Discard)
				case i%131 == 19:
					_ = s.ExportState()
				case i%7 == 0:
					if _, _, err := s.Load(core.Request{QueryID: loadID(w, i), Relations: rels[:1+i%3]}); err != nil {
						t.Error(err)
					}
					refs.Add(1)
				default:
					s.Reference(core.Request{QueryID: hotID(w, i), Size: 256, Cost: 50, Relations: rels[i%len(rels) : 1+i%len(rels)]})
					refs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	s.Drain()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.References != refs.Load() {
		t.Fatalf("counted %d references, clients submitted %d (lost or double-counted)", st.References, refs.Load())
	}
	if st.PendingApplies != 0 {
		t.Fatalf("%d applies pending after drain", st.PendingApplies)
	}
	// Quiesced now: two consecutive snapshots must encode identically.
	var a, b bytes.Buffer
	if err := s.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("consecutive quiesced snapshots differ")
	}
	t.Logf("references %d, hits %d, buffered %d, skipped %d, loader calls %d, coalesced %d",
		st.References, st.Hits, st.BufferedHits, st.PromotesSkipped, st.LoaderCalls, st.Coalesced)
}

// hotID and loadID build a small hot set (lock-free hits) and a wider
// load-path key space; precomputed patterns keep the hammer allocation
// noise out of the interesting paths.
var hotIDs, loadIDs = func() ([]string, []string) {
	hot := make([]string, 64)
	for i := range hot {
		hot[i] = core.CompressID("hot query " + string(rune('a'+i%26)) + string(rune('a'+i/26)))
	}
	ld := make([]string, 256)
	for i := range ld {
		ld[i] = core.CompressID("load query " + string(rune('a'+i%16)) + string(rune('a'+(i/16)%16)))
	}
	return hot, ld
}()

func hotID(w, i int) string  { return hotIDs[(w*31+i)%len(hotIDs)] }
func loadID(w, i int) string { return loadIDs[(w*17+i)%len(loadIDs)] }

// TestBufferedHitPathAllocs proves the lock-free hit path allocates
// nothing — index probe, deferred cells, promotion enqueue included — and
// pins the flight-recorder-detached locked path's zero-allocation
// guarantee (previously only a benchmark observation) as a test. Both
// rely on CompressID's canonical-input fast path, also covered here.
func TestBufferedHitPathAllocs(t *testing.T) {
	id := core.CompressID("hot query 1")
	if core.CompressID(id) != id {
		t.Fatal("canonical ID did not round-trip")
	}

	s := newSharded(t, Config{
		Shards:   1,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Buffered: true, Now: zeroClock,
	})
	defer s.Close()
	s.Reference(core.Request{QueryID: id, Time: 1, Size: 256, Cost: 50})
	for i := 0; i < 200; i++ { // settle the sync.Map read path
		s.Reference(core.Request{QueryID: id, Time: 2, Size: 256, Cost: 50})
	}
	s.Drain()
	req := core.Request{QueryID: id, Time: 3, Size: 256, Cost: 50}
	if allocs := testing.AllocsPerRun(1000, func() {
		if hit, _ := s.Reference(req); !hit {
			t.Fatal("lock-free reference missed")
		}
	}); allocs != 0 {
		t.Errorf("buffered hit path allocates %.1f per reference, want 0", allocs)
	}

	// Locked path, flight recorder detached: also allocation-free.
	u := newSharded(t, Config{
		Shards: 1,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Now:    zeroClock,
	})
	u.Reference(core.Request{QueryID: id, Time: 1, Size: 256, Cost: 50})
	if allocs := testing.AllocsPerRun(1000, func() {
		if hit, _ := u.Reference(req); !hit {
			t.Fatal("locked reference missed")
		}
	}); allocs != 0 {
		t.Errorf("recorder-detached locked hit path allocates %.1f per reference, want 0", allocs)
	}
}

// TestBufferedSnapshotFlushesPending pins the satellite fix: ExportState
// must flush the promote buffer before capturing a shard, so a snapshot
// taken mid-traffic (pending applications queued) is byte-identical to one
// taken after an explicit quiesce. The worker is stalled by holding the
// shard mutex, making "mid-traffic" deterministic.
func TestBufferedSnapshotFlushesPending(t *testing.T) {
	s := newSharded(t, Config{
		Shards:   1,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Buffered: true, Now: zeroClock,
	})
	defer s.Close()
	const entries = 8
	ids := make([]string, entries)
	for i := range ids {
		ids[i] = core.CompressID("snap query " + string(rune('a'+i)))
		s.Reference(core.Request{QueryID: ids[i], Time: float64(i + 1), Size: 512, Cost: 80})
	}
	s.Drain()

	sh := s.shards[0]
	sh.mu.Lock()
	const hits = 30
	for i := 0; i < hits; i++ {
		s.Reference(core.Request{QueryID: ids[i%entries], Time: float64(100 + i), Size: 512, Cost: 80})
	}
	if n := s.PendingApplies(); n != hits {
		sh.mu.Unlock()
		t.Fatalf("stalled worker: %d pending, want %d", n, hits)
	}
	snapCh := make(chan *persist.Snapshot, 1)
	go func() { snapCh <- s.ExportState() }() // blocks on the drain barrier
	sh.mu.Unlock()
	snap := <-snapCh

	if n := s.PendingApplies(); n != 0 {
		t.Fatalf("%d applies pending after export", n)
	}
	wantRefs := int64(entries + hits)
	if got := snap.Shards[0].Stats.References; got != wantRefs {
		t.Fatalf("mid-traffic snapshot captured %d references, want %d (pending applies not flushed)", got, wantRefs)
	}
	// Quiesced now: the mid-traffic snapshot must equal a post-quiesce one
	// byte for byte.
	var midB, quiB bytes.Buffer
	if err := persist.Write(&midB, snap); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if err := s.Snapshot(&quiB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(midB.Bytes(), quiB.Bytes()) {
		t.Fatal("mid-traffic snapshot differs from post-quiesce snapshot")
	}

	// Restore into a fresh buffered cache: EventRestore must rebuild the
	// read index, so the very first reference hits lock-free.
	r := newSharded(t, Config{
		Shards:   1,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Buffered: true, Now: zeroClock,
	})
	defer r.Close()
	if _, err := r.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if hit, _ := r.Reference(core.Request{QueryID: ids[0], Time: 1000, Size: 512, Cost: 80}); !hit {
		t.Fatal("restored entry missed")
	}
	if r.Stats().BufferedHits != 1 {
		t.Fatal("restored entry was not served from the read index")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferedInvalidateDrainsAndPurges verifies the invalidation barrier:
// pending hit applications flush before the sweep (they count as ordinary
// hits against the still-resident entries), the read index is purged with
// the residency sweep, and subsequent references miss.
func TestBufferedInvalidateDrainsAndPurges(t *testing.T) {
	s := newSharded(t, Config{
		Shards:   1,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Buffered: true, Now: zeroClock,
	})
	defer s.Close()
	s.Reference(core.Request{QueryID: "inv", Time: 1, Size: 256, Cost: 50, Relations: []string{"r"}})
	const hits = 10
	for i := 0; i < hits; i++ {
		s.Reference(core.Request{QueryID: "inv", Time: float64(i + 2), Size: 256, Cost: 50, Relations: []string{"r"}})
	}
	if dropped := s.Invalidate("r"); dropped != 1 {
		t.Fatalf("invalidate dropped %d entries, want 1", dropped)
	}
	if n := s.PendingApplies(); n != 0 {
		t.Fatalf("%d applies pending after invalidate (barrier skipped)", n)
	}
	if _, ok := s.Peek("inv"); ok {
		t.Fatal("invalidated entry still served from the read index")
	}
	if hit, _ := s.Reference(core.Request{QueryID: "inv", Time: 100, Size: 256, Cost: 50, Relations: []string{"r"}}); hit {
		t.Fatal("reference after invalidation hit")
	}
	st := s.Stats()
	if st.References != hits+2 || st.Hits != hits {
		t.Fatalf("stats after invalidate: %d references, %d hits; want %d, %d", st.References, st.Hits, hits+2, hits)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
