package shard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
)

// newAdaptiveSharded builds a small sharded cache with adaptive admission
// enabled and a window small enough that tuning rounds actually fire under
// test-sized traffic.
func newAdaptiveSharded(t *testing.T, window int) *Sharded {
	t.Helper()
	tuner, err := admission.New(admission.Config{Capacity: 1 << 18, K: 2, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 18, K: 2, Policy: core.LNCRA},
		Tuner:  tuner,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAdaptiveConcurrentPublishRead hammers the sharded cache from many
// goroutines while tuning rounds concurrently publish the admission
// parameter and other readers poll it — the -race run of this package is
// the lock-freedom check for the hot-path parameter read.
func TestAdaptiveConcurrentPublishRead(t *testing.T) {
	s := newAdaptiveSharded(t, 128)
	tuner := s.Tuner()
	if tuner == nil {
		t.Fatal("Tuner() returned nil for an adaptive cache")
	}

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// A mix of per-worker hot queries and shared cold ones, so
				// shards see hits, misses, admissions and rejections.
				q := fmt.Sprintf("worker %d query %d", w, i%50)
				if i%7 == 0 {
					q = fmt.Sprintf("shared scan %d", i)
				}
				rels := []string{fmt.Sprintf("rel%d", i%5)}
				s.Reference(Request{QueryID: q, Size: int64(512 + i%4096), Cost: float64(100 + i%900), Relations: rels})
				if i%500 == 250 {
					// Coherence events race the tuning rounds and the
					// shadow-invalidation queue.
					s.Invalidate(rels...)
				}
			}
		}(w)
	}
	// Concurrent parameter readers and an extra synchronous tuning driver,
	// racing against the TriggerAsync rounds the traffic fires.
	var rg sync.WaitGroup
	stop := make(chan struct{})
	rg.Add(2)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tuner.Threshold()
				_ = tuner.Rounds()
			}
		}
	}()
	go func() {
		defer rg.Done()
		for i := 0; i < 50; i++ {
			tuner.TuneOnce()
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	th := tuner.Threshold()
	if th <= 0 {
		t.Fatalf("published threshold %g must stay positive", th)
	}
	st := s.Stats()
	if st.References != workers*perWorker {
		t.Fatalf("references = %d, want %d", st.References, workers*perWorker)
	}
}

// TestShardedTunerNilByDefault pins that a cache without a tuner reports
// none and takes the static admission path.
func TestShardedTunerNilByDefault(t *testing.T) {
	s, err := New(Config{Shards: 2, Cache: core.Config{Capacity: 1 << 16, K: 2, Policy: core.LNCRA}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Tuner() != nil {
		t.Error("Tuner() must be nil without adaptive admission")
	}
}

// TestAdaptiveLoadPathRecords drives the Load path (hits, coalesced
// followers and leader misses) and checks references land in the tuner's
// profiles so serving traffic can tune at all.
func TestAdaptiveLoadPathRecords(t *testing.T) {
	// Window larger than the traffic: no async round fires, so the
	// synchronous TuneOnce below drains every recorded reference and the
	// assertion is deterministic.
	tuner, err := admission.New(admission.Config{Capacity: 1 << 18, K: 2, Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Shards: 2,
		Cache:  core.Config{Capacity: 1 << 18, K: 2, Policy: core.LNCRA},
		Loader: func(req Request) (any, int64, float64, error) {
			return "payload", 1024, 500, nil
		},
		Tuner: tuner,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := s.Load(Request{QueryID: fmt.Sprintf("q%d", i%10)}); err != nil {
			t.Fatal(err)
		}
	}
	round, ok := tuner.TuneOnce()
	if !ok {
		t.Fatal("TuneOnce found no samples after 40 Load references")
	}
	if round.Samples != 40 {
		t.Errorf("tuning round drained %d samples, want all 40 Load references", round.Samples)
	}
}

// TestInvalEpochPruned pins the invalidation-epoch bookkeeping: the
// per-relation epoch map must be pruned once no load is in flight, so a
// long-lived daemon cannot accumulate one entry per relation name ever
// invalidated.
func TestInvalEpochPruned(t *testing.T) {
	s, err := New(Config{
		Shards: 1,
		Cache:  core.Config{Capacity: 1 << 16, K: 1, Policy: core.LRU},
		Loader: func(req Request) (any, int64, float64, error) { return "v", 128, 10, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Invalidate("r1", "r2")
	if got := len(s.shards[0].invalEpoch); got != 2 {
		t.Fatalf("invalEpoch holds %d entries after invalidation, want 2", got)
	}
	if _, _, err := s.Load(Request{QueryID: "q", Relations: []string{"other"}}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.shards[0].invalEpoch); got != 0 {
		t.Errorf("invalEpoch holds %d entries after the last flight completed, want 0 (pruned)", got)
	}
	if s.shards[0].clearedAt != s.shards[0].epoch {
		t.Errorf("clearedAt = %d, want the prune-time epoch %d", s.shards[0].clearedAt, s.shards[0].epoch)
	}
}
