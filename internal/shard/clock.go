package shard

// This file is the package's designated time-source file: the only place
// in shard allowed to read the process clock. Everything cache-visible
// flows through WallClock (the injectable Config.Now source, so live
// traffic and replayed traces share one λ estimator); the monotime/since
// helpers measure wall latency for the telemetry histogram, the flight
// recorder and snapshot pause accounting — measurements, never
// timestamps the replay-deterministic lifecycle can observe. The
// timesource analyzer (cmd/watchmanlint) enforces that no other file in
// the package reads the clock.
//
//watchman:timesource

import "time"

// WallClock returns a time source that maps wall time to core's logical
// seconds: seconds elapsed since the call that created it.
func WallClock() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// monotime returns the current clock reading, for later measurement with
// the since helpers.
func monotime() time.Time { return time.Now() }

// since returns the wall time elapsed from a monotime reading.
func since(t time.Time) time.Duration { return time.Since(t) }

// sinceSeconds returns the seconds elapsed from a monotime reading.
func sinceSeconds(t time.Time) float64 { return time.Since(t).Seconds() }

// sinceNanos returns the nanoseconds elapsed from a monotime reading.
func sinceNanos(t time.Time) int64 { return int64(time.Since(t)) }
