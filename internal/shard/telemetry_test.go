package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestLoadErrorChargedAsExternalMiss is the ROADMAP honesty fix: a Load
// whose loader fails must still charge the reference into Stats (as an
// external miss), or /stats CSR and hit ratio overstate savings.
func TestLoadErrorChargedAsExternalMiss(t *testing.T) {
	boom := errors.New("backend down")
	reg := telemetry.NewRegistry()
	s := newSharded(t, Config{
		Shards:   2,
		Cache:    core.Config{Capacity: 1 << 20, Policy: core.LNCRA, K: 2},
		Loader:   func(core.Request) (any, int64, float64, error) { return nil, 0, 0, boom },
		Registry: reg,
	})
	if _, _, err := s.Load(core.Request{QueryID: "q", Class: 1}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	st := s.Stats()
	if st.References != 1 || st.ExternalMisses != 1 || st.Hits != 0 {
		t.Fatalf("failed load not charged: %+v", st.Stats)
	}
	snap := reg.Snapshot()
	if snap.ExternalMisses != 1 || snap.LoaderErrors != 1 {
		t.Fatalf("registry missed the outcome: %+v", snap)
	}
	if snap.LoadLatency.Count != 1 {
		t.Fatalf("loader execution not timed: %+v", snap.LoadLatency)
	}
	if len(snap.Classes) != 2 || snap.Classes[1].ExternalMisses != 1 {
		t.Fatalf("class accounting missed the external miss: %+v", snap.Classes)
	}
}

// TestStaleFlightChargedAsExternalMiss verifies the other honesty path: a
// flight fenced by an invalidation serves its callers without admission,
// and every such serve must appear in Stats as an external miss with the
// loader-reported cost in the CSR denominator.
func TestStaleFlightChargedAsExternalMiss(t *testing.T) {
	inLoader := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	reg := telemetry.NewRegistry()
	s := newSharded(t, Config{
		Shards: 2,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Loader: func(req core.Request) (any, int64, float64, error) {
			if first.CompareAndSwap(true, false) {
				close(inLoader)
				<-release
			}
			return "pre-update rows", 64, 10, nil
		},
		Registry: reg,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Load(core.Request{QueryID: "q over lineitem", Relations: []string{"lineitem"}})
	}()
	<-inLoader
	s.Invalidate("lineitem")
	close(release)
	<-done

	st := s.Stats()
	if st.References != 1 || st.ExternalMisses != 1 {
		t.Fatalf("stale flight not charged: %+v", st.Stats)
	}
	if st.CostTotal != 10 {
		t.Fatalf("stale flight cost must enter the CSR denominator: %+v", st.Stats)
	}
	if st.Hits != 0 || st.Admissions != 0 {
		t.Fatalf("stale flight must not hit or admit: %+v", st.Stats)
	}
}

// TestReferenceEventsReachRegistry wires a registry through the sharded
// front and checks the per-shard fan-in: every reference outcome lands in
// the registry and the per-shard counts sum to the total.
func TestReferenceEventsReachRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newSharded(t, Config{
		Shards:   4,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Registry: reg,
	})
	const n = 256
	for i := 0; i < n; i++ {
		s.Reference(core.Request{
			QueryID:   fmt.Sprintf("query %d", i%32),
			Class:     i % 3,
			Size:      64,
			Cost:      10,
			Relations: []string{"lineitem"},
		})
	}
	s.Invalidate("lineitem")

	st := s.Stats()
	snap := reg.Snapshot()
	if snap.References() != st.References {
		t.Fatalf("registry references %d, stats %d", snap.References(), st.References)
	}
	if snap.Hits != st.Hits || snap.MissesAdmitted != st.Admissions || snap.Invalidations != st.Invalidations {
		t.Fatalf("registry drifted from stats:\nregistry %+v\nstats %+v", snap, st.Stats)
	}
	if snap.CostTotal != st.CostTotal || snap.CostSaved != st.CostSaved {
		t.Fatalf("cost accounting drifted: registry %g/%g, stats %g/%g",
			snap.CostSaved, snap.CostTotal, st.CostSaved, st.CostTotal)
	}
	var perShard int64
	for _, nref := range snap.ShardReferences {
		perShard += nref
	}
	if perShard != st.References {
		t.Fatalf("per-shard counts sum to %d, want %d", perShard, st.References)
	}
	if len(snap.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(snap.Classes))
	}
}

// TestLoadHitChargedToRequestClass pins hit attribution: a Load hit is
// charged to the class of the referencing request, not the class that
// admitted the entry — matching Reference, so per-class CSR stays
// comparable across the two entry points.
func TestLoadHitChargedToRequestClass(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newSharded(t, Config{
		Shards:   2,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Loader:   func(core.Request) (any, int64, float64, error) { return "rows", 64, 10, nil },
		Registry: reg,
	})
	if _, hit, err := s.Load(core.Request{QueryID: "q", Class: 0}); err != nil || hit {
		t.Fatalf("admitting load: hit=%v err=%v", hit, err)
	}
	if _, hit, err := s.Load(core.Request{QueryID: "q", Class: 1}); err != nil || !hit {
		t.Fatalf("hitting load: hit=%v err=%v", hit, err)
	}
	snap := reg.Snapshot()
	if len(snap.Classes) != 2 {
		t.Fatalf("classes = %+v", snap.Classes)
	}
	if snap.Classes[1].Hits != 1 || snap.Classes[0].Hits != 0 {
		t.Fatalf("hit charged to wrong class: %+v", snap.Classes)
	}
}

// TestConcurrentLoadInvalidateWithRegistry hammers Load (with a loader
// that sometimes fails) against concurrent Invalidate calls with a
// registry attached — the -race CI job runs this — and asserts the
// registry agrees with Stats afterwards: every reference ended in exactly
// one lifecycle outcome even under fencing and failures.
func TestConcurrentLoadInvalidateWithRegistry(t *testing.T) {
	boom := errors.New("flaky backend")
	reg := telemetry.NewRegistry()
	s := newSharded(t, Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 256 << 10, K: 2, Policy: core.LNCRA},
		Loader: func(req core.Request) (any, int64, float64, error) {
			h := core.Signature(req.QueryID)
			if h%7 == 0 {
				return nil, 0, 0, boom
			}
			return "rows", int64(h%512) + 1, float64(h%100) + 1, nil
		},
		Registry: reg,
	})

	const workers = 8
	const perWorker = 400
	rels := []string{"lineitem", "orders", "part"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				if rng.Intn(50) == 0 {
					s.Invalidate(rels[rng.Intn(len(rels))])
					continue
				}
				q := fmt.Sprintf("query %d", rng.Intn(96))
				_, _, err := s.Load(core.Request{
					QueryID:   q,
					Class:     rng.Intn(3),
					Relations: []string{rels[core.Signature(q)%uint64(len(rels))]},
				})
				if err != nil && !errors.Is(err, boom) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	snap := reg.Snapshot()
	if snap.References() != st.References {
		t.Fatalf("registry references %d, stats %d", snap.References(), st.References)
	}
	if got := st.Hits + st.Admissions + st.Rejections + st.ExternalMisses; got != st.References {
		t.Fatalf("references %d not partitioned by outcome (%d)", st.References, got)
	}
	if st.ExternalMisses == 0 {
		t.Fatal("workload produced no external misses; loader failures were not charged")
	}
	if snap.LoadLatency.Count != st.LoaderCalls {
		t.Fatalf("latency observations %d, loader calls %d", snap.LoadLatency.Count, st.LoaderCalls)
	}
}
