package shard

// Buffered mode: the contention-free hit path.
//
// With Config.Buffered set, each shard answers hits from a lock-free read
// index (a sync.Map shadowing the core cache's resident set) instead of
// taking the shard mutex, and defers the WATCHMAN bookkeeping a hit
// normally performs under the lock — the LNC reference-window record, the
// λ re-estimation, the evictor touch — onto a bounded per-shard promotion
// queue. A per-shard worker drains the queue and applies the promotions in
// batches through core.Cache.ApplyHit, one lock acquisition per batch.
// This is the ccache deferred-bookkeeping idiom (promoteBuffer /
// deleteBuffer / getsPerPromote) adapted to the cache-of-retrieved-sets
// shape: λ-estimation tolerates slightly-deferred reference timestamps
// (core's clock clamp absorbs out-of-order applications), so deferral
// changes no admission or eviction decision once the queue drains.
//
// Counting is never deferred. The moment a lock-free hit is served, its
// reference, hit, cost and bytes land in per-shard atomic "deferred
// cells"; when the worker applies the promotion it settles the same
// amounts out of the cells and into the core counters under the shard
// lock. Stats reads both sides under that lock, so every buffered hit is
// counted in exactly one place at any instant — a full promote buffer
// sheds only the recency/λ signal (counted in PromotesSkipped), never a
// reference.
//
// Consistency caveats of the deferred model, in exchange for the
// throughput:
//
//   - Recency/λ updates lag by the queue depth. Drain() is the barrier:
//     after it returns, every promotion enqueued before the call has been
//     applied and the cache is bit-identical to a serial replay of the
//     same references (the golden-equivalence tests assert exactly this).
//   - A hit may be served from the read index in the instant between an
//     invalidation's index purge and its own enqueue; its application then
//     falls back to plain hit accounting (the entry is gone). The payload
//     served is the one that was resident when the probe ran — the same
//     window the locked path has between its lookup and the invalidation
//     sweep reaching that shard.
//   - Hits shed under pressure (PromotesSkipped / PromotesSampled) never
//     reach the telemetry registry's event stream; registry counters lag
//     Stats by exactly those sheds.
//
// Invalidation, snapshot export and Close all drain before acting, so
// coherence events and persisted images always see fully-applied state.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// DefaultPromoteBuffer is the per-shard promotion queue depth used when
// Config.PromoteBuffer is zero.
const DefaultPromoteBuffer = 1024

// DefaultDeleteBuffer is the per-shard maintenance queue depth used when
// Config.DeleteBuffer is zero.
const DefaultDeleteBuffer = 64

// applyBatchSize bounds how many promotions one worker batch applies under
// a single lock acquisition.
const applyBatchSize = 256

// readEntry is one read-index record: an immutable snapshot of the fields
// the lock-free hit path needs, taken under the shard lock when the entry
// was admitted or restored. The *core.Entry pointer is held for identity
// only — the worker compares it against the resident entry under the lock
// before touching it; entry fields are never read lock-free (insert may
// rewrite Relations, Size and Cost when a retained entry is re-admitted).
type readEntry struct {
	entry *core.Entry
	sig   uint64
	// payload, size, cost, class and relations are copies made at
	// admission, safe to read without the lock.
	payload   any
	size      int64
	cost      float64
	class     int
	relations []string
	// gets counts lock-free hits for GetsPerPromote sampling.
	gets atomic.Uint32
}

// promotion is one deferred hit application, passed by value on the
// promote channel. cost is the referencing request's cost (the serial hit
// path charges the request's cost, not the entry's stored one). enqueued
// is a core.MonotonicNanos stamp, zero when no flight recorder is
// attached; the worker charges the queue delay to StageApply.
type promotion struct {
	re       *readEntry
	time     float64
	class    int
	cost     float64
	enqueued int64
}

// bufOp is one maintenance operation on the delete buffer: a drain barrier
// (done is closed once every promotion enqueued before the op has been
// applied) and, for Close, the worker stop signal. Unlike promotions these
// are never dropped — a full buffer blocks the producer.
type bufOp struct {
	done chan struct{}
	stop bool
}

// atomicFloat accumulates a float64 with compare-and-swap; the deferred
// cost cell the lock-free hit path charges.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// shardBuffers is one shard's buffered-mode state; nil on the shard when
// buffering is off.
type shardBuffers struct {
	// index maps canonical query ID -> *readEntry for every resident
	// entry. Mutated only under the shard lock (by indexSink, riding the
	// core's event stream), read lock-free by the hit path — so under the
	// lock it is always exactly the resident set.
	index   sync.Map
	promote chan promotion
	ops     chan bufOp
	// stopped is closed when the worker exits; barrier producers fall back
	// to inline flushing once it is.
	stopped chan struct{}
	// pending counts promotions enqueued but not yet applied.
	pending atomic.Int64
	// batch is the worker-owned apply scratch; reused so the steady-state
	// apply path allocates nothing.
	batch []promotion

	// Deferred cells: counts charged at hit time and settled into the core
	// counters (under the shard lock) when the promotion is applied. hits
	// feeds both References and Hits, cost both CostTotal and CostSaved —
	// for a hit the increments coincide.
	hits  atomic.Int64
	bytes atomic.Int64
	cost  atomicFloat

	// Monotone honesty counters.
	fastHits atomic.Int64
	skipped  atomic.Int64
	sampled  atomic.Int64
}

// indexSink maintains the read index from the core's lifecycle events. It
// runs under the owning shard's mutex (the core's execution context), so
// index mutations are atomic with the residency changes they mirror.
type indexSink struct{ buf *shardBuffers }

// Emit implements core.EventSink.
func (k indexSink) Emit(ev core.Event) {
	switch ev.Kind {
	case core.EventMissAdmitted, core.EventRestore:
		e := ev.Entry
		if e == nil {
			return
		}
		k.buf.index.Store(e.ID, &readEntry{
			entry:     e,
			sig:       core.Signature(e.ID),
			payload:   e.Payload,
			size:      e.Size,
			cost:      e.Cost,
			class:     e.Class,
			relations: append([]string(nil), e.Relations...),
		})
	case core.EventEvict, core.EventInvalidate:
		k.buf.index.Delete(ev.ID)
	case core.EventHit, core.EventMissRejected, core.EventExternalMiss, core.EventHitDerived:
		// Reference outcomes do not change residency; the read index
		// mirrors residency only.
	}
}

// fastHit charges one lock-free hit: the deferred cells immediately, and a
// promotion for the bookkeeping — sampled by GetsPerPromote, dropped (and
// counted) when the promote buffer is full. Never blocks, never allocates.
//
//watchman:accounting
//watchman:hotpath
func (s *Sharded) fastHit(sh *shard, re *readEntry, t float64, class int, cost float64) {
	b := sh.buf
	b.fastHits.Add(1)
	b.hits.Add(1)
	b.bytes.Add(re.size)
	b.cost.add(cost)
	if s.getsPerPromote > 1 && re.gets.Add(1)%uint32(s.getsPerPromote) != 0 {
		b.sampled.Add(1)
		return
	}
	var enq int64
	if s.rec != nil {
		enq = core.MonotonicNanos()
	}
	b.pending.Add(1)
	select {
	case b.promote <- promotion{re: re, time: t, class: class, cost: cost, enqueued: enq}:
	default:
		b.pending.Add(-1)
		b.skipped.Add(1)
	}
}

// worker is the per-shard apply loop: it owns the shard's serial core for
// deferred bookkeeping, draining promotions in batches (one lock
// acquisition per batch) and serving barrier/stop ops from the delete
// buffer — which always flush every queued promotion first.
func (s *Sharded) worker(sh *shard) {
	b := sh.buf
	defer s.workerWG.Done()
	defer close(b.stopped)
	for {
		select {
		case p := <-b.promote:
			b.batch = append(b.batch[:0], p)
		fill:
			for len(b.batch) < cap(b.batch) {
				select {
				case q := <-b.promote:
					b.batch = append(b.batch, q)
				default:
					break fill
				}
			}
			s.applyBatch(sh, b.batch)
		case op := <-b.ops:
			s.flushPromotes(sh, b.batch[:0])
			if op.done != nil {
				close(op.done)
			}
			if op.stop {
				// Serve barriers that raced the shutdown before exiting;
				// anything arriving later falls back to inline flushing via
				// the stopped channel.
				for {
					select {
					case o := <-b.ops:
						s.flushPromotes(sh, b.batch[:0])
						if o.done != nil {
							close(o.done)
						}
					default:
						return
					}
				}
			}
		}
	}
}

// flushPromotes applies every promotion queued at the time of the call,
// batching through the provided scratch space (which must have non-zero
// capacity). Safe for concurrent flushers: each promotion is received by
// exactly one, and application runs under the shard lock.
func (s *Sharded) flushPromotes(sh *shard, batch []promotion) {
	for {
		batch = batch[:0]
	fill:
		for len(batch) < cap(batch) {
			select {
			case p := <-sh.buf.promote:
				batch = append(batch, p)
			default:
				break fill
			}
		}
		if len(batch) == 0 {
			return
		}
		s.applyBatch(sh, batch)
	}
}

// applyBatch settles one batch of promotions into the shard's core under a
// single lock acquisition. Each promotion whose entry is still the
// resident one gets the full hit bookkeeping via ApplyHit; entries that
// departed in the meantime (evicted, invalidated, or re-admitted with a
// different shape) fall back to plain hit accounting — the payload was
// already served, so the reference must still count. Either way the
// amounts charged at hit time are settled out of the deferred cells while
// the lock is held, so Stats (which reads both sides under the same lock)
// sees every reference in exactly one place.
func (s *Sharded) applyBatch(sh *shard, batch []promotion) {
	if len(batch) == 0 {
		return
	}
	var hits, bytes int64
	var cost float64
	sh.mu.Lock()
	for i := range batch {
		p := &batch[i]
		var qns int64
		if p.enqueued != 0 {
			qns = core.MonotonicNanos() - p.enqueued
		}
		e := p.re.entry
		if cur, ok := sh.cache.LookupCanonical(e.ID, p.re.sig); ok && cur == e && e.Size == p.re.size {
			sh.cache.ApplyHit(e, p.time, p.class, p.cost, qns)
		} else {
			sh.cache.Account(core.Request{QueryID: e.ID, Time: p.time, Class: p.class,
				Size: p.re.size, Cost: p.cost, Relations: p.re.relations}, true)
		}
		hits++
		bytes += p.re.size
		cost += p.cost
	}
	sh.buf.hits.Add(-hits)
	sh.buf.bytes.Add(-bytes)
	sh.buf.cost.add(-cost)
	sh.mu.Unlock()
	sh.buf.pending.Add(-int64(len(batch)))
	if sh.profile != nil {
		for i := range batch {
			p := &batch[i]
			sh.observe(s.tuner, p.re.entry.ID, p.re.sig, p.re.size, p.cost, p.time, p.re.relations)
		}
	}
}

// drainShard is the per-shard barrier: it returns once every promotion
// enqueued before the call has been applied. While the worker runs, the
// barrier travels through the delete buffer (the worker flushes the
// promote buffer before acknowledging); once the worker has stopped, the
// caller flushes inline.
func (s *Sharded) drainShard(sh *shard) {
	if sh.buf == nil {
		return
	}
	op := bufOp{done: make(chan struct{})}
	select {
	case sh.buf.ops <- op:
		select {
		case <-op.done:
			return
		case <-sh.buf.stopped:
		}
	case <-sh.buf.stopped:
	}
	s.flushPromotes(sh, make([]promotion, 0, applyBatchSize))
}

// Drain blocks until every promotion enqueued before the call has been
// applied to its shard's core. It is the deterministic synchronization
// point for buffered mode: after Drain, Stats and the cache image are
// bit-identical to a serial application of the same references. A no-op
// when buffering is off.
func (s *Sharded) Drain() {
	for _, sh := range s.shards {
		s.drainShard(sh)
	}
	if s.whatif != nil {
		// Flushed promotions above may have emitted hit events into the
		// ghost matrix; barrier it too so the ghosts reflect everything
		// enqueued before the call.
		s.whatif.Drain()
	}
}

// PendingApplies reports how many promotions are enqueued but not yet
// applied across all shards — zero right after Drain, and always zero when
// buffering is off.
func (s *Sharded) PendingApplies() int64 {
	var n int64
	for _, sh := range s.shards {
		if sh.buf != nil {
			n += sh.buf.pending.Load()
		}
	}
	return n
}

// Close flushes every buffer, stops the per-shard apply workers and shuts
// down the what-if ghost matrix (after the flushed events reach it). The
// cache remains fully usable afterwards — references simply take the
// locked path, exactly as with Buffered off — so a graceful shutdown can
// Close the workers before the final snapshot flush. Idempotent, and a
// no-op when neither buffering nor the ghost matrix is on.
func (s *Sharded) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.buffered {
		for _, sh := range s.shards {
			op := bufOp{done: make(chan struct{}), stop: true}
			select {
			case sh.buf.ops <- op:
				select {
				case <-op.done:
				case <-sh.buf.stopped:
				}
			case <-sh.buf.stopped:
			}
		}
		s.workerWG.Wait()
		// Catch promotions from fast-path callers that raced the shutoff:
		// the workers are gone, so flush inline. Anything enqueued after
		// THIS stays queued, but its counts live in the deferred cells —
		// no reference is ever lost — and any later Drain/ExportState
		// flushes it.
		for _, sh := range s.shards {
			s.flushPromotes(sh, make([]promotion, 0, applyBatchSize))
		}
	}
	if s.whatif != nil {
		// Last, so the buffered flush's hit events are applied to the
		// ghosts before the matrix worker exits.
		s.whatif.Close()
	}
}

// statsLocked returns the shard's core counters with the deferred cells
// folded in. The caller holds sh.mu; applyBatch settles the cells under
// the same lock, so every buffered hit is counted in exactly one of the
// two places this reads.
func (sh *shard) statsLocked() core.Stats {
	st := sh.cache.Stats()
	if sh.buf != nil {
		h := sh.buf.hits.Load()
		st.References += h
		st.Hits += h
		c := sh.buf.cost.load()
		st.CostTotal += c
		st.CostSaved += c
		st.BytesServed += sh.buf.bytes.Load()
	}
	return st
}

// checkIndexLocked verifies the read index mirrors the resident set
// exactly. The caller holds sh.mu, under which the index and the core
// mutate atomically — so this invariant holds at any instant, not only at
// quiesce.
func (sh *shard) checkIndexLocked() error {
	if sh.buf == nil {
		return nil
	}
	var err error
	count := 0
	sh.buf.index.Range(func(k, v any) bool {
		id := k.(string)
		re := v.(*readEntry)
		cur, ok := sh.cache.LookupCanonical(id, re.sig)
		if !ok {
			err = fmt.Errorf("read index holds %q which is not resident", id)
			return false
		}
		if cur != re.entry {
			err = fmt.Errorf("read index entry for %q is not the resident entry", id)
			return false
		}
		count++
		return true
	})
	if err == nil && count != sh.cache.Resident() {
		err = fmt.Errorf("read index has %d entries, %d resident", count, sh.cache.Resident())
	}
	return err
}
