package shard

// Snapshot persistence for the concurrent layer. Export is copy-on-read:
// each shard's state is deep-copied under that shard's mutex only (one
// shard at a time — traffic on the other shards keeps flowing), and the
// expensive serialization runs outside every lock. Restore is the
// inverse and must happen before serving begins: each shard's core cache
// enforces that it has served nothing yet.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
)

// ExportState captures every shard's state plus the adaptive tuner's (if
// any) as a persist.Snapshot. Shards are locked one at a time, so the
// capture is per-shard consistent, not globally consistent — references
// that land mid-export appear in some shards and not others, the same
// tolerance Stats() already has.
func (s *Sharded) ExportState() *persist.Snapshot {
	if s.whatif != nil {
		// Quiesce the ghost matrix relative to the capture point: events
		// emitted before this call are applied before shards are read, so
		// a what-if report taken around a snapshot brackets the same
		// stream prefix the image does.
		s.whatif.Drain()
	}
	snap := &persist.Snapshot{Shards: make([]*core.CacheState, len(s.shards))}
	for i, sh := range s.shards {
		// Buffered mode: flush this shard's pending hit applications right
		// before capturing it, so the image carries fully-applied recency
		// and λ state — a snapshot taken mid-traffic equals one taken
		// after quiesce, up to references that land after the barrier.
		s.drainShard(sh)
		sh.mu.Lock()
		snap.Shards[i] = sh.cache.ExportState()
		if sh.buf != nil {
			// Fold any deferred counts that never reached the core (hits
			// shed under buffer pressure, or promotions racing this
			// capture) into the exported Stats, so persisted counters stay
			// honest; the live cells keep them for the running process.
			h := sh.buf.hits.Load()
			snap.Shards[i].Stats.References += h
			snap.Shards[i].Stats.Hits += h
			c := sh.buf.cost.load()
			snap.Shards[i].Stats.CostTotal += c
			snap.Shards[i].Stats.CostSaved += c
			snap.Shards[i].Stats.BytesServed += sh.buf.bytes.Load()
		}
		sh.mu.Unlock()
		if c := snap.Shards[i].Clock; c > snap.Clock {
			snap.Clock = c
		}
	}
	if s.tuner != nil {
		snap.Admission = s.tuner.ExportState()
	}
	return snap
}

// Snapshot writes a snapshot of the full cache state to w. It streams:
// shard state is exported in bounded chunks with the shard lock released
// between them, and every byte is encoded outside all locks (see
// StreamSnapshot, which it delegates to).
func (s *Sharded) Snapshot(w io.Writer) error {
	_, err := s.StreamSnapshot(w)
	return err
}

// snapshotChunkEntries bounds one chunked-export lock slice. At typical
// entry sizes a 512-entry copy is tens of microseconds — foreground
// references wait for at most that, instead of for a full-shard export.
const snapshotChunkEntries = 512

// countingWriter counts the bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// StreamSnapshot writes a snapshot of the full cache state to w and
// reports its size, resident count and the longest single lock hold.
// Each shard's state leaves in chunks of at most snapshotChunkEntries
// entries, the shard lock held only per-chunk and released while the
// chunk is encoded; in buffered mode the shard's deferred hit
// applications are drained before every chunk, not globally. Entries
// touched between a shard's chunks surface as either their pre-export
// or post-mutation state, and the output is byte-identical to
// persist.Write over ExportState whenever the cache is quiescent (see
// docs/PERSISTENCE.md, "Streaming capture & consistency").
//
// The returned SnapshotInfo has no Path: that belongs to the
// Snapshotter's file lifecycle.
func (s *Sharded) StreamSnapshot(w io.Writer) (SnapshotInfo, error) {
	if s.whatif != nil {
		// Same drain barrier as ExportState: ghosts quiesce against the
		// stream prefix this capture will observe.
		s.whatif.Drain()
	}
	start := monotime()
	var maxPause time.Duration
	pause := func(t0 time.Time) {
		if d := since(t0); d > maxPause {
			maxPause = d
		}
	}

	// The meta section streams first but declares the snapshot clock (the
	// max across shards), so sweep the clocks up front. Under live
	// traffic the declared clock may trail a shard's header clock by the
	// references that land between this sweep and that shard's export —
	// the same per-shard consistency ExportState offers.
	var clock float64
	for _, sh := range s.shards {
		t0 := monotime()
		sh.mu.Lock()
		if c := sh.cache.Clock(); c > clock {
			clock = c
		}
		sh.mu.Unlock()
		pause(t0)
	}

	cw := &countingWriter{w: w}
	sw, err := persist.NewStreamWriter(cw, len(s.shards), clock)
	if err != nil {
		return SnapshotInfo{}, err
	}
	defer sw.Close() // releases the pooled encoder on error paths

	resident := 0
	scratch := make([]core.EntryState, 0, snapshotChunkEntries)
	for _, sh := range s.shards {
		// Buffered mode: flush this shard's pending hit applications
		// before the header capture, so the image carries fully-applied
		// recency and λ state.
		s.drainShard(sh)
		t0 := monotime()
		sh.mu.Lock()
		cur := sh.cache.ExportBegin()
		if sh.buf != nil {
			// Fold any deferred counts that never reached the core (hits
			// shed under buffer pressure, or promotions racing this
			// capture) into the exported Stats, so persisted counters stay
			// honest; the live cells keep them for the running process.
			h := sh.buf.hits.Load()
			cur.Header.Stats.References += h
			cur.Header.Stats.Hits += h
			c := sh.buf.cost.load()
			cur.Header.Stats.CostTotal += c
			cur.Header.Stats.CostSaved += c
			cur.Header.Stats.BytesServed += sh.buf.bytes.Load()
		}
		sh.mu.Unlock()
		pause(t0)
		if err := sw.BeginShard(cur.Header); err != nil {
			return SnapshotInfo{}, err
		}
		for cur.Remaining() > 0 {
			// Per-chunk drain: hits applied while the previous chunk was
			// encoding reach the core before this slice is copied.
			s.drainShard(sh)
			t0 = monotime()
			sh.mu.Lock()
			chunk, _ := sh.cache.ExportChunk(cur, snapshotChunkEntries, scratch[:cap(scratch)])
			sh.mu.Unlock()
			pause(t0)
			for i := range chunk {
				if chunk[i].Resident {
					resident++
				}
			}
			// WriteEntries encodes before returning, so the scratch (and
			// its entries' sub-slices) is free for the next chunk.
			if err := sw.WriteEntries(chunk); err != nil {
				return SnapshotInfo{}, err
			}
			scratch = chunk
		}
		if err := sw.EndShard(); err != nil {
			return SnapshotInfo{}, err
		}
	}
	if s.tuner != nil {
		if err := sw.WriteAdmission(s.tuner.ExportState()); err != nil {
			return SnapshotInfo{}, err
		}
	}
	if err := sw.Close(); err != nil {
		return SnapshotInfo{}, err
	}
	info := SnapshotInfo{
		Bytes:        cw.n,
		Resident:     resident,
		Elapsed:      since(start),
		MaxLockPause: maxPause,
	}
	if s.reg != nil {
		s.reg.ObserveSnapshot(info.Elapsed.Seconds(), info.Bytes, maxPause.Seconds())
	}
	return info, nil
}

// RestoreReport aggregates the per-shard restore outcomes.
type RestoreReport struct {
	// Resident, Retained, DemotedResident and Dropped sum the per-shard
	// core.RestoreReport counters.
	Resident        int
	Retained        int
	DemotedResident int
	Dropped         int
	// ThetaRestored reports whether an adaptive admission threshold was
	// restored (snapshot carried one and this cache runs a tuner); Theta
	// is the published value when it was.
	ThetaRestored bool
	Theta         float64
}

// RestoreSnapshot pours a decoded snapshot into the cache. The shard
// count must match the snapshot's: entries were partitioned by signature
// when captured, and restoring N shards' state into M≠N shards would
// route queries away from their entries. The cache must not have served
// any traffic yet.
func (s *Sharded) RestoreSnapshot(snap *persist.Snapshot) (RestoreReport, error) {
	var rep RestoreReport
	if len(snap.Shards) != len(s.shards) {
		return rep, fmt.Errorf("shard: snapshot captured %d shards but this cache has %d; restart with -shards %d (or discard the snapshot)",
			len(snap.Shards), len(s.shards), len(snap.Shards))
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		r, err := sh.cache.RestoreState(snap.Shards[i])
		sh.mu.Unlock()
		if err != nil {
			return rep, fmt.Errorf("shard %d: %w", i, err)
		}
		rep.Resident += r.Resident
		rep.Retained += r.Retained
		rep.DemotedResident += r.DemotedResident
		rep.Dropped += r.Dropped
	}
	if snap.Admission != nil && s.tuner != nil {
		if err := s.tuner.RestoreState(snap.Admission); err != nil {
			return rep, err
		}
		rep.ThetaRestored = true
		rep.Theta = s.tuner.Threshold()
	}
	return rep, nil
}

// Restore reads a snapshot from r and pours it into the cache. See
// RestoreSnapshot for the preconditions.
func (s *Sharded) Restore(r io.Reader) (RestoreReport, error) {
	snap, err := persist.Read(r)
	if err != nil {
		return RestoreReport{}, err
	}
	return s.RestoreSnapshot(snap)
}

// SnapshotInfo describes one completed snapshot write.
type SnapshotInfo struct {
	// Path is the snapshot file written.
	Path string `json:"path"`
	// Bytes is the encoded size.
	Bytes int64 `json:"bytes"`
	// Resident is the number of resident sets captured.
	Resident int `json:"resident"`
	// Elapsed is the wall time of the capture + write.
	Elapsed time.Duration `json:"-"`
	// MaxLockPause is the longest single shard-lock hold of the capture —
	// the worst stall a foreground reference could have seen.
	MaxLockPause time.Duration `json:"-"`
}

// Snapshotter persists the cache to a file on a schedule and on demand.
// Writes are atomic (temp file + rename), serialized by an internal
// mutex, and never hold shard locks across the file I/O.
type Snapshotter struct {
	s        *Sharded
	path     string
	interval time.Duration

	mu   sync.Mutex // serializes snapshot writes
	stop chan struct{}
	done chan struct{}
	once sync.Once

	// Last-outcome record, so a persistently failing background loop is
	// observable (via Last and the serving layer's /stats) instead of
	// silently leaving an ever-staler file behind. Guarded by its own
	// mutex so readers never block behind an in-progress file write.
	lastMu     sync.Mutex
	lastGood   SnapshotInfo // last successful write
	lastGoodAt time.Time
	lastErr    error // outcome of the most recent attempt, nil on success
}

// NewSnapshotter creates a snapshotter writing to path. A positive
// interval starts a background loop that snapshots every interval;
// interval 0 means on-demand only (Snapshot and the final flush in Close
// still work). Close the snapshotter to stop the loop and flush a final
// snapshot.
func (s *Sharded) NewSnapshotter(path string, interval time.Duration) *Snapshotter {
	sn := &Snapshotter{
		s:        s,
		path:     path,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if interval > 0 {
		go sn.loop()
	} else {
		close(sn.done)
	}
	return sn
}

// Path returns the snapshot file path.
func (sn *Snapshotter) Path() string { return sn.path }

// Last reports snapshot health: the last SUCCESSFUL write (zero before
// one happens) with its completion time — how stale the on-disk file is
// — and the error of the most recent attempt, nil when it succeeded. The
// serving layer surfaces this in /stats so a background loop that keeps
// failing — full disk, permissions — is visible long before the stale
// file is needed. Last never blocks behind an in-progress write.
func (sn *Snapshotter) Last() (good SnapshotInfo, goodAt time.Time, err error) {
	sn.lastMu.Lock()
	defer sn.lastMu.Unlock()
	return sn.lastGood, sn.lastGoodAt, sn.lastErr
}

func (sn *Snapshotter) loop() {
	defer close(sn.done)
	t := time.NewTicker(sn.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// A failed periodic snapshot must not kill the loop: the disk
			// may be transiently full, and the next tick retries. The
			// outcome is recorded either way and surfaced via Last.
			_, _ = sn.Snapshot()
		case <-sn.stop:
			return
		}
	}
}

// Snapshot captures and writes one snapshot now, atomically replacing the
// file at Path. It is safe for concurrent use (writes serialize) and may
// be called from HTTP handlers.
func (sn *Snapshotter) Snapshot() (SnapshotInfo, error) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.writeAndRecord()
}

// ErrSnapshotInFlight reports that TrySnapshot found another snapshot
// write in progress.
var ErrSnapshotInFlight = errors.New("shard: a snapshot is already in flight")

// TrySnapshot is the non-queueing form of Snapshot for request-scoped
// callers: when another write is in flight it fails immediately with
// ErrSnapshotInFlight instead of queueing on the snapshotter's mutex,
// and a done ctx abandons the wait — the caller gets ctx.Err() while
// the write itself runs to completion in the background and records its
// outcome via Last, so a disconnected client never aborts a half-taken
// snapshot.
func (sn *Snapshotter) TrySnapshot(ctx context.Context) (SnapshotInfo, error) {
	if !sn.mu.TryLock() {
		return SnapshotInfo{}, ErrSnapshotInFlight
	}
	type outcome struct {
		info SnapshotInfo
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer sn.mu.Unlock()
		info, err := sn.writeAndRecord()
		ch <- outcome{info, err}
	}()
	select {
	case o := <-ch:
		return o.info, o.err
	case <-ctx.Done():
		return SnapshotInfo{}, ctx.Err()
	}
}

// writeAndRecord performs one write and publishes its outcome. Called
// with mu held.
func (sn *Snapshotter) writeAndRecord() (SnapshotInfo, error) {
	info, err := sn.write()
	// Publish the outcome while still holding the write mutex, so two
	// attempts cannot record out of order; Last takes only lastMu and
	// never blocks behind the file I/O above.
	sn.lastMu.Lock()
	sn.lastErr = err
	if err == nil {
		sn.lastGood, sn.lastGoodAt = info, monotime()
	}
	sn.lastMu.Unlock()
	return info, err
}

// write performs one capture + atomic file replace. Called with mu
// held. The capture streams (StreamSnapshot), so shard locks are held
// only per-chunk and never across the file I/O.
func (sn *Snapshotter) write() (SnapshotInfo, error) {
	start := monotime()
	dir := filepath.Dir(sn.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(sn.path)+".tmp*")
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	info, err := sn.s.StreamSnapshot(tmp)
	if err != nil {
		tmp.Close()
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), sn.path); err != nil {
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	info.Path = sn.path
	info.Elapsed = since(start)
	return info, nil
}

// Close stops the background loop (if any) and flushes one final
// snapshot — the graceful-shutdown path, so a SIGTERM preserves
// everything learned since the last periodic write. It is idempotent.
func (sn *Snapshotter) Close() (SnapshotInfo, error) {
	sn.once.Do(func() {
		close(sn.stop)
	})
	<-sn.done
	return sn.Snapshot()
}

// RestoreFile restores the cache from the snapshot file at path. A
// missing file is not an error — it is the normal cold start — and is
// reported by ok=false with a zero report.
func (s *Sharded) RestoreFile(path string) (rep RestoreReport, ok bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return RestoreReport{}, false, nil
	}
	if err != nil {
		return RestoreReport{}, false, err
	}
	defer f.Close()
	rep, err = s.Restore(f)
	if err != nil {
		return rep, false, fmt.Errorf("restoring %s: %w", path, err)
	}
	return rep, true, nil
}
