package shard

// Snapshot persistence for the concurrent layer. Export is copy-on-read:
// each shard's state is deep-copied under that shard's mutex only (one
// shard at a time — traffic on the other shards keeps flowing), and the
// expensive serialization runs outside every lock. Restore is the
// inverse and must happen before serving begins: each shard's core cache
// enforces that it has served nothing yet.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
)

// ExportState captures every shard's state plus the adaptive tuner's (if
// any) as a persist.Snapshot. Shards are locked one at a time, so the
// capture is per-shard consistent, not globally consistent — references
// that land mid-export appear in some shards and not others, the same
// tolerance Stats() already has.
func (s *Sharded) ExportState() *persist.Snapshot {
	snap := &persist.Snapshot{Shards: make([]*core.CacheState, len(s.shards))}
	for i, sh := range s.shards {
		// Buffered mode: flush this shard's pending hit applications right
		// before capturing it, so the image carries fully-applied recency
		// and λ state — a snapshot taken mid-traffic equals one taken
		// after quiesce, up to references that land after the barrier.
		s.drainShard(sh)
		sh.mu.Lock()
		snap.Shards[i] = sh.cache.ExportState()
		if sh.buf != nil {
			// Fold any deferred counts that never reached the core (hits
			// shed under buffer pressure, or promotions racing this
			// capture) into the exported Stats, so persisted counters stay
			// honest; the live cells keep them for the running process.
			h := sh.buf.hits.Load()
			snap.Shards[i].Stats.References += h
			snap.Shards[i].Stats.Hits += h
			c := sh.buf.cost.load()
			snap.Shards[i].Stats.CostTotal += c
			snap.Shards[i].Stats.CostSaved += c
			snap.Shards[i].Stats.BytesServed += sh.buf.bytes.Load()
		}
		sh.mu.Unlock()
		if c := snap.Shards[i].Clock; c > snap.Clock {
			snap.Clock = c
		}
	}
	if s.tuner != nil {
		snap.Admission = s.tuner.ExportState()
	}
	return snap
}

// Snapshot writes a snapshot of the full cache state to w. The per-shard
// copies happen under each shard's lock in turn; the encoding runs
// outside all locks.
func (s *Sharded) Snapshot(w io.Writer) error {
	return persist.Write(w, s.ExportState())
}

// RestoreReport aggregates the per-shard restore outcomes.
type RestoreReport struct {
	// Resident, Retained, DemotedResident and Dropped sum the per-shard
	// core.RestoreReport counters.
	Resident        int
	Retained        int
	DemotedResident int
	Dropped         int
	// ThetaRestored reports whether an adaptive admission threshold was
	// restored (snapshot carried one and this cache runs a tuner); Theta
	// is the published value when it was.
	ThetaRestored bool
	Theta         float64
}

// RestoreSnapshot pours a decoded snapshot into the cache. The shard
// count must match the snapshot's: entries were partitioned by signature
// when captured, and restoring N shards' state into M≠N shards would
// route queries away from their entries. The cache must not have served
// any traffic yet.
func (s *Sharded) RestoreSnapshot(snap *persist.Snapshot) (RestoreReport, error) {
	var rep RestoreReport
	if len(snap.Shards) != len(s.shards) {
		return rep, fmt.Errorf("shard: snapshot captured %d shards but this cache has %d; restart with -shards %d (or discard the snapshot)",
			len(snap.Shards), len(s.shards), len(snap.Shards))
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		r, err := sh.cache.RestoreState(snap.Shards[i])
		sh.mu.Unlock()
		if err != nil {
			return rep, fmt.Errorf("shard %d: %w", i, err)
		}
		rep.Resident += r.Resident
		rep.Retained += r.Retained
		rep.DemotedResident += r.DemotedResident
		rep.Dropped += r.Dropped
	}
	if snap.Admission != nil && s.tuner != nil {
		if err := s.tuner.RestoreState(snap.Admission); err != nil {
			return rep, err
		}
		rep.ThetaRestored = true
		rep.Theta = s.tuner.Threshold()
	}
	return rep, nil
}

// Restore reads a snapshot from r and pours it into the cache. See
// RestoreSnapshot for the preconditions.
func (s *Sharded) Restore(r io.Reader) (RestoreReport, error) {
	snap, err := persist.Read(r)
	if err != nil {
		return RestoreReport{}, err
	}
	return s.RestoreSnapshot(snap)
}

// SnapshotInfo describes one completed snapshot write.
type SnapshotInfo struct {
	// Path is the snapshot file written.
	Path string `json:"path"`
	// Bytes is the encoded size.
	Bytes int64 `json:"bytes"`
	// Resident is the number of resident sets captured.
	Resident int `json:"resident"`
	// Elapsed is the wall time of the capture + write.
	Elapsed time.Duration `json:"-"`
}

// Snapshotter persists the cache to a file on a schedule and on demand.
// Writes are atomic (temp file + rename), serialized by an internal
// mutex, and never hold shard locks across the file I/O.
type Snapshotter struct {
	s        *Sharded
	path     string
	interval time.Duration

	mu   sync.Mutex // serializes snapshot writes
	stop chan struct{}
	done chan struct{}
	once sync.Once

	// Last-outcome record, so a persistently failing background loop is
	// observable (via Last and the serving layer's /stats) instead of
	// silently leaving an ever-staler file behind. Guarded by its own
	// mutex so readers never block behind an in-progress file write.
	lastMu     sync.Mutex
	lastGood   SnapshotInfo // last successful write
	lastGoodAt time.Time
	lastErr    error // outcome of the most recent attempt, nil on success
}

// NewSnapshotter creates a snapshotter writing to path. A positive
// interval starts a background loop that snapshots every interval;
// interval 0 means on-demand only (Snapshot and the final flush in Close
// still work). Close the snapshotter to stop the loop and flush a final
// snapshot.
func (s *Sharded) NewSnapshotter(path string, interval time.Duration) *Snapshotter {
	sn := &Snapshotter{
		s:        s,
		path:     path,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if interval > 0 {
		go sn.loop()
	} else {
		close(sn.done)
	}
	return sn
}

// Path returns the snapshot file path.
func (sn *Snapshotter) Path() string { return sn.path }

// Last reports snapshot health: the last SUCCESSFUL write (zero before
// one happens) with its completion time — how stale the on-disk file is
// — and the error of the most recent attempt, nil when it succeeded. The
// serving layer surfaces this in /stats so a background loop that keeps
// failing — full disk, permissions — is visible long before the stale
// file is needed. Last never blocks behind an in-progress write.
func (sn *Snapshotter) Last() (good SnapshotInfo, goodAt time.Time, err error) {
	sn.lastMu.Lock()
	defer sn.lastMu.Unlock()
	return sn.lastGood, sn.lastGoodAt, sn.lastErr
}

func (sn *Snapshotter) loop() {
	defer close(sn.done)
	t := time.NewTicker(sn.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// A failed periodic snapshot must not kill the loop: the disk
			// may be transiently full, and the next tick retries. The
			// outcome is recorded either way and surfaced via Last.
			_, _ = sn.Snapshot()
		case <-sn.stop:
			return
		}
	}
}

// Snapshot captures and writes one snapshot now, atomically replacing the
// file at Path. It is safe for concurrent use (writes serialize) and may
// be called from HTTP handlers.
func (sn *Snapshotter) Snapshot() (SnapshotInfo, error) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	info, err := sn.write()
	// Publish the outcome while still holding the write mutex, so two
	// attempts cannot record out of order; Last takes only lastMu and
	// never blocks behind the file I/O above.
	sn.lastMu.Lock()
	sn.lastErr = err
	if err == nil {
		sn.lastGood, sn.lastGoodAt = info, time.Now()
	}
	sn.lastMu.Unlock()
	return info, err
}

// write performs one capture + atomic file replace. Called with mu held.
func (sn *Snapshotter) write() (SnapshotInfo, error) {
	start := time.Now()
	snap := sn.s.ExportState()

	dir := filepath.Dir(sn.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(sn.path)+".tmp*")
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := persist.Write(tmp, snap); err != nil {
		tmp.Close()
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	size, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		tmp.Close()
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), sn.path); err != nil {
		return SnapshotInfo{}, fmt.Errorf("shard: snapshot: %w", err)
	}
	return SnapshotInfo{
		Path:     sn.path,
		Bytes:    size,
		Resident: snap.Resident(),
		Elapsed:  time.Since(start),
	}, nil
}

// Close stops the background loop (if any) and flushes one final
// snapshot — the graceful-shutdown path, so a SIGTERM preserves
// everything learned since the last periodic write. It is idempotent.
func (sn *Snapshotter) Close() (SnapshotInfo, error) {
	sn.once.Do(func() {
		close(sn.stop)
	})
	<-sn.done
	return sn.Snapshot()
}

// RestoreFile restores the cache from the snapshot file at path. A
// missing file is not an error — it is the normal cold start — and is
// reported by ok=false with a zero report.
func (s *Sharded) RestoreFile(path string) (rep RestoreReport, ok bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return RestoreReport{}, false, nil
	}
	if err != nil {
		return RestoreReport{}, false, err
	}
	defer f.Close()
	rep, err = s.Restore(f)
	if err != nil {
		return rep, false, fmt.Errorf("restoring %s: %w", path, err)
	}
	return rep, true, nil
}
