package shard

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// logical returns a deterministic, strictly increasing time source so the
// tests never touch the wall clock.
func logical() func() float64 {
	var ticks atomic.Int64
	return func() float64 { return float64(ticks.Add(1)) / 1000 }
}

func newSharded(t *testing.T, cfg Config) *Sharded {
	t.Helper()
	if cfg.Now == nil {
		cfg.Now = logical()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Shards: 3, Cache: core.Config{Capacity: 1 << 20}}); err == nil {
		t.Error("non-power-of-two shard count must error")
	}
	if _, err := New(Config{Shards: -4, Cache: core.Config{Capacity: 1 << 20}}); err == nil {
		t.Error("negative shard count must error")
	}
	if _, err := New(Config{Shards: 16, Cache: core.Config{Capacity: 8}}); err == nil {
		t.Error("capacity smaller than shard count must error")
	}
	s, err := New(Config{Cache: core.Config{Capacity: 1 << 20, Policy: core.LNCRA, K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != DefaultShards {
		t.Errorf("default shards = %d, want %d", s.NumShards(), DefaultShards)
	}
}

func TestCapacitySplit(t *testing.T) {
	s := newSharded(t, Config{Shards: 8, Cache: core.Config{Capacity: 1005, Policy: core.LRU}})
	if got := s.Capacity(); got != 1005 {
		t.Errorf("total capacity = %d, want 1005 (remainder bytes must not be lost)", got)
	}
	u := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: core.Unlimited, Policy: core.LNCRA}})
	if u.Capacity() != core.Unlimited {
		t.Error("unlimited capacity must stay unlimited per shard")
	}
}

func TestReferenceHitMissAndStats(t *testing.T) {
	s := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA}})
	hit, _ := s.Reference(core.Request{QueryID: "q one", Size: 100, Cost: 50, Payload: "rows"})
	if hit {
		t.Fatal("first reference cannot hit")
	}
	hit, payload := s.Reference(core.Request{QueryID: "q  one", Size: 100, Cost: 50})
	if !hit || payload != "rows" {
		t.Fatalf("second reference: hit=%v payload=%v (IDs must be compressed before routing)", hit, payload)
	}
	st := s.Stats()
	if st.References != 2 || st.Hits != 1 || st.Admissions != 1 {
		t.Errorf("stats = %+v", st.Stats)
	}
	if st.CostSaved != 50 || st.CostTotal != 100 {
		t.Errorf("cost accounting: saved=%g total=%g", st.CostSaved, st.CostTotal)
	}
	if s.Resident() != 1 {
		t.Errorf("resident = %d", s.Resident())
	}
	if _, ok := s.Peek("q one"); !ok {
		t.Error("Peek must find the resident set")
	}
	if _, ok := s.Peek("never seen"); ok {
		t.Error("Peek must miss an unknown query")
	}
}

func TestInvalidateAcrossShards(t *testing.T) {
	s := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 1 << 20, Policy: core.LNCRA, K: 2}})
	for i := 0; i < 64; i++ {
		s.Reference(core.Request{
			QueryID:   fmt.Sprintf("query %d", i),
			Size:      64,
			Cost:      10,
			Relations: []string{"lineitem"},
		})
	}
	if _, ok := s.Peek("query 7"); !ok {
		t.Fatal("setup: query 7 not resident")
	}
	s.Reference(core.Request{QueryID: "orders scan", Size: 64, Cost: 10, Relations: []string{"orders"}})
	dropped := s.Invalidate("lineitem")
	if dropped != 64 {
		t.Errorf("dropped %d, want 64", dropped)
	}
	if _, ok := s.Peek("orders scan"); !ok {
		t.Error("invalidation must not touch other relations")
	}
	if s.Resident() != 1 {
		t.Errorf("resident after invalidate = %d, want 1", s.Resident())
	}
}

// TestConcurrentHammer drives hit/miss/eviction interleavings from many
// goroutines; run with -race. The invariant check afterwards proves the
// per-shard caches stayed internally consistent.
func TestConcurrentHammer(t *testing.T) {
	s := newSharded(t, Config{
		Shards: 8,
		Cache:  core.Config{Capacity: 64 << 10, K: 3, Policy: core.LNCRA, MetadataOverhead: 16},
	})
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Overlapping ID space: plenty of same-key contention.
				id := fmt.Sprintf("query %d", (w*perWorker+i*7)%512)
				s.Reference(core.Request{QueryID: id, Size: int64(64 + i%512), Cost: float64(10 + i%90)})
				if i%97 == 0 {
					s.Peek(id)
				}
				if i%503 == 0 {
					s.Invalidate("nonexistent")
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if want := int64(workers * perWorker); st.References != want {
		t.Errorf("references = %d, want %d", st.References, want)
	}
	if st.Hits == 0 || st.Evictions == 0 {
		t.Errorf("hammer should produce hits and evictions: %+v", st.Stats)
	}
}

// TestSingleflight parks N concurrent Load calls on one query ID behind a
// blocking loader and proves the loader ran exactly once.
func TestSingleflight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	arrived := make(chan struct{}, 64)
	loader := func(req core.Request) (any, int64, float64, error) {
		calls.Add(1)
		arrived <- struct{}{}
		<-release
		// Note: req.QueryID arrives compressed (delimiters collapsed).
		return "hot result", 128, 42, nil
	}
	s := newSharded(t, Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Loader: loader,
	})

	const waiters = 24
	var wg sync.WaitGroup
	results := make([]any, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = s.Load(core.Request{QueryID: "hot query"})
		}(i)
	}
	<-arrived // leader is inside the loader
	// Wait until every follower has found the flight and parked behind it
	// (Coalesced is counted at park time), then let the loader finish.
	for s.Stats().Coalesced < waiters-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times for one in-flight query ID, want 1", got)
	}
	for i := range results {
		if errs[i] != nil || results[i] != "hot result" {
			t.Fatalf("waiter %d: payload=%v err=%v", i, results[i], errs[i])
		}
	}
	st := s.Stats()
	if st.LoaderCalls != 1 {
		t.Errorf("LoaderCalls = %d, want 1", st.LoaderCalls)
	}
	if st.Coalesced != waiters-1 {
		t.Errorf("Coalesced = %d, want %d", st.Coalesced, waiters-1)
	}
	// A subsequent Load is a plain hit: no loader call.
	if _, hit, err := s.Load(core.Request{QueryID: "hot query"}); err != nil || !hit {
		t.Errorf("post-flight Load: hit=%v err=%v", hit, err)
	}
	if calls.Load() != 1 {
		t.Errorf("hit path must not run the loader")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSingleflightDistinctIDs verifies coalescing is per query ID: distinct
// in-flight IDs each execute once.
func TestSingleflightDistinctIDs(t *testing.T) {
	var calls atomic.Int64
	loader := func(req core.Request) (any, int64, float64, error) {
		calls.Add(1)
		return req.QueryID, 64, 10, nil
	}
	s := newSharded(t, Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Loader: loader,
	})
	const ids = 32
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i := 0; i < ids; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, _, err := s.Load(core.Request{QueryID: fmt.Sprintf("query %d", i)}); err != nil {
					t.Error(err)
				}
			}(i)
		}
	}
	wg.Wait()
	if got := calls.Load(); got != ids {
		// Each unique ID misses once (round 1) and hits (or coalesces)
		// afterwards, so exactly `ids` loader executions.
		t.Errorf("loader ran %d times, want %d", got, ids)
	}
}

// TestInvalidateFencesInflightLoad checks the coherence epoch: a load
// whose query executes while an invalidation lands must not admit its
// (possibly stale) result, though callers still receive the payload.
func TestInvalidateFencesInflightLoad(t *testing.T) {
	inLoader := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	s := newSharded(t, Config{
		Shards: 2,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Loader: func(req core.Request) (any, int64, float64, error) {
			if first.CompareAndSwap(true, false) {
				close(inLoader)
				<-release
			}
			return "pre-update rows", 64, 10, nil
		},
	})
	done := make(chan struct{})
	var payload any
	go func() {
		defer close(done)
		payload, _, _ = s.Load(core.Request{QueryID: "q over lineitem", Relations: []string{"lineitem"}})
	}()
	<-inLoader
	s.Invalidate("orders")   // unrelated relation: must NOT fence the flight
	s.Invalidate("lineitem") // coherence event on the flight's relation
	close(release)
	<-done
	if payload != "pre-update rows" {
		t.Fatalf("caller payload = %v", payload)
	}
	if _, ok := s.Peek("q over lineitem"); ok {
		t.Fatal("stale flight result must not be admitted after an invalidation")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The next Load re-executes and caches normally.
	if _, hit, err := s.Load(core.Request{QueryID: "other query"}); err != nil || hit {
		t.Fatalf("post-fence Load: hit=%v err=%v", hit, err)
	}
}

// TestUnrelatedInvalidateDoesNotFenceLoad is the scoping counterpart: an
// invalidation of relations the in-flight query does not read must not
// block its admission, or coherence chatter would collapse the hit ratio.
func TestUnrelatedInvalidateDoesNotFenceLoad(t *testing.T) {
	inLoader := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	s := newSharded(t, Config{
		Shards: 2,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Loader: func(req core.Request) (any, int64, float64, error) {
			if first.CompareAndSwap(true, false) {
				close(inLoader)
				<-release
			}
			return "rows", 64, 10, nil
		},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Load(core.Request{QueryID: "q over lineitem", Relations: []string{"lineitem"}})
	}()
	<-inLoader
	s.Invalidate("orders") // different relation: no fence
	close(release)
	<-done
	if _, ok := s.Peek("q over lineitem"); !ok {
		t.Fatal("invalidation of an unrelated relation must not block admission")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrorPropagates(t *testing.T) {
	boom := errors.New("backend down")
	s := newSharded(t, Config{
		Shards: 2,
		Cache:  core.Config{Capacity: 1 << 20, Policy: core.LNCRA, K: 2},
		Loader: func(core.Request) (any, int64, float64, error) { return nil, 0, 0, boom },
	})
	if _, _, err := s.Load(core.Request{QueryID: "q"}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Resident() != 0 {
		t.Error("failed load must not admit anything")
	}
}

// TestLoaderPanicDoesNotStrandFlight turns a loader panic into an error
// for all callers and leaves the shard usable: a stranded flight would
// deadlock every future Load of that query ID.
func TestLoaderPanicDoesNotStrandFlight(t *testing.T) {
	var calls atomic.Int64
	s := newSharded(t, Config{
		Shards: 2,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Loader: func(req core.Request) (any, int64, float64, error) {
			if calls.Add(1) == 1 {
				panic("malformed query")
			}
			return "recovered", 64, 10, nil
		},
	})
	if _, _, err := s.Load(core.Request{QueryID: "q"}); err == nil {
		t.Fatal("panicking loader must surface an error")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err) // in particular: no leaked flight
	}
	payload, hit, err := s.Load(core.Request{QueryID: "q"})
	if err != nil || hit || payload != "recovered" {
		t.Fatalf("retry after panic: payload=%v hit=%v err=%v", payload, hit, err)
	}
}

func TestLoadWithoutLoader(t *testing.T) {
	s := newSharded(t, Config{Shards: 2, Cache: core.Config{Capacity: 1 << 20, Policy: core.LRU}})
	if _, _, err := s.Load(core.Request{QueryID: "q"}); err == nil {
		t.Fatal("Load without a Loader must error")
	}
}

// TestConcurrentParityWithCore replays a TPC-D trace concurrently through
// the sharded LNC-RA cache and serially through one core.Cache of the same
// total capacity, and requires the cost-savings ratios to agree within two
// percentage points — partitioning and interleaving must not change the
// policy's character.
func TestConcurrentParityWithCore(t *testing.T) {
	_, tr, err := workload.StandardTPCD(0, workload.Config{Queries: 6000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	capacity := sim.CacheBytesForFraction(tr, 1)

	serial, _, err := sim.Replay(tr, core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA})
	if err != nil {
		t.Fatal(err)
	}

	s := newSharded(t, Config{Shards: 8, Cache: core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA}})
	const workers = 16
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(tr.Len()) {
					return
				}
				rec := &tr.Records[i]
				s.Reference(core.Request{
					QueryID: rec.QueryID,
					Time:    rec.Time,
					Size:    rec.Size,
					Cost:    rec.Cost,
				})
			}
		}()
	}
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.References != int64(tr.Len()) {
		t.Fatalf("replayed %d of %d records", st.References, tr.Len())
	}
	got, want := st.CostSavingsRatio(), serial.CSR()
	if math.Abs(got-want) > 0.02 {
		t.Errorf("sharded CSR %.4f vs serial %.4f: diverged by more than 2 points", got, want)
	}
	t.Logf("CSR: sharded %.4f, serial %.4f (Δ %.4f); HR: sharded %.4f, serial %.4f",
		got, want, got-want, st.HitRatio(), serial.HR())
}

func TestWallClockMonotonic(t *testing.T) {
	clock := WallClock()
	a := clock()
	b := clock()
	if a < 0 || b < a {
		t.Errorf("wall clock went backwards: %g then %g", a, b)
	}
}
