package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/persist"
)

// drive pushes deterministic traffic through the sharded cache.
func drive(s *Sharded, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	now := 0.0
	for i := 0; i < n; i++ {
		now += rng.Float64()
		s.Reference(core.Request{
			QueryID:   fmt.Sprintf("query-%d", rng.Intn(n/4+1)),
			Time:      now,
			Class:     rng.Intn(2),
			Size:      rng.Int63n(300) + 1,
			Cost:      float64(rng.Intn(1000)) + 1,
			Relations: []string{fmt.Sprintf("rel%d", rng.Intn(4))},
			Payload:   []byte("rows"),
		})
	}
}

func snapCfg(tuner *admission.Tuner) Config {
	return Config{
		Shards: 8,
		Cache:  core.Config{Capacity: 128 << 10, K: 3, Policy: core.LNCRA},
		Tuner:  tuner,
		Now:    logical(),
	}
}

func newTuner(t *testing.T) *admission.Tuner {
	t.Helper()
	// The window exceeds the traffic the tests drive, so the shard layer
	// never fires an async tuning round: the tests run TuneOnce
	// synchronously and the captures stay deterministic.
	tn, err := admission.New(admission.Config{Capacity: 128 << 10, Window: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// TestShardedSnapshotRestoreBitIdentical is the acceptance check:
// snapshot then restore of a populated sharded cache reproduces
// bit-identical residency, the exact per-shard Stats partition, and the
// published admission θ.
func TestShardedSnapshotRestoreBitIdentical(t *testing.T) {
	tuner := newTuner(t)
	src := newSharded(t, snapCfg(tuner))
	drive(src, 42, 6000)
	if _, ok := tuner.TuneOnce(); !ok {
		t.Fatal("tuning round did not score")
	}
	theta := tuner.Threshold()

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Determinism: capturing the same quiesced cache twice yields the
	// same bytes.
	var again bytes.Buffer
	if err := src.Snapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Fatal("two snapshots of a quiesced cache differ")
	}

	restoredTuner := newTuner(t)
	dst := newSharded(t, snapCfg(restoredTuner))
	rep, err := dst.Restore(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resident != src.Resident() {
		t.Fatalf("restored %d resident, source has %d", rep.Resident, src.Resident())
	}
	if !rep.ThetaRestored || restoredTuner.Threshold() != theta {
		t.Fatalf("θ: restored=%v got %g want %g", rep.ThetaRestored, restoredTuner.Threshold(), theta)
	}

	// Bit-identical residency and Stats partition, shard by shard.
	srcStats, dstStats := src.ShardStats(), dst.ShardStats()
	for i := range srcStats {
		if srcStats[i] != dstStats[i] {
			t.Fatalf("shard %d stats differ:\n  src %+v\n  dst %+v", i, srcStats[i], dstStats[i])
		}
	}
	for i := range src.shards {
		a := src.shards[i].cache.ExportState()
		b := dst.shards[i].cache.ExportState()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shard %d state differs after restore", i)
		}
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// And the restored cache re-snapshots to the same bytes.
	var rebuf bytes.Buffer
	if err := dst.Snapshot(&rebuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, rebuf.Bytes()) {
		t.Fatal("restored cache snapshots to different bytes")
	}
}

// TestRestoreShardCountMismatch: entries were partitioned by signature at
// capture; restoring into a different shard count must fail with a clear
// message, not scatter entries into unreachable shards.
func TestRestoreShardCountMismatch(t *testing.T) {
	src := newSharded(t, Config{Shards: 8, Cache: core.Config{Capacity: 64 << 10, Policy: core.LNCRA}, Now: logical()})
	drive(src, 1, 500)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 64 << 10, Policy: core.LNCRA}, Now: logical()})
	if _, err := dst.Restore(&buf); err == nil {
		t.Fatal("shard-count mismatch must fail")
	}
}

// testDeriver is a no-op Deriver+EventSink used to observe restore
// events through the shard wiring.
type testDeriver struct {
	mu       sync.Mutex
	restored int
}

func newTestDeriver() *testDeriver { return &testDeriver{} }

func (d *testDeriver) Derive(core.Request) (core.Derivation, bool) { return core.Derivation{}, false }
func (d *testDeriver) Emit(ev core.Event) {
	if ev.Kind == core.EventRestore {
		d.mu.Lock()
		d.restored++
		d.mu.Unlock()
	}
}

// TestRestoreAnnouncesResidencyToSinks: the per-shard event wiring must
// deliver one EventRestore per restored resident entry to the configured
// deriver sink.
func TestRestoreAnnouncesResidencyToSinks(t *testing.T) {
	src := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 1 << 20, Policy: core.LNCRA}, Now: logical()})
	drive(src, 9, 800)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	d := newTestDeriver()
	dst := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 1 << 20, Policy: core.LNCRA}, Deriver: d, Now: logical()})
	rep, err := dst.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	restored := d.restored
	d.mu.Unlock()
	if restored != rep.Resident || restored == 0 {
		t.Fatalf("deriver saw %d restore events, report says %d resident", restored, rep.Resident)
	}
}

// TestSnapshotterFileLifecycle covers the on-demand write, the atomic
// replace, RestoreFile, and the final flush in Close.
func TestSnapshotterFileLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.wmsnap")

	src := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 64 << 10, Policy: core.LNCRA}, Now: logical()})
	drive(src, 3, 1000)

	sn := src.NewSnapshotter(path, 0)
	info, err := sn.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != path || info.Resident != src.Resident() || info.Bytes <= 0 {
		t.Fatalf("info = %+v", info)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != info.Bytes {
		t.Fatalf("file is %d bytes, info says %d", fi.Size(), info.Bytes)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the snapshot", len(entries))
	}

	// More traffic, then Close must flush the newer state.
	drive(src, 4, 500)
	info2, err := sn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info2.Resident != src.Resident() {
		t.Fatalf("final flush captured %d resident, cache has %d", info2.Resident, src.Resident())
	}

	dst := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 64 << 10, Policy: core.LNCRA}, Now: logical()})
	rep, ok, err := dst.RestoreFile(path)
	if err != nil || !ok {
		t.Fatalf("RestoreFile: ok=%v err=%v", ok, err)
	}
	if rep.Resident != src.Resident() {
		t.Fatalf("restored %d, want %d", rep.Resident, src.Resident())
	}

	// A missing file is a cold start, not an error.
	cold := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 64 << 10, Policy: core.LNCRA}, Now: logical()})
	if _, ok, err := cold.RestoreFile(filepath.Join(dir, "absent")); ok || err != nil {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}
}

// TestSnapshotterLastSurvivesFailure: a failed attempt must record its
// error WITHOUT clobbering the last successful write's info — the
// operator needs both "it is failing now" and "this is how stale the
// good file is".
func TestSnapshotterLastSurvivesFailure(t *testing.T) {
	dir := t.TempDir()
	src := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 64 << 10, Policy: core.LNCRA}, Now: logical()})
	drive(src, 8, 300)

	sn := src.NewSnapshotter(filepath.Join(dir, "ok.wmsnap"), 0)
	want, err := sn.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Break the write path by pointing a second snapshotter into a
	// directory that does not exist.
	bad := src.NewSnapshotter(filepath.Join(dir, "missing", "x.wmsnap"), 0)
	if _, err := bad.Snapshot(); err == nil {
		t.Fatal("snapshot into a missing directory must fail")
	}
	if _, _, lastErr := bad.Last(); lastErr == nil {
		t.Fatal("failed attempt must be recorded")
	}

	// The good snapshotter's record is independent and intact; a failure
	// on IT must also preserve the last good info.
	good, goodAt, lastErr := sn.Last()
	if lastErr != nil || goodAt.IsZero() || good != want {
		t.Fatalf("good record disturbed: %+v at %v err %v", good, goodAt, lastErr)
	}
	sn.path = filepath.Join(dir, "missing", "y.wmsnap")
	if _, err := sn.Snapshot(); err == nil {
		t.Fatal("redirected snapshot must fail")
	}
	good2, goodAt2, lastErr2 := sn.Last()
	if lastErr2 == nil {
		t.Fatal("failure must surface in Last")
	}
	if good2 != want || !goodAt2.Equal(goodAt) {
		t.Fatalf("failure clobbered the last good write: %+v at %v", good2, goodAt2)
	}
}

// TestSnapshotterBackgroundLoop: a short interval must produce a file
// without any on-demand call, and Close must terminate the loop.
func TestSnapshotterBackgroundLoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bg.wmsnap")
	src := newSharded(t, Config{Shards: 4, Cache: core.Config{Capacity: 64 << 10, Policy: core.LNCRA}, Now: logical()})
	drive(src, 5, 200)
	sn := src.NewSnapshotter(path, 10*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never wrote a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := sn.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotUnderConcurrentTraffic: exporting while references and
// invalidations are in flight must produce a decodable snapshot and
// leave the cache consistent (run with -race).
func TestSnapshotUnderConcurrentTraffic(t *testing.T) {
	src := newSharded(t, Config{Shards: 8, Cache: core.Config{Capacity: 256 << 10, Policy: core.LNCRA}, Now: logical()})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				src.Reference(core.Request{
					QueryID: fmt.Sprintf("q%d", rng.Intn(500)),
					Size:    rng.Int63n(200) + 1, Cost: float64(rng.Intn(100)) + 1,
					Relations: []string{fmt.Sprintf("rel%d", rng.Intn(3))},
				})
				if rng.Intn(100) == 0 {
					src.Invalidate(fmt.Sprintf("rel%d", rng.Intn(3)))
				}
			}
		}(int64(w))
	}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := src.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := persist.Read(&buf); err != nil {
			t.Fatalf("snapshot %d undecodable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := src.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
