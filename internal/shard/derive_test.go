package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/storage"
)

// deriveTestDB is a small one-relation database the loader can execute
// against quickly.
func deriveTestDB() *relation.Database {
	db := &relation.Database{
		Name:     "mini",
		PageSize: 512,
		Relations: map[string]*relation.Relation{
			"fact": {
				Name: "fact", Rows: 400, Seed: 0xdec0de,
				Columns: []relation.Column{
					{Name: "id", Kind: relation.KindSequential, Width: 8},
					{Name: "day", Kind: relation.KindUniform, Cardinality: 50, Width: 4},
					{Name: "amt", Kind: relation.KindUniform, Cardinality: 83, Width: 8},
				},
			},
		},
	}
	if err := db.Validate(); err != nil {
		panic(err)
	}
	return db
}

// planLoader executes the descriptor registered for a query ID through
// the engine, counting executions per ID.
type planLoader struct {
	eng   *engine.Engine
	mu    sync.Mutex
	plans map[string]*engine.Descriptor
	execs map[string]*atomic.Int64
}

func (l *planLoader) register(id string, d *engine.Descriptor) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.plans[core.CompressID(id)] = d
	l.execs[core.CompressID(id)] = &atomic.Int64{}
}

func (l *planLoader) load(req core.Request) (any, int64, float64, error) {
	l.mu.Lock()
	d := l.plans[req.QueryID]
	ctr := l.execs[req.QueryID]
	l.mu.Unlock()
	if d == nil {
		return nil, 0, 0, fmt.Errorf("no plan registered for %q", req.QueryID)
	}
	ctr.Add(1)
	var sink storage.CountingSink
	res, err := l.eng.Execute(d.Plan(), &sink)
	if err != nil {
		return nil, 0, 0, err
	}
	return res, res.Bytes(), float64(sink.N), nil
}

// TestLoadCoalescesOntoOneDerivation drives N concurrent Loads of the
// same derivable query: the flight must coalesce onto a single derivation
// with zero loader executions for the derived query, and every caller
// must receive the rows remote execution would produce. Run under -race
// by the concurrency CI job.
func TestLoadCoalescesOntoOneDerivation(t *testing.T) {
	db := deriveTestDB()
	eng := engine.New(db)
	dvr := derive.New(derive.Config{Engine: eng, PageSize: db.PageSize})
	loader := &planLoader{eng: eng, plans: map[string]*engine.Descriptor{}, execs: map[string]*atomic.Int64{}}

	s, err := New(Config{
		Shards:  4,
		Cache:   core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Loader:  loader.load,
		Deriver: dvr,
	})
	if err != nil {
		t.Fatal(err)
	}

	anc := &engine.Descriptor{
		Rel:   "fact",
		Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 0, Hi: 40}},
		Cols:  []string{"day", "amt"},
	}
	child := &engine.Descriptor{
		Rel:   "fact",
		Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 5, Hi: 20}},
		Cols:  []string{"day", "amt"},
	}
	loader.register("anc", anc)
	loader.register("child", child)

	// Seed the ancestor through the loader.
	if _, _, err := s.Load(core.Request{QueryID: "anc", Relations: []string{"fact"}, Plan: anc}); err != nil {
		t.Fatal(err)
	}

	want := func() *engine.Result {
		var sink storage.CountingSink
		res, err := eng.Execute(child.Plan(), &sink)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	const workers = 32
	var wg sync.WaitGroup
	results := make([]*engine.Result, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload, _, err := s.Load(core.Request{QueryID: "child", Relations: []string{"fact"}, Plan: child})
			if err != nil {
				errs[w] = err
				return
			}
			results[w], _ = payload.(*engine.Result)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w, res := range results {
		if res == nil {
			t.Fatalf("worker %d received %T payload", w, results[w])
		}
		if len(res.Rows) != len(want.Rows) {
			t.Fatalf("worker %d: %d rows, want %d", w, len(res.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				if res.Rows[i][j] != want.Rows[i][j] {
					t.Fatalf("worker %d row %d differs: %v vs %v", w, i, res.Rows[i], want.Rows[i])
				}
			}
		}
	}

	if n := loader.execs[core.CompressID("child")].Load(); n != 0 {
		t.Fatalf("loader executed the derivable query %d times, want 0", n)
	}
	st := s.Stats()
	if st.Derivations != 1 {
		t.Fatalf("Derivations = %d, want exactly 1 (singleflight coalescing)", st.Derivations)
	}
	if st.DerivedHits != 1 {
		t.Fatalf("DerivedHits = %d, want 1 (followers hit the admitted derived set)", st.DerivedHits)
	}
	if st.LoaderCalls != 1 {
		t.Fatalf("LoaderCalls = %d, want 1 (the ancestor seed only)", st.LoaderCalls)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadDerivedStaleNotCached ensures an invalidation landing during a
// derivation fences the result out of the cache, exactly as it does for
// loader executions.
func TestLoadDerivedStaleNotCached(t *testing.T) {
	db := deriveTestDB()
	eng := engine.New(db)
	dvr := derive.New(derive.Config{Engine: eng, PageSize: db.PageSize})

	gate := make(chan struct{})
	released := make(chan struct{})
	blockingLoader := func(req core.Request) (any, int64, float64, error) {
		close(released)
		<-gate
		return "rows", 64, 100, nil
	}
	s, err := New(Config{
		Shards:  1,
		Cache:   core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Loader:  blockingLoader,
		Deriver: dvr,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The underivable first load blocks in the loader while we invalidate
	// its relation; the result must not be cached.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, hit, err := s.Load(core.Request{QueryID: "q", Relations: []string{"fact"},
			Plan: &engine.Descriptor{Rel: "fact", Cols: []string{"day"}}}); err != nil || hit {
			t.Errorf("load: hit=%v err=%v", hit, err)
		}
	}()
	<-released
	s.Invalidate("fact")
	close(gate)
	<-done
	if _, ok := s.Peek("q"); ok {
		t.Fatal("stale result was cached")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
