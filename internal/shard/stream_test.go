package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/telemetry"
)

// TestStreamSnapshotMatchesWrite is the byte-equivalence acceptance check
// for the streaming path: on a quiesced cache, StreamSnapshot must emit
// exactly the bytes of the materialize-then-encode path
// (persist.Write over ExportState), in both locking modes and with the
// admission section present.
func TestStreamSnapshotMatchesWrite(t *testing.T) {
	for _, buffered := range []bool{false, true} {
		name := "locked"
		if buffered {
			name = "buffered"
		}
		t.Run(name, func(t *testing.T) {
			tuner := newTuner(t)
			cfg := snapCfg(tuner)
			cfg.Buffered = buffered
			s := newSharded(t, cfg)
			drive(s, 7, 5000)
			if _, ok := tuner.TuneOnce(); !ok {
				t.Fatal("tuning round did not score")
			}

			var want bytes.Buffer
			if err := persist.Write(&want, s.ExportState()); err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			info, err := s.StreamSnapshot(&got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("streamed snapshot differs from persist.Write(ExportState()): %d vs %d bytes",
					got.Len(), want.Len())
			}
			if info.Bytes != int64(got.Len()) {
				t.Errorf("info.Bytes = %d, want %d", info.Bytes, got.Len())
			}
			if info.Resident != s.Resident() {
				t.Errorf("info.Resident = %d, want %d", info.Resident, s.Resident())
			}
			if info.MaxLockPause <= 0 {
				t.Error("MaxLockPause not recorded")
			}
			if info.MaxLockPause > info.Elapsed {
				t.Errorf("MaxLockPause %v exceeds total Elapsed %v", info.MaxLockPause, info.Elapsed)
			}
		})
	}
}

// TestStreamSnapshotTelemetry: a capture through a registry-wired cache
// must publish the snapshot metrics (duration histogram, bytes and max
// lock pause gauges) in both Snapshot() and the Prometheus exposition.
func TestStreamSnapshotTelemetry(t *testing.T) {
	cfg := snapCfg(nil)
	cfg.Registry = telemetry.NewRegistry()
	s := newSharded(t, cfg)
	drive(s, 11, 1000)

	var buf bytes.Buffer
	info, err := s.StreamSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Registry().Snapshot()
	if snap.SnapshotLatency == nil || snap.SnapshotLatency.Count != 1 {
		t.Fatalf("snapshot latency histogram not observed: %+v", snap.SnapshotLatency)
	}
	if snap.SnapshotBytes != info.Bytes {
		t.Errorf("SnapshotBytes = %d, want %d", snap.SnapshotBytes, info.Bytes)
	}
	if snap.SnapshotMaxLockPauseSeconds <= 0 {
		t.Error("SnapshotMaxLockPauseSeconds not recorded")
	}

	var prom strings.Builder
	if err := s.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"watchman_snapshot_duration_seconds_count 1",
		"watchman_snapshot_bytes ",
		"watchman_snapshot_max_lock_pause_seconds ",
	} {
		if !strings.Contains(prom.String(), family) {
			t.Errorf("exposition missing %q", family)
		}
	}
}

// TestSnapshotHammer is the -race battery for the streaming capture:
// snapshots taken repeatedly under concurrent Reference + Invalidate
// traffic, in both locking modes, must each decode and restore into a
// cache that passes CheckInvariants — and whose relation index is
// consistent enough to serve a coherence event correctly afterwards.
func TestSnapshotHammer(t *testing.T) {
	for _, buffered := range []bool{false, true} {
		name := "locked"
		if buffered {
			name = "buffered"
		}
		t.Run(name, func(t *testing.T) {
			// A small admission window: the spinning writers below miss at a
			// high rate, and every capture exports the tuner's whole sample
			// window — the test exercises concurrency, not encode volume.
			tuner, err := admission.New(admission.Config{Capacity: 128 << 10, Window: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			cfg := snapCfg(tuner)
			cfg.Buffered = buffered
			s := newSharded(t, cfg)
			drive(s, 3, 2000) // pre-populate so the first captures are not empty

			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					now := 1e6 // past the pre-populated clock
					for i := 0; !stop.Load(); i++ {
						now += rng.Float64()
						s.Reference(core.Request{
							QueryID:   fmt.Sprintf("query-%d", rng.Intn(600)),
							Time:      now,
							Class:     rng.Intn(2),
							Size:      rng.Int63n(300) + 1,
							Cost:      float64(rng.Intn(1000)) + 1,
							Relations: []string{fmt.Sprintf("rel%d", rng.Intn(4))},
							Payload:   []byte("rows"),
						})
						if i%512 == 0 {
							s.Invalidate(fmt.Sprintf("rel%d", rng.Intn(4)))
						}
					}
				}(int64(w + 1))
			}

			var captures [][]byte
			for i := 0; i < 5; i++ {
				var buf bytes.Buffer
				if _, err := s.StreamSnapshot(&buf); err != nil {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("capture %d under load: %v", i, err)
				}
				captures = append(captures, buf.Bytes())
			}
			stop.Store(true)
			wg.Wait()

			for i, raw := range captures {
				restoredTuner := newTuner(t)
				rcfg := snapCfg(restoredTuner)
				rcfg.Buffered = buffered
				dst := newSharded(t, rcfg)
				if _, err := dst.Restore(bytes.NewReader(raw)); err != nil {
					t.Fatalf("capture %d does not restore: %v", i, err)
				}
				if err := dst.CheckInvariants(); err != nil {
					t.Fatalf("capture %d: restored cache invariants: %v", i, err)
				}
				// Relation-index consistency: a coherence event on the
				// restored cache must drop every entry reading the relation
				// and leave the index coherent.
				dst.Invalidate("rel1")
				if err := dst.CheckInvariants(); err != nil {
					t.Fatalf("capture %d: invariants after Invalidate on restored cache: %v", i, err)
				}
			}
		})
	}
}

// TestTrySnapshotInFlight: a second request-scoped snapshot attempt while
// one is in flight must fail immediately with ErrSnapshotInFlight rather
// than queue, and succeed once the writer is free.
func TestTrySnapshotInFlight(t *testing.T) {
	s := newSharded(t, snapCfg(nil))
	drive(s, 5, 500)
	path := filepath.Join(t.TempDir(), "snap.wmsnap")
	sn := s.NewSnapshotter(path, 0)
	defer sn.Close()

	sn.mu.Lock() // simulate an in-flight write deterministically
	if _, err := sn.TrySnapshot(context.Background()); !errors.Is(err, ErrSnapshotInFlight) {
		t.Fatalf("TrySnapshot during a write: err = %v, want ErrSnapshotInFlight", err)
	}
	sn.mu.Unlock()

	info, err := sn.TrySnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != path {
		t.Errorf("info.Path = %q, want %q", info.Path, path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing after TrySnapshot: %v", err)
	}
}

// TestTrySnapshotAbandonedContext: a caller whose context dies gets
// ctx.Err() back, but the write itself must run to completion in the
// background and record its outcome — a disconnected HTTP client must
// never abort a half-taken snapshot.
func TestTrySnapshotAbandonedContext(t *testing.T) {
	s := newSharded(t, snapCfg(nil))
	drive(s, 5, 500)
	path := filepath.Join(t.TempDir(), "snap.wmsnap")
	sn := s.NewSnapshotter(path, 0)
	defer sn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sn.TrySnapshot(ctx); err != nil && !errors.Is(err, context.Canceled) {
		// The write can beat the canceled-context branch of the select on a
		// fast machine; both outcomes are legal, other errors are not.
		t.Fatalf("TrySnapshot with dead ctx: err = %v, want context.Canceled or nil", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		good, goodAt, err := sn.Last()
		if err == nil && !goodAt.IsZero() {
			if good.Path != path {
				t.Errorf("background write recorded path %q, want %q", good.Path, path)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background write never recorded an outcome: good=%+v err=%v", good, err)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing after abandoned TrySnapshot: %v", err)
	}
}
