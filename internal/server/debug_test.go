package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// newDebugServer builds a single-shard server with a flight recorder
// capturing every span, so tests see deterministic rings.
func newDebugServer(t *testing.T, cfg core.Config) (*httptest.Server, *shard.Sharded, *flight.Recorder) {
	t.Helper()
	rec := flight.New(flight.Config{SampleEvery: 1, SlowThreshold: -1})
	sc, err := shard.New(shard.Config{Shards: 1, Cache: cfg, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sc))
	t.Cleanup(ts.Close)
	return ts, sc, rec
}

// capturingAdmitter wraps an admitter and records every comparison it
// ruled on — the mirror oracle for the explain replay test.
type capturingAdmitter struct {
	inner    core.Admitter
	profits  []float64
	bars     []float64
	verdicts []bool
}

func (a *capturingAdmitter) Admit(d core.AdmissionDecision) bool {
	ok := a.inner.Admit(d)
	a.profits = append(a.profits, d.Profit)
	a.bars = append(a.bars, d.Bar)
	a.verdicts = append(a.verdicts, ok)
	return ok
}

// TestExplainReproducesRejection replays a deterministic trace twice: once
// through the served single-shard cache with the flight recorder, once
// through a bare core cache whose admitter records the comparisons it
// evaluated. The explain endpoint must report the rejected signature's
// profit and bar bit-for-bit equal to what the core computed, with LNC-A's
// θ = 1 and the inequality spelled out.
func TestExplainReproducesRejection(t *testing.T) {
	cfg := core.Config{Capacity: 1000, K: 2, Policy: core.LNCRA}
	ts, _, _ := newDebugServer(t, cfg)

	refs := []struct {
		id   string
		time float64
		cost float64
	}{
		{"hot", 1, 500}, {"hot", 2, 500}, {"hot", 3, 500},
		{"hot", 4, 500}, {"hot", 5, 500}, {"hot", 6, 500},
		{"cheap", 10, 0.001},
	}
	// Mirror replay through a bare core cache with a capturing LNC-A.
	oracle := &capturingAdmitter{inner: core.LNCA()}
	mirrorCfg := cfg
	mirrorCfg.Admitter = oracle
	mirror, err := core.New(mirrorCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		req := ReferenceRequest{QueryID: r.id, Time: r.time, Size: 1000, Cost: r.cost}
		if resp, data := postJSON(t, ts.URL+"/v1/reference", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %s: %d %s", r.id, resp.StatusCode, data)
		}
		mirror.Reference(core.Request{QueryID: r.id, Time: r.time, Size: 1000, Cost: r.cost})
	}
	if len(oracle.verdicts) == 0 || oracle.verdicts[len(oracle.verdicts)-1] {
		t.Fatalf("mirror replay must end in a rejection, verdicts = %v", oracle.verdicts)
	}
	wantProfit := oracle.profits[len(oracle.profits)-1]
	wantBar := oracle.bars[len(oracle.bars)-1]

	var out ExplainResponse
	if code := getJSON(t, ts.URL+"/v1/explain/cheap", &out); code != http.StatusOK {
		t.Fatalf("explain: status %d", code)
	}
	if out.Resident {
		t.Error("rejected set must not be resident")
	}
	if out.QueryID != "cheap" || out.ID != core.CompressID("cheap") {
		t.Errorf("identity = %+v", out)
	}
	d := out.Decision
	if d == nil {
		t.Fatal("no decision recorded for the rejected signature")
	}
	if d.Kind != "miss_rejected" || !d.Decided {
		t.Fatalf("decision = %+v, want a decided rejection", d)
	}
	if d.Theta != 1 {
		t.Errorf("θ = %g, want 1 (static LNC-A)", d.Theta)
	}
	if d.Profit != wantProfit || d.Bar != wantBar {
		t.Errorf("recorded profit=%g bar=%g, core evaluated profit=%g bar=%g (must match exactly)",
			d.Profit, d.Bar, wantProfit, wantBar)
	}
	if d.HasHistory {
		t.Error("first-reference rejection must report the e-profit estimate")
	}
	for _, frag := range []string{
		fmt.Sprintf("%g", wantProfit),
		fmt.Sprintf("%g", wantBar),
		"θ·bar", "rejected by LNC-A", "admit requires profit > θ·bar",
	} {
		if !strings.Contains(out.Explanation, frag) {
			t.Errorf("explanation %q missing %q", out.Explanation, frag)
		}
	}

	// The resident hot set explains as a free-space admission.
	var hot ExplainResponse
	if code := getJSON(t, ts.URL+"/v1/explain/hot", &hot); code != http.StatusOK {
		t.Fatalf("explain hot: status %d", code)
	}
	if !hot.Resident || hot.Decision == nil || hot.Decision.Kind != "miss_admitted" {
		t.Errorf("hot = %+v", hot)
	}
	if hot.Decision.Decided {
		t.Error("free-space admission must be undecided")
	}
	if !strings.Contains(hot.Explanation, "free space") {
		t.Errorf("explanation %q", hot.Explanation)
	}

	// A signature the cache never saw is a 404.
	if code := getJSON(t, ts.URL+"/v1/explain/never-seen", nil); code != http.StatusNotFound {
		t.Errorf("unknown signature: status %d, want 404", code)
	}
}

// TestDebugRequests exercises the span endpoint: recency order, the n
// bound, the slow ordering and parameter validation.
func TestDebugRequests(t *testing.T) {
	ts, sc, _ := newDebugServer(t, core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA})
	for i := 0; i < 10; i++ {
		sc.Reference(shard.Request{QueryID: fmt.Sprintf("q%d", i), Time: float64(i + 1), Size: 64, Cost: 10})
	}
	var out DebugRequestsResponse
	if code := getJSON(t, ts.URL+"/debug/requests", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !out.Sampled {
		t.Error("sampled flag must be set")
	}
	if len(out.Spans) != 10 {
		t.Fatalf("spans = %d, want 10", len(out.Spans))
	}
	if out.Spans[0].ID != core.CompressID("q9") {
		t.Errorf("newest span = %q, want q9", out.Spans[0].ID)
	}
	for _, sp := range out.Spans {
		if sp.Outcome != "miss_admitted" {
			t.Errorf("span %s outcome = %q", sp.ID, sp.Outcome)
		}
		if sp.TotalNanos <= 0 {
			t.Errorf("span %s total = %d, want > 0", sp.ID, sp.TotalNanos)
		}
		if sp.Stages["lookup"] <= 0 {
			t.Errorf("span %s has no lookup stage: %v", sp.ID, sp.Stages)
		}
	}

	if code := getJSON(t, ts.URL+"/debug/requests?n=3", &out); code != http.StatusOK || len(out.Spans) != 3 {
		t.Errorf("n=3: status %d, %d spans", code, len(out.Spans))
	}
	if code := getJSON(t, ts.URL+"/debug/requests?slow=1&n=5", &out); code != http.StatusOK || len(out.Spans) != 5 {
		t.Errorf("slow: status %d, %d spans", code, len(out.Spans))
	}
	for i := 1; i < len(out.Spans); i++ {
		if out.Spans[i-1].TotalNanos < out.Spans[i].TotalNanos {
			t.Errorf("slow log not ordered by duration: %d < %d", out.Spans[i-1].TotalNanos, out.Spans[i].TotalNanos)
		}
	}
	if code := getJSON(t, ts.URL+"/debug/requests?n=zero", nil); code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/debug/requests?n=-1", nil); code != http.StatusBadRequest {
		t.Errorf("negative n: status %d, want 400", code)
	}
}

// TestDebugEndpointsWithoutRecorder checks both endpoints 404 cleanly when
// no recorder is attached.
func TestDebugEndpointsWithoutRecorder(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/debug/requests", "/v1/explain/whatever"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "no flight recorder") {
			t.Errorf("%s: body %q must say there is no recorder", path, body)
		}
	}
}

// TestPprofMounting checks pprof is reachable only after EnableProfiling.
func TestPprofMounting(t *testing.T) {
	sc, err := shard.New(shard.Config{Shards: 1, Cache: core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA}})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sc)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/debug/pprof/", nil); code != http.StatusNotFound {
		t.Errorf("pprof before EnableProfiling: status %d, want 404", code)
	}
	srv.EnableProfiling()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: status %d, want 200", resp.StatusCode)
	}
}

// TestMetricsBuildInfo checks /metrics carries the build-info gauge and
// the uptime counter alongside the cache gauges.
func TestMetricsBuildInfo(t *testing.T) {
	sc, err := shard.New(shard.Config{
		Shards:   1,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Registry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sc))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `watchman_build_info{version="`) {
		t.Errorf("no build info gauge in:\n%s", text)
	}
	if !strings.Contains(text, `go_version="go`) {
		t.Errorf("no go_version label in:\n%s", text)
	}
	if !strings.Contains(text, "watchman_uptime_seconds ") {
		t.Errorf("no uptime metric in:\n%s", text)
	}
	for _, ty := range []string{
		"# TYPE watchman_build_info gauge",
		"# TYPE watchman_uptime_seconds gauge",
	} {
		if !strings.Contains(text, ty) {
			t.Errorf("missing %q", ty)
		}
	}
}

// TestStatsCSVRelationSection checks the per-relation CSV view matches the
// JSON per-relation section, and that unknown sections are rejected.
func TestStatsCSVRelationSection(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc, err := shard.New(shard.Config{
		Shards:   2,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sc))
	defer ts.Close()

	for i := 0; i < 4; i++ {
		sc.Reference(shard.Request{QueryID: "q1", Time: float64(i + 1), Size: 64, Cost: 10, Relations: []string{"lineitem"}})
	}
	sc.Reference(shard.Request{QueryID: "q2", Time: 5, Size: 64, Cost: 10, Relations: []string{"orders"}})

	resp, err := http.Get(ts.URL + "/stats?format=csv&section=relation")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/csv") {
		t.Errorf("content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 relations:\n%s", len(lines), body)
	}
	if !strings.HasPrefix(lines[0], "relation,references,hits,") {
		t.Errorf("header = %q", lines[0])
	}
	var lineitem string
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "lineitem,") {
			lineitem = l
		}
	}
	if lineitem == "" {
		t.Fatalf("no lineitem row in:\n%s", body)
	}
	// 4 references, 3 hits (first was a miss).
	if !strings.HasPrefix(lineitem, "lineitem,4,3,") {
		t.Errorf("lineitem row = %q, want 4 references and 3 hits", lineitem)
	}

	// The default section still renders the per-class table.
	resp, err = http.Get(ts.URL + "/stats?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "class,") {
		t.Errorf("default csv: status %d, body %q", resp.StatusCode, body)
	}

	if code := getJSON(t, ts.URL+"/stats?format=csv&section=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("bogus section: status %d, want 400", code)
	}
}
