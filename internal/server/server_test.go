package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
)

func newTestServer(t *testing.T) (*httptest.Server, *shard.Sharded) {
	t.Helper()
	sc, err := shard.New(shard.Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sc))
	t.Cleanup(ts.Close)
	return ts, sc
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestReferenceMissThenHit(t *testing.T) {
	ts, _ := newTestServer(t)
	req := ReferenceRequest{QueryID: "select sum(x) from t", Size: 128, Cost: 900, Payload: "the rows"}

	resp, data := postJSON(t, ts.URL+"/v1/reference", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ReferenceResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Hit {
		t.Fatal("first reference must miss")
	}

	resp, data = postJSON(t, ts.URL+"/v1/reference", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Hit || out.Payload != "the rows" {
		t.Fatalf("second reference: %+v", out)
	}
}

func TestReferenceValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []ReferenceRequest{
		{Size: 10, Cost: 1},                         // missing query_id
		{QueryID: "q", Size: 0, Cost: 1},            // non-positive size
		{QueryID: "q", Size: 10, Cost: -1},          // negative cost
		{QueryID: "q", Size: 10, Cost: 1, Time: -5}, // negative time
	}
	for i, c := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/reference", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/reference", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/reference", "application/json",
		bytes.NewReader([]byte(`{"query_id":"q","size":1,"cost":1,"bogus":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestPeek(t *testing.T) {
	ts, sc := newTestServer(t)
	sc.Reference(shard.Request{QueryID: "warm query", Time: 1, Size: 64, Cost: 10, Payload: 42.0})

	var got PeekResponse
	if code := getJSON(t, ts.URL+"/v1/peek/"+url.PathEscape("warm query"), &got); code != http.StatusOK {
		t.Fatalf("peek resident: status %d", code)
	}
	if !got.Resident || got.Payload != 42.0 {
		t.Errorf("peek = %+v", got)
	}
	if code := getJSON(t, ts.URL+"/v1/peek/absent", &got); code != http.StatusNotFound {
		t.Errorf("peek absent: status %d, want 404", code)
	}
	st := sc.Stats()
	if st.References != 1 {
		t.Errorf("peek must not count references, got %d", st.References)
	}
}

func TestInvalidate(t *testing.T) {
	ts, sc := newTestServer(t)
	for i := 0; i < 10; i++ {
		sc.Reference(shard.Request{
			QueryID: fmt.Sprintf("q%d", i), Time: float64(i + 1),
			Size: 64, Cost: 10, Relations: []string{"lineitem"},
		})
	}
	resp, data := postJSON(t, ts.URL+"/v1/invalidate", InvalidateRequest{Relations: []string{"lineitem"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out InvalidateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", out.Dropped)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/invalidate", InvalidateRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty relations: status %d, want 400", resp.StatusCode)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	ts, sc := newTestServer(t)
	sc.Reference(shard.Request{QueryID: "q", Time: 1, Size: 64, Cost: 10})
	sc.Reference(shard.Request{QueryID: "q", Time: 2, Size: 64, Cost: 10})

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.References != 2 || st.Hits != 1 {
		t.Errorf("stats = refs %d hits %d", st.References, st.Hits)
	}
	if st.CostSavingsRatio != 0.5 || st.HitRatio != 0.5 {
		t.Errorf("ratios = CSR %g HR %g, want 0.5", st.CostSavingsRatio, st.HitRatio)
	}
	if st.Shards != 4 || st.CapacityBytes != 1<<20 || st.Resident != 1 {
		t.Errorf("occupancy = %+v", st)
	}

	var health HealthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz: %d %+v", code, health)
	}
	if health.Version == "" || health.GoVersion == "" || health.UptimeSeconds < 0 {
		t.Errorf("healthz build info = %+v, want version, go_version and non-negative uptime", health)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := getJSON(t, ts.URL+"/v1/reference", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reference: status %d, want 405", code)
	}
}

// TestConcurrentClients exercises the full HTTP path from many goroutines;
// run with -race to catch handler/cache races.
func TestConcurrentClients(t *testing.T) {
	ts, sc := newTestServer(t)
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := ReferenceRequest{
					QueryID: fmt.Sprintf("query %d", i%20),
					Size:    128,
					Cost:    50,
				}
				b, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/reference", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.References != workers*perWorker {
		t.Errorf("references = %d, want %d", st.References, workers*perWorker)
	}
}
