// Package server exposes a sharded WATCHMAN cache as an HTTP daemon, in
// the spirit of web-enabled cache daemons for complex query results: the
// cache manager runs as a long-lived process and query frontends talk to
// it over a small JSON protocol.
//
// Endpoints:
//
//	POST /v1/reference    lookup + admission for one query submission
//	GET  /v1/peek/{id}    non-mutating residency probe for a query ID
//	GET  /v1/explain/{id} residency plus the last admission/eviction
//	                      decision for the ID, inequality spelled out
//	POST /v1/invalidate   coherence hook: drop entries by base relation
//	GET  /v1/admission    adaptive-admission threshold and tuning history
//	POST /v1/snapshot     on-demand snapshot flush (persistence enabled)
//	GET  /stats           aggregated counters and the paper's metrics
//	                      (?format=csv for a per-class CSV breakdown,
//	                      &section=relation for the per-relation one)
//	GET  /metrics         Prometheus text exposition of the telemetry spine
//	GET  /debug/requests  recent flight-recorder spans (?slow=1 for the
//	                      slow log); pprof mounts under /debug/pprof with
//	                      EnableProfiling
//	GET  /healthz         liveness probe with build info and uptime
//
// All bodies are JSON unless noted. Request times are logical seconds; a
// zero or omitted time means "now" per the cache's time source, so live
// traffic needs no clock of its own while trace replays can supply exact
// stamps. /metrics and the per-class /stats sections require the cache to
// have a telemetry registry attached (shard.Config.Registry); the debug
// and explain endpoints require a flight recorder (shard.Config.Recorder).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// maxBodyBytes bounds request bodies; retrieved-set payloads travel in the
// reference body, so the bound is generous.
const maxBodyBytes = 64 << 20

// ReferenceRequest is the body of POST /v1/reference. It mirrors
// core.Request: the client reports the query it is about to run (or has
// run) with the retrieved set's size and execution cost.
type ReferenceRequest struct {
	QueryID string `json:"query_id"`
	// Time is the submission time in logical seconds. Zero or omitted
	// means "now" per the cache's time source — live clients should leave
	// it unset rather than supplying clocks of their own.
	Time float64 `json:"time,omitempty"`
	// Class is the workload class of the submission (multiclass traces);
	// it keys the per-class telemetry breakdowns. Omitted means class 0.
	Class     int      `json:"class,omitempty"`
	Size      int64    `json:"size"`
	Cost      float64  `json:"cost"`
	Relations []string `json:"relations,omitempty"`
	Payload   any      `json:"payload,omitempty"`
	// Plan is the query's plan descriptor. With derivation enabled
	// (`watchman serve -derive`), a miss whose plan is subsumed by a
	// cached set is answered as a derived hit instead of a miss.
	Plan *engine.Descriptor `json:"plan,omitempty"`
}

// ReferenceResponse is the body of a successful POST /v1/reference. Hit
// reports the cache outcome; Payload carries the stored retrieved set
// when one exists. Payload may be null on a hit — when the set was
// admitted without a payload, or when the hit was answered by
// bookkeeping-only semantic derivation — so clients that need the rows
// themselves (rather than the advisory "you need not re-execute" signal)
// must check Payload, not Hit.
type ReferenceResponse struct {
	Hit     bool `json:"hit"`
	Payload any  `json:"payload,omitempty"`
}

// PeekResponse is the body of a successful GET /v1/peek/{id}.
type PeekResponse struct {
	Resident bool `json:"resident"`
	Payload  any  `json:"payload,omitempty"`
}

// InvalidateRequest is the body of POST /v1/invalidate.
type InvalidateRequest struct {
	Relations []string `json:"relations"`
}

// InvalidateResponse reports how many resident sets an invalidation hit.
type InvalidateResponse struct {
	Dropped int `json:"dropped"`
}

// StatsResponse is the body of GET /stats: the raw aggregated counters
// plus the paper's derived metrics, the cache's occupancy, and — when a
// telemetry registry is attached — the per-class and per-relation
// cost-savings breakdowns.
type StatsResponse struct {
	shard.Stats
	CostSavingsRatio float64 `json:"cost_savings_ratio"`
	HitRatio         float64 `json:"hit_ratio"`
	AvgUtilization   float64 `json:"avg_utilization"`
	Resident         int     `json:"resident"`
	UsedBytes        int64   `json:"used_bytes"`
	CapacityBytes    int64   `json:"capacity_bytes"`
	Shards           int     `json:"shards"`
	// Classes is the per-class breakdown (ascending by class), present
	// only with a telemetry registry attached.
	Classes []telemetry.ClassSnapshot `json:"classes,omitempty"`
	// Relations is the per-relation breakdown (ascending by name), present
	// only with a telemetry registry attached.
	Relations []telemetry.RelationSnapshot `json:"relations,omitempty"`
	// Snapshot reports persistence health when a snapshotter is attached:
	// the last attempt's outcome, so a silently failing background loop
	// (full disk, permissions) is visible from the stats endpoint.
	Snapshot *SnapshotStatus `json:"snapshot,omitempty"`
}

// SnapshotStatus is the persistence-health section of /stats.
type SnapshotStatus struct {
	Path string `json:"path"`
	// LastUnixMS, LastBytes and LastResident describe the last SUCCESSFUL
	// write (all zero before one happens) — LastUnixMS is its completion
	// wall time in Unix milliseconds, i.e. how stale the on-disk file is.
	LastUnixMS   int64 `json:"last_unix_ms"`
	LastBytes    int64 `json:"last_bytes"`
	LastResident int   `json:"last_resident"`
	// LastDurationMS and LastMaxPauseMS describe the last successful
	// write's cost: its wall time, and the longest single shard-lock
	// pause its chunked capture inflicted on foreground traffic.
	LastDurationMS float64 `json:"last_duration_ms"`
	LastMaxPauseMS float64 `json:"last_max_pause_ms"`
	// LastError carries the most recent attempt's failure, empty when it
	// succeeded. A non-empty value alongside an aging LastUnixMS is the
	// "background loop is failing" alarm.
	LastError string `json:"last_error,omitempty"`
}

// AdmissionResponse is the body of GET /v1/admission. When the cache runs
// a static admission policy only Enabled (false) is meaningful; with
// adaptive admission it reports the live threshold, the tuning-window and
// candidate-grid configuration, and the retained round history (most
// recent first).
type AdmissionResponse struct {
	Enabled   bool      `json:"enabled"`
	Threshold float64   `json:"threshold,omitempty"`
	Window    int       `json:"window,omitempty"`
	Grid      []float64 `json:"grid,omitempty"`
	// Arms reports every candidate threshold's live shadow-cache standing
	// (smoothed and cumulative CSR), in grid order — the tuner's own
	// what-if view, not just the θ it published.
	Arms   []admission.ArmScore `json:"arms,omitempty"`
	Rounds []admission.Round    `json:"rounds,omitempty"`
}

// SnapshotResponse is the body of a successful POST /v1/snapshot.
type SnapshotResponse struct {
	// Path is the snapshot file written; Bytes its encoded size.
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
	// Resident is the number of resident sets captured.
	Resident int `json:"resident"`
	// ElapsedMS is the capture + write wall time in milliseconds;
	// MaxLockPauseMS the longest single shard-lock pause within it.
	ElapsedMS      float64 `json:"elapsed_ms"`
	MaxLockPauseMS float64 `json:"max_lock_pause_ms"`
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// Server serves a sharded cache over HTTP.
type Server struct {
	cache *shard.Sharded
	snap  *shard.Snapshotter // nil when persistence is not configured
	mux   *http.ServeMux
	start time.Time // process start, for the uptime gauge
}

// New builds a server around the cache and registers all routes.
func New(cache *shard.Sharded) *Server {
	s := &Server{cache: cache, mux: http.NewServeMux(), start: monotime()}
	s.mux.HandleFunc("POST /v1/reference", s.handleReference)
	s.mux.HandleFunc("GET /v1/peek/{id}", s.handlePeek)
	s.mux.HandleFunc("GET /v1/explain/{id}", s.handleExplain)
	s.mux.HandleFunc("POST /v1/invalidate", s.handleInvalidate)
	s.mux.HandleFunc("GET /v1/admission", s.handleAdmission)
	s.mux.HandleFunc("GET /v1/whatif", s.handleWhatIf)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// SetSnapshotter enables POST /v1/snapshot, wiring it to the cache's
// snapshotter. Call before serving; without one the endpoint reports
// that persistence is not configured.
func (s *Server) SetSnapshotter(sn *shard.Snapshotter) { s.snap = sn }

// Handler returns the server's routing handler, ready for http.Serve or
// an httptest.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes *Server itself an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses a JSON body with a size cap and strict field checking.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleReference(w http.ResponseWriter, r *http.Request) {
	var req ReferenceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	switch {
	case req.QueryID == "":
		writeError(w, http.StatusBadRequest, "query_id is required")
		return
	case req.Size <= 0:
		writeError(w, http.StatusBadRequest, "size must be positive, got %d", req.Size)
		return
	case req.Cost < 0:
		writeError(w, http.StatusBadRequest, "cost must be non-negative, got %g", req.Cost)
		return
	case req.Time < 0:
		writeError(w, http.StatusBadRequest, "time must be non-negative, got %g", req.Time)
		return
	case req.Class < 0 || req.Class >= telemetry.MaxTrackedClasses:
		// The per-class telemetry table is dense; an unbounded index would
		// be an allocation amplifier.
		writeError(w, http.StatusBadRequest, "class must be in [0, %d), got %d",
			telemetry.MaxTrackedClasses, req.Class)
		return
	}
	if req.Plan != nil {
		if err := req.Plan.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "bad plan: %v", err)
			return
		}
	}
	creq := shard.Request{
		QueryID:   req.QueryID,
		Time:      req.Time,
		Class:     req.Class,
		Size:      req.Size,
		Cost:      req.Cost,
		Relations: req.Relations,
		Payload:   req.Payload,
	}
	if req.Plan != nil {
		// Guarded: assigning a typed nil would read as "plan present".
		creq.Plan = req.Plan
	}
	hit, payload := s.cache.Reference(creq)
	writeJSON(w, http.StatusOK, ReferenceResponse{Hit: hit, Payload: payload})
}

func (s *Server) handlePeek(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "empty query id")
		return
	}
	payload, ok := s.cache.Peek(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, PeekResponse{Resident: false})
		return
	}
	writeJSON(w, http.StatusOK, PeekResponse{Resident: true, Payload: payload})
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	var req InvalidateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Relations) == 0 {
		writeError(w, http.StatusBadRequest, "relations is required")
		return
	}
	dropped := s.cache.Invalidate(req.Relations...)
	writeJSON(w, http.StatusOK, InvalidateResponse{Dropped: dropped})
}

func (s *Server) handleAdmission(w http.ResponseWriter, r *http.Request) {
	tuner := s.cache.Tuner()
	if tuner == nil {
		writeJSON(w, http.StatusOK, AdmissionResponse{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, AdmissionResponse{
		Enabled:   true,
		Threshold: tuner.Threshold(),
		Window:    tuner.Window(),
		Grid:      tuner.Grid(),
		Arms:      tuner.ArmScores(),
		Rounds:    tuner.Rounds(),
	})
}

// handleWhatIf serves the ghost-cache matrix report: per-cell estimated
// CSR, per-policy miss-ratio curves and the capacity/policy advisor
// verdict. The optional margin query parameter overrides the CSR
// improvement the advisor requires before recommending a configuration.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	m := s.cache.WhatIf()
	if m == nil {
		writeError(w, http.StatusNotFound, "what-if matrix not enabled (serve -whatif)")
		return
	}
	margin := 0.0 // Report treats ≤0 as the default margin
	if raw := r.URL.Query().Get("margin"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 || v >= 1 {
			writeError(w, http.StatusBadRequest, "margin must be a number in (0, 1), got %q", raw)
			return
		}
		margin = v
	}
	writeJSON(w, http.StatusOK, m.Report(margin))
}

// durationMS renders a duration as fractional milliseconds for the JSON
// bodies.
func durationMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snap == nil {
		writeError(w, http.StatusServiceUnavailable,
			"snapshot persistence is not configured (start the server with -snapshot-path)")
		return
	}
	info, err := s.snap.TrySnapshot(r.Context())
	switch {
	case errors.Is(err, shard.ErrSnapshotInFlight):
		// One write at a time: concurrent callers back off and retry
		// instead of queueing unboundedly on the snapshotter's mutex.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "a snapshot is already in flight; retry shortly")
	case err != nil && r.Context().Err() != nil:
		// The client went away mid-write. The write itself runs to
		// completion in the background and its outcome lands in /stats;
		// this response is written into the void either way.
		writeError(w, http.StatusServiceUnavailable,
			"request aborted; the in-progress snapshot completes in the background")
	case err != nil:
		writeError(w, http.StatusInternalServerError, "snapshot failed: %v", err)
	default:
		writeJSON(w, http.StatusOK, SnapshotResponse{
			Path:           info.Path,
			Bytes:          info.Bytes,
			Resident:       info.Resident,
			ElapsedMS:      durationMS(info.Elapsed),
			MaxLockPauseMS: durationMS(info.MaxLockPause),
		})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
	case "csv":
		switch section := r.URL.Query().Get("section"); section {
		case "", "class":
			s.writeCSV(w, s.statsCSVTable())
		case "relation":
			s.writeCSV(w, s.relationCSVTable())
		default:
			writeError(w, http.StatusBadRequest, "unknown section %q (want class or relation)", section)
		}
		return
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or csv)", format)
		return
	}
	st := s.cache.Stats()
	resp := StatsResponse{
		Stats:            st,
		CostSavingsRatio: st.CostSavingsRatio(),
		HitRatio:         st.HitRatio(),
		AvgUtilization:   st.AvgUtilization(),
		Resident:         s.cache.Resident(),
		UsedBytes:        s.cache.UsedBytes(),
		CapacityBytes:    s.cache.Capacity(),
		Shards:           s.cache.NumShards(),
	}
	if reg := s.cache.Registry(); reg != nil {
		snap := reg.Snapshot()
		resp.Classes = snap.Classes
		resp.Relations = snap.Relations
	}
	resp.Snapshot = s.snapshotStatus()
	writeJSON(w, http.StatusOK, resp)
}

// snapshotStatus builds the persistence-health section shared by /stats
// and /healthz, nil when no snapshotter is attached.
func (s *Server) snapshotStatus() *SnapshotStatus {
	if s.snap == nil {
		return nil
	}
	good, goodAt, lastErr := s.snap.Last()
	status := &SnapshotStatus{
		Path:           s.snap.Path(),
		LastBytes:      good.Bytes,
		LastResident:   good.Resident,
		LastDurationMS: durationMS(good.Elapsed),
		LastMaxPauseMS: durationMS(good.MaxLockPause),
	}
	if !goodAt.IsZero() {
		status.LastUnixMS = goodAt.UnixMilli()
	}
	if lastErr != nil {
		status.LastError = lastErr.Error()
	}
	return status
}

// statsCSVTable renders the per-class cost-savings breakdown plus a
// "total" row as a metrics.Table. With a registry attached, the class
// rows and the total come from one snapshot, so the table is internally
// consistent even under live traffic; without one, only the total row
// (from the aggregated shard counters) is available.
func (s *Server) statsCSVTable() *metrics.Table {
	t := metrics.NewTable("", "class", "references", "hits", "derived_hits", "external_misses",
		"cost_total", "cost_saved", "csr", "hit_ratio")
	if reg := s.cache.Registry(); reg != nil {
		snap := reg.Snapshot()
		for _, c := range snap.Classes {
			t.AddRowValues(c.Class, c.References, c.Hits, c.DerivedHits, c.ExternalMisses,
				c.CostTotal, c.CostSaved, metrics.Ratio(c.CSR()), metrics.Ratio(c.HitRatio()))
		}
		t.AddRowValues("total", snap.References(), snap.Hits, snap.DerivedHits, snap.ExternalMisses,
			snap.CostTotal, snap.CostSaved, metrics.Ratio(snap.CSR()), metrics.Ratio(snap.HitRatio()))
		return t
	}
	st := s.cache.Stats()
	t.AddRowValues("total", st.References, st.Hits, st.DerivedHits, st.ExternalMisses,
		st.CostTotal, st.CostSaved, metrics.Ratio(st.CostSavingsRatio()), metrics.Ratio(st.HitRatio()))
	return t
}

// relationCSVTable renders the per-relation breakdown of the JSON stats
// section as CSV (GET /stats?format=csv&section=relation). It is empty
// without a telemetry registry: relations are tracked by the registry,
// not the shard counters.
func (s *Server) relationCSVTable() *metrics.Table {
	t := metrics.NewTable("", "relation", "references", "hits", "derived_hits", "external_misses",
		"invalidations", "cost_total", "cost_saved", "csr", "hit_ratio")
	reg := s.cache.Registry()
	if reg == nil {
		return t
	}
	for _, rel := range reg.Snapshot().Relations {
		t.AddRowValues(rel.Relation, rel.References, rel.Hits, rel.DerivedHits, rel.ExternalMisses,
			rel.Invalidations, rel.CostTotal, rel.CostSaved, metrics.Ratio(rel.CSR()), metrics.Ratio(rel.HitRatio()))
	}
	return t
}

// writeCSV serves one stats table as CSV.
func (s *Server) writeCSV(w http.ResponseWriter, t *metrics.Table) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	_ = t.CSV(w)
}

// handleMetrics serves the Prometheus text exposition format: the
// registry's counters, breakdowns and histograms, followed by the
// occupancy gauges only the serving layer knows.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.cache.Registry()
	if reg == nil {
		writeError(w, http.StatusNotFound, "no telemetry registry attached (set shard.Config.Registry)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := reg.WritePrometheus(w); err != nil {
		return // client went away mid-write; nothing sensible to send
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("watchman_resident_sets", "Retrieved sets currently cached.", int64(s.cache.Resident()))
	gauge("watchman_used_bytes", "Payload plus metadata bytes charged against capacity.", s.cache.UsedBytes())
	gauge("watchman_capacity_bytes", "Total configured cache capacity.", s.cache.Capacity())
	gauge("watchman_shards", "Number of cache shards.", int64(s.cache.NumShards()))
	if st := s.cache.Stats(); st.BufferedHits > 0 || st.PendingApplies > 0 {
		// Buffered-mode visibility: how much of the hit traffic bypassed
		// the shard locks and how far the appliers are behind. The registry
		// above cannot see hits whose promotions were shed or sampled away,
		// so its counters lag Stats by exactly PromotesSkipped+Sampled.
		gauge("watchman_buffered_hits", "Hits served from the lock-free read index.", st.BufferedHits)
		gauge("watchman_promotes_skipped", "Promotions shed because a shard's apply queue was full.", st.PromotesSkipped)
		gauge("watchman_promotes_sampled", "Promotions skipped by gets-per-promote sampling.", st.PromotesSampled)
		gauge("watchman_pending_applies", "Hit applications queued but not yet applied.", st.PendingApplies)
	}
	if m := s.cache.WhatIf(); m != nil {
		m.WritePrometheusTo(w)
	}
	fmt.Fprintf(w, "# HELP watchman_build_info Build metadata; the value is always 1.\n"+
		"# TYPE watchman_build_info gauge\n"+
		"watchman_build_info{version=\"%s\",go_version=\"%s\"} 1\n",
		telemetry.EscapeLabel(buildVersion()), telemetry.EscapeLabel(runtime.Version()))
	fmt.Fprintf(w, "# HELP watchman_uptime_seconds Seconds since the server started.\n"+
		"# TYPE watchman_uptime_seconds gauge\n"+
		"watchman_uptime_seconds %.3f\n", since(s.start).Seconds())
}

// buildVersion reports the main module's version from the embedded build
// info — "(devel)" for plain go-build binaries, a pseudo-version for
// module-installed ones, "unknown" when build info is absent (tests of
// old toolchains).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// HealthzResponse is the body of GET /healthz: liveness plus the same
// build identity and uptime /metrics exposes, so a probe (or a human with
// curl) needs no Prometheus parser to identify the process.
type HealthzResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Snapshot reports persistence health (last snapshot duration, bytes
	// and max lock pause alongside the last-good/last-error fields), nil
	// when persistence is not configured.
	Snapshot *SnapshotStatus `json:"snapshot,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthzResponse{
		Status:        "ok",
		Version:       buildVersion(),
		GoVersion:     runtime.Version(),
		UptimeSeconds: since(s.start).Seconds(),
		Snapshot:      s.snapshotStatus(),
	})
}
