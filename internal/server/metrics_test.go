package server

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/whatif"
)

// itoa shortens the int64 → decimal string conversions in assertions.
func itoa(n int64) string { return strconv.FormatInt(n, 10) }

// newTelemetryServer builds a test server over a sharded cache with a
// telemetry registry and a rate-1 what-if matrix attached, and replays a
// small mixed-class workload through the HTTP reference endpoint.
func newTelemetryServer(t *testing.T) (*httptest.Server, *shard.Sharded) {
	t.Helper()
	base := core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA}
	ghosts, err := whatif.New(whatif.Config{Base: base, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := shard.New(shard.Config{
		Shards:   4,
		Cache:    base,
		Registry: telemetry.NewRegistry(),
		WhatIf:   ghosts,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sc).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(sc.Close)

	for i := 0; i < 40; i++ {
		body := strings.NewReader(`{"query_id":"q ` + string(rune('a'+i%8)) + `","class":` +
			[]string{"0", "1", "2"}[i%3] + `,"size":64,"cost":10,"relations":["lineitem"]}`)
		resp, err := http.Post(ts.URL+"/v1/reference", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	return ts, sc
}

// sampleLine matches one Prometheus text-format sample:
// name{optional="labels"} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eEInfNa]+$`)

func TestMetricsEndpoint(t *testing.T) {
	ts, sc := newTelemetryServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	for _, want := range []string{
		"watchman_hits_total", "watchman_misses_admitted_total",
		"watchman_misses_rejected_total", "watchman_external_misses_total",
		"watchman_evictions_total", "watchman_invalidations_total",
		`watchman_class_csr{class="0"}`, `watchman_class_csr{class="2"}`,
		`watchman_relation_cost_total{relation="lineitem"}`,
		`watchman_load_latency_seconds_bucket{le="+Inf"}`,
		"watchman_load_latency_seconds_sum", "watchman_load_latency_seconds_count",
		"watchman_resident_sets", "watchman_used_bytes", "watchman_capacity_bytes",
		"watchman_shards 4",
		`watchman_whatif_csr{capacity="0.25x",policy="lnc-ra"}`,
		`watchman_whatif_csr{capacity="4x",policy="lru-k"}`,
		"watchman_whatif_refs_total", "watchman_whatif_sampled_ratio 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Every line must be a comment or a well-formed sample, and every
	// sample's family must have been announced by a preceding TYPE line.
	announced := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			announced[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !announced[name] && !announced[family] {
			t.Fatalf("sample %q has no TYPE announcement", name)
		}
	}

	// Cross-check one counter against the cache's own stats.
	st := sc.Stats()
	if !strings.Contains(out, "watchman_references_total "+itoa(st.References)) {
		t.Errorf("references counter disagrees with stats %d:\n%s", st.References, out)
	}
}

func TestMetricsWithoutRegistry(t *testing.T) {
	sc, err := shard.New(shard.Config{Shards: 2, Cache: core.Config{Capacity: 1 << 20, Policy: core.LRU}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sc).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status without registry = %s, want 404", resp.Status)
	}
}

func TestStatsCSV(t *testing.T) {
	ts, sc := newTelemetryServer(t)
	resp, err := http.Get(ts.URL + "/stats?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("content type = %q", ct)
	}
	rows, err := csv.NewReader(resp.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+3+1 { // header + classes 0..2 + total
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	wantHeader := []string{"class", "references", "hits", "derived_hits", "external_misses", "cost_total", "cost_saved", "csr", "hit_ratio"}
	for i, h := range wantHeader {
		if rows[0][i] != h {
			t.Fatalf("header = %v, want %v", rows[0], wantHeader)
		}
	}
	last := rows[len(rows)-1]
	if last[0] != "total" || last[1] != itoa(sc.Stats().References) {
		t.Fatalf("total row = %v", last)
	}
}

func TestReferenceRejectsOutOfRangeClass(t *testing.T) {
	ts, sc := newTelemetryServer(t)
	before := sc.Stats().References
	for _, class := range []string{"-1", "1073741824", strconv.Itoa(telemetry.MaxTrackedClasses)} {
		body := strings.NewReader(`{"query_id":"bomb","size":1,"cost":1,"class":` + class + `}`)
		resp, err := http.Post(ts.URL+"/v1/reference", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("class %s: status = %s, want 400", class, resp.Status)
		}
	}
	if got := sc.Stats().References; got != before {
		t.Fatalf("rejected requests reached the cache: references %d → %d", before, got)
	}
}

func TestStatsUnknownFormat(t *testing.T) {
	ts, _ := newTelemetryServer(t)
	resp, err := http.Get(ts.URL + "/stats?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
}

func TestStatsJSONClasses(t *testing.T) {
	ts, sc := newTelemetryServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(st.Classes))
	}
	var refs int64
	for _, c := range st.Classes {
		refs += c.References
	}
	if refs != sc.Stats().References {
		t.Fatalf("per-class references sum to %d, want %d", refs, sc.Stats().References)
	}
	if len(st.Relations) != 1 || st.Relations[0].Relation != "lineitem" {
		t.Fatalf("relations = %+v", st.Relations)
	}
}
