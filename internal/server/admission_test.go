package server

import (
	"net/http/httptest"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/shard"
)

func TestAdmissionEndpointDisabled(t *testing.T) {
	ts, _ := newTestServer(t)
	var resp AdmissionResponse
	if code := getJSON(t, ts.URL+"/v1/admission", &resp); code != 200 {
		t.Fatalf("GET /v1/admission = %d, want 200", code)
	}
	if resp.Enabled {
		t.Error("static cache must report enabled=false")
	}
}

func TestAdmissionEndpointEnabled(t *testing.T) {
	// Window larger than the test traffic: no async round fires, so the
	// synchronous TuneOnce below is the only drain and the history
	// assertion cannot race a background goroutine.
	tuner, err := admission.New(admission.Config{Capacity: 1 << 20, K: 2, Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := shard.New(shard.Config{
		Shards: 2,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Tuner:  tuner,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sc))
	t.Cleanup(ts.Close)

	var resp AdmissionResponse
	if code := getJSON(t, ts.URL+"/v1/admission", &resp); code != 200 {
		t.Fatalf("GET /v1/admission = %d, want 200", code)
	}
	if !resp.Enabled {
		t.Fatal("adaptive cache must report enabled=true")
	}
	if resp.Threshold != 1 {
		t.Errorf("initial threshold = %g, want 1", resp.Threshold)
	}
	if resp.Window != 1024 {
		t.Errorf("window = %d, want 1024", resp.Window)
	}
	if len(resp.Grid) != len(admission.DefaultGrid()) {
		t.Errorf("grid has %d candidates, want %d", len(resp.Grid), len(admission.DefaultGrid()))
	}
	if len(resp.Arms) != len(resp.Grid) {
		t.Errorf("arms = %d, want one per grid candidate (%d)", len(resp.Arms), len(resp.Grid))
	}

	for i := 0; i < 80; i++ {
		postJSON(t, ts.URL+"/v1/reference", ReferenceRequest{
			QueryID: "select q" + string(rune('a'+i%10)), Size: 256, Cost: 100,
		})
	}
	tuner.TuneOnce()
	if code := getJSON(t, ts.URL+"/v1/admission", &resp); code != 200 {
		t.Fatalf("GET /v1/admission = %d, want 200", code)
	}
	if len(resp.Rounds) == 0 {
		t.Error("tuning history empty after a completed round")
	}
	// After a tuning round every shadow arm has replayed the profile
	// window, so the per-arm scores must show traffic.
	for _, arm := range resp.Arms {
		if arm.References == 0 {
			t.Errorf("arm θ=%g replayed no references after a tuning round", arm.Theta)
		}
	}
}
