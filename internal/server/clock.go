package server

// This file is the package's designated time-source file: the only place
// in server allowed to read the process clock. The daemon's clock reads
// are pure observability — uptime in /healthz and the build-info gauge —
// and never feed the cache lifecycle, which takes its timestamps from
// the shard layer's injected time source. The timesource analyzer
// (cmd/watchmanlint) enforces that no other file in the package reads
// the clock.
//
//watchman:timesource

import "time"

// monotime returns the current clock reading, for later measurement with
// since.
func monotime() time.Time { return time.Now() }

// since returns the wall time elapsed from a monotime reading.
func since(t time.Time) time.Duration { return time.Since(t) }
