package server

// This file is the serving half of the flight recorder: /debug/requests
// exposes the recent-span rings as JSON, /v1/explain/{id} turns the last
// admission/eviction decision for a signature into the spelled-out LNC-A
// inequality the core evaluated, and EnableProfiling mounts net/http/pprof
// for CPU/heap/goroutine profiles behind the serve -debug flag.

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/core"
	"repro/internal/flight"
)

// maxDebugSpans bounds one /debug/requests response.
const maxDebugSpans = 1024

// SpanJSON is the JSON shape of one flight-recorder span: identity,
// outcome, per-stage wall timings and the decision inputs captured at the
// admission gate.
type SpanJSON struct {
	ID      string `json:"id"`
	Class   int    `json:"class"`
	Outcome string `json:"outcome"`
	// Time is the logical time of the reference; Start orders spans within
	// the process (monotonic nanoseconds since start).
	Time  float64 `json:"time"`
	Start int64   `json:"start_ns"`
	// Size and Cost are the request's retrieved-set size and cost.
	Size int64   `json:"size"`
	Cost float64 `json:"cost"`
	// Stages maps stage name → wall nanoseconds; zero stages are omitted.
	Stages map[string]int64 `json:"stages,omitempty"`
	// TotalNanos is the span's end-to-end wall nanoseconds.
	TotalNanos int64 `json:"total_ns"`
	// Decided, HasHistory, Profit, Bar, Theta mirror the admission
	// decision's inputs (see flight.Decision).
	Decided    bool    `json:"decided"`
	HasHistory bool    `json:"has_history"`
	Profit     float64 `json:"profit"`
	Bar        float64 `json:"bar"`
	Theta      float64 `json:"theta"`
	// Lambda and RefDepth are the entry's λ estimate and reference-window
	// depth after the reference.
	Lambda   float64 `json:"lambda"`
	RefDepth int     `json:"ref_depth"`
	// Victims counts evicted (admissions) or spared (rejections) entries.
	Victims int `json:"victims"`
	// AncestorID names the cached ancestor of a derived hit.
	AncestorID string `json:"ancestor_id,omitempty"`
}

// NewSpanJSON converts a core span to its wire shape. Exported for the
// CLI's slow-log rendering, which shares this shape with the endpoint.
func NewSpanJSON(sp core.Span) SpanJSON {
	out := SpanJSON{
		ID:         sp.ID,
		Class:      sp.Class,
		Outcome:    sp.Outcome.String(),
		Time:       sp.Time,
		Start:      sp.Start,
		Size:       sp.Size,
		Cost:       sp.Cost,
		TotalNanos: sp.Total,
		Decided:    sp.Decided,
		HasHistory: sp.HasHistory,
		Profit:     sp.Profit,
		Bar:        sp.Bar,
		Theta:      sp.Theta,
		Lambda:     sp.Lambda,
		RefDepth:   sp.RefDepth,
		Victims:    sp.Victims,
		AncestorID: sp.AncestorID,
	}
	for st := core.Stage(0); st < core.NumStages; st++ {
		if ns := sp.Stages[st]; ns > 0 {
			if out.Stages == nil {
				out.Stages = make(map[string]int64, int(core.NumStages))
			}
			out.Stages[st.String()] = ns
		}
	}
	return out
}

// DebugRequestsResponse is the body of GET /debug/requests.
type DebugRequestsResponse struct {
	// Spans holds the captured spans, newest first (or slowest first with
	// ?slow=1).
	Spans []SpanJSON `json:"spans"`
	// Sampled reports that spans are captured one-in-N; absence of a
	// reference from Spans does not mean it did not happen.
	Sampled bool `json:"sampled"`
}

// handleDebugRequests serves recent flight-recorder spans. Query
// parameters: n bounds the span count (default 64, capped at 1024);
// slow=1 orders by total duration instead of recency (the slow log).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	rec := s.cache.FlightRecorder()
	if rec == nil {
		writeError(w, http.StatusNotFound, "no flight recorder attached (start the server with -debug)")
		return
	}
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad n %q (want a positive integer)", q)
			return
		}
		n = min(v, maxDebugSpans)
	}
	var spans []core.Span
	if r.URL.Query().Get("slow") == "1" {
		spans = rec.Slowest(n)
	} else {
		spans = rec.Spans(n)
	}
	resp := DebugRequestsResponse{Spans: make([]SpanJSON, 0, len(spans)), Sampled: true}
	for _, sp := range spans {
		resp.Spans = append(resp.Spans, NewSpanJSON(sp))
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExplainResponse is the body of GET /v1/explain/{id}: the signature's
// current residency, the last admission/eviction decision the recorder
// still holds for it, and that decision's inequality spelled out.
type ExplainResponse struct {
	// QueryID is the raw query ID asked about; ID its compressed form (the
	// key decisions are recorded under).
	QueryID string `json:"query_id"`
	ID      string `json:"id"`
	// Resident reports whether the retrieved set is cached right now.
	Resident bool `json:"resident"`
	// Decision is the last admit/reject/evict record, nil when the
	// recorder's rings no longer hold one for this signature.
	Decision *flight.Decision `json:"decision,omitempty"`
	// Explanation restates Decision as the inequality the core evaluated.
	Explanation string `json:"explanation,omitempty"`
}

// handleExplain serves GET /v1/explain/{id}. 404 means the recorder knows
// nothing: the set is not resident and no decision for it survives in the
// rings.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	rec := s.cache.FlightRecorder()
	if rec == nil {
		writeError(w, http.StatusNotFound, "no flight recorder attached (start the server with -debug)")
		return
	}
	queryID := r.PathValue("id")
	if queryID == "" {
		writeError(w, http.StatusBadRequest, "empty query id")
		return
	}
	id := core.CompressID(queryID)
	_, resident := s.cache.Peek(queryID)
	resp := ExplainResponse{QueryID: queryID, ID: id, Resident: resident}
	if d, ok := rec.LastDecision(id); ok {
		resp.Decision = &d
		resp.Explanation = explainDecision(d)
	}
	if !resident && resp.Decision == nil {
		writeError(w, http.StatusNotFound,
			"no record of %q: not resident, and no admission/eviction decision in the flight recorder", queryID)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// explainDecision renders one decision record as the inequality the core
// evaluated, in the paper's terms: LNC-A admits a set only when its
// (estimated) profit strictly exceeds θ times the aggregate profit of the
// sets it would displace.
func explainDecision(d flight.Decision) string {
	estimate := "profit λ·c/s"
	if !d.HasHistory {
		estimate = "e-profit c/s (no reference history, eq. 8)"
	}
	switch d.Kind {
	case "miss_rejected":
		if !d.Decided {
			if d.Victims == 0 {
				return fmt.Sprintf("rejected without an admission comparison: "+
					"no victim set could free %d bytes (set too large for the cache or its shard)", d.Size)
			}
			return "rejected without an admission comparison"
		}
		if d.Theta != 0 {
			return fmt.Sprintf("rejected by LNC-A: %s = %g ≤ θ·bar = %g × %g = %g "+
				"(the %d victim candidates' aggregate profit; admit requires profit > θ·bar)",
				estimate, d.Profit, d.Theta, d.Bar, d.Theta*d.Bar, d.Victims)
		}
		return fmt.Sprintf("rejected by the admitter: %s = %g against bar = %g "+
			"(the %d victim candidates' aggregate profit)", estimate, d.Profit, d.Bar, d.Victims)
	case "miss_admitted":
		if !d.Decided {
			return "admitted into free space (no eviction needed, no comparison ran)"
		}
		if d.Theta != 0 {
			return fmt.Sprintf("admitted by LNC-A: %s = %g > θ·bar = %g × %g = %g, evicting %d victims",
				estimate, d.Profit, d.Theta, d.Bar, d.Theta*d.Bar, d.Victims)
		}
		return fmt.Sprintf("admitted by the admitter: %s = %g against bar = %g, evicting %d victims",
			estimate, d.Profit, d.Bar, d.Victims)
	case "evict":
		return fmt.Sprintf("evicted by replacement: profit λ·c/s = %g ranked it #%d (0 = least profitable) in its victim batch",
			d.Profit, d.Rank)
	default:
		return ""
	}
}

// EnableProfiling mounts net/http/pprof's handlers under /debug/pprof on
// the server's mux. It is opt-in (the serve command's -debug flag):
// profiles expose internals no open endpoint should.
func (s *Server) EnableProfiling() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
