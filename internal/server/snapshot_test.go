package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// TestSnapshotEndpointUnconfigured: without a snapshotter the endpoint
// must say so, not 404 (the route exists; persistence is off).
func TestSnapshotEndpointUnconfigured(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/snapshot", struct{}{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
}

// TestSnapshotEndpointAbortedContext: a client that disconnects while its
// snapshot request waits must get the request-aborted 503, while the
// write itself completes in the background and surfaces via the
// persistence-health section — a dead client never aborts a half-taken
// snapshot.
func TestSnapshotEndpointAbortedContext(t *testing.T) {
	sc, err := shard.New(shard.Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "server.wmsnap")
	srv := New(sc)
	sn := sc.NewSnapshotter(path, 0)
	srv.SetSnapshotter(sn)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the handler runs
	req := httptest.NewRequest(http.MethodPost, "/v1/snapshot", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	// The background write can beat the canceled context to the handler's
	// select; 200 is then legal, any other status is not.
	if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s, want 503 (aborted) or 200 (write won the race)", rec.Code, rec.Body)
	}

	// Either way the write must finish in the background and be reported.
	deadline := time.Now().Add(5 * time.Second)
	for {
		good, goodAt, lastErr := sn.Last()
		if lastErr == nil && !goodAt.IsZero() {
			if good.Path != path {
				t.Fatalf("background write path %q, want %q", good.Path, path)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background write never recorded: err=%v", lastErr)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing after aborted request: %v", err)
	}
}

// TestHealthzSnapshotStatus: after a successful snapshot, /healthz and
// /stats must both carry the persistence-health section with the write's
// duration and max-lock-pause cost.
func TestHealthzSnapshotStatus(t *testing.T) {
	sc, err := shard.New(shard.Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "server.wmsnap")
	srv := New(sc)
	sn := sc.NewSnapshotter(path, 0)
	srv.SetSnapshotter(sn)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	for i := 0; i < 50; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/reference", ReferenceRequest{
			QueryID: fmt.Sprintf("q%d", i), Size: 100, Cost: 10, Payload: []any{float64(i)},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %d: %d %s", i, resp.StatusCode, body)
		}
	}
	if resp, body := postJSON(t, ts.URL+"/v1/snapshot", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, body)
	}

	var hz HealthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if hz.Snapshot == nil {
		t.Fatal("healthz omits the snapshot section with a snapshotter attached")
	}
	if hz.Snapshot.Path != path || hz.Snapshot.LastBytes <= 0 || hz.Snapshot.LastUnixMS == 0 {
		t.Fatalf("healthz snapshot section incomplete: %+v", hz.Snapshot)
	}
	if hz.Snapshot.LastDurationMS <= 0 || hz.Snapshot.LastMaxPauseMS <= 0 {
		t.Fatalf("healthz snapshot cost fields not populated: %+v", hz.Snapshot)
	}
	if hz.Snapshot.LastMaxPauseMS > hz.Snapshot.LastDurationMS {
		t.Fatalf("max pause %.3fms exceeds duration %.3fms", hz.Snapshot.LastMaxPauseMS, hz.Snapshot.LastDurationMS)
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Snapshot == nil || st.Snapshot.LastDurationMS != hz.Snapshot.LastDurationMS {
		t.Fatalf("stats snapshot section %+v disagrees with healthz %+v", st.Snapshot, hz.Snapshot)
	}
}

// TestSnapshotEndpoint drives the full loop the CI smoke job automates:
// load the cache over HTTP, flush a snapshot, restore it into a second
// server, and confirm /stats reports the survived residency.
func TestSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "server.wmsnap")

	sc, err := shard.New(shard.Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sc)
	sn := sc.NewSnapshotter(path, 0)
	srv.SetSnapshotter(sn)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	for i := 0; i < 200; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/reference", ReferenceRequest{
			QueryID: fmt.Sprintf("q%d", i%50), Size: 100, Cost: 10, Payload: []any{float64(i % 50)},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %d: %d %s", i, resp.StatusCode, body)
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/snapshot", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, body)
	}
	var out SnapshotResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Path != path || out.Resident != sc.Resident() || out.Bytes <= 0 {
		t.Fatalf("snapshot response %+v (cache resident %d)", out, sc.Resident())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh cache restores the file and serves the same
	// residency, payloads included.
	sc2, err := shard.New(shard.Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok, err := sc2.RestoreFile(path)
	if err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	if rep.Resident != out.Resident {
		t.Fatalf("restored %d, snapshot had %d", rep.Resident, out.Resident)
	}
	ts2 := httptest.NewServer(New(sc2))
	t.Cleanup(ts2.Close)
	var st StatsResponse
	if code := getJSON(t, ts2.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Resident != out.Resident {
		t.Fatalf("restarted server reports %d resident, want %d", st.Resident, out.Resident)
	}
	if st.Hits == 0 || st.References == 0 {
		t.Fatal("restored Stats partition lost the pre-restart counters")
	}

	// A payload must have survived the round trip.
	var peek PeekResponse
	if code := getJSON(t, ts2.URL+"/v1/peek/q1", &peek); code != http.StatusOK {
		t.Fatalf("peek after restore: %d", code)
	}
	if !peek.Resident || peek.Payload == nil {
		t.Fatalf("peek after restore = %+v, want resident with payload", peek)
	}
}
