package server

import (
	"net/http"
	"testing"

	"repro/internal/whatif"
)

func TestWhatIfEndpointDisabled(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := getJSON(t, ts.URL+"/v1/whatif", nil); code != http.StatusNotFound {
		t.Fatalf("GET /v1/whatif without a matrix = %d, want 404", code)
	}
}

func TestWhatIfEndpoint(t *testing.T) {
	ts, sc := newTelemetryServer(t)
	var rep whatif.Report
	if code := getJSON(t, ts.URL+"/v1/whatif", &rep); code != http.StatusOK {
		t.Fatalf("GET /v1/whatif = %d, want 200", code)
	}
	m := sc.WhatIf()
	if m == nil {
		t.Fatal("telemetry server must carry a what-if matrix")
	}
	if rep.SampleRate != 1 || rep.SampledRatio != 1 {
		t.Errorf("rate-1 matrix reports rate %d ratio %v", rep.SampleRate, rep.SampledRatio)
	}
	if rep.RefsSeen != sc.Stats().References {
		t.Errorf("matrix saw %d refs, cache served %d", rep.RefsSeen, sc.Stats().References)
	}
	if len(rep.Cells) != m.CellCount() {
		t.Errorf("report has %d cells, matrix has %d", len(rep.Cells), m.CellCount())
	}
	for _, c := range rep.Cells {
		if c.References != rep.RefsSeen {
			t.Errorf("cell %s/%vx replayed %d of %d refs", c.Policy, c.Scale, c.References, rep.RefsSeen)
		}
	}
	if len(rep.Curves) != len(whatif.DefaultPolicies()) {
		t.Errorf("curves = %d, want %d", len(rep.Curves), len(whatif.DefaultPolicies()))
	}
	if rep.Advisor.BaselinePolicy != "lnc-ra" || rep.Advisor.Reason == "" {
		t.Errorf("advisor = %+v", rep.Advisor)
	}

	// The margin query parameter overrides the advisor bar; out-of-range
	// values are rejected.
	if code := getJSON(t, ts.URL+"/v1/whatif?margin=0.5", &rep); code != http.StatusOK {
		t.Fatalf("GET /v1/whatif?margin=0.5 = %d, want 200", code)
	}
	if rep.Advisor.Margin != 0.5 {
		t.Errorf("margin override = %v, want 0.5", rep.Advisor.Margin)
	}
	for _, bad := range []string{"2", "0", "-1", "x"} {
		if code := getJSON(t, ts.URL+"/v1/whatif?margin="+bad, nil); code != http.StatusBadRequest {
			t.Errorf("margin=%s = %d, want 400", bad, code)
		}
	}
}
