package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// newDeriveServer builds a test server with derivation and telemetry on.
func newDeriveServer(t *testing.T) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	sc, err := shard.New(shard.Config{
		Shards:   4,
		Cache:    core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA},
		Registry: reg,
		Deriver:  derive.New(derive.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sc).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func postRef(t *testing.T, url string, req ReferenceRequest) ReferenceResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/reference", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	var out ReferenceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReferenceAcceptsPlan drives the derivation path over HTTP: admit an
// ancestor with a plan descriptor, then reference a subsumed query — the
// response must report a hit and the registry a derived hit.
func TestReferenceAcceptsPlan(t *testing.T) {
	ts, reg := newDeriveServer(t)

	anc := &engine.Descriptor{
		Rel:   "lineitem",
		Preds: []engine.Pred{{Col: "l_shipdate", Op: engine.OpRange, Lo: 0, Hi: 364}},
		Cols:  []string{"l_shipdate", "l_extendedprice"},
	}
	out := postRef(t, ts.URL, ReferenceRequest{
		QueryID: "anc", Size: 4096, Cost: 900, Relations: []string{"lineitem"}, Plan: anc,
	})
	if out.Hit {
		t.Fatal("first reference cannot hit")
	}

	child := &engine.Descriptor{
		Rel:   "lineitem",
		Preds: []engine.Pred{{Col: "l_shipdate", Op: engine.OpRange, Lo: 30, Hi: 59}},
		Cols:  []string{"l_extendedprice"},
	}
	out = postRef(t, ts.URL, ReferenceRequest{
		QueryID: "child", Size: 512, Cost: 900, Relations: []string{"lineitem"}, Plan: child,
	})
	if !out.Hit {
		t.Fatal("subsumed reference should be served as a derived hit")
	}
	snap := reg.Snapshot()
	if snap.DerivedHits != 1 {
		t.Fatalf("registry DerivedHits = %d, want 1", snap.DerivedHits)
	}

	// The /metrics exposition carries the new counter.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("watchman_derived_hits_total 1")) {
		t.Fatal("/metrics missing watchman_derived_hits_total 1")
	}
}

// TestReferenceRejectsBadPlan guards the trust boundary.
func TestReferenceRejectsBadPlan(t *testing.T) {
	ts, _ := newDeriveServer(t)
	body, _ := json.Marshal(ReferenceRequest{
		QueryID: "q", Size: 64, Cost: 10,
		Plan: &engine.Descriptor{}, // empty relation
	})
	resp, err := http.Post(ts.URL+"/v1/reference", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
}
