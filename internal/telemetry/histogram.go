package telemetry

import "sync/atomic"

// latencyBuckets are the histogram's upper bounds in seconds, following
// the conventional Prometheus 1-2.5-5 decade ladder from 100 µs to 10 s;
// observations above the last bound land in the implicit +Inf bucket.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with atomic counters. The
// zero value is ready to use.
type Histogram struct {
	// counts[i] holds observations ≤ latencyBuckets[i]; the final slot is
	// the +Inf bucket. Counts are per-bucket, not cumulative; cumulation
	// happens at snapshot/exposition time.
	counts [len(latencyBuckets) + 1]atomic.Int64
	sum    atomicFloat
	total  atomic.Int64
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(latencyBuckets) && v > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds (excluding +Inf).
	Bounds []float64 `json:"bounds"`
	// Counts are the per-bucket observation counts; its last element is
	// the +Inf bucket, so len(Counts) == len(Bounds)+1.
	Counts []int64 `json:"counts"`
	// Sum is the sum of all observations in seconds.
	Sum float64 `json:"sum"`
	// Count is the total number of observations.
	Count int64 `json:"count"`
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: latencyBuckets[:],
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
