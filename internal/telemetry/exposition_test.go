package telemetry

// Parser-level validation of the /metrics exposition: instead of checking
// for a handful of known substrings, these tests parse every line of a
// populated registry's output and enforce the structural rules scrapers
// rely on — HELP/TYPE preceding the first sample of each family, bucket
// cumulativity per series, le="+Inf" agreeing with _count, and _sum/_count
// present for every histogram family. Future metric additions that break
// any of these fail here rather than in production scrape errors.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// expoSample is one parsed non-comment exposition line.
type expoSample struct {
	name   string // metric name without the label set
	labels string // raw label block, "" when unlabeled
	value  float64
}

// parseExposition parses text-format exposition, enforcing line-level
// syntax and HELP/TYPE ordering, and returns the samples plus the TYPE of
// each family.
func parseExposition(t *testing.T, out string) ([]expoSample, map[string]string) {
	t.Helper()
	var samples []expoSample
	types := map[string]string{}
	helps := map[string]bool{}
	sampled := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				t.Fatalf("malformed HELP line %q", line)
			}
			helps[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("comment line %q is neither HELP nor TYPE", line)
		}
		labels, rest := "", line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("unbalanced label braces in %q", line)
			}
			labels, rest = line[i+1:j], line[:i]+line[j+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			t.Fatalf("sample line %q does not split into name and value", line)
		}
		name := fields[0]
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("sample value in %q: %v", line, err)
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !sampled[family] {
			sampled[family] = true
			if !helps[family] {
				t.Errorf("family %s sampled before (or without) its HELP line", family)
			}
			if types[family] == "" {
				t.Errorf("family %s sampled before (or without) its TYPE line", family)
			}
		}
		samples = append(samples, expoSample{name: name, labels: labels, value: v})
	}
	return samples, types
}

// stripLe removes the le label from a bucket label set, yielding the
// series key shared with _sum/_count.
func stripLe(labels string) string {
	var kept []string
	for _, kv := range strings.Split(labels, ",") {
		if kv != "" && !strings.HasPrefix(kv, "le=") {
			kept = append(kept, kv)
		}
	}
	return strings.Join(kept, ",")
}

// populatedRegistry drives a registry through every surface the exposition
// renders: lifecycle events across classes and (hostile) relation names,
// loader latency, and flight-recorder stage latency.
func populatedRegistry() *Registry {
	r := NewRegistry()
	rels := []string{"lineitem", `back\slash`, "quo\"te", "new\nline"}
	for i := 0; i < 10; i++ {
		r.ShardSink(i % 2).Emit(core.Event{Kind: core.EventHit, Class: i % 3, ID: "q",
			Size: 10, Cost: float64(i), Relations: rels[:1+i%len(rels)]})
	}
	r.Emit(core.Event{Kind: core.EventMissAdmitted, Class: 1, Cost: 30})
	r.Emit(core.Event{Kind: core.EventMissRejected, Class: 0, Cost: 20})
	r.Emit(core.Event{Kind: core.EventEvict, Class: 0, Cost: 30})
	r.Emit(core.Event{Kind: core.EventInvalidate, Class: 2, Relations: rels[:1]})
	r.ObserveLoad(0.0001, false)
	r.ObserveLoad(0.02, false)
	r.ObserveLoad(3, true)
	for st := core.Stage(0); st < core.NumStages; st++ {
		r.ObserveStage(st, 0.001*float64(st+1))
		r.ObserveStage(st, 5) // lands in +Inf
	}
	return r
}

// TestExpositionValidity is the parser-level scrape check: it validates
// the full populated exposition structurally rather than by substring.
func TestExpositionValidity(t *testing.T) {
	var b strings.Builder
	if err := populatedRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, types := parseExposition(t, b.String())
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}

	// Every family must declare a known type.
	for fam, ty := range types {
		if ty != "counter" && ty != "gauge" && ty != "histogram" {
			t.Errorf("family %s has unknown type %q", fam, ty)
		}
	}

	// Histogram series: buckets cumulative, +Inf == _count, _sum/_count
	// present for every series that has buckets.
	type seriesKey struct{ family, labels string }
	lastBucket := map[seriesKey]float64{}
	infBucket := map[seriesKey]float64{}
	sums := map[seriesKey]bool{}
	counts := map[seriesKey]float64{}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			fam := strings.TrimSuffix(s.name, "_bucket")
			if types[fam] != "histogram" {
				t.Errorf("%s has buckets but type %q", fam, types[fam])
			}
			key := seriesKey{fam, stripLe(s.labels)}
			if prev, seen := lastBucket[key]; seen && s.value < prev {
				t.Errorf("series %v buckets not cumulative: %g after %g", key, s.value, prev)
			}
			lastBucket[key] = s.value
			if strings.Contains(s.labels, `le="+Inf"`) {
				infBucket[key] = s.value
			}
		case strings.HasSuffix(s.name, "_sum") && types[strings.TrimSuffix(s.name, "_sum")] == "histogram":
			sums[seriesKey{strings.TrimSuffix(s.name, "_sum"), s.labels}] = true
		case strings.HasSuffix(s.name, "_count") && types[strings.TrimSuffix(s.name, "_count")] == "histogram":
			counts[seriesKey{strings.TrimSuffix(s.name, "_count"), s.labels}] = s.value
		}
	}
	if len(lastBucket) == 0 {
		t.Fatal("no histogram series found in a populated registry")
	}
	for key := range lastBucket {
		inf, ok := infBucket[key]
		if !ok {
			t.Errorf("series %v has no le=\"+Inf\" bucket", key)
			continue
		}
		cnt, ok := counts[key]
		if !ok {
			t.Errorf("series %v has no _count", key)
			continue
		}
		if inf != cnt {
			t.Errorf("series %v: +Inf bucket %g != count %g", key, inf, cnt)
		}
		if !sums[key] {
			t.Errorf("series %v has no _sum", key)
		}
	}

	// The stage histogram family must carry one series per lifecycle stage.
	stageSeries := map[string]bool{}
	for key := range lastBucket {
		if key.family == "watchman_stage_latency_seconds" {
			stageSeries[key.labels] = true
		}
	}
	if len(stageSeries) != int(core.NumStages) {
		t.Errorf("stage series = %v, want one per stage (%d)", stageSeries, core.NumStages)
	}
	for st := core.Stage(0); st < core.NumStages; st++ {
		if want := fmt.Sprintf("stage=%q", st.String()); !stageSeries[want] {
			t.Errorf("no stage series labeled %s", want)
		}
	}
}

// TestExpositionOmitsStagesWhenUntraced pins that a registry that never
// saw a flight-recorder span renders no stage-latency family at all — the
// exposition of an untraced process is unchanged.
func TestExpositionOmitsStagesWhenUntraced(t *testing.T) {
	r := NewRegistry()
	r.Emit(core.Event{Kind: core.EventHit, ID: "q", Size: 1, Cost: 1})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "watchman_stage_latency_seconds") {
		t.Error("untraced exposition must not mention stage latency")
	}
}
