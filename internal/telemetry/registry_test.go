package telemetry

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func hitEvent(class int, cost float64, rels []string) core.Event {
	return core.Event{Kind: core.EventHit, Class: class, ID: "q", Size: 10, Cost: cost, Relations: rels}
}

func TestRegistryAggregates(t *testing.T) {
	r := NewRegistry()
	r.Emit(hitEvent(0, 100, []string{"lineitem"}))
	r.Emit(hitEvent(2, 50, []string{"lineitem", "orders"}))
	r.Emit(core.Event{Kind: core.EventMissAdmitted, Class: 0, Cost: 30})
	r.Emit(core.Event{Kind: core.EventMissRejected, Class: 1, Cost: 20})
	r.Emit(core.Event{Kind: core.EventExternalMiss, Class: 1, Cost: 10})
	r.Emit(core.Event{Kind: core.EventEvict, Class: 0, Cost: 30})
	r.Emit(core.Event{Kind: core.EventInvalidate, Class: 2, Relations: []string{"orders"}})

	s := r.Snapshot()
	if s.References() != 5 {
		t.Fatalf("references = %d, want 5", s.References())
	}
	if s.Hits != 2 || s.MissesAdmitted != 1 || s.MissesRejected != 1 || s.ExternalMisses != 1 {
		t.Fatalf("outcome partition wrong: %+v", s)
	}
	if s.Evictions != 1 || s.Invalidations != 1 {
		t.Fatalf("departures wrong: %+v", s)
	}
	if s.CostTotal != 210 || s.CostSaved != 150 || s.BytesServed != 20 {
		t.Fatalf("cost accounting wrong: %+v", s)
	}
	if got := s.CSR(); got != 150.0/210.0 {
		t.Fatalf("CSR = %g", got)
	}

	if len(s.Classes) != 3 {
		t.Fatalf("classes = %d, want 3 (0..2)", len(s.Classes))
	}
	c0, c1, c2 := s.Classes[0], s.Classes[1], s.Classes[2]
	if c0.References != 2 || c0.Hits != 1 || c0.CostTotal != 130 || c0.CostSaved != 100 {
		t.Fatalf("class 0 wrong: %+v", c0)
	}
	if c1.References != 2 || c1.ExternalMisses != 1 || c1.CostTotal != 30 {
		t.Fatalf("class 1 wrong: %+v", c1)
	}
	if c2.References != 1 || c2.CSR() != 1 || c2.Invalidations != 1 {
		t.Fatalf("class 2 wrong: %+v", c2)
	}

	if len(s.Relations) != 2 {
		t.Fatalf("relations = %d, want 2", len(s.Relations))
	}
	// Sorted ascending by name: lineitem, orders.
	li, ord := s.Relations[0], s.Relations[1]
	if li.Relation != "lineitem" || li.References != 2 || li.CostSaved != 150 {
		t.Fatalf("lineitem wrong: %+v", li)
	}
	if ord.Relation != "orders" || ord.References != 1 || ord.Invalidations != 1 {
		t.Fatalf("orders wrong: %+v", ord)
	}
}

func TestRegistryEmitAllocationFree(t *testing.T) {
	r := NewRegistry()
	rels := []string{"lineitem", "orders"}
	ev := hitEvent(1, 42, rels)
	r.Emit(ev) // warm the class table and relation cells
	allocs := testing.AllocsPerRun(1000, func() { r.Emit(ev) })
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f objects per event on the warm path", allocs)
	}
}

func TestRegistryConcurrentEmit(t *testing.T) {
	r := NewRegistry()
	sinks := []core.EventSink{r.ShardSink(0), r.ShardSink(1), r.ShardSink(2), r.ShardSink(3)}
	const perSink = 5000
	var wg sync.WaitGroup
	for i, s := range sinks {
		wg.Add(1)
		go func(i int, s core.EventSink) {
			defer wg.Done()
			for j := 0; j < perSink; j++ {
				s.Emit(hitEvent(i%3, 1, []string{"lineitem"}))
			}
		}(i, s)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Hits != int64(len(sinks)*perSink) {
		t.Fatalf("hits = %d, want %d", s.Hits, len(sinks)*perSink)
	}
	if s.CostTotal != float64(len(sinks)*perSink) {
		t.Fatalf("cost total = %g, want %d (atomic float adds lost updates)", s.CostTotal, len(sinks)*perSink)
	}
	if len(s.ShardReferences) != len(sinks) {
		t.Fatalf("shard refs = %v", s.ShardReferences)
	}
	for i, n := range s.ShardReferences {
		if n != perSink {
			t.Fatalf("shard %d refs = %d, want %d", i, n, perSink)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	// Relation names are arbitrary client strings; the exposition must
	// escape exactly per the Prometheus text format (\\, \", \n) — Go
	// quoting rules (\t, \xNN) would break the whole scrape.
	r.Emit(hitEvent(0, 1, []string{"a\tb", `c\d`, "e\"f", "g\nh"}))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"{relation=\"a\tb\"}", // tab passes through raw (legal in label values)
		`{relation="c\\d"}`,   // backslash doubled
		`{relation="e\"f"}`,   // quote escaped
		`{relation="g\nh"}`,   // newline escaped, not literal
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, `\t`) {
		t.Error("Go-style \\t escape leaked into the exposition")
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Contains(line, "relation=") && strings.Count(line, " ") != 1 &&
			!strings.HasPrefix(line, "#") {
			t.Errorf("label escaping broke line structure: %q", line)
		}
	}
}

func TestClassIndexClamped(t *testing.T) {
	r := NewRegistry()
	// An absurd class index must not drive an unbounded dense allocation:
	// it collapses into the top tracked cell.
	r.Emit(hitEvent(1<<30, 100, nil))
	r.Emit(hitEvent(-5, 10, nil))
	s := r.Snapshot()
	if len(s.Classes) != MaxTrackedClasses {
		t.Fatalf("class table = %d cells, want clamp at %d", len(s.Classes), MaxTrackedClasses)
	}
	if top := s.Classes[MaxTrackedClasses-1]; top.References != 1 || top.CostSaved != 100 {
		t.Fatalf("overflow class not charged to top cell: %+v", top)
	}
	if s.Classes[0].References != 1 {
		t.Fatalf("negative class not clamped to 0: %+v", s.Classes[0])
	}
}

func TestRelationCardinalityCapped(t *testing.T) {
	r := NewRegistry()
	const distinct = MaxTrackedRelations + 500
	for i := 0; i < distinct; i++ {
		r.Emit(hitEvent(0, 1, []string{"rel_" + strconv.Itoa(i)}))
	}
	s := r.Snapshot()
	// The cap plus the overflow cell bounds the map; every event past the
	// cap lands in the overflow cell, so nothing is lost from the sums.
	if got := len(s.Relations); got > MaxTrackedRelations+1 {
		t.Fatalf("relation cells = %d, want ≤ %d", got, MaxTrackedRelations+1)
	}
	var refs int64
	var overflow *RelationSnapshot
	for i := range s.Relations {
		refs += s.Relations[i].References
		if s.Relations[i].Relation == OverflowRelation {
			overflow = &s.Relations[i]
		}
	}
	if refs != distinct {
		t.Fatalf("relation references sum to %d, want %d", refs, distinct)
	}
	if overflow == nil || overflow.References != 500 {
		t.Fatalf("overflow cell = %+v, want 500 references", overflow)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(0.0002) // ≤ 0.00025 bucket
	h.Observe(0.003)  // ≤ 0.005
	h.Observe(99)     // +Inf
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Sum; got < 99.003 || got > 99.004 {
		t.Fatalf("sum = %g", got)
	}
	if s.Counts[1] != 1 {
		t.Fatalf("0.00025 bucket = %d, want 1", s.Counts[1])
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, count is %d", total, s.Count)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	sink := r.ShardSink(0)
	sink.Emit(hitEvent(0, 100, []string{"lineitem"}))
	sink.Emit(core.Event{Kind: core.EventMissAdmitted, Class: 1, Cost: 30})
	r.ObserveLoad(0.002, false)
	r.ObserveLoad(0.5, true)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"watchman_references_total 2",
		"watchman_hits_total 1",
		"watchman_misses_admitted_total 1",
		"watchman_external_misses_total 0",
		"watchman_cost_saved_total 100",
		"watchman_loader_errors_total 1",
		`watchman_class_csr{class="0"} 1`,
		`watchman_class_csr{class="1"} 0`,
		`watchman_relation_cost_total{relation="lineitem"} 100`,
		`watchman_shard_references_total{shard="0"} 2`,
		`watchman_load_latency_seconds_bucket{le="+Inf"} 2`,
		"watchman_load_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Structural checks: every non-comment line is "name[{labels}] value",
	// every metric family is preceded by HELP and TYPE, and histogram
	// buckets are cumulative (non-decreasing).
	var prevBucket int64 = -1
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line %q", line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line %q does not split into name and value", line)
		}
		if strings.Contains(fields[0], "_bucket{le=") && !strings.Contains(fields[0], "+Inf") {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", fields[1], err)
			}
			if v < prevBucket {
				t.Fatalf("histogram buckets not cumulative at %q", line)
			}
			prevBucket = v
		}
	}
}
