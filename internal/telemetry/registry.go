// Package telemetry is the aggregation half of the telemetry spine: a
// lock-cheap Registry consumes the typed lifecycle events every cache
// shard emits (see core.EventSink) and maintains per-class and
// per-relation cost-savings accounting, per-shard reference counts and a
// load-latency histogram. Aggregate counters are derived at snapshot
// time, so the hot path touches only one class cell per event.
//
// The hot path is allocation-free and contention-free by construction:
// every shard sink owns a private contention domain of atomic cells
// (events within a shard are already serialized by the shard mutex, so
// its cache lines never bounce), float accumulation uses CAS on bit
// patterns, the per-class table is an atomically published slice that
// grows off the hot path, and per-relation cells live in a sync.Map
// keyed by relation name. Snapshot merges the domains.
//
// A Registry serves two consumers: Snapshot returns a plain value for
// JSON reporting and tests, and WritePrometheus renders the Prometheus
// text exposition format for scraping (see internal/server's
// GET /metrics).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// atomicFloat accumulates a float64 with compare-and-swap on its bit
// pattern, so concurrent sinks can add without a mutex.
type atomicFloat struct{ bits atomic.Uint64 }

// Add adds v to the accumulator.
//
//watchman:hotpath
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Load returns the current value.
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Store replaces the current value.
func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// refCell is one accumulation cell of the breakdown tables: the outcome
// counts and the two sides of the paper's CSR fraction, scoped to one
// class or one relation within one contention domain. Admitted misses are
// derived (refs − hits − rejected − external), keeping the hot path to
// the minimum number of atomic touches.
type refCell struct {
	refs, hits             atomic.Int64
	derivedHits            atomic.Int64
	missRejected           atomic.Int64
	extMisses              atomic.Int64
	evictions, invalidated atomic.Int64
	bytes                  atomic.Int64
	costTotal, costSaved   atomicFloat
	deriveCost             atomicFloat
}

// charge accrues one event into the cell. deriveCost is meaningful only
// for HitDerived events (the cost actually spent re-deriving; the saving
// is cost − deriveCost).
//
//watchman:hotpath
func (c *refCell) charge(kind core.EventKind, size int64, cost, deriveCost float64) {
	switch kind {
	case core.EventHit:
		c.refs.Add(1)
		c.hits.Add(1)
		c.bytes.Add(size)
		c.costTotal.Add(cost)
		c.costSaved.Add(cost)
	case core.EventHitDerived:
		c.refs.Add(1)
		c.derivedHits.Add(1)
		c.bytes.Add(size)
		c.costTotal.Add(cost)
		c.costSaved.Add(cost - deriveCost)
		c.deriveCost.Add(deriveCost)
	case core.EventMissAdmitted:
		c.refs.Add(1)
		c.costTotal.Add(cost)
	case core.EventMissRejected:
		c.refs.Add(1)
		c.missRejected.Add(1)
		c.costTotal.Add(cost)
	case core.EventExternalMiss:
		c.refs.Add(1)
		c.extMisses.Add(1)
		c.costTotal.Add(cost)
	case core.EventEvict:
		c.evictions.Add(1)
	case core.EventInvalidate:
		c.invalidated.Add(1)
	case core.EventRestore:
		// Snapshot restores re-announce residency, not a reference
		// outcome; restored Stats already carry the pre-crash history.
	}
}

// MaxTrackedClasses bounds the dense per-class table: class indices at or
// above it collapse into the top cell (and negatives into cell 0), so an
// absurd Request.Class cannot drive an unbounded allocation. Serving
// layers should reject out-of-range classes at the boundary; the clamp
// here is defense in depth for library callers.
const MaxTrackedClasses = 1024

// MaxTrackedRelations bounds the per-relation cells of one contention
// domain: once a domain tracks this many distinct relation names, further
// names collapse into the OverflowRelation cell, so an adversarial or
// buggy workload with ever-changing relation strings cannot grow the
// registry (or the /metrics exposition) without bound.
const MaxTrackedRelations = 1024

// OverflowRelation is the catch-all cell name that absorbs relations
// beyond MaxTrackedRelations.
const OverflowRelation = "_other"

// domain is one contention domain of counters. Every shard sink owns one,
// so counters written under different shard mutexes live on different
// cache lines; the registry's root domain serves direct Emit callers
// (single-threaded replays).
type domain struct {
	// classes is the atomically published per-class table; growth happens
	// under classMu and republishes a longer slice, so readers never lock.
	classes atomic.Pointer[[]*refCell]
	classMu sync.Mutex
	// relations maps relation name → *refCell; hot-path lookups hit the
	// sync.Map read path (no lock, no allocation once the cell exists).
	// relCount tracks its size for the cardinality cap (sync.Map has no
	// cheap length); concurrent first sightings may overshoot the cap by
	// at most the caller count, which keeps the bound intact in spirit.
	relations sync.Map
	relCount  atomic.Int64
}

// class returns the cell for a class index, growing the table off the hot
// path on first sight of a new class. Indices clamp into
// [0, MaxTrackedClasses).
func (d *domain) class(i int) *refCell {
	if i < 0 {
		i = 0
	} else if i >= MaxTrackedClasses {
		i = MaxTrackedClasses - 1
	}
	if t := d.classes.Load(); t != nil && i < len(*t) {
		return (*t)[i]
	}
	d.classMu.Lock()
	defer d.classMu.Unlock()
	var cur []*refCell
	if t := d.classes.Load(); t != nil {
		cur = *t
		if i < len(cur) {
			return cur[i]
		}
	}
	grown := make([]*refCell, i+1)
	copy(grown, cur)
	for j := len(cur); j <= i; j++ {
		grown[j] = &refCell{}
	}
	d.classes.Store(&grown)
	return grown[i]
}

// relation returns the cell for a relation name, creating it on first use.
// Past MaxTrackedRelations distinct names, the overflow cell is returned
// instead.
func (d *domain) relation(name string) *refCell {
	if cell, ok := d.relations.Load(name); ok {
		return cell.(*refCell)
	}
	if d.relCount.Load() >= MaxTrackedRelations && name != OverflowRelation {
		return d.relation(OverflowRelation)
	}
	cell, loaded := d.relations.LoadOrStore(name, &refCell{})
	if !loaded {
		d.relCount.Add(1)
	}
	return cell.(*refCell)
}

// emit consumes one lifecycle event into the domain's cells.
func (d *domain) emit(ev core.Event) {
	if ev.Derived && (ev.Kind == core.EventMissAdmitted || ev.Kind == core.EventMissRejected) {
		// The admission decision for a derived set is bookkeeping, not a
		// reference outcome: the reference was already counted by its
		// HitDerived event. Counting both would double the denominator.
		return
	}
	d.class(ev.Class).charge(ev.Kind, ev.Size, ev.Cost, ev.DeriveCost)
	// Only references and coherence drops carry per-relation meaning;
	// evictions are a space decision, not a relation one.
	if ev.Kind != core.EventEvict {
		for _, rel := range ev.Relations {
			d.relation(rel).charge(ev.Kind, ev.Size, ev.Cost, ev.DeriveCost)
		}
	}
}

// Registry aggregates lifecycle events from every shard of a cache. All
// methods are safe for concurrent use; Emit is cheap enough for the hit
// path (a handful of atomic adds on shard-local cache lines, no
// allocation).
type Registry struct {
	// root consumes events emitted directly on the registry (replays and
	// single-threaded caches use the registry itself as their sink).
	root domain

	// shards holds the per-shard domains, atomically published and grown
	// under shardMu by ShardSink.
	shards  atomic.Pointer[[]*domain]
	shardMu sync.Mutex

	loadLatency  Histogram
	loaderErrors atomic.Int64

	// stageLatency holds one histogram per flight-recorder lifecycle stage
	// (see core.Stage); the flight recorder feeds them from every span it
	// observes, sampled or not, so the stage profile covers all traffic.
	stageLatency [int(core.NumStages)]Histogram

	// Snapshot-capture accounting, fed by ObserveSnapshot: the capture
	// latency distribution plus the most recent capture's encoded size
	// and worst single shard-lock pause.
	snapLatency  Histogram
	snapBytes    atomic.Int64
	snapMaxPause atomicFloat
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Emit consumes one lifecycle event into the registry's root domain. It
// implements core.EventSink; concurrent caches should prefer per-shard
// sinks from ShardSink, which keep counter cache lines shard-local.
func (r *Registry) Emit(ev core.Event) { r.root.emit(ev) }

// shardSink forwards one shard's events into its private domain.
type shardSink struct{ d *domain }

// Emit consumes the event into the shard's domain.
func (s shardSink) Emit(ev core.Event) { s.d.emit(ev) }

// ShardSink returns a sink for one shard that fans its events into the
// registry through a private contention domain, so per-shard balance
// falls out of the merge and counters written under different shard
// mutexes never share cache lines. Shard indices should be dense from
// zero.
func (r *Registry) ShardSink(shard int) core.EventSink {
	if shard < 0 {
		shard = 0
	}
	r.shardMu.Lock()
	defer r.shardMu.Unlock()
	var cur []*domain
	if t := r.shards.Load(); t != nil {
		cur = *t
	}
	if shard >= len(cur) {
		grown := make([]*domain, shard+1)
		copy(grown, cur)
		for j := len(cur); j <= shard; j++ {
			grown[j] = &domain{}
		}
		r.shards.Store(&grown)
		cur = grown
	}
	return shardSink{d: cur[shard]}
}

// ObserveLoad records one loader execution: its wall-clock latency in
// seconds and whether it failed.
func (r *Registry) ObserveLoad(seconds float64, failed bool) {
	r.loadLatency.Observe(seconds)
	if failed {
		r.loaderErrors.Add(1)
	}
}

// ObserveStage records the wall-clock seconds one reference spent in one
// lifecycle stage. Out-of-range stages are dropped.
func (r *Registry) ObserveStage(stage core.Stage, seconds float64) {
	if stage >= core.NumStages {
		return
	}
	r.stageLatency[stage].Observe(seconds)
}

// ObserveSnapshot records one completed snapshot capture: its wall-clock
// duration and encoded size, and the longest single shard-lock pause the
// capture inflicted on foreground traffic.
func (r *Registry) ObserveSnapshot(seconds float64, bytes int64, maxPauseSeconds float64) {
	r.snapBytes.Store(bytes)
	r.snapMaxPause.Store(maxPauseSeconds)
	r.snapLatency.Observe(seconds)
}

// RefStats is the reference accounting of one class or relation in a
// Snapshot.
type RefStats struct {
	// References is the number of references charged to the key.
	References int64 `json:"references"`
	// Hits is the number of those references served exactly from cache.
	Hits int64 `json:"hits"`
	// DerivedHits is the number answered by semantic derivation from a
	// cached ancestor (partial savings: cost minus derivation cost).
	DerivedHits int64 `json:"derived_hits"`
	// DeriveCost is Σ derivation cost spent on the key's derived hits.
	DeriveCost float64 `json:"derive_cost"`
	// MissesRejected is the number of misses denied admission.
	MissesRejected int64 `json:"misses_rejected"`
	// ExternalMisses is the number charged via Account(req, false).
	ExternalMisses int64 `json:"external_misses"`
	// Evictions counts replacement evictions of the key's entries.
	Evictions int64 `json:"evictions"`
	// Invalidations counts coherence drops of the key's entries.
	Invalidations int64 `json:"invalidations"`
	// BytesServed is Σ size over the key's hits.
	BytesServed int64 `json:"bytes_served"`
	// CostTotal is Σ cost over the key's references.
	CostTotal float64 `json:"cost_total"`
	// CostSaved is Σ cost over the key's hits.
	CostSaved float64 `json:"cost_saved"`
}

// add accumulates one cell of one domain into the stats.
func (s *RefStats) add(c *refCell) {
	s.References += c.refs.Load()
	s.Hits += c.hits.Load()
	s.DerivedHits += c.derivedHits.Load()
	s.DeriveCost += c.deriveCost.Load()
	s.MissesRejected += c.missRejected.Load()
	s.ExternalMisses += c.extMisses.Load()
	s.Evictions += c.evictions.Load()
	s.Invalidations += c.invalidated.Load()
	s.BytesServed += c.bytes.Load()
	s.CostTotal += c.costTotal.Load()
	s.CostSaved += c.costSaved.Load()
}

// MissesAdmitted returns the number of misses whose set was cached: every
// reference ends in exactly one outcome, so it is the remainder.
func (s RefStats) MissesAdmitted() int64 {
	return s.References - s.Hits - s.DerivedHits - s.MissesRejected - s.ExternalMisses
}

// CSR returns the key's cost savings ratio.
func (s RefStats) CSR() float64 {
	if s.CostTotal == 0 {
		return 0
	}
	return s.CostSaved / s.CostTotal
}

// HitRatio returns the key's hit ratio (exact plus derived hits).
func (s RefStats) HitRatio() float64 {
	if s.References == 0 {
		return 0
	}
	return float64(s.Hits+s.DerivedHits) / float64(s.References)
}

// StageSnapshot is one lifecycle stage's latency histogram in a Snapshot.
type StageSnapshot struct {
	// Stage is the stage name ("lookup", "derive", "load", "admit",
	// "insert", "evict").
	Stage string `json:"stage"`
	// HistogramSnapshot is the stage's latency histogram.
	HistogramSnapshot
}

// ClassSnapshot is one workload class's accounting.
type ClassSnapshot struct {
	// Class is the workload class index.
	Class int `json:"class"`
	// RefStats is the class's reference accounting.
	RefStats
}

// RelationSnapshot is one base relation's accounting: references to
// queries reading the relation and coherence drops against it.
type RelationSnapshot struct {
	// Relation is the base relation name.
	Relation string `json:"relation"`
	// RefStats is the relation's reference accounting.
	RefStats
}

// Snapshot is a point-in-time copy of every registry counter. Counters
// are read individually (not under one lock), so a snapshot taken under
// write load is internally consistent only up to in-flight events.
type Snapshot struct {
	// Hits, DerivedHits, MissesAdmitted, MissesRejected and ExternalMisses
	// partition References by lifecycle outcome.
	Hits           int64 `json:"hits"`
	DerivedHits    int64 `json:"derived_hits"`
	MissesAdmitted int64 `json:"misses_admitted"`
	MissesRejected int64 `json:"misses_rejected"`
	ExternalMisses int64 `json:"external_misses"`
	// Evictions and Invalidations count entry departures.
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// BytesServed is Σ size over hits.
	BytesServed int64 `json:"bytes_served"`
	// CostTotal and CostSaved are the two sides of the paper's CSR.
	CostTotal float64 `json:"cost_total"`
	CostSaved float64 `json:"cost_saved"`
	// DeriveCost is Σ derivation cost spent on derived hits.
	DeriveCost float64 `json:"derive_cost"`
	// LoaderErrors counts failed loader executions.
	LoaderErrors int64 `json:"loader_errors"`
	// LoadLatency is the loader execution latency histogram.
	LoadLatency HistogramSnapshot `json:"load_latency"`
	// Stages holds the per-stage latency histograms fed by the flight
	// recorder, in stage order; empty when no span was ever observed.
	Stages []StageSnapshot `json:"stages,omitempty"`
	// SnapshotLatency is the snapshot capture latency histogram, nil
	// until a snapshot has been observed (ObserveSnapshot).
	SnapshotLatency *HistogramSnapshot `json:"snapshot_latency,omitempty"`
	// SnapshotBytes is the encoded size of the most recent snapshot.
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	// SnapshotMaxLockPauseSeconds is the longest single shard-lock pause
	// of the most recent snapshot capture.
	SnapshotMaxLockPauseSeconds float64 `json:"snapshot_max_lock_pause_seconds,omitempty"`
	// Classes holds the per-class breakdown, ascending by class.
	Classes []ClassSnapshot `json:"classes,omitempty"`
	// Relations holds the per-relation breakdown, ascending by name.
	Relations []RelationSnapshot `json:"relations,omitempty"`
	// ShardReferences counts references served per shard (one element per
	// shard sink handed out).
	ShardReferences []int64 `json:"shard_references,omitempty"`
}

// References returns the total references observed: every reference ends
// in exactly one of hit, derived hit, admitted miss, rejected miss or
// external miss.
func (s Snapshot) References() int64 {
	return s.Hits + s.DerivedHits + s.MissesAdmitted + s.MissesRejected + s.ExternalMisses
}

// CSR returns the aggregate cost savings ratio.
func (s Snapshot) CSR() float64 {
	if s.CostTotal == 0 {
		return 0
	}
	return s.CostSaved / s.CostTotal
}

// HitRatio returns the aggregate hit ratio (exact plus derived hits).
func (s Snapshot) HitRatio() float64 {
	if n := s.References(); n > 0 {
		return float64(s.Hits+s.DerivedHits) / float64(n)
	}
	return 0
}

// Snapshot merges every contention domain into a point-in-time copy.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		LoaderErrors: r.loaderErrors.Load(),
		LoadLatency:  r.loadLatency.Snapshot(),
	}

	// The stage histograms appear only once a flight recorder has fed
	// them: an untraced process keeps its snapshot (and exposition) free
	// of six empty histogram families.
	var stageCount int64
	stages := make([]StageSnapshot, int(core.NumStages))
	for st := core.Stage(0); st < core.NumStages; st++ {
		stages[st] = StageSnapshot{Stage: st.String(), HistogramSnapshot: r.stageLatency[st].Snapshot()}
		stageCount += stages[st].Count
	}
	if stageCount > 0 {
		s.Stages = stages
	}

	// Same gating for snapshot metrics: a process that never snapshots
	// keeps its exposition free of an empty histogram family.
	if hs := r.snapLatency.Snapshot(); hs.Count > 0 {
		s.SnapshotLatency = &hs
		s.SnapshotBytes = r.snapBytes.Load()
		s.SnapshotMaxLockPauseSeconds = r.snapMaxPause.Load()
	}

	domains := []*domain{&r.root}
	if t := r.shards.Load(); t != nil {
		for _, d := range *t {
			domains = append(domains, d)
			var refs int64
			if ct := d.classes.Load(); ct != nil {
				for _, cell := range *ct {
					refs += cell.refs.Load()
				}
			}
			s.ShardReferences = append(s.ShardReferences, refs)
		}
	}

	// Merge the per-class tables into a dense ascending slice.
	maxClass := -1
	for _, d := range domains {
		if ct := d.classes.Load(); ct != nil && len(*ct)-1 > maxClass {
			maxClass = len(*ct) - 1
		}
	}
	for c := 0; c <= maxClass; c++ {
		cs := ClassSnapshot{Class: c}
		for _, d := range domains {
			if ct := d.classes.Load(); ct != nil && c < len(*ct) {
				cs.add((*ct)[c])
			}
		}
		s.Classes = append(s.Classes, cs)
	}

	// Merge the per-relation maps.
	rels := map[string]*RelationSnapshot{}
	for _, d := range domains {
		d.relations.Range(func(k, v any) bool {
			name := k.(string)
			rs := rels[name]
			if rs == nil {
				rs = &RelationSnapshot{Relation: name}
				rels[name] = rs
			}
			rs.add(v.(*refCell))
			return true
		})
	}
	for _, rs := range rels {
		s.Relations = append(s.Relations, *rs)
	}
	sort.Slice(s.Relations, func(i, j int) bool { return s.Relations[i].Relation < s.Relations[j].Relation })

	// Aggregates are the class-table sums (relations would double-count:
	// one query may read several relations).
	for _, c := range s.Classes {
		s.Hits += c.Hits
		s.DerivedHits += c.DerivedHits
		s.MissesAdmitted += c.MissesAdmitted()
		s.MissesRejected += c.MissesRejected
		s.ExternalMisses += c.ExternalMisses
		s.Evictions += c.Evictions
		s.Invalidations += c.Invalidations
		s.BytesServed += c.BytesServed
		s.CostTotal += c.CostTotal
		s.CostSaved += c.CostSaved
		s.DeriveCost += c.DeriveCost
	}
	return s
}
