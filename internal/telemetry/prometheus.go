package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promWriter accumulates exposition lines and the first write error, so
// the renderer reads straight through without per-line error plumbing.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP/TYPE preamble for one metric family.
func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// counter emits a single unlabeled sample after its preamble.
func (p *promWriter) counter(name, help string, v any) {
	p.header(name, help, "counter")
	p.printf("%s %v\n", name, v)
}

// WritePrometheus renders every counter in the Prometheus text exposition
// format (version 0.0.4): the aggregate lifecycle counters, the CSR
// fraction's two sides, per-class and per-relation breakdowns as labeled
// families, per-shard reference counts, and the load-latency histogram
// with cumulative buckets. Gauges owned by the serving layer (residency,
// occupancy) are appended by the caller; the registry only knows flows,
// not levels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	p := &promWriter{w: w}

	p.counter("watchman_references_total", "References observed (hits + derived hits + admitted + rejected + external misses).", s.References())
	p.counter("watchman_hits_total", "References satisfied exactly from cache.", s.Hits)
	p.counter("watchman_derived_hits_total", "References answered by semantic derivation from a cached ancestor.", s.DerivedHits)
	p.counter("watchman_derive_cost_total", "Execution cost spent re-deriving answers, in logical block reads.", formatFloat(s.DeriveCost))
	p.counter("watchman_misses_admitted_total", "Misses whose retrieved set was cached.", s.MissesAdmitted)
	p.counter("watchman_misses_rejected_total", "Misses denied admission.", s.MissesRejected)
	p.counter("watchman_external_misses_total", "References resolved outside the miss lifecycle (stale singleflight results, loader failures).", s.ExternalMisses)
	p.counter("watchman_evictions_total", "Resident sets evicted by replacement.", s.Evictions)
	p.counter("watchman_invalidations_total", "Entries dropped by coherence events.", s.Invalidations)
	p.counter("watchman_bytes_served_total", "Bytes served from cache on hits.", s.BytesServed)
	p.counter("watchman_cost_total", "Execution cost charged over all references, in logical block reads.", formatFloat(s.CostTotal))
	p.counter("watchman_cost_saved_total", "Execution cost saved on hits, in logical block reads.", formatFloat(s.CostSaved))
	p.counter("watchman_loader_errors_total", "Failed loader executions.", s.LoaderErrors)

	if len(s.Classes) > 0 {
		p.header("watchman_class_references_total", "References per workload class.", "counter")
		for _, c := range s.Classes {
			p.printf("watchman_class_references_total{class=\"%d\"} %d\n", c.Class, c.References)
		}
		p.header("watchman_class_hits_total", "Hits per workload class.", "counter")
		for _, c := range s.Classes {
			p.printf("watchman_class_hits_total{class=\"%d\"} %d\n", c.Class, c.Hits)
		}
		p.header("watchman_class_derived_hits_total", "Derived hits per workload class.", "counter")
		for _, c := range s.Classes {
			p.printf("watchman_class_derived_hits_total{class=\"%d\"} %d\n", c.Class, c.DerivedHits)
		}
		p.header("watchman_class_cost_total", "Execution cost charged per workload class.", "counter")
		for _, c := range s.Classes {
			p.printf("watchman_class_cost_total{class=\"%d\"} %s\n", c.Class, formatFloat(c.CostTotal))
		}
		p.header("watchman_class_cost_saved_total", "Execution cost saved per workload class.", "counter")
		for _, c := range s.Classes {
			p.printf("watchman_class_cost_saved_total{class=\"%d\"} %s\n", c.Class, formatFloat(c.CostSaved))
		}
		p.header("watchman_class_csr", "Cost savings ratio per workload class (computed at scrape).", "gauge")
		for _, c := range s.Classes {
			p.printf("watchman_class_csr{class=\"%d\"} %s\n", c.Class, formatFloat(c.CSR()))
		}
	}

	if len(s.Relations) > 0 {
		p.header("watchman_relation_cost_total", "Execution cost charged to references reading the relation.", "counter")
		for _, rel := range s.Relations {
			p.printf("watchman_relation_cost_total{relation=\"%s\"} %s\n", EscapeLabel(rel.Relation), formatFloat(rel.CostTotal))
		}
		p.header("watchman_relation_cost_saved_total", "Execution cost saved on hits reading the relation.", "counter")
		for _, rel := range s.Relations {
			p.printf("watchman_relation_cost_saved_total{relation=\"%s\"} %s\n", EscapeLabel(rel.Relation), formatFloat(rel.CostSaved))
		}
		p.header("watchman_relation_invalidations_total", "Entries dropped by coherence events against the relation.", "counter")
		for _, rel := range s.Relations {
			p.printf("watchman_relation_invalidations_total{relation=\"%s\"} %d\n", EscapeLabel(rel.Relation), rel.Invalidations)
		}
	}

	if len(s.ShardReferences) > 0 {
		p.header("watchman_shard_references_total", "References served per shard.", "counter")
		for i, n := range s.ShardReferences {
			p.printf("watchman_shard_references_total{shard=\"%d\"} %d\n", i, n)
		}
	}

	p.header("watchman_load_latency_seconds", "Loader execution latency.", "histogram")
	p.histogram("watchman_load_latency_seconds", "", s.LoadLatency)

	if len(s.Stages) > 0 {
		p.header("watchman_stage_latency_seconds", "Reference lifecycle stage latency, from the flight recorder.", "histogram")
		for _, st := range s.Stages {
			p.histogram("watchman_stage_latency_seconds", fmt.Sprintf("stage=\"%s\"", EscapeLabel(st.Stage)), st.HistogramSnapshot)
		}
	}

	if s.SnapshotLatency != nil {
		p.header("watchman_snapshot_duration_seconds", "Snapshot capture latency (chunked export + streaming encode).", "histogram")
		p.histogram("watchman_snapshot_duration_seconds", "", *s.SnapshotLatency)
		p.header("watchman_snapshot_bytes", "Encoded size of the most recent snapshot.", "gauge")
		p.printf("watchman_snapshot_bytes %d\n", s.SnapshotBytes)
		p.header("watchman_snapshot_max_lock_pause_seconds", "Longest single shard-lock pause of the most recent snapshot capture.", "gauge")
		p.printf("watchman_snapshot_max_lock_pause_seconds %s\n", formatFloat(s.SnapshotMaxLockPauseSeconds))
	}

	return p.err
}

// histogram renders one histogram's samples — cumulative buckets, sum and
// count — after the caller has emitted the family preamble. labels is the
// inner label list shared by every sample ("" for none); the le label is
// appended to it on bucket lines.
func (p *promWriter) histogram(name, labels string, snap HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		p.printf("%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, formatFloat(bound), cum)
	}
	cum += snap.Counts[len(snap.Counts)-1]
	p.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		p.printf("%s_sum %s\n%s_count %d\n", name, formatFloat(snap.Sum), name, snap.Count)
	} else {
		p.printf("%s_sum{%s} %s\n%s_count{%s} %d\n", name, labels, formatFloat(snap.Sum), name, labels, snap.Count)
	}
}

// formatFloat renders a float in the shortest round-trip form Prometheus
// parsers accept.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelEscaper applies the Prometheus text-format label-value escaping
// rules — exactly backslash, double-quote and newline (strconv.Quote's Go
// rules would emit \t and \xNN sequences scrapers reject). Relation names
// are arbitrary client strings, so this guards the whole exposition.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabel escapes one label value for the text exposition format. It
// is exported for serving layers that interpolate their own label values
// (the build-info gauge) so every exposition writer shares one set of
// escaping rules.
func EscapeLabel(s string) string { return labelEscaper.Replace(s) }
