// Package persist is the snapshot subsystem of the WATCHMAN reproduction:
// a versioned binary codec that captures the full learned state of a
// cache — resident entries with their payloads, retained reference
// histories and λ-estimator context from internal/core, and the adaptive
// admission tuner's published θ plus its buffered shadow-profile windows
// from internal/admission — so a restarted server resumes serving warm
// instead of rebuilding its reference history from zero ("don't trash
// your intermediate results").
//
// # File format
//
//	magic    [6]byte  "WMSNAP"
//	version  byte     '1'
//	sections          one or more, each:
//	  kind     byte     (meta / cache / admission / end)
//	  length   uvarint  payload byte count
//	  payload  []byte
//	  crc      uint32LE IEEE CRC-32 of the payload
//
// Every section is independently CRC-checked, so corruption is localized
// to a section and reported as ErrCorrupt rather than decoded into bad
// cache state. The stream ends with an explicit end section: a file
// truncated at a section boundary — which would otherwise parse as a
// valid, quietly shorter snapshot — fails loudly. Within payloads,
// integers are varints, floats are IEEE-754 bit patterns in uvarints, and
// strings are length-prefixed bytes with dictionary interning (relation
// names and query templates repeat heavily across entries).
//
// # What is and is not captured
//
// A snapshot captures learned state: entries, reference windows, Stats,
// the λ context, θ and the pending tuning window. It does not capture
// configuration (capacity, K, policy, shard count come from the restoring
// process and are only echoed for mismatch reporting), telemetry registry
// counters (restart cold), or the admission tuner's shadow caches (they
// re-warm from live traffic; the slow-moving EMA scores that pick θ are
// what survives).
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/engine"
)

const (
	magic   = "WMSNAP"
	version = '1'
)

// Section kinds.
const (
	sectionEnd       = 0x00 // terminates the stream; empty payload
	sectionMeta      = 0x01 // shard count + capture clock
	sectionCache     = 0x02 // one shard's core.CacheState
	sectionAdmission = 0x03 // adaptive tuner state
)

// Payload encodings. The cache stores payloads as opaque `any` values;
// the codec persists the concrete types the serving stack produces and
// fails loudly on anything else rather than silently resurrecting an
// entry without its data.
const (
	payloadNil    = 0x00 // no payload stored
	payloadBytes  = 0x01 // []byte, stored raw
	payloadString = 0x02 // string, stored raw
	payloadJSON   = 0x03 // anything else JSON-encodable (HTTP payloads)
	payloadResult = 0x04 // *engine.Result, JSON-encoded, type restored
)

var (
	// ErrBadMagic is returned when decoding data that is not a snapshot.
	ErrBadMagic = errors.New("persist: bad magic; not a WMSNAP snapshot")
	// ErrBadVersion is returned for snapshots of an unknown codec version
	// (newer than this reader).
	ErrBadVersion = errors.New("persist: unsupported snapshot version")
	// ErrCorrupt is returned when the stream is truncated, structurally
	// invalid, or fails a section CRC check.
	ErrCorrupt = errors.New("persist: corrupt snapshot")
)

// Snapshot is the in-memory form of one snapshot file: one CacheState per
// shard (a single-threaded cache is a one-shard snapshot) plus the
// optional adaptive admission state.
type Snapshot struct {
	// Clock is the largest logical time across shards at capture.
	Clock float64
	// Shards holds each shard's state, in shard order.
	Shards []*core.CacheState
	// Admission carries the adaptive tuner's state, nil when the captured
	// cache ran a static admission policy.
	Admission *admission.TunerState
}

// Resident returns the total resident entries across shards.
func (s *Snapshot) Resident() int {
	n := 0
	for _, sh := range s.Shards {
		for i := range sh.Entries {
			if sh.Entries[i].Resident {
				n++
			}
		}
	}
	return n
}

// sectionWriter accumulates one section's payload with string interning.
// The interning scheme matches the trace codec's dictWriter (0 introduces
// a string inline, n>0 references the (n−1)-th interned one), but the two
// are not shared code: trace streams straight to a bufio.Writer with
// per-call errors and a byte-pinned v1/v2 format, while sections here
// buffer for CRC framing and use fixed-width floats.
type sectionWriter struct {
	buf  bytes.Buffer
	dict map[string]uint64
}

func (w *sectionWriter) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	w.buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func (w *sectionWriter) varint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	w.buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

// float writes a fixed 8-byte little-endian IEEE-754 value. Real floats
// (timestamps, costs, θ) have high exponent bits set, so varint-encoding
// their bit patterns would cost 9-10 bytes each — fixed width is both
// smaller and faster for the float-heavy entry metadata.
func (w *sectionWriter) float(f float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	w.buf.Write(tmp[:])
}

func (w *sectionWriter) bool(b bool) {
	if b {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}

// str writes a dictionary-interned string: index 0 introduces a new
// string inline, n>0 references the (n−1)-th interned string. The
// dictionary spans sections (it belongs to the whole stream) — sections
// are CRC-isolated for integrity, not decoded independently.
func (w *sectionWriter) str(s string) {
	if idx, ok := w.dict[s]; ok {
		w.uvarint(idx + 1)
		return
	}
	w.dict[s] = uint64(len(w.dict))
	w.uvarint(0)
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *sectionWriter) blob(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf.Write(b)
}

// decodePayload inverts encoder.writePayload. JSON payloads decode to the
// generic any shape (maps, slices, float64 numbers) — the same shape the
// HTTP server stored in the first place.
func decodePayload(tag byte, data []byte) (any, error) {
	switch tag {
	case payloadNil:
		return nil, nil
	case payloadBytes:
		return data, nil
	case payloadString:
		return string(data), nil
	case payloadResult:
		res := &engine.Result{}
		if err := json.Unmarshal(data, res); err != nil {
			return nil, fmt.Errorf("%w: engine result payload: %v", ErrCorrupt, err)
		}
		return res, nil
	case payloadJSON:
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("%w: JSON payload: %v", ErrCorrupt, err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("%w: unknown payload tag 0x%02x", ErrCorrupt, tag)
	}
}

func writeStats(w *sectionWriter, s core.Stats) {
	w.varint(s.References)
	w.varint(s.Hits)
	w.varint(s.DerivedHits)
	w.float(s.CostTotal)
	w.float(s.CostSaved)
	w.float(s.DeriveCost)
	w.varint(s.BytesServed)
	w.varint(s.Admissions)
	w.varint(s.Rejections)
	w.varint(s.Evictions)
	w.varint(s.Invalidations)
	w.varint(s.ExternalMisses)
	w.varint(s.RetainedDropped)
	w.varint(s.FragSamples)
	w.float(s.FragSum)
}

func writeAdmission(w *sectionWriter, st *admission.TunerState) {
	w.float(st.Theta)
	w.uvarint(uint64(len(st.Arms)))
	for _, a := range st.Arms {
		w.float(a.Theta)
		w.float(a.Score)
		w.bool(a.Seeded)
	}
	w.uvarint(uint64(len(st.Samples)))
	for i := range st.Samples {
		s := &st.Samples[i]
		w.str(s.ID)
		w.uvarint(s.Sig)
		w.varint(s.Size)
		w.float(s.Cost)
		w.float(s.Time)
		w.uvarint(uint64(len(s.Relations)))
		for _, r := range s.Relations {
			w.str(r)
		}
	}
}

// Write encodes the snapshot to w in the WMSNAP format. It is a
// materialized-state convenience over StreamWriter — the two paths share
// every encoding step, so their output is byte-identical.
func Write(w io.Writer, snap *Snapshot) error {
	sw, err := NewStreamWriter(w, len(snap.Shards), snap.Clock)
	if err != nil {
		return err
	}
	defer sw.Close() // releases the pooled encoder on error paths
	for _, sh := range snap.Shards {
		if err := sw.BeginShard(sh); err != nil {
			return err
		}
		if err := sw.WriteEntries(sh.Entries); err != nil {
			return err
		}
		if err := sw.EndShard(); err != nil {
			return err
		}
	}
	if snap.Admission != nil {
		if err := sw.WriteAdmission(snap.Admission); err != nil {
			return err
		}
	}
	return sw.Close()
}

// sectionReader decodes one section's payload, sharing the stream-wide
// string dictionary.
type sectionReader struct {
	buf  *bytes.Reader
	dict *[]string
}

func (r *sectionReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.buf)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (r *sectionReader) varint() (int64, error) {
	v, err := binary.ReadVarint(r.buf)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (r *sectionReader) float() (float64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r.buf, tmp[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(tmp[:])), nil
}

func (r *sectionReader) bool() (bool, error) {
	b, err := r.buf.ReadByte()
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: bad bool byte 0x%02x", ErrCorrupt, b)
	}
}

func (r *sectionReader) str() (string, error) {
	idx, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if idx > 0 {
		i := idx - 1
		if i >= uint64(len(*r.dict)) {
			return "", fmt.Errorf("%w: string index %d out of range", ErrCorrupt, i)
		}
		return (*r.dict)[i], nil
	}
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.buf.Len()) {
		return "", fmt.Errorf("%w: string length %d exceeds section", ErrCorrupt, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.buf, b); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s := string(b)
	*r.dict = append(*r.dict, s)
	return s, nil
}

func (r *sectionReader) blob() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(r.buf.Len()) {
		return nil, fmt.Errorf("%w: blob length %d exceeds section", ErrCorrupt, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.buf, b); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return b, nil
}

func readStats(r *sectionReader) (core.Stats, error) {
	var s core.Stats
	var err error
	read := func(dst *int64) {
		if err == nil {
			*dst, err = r.varint()
		}
	}
	readF := func(dst *float64) {
		if err == nil {
			*dst, err = r.float()
		}
	}
	read(&s.References)
	read(&s.Hits)
	read(&s.DerivedHits)
	readF(&s.CostTotal)
	readF(&s.CostSaved)
	readF(&s.DeriveCost)
	read(&s.BytesServed)
	read(&s.Admissions)
	read(&s.Rejections)
	read(&s.Evictions)
	read(&s.Invalidations)
	read(&s.ExternalMisses)
	read(&s.RetainedDropped)
	read(&s.FragSamples)
	readF(&s.FragSum)
	return s, err
}

func readEntry(r *sectionReader) (core.EntryState, error) {
	var es core.EntryState
	var err error
	if es.ID, err = r.str(); err != nil {
		return es, err
	}
	if es.Resident, err = r.bool(); err != nil {
		return es, err
	}
	if es.Size, err = r.varint(); err != nil {
		return es, err
	}
	if es.Cost, err = r.float(); err != nil {
		return es, err
	}
	cls, err := r.varint()
	if err != nil {
		return es, err
	}
	es.Class = int(cls)
	nrel, err := r.uvarint()
	if err != nil {
		return es, err
	}
	if nrel > 1<<16 {
		return es, fmt.Errorf("%w: unreasonable relation count %d", ErrCorrupt, nrel)
	}
	for j := uint64(0); j < nrel; j++ {
		rel, err := r.str()
		if err != nil {
			return es, err
		}
		es.Relations = append(es.Relations, rel)
	}
	nref, err := r.uvarint()
	if err != nil {
		return es, err
	}
	if nref > 1<<16 {
		return es, fmt.Errorf("%w: unreasonable reference-window size %d", ErrCorrupt, nref)
	}
	for j := uint64(0); j < nref; j++ {
		t, err := r.float()
		if err != nil {
			return es, err
		}
		es.RefTimes = append(es.RefTimes, t)
	}
	if es.TotalRefs, err = r.varint(); err != nil {
		return es, err
	}
	tag, err := r.buf.ReadByte()
	if err != nil {
		return es, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	data, err := r.blob()
	if err != nil {
		return es, err
	}
	if es.Payload, err = decodePayload(tag, data); err != nil {
		return es, err
	}
	hasPlan, err := r.bool()
	if err != nil {
		return es, err
	}
	if hasPlan {
		b, err := r.blob()
		if err != nil {
			return es, err
		}
		p := &engine.Descriptor{}
		if err := json.Unmarshal(b, p); err != nil {
			return es, fmt.Errorf("%w: plan of entry %q: %v", ErrCorrupt, es.ID, err)
		}
		if err := p.Validate(); err != nil {
			return es, fmt.Errorf("%w: plan of entry %q: %v", ErrCorrupt, es.ID, err)
		}
		es.Plan = p
	}
	return es, nil
}

func readCacheState(r *sectionReader) (int, *core.CacheState, error) {
	idx, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	st := &core.CacheState{}
	if st.Capacity, err = r.varint(); err != nil {
		return 0, nil, err
	}
	k, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	st.K = int(k)
	pk, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	st.Policy = core.PolicyKind(pk)
	if st.Clock, err = r.float(); err != nil {
		return 0, nil, err
	}
	if st.FirstTime, err = r.float(); err != nil {
		return 0, nil, err
	}
	if st.HaveFirst, err = r.bool(); err != nil {
		return 0, nil, err
	}
	if st.MinDt, err = r.float(); err != nil {
		return 0, nil, err
	}
	msp, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	st.MissesSincePrune = int(msp)
	if st.Stats, err = readStats(r); err != nil {
		return 0, nil, err
	}
	count, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if count > 1<<28 {
		return 0, nil, fmt.Errorf("%w: unreasonable entry count %d", ErrCorrupt, count)
	}
	st.Entries = make([]core.EntryState, 0, count)
	for j := uint64(0); j < count; j++ {
		es, err := readEntry(r)
		if err != nil {
			return 0, nil, err
		}
		st.Entries = append(st.Entries, es)
	}
	return int(idx), st, nil
}

func readAdmission(r *sectionReader) (*admission.TunerState, error) {
	st := &admission.TunerState{}
	var err error
	if st.Theta, err = r.float(); err != nil {
		return nil, err
	}
	narm, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if narm > 1<<12 {
		return nil, fmt.Errorf("%w: unreasonable candidate count %d", ErrCorrupt, narm)
	}
	for j := uint64(0); j < narm; j++ {
		var a admission.ArmState
		if a.Theta, err = r.float(); err != nil {
			return nil, err
		}
		if a.Score, err = r.float(); err != nil {
			return nil, err
		}
		if a.Seeded, err = r.bool(); err != nil {
			return nil, err
		}
		st.Arms = append(st.Arms, a)
	}
	nsamp, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nsamp > 1<<24 {
		return nil, fmt.Errorf("%w: unreasonable sample count %d", ErrCorrupt, nsamp)
	}
	for j := uint64(0); j < nsamp; j++ {
		var s admission.Sample
		if s.ID, err = r.str(); err != nil {
			return nil, err
		}
		if s.Sig, err = r.uvarint(); err != nil {
			return nil, err
		}
		if s.Size, err = r.varint(); err != nil {
			return nil, err
		}
		if s.Cost, err = r.float(); err != nil {
			return nil, err
		}
		if s.Time, err = r.float(); err != nil {
			return nil, err
		}
		nrel, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nrel > 1<<16 {
			return nil, fmt.Errorf("%w: unreasonable relation count %d", ErrCorrupt, nrel)
		}
		for k := uint64(0); k < nrel; k++ {
			rel, err := r.str()
			if err != nil {
				return nil, err
			}
			s.Relations = append(s.Relations, rel)
		}
		st.Samples = append(st.Samples, s)
	}
	return st, nil
}

// Read decodes a snapshot from r, verifying the magic, version and every
// section CRC. It fails with ErrBadMagic / ErrBadVersion / ErrCorrupt
// rather than ever returning partially decoded state.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("%w: %q", ErrBadVersion, string(head[len(magic)]))
	}

	snap := &Snapshot{}
	dict := make([]string, 0, 64)
	declaredShards := -1
	sawMeta, sawEnd := false, false
	for !sawEnd {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: missing end section: %v", ErrCorrupt, err)
		}
		plen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: section length: %v", ErrCorrupt, err)
		}
		if plen > 1<<32 {
			return nil, fmt.Errorf("%w: unreasonable section length %d", ErrCorrupt, plen)
		}
		// Stream the payload rather than pre-allocating plen bytes: a
		// corrupted length field must fail at the truncation point, not
		// commit a huge allocation first.
		var pb bytes.Buffer
		if _, err := io.CopyN(&pb, br, int64(plen)); err != nil {
			return nil, fmt.Errorf("%w: section payload: %v", ErrCorrupt, err)
		}
		payload := pb.Bytes()
		var crcb [4]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			return nil, fmt.Errorf("%w: section checksum: %v", ErrCorrupt, err)
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcb[:]); got != want {
			return nil, fmt.Errorf("%w: section 0x%02x checksum mismatch (%08x != %08x)", ErrCorrupt, kind, got, want)
		}
		sr := &sectionReader{buf: bytes.NewReader(payload), dict: &dict}
		switch kind {
		case sectionEnd:
			sawEnd = true
		case sectionMeta:
			if sawMeta {
				return nil, fmt.Errorf("%w: duplicate meta section", ErrCorrupt)
			}
			sawMeta = true
			n, err := sr.uvarint()
			if err != nil {
				return nil, err
			}
			if n > 1<<16 {
				return nil, fmt.Errorf("%w: unreasonable shard count %d", ErrCorrupt, n)
			}
			declaredShards = int(n)
			if snap.Clock, err = sr.float(); err != nil {
				return nil, err
			}
		case sectionCache:
			idx, st, err := readCacheState(sr)
			if err != nil {
				return nil, err
			}
			if idx != len(snap.Shards) {
				return nil, fmt.Errorf("%w: shard section %d out of order (want %d)", ErrCorrupt, idx, len(snap.Shards))
			}
			snap.Shards = append(snap.Shards, st)
		case sectionAdmission:
			if snap.Admission != nil {
				return nil, fmt.Errorf("%w: duplicate admission section", ErrCorrupt)
			}
			if snap.Admission, err = readAdmission(sr); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unknown section kind 0x%02x", ErrCorrupt, kind)
		}
		if sr.buf.Len() != 0 && kind != sectionEnd {
			return nil, fmt.Errorf("%w: section 0x%02x has %d trailing bytes", ErrCorrupt, kind, sr.buf.Len())
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("%w: missing meta section", ErrCorrupt)
	}
	if declaredShards != len(snap.Shards) {
		return nil, fmt.Errorf("%w: meta declares %d shards, stream carries %d", ErrCorrupt, declaredShards, len(snap.Shards))
	}
	return snap, nil
}

// SnapshotCache captures a single-threaded cache as a one-shard Snapshot,
// optionally with a tuner's admission state. It pairs with RestoreCache
// for the simulator's restart experiments and library users of
// core.Cache; the sharded serving stack uses shard.Sharded's own
// Snapshot/Restore.
func SnapshotCache(c *core.Cache, tuner *admission.Tuner) *Snapshot {
	snap := &Snapshot{Clock: c.Clock(), Shards: []*core.CacheState{c.ExportState()}}
	if tuner != nil {
		snap.Admission = tuner.ExportState()
	}
	return snap
}

// RestoreCache pours a one-shard snapshot into a freshly constructed
// cache (and, when both are present, the tuner state into a fresh tuner).
func RestoreCache(c *core.Cache, tuner *admission.Tuner, snap *Snapshot) (core.RestoreReport, error) {
	if len(snap.Shards) != 1 {
		return core.RestoreReport{}, fmt.Errorf("persist: snapshot holds %d shards; a single cache restores exactly one (use shard.Sharded.Restore)", len(snap.Shards))
	}
	rep, err := c.RestoreState(snap.Shards[0])
	if err != nil {
		return rep, err
	}
	if tuner != nil && snap.Admission != nil {
		if err := tuner.RestoreState(snap.Admission); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
