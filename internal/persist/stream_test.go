package persist

import (
	"bytes"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
)

// streamChunked drives the StreamWriter the way the sharded cache does —
// entries in bounded chunks — over a materialized snapshot.
func streamChunked(t *testing.T, snap *Snapshot, chunk int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, len(snap.Shards), snap.Clock)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range snap.Shards {
		if err := sw.BeginShard(sh); err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(sh.Entries); off += chunk {
			end := min(off+chunk, len(sh.Entries))
			if err := sw.WriteEntries(sh.Entries[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.EndShard(); err != nil {
			t.Fatal(err)
		}
	}
	if snap.Admission != nil {
		if err := sw.WriteAdmission(snap.Admission); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamWriterByteCompatible: the chunked streaming path must emit
// exactly the bytes of the monolithic Write, whatever the chunk size —
// including a chunk smaller than one shard (many WriteEntries calls per
// section) and one larger (a single call).
func TestStreamWriterByteCompatible(t *testing.T) {
	snap := &Snapshot{
		Shards: []*core.CacheState{
			populatedState(t, 1, 400),
			populatedState(t, 2, 50),
			populatedState(t, 3, 0),
		},
		Admission: &admission.TunerState{
			Theta: 0.4,
			Arms:  []admission.ArmState{{Theta: 0.2, Score: 1.5, Seeded: true}},
			Samples: []admission.Sample{
				{ID: "q1", Sig: 11, Size: 128, Cost: 40, Time: 7, Relations: []string{"lineitem"}},
			},
		},
	}
	for i := range snap.Shards {
		if c := snap.Shards[i].Clock; c > snap.Clock {
			snap.Clock = c
		}
	}
	var want bytes.Buffer
	if err := Write(&want, snap); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64, 1 << 20} {
		got := streamChunked(t, snap, chunk)
		if !bytes.Equal(want.Bytes(), got) {
			t.Fatalf("chunk %d: streamed bytes differ from Write (%d vs %d bytes)", chunk, len(got), want.Len())
		}
	}
	// And the streamed bytes must decode to the same snapshot.
	dec, err := Read(bytes.NewReader(streamChunked(t, snap, 64)))
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, snap, dec)
}

// TestStreamWriterSequence pins the misuse errors: shard sections out of
// sequence, over the declared count, or a stream closed early must fail
// loudly rather than emit a file the reader would reject later.
func TestStreamWriterSequence(t *testing.T) {
	st := populatedState(t, 4, 10)

	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEntries(st.Entries); err == nil {
		t.Error("WriteEntries before BeginShard should fail")
	}
	if err := sw.Close(); err == nil {
		t.Error("Close after a sequence error should report it")
	}

	sw, err = NewStreamWriter(&buf, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.BeginShard(st); err != nil {
		t.Fatal(err)
	}
	if err := sw.EndShard(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err == nil {
		t.Error("Close after 1 of 2 declared shards should fail")
	}

	sw, err = NewStreamWriter(&buf, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.BeginShard(st); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err == nil {
		t.Error("Close with an open shard should fail")
	}
}

// TestStreamWriterBadPayload: an unserializable payload must fail the
// stream exactly as it fails Write, and the error must stick.
func TestStreamWriterBadPayload(t *testing.T) {
	st := populatedState(t, 5, 10)
	bad := *st
	bad.Entries = append([]core.EntryState(nil), st.Entries...)
	bad.Entries[0].Payload = make(chan int)

	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.BeginShard(&bad); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEntries(bad.Entries); err == nil {
		t.Fatal("unserializable payload must fail WriteEntries")
	}
	if err := sw.EndShard(); err == nil {
		t.Error("the stream error must stick on EndShard")
	}
	if err := sw.Close(); err == nil {
		t.Error("the stream error must stick on Close")
	}
}
