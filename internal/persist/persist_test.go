package persist

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/engine"
)

// populatedState builds a CacheState by replaying random traffic through
// a real cache, so the exported shape is always one the cache can
// produce.
func populatedState(t *testing.T, seed int64, n int) *core.CacheState {
	t.Helper()
	c, err := core.New(core.Config{Capacity: 32 << 10, K: 3, Policy: core.LNCRA, MetadataOverhead: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	now := 0.0
	for i := 0; i < n; i++ {
		now += rng.Float64()
		c.Reference(core.Request{
			QueryID:   fmt.Sprintf("select * from t%d", rng.Intn(n/4+1)),
			Time:      now,
			Class:     rng.Intn(3),
			Size:      rng.Int63n(500) + 1,
			Cost:      float64(rng.Intn(2000)) + 1,
			Relations: []string{fmt.Sprintf("rel%d", rng.Intn(5))},
		})
	}
	return c.ExportState()
}

// snapshotsEqual compares decoded snapshots structurally.
func snapshotsEqual(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if want.Clock != got.Clock {
		t.Fatalf("clock %g != %g", got.Clock, want.Clock)
	}
	if len(want.Shards) != len(got.Shards) {
		t.Fatalf("shard count %d != %d", len(got.Shards), len(want.Shards))
	}
	for i := range want.Shards {
		if !reflect.DeepEqual(want.Shards[i], got.Shards[i]) {
			t.Fatalf("shard %d state differs:\n  want %+v\n  got  %+v", i, want.Shards[i], got.Shards[i])
		}
	}
	if !reflect.DeepEqual(want.Admission, got.Admission) {
		t.Fatalf("admission state differs:\n  want %+v\n  got  %+v", want.Admission, got.Admission)
	}
}

func TestRoundTripPopulated(t *testing.T) {
	snap := &Snapshot{
		Clock:  123.5,
		Shards: []*core.CacheState{populatedState(t, 1, 2000), populatedState(t, 2, 1500)},
		Admission: &admission.TunerState{
			Theta: 0.25,
			Arms: []admission.ArmState{
				{Theta: 0.25, Score: 0.41, Seeded: true},
				{Theta: 1, Score: 0.38, Seeded: true},
				{Theta: 4, Seeded: false},
			},
			Samples: []admission.Sample{
				{ID: "q1", Sig: core.Signature("q1"), Size: 10, Cost: 5, Time: 100, Relations: []string{"r"}},
				{ID: "q2", Sig: core.Signature("q2"), Size: 20, Cost: 9, Time: 101},
			},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, snap, got)
}

func TestRoundTripEmpty(t *testing.T) {
	snap := &Snapshot{Shards: []*core.CacheState{}}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != 0 || got.Admission != nil {
		t.Fatalf("empty snapshot decoded as %+v", got)
	}
}

// TestRoundTripDeterministic: same state in, same bytes out — the
// property that makes snapshot diffs and the bit-identical acceptance
// check meaningful.
func TestRoundTripDeterministic(t *testing.T) {
	st := populatedState(t, 5, 1000)
	var a, b bytes.Buffer
	if err := Write(&a, &Snapshot{Shards: []*core.CacheState{st}}); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, &Snapshot{Shards: []*core.CacheState{st}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same state differ")
	}
}

// TestPayloadKinds pins every payload encoding the codec supports, and
// the loud failure for unserializable ones.
func TestPayloadKinds(t *testing.T) {
	res := &engine.Result{
		Schema: engine.Schema{{Name: "a", Width: 4}},
		Rows:   [][]int64{{1}, {2}},
	}
	entries := []core.EntryState{
		{ID: "bytes", Size: 4, Resident: true, RefTimes: []float64{1}, TotalRefs: 1, Payload: []byte{1, 2, 3}},
		{ID: "json", Size: 4, Resident: true, RefTimes: []float64{2}, TotalRefs: 1,
			Payload: map[string]any{"rows": []any{float64(1), "x"}}},
		{ID: "none", Size: 4, Resident: true, RefTimes: []float64{4}, TotalRefs: 1},
		{ID: "result", Size: 4, Resident: true, RefTimes: []float64{5}, TotalRefs: 1, Payload: res,
			Plan: &engine.Descriptor{Rel: "t", Cols: []string{"a"}}},
		{ID: "str", Size: 4, Resident: true, RefTimes: []float64{3}, TotalRefs: 1, Payload: "hello"},
	}
	snap := &Snapshot{Shards: []*core.CacheState{{Clock: 9, Entries: entries}}}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec := got.Shards[0].Entries
	if !bytes.Equal(dec[0].Payload.([]byte), []byte{1, 2, 3}) {
		t.Fatalf("bytes payload = %v", dec[0].Payload)
	}
	if !reflect.DeepEqual(dec[1].Payload, entries[1].Payload) {
		t.Fatalf("json payload = %#v", dec[1].Payload)
	}
	if dec[2].Payload != nil {
		t.Fatalf("nil payload = %#v", dec[2].Payload)
	}
	if !reflect.DeepEqual(dec[3].Payload, res) {
		t.Fatalf("result payload = %#v", dec[3].Payload)
	}
	if !reflect.DeepEqual(dec[3].Plan, entries[3].Plan) {
		t.Fatalf("plan = %#v", dec[3].Plan)
	}
	if dec[4].Payload != "hello" {
		t.Fatalf("string payload = %#v", dec[4].Payload)
	}

	// Unserializable payloads and plans fail loudly at write time.
	bad := &Snapshot{Shards: []*core.CacheState{{Entries: []core.EntryState{
		{ID: "chan", Size: 1, Resident: true, Payload: make(chan int)},
	}}}}
	if err := Write(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("unserializable payload must fail the write")
	}
	badPlan := &Snapshot{Shards: []*core.CacheState{{Entries: []core.EntryState{
		{ID: "p", Size: 1, Resident: true, Plan: 42},
	}}}}
	if err := Write(&bytes.Buffer{}, badPlan); err == nil {
		t.Fatal("unknown plan type must fail the write")
	}
}

// TestSnapshotRestoreCacheHelpers covers the single-cache convenience
// pair the simulator uses.
func TestSnapshotRestoreCacheHelpers(t *testing.T) {
	cfg := core.Config{Capacity: 16 << 10, K: 2, Policy: core.LNCRA}
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		c.Reference(core.Request{QueryID: fmt.Sprintf("q%d", i%40), Time: float64(i), Size: 100, Cost: 10})
	}
	tuner, err := admission.New(admission.Config{Capacity: 16 << 10, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	snap := SnapshotCache(c, tuner)
	if len(snap.Shards) != 1 || snap.Admission == nil {
		t.Fatalf("snapshot shape: %d shards, admission %v", len(snap.Shards), snap.Admission)
	}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	dec, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	freshTuner, err := admission.New(admission.Config{Capacity: 16 << 10, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCache(fresh, freshTuner, dec); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats() != c.Stats() || fresh.Resident() != c.Resident() {
		t.Fatal("restored cache differs")
	}

	multi := &Snapshot{Shards: []*core.CacheState{{}, {}}}
	if _, err := RestoreCache(fresh, nil, multi); err == nil {
		t.Fatal("multi-shard snapshot must not restore into a single cache")
	}
}
