package persist

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// benchState builds one well-populated cache state for the codec
// benchmarks: ~2k resident sets with byte payloads plus retained records.
func benchState(b testing.TB) *core.CacheState {
	b.Helper()
	c, err := core.New(core.Config{Capacity: 4 << 20, K: 4, Policy: core.LNCRA, MetadataOverhead: 64})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 512)
	rng.Read(payload)
	now := 0.0
	for i := 0; i < 20000; i++ {
		now += rng.Float64()
		c.Reference(core.Request{
			QueryID:   fmt.Sprintf("select * from t where k = %d", rng.Intn(4000)),
			Time:      now,
			Size:      rng.Int63n(2048) + 1,
			Cost:      float64(rng.Intn(5000)) + 1,
			Relations: []string{fmt.Sprintf("rel%d", rng.Intn(8))},
			Payload:   payload,
		})
	}
	return c.ExportState()
}

// BenchmarkSnapshotWrite measures encode throughput of a populated
// snapshot (reported via bytes/op of the encoded size in the log).
func BenchmarkSnapshotWrite(b *testing.B) {
	snap := &Snapshot{Shards: []*core.CacheState{benchState(b)}}
	var size int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := &countingWriter{}
		if err := Write(cw, snap); err != nil {
			b.Fatal(err)
		}
		size = cw.n
	}
	b.SetBytes(size)
}

// BenchmarkSnapshotStreamWrite measures the streaming writer the way the
// sharded cache drives it — entries arriving in bounded chunks — so the
// artifact tracks the throughput of the low-pause snapshot path itself.
func BenchmarkSnapshotStreamWrite(b *testing.B) {
	st := benchState(b)
	const chunk = 512
	var size int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := &countingWriter{}
		sw, err := NewStreamWriter(cw, 1, st.Clock)
		if err != nil {
			b.Fatal(err)
		}
		if err := sw.BeginShard(st); err != nil {
			b.Fatal(err)
		}
		for off := 0; off < len(st.Entries); off += chunk {
			end := min(off+chunk, len(st.Entries))
			if err := sw.WriteEntries(st.Entries[off:end]); err != nil {
				b.Fatal(err)
			}
		}
		if err := sw.EndShard(); err != nil {
			b.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			b.Fatal(err)
		}
		size = cw.n
	}
	b.SetBytes(size)
}

// TestWriteSteadyStateAllocs pins the encoder pooling: once the pool is
// warm, Write must reuse its section buffers, interning dictionary and
// payload scratch rather than allocating per entry. The bound is far
// under one alloc per entry (the state carries thousands), with slack
// for cold-start pool misses when a GC empties the pool mid-run.
func TestWriteSteadyStateAllocs(t *testing.T) {
	snap := &Snapshot{Shards: []*core.CacheState{benchState(t)}}
	Write(io.Discard, snap) // warm the encoder pool
	allocs := testing.AllocsPerRun(50, func() {
		if err := Write(io.Discard, snap); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 100 {
		t.Errorf("Write allocates %.1f objects/op steady-state over %d entries; pooling should make this O(1)",
			allocs, len(snap.Shards[0].Entries))
	}
}

// BenchmarkSnapshotRead measures decode throughput.
func BenchmarkSnapshotRead(b *testing.B) {
	snap := &Snapshot{Shards: []*core.CacheState{benchState(b)}}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures the full restore path: decode plus
// pouring the state into a fresh cache.
func BenchmarkSnapshotRestore(b *testing.B) {
	snap := &Snapshot{Shards: []*core.CacheState{benchState(b)}}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := Read(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		c, err := core.New(core.Config{Capacity: 4 << 20, K: 4, Policy: core.LNCRA, MetadataOverhead: 64})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RestoreCache(c, nil, dec); err != nil {
			b.Fatal(err)
		}
	}
}

// countingWriter discards while counting, so encode benchmarks do not
// measure buffer growth.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

var _ io.Writer = (*countingWriter)(nil)
