package persist

// Streaming WMSNAP encoding. StreamWriter emits the same byte stream
// Write always produced — magic, version, meta section, shard sections
// in order, optional admission section, end marker — but accepts each
// shard's entries incrementally, so a concurrent cache can feed it
// bounded export chunks between lock acquisitions instead of
// materializing every shard first. Write itself is now a thin loop over
// StreamWriter, so the two paths cannot drift.
//
// Byte compatibility hinges on two properties of the v1 format. First,
// a shard section's header (config echo, clock context, Stats) contains
// no strings, so buffering it separately from the entry bytes does not
// disturb the stream-wide interning dictionary. Second, the section
// payload is length-prefixed with the CRC at the end, so the section
// can be framed once the shard's last chunk has arrived: the header,
// the entry count and the entry bytes are flushed as one section with a
// CRC computed incrementally over the parts. Peak encoder memory is
// one shard's encoded bytes plus one chunk — not the whole snapshot.
//
// Encoders (section buffers, interning dictionary, payload scratch and
// the output bufio.Writer) are pooled: steady-state snapshotting on an
// interval reuses one warm encoder instead of reallocating the
// dictionary and buffers every time.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/engine"
)

// encoder bundles every reusable piece of encoding state. head holds a
// shard section's string-free header bytes, body its entry bytes, misc
// the small single-flush sections (meta, admission, end); all three
// share the stream-wide interning dictionary.
type encoder struct {
	bw      *bufio.Writer
	dict    map[string]uint64
	head    sectionWriter
	body    sectionWriter
	misc    sectionWriter
	jsonBuf bytes.Buffer
	jsonEnc *json.Encoder
}

var encoderPool = sync.Pool{New: func() any {
	e := &encoder{
		bw:   bufio.NewWriterSize(io.Discard, 1<<16),
		dict: make(map[string]uint64),
	}
	e.head.dict = e.dict
	e.body.dict = e.dict
	e.misc.dict = e.dict
	e.jsonEnc = json.NewEncoder(&e.jsonBuf)
	return e
}}

// Pooling caps: an encoder that ballooned on one huge snapshot is
// dropped rather than pinned in the pool forever.
const (
	maxPooledBufBytes = 16 << 20
	maxPooledDictLen  = 1 << 20
)

func getEncoder(w io.Writer) *encoder {
	e := encoderPool.Get().(*encoder)
	e.bw.Reset(w)
	return e
}

func putEncoder(e *encoder) {
	e.bw.Reset(io.Discard)
	if e.head.buf.Cap() > maxPooledBufBytes || e.body.buf.Cap() > maxPooledBufBytes ||
		e.misc.buf.Cap() > maxPooledBufBytes || e.jsonBuf.Cap() > maxPooledBufBytes ||
		len(e.dict) > maxPooledDictLen {
		return
	}
	e.head.buf.Reset()
	e.body.buf.Reset()
	e.misc.buf.Reset()
	e.jsonBuf.Reset()
	clear(e.dict)
	encoderPool.Put(e)
}

// marshal JSON-encodes v into the pooled scratch buffer and returns its
// bytes, valid until the next marshal call. The output matches
// json.Marshal byte for byte (json.Encoder appends one newline, trimmed
// here; both escape HTML).
func (e *encoder) marshal(v any) ([]byte, error) {
	e.jsonBuf.Reset()
	if err := e.jsonEnc.Encode(v); err != nil {
		return nil, err
	}
	b := e.jsonBuf.Bytes()
	return b[:len(b)-1], nil
}

// writePayload encodes one entry payload, tag byte then blob, into w.
// The cache stores payloads as opaque `any` values; the concrete types
// the serving stack produces are persisted and anything unserializable
// fails the write loudly rather than silently resurrecting an entry
// without its data.
func (e *encoder) writePayload(w *sectionWriter, id string, p any) error {
	switch v := p.(type) {
	case nil:
		w.buf.WriteByte(payloadNil)
		w.blob(nil)
	case []byte:
		w.buf.WriteByte(payloadBytes)
		w.blob(v)
	case string:
		w.buf.WriteByte(payloadString)
		w.uvarint(uint64(len(v)))
		w.buf.WriteString(v)
	case *engine.Result:
		data, err := e.marshal(v)
		if err != nil {
			return fmt.Errorf("persist: entry %q: encoding engine result: %w", id, err)
		}
		w.buf.WriteByte(payloadResult)
		w.blob(data)
	default:
		data, err := e.marshal(v)
		if err != nil {
			return fmt.Errorf("persist: entry %q has a payload of unserializable type %T: %w", id, p, err)
		}
		w.buf.WriteByte(payloadJSON)
		w.blob(data)
	}
	return nil
}

// writeEntry serializes one entry into w.
func (e *encoder) writeEntry(w *sectionWriter, es *core.EntryState) error {
	w.str(es.ID)
	w.bool(es.Resident)
	w.varint(es.Size)
	w.float(es.Cost)
	w.varint(int64(es.Class))
	w.uvarint(uint64(len(es.Relations)))
	for _, r := range es.Relations {
		w.str(r)
	}
	w.uvarint(uint64(len(es.RefTimes)))
	for _, t := range es.RefTimes {
		w.float(t)
	}
	w.varint(es.TotalRefs)
	if err := e.writePayload(w, es.ID, es.Payload); err != nil {
		return err
	}
	switch p := es.Plan.(type) {
	case nil:
		w.bool(false)
	case *engine.Descriptor:
		b, err := e.marshal(p)
		if err != nil {
			return fmt.Errorf("persist: entry %q: encoding plan: %w", es.ID, err)
		}
		w.bool(true)
		w.blob(b)
	default:
		return fmt.Errorf("persist: entry %q has a plan of unserializable type %T", es.ID, es.Plan)
	}
	return nil
}

// writeFrame emits one section — kind, payload length, payload parts,
// CRC over the concatenated parts — without requiring the parts to live
// in one buffer.
func writeFrame(bw *bufio.Writer, kind byte, parts ...[]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	if _, err := bw.Write(tmp[:binary.PutUvarint(tmp[:], uint64(total))]); err != nil {
		return err
	}
	crc := uint32(0)
	for _, p := range parts {
		if _, err := bw.Write(p); err != nil {
			return err
		}
		crc = crc32.Update(crc, crc32.IEEETable, p)
	}
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], crc)
	_, err := bw.Write(cb[:])
	return err
}

// StreamWriter encodes one WMSNAP stream incrementally. The call
// sequence is NewStreamWriter, then per shard (in shard order)
// BeginShard / WriteEntries... / EndShard, then optionally
// WriteAdmission, then Close. Errors are sticky: after any failure
// every later call (including Close) reports the first error. A
// StreamWriter is not safe for concurrent use.
type StreamWriter struct {
	enc     *encoder
	shards  int
	next    int
	inShard bool
	entries uint64
	closed  bool
	err     error
}

// NewStreamWriter starts a WMSNAP stream on w declaring shardCount
// shard sections and the snapshot clock (the largest logical time
// across shards at capture). The caller must Close the writer — also on
// error paths — to release its pooled encoder.
func NewStreamWriter(w io.Writer, shardCount int, clock float64) (*StreamWriter, error) {
	if shardCount < 0 {
		return nil, fmt.Errorf("persist: negative shard count %d", shardCount)
	}
	sw := &StreamWriter{enc: getEncoder(w), shards: shardCount}
	e := sw.enc
	fail := func(err error) (*StreamWriter, error) {
		sw.err, sw.closed, sw.enc = err, true, nil
		putEncoder(e)
		return nil, err
	}
	if _, err := e.bw.WriteString(magic); err != nil {
		return fail(err)
	}
	if err := e.bw.WriteByte(version); err != nil {
		return fail(err)
	}
	e.misc.buf.Reset()
	e.misc.uvarint(uint64(shardCount))
	e.misc.float(clock)
	if err := writeFrame(e.bw, sectionMeta, e.misc.buf.Bytes()); err != nil {
		return fail(err)
	}
	return sw, nil
}

// fail latches the first error and returns it.
func (sw *StreamWriter) fail(err error) error {
	if sw.err == nil {
		sw.err = err
	}
	return sw.err
}

// BeginShard opens the next shard section with its cache-level header
// (every CacheState field except Entries, which arrive via
// WriteEntries). Shards must be begun in index order, matching the
// declared count.
func (sw *StreamWriter) BeginShard(header *core.CacheState) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed || sw.inShard {
		return sw.fail(fmt.Errorf("persist: BeginShard out of sequence (closed %v, open shard %v)", sw.closed, sw.inShard))
	}
	if sw.next >= sw.shards {
		return sw.fail(fmt.Errorf("persist: shard %d exceeds the declared count %d", sw.next, sw.shards))
	}
	e := sw.enc
	e.head.buf.Reset()
	e.head.uvarint(uint64(sw.next))
	e.head.varint(header.Capacity)
	e.head.uvarint(uint64(header.K))
	e.head.uvarint(uint64(header.Policy))
	e.head.float(header.Clock)
	e.head.float(header.FirstTime)
	e.head.bool(header.HaveFirst)
	e.head.float(header.MinDt)
	e.head.uvarint(uint64(header.MissesSincePrune))
	writeStats(&e.head, header.Stats)
	e.body.buf.Reset()
	sw.entries = 0
	sw.inShard = true
	return nil
}

// WriteEntries appends entries to the open shard section. The entries
// are fully encoded before it returns, so the caller may reuse the
// slice (and its elements' sub-slices) immediately.
func (sw *StreamWriter) WriteEntries(entries []core.EntryState) error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.inShard {
		return sw.fail(fmt.Errorf("persist: WriteEntries without an open shard"))
	}
	e := sw.enc
	for i := range entries {
		if err := e.writeEntry(&e.body, &entries[i]); err != nil {
			return sw.fail(err)
		}
	}
	sw.entries += uint64(len(entries))
	return nil
}

// EndShard frames the open shard section onto the stream: header bytes,
// entry count, entry bytes, one CRC over all of it — byte-identical to
// the section a monolithic Write produces.
func (sw *StreamWriter) EndShard() error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.inShard {
		return sw.fail(fmt.Errorf("persist: EndShard without an open shard"))
	}
	e := sw.enc
	var tmp [binary.MaxVarintLen64]byte
	cnt := tmp[:binary.PutUvarint(tmp[:], sw.entries)]
	if err := writeFrame(e.bw, sectionCache, e.head.buf.Bytes(), cnt, e.body.buf.Bytes()); err != nil {
		return sw.fail(err)
	}
	sw.next++
	sw.inShard = false
	return nil
}

// WriteAdmission appends the adaptive admission section. Call it after
// the last shard, before Close.
func (sw *StreamWriter) WriteAdmission(st *admission.TunerState) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed || sw.inShard {
		return sw.fail(fmt.Errorf("persist: WriteAdmission out of sequence (closed %v, open shard %v)", sw.closed, sw.inShard))
	}
	e := sw.enc
	e.misc.buf.Reset()
	writeAdmission(&e.misc, st)
	if err := writeFrame(e.bw, sectionAdmission, e.misc.buf.Bytes()); err != nil {
		return sw.fail(err)
	}
	return nil
}

// Close writes the end marker, flushes the stream and releases the
// pooled encoder. It is idempotent and must be called on every path —
// after an error it releases resources and reports the sticky error
// without emitting further bytes.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	defer func() {
		putEncoder(sw.enc)
		sw.enc = nil
	}()
	if sw.err != nil {
		return sw.err
	}
	if sw.inShard {
		return sw.fail(fmt.Errorf("persist: stream closed with shard %d still open", sw.next))
	}
	if sw.next != sw.shards {
		return sw.fail(fmt.Errorf("persist: stream closed after %d of %d declared shards", sw.next, sw.shards))
	}
	if err := writeFrame(sw.enc.bw, sectionEnd); err != nil {
		return sw.fail(err)
	}
	return sw.fail0(sw.enc.bw.Flush())
}

// fail0 latches err (which may be nil) and returns the sticky error.
func (sw *StreamWriter) fail0(err error) error {
	if err != nil {
		return sw.fail(err)
	}
	return sw.err
}
