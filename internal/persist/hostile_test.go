package persist

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
)

// encodeSample produces a small valid snapshot for corruption tests.
func encodeSample(t testing.TB) []byte {
	c, err := core.New(core.Config{Capacity: 1 << 20, K: 2, Policy: core.LNCRA})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"alpha", "beta", "gamma"} {
		c.Reference(core.Request{QueryID: id, Time: float64(i + 1), Size: 100, Cost: 10,
			Relations: []string{"rel"}, Payload: []byte("payload-" + id)})
	}
	var buf bytes.Buffer
	if err := Write(&buf, SnapshotCache(c, nil)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadBadMagic(t *testing.T) {
	for _, in := range [][]byte{nil, []byte("x"), []byte("WMTRACE1"), []byte("NOTASNAPSHOT")} {
		if _, err := Read(bytes.NewReader(in)); !errors.Is(err, ErrBadMagic) {
			t.Errorf("input %q: err = %v, want ErrBadMagic", in, err)
		}
	}
}

func TestReadBadVersion(t *testing.T) {
	raw := encodeSample(t)
	raw = append([]byte(nil), raw...)
	raw[len(magic)] = '9'
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

// TestReadTruncated cuts the stream at EVERY byte offset: no prefix of a
// valid snapshot may decode successfully (the explicit end section makes
// even section-boundary cuts detectable), and none may panic.
func TestReadTruncated(t *testing.T) {
	raw := encodeSample(t)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at byte %d of %d decoded successfully", cut, len(raw))
		}
	}
	if _, err := Read(bytes.NewReader(raw)); err != nil {
		t.Fatalf("untruncated stream must decode: %v", err)
	}
}

// TestReadCorruptCRC flips one bit in every section payload byte in turn;
// every flip must be caught (by the CRC, or by a framing error when the
// flip lands in a length) and reported as corruption, never decoded.
func TestReadCorruptCRC(t *testing.T) {
	raw := encodeSample(t)
	for off := len(magic) + 1; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		snap, err := Read(bytes.NewReader(mut))
		if err == nil {
			// A flip inside the end-section trailer could in principle
			// still frame correctly; anything that decodes must at least
			// carry the same content as the original.
			var re bytes.Buffer
			if werr := Write(&re, snap); werr != nil || !bytes.Equal(re.Bytes(), raw) {
				t.Fatalf("flip at byte %d decoded DIFFERENT content without error", off)
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadVersion) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("flip at byte %d: unexpected error type %v", off, err)
		}
	}
}

func TestReadTrailingGarbageSection(t *testing.T) {
	raw := encodeSample(t)
	// An unknown section kind before the end marker must be rejected, not
	// skipped: skipping would let corruption masquerade as forward
	// compatibility within a version.
	idx := bytes.LastIndexByte(raw[:len(raw)-5], sectionEnd)
	_ = idx
	mut := append([]byte(nil), raw...)
	// Rewrite the end-section kind byte (5 bytes from the end: kind +
	// len(0) + crc32) to a bogus kind.
	mut[len(mut)-6] = 0x7f
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown section kind: err = %v, want ErrCorrupt", err)
	}
}

// FuzzRead feeds arbitrary bytes through the decoder: it must never
// panic, and every failure must map to the package's error taxonomy.
func FuzzRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("WMSNAP1"))
	raw := encodeSample(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	mut := append([]byte(nil), raw...)
	mut[len(mut)/3] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err == nil {
			// Whatever decodes must re-encode: the accepted subset of the
			// format is closed under the writer.
			if werr := Write(&bytes.Buffer{}, snap); werr != nil {
				t.Fatalf("decoded snapshot fails to re-encode: %v", werr)
			}
			return
		}
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("error outside the taxonomy: %v", err)
		}
	})
}
