// Package flight is the flight recorder: bounded, lock-cheap ring buffers
// of per-reference lifecycle spans and admission/eviction decision
// records, captured from the core's tracer and event hooks (see
// core.SpanSink and core.EventSink). Each shard of a concurrent cache
// writes into its own rings — writes are already serialized by the shard
// mutex, so the per-ring mutex only ever contends with HTTP readers — and
// record slots are preallocated, keeping the traced hot path
// allocation-free. Spans are sampled one-in-N (always capturing spans
// slower than a threshold, the slow-reference log); decision records are
// captured unconditionally, since admissions, rejections and evictions
// are orders of magnitude rarer than hits. Every span, sampled or not,
// feeds the registry's per-stage latency histograms, so the stage profile
// covers all traffic even at high sampling ratios.
package flight

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Default configuration values.
const (
	// DefaultSampleEvery is the default span sampling ratio: one in N.
	DefaultSampleEvery = 64
	// DefaultSlowThreshold is the default always-capture threshold for
	// slow spans.
	DefaultSlowThreshold = 10 * time.Millisecond
	// DefaultSpanBuffer is the default per-shard span ring capacity.
	DefaultSpanBuffer = 256
	// DefaultDecisionBuffer is the default per-shard decision ring
	// capacity.
	DefaultDecisionBuffer = 512
)

// Config parameterizes a Recorder. The zero value selects every default.
type Config struct {
	// SampleEvery captures one span in N (plus every slow span). 1 records
	// every span; values below 1 select DefaultSampleEvery.
	SampleEvery int
	// SlowThreshold always-captures spans whose total duration meets or
	// exceeds it, regardless of sampling. Zero selects
	// DefaultSlowThreshold; negative disables the slow log.
	SlowThreshold time.Duration
	// SpanBuffer is the per-shard span ring capacity (zero selects
	// DefaultSpanBuffer).
	SpanBuffer int
	// DecisionBuffer is the per-shard decision ring capacity (zero selects
	// DefaultDecisionBuffer).
	DecisionBuffer int
	// Registry, if non-nil, receives per-stage latency observations from
	// every span (sampled or not) via ObserveStage.
	Registry *telemetry.Registry
}

// Decision is the audit record of one admission or eviction ruling: the
// outcome and every input the gate evaluated, so an operator (or the
// explain endpoint) can reproduce the inequality after the fact.
type Decision struct {
	// Seq orders decisions across shards (higher = later).
	Seq uint64 `json:"seq"`
	// Kind is the outcome ("miss_admitted", "miss_rejected", "evict").
	Kind string `json:"kind"`
	// ID is the compressed query ID the decision ruled on.
	ID string `json:"id"`
	// Time is the logical time of the decision.
	Time float64 `json:"time"`
	// Class is the workload class of the triggering request.
	Class int `json:"class"`
	// Size and Cost are the candidate set's size and cost.
	Size int64   `json:"size"`
	Cost float64 `json:"cost"`
	// Decided reports whether an admitter ruled on a profit comparison;
	// false means free-space admission or a rejection without comparison.
	Decided bool `json:"decided"`
	// HasHistory reports whether the comparison used sliding-window
	// estimates (true) or e-profit estimates (false).
	HasHistory bool `json:"has_history"`
	// Profit, Bar and Theta are the comparison's inputs: admit ⇔
	// Profit > Theta·Bar. On evictions Profit is the victim's own profit.
	Profit float64 `json:"profit"`
	Bar    float64 `json:"bar"`
	Theta  float64 `json:"theta"`
	// Lambda is the entry's reference-rate estimate λ at decision time,
	// and RefDepth its reference-window depth.
	Lambda   float64 `json:"lambda"`
	RefDepth int     `json:"ref_depth"`
	// Victims is the size of the victim set evicted (admissions) or
	// spared (rejections).
	Victims int `json:"victims"`
	// Rank is, on evictions, the victim's position in its batch.
	Rank int `json:"rank"`
	// Derived marks decisions about derived sets admitted at residual
	// cost.
	Derived bool `json:"derived"`
}

// shardRecorder holds one shard's rings. It implements both
// core.SpanSink (span capture) and core.EventSink (decision capture);
// writes arrive serialized by the owning shard's mutex, so mu only
// contends with readers.
type shardRecorder struct {
	rec *Recorder

	mu        sync.Mutex
	spans     []core.Span // preallocated ring
	spanNext  int         // next write slot
	spanCount int         // filled slots, ≤ len(spans)
	decs      []Decision
	decNext   int
	decCount  int

	// seen counts spans observed by this shard for sampling; it is only
	// written under the shard's serialization but read cheaply.
	seen atomic.Uint64
}

// ObserveSpan implements core.SpanSink: feed the stage histograms, then
// capture the span if sampling (or the slow log) selects it.
func (s *shardRecorder) ObserveSpan(sp core.Span) {
	if reg := s.rec.registry; reg != nil {
		for st := core.Stage(0); st < core.NumStages; st++ {
			if ns := sp.Stages[st]; ns > 0 {
				reg.ObserveStage(st, float64(ns)/1e9)
			}
		}
	}
	n := s.seen.Add(1)
	slow := s.rec.slowNanos > 0 && sp.Total >= s.rec.slowNanos
	if !slow && n%uint64(s.rec.sampleEvery) != 0 {
		return
	}
	s.mu.Lock()
	s.spans[s.spanNext] = sp
	s.spanNext = (s.spanNext + 1) % len(s.spans)
	if s.spanCount < len(s.spans) {
		s.spanCount++
	}
	s.mu.Unlock()
}

// Emit implements core.EventSink: admission and eviction outcomes become
// decision records; other lifecycle events are ignored.
func (s *shardRecorder) Emit(ev core.Event) {
	switch ev.Kind {
	case core.EventMissAdmitted, core.EventMissRejected, core.EventEvict:
	default:
		return
	}
	d := Decision{
		Seq:        s.rec.seq.Add(1),
		Kind:       ev.Kind.String(),
		ID:         ev.ID,
		Time:       ev.Time,
		Class:      ev.Class,
		Size:       ev.Size,
		Cost:       ev.Cost,
		Decided:    ev.Decided,
		HasHistory: ev.HasHistory,
		Profit:     ev.Profit,
		Bar:        ev.Bar,
		Theta:      ev.Theta,
		Victims:    len(ev.Victims),
		Rank:       ev.Rank,
		Derived:    ev.Derived,
	}
	if ev.Entry != nil {
		d.Lambda = ev.Entry.Rate(ev.Time)
		d.RefDepth = ev.Entry.Refs()
	}
	s.mu.Lock()
	s.decs[s.decNext] = d
	s.decNext = (s.decNext + 1) % len(s.decs)
	if s.decCount < len(s.decs) {
		s.decCount++
	}
	s.mu.Unlock()
}

// Recorder is the process-wide flight recorder: it hands out per-shard
// tracer and sink hooks and merges their rings for readers. All methods
// are safe for concurrent use.
type Recorder struct {
	sampleEvery int
	slowNanos   int64
	spanBuf     int
	decBuf      int
	registry    *telemetry.Registry

	// seq orders decision records across shards.
	seq atomic.Uint64

	// shards is the atomically published shard-recorder table, grown under
	// mu by shard — the same publication pattern as telemetry.Registry.
	shards atomic.Pointer[[]*shardRecorder]
	mu     sync.Mutex
}

// New creates a recorder from cfg, applying defaults for zero fields.
func New(cfg Config) *Recorder {
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SpanBuffer <= 0 {
		cfg.SpanBuffer = DefaultSpanBuffer
	}
	if cfg.DecisionBuffer <= 0 {
		cfg.DecisionBuffer = DefaultDecisionBuffer
	}
	r := &Recorder{
		sampleEvery: cfg.SampleEvery,
		spanBuf:     cfg.SpanBuffer,
		decBuf:      cfg.DecisionBuffer,
		registry:    cfg.Registry,
	}
	if cfg.SlowThreshold > 0 {
		r.slowNanos = int64(cfg.SlowThreshold)
	}
	return r
}

// shard returns (growing on demand) the recorder for a shard index.
func (r *Recorder) shard(i int) *shardRecorder {
	if i < 0 {
		i = 0
	}
	if t := r.shards.Load(); t != nil && i < len(*t) {
		return (*t)[i]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur []*shardRecorder
	if t := r.shards.Load(); t != nil {
		cur = *t
		if i < len(cur) {
			return cur[i]
		}
	}
	grown := make([]*shardRecorder, i+1)
	copy(grown, cur)
	for j := len(cur); j <= i; j++ {
		grown[j] = &shardRecorder{
			rec:   r,
			spans: make([]core.Span, r.spanBuf),
			decs:  make([]Decision, r.decBuf),
		}
	}
	r.shards.Store(&grown)
	return grown[i]
}

// ShardTracer returns the span sink for one shard, to be wired as that
// shard's core.Config.Tracer. Shard indices should be dense from zero.
func (r *Recorder) ShardTracer(shard int) core.SpanSink { return r.shard(shard) }

// ShardSink returns the decision sink for one shard, to be composed into
// that shard's event stream with core.MultiSink.
func (r *Recorder) ShardSink(shard int) core.EventSink { return r.shard(shard) }

// all snapshots the current shard table.
func (r *Recorder) all() []*shardRecorder {
	if t := r.shards.Load(); t != nil {
		return *t
	}
	return nil
}

// collectSpans copies every captured span out of the rings.
func (r *Recorder) collectSpans() []core.Span {
	var out []core.Span
	for _, s := range r.all() {
		s.mu.Lock()
		start := s.spanNext - s.spanCount
		if start < 0 {
			start += len(s.spans)
		}
		for i := 0; i < s.spanCount; i++ {
			out = append(out, s.spans[(start+i)%len(s.spans)])
		}
		s.mu.Unlock()
	}
	return out
}

// Spans returns up to limit captured spans, newest first (by monotonic
// start time). limit ≤ 0 returns all captured spans.
func (r *Recorder) Spans(limit int) []core.Span {
	out := r.collectSpans()
	sort.Slice(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Slowest returns up to limit captured spans ordered by total duration,
// slowest first — the slow-reference log. limit ≤ 0 returns all.
func (r *Recorder) Slowest(limit int) []core.Span {
	out := r.collectSpans()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// LastDecision returns the most recent admission/eviction decision
// recorded for a compressed query ID, if one is still in the rings.
func (r *Recorder) LastDecision(id string) (Decision, bool) {
	var best Decision
	found := false
	for _, s := range r.all() {
		s.mu.Lock()
		for i := 0; i < s.decCount; i++ {
			d := &s.decs[i]
			if d.ID == id && (!found || d.Seq > best.Seq) {
				best, found = *d, true
			}
		}
		s.mu.Unlock()
	}
	return best, found
}

// Decisions returns up to limit decision records, newest first. limit ≤ 0
// returns all.
func (r *Recorder) Decisions(limit int) []Decision {
	var out []Decision
	for _, s := range r.all() {
		s.mu.Lock()
		out = append(out, s.decs[:s.decCount]...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
