package flight

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// DefaultRegretEntries bounds the regret tracker's signature map.
const DefaultRegretEntries = 65536

// Regret is the accumulated record of one rejected-then-re-referenced
// signature: how often admission denied it, how many references arrived
// after the first rejection, and the execution cost those references paid
// that a cached copy would have saved — the cost forgone by rejecting.
type Regret struct {
	// ID is the compressed query ID.
	ID string `json:"id"`
	// Rejections counts admissions denied for the signature.
	Rejections int64 `json:"rejections"`
	// Rerefs counts missed references to the signature after its first
	// rejection (each one re-executed remotely).
	Rerefs int64 `json:"rerefs"`
	// CostForgone is Σ cost over those re-references.
	CostForgone float64 `json:"cost_forgone"`
	// LastProfit, LastBar and LastTheta are the inputs of the most recent
	// decided rejection (admit ⇔ profit > θ·bar), zero when every
	// rejection was undecided (no comparison ran).
	LastProfit float64 `json:"last_profit"`
	LastBar    float64 `json:"last_bar"`
	LastTheta  float64 `json:"last_theta"`
}

// RegretTracker accumulates the regret report from a cache's event
// stream: it watches rejections, then charges every later miss of the
// same signature as cost forgone. It implements core.EventSink; attach it
// with core.MultiSink next to the telemetry registry. All methods are
// safe for concurrent use.
type RegretTracker struct {
	mu      sync.Mutex
	cells   map[string]*Regret
	maxSize int
}

// NewRegretTracker creates a tracker bounded to maxEntries distinct
// signatures (≤ 0 selects DefaultRegretEntries); once full, signatures
// not yet tracked are dropped rather than evicting tracked ones.
func NewRegretTracker(maxEntries int) *RegretTracker {
	if maxEntries <= 0 {
		maxEntries = DefaultRegretEntries
	}
	return &RegretTracker{cells: make(map[string]*Regret), maxSize: maxEntries}
}

// Emit implements core.EventSink.
func (t *RegretTracker) Emit(ev core.Event) {
	switch ev.Kind {
	case core.EventMissRejected, core.EventMissAdmitted, core.EventExternalMiss:
	default:
		return
	}
	if ev.Derived {
		// Admission bookkeeping for a derived set; the reference was
		// already counted by its HitDerived event — and a derived answer
		// costs its derivation, not a remote execution.
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cell := t.cells[ev.ID]
	if cell != nil {
		// Any miss after the first rejection re-paid the execution cost a
		// cached copy would have saved.
		cell.Rerefs++
		cell.CostForgone += ev.Cost
	}
	if ev.Kind != core.EventMissRejected {
		return
	}
	if cell == nil {
		if len(t.cells) >= t.maxSize {
			return
		}
		cell = &Regret{ID: ev.ID}
		t.cells[ev.ID] = cell
	}
	cell.Rejections++
	if ev.Decided {
		cell.LastProfit, cell.LastBar, cell.LastTheta = ev.Profit, ev.Bar, ev.Theta
	}
}

// Top returns the k signatures with the highest cost forgone (ties broken
// by ID for determinism), excluding signatures never re-referenced after
// rejection — those cost nothing to reject.
func (t *RegretTracker) Top(k int) []Regret {
	t.mu.Lock()
	out := make([]Regret, 0, len(t.cells))
	for _, c := range t.cells {
		if c.Rerefs > 0 {
			out = append(out, *c)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].CostForgone != out[j].CostForgone {
			return out[i].CostForgone > out[j].CostForgone
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Tracked returns the number of signatures currently tracked.
func (t *RegretTracker) Tracked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cells)
}
