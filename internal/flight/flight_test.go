package flight

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

func span(id string, start, total int64) core.Span {
	return core.Span{ID: id, Start: start, Total: total}
}

// TestSamplingRatio checks one-in-N capture: 1000 spans at SampleEvery 10
// must land exactly 100 in the ring.
func TestSamplingRatio(t *testing.T) {
	r := New(Config{SampleEvery: 10, SlowThreshold: -1, SpanBuffer: 2048})
	tr := r.ShardTracer(0)
	for i := 0; i < 1000; i++ {
		tr.ObserveSpan(span(fmt.Sprint(i), int64(i), 1))
	}
	if got := len(r.Spans(0)); got != 100 {
		t.Errorf("captured %d spans, want 100 (1 in 10 of 1000)", got)
	}
}

// TestSampleEveryOne captures every span.
func TestSampleEveryOne(t *testing.T) {
	r := New(Config{SampleEvery: 1, SlowThreshold: -1, SpanBuffer: 64})
	tr := r.ShardTracer(0)
	for i := 0; i < 50; i++ {
		tr.ObserveSpan(span(fmt.Sprint(i), int64(i), 1))
	}
	if got := len(r.Spans(0)); got != 50 {
		t.Errorf("captured %d spans, want 50", got)
	}
}

// TestSlowAlwaysCaptured checks spans at or above the slow threshold are
// captured regardless of the sampling ratio.
func TestSlowAlwaysCaptured(t *testing.T) {
	r := New(Config{SampleEvery: 1000000, SlowThreshold: time.Microsecond, SpanBuffer: 64})
	tr := r.ShardTracer(0)
	for i := 0; i < 10; i++ {
		tr.ObserveSpan(span("fast", int64(i), 10)) // 10 ns: below threshold
	}
	tr.ObserveSpan(span("slow", 100, int64(5*time.Millisecond)))
	spans := r.Spans(0)
	if len(spans) != 1 || spans[0].ID != "slow" {
		t.Errorf("spans = %+v, want exactly the slow one", spans)
	}
	if slowest := r.Slowest(1); len(slowest) != 1 || slowest[0].ID != "slow" {
		t.Errorf("Slowest = %+v", slowest)
	}
}

// TestRingWraparound checks the span ring keeps the newest records once
// full, and Spans orders newest first.
func TestRingWraparound(t *testing.T) {
	r := New(Config{SampleEvery: 1, SlowThreshold: -1, SpanBuffer: 4})
	tr := r.ShardTracer(0)
	for i := 0; i < 10; i++ {
		tr.ObserveSpan(span(fmt.Sprint(i), int64(i), 1))
	}
	spans := r.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, want := range []string{"9", "8", "7", "6"} {
		if spans[i].ID != want {
			t.Errorf("spans[%d] = %q, want %q (newest first)", i, spans[i].ID, want)
		}
	}
	if limited := r.Spans(2); len(limited) != 2 || limited[0].ID != "9" {
		t.Errorf("Spans(2) = %+v", limited)
	}
}

// TestStageHistogramsCoverUnsampledSpans checks every span feeds the
// registry's stage histograms even when sampling drops it from the ring.
func TestStageHistogramsCoverUnsampledSpans(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := New(Config{SampleEvery: 1000000, SlowThreshold: -1, Registry: reg})
	tr := r.ShardTracer(0)
	for i := 0; i < 20; i++ {
		sp := span(fmt.Sprint(i), int64(i), 1000)
		sp.Stages[core.StageLookup] = 500
		sp.Stages[core.StageAdmit] = 1500
		tr.ObserveSpan(sp)
	}
	if got := len(r.Spans(0)); got != 0 {
		t.Fatalf("sampling must have dropped all spans, ring has %d", got)
	}
	snap := reg.Snapshot()
	byStage := map[string]int64{}
	for _, st := range snap.Stages {
		byStage[st.Stage] = st.Count
	}
	if byStage["lookup"] != 20 || byStage["admit"] != 20 {
		t.Errorf("stage counts = %v, want 20 lookup and 20 admit", byStage)
	}
	if byStage["load"] != 0 || byStage["evict"] != 0 {
		t.Errorf("stage counts = %v, want zero for stages never timed", byStage)
	}
}

func decisionEvent(kind core.EventKind, id string, seq float64) core.Event {
	return core.Event{Kind: kind, ID: id, Time: seq, Size: 100, Cost: 10,
		Profit: 0.5, Bar: 2, Theta: 1, Decided: true}
}

// TestDecisionsAndLastDecision checks decision capture is unconditional,
// ordered by Seq, and LastDecision returns the newest per signature.
func TestDecisionsAndLastDecision(t *testing.T) {
	r := New(Config{})
	sink := r.ShardSink(0)
	sink.Emit(decisionEvent(core.EventMissRejected, "a", 1))
	sink.Emit(decisionEvent(core.EventMissRejected, "b", 2))
	sink.Emit(decisionEvent(core.EventMissAdmitted, "a", 3))
	sink.Emit(core.Event{Kind: core.EventHit, ID: "a", Time: 4}) // ignored

	decs := r.Decisions(0)
	if len(decs) != 3 {
		t.Fatalf("decisions = %d, want 3 (hits are not decisions)", len(decs))
	}
	if decs[0].ID != "a" || decs[0].Kind != "miss_admitted" {
		t.Errorf("newest decision = %+v, want a's admission", decs[0])
	}
	d, ok := r.LastDecision("a")
	if !ok || d.Kind != "miss_admitted" || d.Time != 3 {
		t.Errorf("LastDecision(a) = %+v ok=%v, want the admission at t=3", d, ok)
	}
	if _, ok := r.LastDecision("never-seen"); ok {
		t.Error("LastDecision of an unseen signature must report not found")
	}
	if got := r.Decisions(2); len(got) != 2 || got[0].Seq < got[1].Seq {
		t.Errorf("Decisions(2) = %+v, want 2 newest-first", got)
	}
}

// TestDecisionRing checks the decision ring is bounded and keeps newest.
func TestDecisionRing(t *testing.T) {
	r := New(Config{DecisionBuffer: 4})
	sink := r.ShardSink(0)
	for i := 0; i < 10; i++ {
		sink.Emit(decisionEvent(core.EventMissRejected, fmt.Sprint(i), float64(i)))
	}
	decs := r.Decisions(0)
	if len(decs) != 4 {
		t.Fatalf("ring holds %d decisions, want 4", len(decs))
	}
	if decs[0].ID != "9" || decs[3].ID != "6" {
		t.Errorf("decisions = %+v, want 9..6", decs)
	}
	if _, ok := r.LastDecision("0"); ok {
		t.Error("overwritten decision must no longer be found")
	}
}

// TestShardIsolation checks shards write distinct rings and readers merge
// them.
func TestShardIsolation(t *testing.T) {
	r := New(Config{SampleEvery: 1, SlowThreshold: -1})
	r.ShardTracer(0).ObserveSpan(span("s0", 1, 1))
	r.ShardTracer(3).ObserveSpan(span("s3", 2, 1))
	spans := r.Spans(0)
	if len(spans) != 2 || spans[0].ID != "s3" || spans[1].ID != "s0" {
		t.Errorf("merged spans = %+v", spans)
	}
}

// TestConcurrentWritersAndReaders hammers the rings from many goroutines;
// run with -race.
func TestConcurrentWritersAndReaders(t *testing.T) {
	r := New(Config{SampleEvery: 2, SlowThreshold: -1, SpanBuffer: 32, DecisionBuffer: 32})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tr, sink := r.ShardTracer(s), r.ShardSink(s)
			for i := 0; i < 500; i++ {
				tr.ObserveSpan(span(fmt.Sprint(i), int64(i), int64(i)))
				sink.Emit(decisionEvent(core.EventMissRejected, fmt.Sprint(i), float64(i)))
			}
		}(s)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Spans(10)
				r.Slowest(10)
				r.Decisions(10)
				r.LastDecision("42")
			}
		}()
	}
	wg.Wait()
}

// TestRegretTracker checks the full regret lifecycle: reject, re-reference,
// rank by cost forgone.
func TestRegretTracker(t *testing.T) {
	tr := NewRegretTracker(0)
	reject := func(id string, cost float64) {
		tr.Emit(core.Event{Kind: core.EventMissRejected, ID: id, Cost: cost,
			Decided: true, Profit: 0.1, Bar: 5, Theta: 1})
	}
	// "pricey" rejected once, re-referenced twice (one more rejection + one
	// external miss).
	reject("pricey", 100)
	reject("pricey", 100)
	tr.Emit(core.Event{Kind: core.EventExternalMiss, ID: "pricey", Cost: 100})
	// "cheap" rejected once, re-referenced once.
	reject("cheap", 10)
	reject("cheap", 10)
	// "once" rejected but never seen again: no regret.
	reject("once", 1000)
	// A later admission still counts as a re-reference (the reject cost a
	// remote execution) but closes the story.
	tr.Emit(core.Event{Kind: core.EventMissAdmitted, ID: "cheap", Cost: 10})

	top := tr.Top(10)
	if len(top) != 2 {
		t.Fatalf("top = %+v, want pricey and cheap only", top)
	}
	if top[0].ID != "pricey" || top[0].CostForgone != 200 || top[0].Rejections != 2 || top[0].Rerefs != 2 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].ID != "cheap" || top[1].CostForgone != 20 || top[1].Rerefs != 2 {
		t.Errorf("top[1] = %+v", top[1])
	}
	if top[0].LastProfit != 0.1 || top[0].LastBar != 5 || top[0].LastTheta != 1 {
		t.Errorf("last inputs = %+v", top[0])
	}
	if tr.Tracked() != 3 {
		t.Errorf("tracked = %d, want 3", tr.Tracked())
	}
	if limited := tr.Top(1); len(limited) != 1 || limited[0].ID != "pricey" {
		t.Errorf("Top(1) = %+v", limited)
	}
}

// TestRegretSkipsDerived checks derived-set admission bookkeeping does not
// pollute the regret report.
func TestRegretSkipsDerived(t *testing.T) {
	tr := NewRegretTracker(0)
	tr.Emit(core.Event{Kind: core.EventMissRejected, ID: "d", Cost: 50, Derived: true})
	if tr.Tracked() != 0 {
		t.Errorf("tracked = %d, want 0 (derived decisions skipped)", tr.Tracked())
	}
}

// TestRegretBounded checks the tracker drops new signatures once full
// rather than growing without bound.
func TestRegretBounded(t *testing.T) {
	tr := NewRegretTracker(2)
	for i := 0; i < 5; i++ {
		tr.Emit(core.Event{Kind: core.EventMissRejected, ID: fmt.Sprint(i), Cost: 1})
	}
	if tr.Tracked() != 2 {
		t.Errorf("tracked = %d, want 2 (bounded)", tr.Tracked())
	}
}
