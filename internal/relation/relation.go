// Package relation models the synthetic relational databases the WATCHMAN
// experiments run against: a scaled-down TPC-D-like database and a Set-Query
// style database, matching §4.1 of the paper ("relations were populated with
// synthetic data according to the benchmark specifications", scaled down from
// the suggested sizes).
//
// Tuples are never stored. Every column value is a pure function of
// (relation seed, column index, row index), so any tuple can be regenerated
// on demand and the whole database costs a few hundred bytes of metadata.
// Uniform pseudo-random columns use a splitmix64 hash; key columns are
// sequential; foreign keys hash into the parent's key space. This gives the
// engine exact cardinalities to estimate against while the generated data
// matches those estimates in expectation.
package relation

import (
	"fmt"
	"sort"
)

// ColumnKind describes how a column's values are generated.
type ColumnKind int

const (
	// KindSequential columns hold the row index itself (primary keys).
	KindSequential ColumnKind = iota
	// KindUniform columns hold a hash of the row index reduced modulo the
	// column's cardinality, i.e. i.i.d. uniform values in [0, Cardinality).
	KindUniform
	// KindForeign columns hold a uniform value in [0, Cardinality) where
	// Cardinality is the parent relation's row count.
	KindForeign
)

// Column describes one attribute of a relation.
type Column struct {
	// Name is the attribute name, unique within its relation.
	Name string
	// Kind selects the value generator.
	Kind ColumnKind
	// Cardinality is the number of distinct values for uniform and foreign
	// columns. Sequential columns ignore it (cardinality = row count).
	Cardinality int64
	// Width is the stored width of the attribute in bytes. Row width (and
	// therefore relation and retrieved-set sizes) is the sum of the widths.
	Width int
	// Parent names the referenced relation for foreign-key columns. It is
	// informational; Cardinality carries the actual key-space size.
	Parent string
}

// Relation is the metadata for one synthetic table.
type Relation struct {
	// Name is the relation name, unique within its database.
	Name string
	// Rows is the cardinality of the relation.
	Rows int64
	// Columns lists the attributes in storage order.
	Columns []Column
	// Seed perturbs the value generators so equal schemas with different
	// seeds produce different data.
	Seed uint64

	byName map[string]int
}

// init builds the column-name index; it is idempotent.
func (r *Relation) init() {
	if r.byName != nil {
		return
	}
	r.byName = make(map[string]int, len(r.Columns))
	for i, c := range r.Columns {
		r.byName[c.Name] = i
	}
}

// ColumnIndex returns the position of the named column, or an error.
func (r *Relation) ColumnIndex(name string) (int, error) {
	r.init()
	i, ok := r.byName[name]
	if !ok {
		return 0, fmt.Errorf("relation %s: no column %q", r.Name, name)
	}
	return i, nil
}

// MustColumnIndex is ColumnIndex but panics on unknown columns. It is meant
// for statically known template code, where a miss is a programming error.
func (r *Relation) MustColumnIndex(name string) int {
	i, err := r.ColumnIndex(name)
	if err != nil {
		panic(err)
	}
	return i
}

// RowWidth returns the stored width of one tuple in bytes.
func (r *Relation) RowWidth() int {
	w := 0
	for _, c := range r.Columns {
		w += c.Width
	}
	return w
}

// Bytes returns the total stored size of the relation in bytes.
func (r *Relation) Bytes() int64 {
	return r.Rows * int64(r.RowWidth())
}

// Pages returns the number of pages the relation occupies at the given page
// size, assuming tuples do not span pages.
func (r *Relation) Pages(pageSize int) int64 {
	rpp := int64(pageSize / r.RowWidth())
	if rpp < 1 {
		rpp = 1
	}
	return (r.Rows + rpp - 1) / rpp
}

// RowsPerPage returns the tuples stored per page at the given page size.
func (r *Relation) RowsPerPage(pageSize int) int64 {
	rpp := int64(pageSize / r.RowWidth())
	if rpp < 1 {
		rpp = 1
	}
	return rpp
}

// splitmix64 is the SplitMix64 finalizer, a strong cheap mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Value returns the value of column col for row index row.
func (r *Relation) Value(row int64, col int) int64 {
	c := &r.Columns[col]
	switch c.Kind {
	case KindSequential:
		return row
	default:
		h := splitmix64(r.Seed ^ splitmix64(uint64(col)+1) ^ uint64(row))
		card := c.Cardinality
		if card <= 0 {
			card = 1
		}
		return int64(h % uint64(card))
	}
}

// Row materializes the tuple at the given row index into dst, growing it as
// needed, and returns it. Row indices run from 0 to Rows−1.
func (r *Relation) Row(row int64, dst []int64) []int64 {
	if cap(dst) < len(r.Columns) {
		dst = make([]int64, len(r.Columns))
	}
	dst = dst[:len(r.Columns)]
	for i := range r.Columns {
		dst[i] = r.Value(row, i)
	}
	return dst
}

// Cardinality returns the number of distinct values of the column.
func (r *Relation) Cardinality(col int) int64 {
	c := &r.Columns[col]
	if c.Kind == KindSequential {
		return r.Rows
	}
	if c.Cardinality <= 0 {
		return 1
	}
	return c.Cardinality
}

// Database is a named set of relations plus storage parameters.
type Database struct {
	// Name labels the database ("tpcd" or "setquery").
	Name string
	// PageSize is the storage page size in bytes.
	PageSize int
	// Relations maps relation name to metadata.
	Relations map[string]*Relation
}

// Bytes returns the total data size of the database in bytes (excluding
// indices, matching the paper's reported database sizes).
func (d *Database) Bytes() int64 {
	var total int64
	for _, r := range d.Relations {
		total += r.Bytes()
	}
	return total
}

// Pages returns the total number of data pages in the database.
func (d *Database) Pages() int64 {
	var total int64
	for _, r := range d.Relations {
		total += r.Pages(d.PageSize)
	}
	return total
}

// Relation returns the named relation or an error.
func (d *Database) Relation(name string) (*Relation, error) {
	r, ok := d.Relations[name]
	if !ok {
		return nil, fmt.Errorf("database %s: no relation %q", d.Name, name)
	}
	return r, nil
}

// MustRelation is Relation but panics on unknown names.
func (d *Database) MustRelation(name string) *Relation {
	r, err := d.Relation(name)
	if err != nil {
		panic(err)
	}
	return r
}

// RelationNames returns the relation names in sorted order.
func (d *Database) RelationNames() []string {
	names := make([]string, 0, len(d.Relations))
	for n := range d.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks structural consistency of the database metadata.
func (d *Database) Validate() error {
	if d.PageSize < 512 {
		return fmt.Errorf("database %s: page size %d too small", d.Name, d.PageSize)
	}
	for name, r := range d.Relations {
		if name != r.Name {
			return fmt.Errorf("database %s: relation keyed %q but named %q", d.Name, name, r.Name)
		}
		if r.Rows <= 0 {
			return fmt.Errorf("relation %s: non-positive row count %d", r.Name, r.Rows)
		}
		if len(r.Columns) == 0 {
			return fmt.Errorf("relation %s: no columns", r.Name)
		}
		seen := make(map[string]bool, len(r.Columns))
		for _, c := range r.Columns {
			if c.Name == "" {
				return fmt.Errorf("relation %s: column with empty name", r.Name)
			}
			if seen[c.Name] {
				return fmt.Errorf("relation %s: duplicate column %q", r.Name, c.Name)
			}
			seen[c.Name] = true
			if c.Width <= 0 {
				return fmt.Errorf("relation %s: column %s has non-positive width", r.Name, c.Name)
			}
			if c.Kind != KindSequential && c.Cardinality <= 0 {
				return fmt.Errorf("relation %s: column %s has non-positive cardinality", r.Name, c.Name)
			}
			if c.Kind == KindForeign {
				parent, ok := d.Relations[c.Parent]
				if !ok {
					return fmt.Errorf("relation %s: column %s references unknown relation %q", r.Name, c.Name, c.Parent)
				}
				if c.Cardinality != parent.Rows {
					return fmt.Errorf("relation %s: column %s cardinality %d != parent %s rows %d",
						r.Name, c.Name, c.Cardinality, c.Parent, parent.Rows)
				}
			}
		}
	}
	return nil
}
