package relation

// This file defines the two benchmark databases the paper evaluates on
// (§4.1): a TPC-D-like database and a Set-Query-like database. Row counts
// follow the official specifications scaled by a scale factor; the paper
// used 30 MB for TPC-D (≈ SF 0.03 of the 1 GB suggested size) and 100 MB for
// Set Query (half of the 200 MB suggested size).

// DefaultPageSize is the storage page size used throughout the experiments.
const DefaultPageSize = 4096

// scaleRows scales a base cardinality, clamping at 1.
func scaleRows(base int64, sf float64) int64 {
	n := int64(float64(base) * sf)
	if n < 1 {
		return 1
	}
	return n
}

// TPCD builds the TPC-D-like database at the given scale factor. SF 1.0
// corresponds to the benchmark's suggested 1 GB database; the paper's 30 MB
// database is SF 0.03. The schema keeps TPC-D's eight relations, key
// relationships and approximate row widths, which is all the workload
// templates and the cost model depend on.
func TPCD(sf float64, pageSize int) *Database {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	supplier := scaleRows(10_000, sf)
	customer := scaleRows(150_000, sf)
	part := scaleRows(200_000, sf)
	partsupp := scaleRows(800_000, sf)
	orders := scaleRows(1_500_000, sf)
	lineitem := scaleRows(6_000_000, sf)

	// dateDays is the number of distinct order/ship dates in TPC-D
	// (1992-01-01 .. 1998-12-31).
	const dateDays = 2557

	d := &Database{
		Name:     "tpcd",
		PageSize: pageSize,
		Relations: map[string]*Relation{
			"region": {
				Name: "region", Rows: 5, Seed: 0x7e610,
				Columns: []Column{
					{Name: "r_regionkey", Kind: KindSequential, Width: 8},
					{Name: "r_name", Kind: KindUniform, Cardinality: 5, Width: 16},
					{Name: "r_comment", Kind: KindUniform, Cardinality: 1 << 20, Width: 100},
				},
			},
			"nation": {
				Name: "nation", Rows: 25, Seed: 0xa71073,
				Columns: []Column{
					{Name: "n_nationkey", Kind: KindSequential, Width: 8},
					{Name: "n_name", Kind: KindUniform, Cardinality: 25, Width: 16},
					{Name: "n_regionkey", Kind: KindForeign, Cardinality: 5, Width: 4, Parent: "region"},
					{Name: "n_comment", Kind: KindUniform, Cardinality: 1 << 20, Width: 100},
				},
			},
			"supplier": {
				Name: "supplier", Rows: supplier, Seed: 0x50991,
				Columns: []Column{
					{Name: "s_suppkey", Kind: KindSequential, Width: 8},
					{Name: "s_name", Kind: KindUniform, Cardinality: supplier, Width: 18},
					{Name: "s_address", Kind: KindUniform, Cardinality: 1 << 20, Width: 24},
					{Name: "s_nationkey", Kind: KindForeign, Cardinality: 25, Width: 4, Parent: "nation"},
					{Name: "s_phone", Kind: KindUniform, Cardinality: 1 << 20, Width: 15},
					{Name: "s_acctbal", Kind: KindUniform, Cardinality: 1_000_000, Width: 8},
					{Name: "s_comment", Kind: KindUniform, Cardinality: 1 << 20, Width: 63},
				},
			},
			"customer": {
				Name: "customer", Rows: customer, Seed: 0xc057,
				Columns: []Column{
					{Name: "c_custkey", Kind: KindSequential, Width: 8},
					{Name: "c_name", Kind: KindUniform, Cardinality: customer, Width: 18},
					{Name: "c_address", Kind: KindUniform, Cardinality: 1 << 20, Width: 24},
					{Name: "c_nationkey", Kind: KindForeign, Cardinality: 25, Width: 4, Parent: "nation"},
					{Name: "c_phone", Kind: KindUniform, Cardinality: 1 << 20, Width: 15},
					{Name: "c_acctbal", Kind: KindUniform, Cardinality: 1_000_000, Width: 8},
					{Name: "c_mktsegment", Kind: KindUniform, Cardinality: 5, Width: 10},
					{Name: "c_comment", Kind: KindUniform, Cardinality: 1 << 20, Width: 73},
				},
			},
			"part": {
				Name: "part", Rows: part, Seed: 0x9a127,
				Columns: []Column{
					{Name: "p_partkey", Kind: KindSequential, Width: 8},
					{Name: "p_name", Kind: KindUniform, Cardinality: part, Width: 34},
					{Name: "p_mfgr", Kind: KindUniform, Cardinality: 5, Width: 8},
					{Name: "p_brand", Kind: KindUniform, Cardinality: 25, Width: 8},
					{Name: "p_type", Kind: KindUniform, Cardinality: 150, Width: 16},
					{Name: "p_size", Kind: KindUniform, Cardinality: 50, Width: 4},
					{Name: "p_container", Kind: KindUniform, Cardinality: 40, Width: 8},
					{Name: "p_retailprice", Kind: KindUniform, Cardinality: 100_000, Width: 8},
					{Name: "p_comment", Kind: KindUniform, Cardinality: 1 << 20, Width: 16},
				},
			},
			"partsupp": {
				Name: "partsupp", Rows: partsupp, Seed: 0x9a4757,
				Columns: []Column{
					{Name: "ps_partkey", Kind: KindForeign, Cardinality: part, Width: 8, Parent: "part"},
					{Name: "ps_suppkey", Kind: KindForeign, Cardinality: supplier, Width: 8, Parent: "supplier"},
					{Name: "ps_availqty", Kind: KindUniform, Cardinality: 9999, Width: 4},
					{Name: "ps_supplycost", Kind: KindUniform, Cardinality: 100_000, Width: 8},
					{Name: "ps_comment", Kind: KindUniform, Cardinality: 1 << 20, Width: 116},
				},
			},
			"orders": {
				Name: "orders", Rows: orders, Seed: 0x0d35,
				Columns: []Column{
					{Name: "o_orderkey", Kind: KindSequential, Width: 8},
					{Name: "o_custkey", Kind: KindForeign, Cardinality: customer, Width: 8, Parent: "customer"},
					{Name: "o_orderstatus", Kind: KindUniform, Cardinality: 3, Width: 1},
					{Name: "o_totalprice", Kind: KindUniform, Cardinality: 1_000_000, Width: 8},
					{Name: "o_orderdate", Kind: KindUniform, Cardinality: dateDays, Width: 4},
					{Name: "o_orderpriority", Kind: KindUniform, Cardinality: 5, Width: 8},
					{Name: "o_clerk", Kind: KindUniform, Cardinality: 1000, Width: 8},
					{Name: "o_shippriority", Kind: KindUniform, Cardinality: 1, Width: 4},
					{Name: "o_comment", Kind: KindUniform, Cardinality: 1 << 20, Width: 49},
				},
			},
			"lineitem": {
				Name: "lineitem", Rows: lineitem, Seed: 0x11e1,
				Columns: []Column{
					{Name: "l_orderkey", Kind: KindForeign, Cardinality: orders, Width: 8, Parent: "orders"},
					{Name: "l_partkey", Kind: KindForeign, Cardinality: part, Width: 8, Parent: "part"},
					{Name: "l_suppkey", Kind: KindForeign, Cardinality: supplier, Width: 8, Parent: "supplier"},
					{Name: "l_linenumber", Kind: KindUniform, Cardinality: 7, Width: 4},
					{Name: "l_quantity", Kind: KindUniform, Cardinality: 50, Width: 4},
					{Name: "l_extendedprice", Kind: KindUniform, Cardinality: 1_000_000, Width: 8},
					{Name: "l_discount", Kind: KindUniform, Cardinality: 11, Width: 4},
					{Name: "l_tax", Kind: KindUniform, Cardinality: 9, Width: 4},
					{Name: "l_returnflag", Kind: KindUniform, Cardinality: 3, Width: 1},
					{Name: "l_linestatus", Kind: KindUniform, Cardinality: 2, Width: 1},
					{Name: "l_shipdate", Kind: KindUniform, Cardinality: dateDays, Width: 4},
					{Name: "l_commitdate", Kind: KindUniform, Cardinality: dateDays, Width: 4},
					{Name: "l_receiptdate", Kind: KindUniform, Cardinality: dateDays, Width: 4},
					{Name: "l_shipinstruct", Kind: KindUniform, Cardinality: 4, Width: 16},
					{Name: "l_shipmode", Kind: KindUniform, Cardinality: 7, Width: 8},
					{Name: "l_comment", Kind: KindUniform, Cardinality: 1 << 20, Width: 27},
				},
			},
		},
	}
	return d
}

// SetQuery builds the Set-Query-like database. Scale 1.0 corresponds to the
// benchmark's 1 M-row, ≈200 MB BENCH table; the paper's 100 MB database is
// scale 0.5. The BENCH table has a sequential key, twelve K-columns whose
// cardinalities span 2 … 500 000, and a filler column padding the row to the
// benchmark's ≈200-byte width.
func SetQuery(scale float64, pageSize int) *Database {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	rows := scaleRows(1_000_000, scale)
	// Large cardinalities scale with the table so "K500K" keeps meaning
	// "half the rows are distinct"; small ones are absolute (K2 is always
	// two-valued).
	sc := func(base int64) int64 {
		n := int64(float64(base) * scale)
		if n < 2 {
			return 2
		}
		if n > rows {
			return rows
		}
		return n
	}
	kcols := []struct {
		name string
		card int64
	}{
		{"k500k", sc(500_000)},
		{"k250k", sc(250_000)},
		{"k100k", sc(100_000)},
		{"k40k", sc(40_000)},
		{"k10k", 10_000},
		{"k1k", 1_000},
		{"k100", 100},
		{"k25", 25},
		{"k10", 10},
		{"k5", 5},
		{"k4", 4},
		{"k2", 2},
	}
	cols := make([]Column, 0, len(kcols)+2)
	cols = append(cols, Column{Name: "kseq", Kind: KindSequential, Width: 8})
	for _, kc := range kcols {
		card := kc.card
		if card > rows {
			card = rows
		}
		cols = append(cols, Column{Name: kc.name, Kind: KindUniform, Cardinality: card, Width: 4})
	}
	// Pad to the benchmark's ≈200-byte rows (8 + 12×4 = 56 bytes so far).
	cols = append(cols, Column{Name: "s_filler", Kind: KindUniform, Cardinality: 1 << 30, Width: 144})

	return &Database{
		Name:     "setquery",
		PageSize: pageSize,
		Relations: map[string]*Relation{
			"bench": {Name: "bench", Rows: rows, Seed: 0xbe7c4, Columns: cols},
		},
	}
}
