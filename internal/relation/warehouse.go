package relation

import "fmt"

// Warehouse builds the database of the paper's buffer-manager interaction
// experiment (§4.2, Figure 7): "14 relations of total size 100 Mbytes".
// Scale 1.0 yields that configuration; each relation is ≈ 100/14 MB with a
// sequential key, three dimension columns of decreasing cardinality, a
// measure column and filler padding the row to 160 bytes. All relations
// share the same key domain so any pair can be joined.
func Warehouse(scale float64, pageSize int) *Database {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	const nRels = 14
	const rowWidth = 160
	totalBytes := int64(100 << 20)
	rows := scaleRows(totalBytes/int64(nRels)/rowWidth, scale)

	db := &Database{
		Name:      "warehouse",
		PageSize:  pageSize,
		Relations: make(map[string]*Relation, nRels),
	}
	for i := 0; i < nRels; i++ {
		name := fmt.Sprintf("rel%02d", i)
		db.Relations[name] = &Relation{
			Name: name, Rows: rows, Seed: 0x3a11 + uint64(i)*0x9e37,
			Columns: []Column{
				{Name: "id", Kind: KindSequential, Width: 8},
				{Name: "day", Kind: KindUniform, Cardinality: 365, Width: 4},
				{Name: "cat", Kind: KindUniform, Cardinality: 40, Width: 4},
				{Name: "flag", Kind: KindUniform, Cardinality: 4, Width: 4},
				{Name: "amount", Kind: KindUniform, Cardinality: 100_000, Width: 8},
				{Name: "ref", Kind: KindUniform, Cardinality: rows, Width: 8},
				{Name: "filler", Kind: KindUniform, Cardinality: 1 << 30, Width: rowWidth - 36},
			},
		}
	}
	return db
}
