package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTPCDSchemaValid(t *testing.T) {
	for _, sf := range []float64{0.001, 0.03, 1} {
		db := TPCD(sf, 0)
		if err := db.Validate(); err != nil {
			t.Fatalf("SF %g: %v", sf, err)
		}
		if db.PageSize != DefaultPageSize {
			t.Fatalf("page size defaulted to %d", db.PageSize)
		}
		if len(db.Relations) != 8 {
			t.Fatalf("TPC-D has 8 relations, got %d", len(db.Relations))
		}
	}
}

func TestSetQuerySchemaValid(t *testing.T) {
	for _, scale := range []float64{0.001, 0.5, 1} {
		db := SetQuery(scale, 0)
		if err := db.Validate(); err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
	}
}

func TestTPCDSizes(t *testing.T) {
	// The paper's 30 MB database is SF 0.03; allow ±20 % for row-width
	// approximation.
	db := TPCD(0.03, 0)
	gb := float64(db.Bytes())
	if gb < 24e6 || gb > 36e6 {
		t.Fatalf("TPC-D SF 0.03 = %.1f MB, want ≈ 30 MB", gb/1e6)
	}
	// Relative relation sizes: lineitem dominates.
	li := db.MustRelation("lineitem").Bytes()
	if float64(li) < 0.5*gb {
		t.Fatalf("lineitem = %d bytes, should dominate the database", li)
	}
	// Row counts follow the spec ratios.
	if o, l := db.MustRelation("orders").Rows, db.MustRelation("lineitem").Rows; l != 4*o {
		t.Fatalf("lineitem/orders = %d/%d, want 4:1", l, o)
	}
}

func TestSetQuerySizes(t *testing.T) {
	db := SetQuery(0.5, 0)
	gb := float64(db.Bytes())
	if gb < 90e6 || gb > 110e6 {
		t.Fatalf("Set Query scale 0.5 = %.1f MB, want ≈ 100 MB", gb/1e6)
	}
	bench := db.MustRelation("bench")
	if bench.RowWidth() != 200 {
		t.Fatalf("BENCH row width = %d, want the benchmark's 200 bytes", bench.RowWidth())
	}
	// K-column cardinalities: absolute for small, scaled for large.
	k2 := bench.Columns[bench.MustColumnIndex("k2")]
	if k2.Cardinality != 2 {
		t.Fatalf("k2 cardinality = %d", k2.Cardinality)
	}
	k500k := bench.Columns[bench.MustColumnIndex("k500k")]
	if k500k.Cardinality != 250_000 {
		t.Fatalf("k500k cardinality at scale 0.5 = %d, want 250000", k500k.Cardinality)
	}
}

func TestValueDeterministic(t *testing.T) {
	db := TPCD(0.01, 0)
	li := db.MustRelation("lineitem")
	for row := int64(0); row < 100; row++ {
		for col := range li.Columns {
			if li.Value(row, col) != li.Value(row, col) {
				t.Fatal("value generation is not deterministic")
			}
		}
	}
	// Different seeds produce different data.
	other := *li
	other.Seed = li.Seed + 1
	same := 0
	for row := int64(0); row < 100; row++ {
		if li.Value(row, 4) == other.Value(row, 4) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("seed does not perturb generated values")
	}
}

func TestValueRanges(t *testing.T) {
	db := SetQuery(0.01, 0)
	bench := db.MustRelation("bench")
	for col := range bench.Columns {
		card := bench.Cardinality(col)
		for row := int64(0); row < 500; row++ {
			v := bench.Value(row, col)
			if v < 0 || v >= card {
				t.Fatalf("column %s: value %d outside [0, %d)", bench.Columns[col].Name, v, card)
			}
		}
	}
}

func TestSequentialColumns(t *testing.T) {
	db := TPCD(0.01, 0)
	ord := db.MustRelation("orders")
	ci := ord.MustColumnIndex("o_orderkey")
	for row := int64(0); row < 50; row++ {
		if ord.Value(row, ci) != row {
			t.Fatal("sequential column must equal the row index")
		}
	}
	if ord.Cardinality(ci) != ord.Rows {
		t.Fatal("sequential column cardinality must equal row count")
	}
}

func TestUniformDistribution(t *testing.T) {
	// A uniform column's low-cardinality values must each receive roughly
	// rows/card occurrences (loose 3-sigma-ish band).
	db := TPCD(0.01, 0)
	li := db.MustRelation("lineitem")
	ci := li.MustColumnIndex("l_returnflag") // cardinality 3
	counts := make([]int, 3)
	n := int64(6000)
	for row := int64(0); row < n; row++ {
		counts[li.Value(row, ci)]++
	}
	expect := float64(n) / 3
	for v, c := range counts {
		if math.Abs(float64(c)-expect) > 4*math.Sqrt(expect) {
			t.Fatalf("value %d occurs %d times, expected ≈ %.0f", v, c, expect)
		}
	}
}

func TestRowMaterialization(t *testing.T) {
	db := TPCD(0.01, 0)
	nat := db.MustRelation("nation")
	row := nat.Row(3, nil)
	if len(row) != len(nat.Columns) {
		t.Fatalf("row has %d values, want %d", len(row), len(nat.Columns))
	}
	for i := range row {
		if row[i] != nat.Value(3, i) {
			t.Fatal("Row and Value disagree")
		}
	}
	// Reuse of the destination slice.
	row2 := nat.Row(4, row)
	if &row2[0] != &row[0] {
		t.Fatal("Row must reuse the provided buffer")
	}
}

func TestPagesMath(t *testing.T) {
	db := TPCD(0.01, 0)
	for _, name := range db.RelationNames() {
		r := db.MustRelation(name)
		rpp := r.RowsPerPage(db.PageSize)
		pages := r.Pages(db.PageSize)
		if rpp < 1 || pages < 1 {
			t.Fatalf("%s: rpp=%d pages=%d", name, rpp, pages)
		}
		if pages*rpp < r.Rows {
			t.Fatalf("%s: %d pages × %d rows/page < %d rows", name, pages, rpp, r.Rows)
		}
		if (pages-1)*rpp >= r.Rows {
			t.Fatalf("%s: too many pages", name)
		}
	}
	if db.Pages() <= 0 {
		t.Fatal("database page count must be positive")
	}
}

func TestColumnIndexErrors(t *testing.T) {
	db := TPCD(0.01, 0)
	li := db.MustRelation("lineitem")
	if _, err := li.ColumnIndex("no_such_column"); err == nil {
		t.Fatal("unknown column must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustColumnIndex must panic on unknown columns")
		}
	}()
	li.MustColumnIndex("no_such_column")
}

func TestRelationLookupErrors(t *testing.T) {
	db := TPCD(0.01, 0)
	if _, err := db.Relation("no_such_relation"); err == nil {
		t.Fatal("unknown relation must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRelation must panic on unknown relations")
		}
	}()
	db.MustRelation("no_such_relation")
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Database { return TPCD(0.01, 0) }

	db := mk()
	db.Relations["orders"].Rows = 0
	if err := db.Validate(); err == nil {
		t.Error("zero rows must fail")
	}

	db = mk()
	db.Relations["orders"].Columns[0].Width = 0
	if err := db.Validate(); err == nil {
		t.Error("zero width must fail")
	}

	db = mk()
	db.Relations["orders"].Columns = append(db.Relations["orders"].Columns,
		Column{Name: "o_orderkey", Kind: KindUniform, Cardinality: 2, Width: 4})
	if err := db.Validate(); err == nil {
		t.Error("duplicate column must fail")
	}

	db = mk()
	db.Relations["orders"].Columns[1].Parent = "nonexistent"
	if err := db.Validate(); err == nil {
		t.Error("dangling foreign key must fail")
	}

	db = mk()
	db.Relations["orders"].Columns[1].Cardinality = 1
	if err := db.Validate(); err == nil {
		t.Error("foreign key cardinality mismatch must fail")
	}

	db = mk()
	db.PageSize = 16
	if err := db.Validate(); err == nil {
		t.Error("tiny page size must fail")
	}

	db = mk()
	db.Relations["misnamed"] = db.Relations["orders"]
	delete(db.Relations, "orders")
	if err := db.Validate(); err == nil {
		t.Error("key/name mismatch must fail")
	}
}

func TestScaleClamping(t *testing.T) {
	db := TPCD(1e-9, 0) // everything clamps to ≥ 1 row
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range db.RelationNames() {
		if db.MustRelation(n).Rows < 1 {
			t.Fatalf("%s has %d rows", n, db.MustRelation(n).Rows)
		}
	}
}

func TestValueBoundsQuick(t *testing.T) {
	db := SetQuery(0.05, 0)
	bench := db.MustRelation("bench")
	f := func(row uint32, col uint8) bool {
		c := int(col) % len(bench.Columns)
		r := int64(row) % bench.Rows
		v := bench.Value(r, c)
		return v >= 0 && v < bench.Cardinality(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
