package whatif

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

func baseConfig() core.Config {
	return core.Config{Capacity: 4096, K: 2, Policy: core.LNCRA}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"lru":             {Name: "lru", Kind: core.LRU},
		"LRU-K":           {Name: "lru-k", Kind: core.LRUK},
		"lnc-ra":          {Name: "lnc-ra", Kind: core.LNCRA},
		"adaptive":        {Name: "lnc-ra-adaptive", Kind: core.LNCRA, Adaptive: true},
		"lnc-ra-adaptive": {Name: "lnc-ra-adaptive", Kind: core.LNCRA, Adaptive: true},
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", in, got, want)
		}
	}
	if _, err := ParsePolicy("clock"); err == nil {
		t.Error("unknown policy must error")
	}
	ps, err := ParsePolicies("lru, lnc-ra")
	if err != nil || len(ps) != 2 || ps[0].Name != "lru" || ps[1].Name != "lnc-ra" {
		t.Errorf("ParsePolicies = %v, %v", ps, err)
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Base: baseConfig(), SampleRate: -1},
		{Base: core.Config{Capacity: core.Unlimited, K: 2, Policy: core.LNCRA}},
		{Base: baseConfig(), Scales: []float64{0}},
		{Base: baseConfig(), Buffer: -1},
		{Base: baseConfig(), Baseline: "fifo"},
		// 0.25 × 4096 / 8192 rounds to zero ghost bytes.
		{Base: baseConfig(), SampleRate: 8192},
	}
	for i, cfg := range bad {
		if m, err := New(cfg); err == nil {
			m.Close()
			t.Errorf("case %d: New(%+v) must error", i, cfg)
		}
	}
}

// TestSamplingPartition pins the sampling filter: deterministic per
// signature, everything at rate 1, and roughly 1/R of a hash-spread
// population at rate R.
func TestSamplingPartition(t *testing.T) {
	m1 := &Matrix{rate: 1}
	m8 := &Matrix{rate: 8}
	sampled := 0
	const n = 100000
	for i := 0; i < n; i++ {
		sig := core.Signature(fmt.Sprintf("query-%d", i))
		if !m1.sampled(sig) {
			t.Fatal("rate 1 must sample everything")
		}
		if m8.sampled(sig) != m8.sampled(sig) {
			t.Fatal("sampling must be deterministic")
		}
		if m8.sampled(sig) {
			sampled++
		}
	}
	got := float64(sampled) / n
	if got < 0.10 || got > 0.15 {
		t.Errorf("rate 8 sampled fraction %.4f, want ≈0.125", got)
	}
}

func refEvent(kind core.EventKind, id string, size int64, cost float64, relations ...string) core.Event {
	return core.Event{Kind: kind, ID: id, Size: size, Cost: cost, Relations: relations}
}

// TestMatrixEndToEnd drives a rate-1 matrix through the event vocabulary
// and checks the report: cell grid shape, reference accounting, curves
// and advisor annotation.
func TestMatrixEndToEnd(t *testing.T) {
	lru := Policy{Name: "lru", Kind: core.LRU}
	lnc := Policy{Name: "lnc-ra", Kind: core.LNCRA}
	m, err := New(Config{
		Base:       baseConfig(),
		SampleRate: 1,
		Scales:     []float64{0.5, 1},
		Policies:   []Policy{lru, lnc},
		Blocking:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 8; i++ {
		m.Emit(refEvent(core.EventMissAdmitted, fmt.Sprintf("q%d", i), 256, 10, "lineitem"))
	}
	m.Emit(refEvent(core.EventHit, "q0", 256, 10, "lineitem"))
	// Admission bookkeeping for a derived hit must not count as a
	// reference; evictions are ignored outright.
	ev := refEvent(core.EventMissAdmitted, "derived", 256, 10)
	ev.Derived = true
	m.Emit(ev)
	m.Emit(refEvent(core.EventEvict, "q1", 256, 10))
	// Size-0 outcomes carry nothing to cache.
	m.Emit(refEvent(core.EventExternalMiss, "zero", 0, 5))

	rep := m.Report(0)
	if rep.SampleRate != 1 || rep.SampledRatio != 0.9 {
		t.Errorf("sample accounting: rate %d ratio %v (want 1, 0.9)", rep.SampleRate, rep.SampledRatio)
	}
	if rep.RefsSeen != 10 || rep.RefsSampled != 9 || rep.RefsApplied != 9 || rep.RefsShed != 0 {
		t.Errorf("refs seen/sampled/applied/shed = %d/%d/%d/%d, want 10/9/9/0",
			rep.RefsSeen, rep.RefsSampled, rep.RefsApplied, rep.RefsShed)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.References != 9 {
			t.Errorf("cell %s/%vx replayed %d refs, want 9", c.Policy, c.Scale, c.References)
		}
		if c.Scale == 1 && c.ModeledBytes != 4096 {
			t.Errorf("cell %s/1x models %d bytes, want 4096", c.Policy, c.ModeledBytes)
		}
		if c.Theta != nil {
			t.Errorf("non-adaptive cell %s/%vx has θ", c.Policy, c.Scale)
		}
	}
	// Cells sorted by policy-set order then ascending scale.
	wantOrder := [][2]any{{"lru", 0.5}, {"lru", 1.0}, {"lnc-ra", 0.5}, {"lnc-ra", 1.0}}
	for i, w := range wantOrder {
		if rep.Cells[i].Policy != w[0] || rep.Cells[i].Scale != w[1] {
			t.Errorf("cell %d = %s/%vx, want %v/%vx", i, rep.Cells[i].Policy, rep.Cells[i].Scale, w[0], w[1])
		}
	}
	if len(rep.Curves) != 2 || len(rep.Curves[0].Points) != 2 {
		t.Fatalf("curves = %+v, want 2 curves × 2 points", rep.Curves)
	}
	// Baseline defaults to the policy matching Base.Policy (lnc-ra).
	if rep.Advisor.BaselinePolicy != "lnc-ra" || rep.Advisor.Margin != DefaultAdvisorMargin {
		t.Errorf("advisor = %+v, want lnc-ra baseline at default margin", rep.Advisor)
	}

	// Coherence: invalidating the only referenced relation empties the
	// ghosts.
	m.Invalidate("lineitem")
	m.Drain()
	rep = m.Report(0)
	for _, c := range rep.Cells {
		if c.Stats.Invalidations == 0 {
			t.Errorf("cell %s/%vx saw no invalidations", c.Policy, c.Scale)
		}
	}
}

// TestRestoreWarmsGhosts checks an EventRestore seeds ghost residency: a
// later hit on the restored ID is a ghost hit without a prior ghost miss.
func TestRestoreWarmsGhosts(t *testing.T) {
	m, err := New(Config{
		Base:       baseConfig(),
		SampleRate: 1,
		Scales:     []float64{1},
		Policies:   []Policy{{Name: "lru", Kind: core.LRU}},
		Blocking:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	m.Emit(refEvent(core.EventRestore, "warm", 128, 7))
	m.Emit(refEvent(core.EventHit, "warm", 128, 7))
	rep := m.Report(0)
	c := rep.Cells[0]
	if c.Stats.Hits != 1 || c.Stats.References != 1 {
		t.Errorf("restored set: ghost stats %+v, want 1 hit / 1 reference", c.Stats)
	}
}

func TestAdaptiveCellCarriesTheta(t *testing.T) {
	m, err := New(Config{
		Base:       baseConfig(),
		SampleRate: 1,
		Scales:     []float64{1},
		Policies:   []Policy{{Name: "lnc-ra-adaptive", Kind: core.LNCRA, Adaptive: true}},
		Blocking:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Emit(refEvent(core.EventMissAdmitted, "q", 64, 3))
	rep := m.Report(0)
	if rep.Cells[0].Theta == nil {
		t.Fatal("adaptive cell must report θ")
	}
}

func TestCloseIsIdempotentAndSheds(t *testing.T) {
	m, err := New(Config{Base: baseConfig(), SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close()
	m.Drain() // must not hang after close
	m.Emit(refEvent(core.EventHit, "late", 64, 3))
	rep := m.Report(0)
	if rep.RefsSeen != 1 || rep.RefsShed != 1 {
		t.Errorf("post-close emit: seen %d shed %d, want 1/1", rep.RefsSeen, rep.RefsShed)
	}
}

func TestAdvise(t *testing.T) {
	cells := []CellReport{
		{Policy: "lnc-ra", Scale: 0.5, ModeledBytes: 2048, References: 10, CSR: 0.30},
		{Policy: "lnc-ra", Scale: 1, ModeledBytes: 4096, References: 10, CSR: 0.40},
		{Policy: "lnc-ra", Scale: 2, ModeledBytes: 8192, References: 10, CSR: 0.55},
		{Policy: "lru", Scale: 1, ModeledBytes: 4096, References: 10, CSR: 0.52},
		{Policy: "lru", Scale: 2, ModeledBytes: 8192, References: 10, CSR: 0.53},
	}
	adv := advise("lnc-ra", 0.01, cells)
	if adv.BaselineCSR != 0.40 {
		t.Fatalf("baseline CSR %v, want 0.40", adv.BaselineCSR)
	}
	// Both lru/1x (0.52) and the 2x cells clear the bar; the cheapest
	// modeled capacity must win.
	if adv.Recommendation == nil || adv.Recommendation.Policy != "lru" || adv.Recommendation.Scale != 1 {
		t.Fatalf("recommendation = %+v, want lru/1x", adv.Recommendation)
	}
	if !strings.Contains(adv.Reason, "lru") {
		t.Errorf("reason %q does not name the recommendation", adv.Reason)
	}

	// Raise the margin past every alternative: no recommendation.
	adv = advise("lnc-ra", 0.5, cells)
	if adv.Recommendation != nil {
		t.Errorf("with margin 0.5 recommendation must be nil, got %+v", adv.Recommendation)
	}

	adv = advise("lnc-ra", 0.01, nil)
	if adv.Recommendation != nil || adv.Reason == "" {
		t.Error("empty matrix must explain itself")
	}

	zero := []CellReport{{Policy: "lnc-ra", Scale: 1, ModeledBytes: 4096}}
	adv = advise("lnc-ra", 0.01, zero)
	if adv.Recommendation != nil || !strings.Contains(adv.Reason, "no sampled references") {
		t.Errorf("zero-traffic advice = %+v", adv)
	}
}

func TestWritePrometheus(t *testing.T) {
	m, err := New(Config{
		Base:       baseConfig(),
		SampleRate: 1,
		Scales:     []float64{0.25, 1},
		Policies:   []Policy{{Name: "lru", Kind: core.LRU}},
		Blocking:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Emit(refEvent(core.EventMissAdmitted, "q", 64, 3))
	m.Drain()

	var sb strings.Builder
	m.WritePrometheusTo(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE watchman_whatif_csr gauge",
		`watchman_whatif_csr{capacity="0.25x",policy="lru"}`,
		`watchman_whatif_csr{capacity="1x",policy="lru"}`,
		"# TYPE watchman_whatif_refs_total counter",
		"watchman_whatif_refs_total 1",
		"# TYPE watchman_whatif_sampled_ratio gauge",
		"watchman_whatif_sampled_ratio 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
