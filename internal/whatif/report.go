package whatif

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// CellReport is one ghost configuration's live result.
type CellReport struct {
	// Policy is the cell's policy name.
	Policy string `json:"policy"`
	// Scale is the capacity multiple of the live cache this cell models.
	Scale float64 `json:"scale"`
	// ModeledBytes is the real-world capacity modeled (Scale × live
	// capacity); GhostBytes is the actual ghost capacity after the 1/R
	// sampling scale-down.
	ModeledBytes int64 `json:"modeled_bytes"`
	GhostBytes   int64 `json:"ghost_bytes"`
	// References is the number of sampled references this ghost replayed.
	References int64 `json:"references"`
	// CSR and HitRatio are the ghost's cumulative ratios — estimates of
	// what the live cache would report under this configuration.
	CSR      float64 `json:"csr"`
	HitRatio float64 `json:"hit_ratio"`
	// Theta is the ghost tuner's current threshold; only adaptive cells
	// carry one.
	Theta *float64 `json:"theta,omitempty"`
	// Stats exposes the ghost's full counter set.
	Stats core.Stats `json:"stats"`
}

// CurvePoint is one capacity step of a policy's miss-ratio curve.
type CurvePoint struct {
	Scale        float64 `json:"scale"`
	ModeledBytes int64   `json:"modeled_bytes"`
	CSR          float64 `json:"csr"`
	// MarginalCSRPerByte is the CSR gained per byte of capacity added
	// since the previous (smaller) point on the curve; zero on the first
	// point.
	MarginalCSRPerByte float64 `json:"marginal_csr_per_byte"`
}

// Curve is one policy's CSR-vs-capacity curve, points in ascending
// capacity order.
type Curve struct {
	Policy string       `json:"policy"`
	Points []CurvePoint `json:"points"`
}

// Advice is the advisor's verdict: the cheapest configuration whose
// estimated CSR beats the baseline cell (the scale-1 cell of the baseline
// policy, which models the live configuration) by at least Margin.
type Advice struct {
	BaselinePolicy string  `json:"baseline_policy"`
	BaselineCSR    float64 `json:"baseline_csr"`
	Margin         float64 `json:"margin"`
	// Recommendation is nil when no cell clears the bar — the live
	// configuration is already within Margin of the best ghost.
	Recommendation *CellReport `json:"recommendation,omitempty"`
	Reason         string      `json:"reason"`
}

// Report is the full matrix snapshot served by GET /v1/whatif.
type Report struct {
	SampleRate   int          `json:"sample_rate"`
	RefsSeen     int64        `json:"refs_seen"`
	RefsSampled  int64        `json:"refs_sampled"`
	RefsApplied  int64        `json:"refs_applied"`
	RefsShed     int64        `json:"refs_shed"`
	SampledRatio float64      `json:"sampled_ratio"`
	Cells        []CellReport `json:"cells"`
	Curves       []Curve      `json:"curves"`
	Advisor      Advice       `json:"advisor"`
}

// Report drains the pending queue (bounded by the FIFO depth) and builds
// the full matrix snapshot. margin ≤ 0 selects DefaultAdvisorMargin.
func (m *Matrix) Report(margin float64) Report {
	if margin <= 0 {
		margin = DefaultAdvisorMargin
	}
	m.Drain()

	m.mu.Lock()
	cells := m.sortedCells()
	rep := Report{
		SampleRate:  m.cfg.SampleRate,
		RefsSeen:    m.refsSeen.load(),
		RefsSampled: m.refsSampled.Load(),
		RefsShed:    m.refsShed.Load(),
		Cells:       make([]CellReport, 0, len(cells)),
	}
	for _, c := range cells {
		rep.Cells = append(rep.Cells, c.report())
	}
	m.mu.Unlock()

	rep.RefsApplied = rep.RefsSampled - rep.RefsShed
	if rep.RefsSeen > 0 {
		rep.SampledRatio = float64(rep.RefsSampled) / float64(rep.RefsSeen)
	}
	rep.Curves = curves(m.cfg.Policies, rep.Cells)
	rep.Advisor = advise(m.cfg.Baseline, margin, rep.Cells)
	return rep
}

// report snapshots one cell; callers hold m.mu.
func (c *cell) report() CellReport {
	st := c.cache.Stats()
	cr := CellReport{
		Policy:       c.policy.Name,
		Scale:        c.scale,
		ModeledBytes: c.modeled,
		GhostBytes:   c.ghost,
		References:   c.refs,
		CSR:          st.CostSavingsRatio(),
		HitRatio:     st.HitRatio(),
		Stats:        st,
	}
	if c.tuner != nil {
		th := c.tuner.Threshold()
		cr.Theta = &th
	}
	return cr
}

// curves groups the cell reports into per-policy CSR-vs-capacity curves
// (cells arrive sorted by policy order then ascending scale).
func curves(policies []Policy, cells []CellReport) []Curve {
	out := make([]Curve, 0, len(policies))
	for _, p := range policies {
		cv := Curve{Policy: p.Name}
		for _, c := range cells {
			if c.Policy != p.Name {
				continue
			}
			pt := CurvePoint{Scale: c.Scale, ModeledBytes: c.ModeledBytes, CSR: c.CSR}
			if n := len(cv.Points); n > 0 {
				prev := cv.Points[n-1]
				if db := pt.ModeledBytes - prev.ModeledBytes; db > 0 {
					pt.MarginalCSRPerByte = (pt.CSR - prev.CSR) / float64(db)
				}
			}
			cv.Points = append(cv.Points, pt)
		}
		out = append(out, cv)
	}
	return out
}

// advise picks the cheapest cell (by modeled capacity, then by CSR) whose
// CSR beats the baseline cell by at least margin.
func advise(baseline string, margin float64, cells []CellReport) Advice {
	adv := Advice{BaselinePolicy: baseline, Margin: margin}
	var base *CellReport
	for i := range cells {
		if cells[i].Policy == baseline && cells[i].Scale == 1 {
			base = &cells[i]
			break
		}
	}
	if base == nil {
		adv.Reason = "no scale-1 baseline cell in the matrix"
		return adv
	}
	adv.BaselineCSR = base.CSR
	if base.References == 0 {
		adv.Reason = "no sampled references yet"
		return adv
	}
	bar := base.CSR + margin
	for i := range cells {
		c := &cells[i]
		if c.CSR < bar {
			continue
		}
		if adv.Recommendation == nil ||
			c.ModeledBytes < adv.Recommendation.ModeledBytes ||
			(c.ModeledBytes == adv.Recommendation.ModeledBytes && c.CSR > adv.Recommendation.CSR) {
			rec := *c
			adv.Recommendation = &rec
		}
	}
	if adv.Recommendation == nil {
		adv.Reason = fmt.Sprintf("no configuration beats the current policy's estimated CSR %.4f by %.4f", base.CSR, margin)
		return adv
	}
	r := adv.Recommendation
	adv.Reason = fmt.Sprintf("%s at %s capacity (%d bytes) estimates CSR %.4f vs current %.4f (+%.4f)",
		r.Policy, formatScale(r.Scale), r.ModeledBytes, r.CSR, base.CSR, r.CSR-base.CSR)
	return adv
}

// WritePrometheusTo writes the watchman_whatif_* families in Prometheus
// text exposition format. Unlike Report it does not drain the queue: a
// scrape reads the ghosts as they are, at most one FIFO of lag behind the
// live stream.
func (m *Matrix) WritePrometheusTo(w io.Writer) {
	m.mu.Lock()
	cells := m.sortedCells()
	type row struct {
		capacity, policy string
		csr              float64
	}
	rows := make([]row, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, row{formatScale(c.scale), c.policy.Name, c.cache.Stats().CostSavingsRatio()})
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP watchman_whatif_csr Estimated cost-savings ratio of a counterfactual (capacity multiple, policy) ghost configuration.\n# TYPE watchman_whatif_csr gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "watchman_whatif_csr{capacity=%q,policy=%q} %g\n", r.capacity, r.policy, r.csr)
	}
	seen, sampled := m.refsSeen.load(), m.refsSampled.Load()
	fmt.Fprintf(w, "# HELP watchman_whatif_refs_total Reference outcomes observed by the what-if matrix.\n# TYPE watchman_whatif_refs_total counter\nwatchman_whatif_refs_total %d\n", seen)
	ratio := 0.0
	if seen > 0 {
		ratio = float64(sampled) / float64(seen)
	}
	fmt.Fprintf(w, "# HELP watchman_whatif_sampled_ratio Fraction of observed references replayed into the ghost caches.\n# TYPE watchman_whatif_sampled_ratio gauge\nwatchman_whatif_sampled_ratio %g\n", ratio)
}
