// Package whatif runs a ghost-cache matrix off the live event stream: a
// grid of counterfactual cache configurations (capacity ladder × policy
// set) continuously re-simulated in-process, so the running system can
// answer "would 2× memory, a different θ, or plain LRU change my CSR?"
// without taking the node offline and replaying traces.
//
// The matrix is an event-spine consumer (core.EventSink): every reference
// outcome the live cache emits — hit, derived hit, admitted or rejected
// miss, external miss — is reconstructed into the canonical request that
// produced it and replayed into each ghost. Ghosts are ordinary
// core.Cache instances built from the live Config with observers stripped
// (the same reuse internal/admission's θ shadows rely on), so ghost
// decisions are exactly the decisions the real cache would have made
// under that configuration.
//
// To keep the ghosts affordable, the matrix replays a deterministic
// spatially-sampled slice of the stream: a reference is sampled iff a
// mix of its signature hash lands in residue class 0 modulo the sampling
// rate R, and every ghost capacity is scaled by 1/R (the SHARDS
// construction: a 1/R sample against a 1/R cache preserves the miss-ratio
// curve). Rate 1 replays everything at full capacity, which is the
// fidelity baseline the tests pin bit-exactly.
//
// Hot-path contract: Emit runs under the live cache's execution context
// (the shard mutex). Unsampled references cost two branches, a striped
// counter increment and a hash multiply — no allocation, no lock.
// Sampled references are copied into a bounded FIFO consumed by one
// background worker; in serving mode a full buffer sheds the reference
// (counted, never blocking), while Blocking mode (sim replays) applies
// backpressure so validation loses nothing.
package whatif

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/core"
)

// Defaults for Config fields left zero.
const (
	// DefaultSampleRate replays 1 in 8 references into the ghosts.
	DefaultSampleRate = 8
	// DefaultBuffer is the depth of the sampled-reference FIFO.
	DefaultBuffer = 4096
	// DefaultAdvisorMargin is the CSR improvement a cheaper or different
	// configuration must show before the advisor recommends it.
	DefaultAdvisorMargin = 0.01
)

// DefaultScales is the capacity ladder: each ghost models the live
// capacity multiplied by one of these factors.
func DefaultScales() []float64 { return []float64{0.25, 0.5, 1, 2, 4} }

// Policy is one policy axis entry of the ghost matrix.
type Policy struct {
	// Name is the stable label used in reports, Prometheus labels and
	// CLI flags.
	Name string
	// Kind is the core replacement/admission policy the ghost runs.
	Kind core.PolicyKind
	// Adaptive attaches a per-ghost admission tuner (the lnc-ra-adaptive
	// configuration): the ghost's θ is tuned from the same sampled slice
	// it replays.
	Adaptive bool
}

// ParsePolicy resolves one policy name. Accepted names match the compare
// subcommand's policy vocabulary.
func ParsePolicy(name string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "lru":
		return Policy{Name: "lru", Kind: core.LRU}, nil
	case "lru-k", "lruk":
		return Policy{Name: "lru-k", Kind: core.LRUK}, nil
	case "lfu":
		return Policy{Name: "lfu", Kind: core.LFU}, nil
	case "lcs":
		return Policy{Name: "lcs", Kind: core.LCS}, nil
	case "lnc-r", "lncr":
		return Policy{Name: "lnc-r", Kind: core.LNCR}, nil
	case "lnc-ra", "lncra":
		return Policy{Name: "lnc-ra", Kind: core.LNCRA}, nil
	case "lnc-ra-adaptive", "lncra-adaptive", "adaptive":
		return Policy{Name: "lnc-ra-adaptive", Kind: core.LNCRA, Adaptive: true}, nil
	}
	return Policy{}, fmt.Errorf("whatif: unknown policy %q", name)
}

// ParsePolicies resolves a comma-separated policy list.
func ParsePolicies(csv string) ([]Policy, error) {
	var out []Policy
	for _, name := range strings.Split(csv, ",") {
		p, err := ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// DefaultPolicies is the paper's comparative line-up: both WATCHMAN
// variants against the LRU and LRU-K baselines.
func DefaultPolicies() []Policy {
	return []Policy{
		{Name: "lnc-ra", Kind: core.LNCRA},
		{Name: "lnc-ra-adaptive", Kind: core.LNCRA, Adaptive: true},
		{Name: "lru", Kind: core.LRU},
		{Name: "lru-k", Kind: core.LRUK},
	}
}

// Config configures a ghost matrix.
type Config struct {
	// Base is the live cache's configuration. Capacity must be finite and
	// positive; ghost configurations are derived from it with observers
	// stripped. Required.
	Base core.Config
	// SampleRate R replays 1 in R references (by signature hash) into
	// ghosts whose capacities are scaled by 1/R. Zero selects
	// DefaultSampleRate; 1 replays everything at full scale.
	SampleRate int
	// Scales is the capacity ladder as multiples of Base.Capacity. Nil
	// selects DefaultScales.
	Scales []float64
	// Policies is the policy axis. Nil selects DefaultPolicies.
	Policies []Policy
	// Buffer is the sampled-reference FIFO depth. Zero selects
	// DefaultBuffer.
	Buffer int
	// Blocking makes Emit apply backpressure instead of shedding when the
	// FIFO is full. Only for offline replays (sim.ReplayWhatIf); a
	// serving cache must never block its shard mutex on the ghosts.
	Blocking bool
	// TuneWindow is the tuning-round window of adaptive ghosts, counted
	// in sampled references. Zero scales the admission default by 1/R so
	// adaptive ghosts re-tune at the same wall-clock cadence as a live
	// tuner would (floor 16).
	TuneWindow int
	// Baseline names the policy the advisor measures against; its
	// scale-1 cell models the live configuration. Empty selects the
	// policy whose Kind matches Base.Policy (first match, non-adaptive
	// preferred), else the first policy.
	Baseline string
}

// opKind discriminates worker queue entries.
type opKind uint8

const (
	opRef opKind = iota
	opRestore
	opInval
	opBarrier
	opStop
)

// op is one queued unit of ghost work. It is a value struct so enqueueing
// does not allocate; relations are the only pointer payload and are
// copied at enqueue time (events must not be retained past Emit).
type op struct {
	kind      opKind
	id        string
	sig       uint64
	time      float64
	class     int
	size      int64
	cost      float64
	relations []string
	done      chan struct{}
}

// stripeCount must be a power of two; stripes are padded to avoid false
// sharing between shards counting concurrently.
const stripeCount = 16

type stripedCounter struct {
	stripes [stripeCount]struct {
		v atomic.Int64
		_ [56]byte
	}
}

func (c *stripedCounter) add(stripe uint64) { c.stripes[stripe&(stripeCount-1)].v.Add(1) }

func (c *stripedCounter) load() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// cell is one ghost configuration: a (scale, policy) grid point.
type cell struct {
	policy  Policy
	scale   float64
	modeled int64 // capacity this ghost models (scale × live capacity)
	ghost   int64 // actual ghost capacity (modeled / R)

	cache   *core.Cache
	tuner   *admission.Tuner   // adaptive cells only
	profile *admission.Profile // adaptive cells only
	refs    int64
}

// Matrix is the ghost-cache grid. It implements core.EventSink; attach it
// to the live cache's sink chain (the sharded layer does this when
// shard.Config.WhatIf is set).
type Matrix struct {
	cfg  Config
	rate uint64

	refsSeen    stripedCounter // every reference outcome observed
	refsSampled atomic.Int64   // passed the hash filter
	refsShed    atomic.Int64   // sampled but dropped on a full FIFO

	ops     chan op
	stopped chan struct{} // closed when the worker exits
	closed  atomic.Bool

	mu    sync.Mutex // guards cells (worker applies, Report reads)
	cells []*cell
}

// New builds the matrix and starts its background worker. Callers must
// Close it to stop the worker.
func New(cfg Config) (*Matrix, error) {
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	if cfg.SampleRate < 1 {
		return nil, fmt.Errorf("whatif: sample rate %d < 1", cfg.SampleRate)
	}
	if cfg.Base.Capacity <= 0 || cfg.Base.Capacity == core.Unlimited {
		return nil, fmt.Errorf("whatif: base capacity must be finite and positive")
	}
	if cfg.Scales == nil {
		cfg.Scales = DefaultScales()
	}
	if cfg.Policies == nil {
		cfg.Policies = DefaultPolicies()
	}
	if cfg.Buffer == 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.Buffer < 1 {
		return nil, fmt.Errorf("whatif: buffer %d < 1", cfg.Buffer)
	}
	if cfg.TuneWindow == 0 {
		cfg.TuneWindow = max(16, admission.DefaultWindow/cfg.SampleRate)
	}
	if cfg.Baseline == "" {
		cfg.Baseline = baselinePolicy(cfg.Base.Policy, cfg.Policies)
	} else if _, err := findPolicy(cfg.Baseline, cfg.Policies); err != nil {
		return nil, err
	}

	m := &Matrix{
		cfg:     cfg,
		rate:    uint64(cfg.SampleRate),
		ops:     make(chan op, cfg.Buffer),
		stopped: make(chan struct{}),
	}
	for _, scale := range cfg.Scales {
		if scale <= 0 {
			return nil, fmt.Errorf("whatif: capacity scale %v must be positive", scale)
		}
		modeled := int64(scale * float64(cfg.Base.Capacity))
		ghost := int64(scale * float64(cfg.Base.Capacity) / float64(cfg.SampleRate))
		if ghost <= 0 {
			return nil, fmt.Errorf("whatif: scale %v at sample rate %d leaves no ghost capacity", scale, cfg.SampleRate)
		}
		for _, pol := range cfg.Policies {
			c := &cell{policy: pol, scale: scale, modeled: modeled, ghost: ghost}
			gcfg := cfg.Base.Ghost(ghost, pol.Kind)
			if pol.Adaptive {
				tuner, err := admission.New(admission.Config{
					Capacity: ghost,
					K:        gcfg.K,
					Evictor:  gcfg.Evictor,
					Window:   cfg.TuneWindow,
				})
				if err != nil {
					return nil, fmt.Errorf("whatif: cell %s/%vx: %w", pol.Name, scale, err)
				}
				c.tuner = tuner
				c.profile = tuner.NewProfile()
				gcfg.Admitter = tuner.Admitter()
			}
			ghostCache, err := core.New(gcfg)
			if err != nil {
				return nil, fmt.Errorf("whatif: cell %s/%vx: %w", pol.Name, scale, err)
			}
			c.cache = ghostCache
			m.cells = append(m.cells, c)
		}
	}
	go m.worker()
	return m, nil
}

// baselinePolicy picks the default advisor baseline: the first
// non-adaptive policy matching the live Kind, else the first matching
// policy, else the first policy.
func baselinePolicy(kind core.PolicyKind, policies []Policy) string {
	name := policies[0].Name
	matched := false
	for _, p := range policies {
		if p.Kind != kind {
			continue
		}
		if !p.Adaptive {
			return p.Name
		}
		if !matched {
			name, matched = p.Name, true
		}
	}
	return name
}

func findPolicy(name string, policies []Policy) (Policy, error) {
	for _, p := range policies {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("whatif: baseline %q is not in the policy set", name)
}

// SampleRate returns the configured 1-in-R sampling rate.
func (m *Matrix) SampleRate() int { return m.cfg.SampleRate }

// CellCount returns the number of ghost configurations.
func (m *Matrix) CellCount() int { return len(m.cells) }

// sampled reports whether a signature belongs to the replayed slice. The
// multiply mixes the hash and the high bits are taken because the sharded
// layer routes on the low bits — sampling on those would starve or flood
// individual shards' slices.
func (m *Matrix) sampled(sig uint64) bool {
	return m.rate == 1 || (sig*0x9E3779B97F4A7C15)>>33%m.rate == 0
}

// Emit consumes one live-cache event. It runs under the emitting shard's
// lock: the unsampled path must not allocate, lock or block.
//
//watchman:hotpath
func (m *Matrix) Emit(ev core.Event) {
	switch ev.Kind {
	case core.EventHit, core.EventHitDerived, core.EventExternalMiss:
		// Reference outcomes.
	case core.EventMissAdmitted, core.EventMissRejected:
		if ev.Derived {
			// Derived-set admission bookkeeping; the reference itself was
			// already announced as EventHitDerived.
			return
		}
	case core.EventRestore:
		m.emitRestore(ev)
		return
	default:
		// Evictions and invalidations are ghost-local decisions: each
		// ghost evicts by its own policy, and coherence arrives via
		// Invalidate exactly as it reaches the admission shadows.
		return
	}
	sig := ev.Sig()
	m.refsSeen.add(sig)
	if !m.sampled(sig) || ev.Size <= 0 {
		// Size 0 means there is no retrieved set to cache (failed or
		// account-only executions); nothing to replay.
		return
	}
	m.refsSampled.Add(1)
	if m.closed.Load() {
		m.refsShed.Add(1)
		return
	}
	o := op{
		kind:  opRef,
		id:    ev.ID,
		sig:   sig,
		time:  ev.Time,
		class: ev.Class,
		size:  ev.Size,
		cost:  ev.Cost,
	}
	if len(ev.Relations) > 0 {
		// Events must not be retained past Emit; the worker outlives it.
		//lint:ignore hotpathalloc sampled-path copy; the unsampled fast path returned above
		o.relations = append([]string(nil), ev.Relations...)
	}
	if m.cfg.Blocking {
		select {
		case m.ops <- o:
		case <-m.stopped:
			m.refsShed.Add(1)
		}
		return
	}
	select {
	case m.ops <- o:
	default:
		m.refsShed.Add(1)
	}
}

// emitRestore queues a snapshot-restored resident set for warm insertion
// into the sampled ghosts. Restores happen at boot against an empty
// queue, so a blocking send is safe and loses nothing.
func (m *Matrix) emitRestore(ev core.Event) {
	sig := ev.Sig()
	if !m.sampled(sig) || ev.Size <= 0 || m.closed.Load() {
		return
	}
	o := op{
		kind:  opRestore,
		id:    ev.ID,
		sig:   sig,
		time:  ev.Time,
		class: ev.Class,
		size:  ev.Size,
		cost:  ev.Cost,
	}
	if len(ev.Relations) > 0 {
		o.relations = append([]string(nil), ev.Relations...)
	}
	select {
	case m.ops <- o:
	case <-m.stopped:
	}
}

// Invalidate forwards a coherence event to every ghost. The sharded
// layer calls this once per Invalidate, after the live caches and the
// admission tuner — the same path, so ghosts and θ shadows see identical
// coherence.
func (m *Matrix) Invalidate(relations ...string) {
	if len(relations) == 0 || m.closed.Load() {
		return
	}
	o := op{kind: opInval, relations: append([]string(nil), relations...)}
	select {
	case m.ops <- o:
	case <-m.stopped:
	}
}

// Drain blocks until every operation enqueued before the call has been
// applied to the ghosts. After Close it returns immediately: the worker
// drained the queue on shutdown.
func (m *Matrix) Drain() {
	o := op{kind: opBarrier, done: make(chan struct{})}
	select {
	case m.ops <- o:
	case <-m.stopped:
		return
	}
	select {
	case <-o.done:
	case <-m.stopped:
	}
}

// Close stops the worker after it applies everything already queued.
// Events emitted after Close are counted seen (and shed if sampled) but
// not replayed. Close is idempotent.
func (m *Matrix) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	select {
	case m.ops <- op{kind: opStop}:
		<-m.stopped
	case <-m.stopped:
	}
}

// worker is the single consumer of the op FIFO. All ghost mutation
// happens here, serialized, under m.mu (Report takes the same lock).
func (m *Matrix) worker() {
	defer close(m.stopped)
	for o := range m.ops {
		switch o.kind {
		case opBarrier:
			close(o.done)
			continue
		case opStop:
			return
		case opRef, opRestore, opInval:
			// Ghost mutations; handled under the lock below.
		}
		m.mu.Lock()
		switch o.kind {
		case opRef:
			m.applyRef(o)
		case opRestore:
			m.applyRestore(o)
		case opInval:
			for _, c := range m.cells {
				c.cache.Invalidate(o.relations...)
				if c.tuner != nil {
					c.tuner.Invalidate(o.relations...)
				}
			}
		case opBarrier, opStop:
			// Control ops; consumed by the pre-lock dispatch above.
		}
		m.mu.Unlock()
	}
}

// applyRef replays one sampled reference into every ghost, in canonical
// form (the event carries the compressed ID; recompressing would corrupt
// the signature space).
func (m *Matrix) applyRef(o op) {
	req := core.Request{
		QueryID:   o.id,
		Time:      o.time,
		Class:     o.class,
		Size:      o.size,
		Cost:      o.cost,
		Relations: o.relations,
	}
	for _, c := range m.cells {
		c.cache.ReferenceCanonical(req, o.sig)
		c.refs++
		if c.profile == nil {
			continue
		}
		full := c.profile.Record(admission.Sample{
			ID: o.id, Sig: o.sig, Size: o.size, Cost: o.cost,
			Time: o.time, Relations: o.relations,
		})
		if full {
			// Synchronous: the worker is the only producer for this
			// tuner, so tuning in-line keeps the cell deterministic.
			c.tuner.TuneOnce()
		}
	}
}

// applyRestore warm-inserts a snapshot-restored set. Restores are not
// references: they touch no stats counters, mirroring the live restore
// path. A ghost without room skips the set — a smaller counterfactual
// cache would not have held the whole image either.
func (m *Matrix) applyRestore(o op) {
	req := core.Request{
		QueryID:   o.id,
		Time:      o.time,
		Class:     o.class,
		Size:      o.size,
		Cost:      o.cost,
		Relations: o.relations,
	}
	for _, c := range m.cells {
		c.cache.WarmInsert(req, o.sig)
	}
}

// formatScale renders a capacity-scale label ("0.25x", "1x", "4x").
func formatScale(scale float64) string {
	return strconv.FormatFloat(scale, 'g', -1, 64) + "x"
}

// sortedCells returns the cells ordered by (policy set order, ascending
// scale) for stable report output.
func (m *Matrix) sortedCells() []*cell {
	order := make(map[string]int, len(m.cfg.Policies))
	for i, p := range m.cfg.Policies {
		order[p.Name] = i
	}
	out := append([]*cell(nil), m.cells...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].policy.Name != out[j].policy.Name {
			return order[out[i].policy.Name] < order[out[j].policy.Name]
		}
		return out[i].scale < out[j].scale
	})
	return out
}
