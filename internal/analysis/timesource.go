package analysis

// timesource: raw wall-clock reads are forbidden outside designated
// time-source files. WATCHMAN's replay determinism (the golden TPC-D
// equivalence tests, warm-restart bit-identity, the what-if ghost
// replays) holds only because every timestamp flows through an
// injectable time source — core works in logical seconds from the trace
// and shard.WallClock adapts real time to that scale. A stray time.Now()
// in the lifecycle silently re-introduces wall-clock dependence that no
// unit test catches until a replay diverges.

import (
	"go/ast"
	"go/types"
)

// TimeSource reports calls to time.Now and time.Since outside files
// carrying the //watchman:timesource directive.
var TimeSource = &Analyzer{
	Name: "timesource",
	Doc: "forbids raw time.Now/time.Since outside //watchman:timesource files, " +
		"protecting replay determinism: all timestamps must flow through the " +
		"designated per-package clock files or the injected time source",
	Run: runTimeSource,
}

// runTimeSource walks every non-directive file for selector calls into
// the time package.
func runTimeSource(pass *Pass) error {
	for _, f := range pass.Files {
		if fileDirective(f, "//watchman:timesource") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			pass.Report(call.Pos(),
				"raw time.%s() outside a //watchman:timesource file; route it through the package's clock file or the injected time source",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
