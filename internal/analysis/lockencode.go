package analysis

// lockencode: snapshot encoding and loader execution must happen outside
// shard/core mutexes. PR 8's low-pause streaming snapshots exist because
// WMSNAP encoding under a shard lock stalls the foreground (the locked
// baseline measured 196,995 ns/op under snapshot pressure against 604
// outside it), and PR 1's Loader contract says "the loader runs outside
// all shard locks" — a loader that re-enters the cache would deadlock,
// and one that merely blocks holds every follower of the shard hostage.
// This analyzer mechanizes both: between a mutex Lock/RLock and its
// Unlock (or to the end of the function when the unlock is deferred), no
// call may enter package persist and no value of a named Loader function
// type may be invoked.

import (
	"go/ast"
	"go/types"
)

// LockEncode reports persist-package calls and Loader invocations made
// while a mutex is held.
var LockEncode = &Analyzer{
	Name: "lockencode",
	Doc: "forbids calls into internal/persist encoders and Loader invocations " +
		"while a shard/core mutex is held: encoding and query execution must run " +
		"outside locks (bounded lock pauses, no loader re-entrancy)",
	Run: runLockEncode,
}

// runLockEncode scans every function body, tracking mutex hold state
// lexically.
func runLockEncode(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.stmts(fn.Body.List)
		}
	}
	return nil
}

// lockWalker tracks how many mutexes are lexically held while walking a
// statement sequence in order. A deferred Unlock does not release — the
// lock stays held to the end of the function, which is exactly when the
// deferred call runs.
type lockWalker struct {
	pass *Pass
	held int
}

// stmts walks one statement list in order.
func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// stmt dispatches one statement, updating the hold count for lock calls
// and checking every contained expression.
func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if d := lockDelta(s.X); d != 0 {
			w.held += d
			if w.held < 0 {
				w.held = 0
			}
			return
		}
		w.expr(s.X)
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the mutex remains held for the
		// rest of the walk. A deferred Lock would be bizarre; ignore it.
		// The deferred call's own arguments evaluate now.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.GoStmt:
		// The goroutine body runs outside this lock scope; its arguments
		// evaluate now.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		before := w.held
		w.stmts(s.Body.List)
		w.held = before
		if s.Else != nil {
			w.stmt(s.Else)
			w.held = before
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		before := w.held
		w.stmts(s.Body.List)
		w.held = before
	case *ast.RangeStmt:
		w.expr(s.X)
		before := w.held
		w.stmts(s.Body.List)
		w.held = before
	case *ast.BlockStmt:
		before := w.held
		w.stmts(s.List)
		w.held = before
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		before := w.held
		for _, cc := range s.Body.List {
			w.stmts(cc.(*ast.CaseClause).Body)
			w.held = before
		}
	case *ast.TypeSwitchStmt:
		before := w.held
		for _, cc := range s.Body.List {
			w.stmts(cc.(*ast.CaseClause).Body)
			w.held = before
		}
	case *ast.SelectStmt:
		before := w.held
		for _, cc := range s.Body.List {
			w.stmts(cc.(*ast.CommClause).Body)
			w.held = before
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// expr checks one expression subtree for forbidden calls, without
// descending into function literals (their bodies run in another
// context).
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w.held == 0 {
			return true
		}
		if pkg := calleePackage(w.pass, call); pkg != nil && pkg.Name() == "persist" {
			pass := w.pass
			pass.Report(call.Pos(),
				"call into package persist while a mutex is held: encode outside the lock (chunk under bounded lock slices, encode between them)")
			return true
		}
		if name, ok := loaderCall(w.pass, call); ok {
			w.pass.Report(call.Pos(),
				"%s invoked while a mutex is held: loaders run outside all shard locks (publish a flight, unlock, then execute)", name)
		}
		return true
	})
}

// lockDelta classifies a statement-level call: +1 for Lock/RLock, -1 for
// Unlock/RUnlock, 0 otherwise.
func lockDelta(e ast.Expr) int {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return 1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// calleePackage resolves the package a call's callee belongs to, when the
// callee is a package-level function or method reached by selector.
func calleePackage(pass *Pass, call *ast.CallExpr) *types.Package {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	return obj.Pkg()
}

// loaderCall reports whether the call invokes a value of a named function
// type called "Loader" (shard.Loader, or a Config.Loader field).
func loaderCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return "", false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Name() != "Loader" {
		return "", false
	}
	if _, ok := named.Underlying().(*types.Signature); !ok {
		return "", false
	}
	return types.TypeString(named, types.RelativeTo(pass.Pkg)), true
}
