// Package analysis is the repository's static-analysis suite: a set of
// custom analyzers that mechanize the load-bearing invariants earlier
// PRs established only as prose and tests — accounting honesty on every
// shard.Load bypass path, encode-outside-locks for snapshots, the
// allocation-free hit path, replay-deterministic time sourcing, and
// exhaustive handling of lifecycle event kinds.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic) on the standard library alone, because
// this module carries no external dependencies: packages are loaded and
// type-checked by the loader in loader.go, and fixtures run under the
// analysistest-style harness of the analysistest subpackage. If the module ever
// grows an x/tools dependency the analyzers port mechanically: each Run
// already consumes only Fset/Files/Pkg/TypesInfo/Report.
//
// The annotation vocabulary the analyzers understand is documented in
// docs/ANALYSIS.md:
//
//	//watchman:accounted   — every return path must account the reference
//	//watchman:accounting  — this function IS an accounting primitive
//	//watchman:hotpath     — no allocating constructs permitted
//	//watchman:timesource  — file may read the wall clock
//	//lint:ignore name why — suppress one diagnostic, with justification
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite ports mechanically
// if the module ever takes on the real dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, //lint:ignore
	// directives and docs/ANALYSIS.md headings.
	Name string
	// Doc is the one-paragraph description `watchmanlint -list` prints.
	Doc string
	// Run checks one package and reports findings via Pass.Report.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	// Analyzer is the checker being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and identifier facts.
	TypesInfo *types.Info

	diags []Diagnostic
}

// Report records one finding.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	// Analyzer names the checker that produced the finding.
	Analyzer string `json:"analyzer"`
	// Position locates the finding.
	Position token.Position `json:"-"`
	// Message states the violation.
	Message string `json:"message"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// All returns every analyzer in the suite, in stable order. It is the
// single registration point: cmd/watchmanlint runs exactly this list and
// cmd/doccheck verifies docs/ANALYSIS.md documents exactly this list.
func All() []*Analyzer {
	return []*Analyzer{
		AccountHonesty,
		LockEncode,
		HotPathAlloc,
		TimeSource,
		EventExhaustive,
	}
}

// Run executes one analyzer over one loaded package and returns its
// findings with //lint:ignore suppressions already applied.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	diags := suppress(pass.diags, pkg)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// RunAll executes every analyzer in All over every package.
func RunAll(pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range All() {
			diags, err := Run(a, pkg)
			if err != nil {
				return nil, err
			}
			out = append(out, diags...)
		}
	}
	return out, nil
}

// suppress drops diagnostics covered by a `//lint:ignore <analyzer>
// <justification>` comment on the same line or the line immediately
// above. The justification is mandatory: a bare ignore suppresses
// nothing, so every exception on record says why it is one.
func suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// ignores maps file -> line -> analyzer names ignored on that line.
	ignores := map[string]map[int][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := ignores[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					ignores[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], name)
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if ignored(ignores, d, 0) || ignored(ignores, d, -1) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// ignored reports whether the diagnostic's analyzer is ignored at its
// line offset by delta.
func ignored(ignores map[string]map[int][]string, d Diagnostic, delta int) bool {
	for _, name := range ignores[d.Position.Filename][d.Position.Line+delta] {
		if name == d.Analyzer || name == "all" {
			return true
		}
	}
	return false
}

// parseIgnore extracts the analyzer name from a well-formed ignore
// directive: `//lint:ignore <analyzer> <justification>`, justification
// non-empty.
func parseIgnore(text string) (name string, ok bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	fields := strings.Fields(text[len(prefix):])
	if len(fields) < 2 {
		return "", false // no justification: does not suppress
	}
	return fields[0], true
}

// funcDirective reports whether the function's doc comment carries the
// given //watchman: directive line.
func funcDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// fileDirective reports whether any comment in the file is exactly the
// given //watchman: directive line.
func fileDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == directive {
				return true
			}
		}
	}
	return false
}
