package analysis

// eventexhaustive: a switch over an enum-like named type (core.EventKind
// above all) with no default clause must cover every declared constant
// of the type. EventRestore (PR 5) and EventHitDerived (PR 4) were each
// added after event sinks already existed; a sink switching on Kind
// without a default silently drops the new kind — the derivation index
// missing restores, the read index missing a residency change — and
// nothing fails until an integration test notices diverged state.
// A default clause is an explicit statement that the remaining kinds are
// handled collectively, so it satisfies the check.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// EventExhaustive reports switches over enum-like named constant types
// that lack both a default clause and full member coverage.
var EventExhaustive = &Analyzer{
	Name: "eventexhaustive",
	Doc: "switches over enum-like named types (core.EventKind and friends) must " +
		"cover every declared constant or carry a default clause, so adding a " +
		"lifecycle kind cannot silently bypass an existing sink",
	Run: runEventExhaustive,
}

// runEventExhaustive inspects every expression switch whose tag has an
// enum-like named type.
func runEventExhaustive(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := types.Unalias(tv.Type).(*types.Named)
			if !ok {
				return true
			}
			members := enumMembers(named)
			if len(members) < 2 {
				return true
			}
			covered := map[string]bool{}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if etv, ok := pass.TypesInfo.Types[e]; ok && etv.Value != nil {
						covered[etv.Value.ExactString()] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, m := range members {
				if !covered[m.val] {
					missing = append(missing, m.name)
				}
			}
			if len(missing) > 0 {
				pass.Report(sw.Pos(),
					"switch over %s is not exhaustive: missing %s (add the cases or a default clause)",
					types.TypeString(named, types.RelativeTo(pass.Pkg)), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// enumMember is one declared constant of an enum-like type.
type enumMember struct{ name, val string }

// enumMembers enumerates the package-level constants of the named type,
// from the package that declares it. Sentinel count constants (a name
// beginning with "num"/"Num", like numEventKinds or NumStages) mark the
// end of an iota block, are never real values, and are excluded.
func enumMembers(named *types.Named) []enumMember {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	scope := obj.Pkg().Scope()
	var out []enumMember
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(name, "num") || strings.HasPrefix(name, "Num") {
			continue
		}
		out = append(out, enumMember{name: name, val: c.Val().ExactString()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].val < out[j].val })
	return out
}
