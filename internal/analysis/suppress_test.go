package analysis

import "testing"

// TestParseIgnore pins the suppression grammar: the justification is
// mandatory — a bare ignore must not suppress.
func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//lint:ignore accounthonesty config error precedes the lookup", "accounthonesty", true},
		{"//lint:ignore hotpathalloc x", "hotpathalloc", true},
		{"//lint:ignore all legacy shim", "all", true},
		{"//lint:ignore accounthonesty", "", false}, // no justification
		{"//lint:ignore", "", false},
		{"// lint:ignore accounthonesty why", "", false}, // not a directive comment
		{"//nolint:accounthonesty", "", false},           // foreign grammar
		{"plain comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseIgnore(c.text)
		if ok != c.ok || name != c.name {
			t.Errorf("parseIgnore(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}

// TestMatchAny pins the pattern grammar of the loader.
func TestMatchAny(t *testing.T) {
	cases := []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{"internal/core", []string{"./..."}, true},
		{"internal/core", []string{"./internal/..."}, true},
		{"internal/core", []string{"./internal/core"}, true},
		{"internal/core", []string{"./internal/shard"}, false},
		{"internal/coreextra", []string{"./internal/core/..."}, false},
		{"cmd/watchman", []string{"./internal/..."}, false},
		{"accounthonesty/a", []string{"accounthonesty/..."}, true},
	}
	for _, c := range cases {
		if got := matchAny(c.rel, c.patterns); got != c.want {
			t.Errorf("matchAny(%q, %v) = %v; want %v", c.rel, c.patterns, got, c.want)
		}
	}
}
