// Package analysistest runs one analyzer over fixture packages and
// checks its diagnostics against the fixtures' expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone (this module carries no external dependencies).
//
// Fixtures live under <dir>/src/<path>/ and are loaded in the loader's
// fixture mode: import paths are root-relative, exactly as in a GOPATH.
// An expected diagnostic is a trailing comment on the offending line:
//
//	t := time.Now() // want `raw time\.Now\(\) outside`
//
// The comment may carry several quoted regexps (backquoted or
// double-quoted) when one line produces several diagnostics. Every
// diagnostic must be claimed by a want on its exact file and line, and
// every want must claim a diagnostic — unexpected and missing findings
// are both test failures, so fixtures pin flagging AND non-flagging
// behavior.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory, the conventional fixture root.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// want is one expected diagnostic: a regexp that must match a reported
// message on its file and line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture packages under dir/src matching the patterns
// (root-relative import paths, "accounthonesty/..." or "lockencode/a"),
// runs the analyzer over each, and reports every mismatch between the
// diagnostics and the fixtures' want comments. Suppression is applied
// first, so a fixture line under a well-formed //lint:ignore carries no
// want.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	l := analysis.NewLoader(filepath.Join(dir, "src"), "")
	pkgs, err := l.Load(patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages match %q under %s", patterns, dir)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		wants := collectWants(t, pkg)
		for _, d := range diags {
			if !claim(wants, d.Position, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pkg.Path, d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
			}
		}
	}
}

// claim marks the first unmatched want covering the diagnostic and
// reports whether one was found.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every want comment of the package's files.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want expectation %q", pos.Filename, pos.Line, c.Text)
					}
					rest = rest[len(q):]
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: s})
				}
			}
		}
	}
	return wants
}
