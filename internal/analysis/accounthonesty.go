package analysis

// accounthonesty: every return path of a function annotated
// //watchman:accounted must charge the reference before returning.
// PR 3's honesty fix established the contract — all five shard.Load
// bypass paths (stale singleflight results, loader failures) charge via
// Cache.Account, because a reference that consulted the cache and is
// then dropped from the denominators overstates the cost-savings ratio.
// The contract lives in many early returns of shard.Load-shaped
// functions, exactly where a refactor quietly loses one; this analyzer
// walks every return path and demands a dominating accounting call.
//
// What counts as accounting: a call whose bare name is "Account" or
// "ApplyHit", any name beginning with "Reference" or "reference"
// (ReferenceCanonical, ReferenceEntry, ReferenceExecuted,
// ReferenceDerived, core's internal reference), and any same-package
// function annotated //watchman:accounting (shard's accountExternal and
// fastHit). The path analysis is structural: an if/else (or a
// switch/select with a default) guarantees accounting only when every
// branch does; loop bodies guarantee nothing (they may run zero times);
// a deferred accounting call covers every return after the defer.

import (
	"go/ast"
	"strings"
)

// AccountHonesty reports return paths of //watchman:accounted functions
// that are not dominated by an accounting call.
var AccountHonesty = &Analyzer{
	Name: "accounthonesty",
	Doc: "every return path of a //watchman:accounted function must charge the " +
		"reference first (Account, ApplyHit, Reference*, or a same-package " +
		"//watchman:accounting function) — the PR 3 honesty contract on " +
		"shard.Load bypass paths",
	Run: runAccountHonesty,
}

// runAccountHonesty collects the package's accounting vocabulary, then
// walks every annotated function.
func runAccountHonesty(pass *Pass) error {
	vocab := map[string]bool{"Account": true, "ApplyHit": true}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && funcDirective(fn, "//watchman:accounting") {
				vocab[fn.Name.Name] = true
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcDirective(fn, "//watchman:accounted") {
				continue
			}
			w := &accountWalker{pass: pass, vocab: vocab}
			acc := w.stmts(fn.Body.List, false)
			// A function body that falls off the end without returning has
			// no results; only explicit returns are charged, so nothing to
			// report here.
			_ = acc
		}
	}
	return nil
}

// accountWalker checks one annotated function.
type accountWalker struct {
	pass  *Pass
	vocab map[string]bool
}

// stmts walks a statement list with the incoming "accounted on every
// path reaching here" state and returns the state after the list.
func (w *accountWalker) stmts(list []ast.Stmt, acc bool) bool {
	for _, s := range list {
		acc = w.stmt(s, acc)
	}
	return acc
}

// stmt checks one statement and returns the accounted state after it.
func (w *accountWalker) stmt(s ast.Stmt, acc bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if !acc && !w.hasAccounting(s) {
			w.pass.Report(s.Pos(),
				"return path is not dominated by an accounting call (Account/ApplyHit/Reference*/"+
					"//watchman:accounting); a reference that consulted the cache must be charged")
		}
		return acc
	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.SendStmt, *ast.IncDecStmt:
		return acc || w.hasAccounting(s)
	case *ast.DeferStmt:
		// A deferred accounting call runs on every return after this point.
		return acc || w.hasAccounting(s)
	case *ast.IfStmt:
		if s.Init != nil {
			acc = acc || w.hasAccounting(s.Init)
		}
		acc = acc || w.hasAccounting(s.Cond)
		thenAcc := w.stmts(s.Body.List, acc)
		elseAcc := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseAcc = w.stmts(e.List, acc)
		case *ast.IfStmt:
			elseAcc = w.stmt(e, acc)
		case nil:
			// No else: the fall-through path skipped the then-branch, so
			// the if guarantees nothing — unless the then-branch cannot
			// fall through (it terminates), in which case the code after
			// the if runs only via the fall-through path and the branch's
			// own returns were already checked.
			return acc
		}
		if terminates(s.Body) {
			return acc || elseAcc
		}
		if s.Else != nil {
			if eb, ok := s.Else.(*ast.BlockStmt); ok && terminates(eb) {
				return acc || thenAcc
			}
		}
		return acc || (thenAcc && elseAcc)
	case *ast.ForStmt:
		if s.Init != nil {
			acc = w.stmt(s.Init, acc)
		}
		w.stmts(s.Body.List, acc)
		return acc // zero iterations possible
	case *ast.RangeStmt:
		w.stmts(s.Body.List, acc)
		return acc
	case *ast.BlockStmt:
		return w.stmts(s.List, acc)
	case *ast.SwitchStmt:
		if s.Init != nil {
			acc = w.stmt(s.Init, acc)
		}
		all, hasDefault := true, false
		for _, cc := range s.Body.List {
			c := cc.(*ast.CaseClause)
			if c.List == nil {
				hasDefault = true
			}
			if !w.stmts(c.Body, acc) {
				all = false
			}
		}
		return acc || (all && hasDefault)
	case *ast.TypeSwitchStmt:
		all, hasDefault := true, false
		for _, cc := range s.Body.List {
			c := cc.(*ast.CaseClause)
			if c.List == nil {
				hasDefault = true
			}
			if !w.stmts(c.Body, acc) {
				all = false
			}
		}
		return acc || (all && hasDefault)
	case *ast.SelectStmt:
		all := true
		for _, cc := range s.Body.List {
			if !w.stmts(cc.(*ast.CommClause).Body, acc) {
				all = false
			}
		}
		return acc || (all && len(s.Body.List) > 0)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, acc)
	default:
		return acc
	}
}

// terminates reports whether a block cannot fall through: its last
// statement is a return or an unconditional control transfer.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// hasAccounting reports whether the node contains a call to a vocabulary
// function, not counting calls inside nested function literals (those
// run elsewhere) — except for defer statements, whose literal body runs
// on this function's return paths.
func (w *accountWalker) hasAccounting(n ast.Node) bool {
	found := false
	inDefer := false
	if _, ok := n.(*ast.DeferStmt); ok {
		inDefer = true
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok && !inDefer {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return true
		}
		if w.vocab[name] || strings.HasPrefix(name, "Reference") || strings.HasPrefix(name, "reference") {
			found = true
			return false
		}
		return true
	})
	return found
}
