// Package a fixtures the hotpathalloc analyzer: every construct the
// //watchman:hotpath contract forbids, and the shapes escape analysis
// keeps cheap that it deliberately permits.
package a

import "fmt"

type point struct{ x, y int }

func sink(v any)        {}
func sinkAll(vs ...any) {}

// Bad contains one of each flagged construct.
//
//watchman:hotpath
func Bad(n int, s string, xs []int) {
	m := map[string]int{} // want `map literal allocates on the hot path`
	_ = m
	sl := []int{1, 2} // want `slice literal allocates on the hot path`
	_ = sl
	p := &point{} // want `&composite literal allocates on the hot path`
	_ = p
	b := make([]byte, n) // want `make allocates on the hot path`
	_ = b
	q := new(point) // want `new allocates on the hot path`
	_ = q
	xs = append(xs, n)           // want `append may grow its backing array on the hot path`
	_ = fmt.Sprintf("%d", n)     // want `fmt call allocates on the hot path`
	_ = []byte(s)                // want `string conversion allocates on the hot path`
	f := func() int { return n } // want `closure captures outer variables and allocates on the hot path`
	_ = f()
}

// BadBox boxes a struct value into an interface parameter.
//
//watchman:hotpath
func BadBox(p point) {
	sink(p) // want `boxing a point into an interface allocates on the hot path`
}

// OKBox passes pointers and basic values: escape analysis routinely keeps
// those off the heap, so the analyzer leaves them to the allocation
// benchmarks.
//
//watchman:hotpath
func OKBox(p *point, n int) {
	sink(p)
	sink(n)
}

// OKSpread forwards an existing []any; no per-element boxing happens.
//
//watchman:hotpath
func OKSpread(vs []any) {
	sinkAll(vs...)
}

// OKClosure materializes a closure that captures nothing.
//
//watchman:hotpath
func OKClosure() int {
	f := func() int { return 42 }
	return f()
}

// Fault keeps its one deliberate allocation on record with a justified
// suppression, mirroring buffer.Pool.Read's fault path.
//
//watchman:hotpath
func Fault(id int, frames map[int]*point) {
	//lint:ignore hotpathalloc the fault path must materialize a frame
	frames[id] = &point{x: id}
}

// Unhot is not annotated; its allocations are its own business.
func Unhot() []int {
	return append([]int{}, 1)
}
