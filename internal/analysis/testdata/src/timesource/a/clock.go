// This file is the fixture package's designated time-source file.
//
//watchman:timesource

package a

import "time"

func monotime() time.Time             { return time.Now() }
func since(t time.Time) time.Duration { return time.Since(t) }
