// Package a fixtures the timesource analyzer: the regression shape is
// internal/core's span clock — a raw time.Now() in lifecycle code outside
// the package's designated //watchman:timesource file, which silently
// breaks replay determinism.
package a

import "time"

// Bad reads the wall clock directly in a non-clock file.
func Bad() time.Duration {
	t := time.Now()      // want `raw time\.Now\(\) outside a //watchman:timesource file`
	return time.Since(t) // want `raw time\.Since\(\) outside a //watchman:timesource file`
}

// OK routes through the designated clock file's helpers.
func OK() time.Duration {
	return since(monotime())
}

// OKMethod calls a Now method on a non-time receiver; only the time
// package's clock is restricted.
func OKMethod() int {
	var c fakeClock
	return c.Now()
}

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

// Suppressed documents a justified exception.
func Suppressed() time.Time {
	//lint:ignore timesource fixture exercises the suppression path
	return time.Now()
}
