// Package b fixtures cross-package coverage: the members of a's enum are
// resolved from the declaring package, exactly as shard and telemetry
// switch over core.EventKind.
package b

import "eventexhaustive/a"

// Partial misses one kind declared in the other package.
func Partial(k a.EventKind) int {
	switch k { // want `switch over eventexhaustive/a\.EventKind is not exhaustive: missing EventMiss`
	case a.EventHit, a.EventEvict:
		return 1
	}
	return 0
}

// Full covers the imported enum completely.
func Full(k a.EventKind) int {
	switch k {
	case a.EventHit, a.EventMiss, a.EventEvict:
		return 1
	}
	return 0
}
