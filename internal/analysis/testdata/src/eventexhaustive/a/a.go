// Package a fixtures the eventexhaustive analyzer: the regression shape
// is an event sink switching over core.EventKind without a default —
// adding a lifecycle kind (EventRestore, EventHitDerived) then silently
// bypasses the sink.
package a

// EventKind mirrors core.EventKind's iota-block shape.
type EventKind uint8

const (
	EventHit EventKind = iota
	EventMiss
	EventEvict
	numEventKinds // sentinel; excluded from coverage
)

// Bad drops EventEvict on the floor.
func Bad(k EventKind) int {
	switch k { // want `switch over EventKind is not exhaustive: missing EventEvict`
	case EventHit:
		return 1
	case EventMiss:
		return 2
	}
	return 0
}

// Full covers every declared kind; the sentinel is not required.
func Full(k EventKind) int {
	switch k {
	case EventHit, EventMiss, EventEvict:
		return 1
	}
	return 0
}

// Defaulted states explicitly that the remaining kinds are handled
// collectively.
func Defaulted(k EventKind) int {
	switch k {
	case EventHit:
		return 1
	default:
		return 0
	}
}

// small has fewer than two declared constants, so it is not enum-like.
type small uint8

const onlyOne small = 0

// NotEnum is not checked: one constant is no enumeration.
func NotEnum(s small) int {
	switch s {
	case onlyOne:
		return 1
	}
	return 0
}

// NotNamed switches over a basic type; only named types are checked.
func NotNamed(i int) int {
	switch i {
	case 0:
		return 1
	}
	return 0
}

// Suppressed documents a justified partial switch.
func Suppressed(k EventKind) int {
	//lint:ignore eventexhaustive fixture exercises the suppression path
	switch k {
	case EventHit:
		return 1
	}
	return 0
}
