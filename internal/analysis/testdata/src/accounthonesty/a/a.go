// Package a fixtures the accounthonesty analyzer: a miniature of
// shard.Load's singleflight shape, including the exact uncharged-bypass
// bug the honesty contract (PR 3) fixed — an early return that drops the
// reference from the Stats denominators.
package a

import "errors"

var errEarly = errors.New("early")

type request struct{ id string }

type cache struct{}

// Account charges one reference into Stats (vocabulary by name).
func (c *cache) Account(req request, hit bool) {}

// ReferenceCanonical runs the full reference lifecycle (vocabulary by
// Reference* prefix).
func (c *cache) ReferenceCanonical(req request) (bool, any) { return false, nil }

// chargeExternal charges a bypass outcome as an external miss; the
// annotation adds it to the package's accounting vocabulary.
//
//watchman:accounting
func chargeExternal(c *cache, req request) { c.Account(req, false) }

func bad() bool { return false }

// Load re-introduces the PR 3 bug: the failed-flight path hands the error
// back without charging the reference that consulted the cache.
//
//watchman:accounted
func Load(c *cache, req request, failed, stale bool) (any, bool, error) {
	if failed {
		return nil, false, errEarly // want `return path is not dominated by an accounting call`
	}
	if stale {
		chargeExternal(c, req)
		return nil, false, nil
	}
	hit, p := c.ReferenceCanonical(req)
	return p, hit, nil
}

// DeferCovered accounts via defer, which covers every later return.
//
//watchman:accounted
func DeferCovered(c *cache, req request) error {
	defer c.Account(req, false)
	if bad() {
		return errEarly
	}
	return nil
}

// Branches accounts on both arms, so the join is dominated.
//
//watchman:accounted
func Branches(c *cache, req request, hit bool) bool {
	if hit {
		c.Account(req, true)
	} else {
		c.Account(req, false)
	}
	return hit
}

// OneArm accounts only on the then-arm; the fall-through path reaches the
// return uncharged.
//
//watchman:accounted
func OneArm(c *cache, req request, hit bool) bool {
	if hit {
		c.Account(req, true)
	}
	return hit // want `return path is not dominated by an accounting call`
}

// LoopOnly accounts inside a loop body, which may run zero times.
//
//watchman:accounted
func LoopOnly(c *cache, reqs []request) bool {
	for _, r := range reqs {
		c.Account(r, true)
	}
	return true // want `return path is not dominated by an accounting call`
}

// Misconfigured exercises the terminating-then special case (code after
// the guard runs only via the charged fall-through) and the suppression
// path: the guard's return precedes any cache consultation, and the
// ignore directive says so.
//
//watchman:accounted
func Misconfigured(c *cache, ok bool) error {
	if !ok {
		//lint:ignore accounthonesty config error precedes the lookup; the cache was never consulted
		return errEarly
	}
	c.Account(request{}, false)
	return nil
}

// BareIgnore shows that an ignore without a justification suppresses
// nothing: the contract requires every exception to say why.
//
//watchman:accounted
func BareIgnore(c *cache) error {
	//lint:ignore accounthonesty
	return errEarly // want `return path is not dominated by an accounting call`
}

// Unannotated is not part of the contract; nothing is flagged.
func Unannotated(c *cache) error {
	return errEarly
}
