// Package persist stands in for the repository's internal/persist: the
// lockencode analyzer matches callees by package name, so the fixture
// package only needs the name and an exported function.
package persist

// Encode stands in for the WMSNAP encoder.
func Encode(v any) []byte { return nil }
