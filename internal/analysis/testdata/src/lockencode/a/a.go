// Package a fixtures the lockencode analyzer: encoding and loader
// execution under a shard mutex (the PR 8 pause regression and the PR 1
// loader re-entrancy hazard), against the sanctioned shapes — snapshot
// under the lock, encode outside it; publish a flight, unlock, execute.
package a

import (
	"sync"

	"lockencode/persist"
)

// Loader mirrors shard.Loader: a named function type executing a query.
type Loader func(id string) (any, error)

type shard struct {
	mu     sync.Mutex
	loader Loader
}

// BadEncode encodes between Lock and Unlock.
func (s *shard) BadEncode(v any) []byte {
	s.mu.Lock()
	b := persist.Encode(v) // want `call into package persist while a mutex is held`
	s.mu.Unlock()
	return b
}

// BadDeferred holds the lock to function end via defer; the encode still
// runs under it.
func (s *shard) BadDeferred(v any) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return persist.Encode(v) // want `call into package persist while a mutex is held`
}

// BadLoader executes the loader under the shard lock: re-entrancy
// deadlocks, and a slow query holds every follower hostage.
func (s *shard) BadLoader(id string) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loader(id) // want `Loader invoked while a mutex is held`
}

// OKOutside snapshots under the lock and does the expensive work after
// releasing it.
func (s *shard) OKOutside(v any, id string) ([]byte, any) {
	s.mu.Lock()
	snapshot := v
	s.mu.Unlock()
	b := persist.Encode(snapshot)
	p, _ := s.loader(id)
	return b, p
}

// OKChunked is the PR 8 shape: bounded lock slices inside the loop, the
// encode between them.
func (s *shard) OKChunked(vs []any) [][]byte {
	out := make([][]byte, 0, len(vs))
	for _, v := range vs {
		s.mu.Lock()
		c := v
		s.mu.Unlock()
		out = append(out, persist.Encode(c))
	}
	return out
}

// OKGoroutine spawns the encode into another goroutine; that body runs
// outside this lock scope.
func (s *shard) OKGoroutine(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = persist.Encode(v)
	}()
}

// rshard exercises the reader-lock spellings.
type rshard struct {
	mu sync.RWMutex
}

// BadRead encodes under an RLock; readers stall writers just the same.
func (r *rshard) BadRead(v any) []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return persist.Encode(v) // want `call into package persist while a mutex is held`
}

// Suppressed documents a justified exception.
func (s *shard) Suppressed(v any) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockencode fixture exercises the suppression path
	return persist.Encode(v)
}
