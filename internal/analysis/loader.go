package analysis

// This file is the suite's package loader: a minimal, module-aware
// replacement for golang.org/x/tools/go/packages built on the standard
// library. It discovers the directories of one source tree, parses their
// non-test files, and type-checks them on demand with an importer that
// resolves module-internal paths from the same tree and everything else
// (the standard library) through go/importer's source importer. The
// module carries no third-party dependencies, so those two roots cover
// every import the type checker can encounter.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path ("repro/internal/core"), or its
	// root-relative path in fixture mode.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records the type checker's facts about the files.
	TypesInfo *types.Info
}

// Loader loads and type-checks the packages of one source tree.
type Loader struct {
	// Root is the tree's directory: a module root (when Module is set) or
	// an analysistest testdata/src root (when Module is empty, import
	// paths are root-relative as in a GOPATH).
	Root string
	// Module is the tree's module path, prefixed onto directory-relative
	// import paths. Empty selects fixture mode.
	Module string

	fset     *token.FileSet
	pkgs     map[string]*Package
	loading  map[string]bool
	fallback types.Importer
}

// NewLoader returns a loader over the tree rooted at dir. module is the
// tree's module path ("" for analysistest fixture roots).
func NewLoader(dir, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:     dir,
		Module:   module,
		fset:     fset,
		pkgs:     map[string]*Package{},
		loading:  map[string]bool{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

// LoadModule discovers the module rooted at dir (reading its module path
// from go.mod) and loads every package matching the patterns. Patterns
// follow the go tool's shape: "./..." for the whole tree, "./x/..." for a
// subtree, "./x" for one directory; no pattern means "./...".
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	module, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := NewLoader(dir, module)
	return l.Load(patterns...)
}

// Load discovers the tree's package directories, filters them by the
// patterns and returns the matching packages type-checked, sorted by
// import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rels, err := l.discover()
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, rel := range rels {
		if !matchAny(rel, patterns) {
			continue
		}
		pkg, err := l.loadLocal(l.importPath(rel))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// importPath maps a root-relative directory to its import path.
func (l *Loader) importPath(rel string) string {
	if rel == "." {
		return l.Module
	}
	if l.Module == "" {
		return rel
	}
	return l.Module + "/" + rel
}

// discover walks the tree and returns every root-relative directory that
// holds at least one non-test Go file. Hidden directories, testdata and
// vendor trees are skipped.
func (l *Loader) discover() ([]string, error) {
	var rels []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, err := goFiles(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.Root, p)
		if err != nil {
			return err
		}
		rels = append(rels, filepath.ToSlash(rel))
		return nil
	})
	return rels, err
}

// goFiles lists the directory's non-test Go files, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// matchAny reports whether the root-relative directory matches any
// pattern.
func matchAny(rel string, patterns []string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat == "..." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") {
				return true
			}
			continue
		}
		if rel == pat {
			return true
		}
	}
	return false
}

// Import implements types.Importer: module-internal paths (and, in
// fixture mode, paths whose directory exists under the root) resolve from
// the tree; everything else falls back to the source importer, which
// covers the standard library.
func (l *Loader) Import(ipath string) (*types.Package, error) {
	if ipath == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.localDir(ipath); ok {
		pkg, err := l.loadLocal(l.importPath(rel))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in %s", ipath)
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(ipath)
}

// localDir maps an import path to a root-relative directory when the path
// belongs to this tree.
func (l *Loader) localDir(ipath string) (rel string, ok bool) {
	if l.Module != "" {
		if ipath == l.Module {
			return ".", true
		}
		if sub, found := strings.CutPrefix(ipath, l.Module+"/"); found {
			return sub, true
		}
		return "", false
	}
	// Fixture mode: any path with a directory under the root is local.
	if fi, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(ipath))); err == nil && fi.IsDir() {
		return ipath, true
	}
	return "", false
}

// loadLocal parses and type-checks one tree-local package by import path,
// memoized. A nil result (no error) means the directory has no Go files.
func (l *Loader) loadLocal(ipath string) (*Package, error) {
	if pkg, ok := l.pkgs[ipath]; ok {
		return pkg, nil
	}
	if l.loading[ipath] {
		return nil, fmt.Errorf("import cycle through %s", ipath)
	}
	l.loading[ipath] = true
	defer delete(l.loading, ipath)

	rel := "."
	if l.Module == "" {
		rel = ipath
	} else if ipath != l.Module {
		rel = strings.TrimPrefix(ipath, l.Module+"/")
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	paths, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		l.pkgs[ipath] = nil
		return nil, nil
	}
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(l.fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(ipath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", ipath, err)
	}
	pkg := &Package{
		Path:      ipath,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[ipath] = pkg
	return pkg, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return path.Clean(strings.TrimSpace(rest)), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}
