package analysis

// hotpathalloc: functions annotated //watchman:hotpath may not contain
// allocating constructs. PRs 7 and 9 hold the buffered hit path and the
// unsampled what-if tax to zero allocations per reference — properties
// pinned by allocation benchmarks, but only at the call sites the
// benchmarks drive. The annotation turns the property into a reviewable
// contract on the function itself: fmt calls, map/slice literals, makes,
// news, string conversions, growing appends, capturing closures and
// composite-value interface boxing are all flagged. The check is
// intraprocedural by design — calls into other functions are that
// function's business; annotate the callee too if it shares the
// contract.

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc reports allocating constructs inside functions annotated
// //watchman:hotpath.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbids allocating constructs (fmt, map/slice literals, make/new, " +
		"growing append, capturing closures, composite-value interface boxing, " +
		"string conversions) in functions annotated //watchman:hotpath",
	Run: runHotPathAlloc,
}

// runHotPathAlloc checks every annotated function.
func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcDirective(fn, "//watchman:hotpath") {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

// checkHotFunc walks one annotated function body.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesOuter(pass, n, fn) {
				pass.Report(n.Pos(), "closure captures outer variables and allocates on the hot path")
			}
			// Keep descending: allocations inside the literal still run on
			// this path if the literal is invoked here, and flagging them
			// is the conservative choice.
			return true
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			switch types.Unalias(tv.Type).Underlying().(type) {
			case *types.Map:
				pass.Report(n.Pos(), "map literal allocates on the hot path")
			case *types.Slice:
				pass.Report(n.Pos(), "slice literal allocates on the hot path")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Report(n.Pos(), "&composite literal allocates on the hot path")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n)
		}
		return true
	})
}

// checkHotCall classifies one call expression inside a hot function.
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	// Type conversions: string <-> []byte/[]rune copy and allocate.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := types.Unalias(tv.Type).Underlying()
		src := pass.TypesInfo.Types[call.Args[0]].Type
		if src != nil && conversionAllocates(dst, src.Underlying()) {
			pass.Report(call.Pos(), "string conversion allocates on the hot path")
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Report(call.Pos(), "make allocates on the hot path")
			case "new":
				pass.Report(call.Pos(), "new allocates on the hot path")
			case "append":
				pass.Report(call.Pos(), "append may grow its backing array on the hot path; index into preallocated storage instead")
			}
			return
		}
	}
	if pkg := calleePackage(pass, call); pkg != nil && pkg.Path() == "fmt" {
		pass.Report(call.Pos(), "fmt call allocates on the hot path")
		return
	}
	checkBoxing(pass, call)
}

// checkBoxing flags composite values (structs, arrays, slices, maps)
// passed to interface-typed parameters: those conversions heap-allocate.
// Basic values and pointers are excluded — escape analysis routinely
// keeps them off the heap, and flagging them would drown the signal (the
// allocation benchmarks remain the oracle for those).
func checkBoxing(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := types.Unalias(tv.Type).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.Types[arg].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Struct, *types.Array, *types.Slice, *types.Map:
			pass.Report(arg.Pos(),
				"boxing a %s into an interface allocates on the hot path", types.TypeString(at, types.RelativeTo(pass.Pkg)))
		}
	}
}

// conversionAllocates reports whether a conversion between the two
// underlying types copies memory (string <-> byte/rune slice).
func conversionAllocates(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

// isString reports whether the underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether the underlying type is []byte or
// []rune.
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// capturesOuter reports whether the function literal references a
// variable declared in the enclosing function (including its receiver
// and parameters) — the case where materializing the closure allocates.
func capturesOuter(pass *Pass, lit *ast.FuncLit, enclosing *ast.FuncDecl) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return true
		}
		pos := v.Pos()
		if pos >= enclosing.Pos() && pos < enclosing.End() &&
			!(pos >= lit.Pos() && pos < lit.End()) {
			captured = true
			return false
		}
		return true
	})
	return captured
}
