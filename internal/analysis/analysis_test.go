package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// The fixture suites: each analyzer's testdata pins flagging and
// non-flagging behavior, including the regression shapes of the
// violations this suite originally surfaced in the tree (the PR 3
// uncharged bypass, the core span clock's raw time.Now).

func TestAccountHonesty(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.AccountHonesty, "accounthonesty/...")
}

func TestLockEncode(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LockEncode, "lockencode/...")
}

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.HotPathAlloc, "hotpathalloc/...")
}

func TestTimeSource(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.TimeSource, "timesource/...")
}

func TestEventExhaustive(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.EventExhaustive, "eventexhaustive/...")
}

// TestRepositoryClean runs the whole suite over the module itself: the
// tree must stay lint-clean, so `go test ./...` is a hard gate even
// where CI does not invoke cmd/watchmanlint directly.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from the module root")
	}
	diags, err := analysis.RunAll(pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestAllUniqueAndDocumentedNames pins the registration point: analyzer
// names are the vocabulary of //lint:ignore directives and the
// docs/ANALYSIS.md headings, so they must be non-empty, lower-case and
// unique.
func TestAllUniqueAndDocumentedNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Name != strings.ToLower(a.Name) {
			t.Errorf("analyzer name %q must be non-empty lower-case", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
	if len(seen) != 5 {
		t.Errorf("expected 5 registered analyzers, got %d", len(seen))
	}
}
