package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testTrace(t *testing.T, queries int, seed int64) *trace.Trace {
	t.Helper()
	_, tr, err := workload.StandardTPCD(0.005, workload.Config{Queries: queries, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReplayTotals(t *testing.T) {
	tr := testTrace(t, 1500, 1)
	res, cache, err := Replay(tr, core.Config{Capacity: CacheBytesForFraction(tr, 1), K: 4, Policy: core.LNCRA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.References != int64(tr.Len()) {
		t.Fatalf("references = %d, want %d", res.Stats.References, tr.Len())
	}
	var totalCost float64
	for i := range tr.Records {
		totalCost += tr.Records[i].Cost
	}
	if math.Abs(res.Stats.CostTotal-totalCost) > 1e-6 {
		t.Fatalf("cost total = %g, want %g", res.Stats.CostTotal, totalCost)
	}
	if err := cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInfiniteCacheMatchesTraceBounds(t *testing.T) {
	// The replay's infinite-cache CSR/HR must exactly equal the analytic
	// bounds computed from the trace — a strong end-to-end consistency
	// check between the cache, the simulator and the trace statistics.
	tr := testTrace(t, 2500, 2)
	st := trace.ComputeStats(tr)
	res, err := InfiniteCache(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CSR()-st.MaxCostSavings) > 1e-9 {
		t.Fatalf("infinite CSR %.6f != bound %.6f", res.CSR(), st.MaxCostSavings)
	}
	if math.Abs(res.HR()-st.MaxHitRatio) > 1e-9 {
		t.Fatalf("infinite HR %.6f != bound %.6f", res.HR(), st.MaxHitRatio)
	}
}

func TestFiniteCacheBelowBounds(t *testing.T) {
	tr := testTrace(t, 2000, 3)
	st := trace.ComputeStats(tr)
	for _, s := range []Setup{
		{Policy: core.LRU, K: 1},
		{Policy: core.LNCR, K: 4},
		{Policy: core.LNCRA, K: 4},
	} {
		res, err := ReplaySetup(tr, s, CacheBytesForFraction(tr, 1))
		if err != nil {
			t.Fatal(err)
		}
		if res.CSR() > st.MaxCostSavings+1e-9 {
			t.Fatalf("%s: CSR %.4f exceeds infinite-cache bound %.4f", s.Label(), res.CSR(), st.MaxCostSavings)
		}
		if res.HR() > st.MaxHitRatio+1e-9 {
			t.Fatalf("%s: HR exceeds bound", s.Label())
		}
	}
}

func TestLNCRABeatsLRUOnDrillDown(t *testing.T) {
	// The paper's headline claim, as a regression guard: at a small cache
	// LNC-RA must deliver a substantially higher CSR than vanilla LRU.
	tr := testTrace(t, 4000, 4)
	capacity := CacheBytesForFraction(tr, 1)
	lnc, err := ReplaySetup(tr, Setup{Policy: core.LNCRA, K: 4}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	lru, err := ReplaySetup(tr, Setup{Policy: core.LRU, K: 1}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if lnc.CSR() < 1.3*lru.CSR() {
		t.Fatalf("LNC-RA CSR %.3f not clearly above LRU %.3f", lnc.CSR(), lru.CSR())
	}
}

func TestSweepShape(t *testing.T) {
	tr := testTrace(t, 1200, 5)
	pts, err := Sweep(tr, []float64{0.5, 2}, []Setup{{Policy: core.LNCRA, K: 2}, {Policy: core.LRU, K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("sweep points = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Result.Stats.References != int64(tr.Len()) {
			t.Fatal("sweep point did not replay the full trace")
		}
	}
}

func TestCacheBytesForFraction(t *testing.T) {
	tr := &trace.Trace{DatabaseBytes: 1 << 20}
	if got := CacheBytesForFraction(tr, 1); got != 10485 {
		t.Fatalf("1%% of 1 MiB = %d", got)
	}
	if got := CacheBytesForFraction(tr, 0.0001); got != 4096 {
		t.Fatalf("tiny fractions clamp to a page: %d", got)
	}
}

func TestSetupLabel(t *testing.T) {
	s := Setup{Policy: core.LNCRA, K: 4}
	if s.Label() != "LNC-RA(K=4)" {
		t.Fatalf("label = %q", s.Label())
	}
}

func TestBufferSimSmoke(t *testing.T) {
	db := relation.Warehouse(0.1, 0)
	templates := workload.WarehouseTemplates(db)
	base := BufferSimConfig{
		Queries:    400,
		Seed:       6,
		PoolBytes:  4 << 20,
		CacheBytes: 4 << 20,
		P0:         -1,
	}
	noHints, err := RunBufferSim(db, templates, base)
	if err != nil {
		t.Fatal(err)
	}
	if noHints.PageReferences == 0 {
		t.Fatal("no page references recorded")
	}
	if hr := noHints.BufferHitRatio(); hr <= 0 || hr >= 1 {
		t.Fatalf("buffer hit ratio = %g", hr)
	}
	if noHints.HintsSent != 0 || noHints.PagesDemoted != 0 {
		t.Fatal("hints must be disabled at P0 < 0")
	}

	cfg := base
	cfg.P0 = 0.6
	hints, err := RunBufferSim(db, templates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hints.HintsSent == 0 {
		t.Fatal("no hints sent at P0 = 0.6")
	}
	if hints.CacheStats.Hits == 0 {
		t.Fatal("the WATCHMAN cache should be getting hits")
	}
}

func TestBufferSimDeterminism(t *testing.T) {
	db := relation.Warehouse(0.1, 0)
	templates := workload.WarehouseTemplates(db)
	cfg := BufferSimConfig{Queries: 300, Seed: 8, PoolBytes: 4 << 20, CacheBytes: 4 << 20, P0: 0.5}
	a, err := RunBufferSim(db, templates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBufferSim(relation.Warehouse(0.1, 0), workload.WarehouseTemplates(relation.Warehouse(0.1, 0)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BufferStats != b.BufferStats || a.PageReferences != b.PageReferences {
		t.Fatalf("buffer sim not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestBufferSimHintThresholds(t *testing.T) {
	// Selective hints must beat the no-hints baseline, and the degenerate
	// p0 = 0 sweep (every referenced page demoted — the paper's "modified
	// LRU degenerates to MRU" case) must forfeit that benefit.
	db := relation.Warehouse(0.1, 0)
	templates := workload.WarehouseTemplates(db)
	base := BufferSimConfig{Queries: 1500, Seed: 9, PoolBytes: 2 << 20, CacheBytes: 2 << 20}

	run := func(p0 float64) float64 {
		cfg := base
		cfg.P0 = p0
		res, err := RunBufferSim(db, templates, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.BufferHitRatio()
	}
	none := run(-1)
	selective := run(1.0)
	zero := run(0)
	if selective <= none {
		t.Fatalf("selective hints HR %.3f must beat no-hints %.3f", selective, none)
	}
	if zero >= selective {
		t.Fatalf("p0=0 HR %.3f must forfeit the selective-hint benefit %.3f", zero, selective)
	}
}
