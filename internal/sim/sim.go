// Package sim replays workload traces against cache configurations and
// produces the paper's metrics. It also hosts the WATCHMAN/buffer-manager
// cooperation simulator behind the Figure 7 experiment.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Result summarizes one replay.
type Result struct {
	// Policy names the replacement policy ("LNC-RA", "LRU", ...).
	Policy string
	// K is the reference-window size used.
	K int
	// CacheBytes is the cache capacity (core.Unlimited for infinite).
	CacheBytes int64
	// Stats are the cache's raw counters after the replay.
	Stats core.Stats
}

// CSR returns the cost savings ratio of the replay.
func (r Result) CSR() float64 { return r.Stats.CostSavingsRatio() }

// HR returns the hit ratio of the replay.
func (r Result) HR() float64 { return r.Stats.HitRatio() }

// Fragmentation returns the average unused-space fraction of the replay.
func (r Result) Fragmentation() float64 { return r.Stats.AvgFragmentation() }

// Replay feeds every record of the trace through a cache built from cfg and
// returns the result. The returned cache allows further inspection.
func Replay(tr *trace.Trace, cfg core.Config) (Result, *core.Cache, error) {
	c, err := core.New(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	for i := range tr.Records {
		rec := &tr.Records[i]
		req := core.Request{
			QueryID:   rec.QueryID,
			Time:      rec.Time,
			Class:     rec.Class,
			Size:      rec.Size,
			Cost:      rec.Cost,
			Relations: rec.Relations,
		}
		if rec.Plan != nil {
			// Guarded: a typed nil in the any-valued field would read as
			// "plan present" downstream.
			req.Plan = rec.Plan
		}
		c.Reference(req)
	}
	return Result{
		Policy:     cfg.Policy.String(),
		K:          cfg.K,
		CacheBytes: cfg.Capacity,
		Stats:      c.Stats(),
	}, c, nil
}

// ReplayWithRegistry replays the trace with a telemetry registry attached
// as the cache's event sink (composed with any sink already configured),
// so the caller can read per-class and per-relation cost-savings
// breakdowns off the registry afterwards. `watchman compare` uses it to
// print per-class CSR columns for multiclass traces.
func ReplayWithRegistry(tr *trace.Trace, cfg core.Config, reg *telemetry.Registry) (Result, *core.Cache, error) {
	cfg.Sink = core.MultiSink(cfg.Sink, reg)
	return Replay(tr, cfg)
}

// Setup is a shorthand for the cache configurations the experiments sweep.
type Setup struct {
	Policy  core.PolicyKind
	K       int
	Evictor core.EvictorKind
	// DisableRetained turns retained reference information off (ablation).
	DisableRetained bool
	// StrictTiers enables the literal Figure-1 tier loop (ablation).
	StrictTiers bool
}

// Label renders a display name such as "LNC-RA(K=4)".
func (s Setup) Label() string {
	return fmt.Sprintf("%s(K=%d)", s.Policy, s.K)
}

// ReplaySetup replays the trace with the setup at the given capacity.
func ReplaySetup(tr *trace.Trace, s Setup, capacity int64) (Result, error) {
	res, _, err := Replay(tr, core.Config{
		Capacity:            capacity,
		K:                   s.K,
		Policy:              s.Policy,
		Evictor:             s.Evictor,
		DisableRetainedInfo: s.DisableRetained,
		StrictTiers:         s.StrictTiers,
	})
	return res, err
}

// CacheBytesForFraction converts a cache-size percentage of the database
// into bytes (at least one page worth).
func CacheBytesForFraction(tr *trace.Trace, pct float64) int64 {
	b := int64(float64(tr.DatabaseBytes) * pct / 100)
	if b < 4096 {
		b = 4096
	}
	return b
}

// SweepPoint is one (cache size, setup) replay within a sweep.
type SweepPoint struct {
	Pct    float64
	Setup  Setup
	Result Result
}

// Sweep replays the trace for every (cache percentage × setup) pair.
func Sweep(tr *trace.Trace, pcts []float64, setups []Setup) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(pcts)*len(setups))
	for _, pct := range pcts {
		capacity := CacheBytesForFraction(tr, pct)
		for _, s := range setups {
			res, err := ReplaySetup(tr, s, capacity)
			if err != nil {
				return nil, fmt.Errorf("sim: sweep %s at %.2f%%: %w", s.Label(), pct, err)
			}
			out = append(out, SweepPoint{Pct: pct, Setup: s, Result: res})
		}
	}
	return out, nil
}

// InfiniteCache replays the trace with unlimited capacity, yielding the
// paper's Figure 2 bounds. Any policy gives the same hits with infinite
// space; LNC-RA is used to match the paper's setup.
func InfiniteCache(tr *trace.Trace, k int) (Result, error) {
	res, _, err := Replay(tr, core.Config{
		Capacity: core.Unlimited,
		K:        k,
		Policy:   core.LNCRA,
	})
	return res, err
}
