package sim

import (
	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/trace"
)

// AdaptiveResult is the outcome of an adaptive-admission replay: the usual
// replay result plus the tuner state it ended with.
type AdaptiveResult struct {
	Result
	// FinalThreshold is the θ published when the replay finished.
	FinalThreshold float64
	// Rounds is the number of tuning rounds completed.
	Rounds int
	// Switches is the number of rounds that changed the threshold.
	Switches int
}

// ReplayAdaptive feeds the trace through a cache whose admission is gated
// by a shadow-tuned threshold: every reference is recorded into the
// tuner's profile and a synchronous tuning round runs each time the window
// fills, so the replay is fully deterministic. cfg.Policy is forced to
// LNCRA (the tunable rule generalizes LNC-A); tcfg.Capacity and tcfg.K
// default to the live cache's when zero.
func ReplayAdaptive(tr *trace.Trace, cfg core.Config, tcfg admission.Config) (AdaptiveResult, *admission.Tuner, error) {
	cfg.Policy = core.LNCRA
	if tcfg.Capacity == 0 {
		tcfg.Capacity = cfg.Capacity
	}
	if tcfg.K == 0 {
		tcfg.K = cfg.K
	}
	if tcfg.Evictor == 0 {
		tcfg.Evictor = cfg.Evictor
	}
	tuner, err := admission.New(tcfg)
	if err != nil {
		return AdaptiveResult{}, nil, err
	}
	cfg.Admitter = tuner.Admitter()
	c, err := core.New(cfg)
	if err != nil {
		return AdaptiveResult{}, nil, err
	}
	profile := tuner.NewProfile()
	rounds, switches := 0, 0
	for i := range tr.Records {
		rec := &tr.Records[i]
		id := core.CompressID(rec.QueryID)
		sig := core.Signature(id)
		c.ReferenceCanonical(core.Request{
			QueryID:   id,
			Time:      rec.Time,
			Class:     rec.Class,
			Size:      rec.Size,
			Cost:      rec.Cost,
			Relations: rec.Relations,
		}, sig)
		if profile.Record(admission.Sample{
			ID: id, Sig: sig, Size: rec.Size, Cost: rec.Cost, Time: rec.Time,
			Relations: rec.Relations,
		}) {
			if round, ok := tuner.TuneOnce(); ok {
				rounds++
				if round.Switched {
					switches++
				}
			}
		}
	}
	return AdaptiveResult{
		Result: Result{
			Policy:     "LNC-RA adaptive",
			K:          cfg.K,
			CacheBytes: cfg.Capacity,
			Stats:      c.Stats(),
		},
		FinalThreshold: tuner.Threshold(),
		Rounds:         rounds,
		Switches:       switches,
	}, tuner, nil
}
