package sim

import (
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tpcdTrace generates a small deterministic TPC-D trace for the adaptive
// replay tests.
func tpcdTrace(t *testing.T, queries int) *trace.Trace {
	t.Helper()
	_, tr, err := workload.StandardTPCD(0.01, workload.Config{Queries: queries, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReplayAdaptiveDeterminism(t *testing.T) {
	tr := tpcdTrace(t, 3000)
	capacity := CacheBytesForFraction(tr, 1)
	cfg := core.Config{Capacity: capacity, K: 4}
	tcfg := admission.Config{Window: 500}

	a, _, err := ReplayAdaptive(tr, cfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ReplayAdaptive(tr, cfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || a.FinalThreshold != b.FinalThreshold || a.Rounds != b.Rounds {
		t.Errorf("adaptive replay is not deterministic:\n  run 1: %+v θ=%g rounds=%d\n  run 2: %+v θ=%g rounds=%d",
			a.Stats, a.FinalThreshold, a.Rounds, b.Stats, b.FinalThreshold, b.Rounds)
	}
}

func TestReplayAdaptiveAccounting(t *testing.T) {
	tr := tpcdTrace(t, 3000)
	capacity := CacheBytesForFraction(tr, 1)
	res, tuner, err := ReplayAdaptive(tr, core.Config{Capacity: capacity, K: 4}, admission.Config{Window: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.References != int64(tr.Len()) {
		t.Errorf("references = %d, want %d", res.Stats.References, tr.Len())
	}
	if res.Rounds != len(tuner.Rounds()) {
		t.Errorf("result reports %d rounds, tuner history holds %d", res.Rounds, len(tuner.Rounds()))
	}
	if res.FinalThreshold != tuner.Threshold() {
		t.Errorf("final threshold %g != tuner threshold %g", res.FinalThreshold, tuner.Threshold())
	}
	if res.Policy != "LNC-RA adaptive" {
		t.Errorf("policy label = %q", res.Policy)
	}
}
