package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestReplayEquivalenceGoldenTPCD pins the lifecycle refactor to the
// pre-refactor numbers: the golden Stats below were captured on the TPC-D
// trace (scale 0.005, 4000 queries, seed 7, 1% cache, K=4, LNC-RA) at the
// commit immediately before the reference path was decomposed into
// event-emitting stages. The refactor must be byte-identical: same Stats,
// same CSR bits, with or without a telemetry registry attached.
func TestReplayEquivalenceGoldenTPCD(t *testing.T) {
	golden := core.Stats{
		References:      4000,
		Hits:            1583,
		CostTotal:       3.086769e+06,
		CostSaved:       1.329957e+06,
		BytesServed:     254762,
		Admissions:      1952,
		Rejections:      465,
		Evictions:       867,
		Invalidations:   0,
		RetainedDropped: 1156,
		FragSamples:     4000,
		FragSum:         227.82427455583016,
	}
	const goldenCSRBits = 0x3FDB932A8E1F094A // 0.4308573139097872

	_, tr, err := workload.StandardTPCD(0.005, workload.Config{Queries: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	capacity := CacheBytesForFraction(tr, 1)
	if capacity != 49418 {
		t.Fatalf("capacity = %d, want 49418 (trace generation changed; re-pin the golden stats)", capacity)
	}

	bare, _, err := Replay(tr, core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Stats != golden {
		t.Fatalf("lifecycle refactor changed replay stats:\n got %+v\nwant %+v", bare.Stats, golden)
	}
	if bits := math.Float64bits(bare.CSR()); bits != goldenCSRBits {
		t.Fatalf("CSR bits = %#x (%v), want %#x", bits, bare.CSR(), goldenCSRBits)
	}

	// Attaching a registry must not perturb the replay by a single bit,
	// and the registry must agree with Stats exactly.
	reg := telemetry.NewRegistry()
	instrumented, _, err := ReplayWithRegistry(tr, core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if instrumented.Stats != golden {
		t.Fatalf("registry attachment perturbed the replay:\n got %+v\nwant %+v", instrumented.Stats, golden)
	}
	snap := reg.Snapshot()
	if snap.References() != golden.References || snap.Hits != golden.Hits {
		t.Fatalf("registry drifted: %+v", snap)
	}
	if snap.CostTotal != golden.CostTotal || snap.CostSaved != golden.CostSaved {
		t.Fatalf("registry cost accounting drifted: %g/%g", snap.CostSaved, snap.CostTotal)
	}
	if snap.Evictions != golden.Evictions {
		t.Fatalf("registry evictions %d, want %d", snap.Evictions, golden.Evictions)
	}
}

// TestReplayMulticlassPerClassCSR checks the multiclass breakdown: the
// per-class CSR columns must aggregate exactly to the total CSR (the
// golden value pinned pre-refactor), and every class must be populated.
func TestReplayMulticlassPerClassCSR(t *testing.T) {
	_, tr, err := workload.GenerateMulticlass(0, workload.MulticlassConfig{
		Config: workload.Config{Queries: 4000, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	const goldenCSR = 0.6275609804719918
	capacity := CacheBytesForFraction(tr, 1)
	reg := telemetry.NewRegistry()
	res, _, err := ReplayWithRegistry(tr, core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CSR(); math.Abs(got-goldenCSR) > 1e-15 {
		t.Fatalf("multiclass CSR = %v, want %v", got, goldenCSR)
	}
	snap := reg.Snapshot()
	if len(snap.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(snap.Classes))
	}
	var costTotal, costSaved float64
	var refs int64
	for _, c := range snap.Classes {
		if c.References == 0 {
			t.Fatalf("class %d saw no references", c.Class)
		}
		costTotal += c.CostTotal
		costSaved += c.CostSaved
		refs += c.References
	}
	if refs != res.Stats.References {
		t.Fatalf("per-class references sum to %d, want %d", refs, res.Stats.References)
	}
	// Per-class cost sums must reconstruct the aggregate CSR exactly up to
	// float addition order.
	if math.Abs(costSaved/costTotal-res.CSR()) > 1e-12 {
		t.Fatalf("per-class CSR aggregate %v, total %v", costSaved/costTotal, res.CSR())
	}
}
