package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestDrilldownDeriveBeatsExact is the acceptance check of the semantic
// derivation subsystem: on the drilldown/rollup workload, derive-enabled
// LNC-RA must strictly beat exact-only LNC-RA on cost-savings ratio, with
// a non-trivial number of derived hits.
func TestDrilldownDeriveBeatsExact(t *testing.T) {
	_, tr, err := workload.StandardDrilldown(0, workload.Config{Queries: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasPlans() {
		t.Fatal("drilldown trace carries no plan descriptors")
	}
	capacity := CacheBytesForFraction(tr, 1)

	exact, _, err := Replay(tr, core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA})
	if err != nil {
		t.Fatal(err)
	}
	derived, _, d, err := ReplayDerived(tr,
		core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA}, derive.Config{})
	if err != nil {
		t.Fatal(err)
	}

	if derived.Stats.DerivedHits < 20 {
		t.Fatalf("DerivedHits = %d, want a meaningful number on the drilldown trace", derived.Stats.DerivedHits)
	}
	if derived.CSR() <= exact.CSR() {
		t.Fatalf("derive-enabled CSR %.4f must strictly beat exact-only CSR %.4f",
			derived.CSR(), exact.CSR())
	}
	if ds := d.Stats(); ds.Derived != derived.Stats.DerivedHits {
		t.Fatalf("deriver counted %d derivations, cache charged %d derived hits", ds.Derived, derived.Stats.DerivedHits)
	}
}

// TestReplayDerivedDeterministic pins replay determinism: candidate
// selection tie-breaks deterministically, so equal traces and configs
// give identical stats.
func TestReplayDerivedDeterministic(t *testing.T) {
	_, tr, err := workload.StandardDrilldown(0, workload.Config{Queries: 1200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	capacity := CacheBytesForFraction(tr, 1)
	a, _, _, err := ReplayDerived(tr, core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA}, derive.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := ReplayDerived(tr, core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA}, derive.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("replays diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestReplayDerivedTelemetry checks the derived outcome is visible end to
// end through the registry: per-class derived hits, the reference
// partition, and CSR consistency with the cache's own counters.
func TestReplayDerivedTelemetry(t *testing.T) {
	_, tr, err := workload.StandardDrilldown(0, workload.Config{Queries: 1500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	capacity := CacheBytesForFraction(tr, 1)
	res, _, _, err := ReplayDerived(tr,
		core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA, Sink: reg}, derive.Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.DerivedHits != res.Stats.DerivedHits {
		t.Fatalf("registry DerivedHits = %d, cache %d", snap.DerivedHits, res.Stats.DerivedHits)
	}
	if snap.References() != res.Stats.References {
		t.Fatalf("registry references = %d, cache %d (partition broken)", snap.References(), res.Stats.References)
	}
	if got, want := snap.CSR(), res.CSR(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("registry CSR = %.6f, cache %.6f", got, want)
	}
	var classDerived int64
	for _, c := range snap.Classes {
		classDerived += c.DerivedHits
	}
	if classDerived != snap.DerivedHits {
		t.Fatalf("per-class derived hits sum to %d, aggregate %d", classDerived, snap.DerivedHits)
	}
}
