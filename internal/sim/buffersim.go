package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/workload"
)

// BufferSimConfig parameterizes the WATCHMAN ↔ buffer-manager cooperation
// experiment of §3/§4.2 (Figure 7).
type BufferSimConfig struct {
	// Queries is the number of query submissions (paper: 17 000).
	Queries int
	// Seed drives workload generation.
	Seed int64
	// PoolBytes is the buffer pool size (paper: 15 MB).
	PoolBytes int64
	// CacheBytes is the WATCHMAN cache size (paper: 15 MB).
	CacheBytes int64
	// P0 is the redundancy threshold in [0, 1]: pages whose query
	// reference set is at least P0 cached are demoted on a hint. A
	// negative P0 disables hints entirely (the baseline).
	P0 float64
	// MeanInterarrival is the mean inter-arrival time in seconds.
	MeanInterarrival float64
}

func (c *BufferSimConfig) normalize() {
	if c.Queries <= 0 {
		c.Queries = 17000
	}
	if c.PoolBytes <= 0 {
		c.PoolBytes = 15 << 20
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 15 << 20
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 1
	}
}

// BufferSimResult reports the outcome of one cooperation run.
type BufferSimResult struct {
	P0             float64
	BufferStats    buffer.Stats
	CacheStats     core.Stats
	PageReferences int64
	HintsSent      int64
	PagesDemoted   int64
}

// BufferHitRatio returns the buffer pool hit ratio, the paper's Figure 7
// y-axis.
func (r BufferSimResult) BufferHitRatio() float64 { return r.BufferStats.HitRatio() }

// RunBufferSim runs the cooperation experiment over the given database and
// template set. Queries whose retrieved set is cached by WATCHMAN never
// reach the buffer pool; on every miss the query's page accesses stream
// through the pool. After WATCHMAN admits a retrieved set it hints the pool
// to demote the pages that became P0-redundant; the pool moves them to the
// eviction end of its LRU chain.
//
// The per-page query reference sets the paper describes are kept in
// compressed form — two counters per page: the number of distinct queries
// that ever referenced the page, and how many of those queries' retrieved
// sets are currently cached. This is one of the "compression techniques to
// minimize the amount of information necessary to compute the query
// reference set" that §3 mentions, and it keeps the experiment's memory
// footprint proportional to the page count, not to the 26-million-entry
// reference stream.
func RunBufferSim(db *relation.Database, templates []*workload.Template, cfg BufferSimConfig) (BufferSimResult, error) {
	cfg.normalize()
	eng := engine.New(db)
	pager := eng.Pager()
	pageSize := int64(db.PageSize)
	pool := buffer.NewPool(int(cfg.PoolBytes / pageSize))

	totalPages := pager.TotalPages()
	refCount := make([]int32, totalPages)    // distinct queries that referenced the page
	cachedCount := make([]int32, totalPages) // of those, how many are currently cached

	// PageIDs pack (relation, page); build a dense index for the counters.
	denseIndex := make(map[buffer.PageID]int32, totalPages)
	next := int32(0)
	for _, rel := range db.RelationNames() {
		for p := int64(0); p < pager.Pages(rel); p++ {
			denseIndex[pager.PageID(rel, p)] = next
			next++
		}
	}

	type queryInfo struct {
		plan     engine.Node
		seed     uint64
		size     int64
		cost     float64
		executed bool // whether its pages are in the reference counts
	}
	queries := make(map[string]*queryInfo)

	result := BufferSimResult{P0: cfg.P0}

	// pagesOf re-derives a query's page set deterministically.
	pagesOf := func(qi *queryInfo) ([]buffer.PageID, error) {
		var pages []buffer.PageID
		_, err := eng.EmitAccess(qi.plan, qi.seed, storage.SinkFunc(func(id buffer.PageID) {
			pages = append(pages, id)
		}))
		return pages, err
	}

	// The reference-set counters only track queries that have executed at
	// least once (only those contributed page references). A query admitted
	// on its very first miss is accounted for right after its execution
	// below, so OnAdmit/OnEvict only adjust counts for already-executed
	// queries.
	var hintErr error
	wm, err := core.New(core.Config{
		Capacity: cfg.CacheBytes,
		K:        4,
		Policy:   core.LNCRA,
		OnAdmit: func(e *core.Entry) {
			if cfg.P0 < 0 || hintErr != nil {
				return
			}
			qi := queries[e.ID]
			if qi == nil || !qi.executed {
				return
			}
			pages, err := pagesOf(qi)
			if err != nil {
				hintErr = err
				return
			}
			for _, pid := range pages {
				cachedCount[denseIndex[pid]]++
			}
			// The paper's hint moves *all* p₀-redundant pages to the LRU
			// end, not only the pages of the newly cached set. At p₀ = 0
			// every referenced page trivially qualifies — the "modified LRU
			// degenerates to MRU" case of Figure 7.
			result.HintsSent++
			for _, pid := range pool.LRUOrder() {
				di := denseIndex[pid]
				if refCount[di] > 0 && float64(cachedCount[di]) >= cfg.P0*float64(refCount[di]) {
					pool.Demote(pid)
					result.PagesDemoted++
				}
			}
		},
		OnEvict: func(e *core.Entry) {
			if cfg.P0 < 0 || hintErr != nil {
				return
			}
			qi := queries[e.ID]
			if qi == nil || !qi.executed {
				return
			}
			pages, err := pagesOf(qi)
			if err != nil {
				hintErr = err
				return
			}
			for _, pid := range pages {
				if di := denseIndex[pid]; cachedCount[di] > 0 {
					cachedCount[di]--
				}
			}
		},
	})
	if err != nil {
		return result, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	totalWeight := 0.0
	for _, t := range templates {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		totalWeight += w
	}

	now := 0.0
	for i := 0; i < cfg.Queries; i++ {
		now += rng.ExpFloat64() * cfg.MeanInterarrival
		t := pickWeighted(templates, totalWeight, rng)
		q := t.Gen(rng)
		// The cache reports entries under compressed IDs (its lookup key),
		// so the query map uses the same key.
		cid := core.CompressID(q.ID)
		qi := queries[cid]
		if qi == nil {
			est, err := eng.Estimate(q.Plan)
			if err != nil {
				return result, fmt.Errorf("sim: buffer: estimating %s: %w", t.Name, err)
			}
			qi = &queryInfo{
				plan: q.Plan,
				seed: core.Signature(cid),
				size: clampEstimate(est),
				cost: est.Cost,
			}
			queries[cid] = qi
		}

		// The paper's order of events: a cache hit serves the retrieved set
		// without touching the buffer pool; a miss executes the query
		// (streaming its page accesses through the pool), and only then is
		// the retrieved set offered to the cache — so admission hints see
		// the query's pages already accounted in the reference sets.
		if _, cached := wm.Peek(q.ID); !cached {
			sink := &storage.PoolSink{Pool: pool}
			n, err := eng.EmitAccess(qi.plan, qi.seed, sink)
			if err != nil {
				return result, err
			}
			if sink.Err != nil {
				return result, sink.Err
			}
			result.PageReferences += n
			if !qi.executed {
				qi.executed = true
				pages, err := pagesOf(qi)
				if err != nil {
					return result, err
				}
				for _, pid := range pages {
					refCount[denseIndex[pid]]++
				}
			}
		}
		wm.Reference(core.Request{
			QueryID: q.ID,
			Time:    now,
			Size:    qi.size,
			Cost:    qi.cost,
		})
		if hintErr != nil {
			return result, hintErr
		}
	}
	result.BufferStats = pool.Stats()
	result.CacheStats = wm.Stats()
	return result, nil
}

// pickWeighted draws a template proportionally to its weight.
func pickWeighted(templates []*workload.Template, totalWeight float64, rng *rand.Rand) *workload.Template {
	x := rng.Float64() * totalWeight
	for _, t := range templates {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		x -= w
		if x < 0 {
			return t
		}
	}
	return templates[len(templates)-1]
}

// clampEstimate converts an estimate to a positive retrieved-set size.
func clampEstimate(est engine.Est) int64 {
	w := int64(est.Schema.RowWidth())
	if w < 1 {
		w = 1
	}
	s := int64(est.Bytes)
	if s < w {
		return w
	}
	return s
}
