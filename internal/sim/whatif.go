package sim

import (
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/whatif"
)

// ReplayWhatIf replays a trace through one real cache with a ghost-cache
// matrix attached to its event stream, exactly as `serve -whatif` attaches
// one to the live sharded cache, and returns the real replay's Result
// alongside the matrix's final report. The matrix runs in blocking mode —
// a full ghost FIFO applies backpressure to the (offline) replay instead
// of shedding — so the report reflects every sampled reference, which is
// what lets tests validate the sampled estimates against brute-force full
// replays.
//
// wcfg.Base is overwritten with cfg: the ghosts counterfactual the exact
// configuration being replayed.
func ReplayWhatIf(tr *trace.Trace, cfg core.Config, wcfg whatif.Config) (Result, whatif.Report, error) {
	wcfg.Base = cfg
	wcfg.Blocking = true
	m, err := whatif.New(wcfg)
	if err != nil {
		return Result{}, whatif.Report{}, err
	}
	defer m.Close()
	cfg.Sink = core.MultiSink(cfg.Sink, m)
	res, _, err := Replay(tr, cfg)
	if err != nil {
		return Result{}, whatif.Report{}, err
	}
	rep := m.Report(0)
	return res, rep, nil
}
