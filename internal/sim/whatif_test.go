package sim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// TestWhatIfGhostFidelityRate1 is the ghost-fidelity golden test: at
// sampling rate 1 and scale 1 the ghost sees every reference the real
// cache serves, in order and in canonical form, so a same-policy ghost
// must finish with the real cache's Stats bit-for-bit — same decisions,
// same counters, same CSR. Any drift means event reconstruction lost
// information.
func TestWhatIfGhostFidelityRate1(t *testing.T) {
	_, tr, err := workload.StandardTPCD(0.005, workload.Config{Queries: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Capacity: CacheBytesForFraction(tr, 1),
		K:        4,
		Policy:   core.LNCRA,
	}
	res, rep, err := ReplayWhatIf(tr, cfg, whatif.Config{
		SampleRate: 1,
		Scales:     []float64{1},
		Policies:   []whatif.Policy{{Name: "lnc-ra", Kind: core.LNCRA}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefsSeen != int64(tr.Len()) || rep.RefsShed != 0 {
		t.Fatalf("matrix saw %d refs (shed %d), trace has %d", rep.RefsSeen, rep.RefsShed, tr.Len())
	}
	ghost := rep.Cells[0]
	if ghost.Stats != res.Stats {
		t.Errorf("rate-1 ghost diverged from the real cache:\n ghost %+v\n real  %+v", ghost.Stats, res.Stats)
	}
	if ghost.CSR != res.CSR() {
		t.Errorf("ghost CSR %v != real CSR %v", ghost.CSR, res.CSR())
	}
}

// TestWhatIfSampledAccuracy validates the SHARDS construction end to
// end: a rate-8 matrix over the full default grid (capacity ladder ×
// policy set) must estimate, for every cell, a CSR within 0.02 of the
// brute-force full replay of that configuration.
//
// The workload is the multiclass benchmark: its retrieved-set sizes stay
// within ~2 decades, so a 1/8 signature sample carries close to 1/8 of
// the working-set byte mass and the spatial-sampling premise holds. The
// TPC-D trace's extreme size tail (4 bytes to 70 KB over ~4600 distinct
// sets) makes the sampled mass fraction land far from 1/8 no matter the
// seed — a documented limit of fixed-rate spatial sampling, not a bug —
// so it is the fidelity golden above, not the accuracy workload.
func TestWhatIfSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force replay grid")
	}
	const rate = 8
	_, tr, err := workload.GenerateMulticlass(0, workload.MulticlassConfig{
		Config: workload.Config{Queries: 16000, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	capacity := CacheBytesForFraction(tr, 2)
	cfg := core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA}
	tuneWindow := max(admission.MinWindow, admission.DefaultWindow/rate)
	_, rep, err := ReplayWhatIf(tr, cfg, whatif.Config{
		SampleRate: rate,
		TuneWindow: tuneWindow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Cells), len(whatif.DefaultScales())*len(whatif.DefaultPolicies()); got != want {
		t.Fatalf("default matrix has %d cells, want %d", got, want)
	}
	if rep.RefsShed != 0 {
		t.Fatalf("blocking replay shed %d refs", rep.RefsShed)
	}

	// Brute-force comparator for each cell: a full (unsampled) replay of
	// the trace at the cell's modeled capacity under the cell's policy.
	full := make(map[string]float64)
	for _, c := range rep.Cells {
		key := fmt.Sprintf("%s/%v", c.Policy, c.Scale)
		ccfg := cfg
		ccfg.Capacity = c.ModeledBytes
		if c.Policy == "lnc-ra-adaptive" {
			// The ghost tuner rounds every tuneWindow sampled refs; the
			// full-stream equivalent cadence is one round per
			// tuneWindow×R references.
			ar, _, err := ReplayAdaptive(tr, ccfg, admission.Config{Window: tuneWindow * rate})
			if err != nil {
				t.Fatal(err)
			}
			full[key] = ar.CSR()
			continue
		}
		p, err := whatif.ParsePolicy(c.Policy)
		if err != nil {
			t.Fatal(err)
		}
		ccfg.Policy = p.Kind
		r, _, err := Replay(tr, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		full[key] = r.CSR()
	}

	const tolerance = 0.02
	for _, c := range rep.Cells {
		key := fmt.Sprintf("%s/%v", c.Policy, c.Scale)
		diff := math.Abs(c.CSR - full[key])
		if diff > tolerance {
			t.Errorf("cell %s: ghost CSR %.4f vs full-replay CSR %.4f (|Δ|=%.4f > %.2f)",
				key, c.CSR, full[key], diff, tolerance)
		} else {
			t.Logf("cell %s: ghost %.4f full %.4f |Δ|=%.4f", key, c.CSR, full[key], diff)
		}
	}
}
