package sim

import (
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/trace"
)

// ReplayDerived replays the trace with the semantic derivation subsystem
// enabled: a Deriver is installed as the cache's derivation hook (and,
// via core's auto-wiring, as an event sink, so it tracks cached content).
// Replays carry no materialized payloads, so derivations are
// bookkeeping-only — the cost accounting is exact (remote cost from the
// trace record, derivation cost from the ancestor's size) while the row
// rewrite itself is exercised by the equivalence tests. The deriver is
// returned for inspection. Candidate selection is deterministic, so equal
// traces give equal results.
func ReplayDerived(tr *trace.Trace, cfg core.Config, dcfg derive.Config) (Result, *core.Cache, *derive.Deriver, error) {
	d := derive.New(dcfg)
	cfg.Deriver = d
	res, c, err := Replay(tr, cfg)
	return res, c, d, err
}
