package sim

// The warm-vs-cold restart experiment: how much of the paper's cost
// savings does snapshot persistence actually preserve across a process
// restart? The trace is split in half; the first half warms a cache,
// whose state then makes a full round trip through the persist codec
// (encode → decode → restore into a fresh cache) before the second half
// replays. The comparison points are the uninterrupted run (no restart —
// the upper bound) and a cold restart (all learned state discarded — what
// a restart costs without persistence).

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/trace"
)

// RestartResult reports the warm-vs-cold restart experiment. The three
// Stats cover ONLY the second half of the trace (post-restart traffic):
// for the uninterrupted run they are the end-of-trace counters minus the
// midpoint checkpoint, for the restarted runs the final counters minus
// what each cache started the second half with.
type RestartResult struct {
	// Split is the record index at which the trace was cut.
	Split int
	// Uninterrupted is the second-half accounting of the run that never
	// restarted.
	Uninterrupted core.Stats
	// Warm is the second-half accounting after a snapshot + restore
	// restart.
	Warm core.Stats
	// Cold is the second-half accounting of a fresh cache (restart with
	// no persistence).
	Cold core.Stats
	// SnapshotBytes is the encoded snapshot size; SnapshotResident the
	// resident sets it captured.
	SnapshotBytes    int
	SnapshotResident int
	// RestoredResident is the resident count after restore (equals
	// SnapshotResident when the restore configuration matches).
	RestoredResident int
}

// secondHalf returns the counters accrued after the checkpoint.
func secondHalf(end, checkpoint core.Stats) core.Stats {
	end.Sub(checkpoint)
	return end
}

// replaySegment feeds records[from:to) through the cache.
func replaySegment(c *core.Cache, tr *trace.Trace, from, to int) {
	for i := from; i < to; i++ {
		rec := &tr.Records[i]
		req := core.Request{
			QueryID:   rec.QueryID,
			Time:      rec.Time,
			Class:     rec.Class,
			Size:      rec.Size,
			Cost:      rec.Cost,
			Relations: rec.Relations,
		}
		if rec.Plan != nil {
			req.Plan = rec.Plan
		}
		c.Reference(req)
	}
}

// ReplayRestart runs the restart experiment on the trace with the given
// cache configuration: replay the first half, snapshot through the real
// persist codec, restore into a fresh cache, replay the rest, and compare
// the second-half accounting against the uninterrupted and cold-restart
// runs. The trace must hold at least two records.
func ReplayRestart(tr *trace.Trace, cfg core.Config) (RestartResult, error) {
	n := tr.Len()
	if n < 2 {
		return RestartResult{}, fmt.Errorf("sim: restart experiment needs at least 2 records, trace %q has %d", tr.Name, n)
	}
	split := n / 2
	res := RestartResult{Split: split}

	// Uninterrupted run, checkpointed at the split.
	full, err := core.New(cfg)
	if err != nil {
		return res, err
	}
	replaySegment(full, tr, 0, split)
	checkpoint := full.Stats()
	replaySegment(full, tr, split, n)
	res.Uninterrupted = secondHalf(full.Stats(), checkpoint)

	// Warm restart: first half, snapshot round trip, second half.
	warmSrc, err := core.New(cfg)
	if err != nil {
		return res, err
	}
	replaySegment(warmSrc, tr, 0, split)
	var buf bytes.Buffer
	snap := persist.SnapshotCache(warmSrc, nil)
	if err := persist.Write(&buf, snap); err != nil {
		return res, fmt.Errorf("sim: restart snapshot: %w", err)
	}
	res.SnapshotBytes = buf.Len()
	res.SnapshotResident = snap.Resident()
	decoded, err := persist.Read(&buf)
	if err != nil {
		return res, fmt.Errorf("sim: restart snapshot decode: %w", err)
	}
	warm, err := core.New(cfg)
	if err != nil {
		return res, err
	}
	if _, err := persist.RestoreCache(warm, nil, decoded); err != nil {
		return res, fmt.Errorf("sim: restart restore: %w", err)
	}
	res.RestoredResident = warm.Resident()
	restoredAt := warm.Stats()
	replaySegment(warm, tr, split, n)
	res.Warm = secondHalf(warm.Stats(), restoredAt)

	// Cold restart: the second half against a fresh cache.
	cold, err := core.New(cfg)
	if err != nil {
		return res, err
	}
	replaySegment(cold, tr, split, n)
	res.Cold = cold.Stats()

	return res, nil
}
