package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestReplayRestartWarmMatchesUninterrupted is the ISSUE acceptance
// criterion: on a split TPC-D trace, the snapshot+restore run's
// second-half CSR is within 0.01 of the uninterrupted run and strictly
// beats the cold restart.
func TestReplayRestartWarmMatchesUninterrupted(t *testing.T) {
	_, tr, err := workload.StandardTPCD(0, workload.Config{Queries: 6000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	capacity := CacheBytesForFraction(tr, 1)
	res, err := ReplayRestart(tr, core.Config{Capacity: capacity, K: 4, Policy: core.LNCRA})
	if err != nil {
		t.Fatal(err)
	}
	warm, cold, full := res.Warm.CostSavingsRatio(), res.Cold.CostSavingsRatio(), res.Uninterrupted.CostSavingsRatio()
	t.Logf("second-half CSR: uninterrupted=%.4f warm=%.4f cold=%.4f (snapshot %d bytes, %d resident)",
		full, warm, cold, res.SnapshotBytes, res.SnapshotResident)
	if math.Abs(warm-full) > 0.01 {
		t.Fatalf("warm CSR %.4f deviates from uninterrupted %.4f by more than 0.01", warm, full)
	}
	if warm <= cold {
		t.Fatalf("warm CSR %.4f does not beat cold restart %.4f", warm, cold)
	}
	if res.RestoredResident != res.SnapshotResident {
		t.Fatalf("restored %d of %d resident sets", res.RestoredResident, res.SnapshotResident)
	}
}

// TestReplayRestartExactWithScanEvictor pins the stronger property the
// codec actually delivers with the deterministic evictor: the warm run is
// not merely close — it is bit-identical to the uninterrupted
// continuation.
func TestReplayRestartExactWithScanEvictor(t *testing.T) {
	_, tr, err := workload.StandardSetQuery(0, workload.Config{Queries: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	capacity := CacheBytesForFraction(tr, 2)
	res, err := ReplayRestart(tr, core.Config{Capacity: capacity, K: 3, Policy: core.LNCRA, Evictor: core.ScanEvictor})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm != res.Uninterrupted {
		t.Fatalf("warm second half diverged from uninterrupted:\n  warm %+v\n  full %+v", res.Warm, res.Uninterrupted)
	}
}

func TestReplayRestartTinyTrace(t *testing.T) {
	_, tr, err := workload.StandardTPCD(0, workload.Config{Queries: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayRestart(tr, core.Config{Capacity: 1 << 20, Policy: core.LNCRA}); err != nil {
		t.Fatal(err)
	}
	tr.Records = tr.Records[:1]
	if _, err := ReplayRestart(tr, core.Config{Capacity: 1 << 20, Policy: core.LNCRA}); err == nil {
		t.Fatal("single-record trace must be rejected")
	}
}
