package derive

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// descScan returns a detail-slice descriptor over the mini database.
func descScan(lo, hi int64) *engine.Descriptor {
	return &engine.Descriptor{
		Rel:   "fact",
		Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: lo, Hi: hi}},
		Cols:  []string{"day", "cat", "amt"},
	}
}

// newDerivedCache builds a single-threaded cache with a deriver installed.
func newDerivedCache(t *testing.T, d *Deriver, capacity int64) *core.Cache {
	t.Helper()
	c, err := core.New(core.Config{Capacity: capacity, K: 2, Policy: core.LNCRA, Deriver: d})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDeriverIndexFollowsLifecycle(t *testing.T) {
	d := New(Config{})
	c := newDerivedCache(t, d, 1<<20)

	anc := descScan(0, 40)
	c.Reference(core.Request{QueryID: "anc", Time: 1, Size: 4096, Cost: 500,
		Relations: []string{"fact"}, Plan: anc})
	if got := d.Candidates(); got != 1 {
		t.Fatalf("after admission: %d candidates, want 1", got)
	}

	// A plan-free admission is not indexed.
	c.Reference(core.Request{QueryID: "noplan", Time: 2, Size: 64, Cost: 500})
	if got := d.Candidates(); got != 1 {
		t.Fatalf("after plan-free admission: %d candidates, want 1", got)
	}

	// Invalidation drops the candidate.
	c.Invalidate("fact")
	if got := d.Candidates(); got != 0 {
		t.Fatalf("after invalidation: %d candidates, want 0", got)
	}
}

func TestDropRelations(t *testing.T) {
	d := New(Config{})
	c := newDerivedCache(t, d, 1<<20)
	c.Reference(core.Request{QueryID: "a", Time: 1, Size: 64, Cost: 100,
		Relations: []string{"fact"}, Plan: descScan(0, 40)})
	c.Reference(core.Request{QueryID: "b", Time: 2, Size: 64, Cost: 100,
		Relations: []string{"fact"}, Plan: descScan(0, 50)})
	if got := d.Candidates(); got != 2 {
		t.Fatalf("candidates = %d, want 2", got)
	}
	d.DropRelations("other")
	if got := d.Candidates(); got != 2 {
		t.Fatalf("dropping an unrelated relation removed candidates: %d", got)
	}
	d.DropRelations("fact")
	if got := d.Candidates(); got != 0 {
		t.Fatalf("candidates after DropRelations = %d, want 0", got)
	}
	if _, ok := d.Derive(core.Request{QueryID: "c", Size: 32, Cost: 100, Plan: descScan(5, 10)}); ok {
		t.Fatal("derived from a dropped relation")
	}
}

func TestDeriveBookkeeping(t *testing.T) {
	d := New(Config{PageSize: 4096})
	c := newDerivedCache(t, d, 1<<20)

	c.Reference(core.Request{QueryID: "anc", Time: 1, Size: 8192, Cost: 500,
		Relations: []string{"fact"}, Plan: descScan(0, 40)})

	// A narrower slice derives: derivation cost = 2 pages of the 8 KiB
	// ancestor, remote cost 400.
	hit, _ := c.Reference(core.Request{QueryID: "child", Time: 2, Size: 1024, Cost: 400,
		Relations: []string{"fact"}, Plan: descScan(5, 20)})
	if !hit {
		t.Fatal("derivable reference returned hit=false")
	}
	st := c.Stats()
	if st.DerivedHits != 1 {
		t.Fatalf("DerivedHits = %d, want 1", st.DerivedHits)
	}
	if st.DeriveCost != 2 {
		t.Fatalf("DeriveCost = %g, want 2 (two pages of the ancestor)", st.DeriveCost)
	}
	if want := 400.0 - 2; st.CostSaved != want {
		t.Fatalf("CostSaved = %g, want %g (residual)", st.CostSaved, want)
	}
	if st.CostTotal != 900 {
		t.Fatalf("CostTotal = %g, want 900", st.CostTotal)
	}
	// Two attempts: the ancestor's own miss consulted the (empty) deriver
	// too; one derivation.
	if ds := d.Stats(); ds.Derived != 1 || ds.Attempts != 2 {
		t.Fatalf("deriver stats = %+v, want 2 attempts, 1 derived", ds)
	}

	// The derived set was admitted at residual cost: a repeat of the same
	// query is now an exact hit saving the full remote cost.
	hit, _ = c.Reference(core.Request{QueryID: "child", Time: 3, Size: 1024, Cost: 400,
		Relations: []string{"fact"}, Plan: descScan(5, 20)})
	if !hit {
		t.Fatal("repeat of derived query should be an exact hit")
	}
	st = c.Stats()
	if st.Hits != 1 || st.DerivedHits != 1 {
		t.Fatalf("after repeat: Hits=%d DerivedHits=%d, want 1/1", st.Hits, st.DerivedHits)
	}
	if entries := c.Entries(); len(entries) != 2 {
		t.Fatalf("resident entries = %d, want 2 (ancestor + derived set)", len(entries))
	}
}

func TestDeriveDeclinesWhenNotProfitable(t *testing.T) {
	d := New(Config{PageSize: 4096})
	c := newDerivedCache(t, d, 1<<20)

	// A huge ancestor: re-scanning it costs more than remote execution.
	c.Reference(core.Request{QueryID: "anc", Time: 1, Size: 1 << 19, Cost: 500,
		Relations: []string{"fact"}, Plan: descScan(0, 40)})
	hit, _ := c.Reference(core.Request{QueryID: "child", Time: 2, Size: 64, Cost: 10,
		Relations: []string{"fact"}, Plan: descScan(5, 20)})
	if hit {
		t.Fatal("derivation costlier than remote execution must not hit")
	}
	if st := c.Stats(); st.DerivedHits != 0 {
		t.Fatalf("DerivedHits = %d, want 0", st.DerivedHits)
	}
}

func TestDeriveDeterministicTieBreak(t *testing.T) {
	d := New(Config{PageSize: 4096})
	c := newDerivedCache(t, d, 1<<20)

	// Two equally sized subsuming ancestors: selection must tie-break on
	// ascending ID, deterministically.
	c.Reference(core.Request{QueryID: "b-anc", Time: 1, Size: 4096, Cost: 500,
		Relations: []string{"fact"}, Plan: descScan(0, 50)})
	c.Reference(core.Request{QueryID: "a-anc", Time: 2, Size: 4096, Cost: 500,
		Relations: []string{"fact"}, Plan: descScan(0, 45)})

	req := core.Request{QueryID: "child", Size: 128, Cost: 400, Plan: descScan(5, 20)}
	for i := 0; i < 32; i++ {
		dv, ok := d.Derive(req)
		if !ok {
			t.Fatal("expected derivation")
		}
		if dv.AncestorID != "a-anc" {
			t.Fatalf("iteration %d picked %q, want deterministic \"a-anc\"", i, dv.AncestorID)
		}
	}
}

func TestDeriveMaterializesPayload(t *testing.T) {
	eng := engine.New(miniDB())
	d := New(Config{Engine: eng, PageSize: 4096})
	c := newDerivedCache(t, d, 1<<20)

	anc := descScan(0, 40)
	ancRes := mustExec(t, eng, anc.Plan())
	c.Reference(core.Request{QueryID: "anc", Time: 1, Size: ancRes.Bytes(), Cost: 500,
		Relations: []string{"fact"}, Payload: ancRes, Plan: anc})

	q := descScan(5, 20)
	want := mustExec(t, eng, q.Plan())
	hit, payload := c.Reference(core.Request{QueryID: "child", Time: 2, Size: want.Bytes(), Cost: 400,
		Relations: []string{"fact"}, Plan: q})
	if !hit {
		t.Fatal("expected derived hit")
	}
	got, ok := payload.(*engine.Result)
	if !ok {
		t.Fatalf("payload is %T, want *engine.Result", payload)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("derived %d rows, remote %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], want.Rows[i])
			}
		}
	}
	if ds := d.Stats(); ds.Rewrites != 1 {
		t.Fatalf("Rewrites = %d, want 1", ds.Rewrites)
	}
}
