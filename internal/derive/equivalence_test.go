package derive

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/storage"
)

// The derivation equivalence corpus: for every (ancestor, query) pair the
// containment rules accept, executing the query remotely and rewriting it
// over the ancestor's materialized result must produce identical rows in
// identical order. The grid test walks the rule grid deterministically;
// the fuzz target searches the pair space randomly. CI runs both in short
// mode as the derivation smoke.

// miniDB is a one-relation database small enough to execute exhaustively.
func miniDB() *relation.Database {
	db := &relation.Database{
		Name:     "mini",
		PageSize: 512,
		Relations: map[string]*relation.Relation{
			"fact": {
				Name: "fact", Rows: 500, Seed: 0xfeedbeef,
				Columns: []relation.Column{
					{Name: "id", Kind: relation.KindSequential, Width: 8},
					{Name: "day", Kind: relation.KindUniform, Cardinality: 60, Width: 4},
					{Name: "cat", Kind: relation.KindUniform, Cardinality: 5, Width: 4},
					{Name: "flag", Kind: relation.KindUniform, Cardinality: 2, Width: 1},
					{Name: "amt", Kind: relation.KindUniform, Cardinality: 97, Width: 8},
				},
			},
		},
	}
	if err := db.Validate(); err != nil {
		panic(err)
	}
	return db
}

// mustExec executes a plan, discarding page references.
func mustExec(t testing.TB, eng *engine.Engine, n engine.Node) *engine.Result {
	t.Helper()
	var sink storage.CountingSink
	res, err := eng.Execute(n, &sink)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res
}

// assertEquivalent derives q from anc and compares against remote
// execution, row for row.
func assertEquivalent(t *testing.T, eng *engine.Engine, anc, q *engine.Descriptor) {
	t.Helper()
	if !engine.Subsumes(anc, q) {
		t.Fatalf("Subsumes(%+v, %+v) = false, want true", anc, q)
	}
	ancRes := mustExec(t, eng, anc.Plan())
	want := mustExec(t, eng, q.Plan())
	got, err := engine.Rewrite(anc, q, ancRes)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("derived %d rows, remote %d rows", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("row %d: derived width %d, remote width %d", i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d col %d: derived %d, remote %d\nderived: %v\nremote:  %v",
					i, j, got.Rows[i][j], want.Rows[i][j], got.Rows[i], want.Rows[i])
			}
		}
	}
	if got.Bytes() != want.Bytes() {
		t.Fatalf("derived size %d, remote size %d", got.Bytes(), want.Bytes())
	}
}

// TestRewriteEquivalenceGrid walks the rewrite rule grid: R1 re-filters
// with and without residuals, R2 roll-ups for every aggregate kind
// (including AVG from SUM+COUNT), residual slices on group columns,
// scalar roll-ups, R3 re-aggregation, and empty results.
func TestRewriteEquivalenceGrid(t *testing.T) {
	eng := engine.New(miniDB())

	detail := &engine.Descriptor{
		Rel:   "fact",
		Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 10, Hi: 40}},
		Cols:  []string{"day", "cat", "flag", "amt"},
	}
	cube := &engine.Descriptor{
		Rel:     "fact",
		Preds:   []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 10, Hi: 40}},
		GroupBy: []string{"day", "cat", "flag"},
		Aggs: []engine.AggSpec{
			{Kind: engine.AggCount, As: "n"},
			{Kind: engine.AggSum, Col: "amt", As: "s"},
			{Kind: engine.AggMin, Col: "amt", As: "mn"},
			{Kind: engine.AggMax, Col: "amt", As: "mx"},
		},
	}

	cases := []struct {
		name string
		anc  *engine.Descriptor
		q    *engine.Descriptor
	}{
		{"refilter-project", detail, &engine.Descriptor{
			Rel:   "fact",
			Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 15, Hi: 30}, {Col: "cat", Op: engine.OpEQ, Lo: 2}},
			Cols:  []string{"day", "amt"},
		}},
		{"refilter-identity-preds", detail, &engine.Descriptor{
			Rel:   "fact",
			Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 10, Hi: 40}},
			Cols:  []string{"amt", "day"},
		}},
		{"refilter-empty", detail, &engine.Descriptor{
			Rel:   "fact",
			Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 12, Hi: 13}, {Col: "cat", Op: engine.OpEQ, Lo: 99}},
			Cols:  []string{"day"},
		}},
		{"rollup-count-sum", cube, &engine.Descriptor{
			Rel:     "fact",
			Preds:   []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 10, Hi: 40}},
			GroupBy: []string{"cat"},
			Aggs: []engine.AggSpec{
				{Kind: engine.AggCount, As: "cnt"},
				{Kind: engine.AggSum, Col: "amt", As: "total"},
			},
		}},
		{"rollup-min-max", cube, &engine.Descriptor{
			Rel:     "fact",
			Preds:   []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 10, Hi: 40}},
			GroupBy: []string{"flag", "cat"},
			Aggs: []engine.AggSpec{
				{Kind: engine.AggMin, Col: "amt", As: "lo"},
				{Kind: engine.AggMax, Col: "amt", As: "hi"},
			},
		}},
		{"rollup-avg", cube, &engine.Descriptor{
			Rel:     "fact",
			Preds:   []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 10, Hi: 40}},
			GroupBy: []string{"cat"},
			Aggs:    []engine.AggSpec{{Kind: engine.AggAvg, Col: "amt", As: "avg_amt"}},
		}},
		{"rollup-residual-slice", cube, &engine.Descriptor{
			Rel:     "fact",
			Preds:   []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 12, Hi: 25}, {Col: "flag", Op: engine.OpEQ, Lo: 1}},
			GroupBy: []string{"cat"},
			Aggs:    []engine.AggSpec{{Kind: engine.AggSum, Col: "amt", As: "total"}},
		}},
		{"rollup-scalar", cube, &engine.Descriptor{
			Rel:   "fact",
			Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 10, Hi: 40}, {Col: "cat", Op: engine.OpEQ, Lo: 3}},
			Aggs: []engine.AggSpec{
				{Kind: engine.AggAvg, Col: "amt", As: "a"},
				{Kind: engine.AggCount, As: "n"},
				{Kind: engine.AggSum, Col: "amt", As: "s"},
			},
		}},
		{"rollup-scalar-empty", cube, &engine.Descriptor{
			Rel:   "fact",
			Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 12, Hi: 12}, {Col: "cat", Op: engine.OpEQ, Lo: 99}},
			Aggs: []engine.AggSpec{
				{Kind: engine.AggCount, As: "n"},
				{Kind: engine.AggMin, Col: "amt", As: "mn"},
				{Kind: engine.AggAvg, Col: "amt", As: "a"},
			},
		}},
		{"aggregate-over-detail", detail, &engine.Descriptor{
			Rel:     "fact",
			Preds:   []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 12, Hi: 20}},
			GroupBy: []string{"cat"},
			Aggs: []engine.AggSpec{
				{Kind: engine.AggCount, As: "n"},
				{Kind: engine.AggSum, Col: "amt", As: "s"},
				{Kind: engine.AggAvg, Col: "amt", As: "a"},
				{Kind: engine.AggMin, Col: "amt", As: "mn"},
				{Kind: engine.AggMax, Col: "amt", As: "mx"},
			},
		}},
		{"aggregate-over-detail-scalar", detail, &engine.Descriptor{
			Rel:   "fact",
			Preds: []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 10, Hi: 40}, {Col: "flag", Op: engine.OpEQ, Lo: 0}},
			Aggs:  []engine.AggSpec{{Kind: engine.AggSum, Col: "amt", As: "s"}},
		}},
		{"grouped-projection", cube, &engine.Descriptor{
			Rel:     "fact",
			Preds:   []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: 10, Hi: 40}},
			GroupBy: []string{"cat", "flag"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertEquivalent(t, eng, tc.anc, tc.q)
		})
	}
}

// randomPair draws a random (ancestor, query) pair: the ancestor is a
// random detail slice or cube over "fact", the query a random narrowing
// of it. Construction aims for subsumable pairs but does not guarantee
// them; the fuzz body only checks equivalence when Subsumes accepts.
func randomPair(rng *rand.Rand) (anc, q *engine.Descriptor) {
	cols := []string{"day", "cat", "flag", "amt"}
	aggCols := []string{"amt", "day", "cat"}

	lo := rng.Int63n(50)
	hi := lo + rng.Int63n(60-lo)
	ancPreds := []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: lo, Hi: hi}}

	// Query predicates: narrow the day window, maybe slice another column.
	qlo := lo + rng.Int63n(hi-lo+1)
	qhi := qlo + rng.Int63n(hi-qlo+1)
	qPreds := []engine.Pred{{Col: "day", Op: engine.OpRange, Lo: qlo, Hi: qhi}}
	extra := ""
	if rng.Intn(2) == 0 {
		extra = []string{"cat", "flag"}[rng.Intn(2)]
		qPreds = append(qPreds, engine.Pred{Col: extra, Op: engine.OpEQ, Lo: rng.Int63n(5)})
	}

	if rng.Intn(2) == 0 {
		// Detail ancestor; query is a scan or an aggregate over it.
		anc = &engine.Descriptor{Rel: "fact", Preds: ancPreds, Cols: cols}
		if rng.Intn(2) == 0 {
			out := []string{cols[rng.Intn(len(cols))], cols[rng.Intn(len(cols))]}
			q = &engine.Descriptor{Rel: "fact", Preds: qPreds, Cols: out}
		} else {
			q = &engine.Descriptor{Rel: "fact", Preds: qPreds,
				GroupBy: []string{[]string{"cat", "flag"}[rng.Intn(2)]},
				Aggs:    randomAggs(rng, aggCols)}
		}
		return anc, q
	}

	// Cube ancestor; query rolls it up.
	anc = &engine.Descriptor{
		Rel: "fact", Preds: ancPreds,
		GroupBy: []string{"day", "cat", "flag"},
		Aggs: []engine.AggSpec{
			{Kind: engine.AggCount, As: "n"},
			{Kind: engine.AggSum, Col: "amt", As: "s"},
			{Kind: engine.AggMin, Col: "amt", As: "mn"},
			{Kind: engine.AggMax, Col: "amt", As: "mx"},
		},
	}
	var group []string
	for _, g := range []string{"day", "cat", "flag"} {
		if rng.Intn(2) == 0 {
			group = append(group, g)
		}
	}
	q = &engine.Descriptor{Rel: "fact", Preds: qPreds, GroupBy: group, Aggs: randomCubeAggs(rng)}
	return anc, q
}

// randomAggs draws 1..3 aggregates over the given columns (R3 can
// aggregate anything the detail set retains).
func randomAggs(rng *rand.Rand, cols []string) []engine.AggSpec {
	kinds := []engine.AggKind{engine.AggCount, engine.AggSum, engine.AggAvg, engine.AggMin, engine.AggMax}
	n := 1 + rng.Intn(3)
	out := make([]engine.AggSpec, 0, n)
	for i := 0; i < n; i++ {
		k := kinds[rng.Intn(len(kinds))]
		sp := engine.AggSpec{Kind: k, As: []string{"a0", "a1", "a2"}[i]}
		if k != engine.AggCount {
			sp.Col = cols[rng.Intn(len(cols))]
		}
		out = append(out, sp)
	}
	return out
}

// randomCubeAggs draws aggregates derivable from the cube's partials.
func randomCubeAggs(rng *rand.Rand) []engine.AggSpec {
	kinds := []engine.AggKind{engine.AggCount, engine.AggSum, engine.AggAvg, engine.AggMin, engine.AggMax}
	n := 1 + rng.Intn(3)
	out := make([]engine.AggSpec, 0, n)
	for i := 0; i < n; i++ {
		k := kinds[rng.Intn(len(kinds))]
		sp := engine.AggSpec{Kind: k, As: []string{"a0", "a1", "a2"}[i]}
		if k != engine.AggCount {
			sp.Col = "amt"
		}
		out = append(out, sp)
	}
	return out
}

// FuzzRewriteEquivalence fuzzes the equivalence property: every pair the
// containment rules accept must rewrite bit-identically to remote
// execution. The seed corpus covers the rule grid; `go test` replays it
// as the CI smoke, `go test -fuzz` explores further.
func FuzzRewriteEquivalence(f *testing.F) {
	for seed := int64(0); seed < 24; seed++ {
		f.Add(seed)
	}
	eng := engine.New(miniDB())
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 8; i++ {
			anc, q := randomPair(rng)
			if !engine.Subsumes(anc, q) {
				continue
			}
			assertEquivalent(t, eng, anc, q)
		}
	})
}
