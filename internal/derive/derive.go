// Package derive is the semantic derivation subsystem of the WATCHMAN
// reproduction: it answers cache misses from cached retrieved sets that
// are not exact matches but *subsume* the incoming query — a superset
// scan answerable by re-filtering, or a finer aggregate answerable by
// rolling up along the group-by hierarchy ("don't trash your intermediate
// results, cache 'em").
//
// The Deriver keeps a per-relation index of the plan descriptors of
// currently cached entries, maintained off the cache's event stream (it
// implements core.EventSink; core.New attaches it automatically when it
// is installed as Config.Deriver). On a miss it scans the candidates for
// the cheapest subsuming ancestor and succeeds only when the estimator
// says the derivation costs strictly less than remote execution. When the
// ancestor's payload is a materialized engine result, the answer is
// rewritten row-for-row (bit-identical to remote execution — the
// equivalence corpus proves it); in bookkeeping replays without payloads
// only the cost accounting is derived.
//
// Derive runs under the owning cache's execution context (single-
// threaded, or with a shard mutex held) and takes only its own internal
// lock, so shards may consult one shared Deriver concurrently.
package derive

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
)

// Config parameterizes a Deriver.
type Config struct {
	// Engine, if non-nil, lets the deriver estimate remote costs for
	// requests that do not carry them (the concurrent Load path) using
	// the closed-form estimator. Rewriting cached results needs no
	// engine: it is pure row algebra over the payload.
	Engine *engine.Engine
	// PageSize is the page size of the derivation cost model (a
	// derivation costs the pages of the ancestor set it re-scans). Zero
	// selects the experiments' default.
	PageSize int
}

// Stats are the deriver's cumulative counters.
type Stats struct {
	// Attempts counts Derive calls that carried a usable descriptor.
	Attempts int64 `json:"attempts"`
	// Derived counts successful derivations.
	Derived int64 `json:"derived"`
	// Rewrites counts derivations that materialized rows (an ancestor
	// payload was present), as opposed to bookkeeping-only outcomes.
	Rewrites int64 `json:"rewrites"`
}

// candidate is one cached entry the deriver may rewrite against.
type candidate struct {
	id      string
	desc    *engine.Descriptor
	payload *engine.Result // nil in bookkeeping replays
	size    int64
}

// Deriver implements core.Deriver and core.EventSink: a match-and-rewrite
// engine over the descriptors of currently cached entries.
type Deriver struct {
	cfg Config

	// mu guards byRel: Emit and DropRelations write, Derive only reads,
	// so concurrent misses across shards scan the index in parallel.
	mu    sync.RWMutex
	byRel map[string]map[string]*candidate

	attempts atomic.Int64
	derived  atomic.Int64
	rewrites atomic.Int64
}

// New creates an empty deriver.
func New(cfg Config) *Deriver {
	return &Deriver{cfg: cfg, byRel: make(map[string]map[string]*candidate)}
}

// Stats returns a snapshot of the deriver's counters.
func (d *Deriver) Stats() Stats {
	return Stats{
		Attempts: d.attempts.Load(),
		Derived:  d.derived.Load(),
		Rewrites: d.rewrites.Load(),
	}
}

// DropRelations removes every indexed candidate over the given base
// relations. The sharded front calls it at the START of an invalidation
// — before the per-shard sweep begins — so a reference racing the sweep
// cannot derive from a candidate in a shard the sweep has not reached
// yet and admit pre-update data into a shard it already has. (The
// per-entry Invalidate events that follow are then no-ops here.)
func (d *Deriver) DropRelations(relations ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range relations {
		delete(d.byRel, r)
	}
}

// Candidates returns the number of cached entries currently indexed.
func (d *Deriver) Candidates() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, rel := range d.byRel {
		n += len(rel)
	}
	return n
}

// Emit maintains the candidate index off the cache lifecycle stream:
// admissions with a descriptor enter, evictions and invalidations leave.
// It implements core.EventSink.
func (d *Deriver) Emit(ev core.Event) {
	switch ev.Kind {
	case core.EventMissAdmitted, core.EventRestore:
		// Restore events re-announce residency recovered from a snapshot;
		// they index exactly like a fresh admission.
		if ev.Entry == nil {
			return
		}
		desc, ok := ev.Entry.Plan.(*engine.Descriptor)
		if !ok || desc == nil {
			return
		}
		// The Entry pointer itself must not outlive Emit; copy the fields
		// the index needs. The payload pointer is safe to keep: results
		// are immutable once materialized, and coherence events drop the
		// candidate before the underlying data could go stale.
		c := &candidate{id: ev.ID, desc: desc, size: ev.Size}
		if res, ok := ev.Entry.Payload.(*engine.Result); ok {
			c.payload = res
		}
		d.mu.Lock()
		rel := d.byRel[desc.Rel]
		if rel == nil {
			rel = make(map[string]*candidate)
			d.byRel[desc.Rel] = rel
		}
		rel[ev.ID] = c
		d.mu.Unlock()
	case core.EventEvict, core.EventInvalidate:
		if ev.Entry == nil {
			return
		}
		desc, ok := ev.Entry.Plan.(*engine.Descriptor)
		if !ok || desc == nil {
			return
		}
		d.mu.Lock()
		if rel := d.byRel[desc.Rel]; rel != nil {
			delete(rel, ev.ID)
			if len(rel) == 0 {
				delete(d.byRel, desc.Rel)
			}
		}
		d.mu.Unlock()
	case core.EventHit, core.EventMissRejected, core.EventExternalMiss, core.EventHitDerived:
		// Reference outcomes do not change residency, so the candidate
		// index has nothing to learn from them.
	}
}

// Derive implements core.Deriver: it searches the indexed candidates for
// the cheapest cached ancestor subsuming the request's plan and, when
// derivation beats the remote cost, returns the derived outcome. The
// remote-cost basis is req.Cost when positive; otherwise the engine's
// estimate (requests from the concurrent Load path, whose size and cost
// normally come from the loader). Candidate selection is deterministic:
// least derivation cost, ties broken by ascending ancestor ID.
func (d *Deriver) Derive(req core.Request) (core.Derivation, bool) {
	desc, ok := req.Plan.(*engine.Descriptor)
	if !ok || desc == nil {
		return core.Derivation{}, false
	}
	d.attempts.Add(1)

	remote := req.Cost
	size := req.Size
	if remote <= 0 {
		if d.cfg.Engine == nil {
			return core.Derivation{}, false
		}
		est, err := d.cfg.Engine.Estimate(desc.Plan())
		if err != nil {
			return core.Derivation{}, false
		}
		remote = math.Max(1, math.Round(est.Cost))
		if size <= 0 {
			size = int64(math.Round(est.Bytes))
		}
	}

	m := engine.NewMatcher(desc)
	d.mu.RLock()
	var best *candidate
	var bestCost float64
	for _, c := range d.byRel[desc.Rel] {
		if c.id == req.QueryID || !m.Subsumes(c.desc) {
			continue
		}
		cost := engine.DeriveCost(c.size, d.cfg.PageSize)
		if cost >= remote {
			continue
		}
		if best == nil || cost < bestCost || (cost == bestCost && c.id < best.id) {
			best, bestCost = c, cost
		}
	}
	d.mu.RUnlock()
	if best == nil {
		return core.Derivation{}, false
	}

	out := core.Derivation{Cost: bestCost, Remote: remote, AncestorID: best.id, Size: size}
	if best.payload != nil {
		res, err := engine.Rewrite(best.desc, desc, best.payload)
		if err != nil {
			// Subsumes held, so this is a programming error; fail the
			// derivation rather than serve a wrong answer.
			return core.Derivation{}, false
		}
		out.Payload = res
		out.Size = res.Bytes()
		d.rewrites.Add(1)
	}
	if out.Size <= 0 {
		// Without a payload, an estimate, or a request size there is
		// nothing coherent to account; decline.
		return core.Derivation{}, false
	}
	d.derived.Add(1)
	return out, true
}
