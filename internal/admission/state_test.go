package admission

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// tunedState runs enough bimodal traffic through a tuner to move θ off
// the static 1 and returns the tuner plus its exported state.
func tunedState(t *testing.T) (*Tuner, *TunerState) {
	t.Helper()
	tn, err := New(Config{Capacity: 8 << 10, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	p := tn.NewProfile()
	rng := rand.New(rand.NewSource(3))
	now := 0.0
	for i := 0; i < 1000; i++ {
		now += rng.Float64()
		id := core.CompressID("hot")
		if rng.Intn(4) == 0 {
			id = core.CompressID("cold")
		}
		if p.Record(Sample{ID: id, Sig: core.Signature(id), Size: rng.Int63n(200) + 1,
			Cost: float64(rng.Intn(500)) + 1, Time: now}) {
			tn.TuneOnce()
		}
	}
	// Leave a partial window buffered so the export carries samples.
	for i := 0; i < 20; i++ {
		now++
		p.Record(Sample{ID: "tail", Sig: core.Signature("tail"), Size: 10, Cost: 5, Time: now})
	}
	return tn, tn.ExportState()
}

func TestTunerExportRestore(t *testing.T) {
	src, st := tunedState(t)
	if len(st.Arms) != len(src.Grid()) {
		t.Fatalf("exported %d arms for a %d-candidate grid", len(st.Arms), len(src.Grid()))
	}
	if len(st.Samples) == 0 {
		t.Fatal("export must carry the buffered partial window")
	}

	dst, err := New(Config{Capacity: 8 << 10, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if dst.Threshold() != st.Theta {
		t.Fatalf("θ = %g, want %g", dst.Threshold(), st.Theta)
	}
	// The re-export must carry the same θ, arm scores and samples.
	re := dst.ExportState()
	if re.Theta != st.Theta || !reflect.DeepEqual(re.Arms, st.Arms) {
		t.Fatalf("re-export differs:\n  want %+v\n  got  %+v", st, re)
	}
	if len(re.Samples) != len(st.Samples) {
		t.Fatalf("re-export carries %d samples, want %d", len(re.Samples), len(st.Samples))
	}

	// The restored samples must be scorable: a synchronous round runs on
	// them without error (20 samples ≥ the 16-sample minimum).
	if _, ok := dst.TuneOnce(); !ok {
		t.Fatal("restored window did not score")
	}
}

// TestTunerRestorePreconditions: a tuner that already completed rounds
// must refuse a restore, and nonsense thresholds are rejected.
func TestTunerRestorePreconditions(t *testing.T) {
	src, st := tunedState(t)
	if err := src.RestoreState(st); err == nil {
		t.Fatal("restore into a tuner with completed rounds must fail")
	}
	dst, err := New(Config{Capacity: 8 << 10, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreState(&TunerState{Theta: 0}); err == nil {
		t.Fatal("zero θ must be rejected")
	}
	if err := dst.RestoreState(&TunerState{Theta: -2}); err == nil {
		t.Fatal("negative θ must be rejected")
	}
	if err := dst.RestoreState(&TunerState{Theta: math.NaN()}); err == nil {
		t.Fatal("NaN θ must be rejected")
	}
	if err := dst.RestoreState(&TunerState{Theta: math.Inf(1)}); err == nil {
		t.Fatal("infinite θ must be rejected")
	}
	// Poisoned arm scores are skipped, not installed.
	if err := dst.RestoreState(&TunerState{Theta: 1,
		Arms: []ArmState{{Theta: 1, Score: math.NaN(), Seeded: true}}}); err != nil {
		t.Fatal(err)
	}
	for _, a := range dst.ExportState().Arms {
		if a.Theta == 1 && a.Seeded {
			t.Fatal("NaN-scored arm must stay cold")
		}
	}
}

// TestTunerRestoreGridMismatch: candidates missing from the restored grid
// are ignored, present ones keep their smoothed scores.
func TestTunerRestoreGridMismatch(t *testing.T) {
	dst, err := New(Config{Capacity: 8 << 10, Window: 64, Grid: []float64{0.5, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	st := &TunerState{
		Theta: 2,
		Arms: []ArmState{
			{Theta: 0.25, Score: 0.9, Seeded: true}, // not on the grid: ignored
			{Theta: 2, Score: 0.7, Seeded: true},
		},
	}
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	re := dst.ExportState()
	if re.Theta != 2 {
		t.Fatalf("θ = %g", re.Theta)
	}
	for _, a := range re.Arms {
		switch a.Theta {
		case 2:
			if !a.Seeded || a.Score != 0.7 {
				t.Fatalf("θ=2 arm = %+v", a)
			}
		default:
			if a.Seeded {
				t.Fatalf("arm %+v should be cold", a)
			}
		}
	}
}
