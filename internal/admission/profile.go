package admission

import "sync"

// Sample is one observed reference, in the canonical form the shadow
// evaluator replays: ID must be a core.CompressID result and Sig its
// core.Signature, exactly as the sharded layer routes requests.
type Sample struct {
	// ID is the compressed query ID.
	ID string
	// Sig is the signature of ID.
	Sig uint64
	// Size is the retrieved set size in bytes.
	Size int64
	// Cost is the execution cost in logical block reads.
	Cost float64
	// Time is the reference time in logical seconds.
	Time float64
	// Relations lists the query's base relations, so shadow caches honor
	// the same coherence invalidations the live cache does.
	Relations []string
}

// Profile is one producer's buffer of recent reference samples. Each shard
// owns a Profile and records every reference it serves into it; the Tuner
// drains all profiles when a tuning round fires. A Profile holds at most
// one window's worth of samples — if tuning falls behind, the oldest
// samples are overwritten, keeping memory bounded.
//
// Record takes the profile's own mutex, never the tuner's, so producers
// only ever contend with the (rare) tuning-round drain, not with each
// other.
type Profile struct {
	t *Tuner

	mu      sync.Mutex
	samples []Sample // ring buffer once len == cap
	next    int      // ring write position
	wrapped bool     // true once the ring has overwritten old samples
}

// Record stores one reference sample and reports whether the tuner's
// window just filled — the caller should then run (or trigger) a tuning
// round via TuneOnce or TriggerAsync.
func (p *Profile) Record(s Sample) (windowFull bool) {
	p.mu.Lock()
	if len(p.samples) < cap(p.samples) {
		p.samples = append(p.samples, s)
	} else {
		p.samples[p.next] = s
		p.wrapped = true
	}
	p.next = (p.next + 1) % cap(p.samples)
	p.mu.Unlock()
	return p.t.noteRecorded()
}

// drain removes and returns all buffered samples in arrival order.
func (p *Profile) drain() []Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Sample
	if p.wrapped {
		// Ring wrapped: oldest sample sits at the write position.
		out = make([]Sample, 0, cap(p.samples))
		out = append(out, p.samples[p.next:]...)
		out = append(out, p.samples[:p.next]...)
	} else {
		out = append(out, p.samples...)
	}
	p.samples = p.samples[:0]
	p.next = 0
	p.wrapped = false
	return out
}
