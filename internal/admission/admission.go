// Package admission implements self-tuning cache admission for WATCHMAN.
//
// The paper's LNC-A rule admits a retrieved set only when its (estimated)
// profit exceeds the aggregate profit of the sets it would evict — a fixed
// threshold of 1.0 on the profit ratio. The paper's own evaluation shows
// the best admission aggressiveness is workload-dependent; AdaptSize
// (Berger et al., NSDI 2017) and RLCache demonstrate that tuning the
// admission parameter online from observed reference/size distributions
// beats any static setting. This package generalizes LNC-A to a tunable
// rule
//
//	admit  ⇔  profit(candidate) > θ · profit(victims)
//
// where θ = 1 is the paper's static test, θ < 1 admits more aggressively
// and θ > 1 more conservatively, and then tunes θ online:
//
//   - every reference is recorded into a windowed Profile (one per shard;
//     profiles aggregate into one Tuner);
//   - when the window fills, the Tuner replays the recent trace through a
//     small shadow cache once per candidate θ on a log-spaced grid and
//     scores each candidate by the cost savings ratio it would have earned;
//   - per-candidate scores are smoothed with an EMA across tuning rounds
//     (AdaptSize smooths per-object rates the same way) so one unusual
//     window cannot whipsaw the parameter;
//   - the winning θ is published atomically; the live admission check reads
//     it with a single atomic load, so the hot path takes no lock.
//
// The Tuner is deterministic when driven synchronously (TuneOnce), which
// the simulator and the tests rely on; the sharded serving layer drives it
// asynchronously (TriggerAsync) off the request path.
package admission

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
)

// Threshold is an atomically published admission parameter θ. Writers
// (the tuner) publish with Store; the admission hot path reads with a
// single lock-free atomic load.
type Threshold struct {
	bits atomic.Uint64
}

// NewThreshold returns a threshold initialized to v.
func NewThreshold(v float64) *Threshold {
	t := &Threshold{}
	t.Store(v)
	return t
}

// Load returns the current θ. It is safe for concurrent use and never
// blocks.
func (t *Threshold) Load() float64 { return math.Float64frombits(t.bits.Load()) }

// Store atomically publishes a new θ.
func (t *Threshold) Store(v float64) { t.bits.Store(math.Float64bits(v)) }

// Admitter is the live admission hook: the tunable LNC-A test
// profit > θ·bar with θ read lock-free from a Threshold. Its zero value is
// not usable; obtain one from Tuner.Admitter or NewStaticAdmitter.
type Admitter struct {
	th *Threshold
}

// Admit implements core.Admitter with the tunable LNC-A test.
func (a Admitter) Admit(d core.AdmissionDecision) bool {
	return d.Profit > a.th.Load()*d.Bar
}

// Threshold returns the admitter's current θ.
func (a Admitter) Threshold() float64 { return a.th.Load() }

// NewStaticAdmitter returns an Admitter pinned to a fixed θ. The shadow
// evaluator scores candidate thresholds with it, and θ = 1 reproduces the
// paper's static LNC-A rule exactly.
func NewStaticAdmitter(theta float64) Admitter {
	return Admitter{th: NewThreshold(theta)}
}
