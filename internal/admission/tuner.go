package admission

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Default tuning parameters, chosen so a tuning round is cheap relative to
// the live traffic it profiles (the shadow evaluator replays the window
// once per grid candidate).
const (
	// DefaultWindow is the number of references per tuning round.
	DefaultWindow = 2000
	// DefaultAlpha is the EMA factor applied to per-candidate scores
	// across rounds (weight of the newest round).
	DefaultAlpha = 0.5
	// DefaultEpsilon is the minimum smoothed cost-savings improvement over
	// the incumbent θ required to switch. Hysteresis: without it, score
	// noise between near-equal candidates would churn the parameter.
	DefaultEpsilon = 0.005
	// DefaultHistory is the number of tuning rounds kept for diagnostics.
	DefaultHistory = 64
	// MinWindow is the smallest Config.Window New accepts; callers that
	// derive a window (e.g. scaling by a sampling rate) clamp against it.
	MinWindow = 16
	// minRoundSamples is the smallest window the tuner will score; tiny
	// windows (e.g. a drain racing a concurrent round) carry no signal.
	minRoundSamples = MinWindow
)

// DefaultGrid returns the default log-spaced candidate grid for θ: 13
// points spanning 2⁻⁶ … 2⁶, symmetric around (and including) the static
// LNC-A setting θ = 1.
func DefaultGrid() []float64 {
	grid := make([]float64, 13)
	for i := range grid {
		grid[i] = math.Pow(2, float64(i-6))
	}
	return grid
}

// Config parameterizes a Tuner.
type Config struct {
	// Capacity is the shadow cache capacity in bytes. Use the live
	// cache's total capacity so shadow replacement pressure matches the
	// pressure the live trace experienced. Required.
	Capacity int64
	// K is the reference-window size of the shadow caches. Zero selects
	// the live default (4).
	K int
	// Evictor selects the shadow caches' victim-search structure.
	Evictor core.EvictorKind
	// Window is the number of recorded references per tuning round; it
	// must be at least 16 (smaller windows carry no tuning signal and are
	// rejected rather than silently never scoring). Zero selects
	// DefaultWindow.
	Window int
	// Grid lists the candidate thresholds θ to score. It must contain the
	// initial threshold 1. Nil selects DefaultGrid.
	Grid []float64
	// Alpha is the EMA factor for per-candidate scores across rounds, in
	// (0, 1]; 1 disables smoothing. Zero selects DefaultAlpha.
	Alpha float64
	// Epsilon is the minimum smoothed-score improvement over the current
	// θ required to switch parameters. Zero selects DefaultEpsilon.
	Epsilon float64
	// History is the number of tuning rounds retained for the diagnostics
	// endpoint. Zero selects DefaultHistory.
	History int
}

// CandidateScore is one grid candidate's result in a tuning round.
type CandidateScore struct {
	// Theta is the candidate threshold.
	Theta float64 `json:"theta"`
	// CSR is the cost savings ratio the candidate's shadow cache earned
	// over this round's window alone.
	CSR float64 `json:"csr"`
	// Smoothed is the EMA of CSR across rounds.
	Smoothed float64 `json:"smoothed"`
	// TotalCSR is the shadow cache's cumulative cost savings ratio since
	// the tuner was created. Because shadows persist across rounds, this
	// equals a brute-force replay of every recorded sample under Theta.
	TotalCSR float64 `json:"total_csr"`
}

// Round summarizes one completed tuning round.
type Round struct {
	// Seq numbers rounds from 1 in completion order.
	Seq int64 `json:"seq"`
	// Samples is the number of references scored.
	Samples int `json:"samples"`
	// Unique is the number of distinct query IDs in the window.
	Unique int `json:"unique"`
	// Theta is the threshold published after the round.
	Theta float64 `json:"theta"`
	// Switched reports whether the round changed the threshold.
	Switched bool `json:"switched"`
	// Scores holds every candidate's result, in grid order.
	Scores []CandidateScore `json:"scores"`
}

// Tuner owns the adaptive admission parameter: it aggregates reference
// profiles, scores candidate thresholds against the recent trace with
// shadow caches, and atomically publishes the winner. One Tuner serves one
// live cache (all shards of it).
//
// Each grid candidate owns a persistent shadow cache that is fed every
// drained window in order, so shadows stay warm across rounds and a
// candidate's cumulative statistics equal a brute-force replay of the full
// recorded trace under that θ. A round's score is the cost savings the
// shadow earned over the window just drained (cost-weighted marginal CSR),
// smoothed across rounds with an EMA.
type Tuner struct {
	cfg Config
	th  *Threshold

	recorded atomic.Int64 // references recorded since the last drain
	tuning   atomic.Bool  // gate: at most one async round in flight

	mu       sync.Mutex // guards profiles, arms, rounds, seq
	profiles []*Profile
	arms     []*shadowArm // one per grid candidate, same order
	rounds   []Round      // most recent first
	seq      int64

	// pendMu guards pendingInval. Invalidate takes only this small lock
	// (never mu), so a coherence event arriving mid-round is queued in
	// O(1) instead of blocking behind the shadow replays.
	pendMu       sync.Mutex
	pendingInval []string
}

// shadowArm is one candidate threshold's persistent shadow cache plus its
// scoring state.
type shadowArm struct {
	theta float64
	cache *core.Cache
	// lastSaved/lastTotal snapshot the shadow's cost counters at the end
	// of the previous round; the delta against them is this round's
	// windowed score.
	lastSaved, lastTotal float64
	// score is the cross-round EMA of windowed CSR; seeded reports
	// whether it has seen a round yet.
	score  float64
	seeded bool
}

// New creates a tuner. The initial published threshold is the static
// LNC-A setting θ = 1.
func New(cfg Config) (*Tuner, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("admission: non-positive shadow capacity %d", cfg.Capacity)
	}
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Window < minRoundSamples {
		// A window this small would drain and then be discarded by every
		// TuneOnce, pinning θ at 1 forever with no error anywhere.
		return nil, fmt.Errorf("admission: window %d below the %d-sample minimum", cfg.Window, minRoundSamples)
	}
	if cfg.Grid == nil {
		cfg.Grid = DefaultGrid()
	}
	hasOne := false
	for _, g := range cfg.Grid {
		if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
			return nil, fmt.Errorf("admission: grid candidate %g is not a positive finite threshold", g)
		}
		if g == 1 {
			hasOne = true
		}
	}
	if !hasOne {
		return nil, fmt.Errorf("admission: grid must contain the initial threshold 1")
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = DefaultEpsilon
	}
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	t := &Tuner{cfg: cfg, th: NewThreshold(1)}
	for _, theta := range cfg.Grid {
		shadow, err := core.New(core.Config{
			Capacity: cfg.Capacity,
			K:        cfg.K,
			Policy:   core.LNCRA,
			Evictor:  cfg.Evictor,
			Admitter: NewStaticAdmitter(theta),
		})
		if err != nil {
			return nil, fmt.Errorf("admission: shadow cache for θ=%g: %w", theta, err)
		}
		t.arms = append(t.arms, &shadowArm{theta: theta, cache: shadow})
	}
	return t, nil
}

// Admitter returns the live admission hook bound to the tuner's published
// threshold. Install it as core.Config.Admitter; its parameter read is a
// single atomic load.
func (t *Tuner) Admitter() core.Admitter { return Admitter{th: t.th} }

// Threshold returns the currently published θ.
func (t *Tuner) Threshold() float64 { return t.th.Load() }

// Window returns the references-per-round window size.
func (t *Tuner) Window() int { return t.cfg.Window }

// Grid returns a copy of the candidate threshold grid.
func (t *Tuner) Grid() []float64 {
	out := make([]float64, len(t.cfg.Grid))
	copy(out, t.cfg.Grid)
	return out
}

// ArmScore is one grid candidate's live shadow-cache standing, read
// outside a tuning round (the /v1/admission arms section).
type ArmScore struct {
	// Theta is the candidate threshold.
	Theta float64 `json:"theta"`
	// Smoothed is the cross-round EMA of windowed CSR; meaningful only
	// once Seeded is true (at least one completed round).
	Smoothed float64 `json:"smoothed"`
	// Seeded reports whether the arm has been scored by a round yet.
	Seeded bool `json:"seeded"`
	// TotalCSR is the shadow cache's cumulative cost savings ratio over
	// every sample replayed since the tuner was created — a brute-force
	// replay of the recorded trace under Theta.
	TotalCSR float64 `json:"total_csr"`
	// References is the number of samples the shadow has replayed.
	References int64 `json:"references"`
}

// ArmScores snapshots every candidate threshold's shadow standing, in
// grid order. It takes the tuner mutex and so excludes a concurrent
// round; the snapshot is round-consistent.
func (t *Tuner) ArmScores() []ArmScore {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ArmScore, len(t.arms))
	for i, a := range t.arms {
		st := a.cache.Stats()
		out[i] = ArmScore{
			Theta:      a.theta,
			Smoothed:   a.score,
			Seeded:     a.seeded,
			TotalCSR:   st.CostSavingsRatio(),
			References: st.References,
		}
	}
	return out
}

// NewProfile registers and returns a new reference profile. Each producer
// (shard, or the simulator's single replay loop) owns one profile and
// records every reference it serves into it.
func (t *Tuner) NewProfile() *Profile {
	p := &Profile{t: t, samples: make([]Sample, 0, t.cfg.Window)}
	t.mu.Lock()
	t.profiles = append(t.profiles, p)
	t.mu.Unlock()
	return p
}

// noteRecorded counts one recorded reference and reports whether a full
// window is pending. The comparison is >=, not ==: if a trigger is
// swallowed because a round is already in flight, the counter passes the
// window size and every later reference keeps reporting the backlog until
// a drain resets it — an exact comparison would fire once, miss, and
// never tune again.
func (t *Tuner) noteRecorded() bool {
	return t.recorded.Add(1) >= int64(t.cfg.Window)
}

// snapshot drains every profile and returns the merged window in time
// order.
func (t *Tuner) snapshot() []Sample {
	t.mu.Lock()
	profiles := make([]*Profile, len(t.profiles))
	copy(profiles, t.profiles)
	t.mu.Unlock()
	var all []Sample
	for _, p := range profiles {
		all = append(all, p.drain()...)
	}
	t.recorded.Store(0)
	// Stable sort: samples from one profile stay in arrival order when
	// logical timestamps tie across profiles.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	return all
}

// feed replays one window through a shadow arm and returns the windowed
// cost savings ratio it earned over exactly those samples.
func (a *shadowArm) feed(samples []Sample) float64 {
	for i := range samples {
		s := &samples[i]
		a.cache.ReferenceCanonical(core.Request{
			QueryID:   s.ID,
			Time:      s.Time,
			Size:      s.Size,
			Cost:      s.Cost,
			Relations: s.Relations,
		}, s.Sig)
	}
	st := a.cache.Stats()
	dSaved, dTotal := st.CostSaved-a.lastSaved, st.CostTotal-a.lastTotal
	a.lastSaved, a.lastTotal = st.CostSaved, st.CostTotal
	if dTotal <= 0 {
		return 0
	}
	return dSaved / dTotal
}

// TuneOnce runs one tuning round synchronously: drain the profiles, feed
// the window through every candidate's persistent shadow cache, fold each
// windowed cost-savings score into the cross-round EMAs, and publish the
// best candidate if it beats the incumbent by at least Epsilon. It returns
// the round summary; ok is false when the window held too few samples to
// score.
//
// TuneOnce is safe for concurrent use with Record and with the published
// admitter; the simulator calls it inline for determinism, the serving
// layer from the TriggerAsync goroutine.
func (t *Tuner) TuneOnce() (round Round, ok bool) {
	samples := t.snapshot()
	if len(samples) < minRoundSamples {
		return Round{}, false
	}
	unique := make(map[string]struct{}, len(samples))
	for i := range samples {
		unique[samples[i].ID] = struct{}{}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	t.applyPendingInvalidations()
	current := t.th.Load()
	currentIdx, bestIdx := -1, -1
	windowCSR := make([]float64, len(t.arms))
	for i, a := range t.arms {
		csr := a.feed(samples)
		windowCSR[i] = csr
		if a.seeded {
			a.score = t.cfg.Alpha*csr + (1-t.cfg.Alpha)*a.score
		} else {
			a.score, a.seeded = csr, true
		}
		if a.theta == current {
			currentIdx = i
		}
		if bestIdx < 0 || a.score > t.arms[bestIdx].score {
			bestIdx = i
		}
	}

	next := current
	switched := false
	// Switch only on a clear smoothed win over the incumbent (hysteresis);
	// if the incumbent is somehow off the grid, adopt the best candidate
	// unconditionally.
	if currentIdx < 0 || t.arms[bestIdx].score > t.arms[currentIdx].score+t.cfg.Epsilon {
		next = t.arms[bestIdx].theta
		switched = next != current
		t.th.Store(next)
	}

	t.seq++
	round = Round{
		Seq:      t.seq,
		Samples:  len(samples),
		Unique:   len(unique),
		Theta:    next,
		Switched: switched,
		Scores:   make([]CandidateScore, len(t.arms)),
	}
	for i, a := range t.arms {
		round.Scores[i] = CandidateScore{
			Theta:    a.theta,
			CSR:      windowCSR[i],
			Smoothed: a.score,
			TotalCSR: a.cache.Stats().CostSavingsRatio(),
		}
	}
	t.rounds = append([]Round{round}, t.rounds...)
	if len(t.rounds) > t.cfg.History {
		t.rounds = t.rounds[:t.cfg.History]
	}
	return round, true
}

// TriggerAsync starts a tuning round in a background goroutine unless one
// is already in flight. The serving layer calls it when Record reports a
// full window, keeping shadow replays off the request path. The goroutine
// keeps running rounds while a full window is already pending, so traffic
// that filled a window during a long round does not have to wait for the
// next one to fill before being scored.
func (t *Tuner) TriggerAsync() {
	if !t.tuning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer t.tuning.Store(false)
		for {
			t.TuneOnce()
			if t.recorded.Load() < int64(t.cfg.Window) {
				return
			}
		}
	}()
}

// Invalidate propagates a coherence event to every candidate's shadow
// cache, so scores cannot credit hits on sets the live cache dropped. The
// sharded layer forwards its Invalidate calls here. The event is queued
// and applied at the next round boundary — an ordering skew bounded by
// one window, the same tolerance the profile buffering already has — so
// the caller never blocks behind an in-progress shadow replay.
func (t *Tuner) Invalidate(relations ...string) {
	t.pendMu.Lock()
	t.pendingInval = append(t.pendingInval, relations...)
	t.pendMu.Unlock()
}

// applyPendingInvalidations drains the queued coherence events into every
// shadow arm. Called with t.mu held, before a round feeds its window.
func (t *Tuner) applyPendingInvalidations() {
	t.pendMu.Lock()
	pending := t.pendingInval
	t.pendingInval = nil
	t.pendMu.Unlock()
	if len(pending) == 0 {
		return
	}
	for _, a := range t.arms {
		a.cache.Invalidate(pending...)
	}
}

// Rounds returns the retained tuning history, most recent first.
func (t *Tuner) Rounds() []Round {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Round, len(t.rounds))
	copy(out, t.rounds)
	return out
}
