package admission

import (
	"fmt"
	"math"
	"sort"
)

// This file is the snapshot-persistence surface of the tuner: the
// published θ, the per-candidate smoothed scores, and the buffered
// shadow-profile windows can be exported as plain data and restored into
// a freshly constructed Tuner, so a restarted server resumes admission at
// the tuned aggressiveness instead of the static θ = 1.
//
// The shadow caches themselves are deliberately NOT persisted: each one
// is a full cache image (as large as the live cache's metadata), and a
// restored shadow would immediately diverge from one rebuilt from live
// traffic anyway. They restart cold and re-warm over the next few tuning
// rounds, while the EMA scores — the slow-moving signal that actually
// picks θ — survive the restart.

// ArmState is one grid candidate's cross-round scoring state.
type ArmState struct {
	// Theta is the candidate threshold, matched against the restored
	// tuner's grid.
	Theta float64
	// Score is the cross-round EMA of windowed CSR; Seeded reports
	// whether it has observed a round yet.
	Score  float64
	Seeded bool
}

// TunerState is the exportable form of a Tuner: the published parameter,
// the per-candidate EMAs, and the reference samples buffered in every
// profile (the shadow-profile windows) at capture time.
type TunerState struct {
	// Theta is the published admission threshold.
	Theta float64
	// Arms carries each grid candidate's scoring state, in grid order.
	Arms []ArmState
	// Samples are the buffered-but-not-yet-scored reference samples of
	// all profiles, merged in time order. A restored tuner replays them
	// into a fresh profile so the window in flight at shutdown is not
	// lost.
	Samples []Sample
}

// peek copies the profile's buffered samples in arrival order without
// draining them, so an export does not disturb the live tuning cadence.
func (p *Profile) peek() []Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Sample
	if p.wrapped {
		out = make([]Sample, 0, cap(p.samples))
		out = append(out, p.samples[p.next:]...)
		out = append(out, p.samples[:p.next]...)
	} else {
		out = append(out, p.samples...)
	}
	return out
}

// ExportState captures the tuner's published θ, candidate scores and
// buffered profile windows. It is safe for concurrent use with Record and
// TuneOnce; the capture is a consistent read under the tuner's lock.
func (t *Tuner) ExportState() *TunerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := &TunerState{Theta: t.th.Load(), Arms: make([]ArmState, len(t.arms))}
	for i, a := range t.arms {
		st.Arms[i] = ArmState{Theta: a.theta, Score: a.score, Seeded: a.seeded}
	}
	for _, p := range t.profiles {
		st.Samples = append(st.Samples, p.peek()...)
	}
	sortSamples(st.Samples)
	return st
}

// sortSamples orders samples by time (stable, preserving per-profile
// arrival order on ties) — the same merge order a tuning-round snapshot
// uses, which also makes exports deterministic.
func sortSamples(ss []Sample) {
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].Time < ss[j].Time })
}

// RestoreState pours an exported state into the tuner: θ is published,
// candidate scores are matched to the grid by threshold value, and the
// buffered samples are re-recorded into a dedicated profile so the next
// tuning round scores them. The tuner must be freshly constructed (no
// completed rounds); candidates in the state that are not on the grid are
// ignored, and grid candidates absent from the state keep their cold
// start.
func (t *Tuner) RestoreState(st *TunerState) error {
	if !(st.Theta > 0) || math.IsInf(st.Theta, 0) {
		// The negated comparison also catches NaN, which `<= 0` lets
		// through and which would poison every admission test.
		return fmt.Errorf("admission: restore: threshold %g is not a positive finite number", st.Theta)
	}
	for i := range st.Samples {
		s := &st.Samples[i]
		// A NaN cost or time would flow into the next shadow round's
		// windowed CSR and corrupt the EMAs the whole mechanism runs on.
		if math.IsNaN(s.Cost) || math.IsInf(s.Cost, 0) || math.IsNaN(s.Time) || math.IsInf(s.Time, 0) {
			return fmt.Errorf("admission: restore: sample %d (%s) has non-finite cost %g / time %g",
				i, s.ID, s.Cost, s.Time)
		}
	}
	t.mu.Lock()
	if t.seq != 0 {
		t.mu.Unlock()
		return fmt.Errorf("admission: restore into a tuner that already ran %d rounds", t.seq)
	}
	byTheta := make(map[float64]*shadowArm, len(t.arms))
	for _, a := range t.arms {
		byTheta[a.theta] = a
	}
	for _, as := range st.Arms {
		if math.IsNaN(as.Score) || math.IsInf(as.Score, 0) {
			continue // a poisoned EMA would win or lose every comparison forever
		}
		if a, ok := byTheta[as.Theta]; ok {
			a.score, a.seeded = as.Score, as.Seeded
		}
	}
	t.th.Store(st.Theta)
	t.mu.Unlock()
	if len(st.Samples) > 0 {
		p := t.NewProfile()
		for i := range st.Samples {
			p.Record(st.Samples[i])
		}
	}
	return nil
}
