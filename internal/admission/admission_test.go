package admission

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
)

// sampleFor builds a canonical sample from a raw query string.
func sampleFor(query string, size int64, cost, time float64) Sample {
	id := core.CompressID(query)
	return Sample{ID: id, Sig: core.Signature(id), Size: size, Cost: cost, Time: time}
}

func TestThresholdPublishLoad(t *testing.T) {
	th := NewThreshold(1)
	if got := th.Load(); got != 1 {
		t.Fatalf("initial threshold = %g, want 1", got)
	}
	th.Store(0.25)
	if got := th.Load(); got != 0.25 {
		t.Fatalf("threshold after Store = %g, want 0.25", got)
	}
}

func TestStaticAdmitterIsLNCA(t *testing.T) {
	a := NewStaticAdmitter(1)
	if !a.Admit(core.AdmissionDecision{Profit: 2, Bar: 1}) {
		t.Error("profit 2 > bar 1 must admit at θ=1")
	}
	if a.Admit(core.AdmissionDecision{Profit: 1, Bar: 1}) {
		t.Error("profit == bar must reject at θ=1 (strict inequality, as LNC-A)")
	}
	conservative := NewStaticAdmitter(4)
	if conservative.Admit(core.AdmissionDecision{Profit: 2, Bar: 1}) {
		t.Error("profit 2 ≤ 4·1 must reject at θ=4")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Error("zero capacity must error")
	}
	if _, err := New(Config{Capacity: 1 << 20, Grid: []float64{0.5, 2}}); err == nil {
		t.Error("grid without θ=1 must error")
	}
	if _, err := New(Config{Capacity: 1 << 20, Grid: []float64{1, -2}}); err == nil {
		t.Error("negative grid candidate must error")
	}
	if _, err := New(Config{Capacity: 1 << 20, Grid: []float64{1, math.Inf(1)}}); err == nil {
		t.Error("infinite grid candidate must error")
	}
	tu, err := New(Config{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := tu.Threshold(); got != 1 {
		t.Fatalf("initial threshold = %g, want the static LNC-A setting 1", got)
	}
	if got := len(tu.Grid()); got != len(DefaultGrid()) {
		t.Fatalf("default grid has %d candidates, want %d", got, len(DefaultGrid()))
	}
}

// TestShadowMatchesBruteForce pins the core property of the evaluator: a
// candidate's persistent shadow cache, fed window by window, reports
// exactly the statistics of a brute-force replay of every drained sample
// through one static-θ cache.
func TestShadowMatchesBruteForce(t *testing.T) {
	const window = 64
	grid := []float64{0.25, 1, 4}
	tu, err := New(Config{Capacity: 8192, K: 2, Window: window, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	profile := tu.NewProfile()

	// A small mixed workload: a cyclic hot set plus unique cold queries.
	var fed []Sample // every sample drained into the shadows so far
	var pending []Sample
	now := 0.0
	var lastRound Round
	rounds := 0
	for i := 0; i < 4*window; i++ {
		now += 1
		var s Sample
		if i%3 == 0 {
			s = sampleFor(fmt.Sprintf("cold scan %d", i), 3000, 900, now)
		} else {
			s = sampleFor(fmt.Sprintf("hot query %d", i%7), 500, 250, now)
		}
		pending = append(pending, s)
		if profile.Record(s) {
			round, ok := tu.TuneOnce()
			if !ok {
				t.Fatalf("round %d: TuneOnce declined a full window", rounds+1)
			}
			fed = append(fed, pending...)
			pending = pending[:0]
			lastRound, rounds = round, rounds+1
		}
	}
	if rounds != 4 {
		t.Fatalf("completed %d rounds, want 4", rounds)
	}

	for i, theta := range grid {
		shadow, err := core.New(core.Config{
			Capacity: 8192,
			K:        2,
			Policy:   core.LNCRA,
			Admitter: NewStaticAdmitter(theta),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range fed {
			shadow.ReferenceCanonical(core.Request{
				QueryID: s.ID, Time: s.Time, Size: s.Size, Cost: s.Cost,
			}, s.Sig)
		}
		want := shadow.Stats().CostSavingsRatio()
		got := lastRound.Scores[i].TotalCSR
		if got != want {
			t.Errorf("θ=%g: shadow cumulative CSR %.9f, brute-force replay %.9f", theta, got, want)
		}
	}
}

// bimodalTrace builds the convergence workload: a small hot working set
// that fits in cache, interleaved with unique large one-shot scans whose
// high execution cost makes their e-profit beat the hot sets' profits —
// so the static θ=1 rule admits them and thrashes the hot set, while a
// conservative θ keeps them out.
func bimodalTrace(n int) []Sample {
	samples := make([]Sample, 0, n)
	now := 0.0
	scan := 0
	for i := 0; i < n; i++ {
		now += 1
		if i%2 == 1 {
			scan++
			samples = append(samples, sampleFor(fmt.Sprintf("scan %d", scan), 5000, 25000, now))
		} else {
			samples = append(samples, sampleFor(fmt.Sprintf("hot %d", i/2%8), 1000, 1000, now))
		}
	}
	return samples
}

// replayStatic replays samples through one cache with a fixed θ.
func replayStatic(t *testing.T, samples []Sample, theta float64) core.Stats {
	t.Helper()
	c, err := core.New(core.Config{
		Capacity: 10000,
		K:        4,
		Policy:   core.LNCRA,
		Admitter: NewStaticAdmitter(theta),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		c.ReferenceCanonical(core.Request{QueryID: s.ID, Time: s.Time, Size: s.Size, Cost: s.Cost}, s.Sig)
	}
	return c.Stats()
}

// TestTunerConvergesOnBimodalWorkload drives the tuner over the bimodal
// workload and requires it to move the threshold conservative of the
// static setting, with the adaptively gated cache earning at least the
// static cache's cost savings.
func TestTunerConvergesOnBimodalWorkload(t *testing.T) {
	const window = 256
	samples := bimodalTrace(16 * window)

	tu, err := New(Config{Capacity: 10000, K: 4, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	live, err := core.New(core.Config{
		Capacity: 10000,
		K:        4,
		Policy:   core.LNCRA,
		Admitter: tu.Admitter(),
	})
	if err != nil {
		t.Fatal(err)
	}
	profile := tu.NewProfile()
	for _, s := range samples {
		live.ReferenceCanonical(core.Request{QueryID: s.ID, Time: s.Time, Size: s.Size, Cost: s.Cost}, s.Sig)
		if profile.Record(s) {
			tu.TuneOnce()
		}
	}

	if got := tu.Threshold(); got <= 1 {
		t.Errorf("tuner converged to θ=%g, want a conservative setting > 1 on the thrashing workload", got)
	}
	adaptive := live.Stats().CostSavingsRatio()
	static := replayStatic(t, samples, 1).CostSavingsRatio()
	if adaptive < static {
		t.Errorf("adaptive CSR %.4f < static LNC-A CSR %.4f", adaptive, static)
	}
	if rounds := tu.Rounds(); len(rounds) == 0 || rounds[0].Seq != int64(len(rounds)) {
		t.Errorf("round history malformed: %d rounds, newest seq %d", len(rounds), rounds[0].Seq)
	}
}

// TestProfileRingOverflow checks that a profile holds at most one window
// of samples and drains the newest ones in order when tuning falls behind.
func TestProfileRingOverflow(t *testing.T) {
	tu, err := New(Config{Capacity: 1 << 20, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	p := tu.NewProfile()
	for i := 0; i < 40; i++ {
		p.Record(sampleFor(fmt.Sprintf("q%d", i), 100, 10, float64(i)))
	}
	got := p.drain()
	if len(got) != 16 {
		t.Fatalf("drained %d samples, want the window size 16", len(got))
	}
	for i, s := range got {
		if want := float64(24 + i); s.Time != want {
			t.Errorf("sample %d has time %g, want %g (newest window, oldest first)", i, s.Time, want)
		}
	}
	if again := p.drain(); len(again) != 0 {
		t.Errorf("second drain returned %d samples, want 0", len(again))
	}
}

// TestNewRejectsTinyWindow pins that a window below the scoring minimum is
// a construction error, not a silent no-op tuner.
func TestNewRejectsTinyWindow(t *testing.T) {
	if _, err := New(Config{Capacity: 1 << 20, Window: 8}); err == nil {
		t.Error("window 8 (< 16) must error")
	}
}

// TestShadowsHonorInvalidation checks that coherence events reach the
// shadow caches: after invalidating a relation, the shadows cannot keep
// scoring hits on its sets.
func TestShadowsHonorInvalidation(t *testing.T) {
	tu, err := New(Config{Capacity: 1 << 20, K: 2, Window: 16, Grid: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	p := tu.NewProfile()
	ref := func(times int, start float64) {
		for i := 0; i < times; i++ {
			s := sampleFor("select * from r", 100, 50, start+float64(i))
			s.Relations = []string{"r"}
			p.Record(s)
		}
	}
	ref(16, 1)
	round, ok := tu.TuneOnce()
	if !ok {
		t.Fatal("first round declined")
	}
	if round.Scores[0].CSR == 0 {
		t.Fatal("repeated references must score shadow hits before invalidation")
	}
	tu.Invalidate("r")
	ref(16, 100)
	round, ok = tu.TuneOnce()
	if !ok {
		t.Fatal("second round declined")
	}
	// After the invalidation the set must be re-fetched once (a miss) in
	// the shadow before hitting again: strictly fewer window hits than a
	// shadow that ignored the coherence event (which would hit all 16).
	if round.Scores[0].CSR >= 1 {
		t.Errorf("post-invalidation window CSR = %g, want < 1 (first reference must miss)", round.Scores[0].CSR)
	}
}

// TestRecordReportsBacklogPastWindow guards the tuning-stall regression:
// once the recorded count passes the window without a drain (a trigger
// swallowed by an in-flight round), every further reference must keep
// reporting the backlog — an exact == comparison would fire once and then
// never tune again.
func TestRecordReportsBacklogPastWindow(t *testing.T) {
	tu, err := New(Config{Capacity: 1 << 20, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	p := tu.NewProfile()
	full := 0
	for i := 0; i < 40; i++ {
		if p.Record(sampleFor(fmt.Sprintf("q%d", i), 100, 10, float64(i+1))) {
			full++
		}
	}
	if full != 25 {
		t.Errorf("%d references reported a pending window, want 25 (every one from the 16th on)", full)
	}
	if _, ok := tu.TuneOnce(); !ok {
		t.Fatal("backlogged window must score")
	}
	if p.Record(sampleFor("fresh", 100, 10, 41)) {
		t.Error("first reference after a drain cannot report a full window")
	}
}

// TestTuneOnceSkipsTinyWindows ensures a near-empty drain cannot publish a
// parameter from noise.
func TestTuneOnceSkipsTinyWindows(t *testing.T) {
	tu, err := New(Config{Capacity: 1 << 20, Window: 1000})
	if err != nil {
		t.Fatal(err)
	}
	p := tu.NewProfile()
	for i := 0; i < minRoundSamples-1; i++ {
		p.Record(sampleFor(fmt.Sprintf("q%d", i), 100, 10, float64(i+1)))
	}
	if _, ok := tu.TuneOnce(); ok {
		t.Error("TuneOnce scored a window below minRoundSamples")
	}
}

// TestArmScores pins the /v1/admission arms surface: one entry per grid
// candidate in grid order, unseeded before any round, and carrying each
// shadow's cumulative replay standing afterwards.
func TestArmScores(t *testing.T) {
	grid := []float64{0.25, 1, 4}
	tu, err := New(Config{Capacity: 8192, K: 2, Window: 16, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	arms := tu.ArmScores()
	if len(arms) != len(grid) {
		t.Fatalf("arms = %d, want %d", len(arms), len(grid))
	}
	for i, a := range arms {
		if a.Theta != grid[i] {
			t.Errorf("arm %d θ=%g, want grid order %g", i, a.Theta, grid[i])
		}
		if a.Seeded || a.References != 0 {
			t.Errorf("arm θ=%g scored before any round: %+v", a.Theta, a)
		}
	}

	p := tu.NewProfile()
	for i := 0; i < 16; i++ {
		p.Record(sampleFor(fmt.Sprintf("q%d", i%5), 500, 250, float64(i+1)))
	}
	if _, ok := tu.TuneOnce(); !ok {
		t.Fatal("full window must score")
	}
	for _, a := range tu.ArmScores() {
		if !a.Seeded || a.References != 16 {
			t.Errorf("arm θ=%g after one round: %+v, want seeded with 16 references", a.Theta, a)
		}
	}
}
