// Package trace defines the workload trace model used throughout the
// WATCHMAN reproduction.
//
// A trace is a sequence of query submissions. Each record carries exactly
// the information the paper's traces carried (§4.1): a timestamp of the
// retrieval time, the query ID, the size of the retrieved set and the
// execution cost of the query, where cost is the number of logical block
// reads performed during execution ("the number of disk block reads which
// would be done if no buffers were available"). Records additionally carry
// the template that produced the query and the base relations it touches,
// which the cache-coherence hook uses for invalidation.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
)

// Record is a single query submission in a workload trace.
type Record struct {
	// Seq is the 0-based position of the record within its trace.
	Seq int64
	// Time is the submission time in simulated seconds from trace start.
	Time float64
	// QueryID identifies the query. Two records with equal QueryID denote
	// resubmissions of the same query and therefore the same retrieved set.
	QueryID string
	// Template names the query template that generated this instance
	// (e.g. "tpcd.Q6" or "setquery.Q2A").
	Template string
	// Class is the workload class of the submission. Single-class traces
	// use class 0; the multiclass extension (§6 of the paper) uses 0..n.
	Class int
	// Size is the size of the retrieved set in bytes.
	Size int64
	// Cost is the execution cost of the query in logical block reads.
	Cost float64
	// Relations lists the base relations the query reads, for coherence.
	Relations []string
	// Plan is the query's plan descriptor when the plan has a derivable
	// shape, or nil. The semantic derivation subsystem matches cached
	// retrieved sets against it; the v2 binary codec and the CSV codec's
	// ninth column carry it, and v1 traces decode with nil plans.
	Plan *engine.Descriptor
}

// Validate reports whether the record is internally consistent. Both
// codecs enforce it at encode AND decode time: an invalid record that
// slipped into the cache would poison the profit metric — a size-0 set
// makes λc/s divide by zero and a negative or non-finite cost turns it
// NaN/±Inf, silently corrupting eviction order — and a relation name
// containing the CSV codec's ';' separator would split into two names on
// re-read and aim invalidations at the wrong keys.
func (r *Record) Validate() error {
	switch {
	case r.QueryID == "":
		return fmt.Errorf("trace: record %d: empty query ID", r.Seq)
	case r.Size <= 0:
		return fmt.Errorf("trace: record %d (%s): non-positive size %d", r.Seq, r.QueryID, r.Size)
	case math.IsNaN(r.Cost) || math.IsInf(r.Cost, 0):
		return fmt.Errorf("trace: record %d (%s): non-finite cost %g", r.Seq, r.QueryID, r.Cost)
	case r.Cost < 0:
		return fmt.Errorf("trace: record %d (%s): negative cost %g", r.Seq, r.QueryID, r.Cost)
	case math.IsNaN(r.Time) || math.IsInf(r.Time, 0):
		return fmt.Errorf("trace: record %d (%s): non-finite time %g", r.Seq, r.QueryID, r.Time)
	case r.Time < 0:
		return fmt.Errorf("trace: record %d (%s): negative time %g", r.Seq, r.QueryID, r.Time)
	}
	for _, rel := range r.Relations {
		if rel == "" {
			return fmt.Errorf("trace: record %d (%s): empty relation name", r.Seq, r.QueryID)
		}
		if strings.Contains(rel, ";") {
			return fmt.Errorf("trace: record %d (%s): relation name %q contains ';' (reserved as the CSV relation separator)", r.Seq, r.QueryID, rel)
		}
	}
	if r.Plan != nil {
		if err := r.Plan.Validate(); err != nil {
			return fmt.Errorf("trace: record %d (%s): %w", r.Seq, r.QueryID, err)
		}
	}
	return nil
}

// Trace is an in-memory workload trace.
type Trace struct {
	// Name labels the trace (e.g. "tpcd" or "setquery").
	Name string
	// DatabaseBytes is the total size of the database the trace was
	// generated against. Cache sizes in the experiments are expressed as a
	// percentage of this value.
	DatabaseBytes int64
	// Records are the submissions in submission order.
	Records []Record
}

// Len returns the number of records in the trace.
func (t *Trace) Len() int { return len(t.Records) }

// HasPlans reports whether any record carries a plan descriptor — the
// precondition for semantic derivation to have anything to match against.
func (t *Trace) HasPlans() bool {
	for i := range t.Records {
		if t.Records[i].Plan != nil {
			return true
		}
	}
	return false
}

// Validate checks every record and the monotonicity of timestamps.
func (t *Trace) Validate() error {
	if t.DatabaseBytes <= 0 {
		return fmt.Errorf("trace %q: non-positive database size %d", t.Name, t.DatabaseBytes)
	}
	prev := -1.0
	for i := range t.Records {
		r := &t.Records[i]
		if err := r.Validate(); err != nil {
			return err
		}
		if r.Seq != int64(i) {
			return fmt.Errorf("trace %q: record %d has seq %d", t.Name, i, r.Seq)
		}
		if r.Time < prev {
			return fmt.Errorf("trace %q: record %d: time %g precedes %g", t.Name, i, r.Time, prev)
		}
		prev = r.Time
	}
	return nil
}

// Stats summarizes a trace. The infinite-cache bounds are exact: with an
// unlimited cache every resubmission after the first is a hit, so
//
//	HRinf  = Σᵢ (rᵢ−1) / Σᵢ rᵢ
//	CSRinf = Σᵢ cᵢ(rᵢ−1) / Σᵢ cᵢrᵢ
//
// where rᵢ is the number of references to query Qᵢ and cᵢ its cost.
type Stats struct {
	Queries        int     // total submissions
	Unique         int     // distinct query IDs
	TotalCost      float64 // Σ cost over all submissions
	TotalBytes     int64   // Σ size over all submissions
	UniqueBytes    int64   // Σ size over distinct queries (working-set size)
	MaxHitRatio    float64 // HRinf
	MaxCostSavings float64 // CSRinf
	Duration       float64 // last timestamp − first timestamp
	Templates      map[string]int
}

// ComputeStats scans the trace once and returns its summary.
func ComputeStats(t *Trace) Stats {
	s := Stats{Templates: make(map[string]int)}
	type per struct {
		refs int
		cost float64
		size int64
	}
	byID := make(map[string]*per)
	for i := range t.Records {
		r := &t.Records[i]
		s.Queries++
		s.TotalCost += r.Cost
		s.TotalBytes += r.Size
		s.Templates[r.Template]++
		p := byID[r.QueryID]
		if p == nil {
			p = &per{cost: r.Cost, size: r.Size}
			byID[r.QueryID] = p
		}
		p.refs++
	}
	s.Unique = len(byID)
	var hitNum, hitDen, csrNum, csrDen float64
	for _, p := range byID {
		s.UniqueBytes += p.size
		hitNum += float64(p.refs - 1)
		hitDen += float64(p.refs)
		csrNum += p.cost * float64(p.refs-1)
		csrDen += p.cost * float64(p.refs)
	}
	if hitDen > 0 {
		s.MaxHitRatio = hitNum / hitDen
	}
	if csrDen > 0 {
		s.MaxCostSavings = csrNum / csrDen
	}
	if n := len(t.Records); n > 0 {
		s.Duration = t.Records[n-1].Time - t.Records[0].Time
	}
	return s
}

// String renders the stats as a short human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries=%d unique=%d totalCost=%.0f workingSet=%dB maxHR=%.3f maxCSR=%.3f",
		s.Queries, s.Unique, s.TotalCost, s.UniqueBytes, s.MaxHitRatio, s.MaxCostSavings)
	return b.String()
}

// TemplateNames returns the template labels seen in the stats, sorted.
func (s Stats) TemplateNames() []string {
	names := make([]string, 0, len(s.Templates))
	for n := range s.Templates {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
