package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// Binary trace format
//
// The binary codec is a compact, self-describing, versioned encoding:
//
//	magic    [7]byte  "WMTRACE"
//	version  byte     '1' or '2'
//	name     string   (uvarint length + bytes)
//	dbBytes  varint
//	count    uvarint
//	records  count × record
//
// Each record encodes time as an IEEE-754 bits uvarint and strings as
// uvarint-length-prefixed bytes. Relations are a uvarint count followed by
// strings. Query IDs, template names and plan columns repeat heavily
// across a trace, so both sides maintain a dictionary: the writer emits an
// index for strings already seen, the reader resolves indices back.
//
// Version 2 appends an optional plan descriptor to every record (a
// presence byte, then relation, index, predicates, projected columns,
// group-by columns and aggregates). The writer emits version 1 — byte-
// identical to the historical unversioned format — whenever no record
// carries a plan, so plan-free traces remain readable by older tools, and
// the reader accepts both versions.

const (
	binaryMagicPrefix = "WMTRACE"
	binaryVersion1    = '1'
	binaryVersion2    = '2'
)

var (
	// ErrBadMagic is returned when decoding data that is not a binary trace.
	ErrBadMagic = errors.New("trace: bad magic; not a binary trace")
	// ErrBadVersion is returned for binary traces of an unknown codec
	// version (newer than this reader).
	ErrBadVersion = errors.New("trace: unsupported binary codec version")
	// ErrCorrupt is returned when the binary stream is structurally invalid.
	ErrCorrupt = errors.New("trace: corrupt binary stream")
)

type dictWriter struct {
	w   *bufio.Writer
	ids map[string]uint64
	buf []byte
}

func (d *dictWriter) uvarint(v uint64) error {
	d.buf = binary.AppendUvarint(d.buf[:0], v)
	_, err := d.w.Write(d.buf)
	return err
}

func (d *dictWriter) varint(v int64) error {
	d.buf = binary.AppendVarint(d.buf[:0], v)
	_, err := d.w.Write(d.buf)
	return err
}

// str writes a dictionary-compressed string: index 0 means "new string
// follows inline"; index n>0 refers to the (n−1)-th interned string.
func (d *dictWriter) str(s string) error {
	if idx, ok := d.ids[s]; ok {
		return d.uvarint(idx + 1)
	}
	d.ids[s] = uint64(len(d.ids))
	if err := d.uvarint(0); err != nil {
		return err
	}
	if err := d.uvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := d.w.WriteString(s)
	return err
}

// WriteBinary encodes the trace to w in the binary format: version 2 when
// any record carries a plan descriptor, version 1 (the historical,
// plan-free layout) otherwise.
func WriteBinary(w io.Writer, t *Trace) error {
	version := byte(binaryVersion1)
	if t.HasPlans() {
		version = binaryVersion2
	}
	d := &dictWriter{w: bufio.NewWriterSize(w, 1<<16), ids: make(map[string]uint64)}
	if _, err := d.w.WriteString(binaryMagicPrefix); err != nil {
		return err
	}
	if err := d.w.WriteByte(version); err != nil {
		return err
	}
	if err := d.uvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := d.w.WriteString(t.Name); err != nil {
		return err
	}
	if err := d.varint(t.DatabaseBytes); err != nil {
		return err
	}
	if err := d.uvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	for i := range t.Records {
		r := &t.Records[i]
		// Fail loudly rather than persist a record the reader (or worse,
		// an older reader without validation) would decode into bad cache
		// state — a ';' in a relation name or a non-positive size is
		// unrepresentable, not merely unusual.
		if err := r.Validate(); err != nil {
			return err
		}
		if err := d.uvarint(math.Float64bits(r.Time)); err != nil {
			return err
		}
		if err := d.str(r.QueryID); err != nil {
			return err
		}
		if err := d.str(r.Template); err != nil {
			return err
		}
		if err := d.varint(int64(r.Class)); err != nil {
			return err
		}
		if err := d.varint(r.Size); err != nil {
			return err
		}
		if err := d.uvarint(math.Float64bits(r.Cost)); err != nil {
			return err
		}
		if err := d.uvarint(uint64(len(r.Relations))); err != nil {
			return err
		}
		for _, rel := range r.Relations {
			if err := d.str(rel); err != nil {
				return err
			}
		}
		if version == binaryVersion2 {
			if err := d.plan(r.Plan); err != nil {
				return err
			}
		}
	}
	return d.w.Flush()
}

// plan writes one optional plan descriptor: a presence byte followed by
// the descriptor fields, all column names dictionary-compressed.
func (d *dictWriter) plan(p *engine.Descriptor) error {
	if p == nil {
		return d.uvarint(0)
	}
	if err := d.uvarint(1); err != nil {
		return err
	}
	if err := d.str(p.Rel); err != nil {
		return err
	}
	if err := d.str(p.Index); err != nil {
		return err
	}
	if err := d.uvarint(uint64(len(p.Preds))); err != nil {
		return err
	}
	for i := range p.Preds {
		pr := &p.Preds[i]
		if err := d.str(pr.Col); err != nil {
			return err
		}
		if err := d.uvarint(uint64(pr.Op)); err != nil {
			return err
		}
		if err := d.varint(pr.Lo); err != nil {
			return err
		}
		if err := d.varint(pr.Hi); err != nil {
			return err
		}
	}
	for _, cols := range [][]string{p.Cols, p.GroupBy} {
		if err := d.uvarint(uint64(len(cols))); err != nil {
			return err
		}
		for _, c := range cols {
			if err := d.str(c); err != nil {
				return err
			}
		}
	}
	if err := d.uvarint(uint64(len(p.Aggs))); err != nil {
		return err
	}
	for i := range p.Aggs {
		sp := &p.Aggs[i]
		if err := d.uvarint(uint64(sp.Kind)); err != nil {
			return err
		}
		if err := d.str(sp.Col); err != nil {
			return err
		}
		if err := d.str(sp.As); err != nil {
			return err
		}
	}
	return nil
}

type dictReader struct {
	r    *bufio.Reader
	strs []string
}

func (d *dictReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (d *dictReader) varint() (int64, error) {
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (d *dictReader) str() (string, error) {
	idx, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if idx > 0 {
		i := idx - 1
		if i >= uint64(len(d.strs)) {
			return "", fmt.Errorf("%w: string index %d out of range", ErrCorrupt, i)
		}
		return d.strs[i], nil
	}
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("%w: unreasonable string length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s := string(buf)
	d.strs = append(d.strs, s)
	return s, nil
}

// ReadBinary decodes a binary trace from r, accepting both codec
// versions: v1 traces (the historical, plan-free layout) decode with nil
// plans, v2 traces carry optional plan descriptors per record.
func ReadBinary(r io.Reader) (*Trace, error) {
	d := &dictReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(binaryMagicPrefix)+1)
	if _, err := io.ReadFull(d.r, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic[:len(binaryMagicPrefix)]) != binaryMagicPrefix {
		return nil, ErrBadMagic
	}
	version := magic[len(binaryMagicPrefix)]
	if version != binaryVersion1 && version != binaryVersion2 {
		return nil, fmt.Errorf("%w: %q", ErrBadVersion, string(version))
	}
	nameLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: unreasonable name length %d", ErrCorrupt, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(d.r, nameBuf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	t := &Trace{Name: string(nameBuf)}
	if t.DatabaseBytes, err = d.varint(); err != nil {
		return nil, err
	}
	count, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if count > 1<<28 {
		return nil, fmt.Errorf("%w: unreasonable record count %d", ErrCorrupt, count)
	}
	t.Records = make([]Record, count)
	for i := uint64(0); i < count; i++ {
		rec := &t.Records[i]
		rec.Seq = int64(i)
		tb, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Time = math.Float64frombits(tb)
		if rec.QueryID, err = d.str(); err != nil {
			return nil, err
		}
		if rec.Template, err = d.str(); err != nil {
			return nil, err
		}
		cls, err := d.varint()
		if err != nil {
			return nil, err
		}
		rec.Class = int(cls)
		if rec.Size, err = d.varint(); err != nil {
			return nil, err
		}
		cb, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Cost = math.Float64frombits(cb)
		nrel, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nrel > 1<<16 {
			return nil, fmt.Errorf("%w: unreasonable relation count %d", ErrCorrupt, nrel)
		}
		if nrel > 0 {
			rec.Relations = make([]string, nrel)
			for j := uint64(0); j < nrel; j++ {
				if rec.Relations[j], err = d.str(); err != nil {
					return nil, err
				}
			}
		}
		if version == binaryVersion2 {
			if rec.Plan, err = d.plan(); err != nil {
				return nil, err
			}
		}
		// Decode-side validation: a record with a zero size or negative
		// cost would flow into the cache and make the LNC profit NaN/±Inf;
		// reject it instead. Validate's message already carries the
		// record's position (Seq == i here).
		if err := rec.Validate(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// plan reads one optional plan descriptor (presence byte then fields).
func (d *dictReader) plan() (*engine.Descriptor, error) {
	present, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	if present != 1 {
		return nil, fmt.Errorf("%w: bad plan presence flag %d", ErrCorrupt, present)
	}
	p := &engine.Descriptor{}
	if p.Rel, err = d.str(); err != nil {
		return nil, err
	}
	if p.Index, err = d.str(); err != nil {
		return nil, err
	}
	npred, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if npred > 1<<16 {
		return nil, fmt.Errorf("%w: unreasonable predicate count %d", ErrCorrupt, npred)
	}
	for j := uint64(0); j < npred; j++ {
		var pr engine.Pred
		if pr.Col, err = d.str(); err != nil {
			return nil, err
		}
		op, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		pr.Op = engine.Op(op)
		if pr.Lo, err = d.varint(); err != nil {
			return nil, err
		}
		if pr.Hi, err = d.varint(); err != nil {
			return nil, err
		}
		p.Preds = append(p.Preds, pr)
	}
	for _, dst := range []*[]string{&p.Cols, &p.GroupBy} {
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > 1<<16 {
			return nil, fmt.Errorf("%w: unreasonable column count %d", ErrCorrupt, n)
		}
		for j := uint64(0); j < n; j++ {
			c, err := d.str()
			if err != nil {
				return nil, err
			}
			*dst = append(*dst, c)
		}
	}
	nagg, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nagg > 1<<16 {
		return nil, fmt.Errorf("%w: unreasonable aggregate count %d", ErrCorrupt, nagg)
	}
	for j := uint64(0); j < nagg; j++ {
		var sp engine.AggSpec
		kind, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		sp.Kind = engine.AggKind(kind)
		if sp.Col, err = d.str(); err != nil {
			return nil, err
		}
		if sp.As, err = d.str(); err != nil {
			return nil, err
		}
		p.Aggs = append(p.Aggs, sp)
	}
	return p, nil
}

// CSV trace format
//
// Header row: #name,<name>,<dbBytes>
// Column row: seq,time,query_id,template,class,size,cost,relations[,plan]
// Relations are joined with ';' within the field; plan is the JSON
// encoding of the record's plan descriptor, empty when absent. Like the
// binary codec, the writer emits the historical eight-column layout when
// no record carries a plan (older readers keep working) and appends the
// ninth column only for plan-carrying traces; the reader accepts both.

// WriteCSV encodes the trace to w as CSV with a leading metadata row.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#name", t.Name, strconv.FormatInt(t.DatabaseBytes, 10)}); err != nil {
		return err
	}
	cols := []string{"seq", "time", "query_id", "template", "class", "size", "cost", "relations"}
	withPlans := t.HasPlans()
	if withPlans {
		cols = append(cols, "plan")
	}
	if err := cw.Write(cols); err != nil {
		return err
	}
	row := make([]string, len(cols))
	for i := range t.Records {
		r := &t.Records[i]
		// The ';' relation-separator makes some names unrepresentable in
		// this format; Validate rejects them (and every other invalid
		// record) here so the file can never decode into different data.
		if err := r.Validate(); err != nil {
			return err
		}
		row[0] = strconv.FormatInt(r.Seq, 10)
		row[1] = strconv.FormatFloat(r.Time, 'g', -1, 64)
		row[2] = r.QueryID
		row[3] = r.Template
		row[4] = strconv.Itoa(r.Class)
		row[5] = strconv.FormatInt(r.Size, 10)
		row[6] = strconv.FormatFloat(r.Cost, 'g', -1, 64)
		row[7] = strings.Join(r.Relations, ";")
		if withPlans {
			row[8] = ""
			if r.Plan != nil {
				b, err := json.Marshal(r.Plan)
				if err != nil {
					return fmt.Errorf("trace: encoding plan of record %d: %w", r.Seq, err)
				}
				row[8] = string(b)
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a CSV trace produced by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV metadata: %w", err)
	}
	if len(meta) != 3 || meta[0] != "#name" {
		return nil, fmt.Errorf("trace: CSV missing #name metadata row")
	}
	t := &Trace{Name: meta[1]}
	if t.DatabaseBytes, err = strconv.ParseInt(meta[2], 10, 64); err != nil {
		return nil, fmt.Errorf("trace: bad dbBytes %q: %w", meta[2], err)
	}
	if _, err := cr.Read(); err != nil { // column header
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV row: %w", err)
		}
		if len(row) != 8 && len(row) != 9 {
			return nil, fmt.Errorf("trace: CSV row has %d fields, want 8 or 9", len(row))
		}
		var rec Record
		if rec.Seq, err = strconv.ParseInt(row[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: bad seq %q: %w", row[0], err)
		}
		if rec.Time, err = strconv.ParseFloat(row[1], 64); err != nil {
			return nil, fmt.Errorf("trace: bad time %q: %w", row[1], err)
		}
		rec.QueryID = row[2]
		rec.Template = row[3]
		if rec.Class, err = strconv.Atoi(row[4]); err != nil {
			return nil, fmt.Errorf("trace: bad class %q: %w", row[4], err)
		}
		if rec.Size, err = strconv.ParseInt(row[5], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: bad size %q: %w", row[5], err)
		}
		if rec.Cost, err = strconv.ParseFloat(row[6], 64); err != nil {
			return nil, fmt.Errorf("trace: bad cost %q: %w", row[6], err)
		}
		if row[7] != "" {
			rec.Relations = strings.Split(row[7], ";")
		}
		if len(row) == 9 && row[8] != "" {
			rec.Plan = &engine.Descriptor{}
			if err := json.Unmarshal([]byte(row[8]), rec.Plan); err != nil {
				return nil, fmt.Errorf("trace: bad plan %q: %w", row[8], err)
			}
		}
		// Decode-side validation, with the physical file position: a
		// size-0 or negative-cost row must never reach the cache's profit
		// math, and the error must point at the line an editor shows (the
		// metadata and header rows offset the record index by two).
		if err := rec.Validate(); err != nil {
			line, _ := cr.FieldPos(0)
			return nil, fmt.Errorf("CSV line %d: %w", line, err)
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}
