package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Binary trace format
//
// The binary codec is a compact, self-describing encoding:
//
//	magic    [8]byte  "WMTRACE1"
//	name     string   (uvarint length + bytes)
//	dbBytes  varint
//	count    uvarint
//	records  count × record
//
// Each record encodes time as an IEEE-754 bits uvarint and strings as
// uvarint-length-prefixed bytes. Relations are a uvarint count followed by
// strings. Query IDs and template names repeat heavily across a trace, so
// both sides maintain a dictionary: the writer emits an index for strings
// already seen, the reader resolves indices back.

const binaryMagic = "WMTRACE1"

var (
	// ErrBadMagic is returned when decoding data that is not a binary trace.
	ErrBadMagic = errors.New("trace: bad magic; not a binary trace")
	// ErrCorrupt is returned when the binary stream is structurally invalid.
	ErrCorrupt = errors.New("trace: corrupt binary stream")
)

type dictWriter struct {
	w   *bufio.Writer
	ids map[string]uint64
	buf []byte
}

func (d *dictWriter) uvarint(v uint64) error {
	d.buf = binary.AppendUvarint(d.buf[:0], v)
	_, err := d.w.Write(d.buf)
	return err
}

func (d *dictWriter) varint(v int64) error {
	d.buf = binary.AppendVarint(d.buf[:0], v)
	_, err := d.w.Write(d.buf)
	return err
}

// str writes a dictionary-compressed string: index 0 means "new string
// follows inline"; index n>0 refers to the (n−1)-th interned string.
func (d *dictWriter) str(s string) error {
	if idx, ok := d.ids[s]; ok {
		return d.uvarint(idx + 1)
	}
	d.ids[s] = uint64(len(d.ids))
	if err := d.uvarint(0); err != nil {
		return err
	}
	if err := d.uvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := d.w.WriteString(s)
	return err
}

// WriteBinary encodes the trace to w in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	d := &dictWriter{w: bufio.NewWriterSize(w, 1<<16), ids: make(map[string]uint64)}
	if _, err := d.w.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := d.uvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := d.w.WriteString(t.Name); err != nil {
		return err
	}
	if err := d.varint(t.DatabaseBytes); err != nil {
		return err
	}
	if err := d.uvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	for i := range t.Records {
		r := &t.Records[i]
		if err := d.uvarint(math.Float64bits(r.Time)); err != nil {
			return err
		}
		if err := d.str(r.QueryID); err != nil {
			return err
		}
		if err := d.str(r.Template); err != nil {
			return err
		}
		if err := d.varint(int64(r.Class)); err != nil {
			return err
		}
		if err := d.varint(r.Size); err != nil {
			return err
		}
		if err := d.uvarint(math.Float64bits(r.Cost)); err != nil {
			return err
		}
		if err := d.uvarint(uint64(len(r.Relations))); err != nil {
			return err
		}
		for _, rel := range r.Relations {
			if err := d.str(rel); err != nil {
				return err
			}
		}
	}
	return d.w.Flush()
}

type dictReader struct {
	r    *bufio.Reader
	strs []string
}

func (d *dictReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (d *dictReader) varint() (int64, error) {
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (d *dictReader) str() (string, error) {
	idx, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if idx > 0 {
		i := idx - 1
		if i >= uint64(len(d.strs)) {
			return "", fmt.Errorf("%w: string index %d out of range", ErrCorrupt, i)
		}
		return d.strs[i], nil
	}
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("%w: unreasonable string length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s := string(buf)
	d.strs = append(d.strs, s)
	return s, nil
}

// ReadBinary decodes a binary trace from r.
func ReadBinary(r io.Reader) (*Trace, error) {
	d := &dictReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(d.r, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic) != binaryMagic {
		return nil, ErrBadMagic
	}
	nameLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: unreasonable name length %d", ErrCorrupt, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(d.r, nameBuf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	t := &Trace{Name: string(nameBuf)}
	if t.DatabaseBytes, err = d.varint(); err != nil {
		return nil, err
	}
	count, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if count > 1<<28 {
		return nil, fmt.Errorf("%w: unreasonable record count %d", ErrCorrupt, count)
	}
	t.Records = make([]Record, count)
	for i := uint64(0); i < count; i++ {
		rec := &t.Records[i]
		rec.Seq = int64(i)
		tb, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Time = math.Float64frombits(tb)
		if rec.QueryID, err = d.str(); err != nil {
			return nil, err
		}
		if rec.Template, err = d.str(); err != nil {
			return nil, err
		}
		cls, err := d.varint()
		if err != nil {
			return nil, err
		}
		rec.Class = int(cls)
		if rec.Size, err = d.varint(); err != nil {
			return nil, err
		}
		cb, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Cost = math.Float64frombits(cb)
		nrel, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nrel > 1<<16 {
			return nil, fmt.Errorf("%w: unreasonable relation count %d", ErrCorrupt, nrel)
		}
		if nrel > 0 {
			rec.Relations = make([]string, nrel)
			for j := uint64(0); j < nrel; j++ {
				if rec.Relations[j], err = d.str(); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// CSV trace format
//
// Header row: #name,<name>,<dbBytes>
// Column row: seq,time,query_id,template,class,size,cost,relations
// Relations are joined with ';' within the field.

// WriteCSV encodes the trace to w as CSV with a leading metadata row.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#name", t.Name, strconv.FormatInt(t.DatabaseBytes, 10)}); err != nil {
		return err
	}
	if err := cw.Write([]string{"seq", "time", "query_id", "template", "class", "size", "cost", "relations"}); err != nil {
		return err
	}
	row := make([]string, 8)
	for i := range t.Records {
		r := &t.Records[i]
		row[0] = strconv.FormatInt(r.Seq, 10)
		row[1] = strconv.FormatFloat(r.Time, 'g', -1, 64)
		row[2] = r.QueryID
		row[3] = r.Template
		row[4] = strconv.Itoa(r.Class)
		row[5] = strconv.FormatInt(r.Size, 10)
		row[6] = strconv.FormatFloat(r.Cost, 'g', -1, 64)
		row[7] = strings.Join(r.Relations, ";")
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a CSV trace produced by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV metadata: %w", err)
	}
	if len(meta) != 3 || meta[0] != "#name" {
		return nil, fmt.Errorf("trace: CSV missing #name metadata row")
	}
	t := &Trace{Name: meta[1]}
	if t.DatabaseBytes, err = strconv.ParseInt(meta[2], 10, 64); err != nil {
		return nil, fmt.Errorf("trace: bad dbBytes %q: %w", meta[2], err)
	}
	if _, err := cr.Read(); err != nil { // column header
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV row: %w", err)
		}
		if len(row) != 8 {
			return nil, fmt.Errorf("trace: CSV row has %d fields, want 8", len(row))
		}
		var rec Record
		if rec.Seq, err = strconv.ParseInt(row[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: bad seq %q: %w", row[0], err)
		}
		if rec.Time, err = strconv.ParseFloat(row[1], 64); err != nil {
			return nil, fmt.Errorf("trace: bad time %q: %w", row[1], err)
		}
		rec.QueryID = row[2]
		rec.Template = row[3]
		if rec.Class, err = strconv.Atoi(row[4]); err != nil {
			return nil, fmt.Errorf("trace: bad class %q: %w", row[4], err)
		}
		if rec.Size, err = strconv.ParseInt(row[5], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: bad size %q: %w", row[5], err)
		}
		if rec.Cost, err = strconv.ParseFloat(row[6], 64); err != nil {
			return nil, fmt.Errorf("trace: bad cost %q: %w", row[6], err)
		}
		if row[7] != "" {
			rec.Relations = strings.Split(row[7], ";")
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}
