package trace

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// sampleTrace builds a small deterministic trace.
func sampleTrace() *Trace {
	return &Trace{
		Name:          "sample",
		DatabaseBytes: 1 << 20,
		Records: []Record{
			{Seq: 0, Time: 1, QueryID: "q1", Template: "t.a", Size: 100, Cost: 10, Relations: []string{"r1", "r2"}},
			{Seq: 1, Time: 2.5, QueryID: "q2", Template: "t.b", Size: 200, Cost: 20},
			{Seq: 2, Time: 3, QueryID: "q1", Template: "t.a", Size: 100, Cost: 10, Relations: []string{"r1", "r2"}},
			{Seq: 3, Time: 7, QueryID: "q3", Template: "t.b", Class: 1, Size: 50, Cost: 40, Relations: []string{"r3"}},
		},
	}
}

func randomTrace(rng *rand.Rand, n int) *Trace {
	tr := &Trace{Name: fmt.Sprintf("rnd%d", rng.Int()), DatabaseBytes: rng.Int63n(1<<30) + 1}
	now := 0.0
	for i := 0; i < n; i++ {
		now += rng.Float64() * 3
		rec := Record{
			Seq:      int64(i),
			Time:     now,
			QueryID:  fmt.Sprintf("query-%d with text %d", rng.Intn(n/2+1), rng.Intn(5)),
			Template: fmt.Sprintf("tpl%d", rng.Intn(6)),
			Class:    rng.Intn(3),
			Size:     rng.Int63n(1e6) + 1,
			Cost:     float64(rng.Intn(100000)) + 0.5,
		}
		for j := 0; j < rng.Intn(3); j++ {
			rec.Relations = append(rec.Relations, fmt.Sprintf("rel%d", rng.Intn(8)))
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

func tracesEqual(a, b *Trace) error {
	if a.Name != b.Name || a.DatabaseBytes != b.DatabaseBytes || len(a.Records) != len(b.Records) {
		return fmt.Errorf("header mismatch: %q/%d/%d vs %q/%d/%d",
			a.Name, a.DatabaseBytes, len(a.Records), b.Name, b.DatabaseBytes, len(b.Records))
	}
	for i := range a.Records {
		x, y := a.Records[i], b.Records[i]
		if x.Seq != y.Seq || x.Time != y.Time || x.QueryID != y.QueryID ||
			x.Template != y.Template || x.Class != y.Class || x.Size != y.Size || x.Cost != y.Cost {
			return fmt.Errorf("record %d: %+v vs %+v", i, x, y)
		}
		if len(x.Relations) != len(y.Relations) {
			return fmt.Errorf("record %d relations: %v vs %v", i, x.Relations, y.Relations)
		}
		for j := range x.Relations {
			if x.Relations[j] != y.Relations[j] {
				return fmt.Errorf("record %d relation %d differs", i, j)
			}
		}
	}
	return nil
}

func TestBinaryRoundtrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracesEqual(tr, got); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundtrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracesEqual(tr, got); err != nil {
		t.Fatal(err)
	}
}

func TestRoundtripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, rng.Intn(60)+1)
		var bin, csv bytes.Buffer
		if err := WriteBinary(&bin, tr); err != nil {
			return false
		}
		if err := WriteCSV(&csv, tr); err != nil {
			return false
		}
		fromBin, err := ReadBinary(&bin)
		if err != nil {
			return false
		}
		fromCSV, err := ReadCSV(&csv)
		if err != nil {
			return false
		}
		return tracesEqual(tr, fromBin) == nil && tracesEqual(tr, fromCSV) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBinaryDictionaryCompression(t *testing.T) {
	// Repeated query IDs must be emitted once: the encoding of a trace
	// with one distinct query must be much smaller than 100 copies of it.
	tr := &Trace{Name: "d", DatabaseBytes: 1}
	long := strings.Repeat("select something very long from a table ", 10)
	for i := 0; i < 100; i++ {
		tr.Records = append(tr.Records, Record{
			Seq: int64(i), Time: float64(i), QueryID: long, Template: "t", Size: 1, Cost: 1,
		})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > len(long)+100*32 {
		t.Fatalf("dictionary compression ineffective: %d bytes", buf.Len())
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic must fail")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty stream must fail")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{9, 12, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes must fail", cut)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"no,metadata,row\nseq,time\n",
		"#name,x\n", // wrong metadata arity
		"#name,x,notanumber\nseq,time,query_id,template,class,size,cost,relations\n",
		"#name,x,10\nseq,time,query_id,template,class,size,cost,relations\n1,notafloat,q,t,0,1,1,\n",
		"#name,x,10\nseq,time,query_id,template,class,size,cost,relations\n1,1,q,t,0,1\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestValidate(t *testing.T) {
	good := sampleTrace()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleTrace()
	bad.Records[2].Time = 0.5 // before record 1
	if err := bad.Validate(); err == nil {
		t.Error("non-monotonic time must fail validation")
	}
	bad = sampleTrace()
	bad.Records[1].Size = 0
	if err := bad.Validate(); err == nil {
		t.Error("non-positive size must fail validation")
	}
	bad = sampleTrace()
	bad.Records[0].QueryID = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty query ID must fail validation")
	}
	bad = sampleTrace()
	bad.Records[3].Seq = 7
	if err := bad.Validate(); err == nil {
		t.Error("wrong sequence numbering must fail validation")
	}
	bad = sampleTrace()
	bad.DatabaseBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero database size must fail validation")
	}
	bad = sampleTrace()
	bad.Records[0].Cost = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost must fail validation")
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(sampleTrace())
	if s.Queries != 4 || s.Unique != 3 {
		t.Fatalf("queries=%d unique=%d", s.Queries, s.Unique)
	}
	if s.TotalCost != 80 {
		t.Fatalf("total cost = %g", s.TotalCost)
	}
	if s.TotalBytes != 450 || s.UniqueBytes != 350 {
		t.Fatalf("bytes=%d unique=%d", s.TotalBytes, s.UniqueBytes)
	}
	// q1 referenced twice: HRinf = 1/4; CSRinf = 10/80.
	if s.MaxHitRatio != 0.25 {
		t.Fatalf("maxHR = %g", s.MaxHitRatio)
	}
	if s.MaxCostSavings != 0.125 {
		t.Fatalf("maxCSR = %g", s.MaxCostSavings)
	}
	if s.Duration != 6 {
		t.Fatalf("duration = %g", s.Duration)
	}
	if s.Templates["t.a"] != 2 || s.Templates["t.b"] != 2 {
		t.Fatalf("templates = %v", s.Templates)
	}
	names := s.TemplateNames()
	if len(names) != 2 || names[0] != "t.a" || names[1] != "t.b" {
		t.Fatalf("template names = %v", names)
	}
	if !strings.Contains(s.String(), "queries=4") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(&Trace{Name: "empty", DatabaseBytes: 1})
	if s.MaxHitRatio != 0 || s.MaxCostSavings != 0 || s.Queries != 0 {
		t.Fatalf("empty trace stats = %+v", s)
	}
}

func TestStatsBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, rng.Intn(100)+1)
		s := ComputeStats(tr)
		if s.MaxHitRatio < 0 || s.MaxHitRatio >= 1 {
			return false
		}
		if s.MaxCostSavings < 0 || s.MaxCostSavings >= 1 {
			return false
		}
		// Cost-weighting cannot create savings out of nothing: both bounds
		// are zero iff there are no repeats.
		if (s.MaxHitRatio == 0) != (s.MaxCostSavings == 0) {
			return false
		}
		return s.Unique <= s.Queries && !math.IsNaN(s.TotalCost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
