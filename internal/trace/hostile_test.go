package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// invalidRecordTraces enumerates traces that are structurally encodable
// but semantically invalid — the rows that used to flow straight into the
// cache and corrupt the LNC profit metric.
func invalidRecordTraces() map[string]*Trace {
	mk := func(mut func(*Record)) *Trace {
		tr := sampleTrace()
		mut(&tr.Records[1])
		return tr
	}
	return map[string]*Trace{
		"zero size":          mk(func(r *Record) { r.Size = 0 }),
		"negative size":      mk(func(r *Record) { r.Size = -5 }),
		"negative cost":      mk(func(r *Record) { r.Cost = -1 }),
		"NaN cost":           mk(func(r *Record) { r.Cost = math.NaN() }),
		"inf cost":           mk(func(r *Record) { r.Cost = math.Inf(1) }),
		"NaN time":           mk(func(r *Record) { r.Time = math.NaN() }),
		"empty query id":     mk(func(r *Record) { r.QueryID = "" }),
		"semicolon relation": mk(func(r *Record) { r.Relations = []string{"a;b"} }),
		"empty relation":     mk(func(r *Record) { r.Relations = []string{""} }),
	}
}

// TestWritersRejectInvalidRecords: both codecs must fail loudly at encode
// time rather than persist a file that decodes into different (or
// poisonous) data. The ';' case is the motivating one: WriteCSV joins
// relations with ';', so "a;b" would silently decode as two relations
// and aim invalidations at the wrong keys.
func TestWritersRejectInvalidRecords(t *testing.T) {
	for name, tr := range invalidRecordTraces() {
		if err := WriteBinary(&bytes.Buffer{}, tr); err == nil {
			t.Errorf("%s: WriteBinary must fail", name)
		}
		if err := WriteCSV(&bytes.Buffer{}, tr); err == nil {
			t.Errorf("%s: WriteCSV must fail", name)
		}
	}
}

// TestReadCSVRejectsInvalidRecords: decode-side validation with the row
// position, for files produced by other tools (or older writers).
func TestReadCSVRejectsInvalidRecords(t *testing.T) {
	rows := map[string]string{
		"zero size":     "0,1,q1,t.a,0,0,10,r1",
		"negative size": "0,1,q1,t.a,0,-4,10,r1",
		"negative cost": "0,1,q1,t.a,0,100,-10,r1",
		"NaN cost":      "0,1,q1,t.a,0,100,NaN,r1",
		"inf cost":      "0,1,q1,t.a,0,100,+Inf,r1",
		"empty id":      "0,1,,t.a,0,100,10,r1",
	}
	for name, row := range rows {
		in := "#name,x,1048576\nseq,time,query_id,template,class,size,cost,relations\n" + row + "\n"
		_, err := ReadCSV(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: ReadCSV must fail", name)
			continue
		}
		// The position must be the physical file line (the metadata and
		// header rows sit on lines 1-2, the bad row on line 3).
		if !strings.Contains(err.Error(), "line 3") {
			t.Errorf("%s: error %q does not carry the file line", name, err)
		}
	}
}

// rawBinaryTrace hand-encodes a v1 binary trace with one record, so the
// test can produce byte streams the (now validating) writer refuses to.
func rawBinaryTrace(size int64, cost float64, queryID string) []byte {
	var buf bytes.Buffer
	buf.WriteString("WMTRACE1")
	uv := func(v uint64) { buf.Write(binary.AppendUvarint(nil, v)) }
	vi := func(v int64) { buf.Write(binary.AppendVarint(nil, v)) }
	str := func(s string) { uv(0); uv(uint64(len(s))); buf.WriteString(s) }
	uv(uint64(len("bad"))) // trace name
	buf.WriteString("bad")
	vi(1 << 20)                // dbBytes
	uv(1)                      // record count
	uv(math.Float64bits(1))    // time
	str(queryID)               // query id
	str("tpl")                 // template
	vi(0)                      // class
	vi(size)                   // size
	uv(math.Float64bits(cost)) // cost
	uv(0)                      // relations
	return buf.Bytes()
}

// TestReadBinaryRejectsInvalidRecords: a size-0 or negative-cost record
// in an externally produced binary stream must be rejected with its
// position, not decoded into the cache's profit math.
func TestReadBinaryRejectsInvalidRecords(t *testing.T) {
	cases := map[string][]byte{
		"zero size":     rawBinaryTrace(0, 10, "q"),
		"negative size": rawBinaryTrace(-8, 10, "q"),
		"negative cost": rawBinaryTrace(100, -3, "q"),
		"NaN cost":      rawBinaryTrace(100, math.NaN(), "q"),
		"empty id":      rawBinaryTrace(100, 10, ""),
	}
	for name, raw := range cases {
		_, err := ReadBinary(bytes.NewReader(raw))
		if err == nil {
			t.Errorf("%s: ReadBinary must fail", name)
			continue
		}
		if !strings.Contains(err.Error(), "record 0") {
			t.Errorf("%s: error %q does not carry the record position", name, err)
		}
	}
	// The same stream with valid values must still decode.
	if _, err := ReadBinary(bytes.NewReader(rawBinaryTrace(100, 10, "q"))); err != nil {
		t.Fatalf("valid hand-encoded stream rejected: %v", err)
	}
}

// TestSemicolonRelationNeverRoundTrips documents the corruption the
// writer-side rejection prevents: without it, one relation "a;b" comes
// back as two.
func TestSemicolonRelationNeverRoundTrips(t *testing.T) {
	tr := sampleTrace()
	tr.Records[0].Relations = []string{"a;b"}
	err := WriteCSV(&bytes.Buffer{}, tr)
	if err == nil {
		t.Fatal("WriteCSV must reject a ';' relation name")
	}
	if !strings.Contains(err.Error(), "a;b") {
		t.Fatalf("error %q does not name the offending relation", err)
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate must reject a ';' relation name")
	}
}
