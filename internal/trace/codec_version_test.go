package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/engine"
)

// samplePlan builds a representative plan descriptor.
func samplePlan() *engine.Descriptor {
	return &engine.Descriptor{
		Rel: "lineitem",
		Preds: []engine.Pred{
			{Col: "l_shipdate", Op: engine.OpRange, Lo: 365, Hi: 729},
			{Col: "l_shipmode", Op: engine.OpEQ, Lo: 3},
		},
		GroupBy: []string{"l_returnflag", "l_linestatus"},
		Aggs: []engine.AggSpec{
			{Kind: engine.AggCount, As: "n"},
			{Kind: engine.AggSum, Col: "l_extendedprice", As: "revenue"},
		},
		Index: "l_shipdate",
	}
}

// planTrace is sampleTrace with descriptors on two records (one scan
// shape, one aggregate shape) and none on the others.
func planTrace() *Trace {
	tr := sampleTrace()
	tr.Records[0].Plan = samplePlan()
	tr.Records[2].Plan = &engine.Descriptor{
		Rel:   "orders",
		Preds: []engine.Pred{{Col: "o_orderdate", Op: engine.OpRange, Lo: 0, Hi: 89}},
		Cols:  []string{"o_orderkey", "o_totalprice"},
	}
	return tr
}

// plansEqual compares the plan fields record by record.
func plansEqual(t *testing.T, a, b *Trace) {
	t.Helper()
	for i := range a.Records {
		x, y := a.Records[i].Plan, b.Records[i].Plan
		if (x == nil) != (y == nil) {
			t.Fatalf("record %d: plan presence differs (%v vs %v)", i, x, y)
		}
		if x != nil && !reflect.DeepEqual(x, y) {
			t.Fatalf("record %d: plan differs\n  wrote %+v\n  read  %+v", i, x, y)
		}
	}
}

// TestBinaryVersionByte pins the versioning rule: plan-free traces encode
// as version 1 — byte-identical to the historical unversioned format —
// and traces with descriptors as version 2.
func TestBinaryVersionByte(t *testing.T) {
	var v1, v2 bytes.Buffer
	if err := WriteBinary(&v1, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&v2, planTrace()); err != nil {
		t.Fatal(err)
	}
	if got := string(v1.Bytes()[:8]); got != "WMTRACE1" {
		t.Fatalf("plan-free magic = %q, want WMTRACE1", got)
	}
	if got := string(v2.Bytes()[:8]); got != "WMTRACE2" {
		t.Fatalf("plan-carrying magic = %q, want WMTRACE2", got)
	}
}

// TestBinaryRoundtripV1 round-trips a plan-free trace through the v1
// layout (old traces must still decode).
func TestBinaryRoundtripV1(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracesEqual(tr, got); err != nil {
		t.Fatal(err)
	}
	if got.HasPlans() {
		t.Fatal("v1 trace decoded with plans")
	}
}

// TestBinaryRoundtripV2 round-trips a plan-carrying trace, descriptors
// included.
func TestBinaryRoundtripV2(t *testing.T) {
	tr := planTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracesEqual(tr, got); err != nil {
		t.Fatal(err)
	}
	plansEqual(t, tr, got)
}

// TestBinaryUnknownVersion rejects future codec versions distinctly from
// bad magic.
func TestBinaryUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[7] = '9'
	_, err := ReadBinary(bytes.NewReader(raw))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("unsupported")) {
		t.Fatalf("err = %v, want unsupported-version error", err)
	}
}

// TestCSVRoundtripPlans round-trips descriptors through the CSV codec's
// ninth column and accepts historical eight-column rows.
func TestCSVRoundtripPlans(t *testing.T) {
	tr := planTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracesEqual(tr, got); err != nil {
		t.Fatal(err)
	}
	plansEqual(t, tr, got)

	// Historical eight-column CSV still decodes (with nil plans).
	legacy := "#name,old,1048576\n" +
		"seq,time,query_id,template,class,size,cost,relations\n" +
		"0,1,q1,t.a,0,100,10,r1;r2\n"
	old, err := ReadCSV(bytes.NewReader([]byte(legacy)))
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 1 || old.HasPlans() {
		t.Fatalf("legacy CSV decoded to %d records, plans=%v", old.Len(), old.HasPlans())
	}
}
