package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/relation"
)

// This file defines the Set-Query-like templates. The original benchmark
// has under 100 total instances, so — exactly as §4.1 of the paper
// describes — the parameterization is widened (random K-column choices,
// random values and ranges) to obtain a larger instance space while keeping
// the drill-down skew: the group-by and join templates have tiny spaces and
// repeat constantly, the multi-condition selections essentially never
// repeat.
//
// The cost distribution this produces is deliberately more skewed than
// TPC-D's (the paper's observation in §4.2): costs range from a couple of
// page reads (indexed point lookups) to a full scan plus join, and the most
// expensive templates are among the most frequently repeating.

// kColumns are the BENCH table's indexed K-columns, in cardinality order.
var kColumns = []string{
	"k500k", "k250k", "k100k", "k40k", "k10k", "k1k",
	"k100", "k25", "k10", "k5", "k4", "k2",
}

// lowCardColumns are the K-columns with small domains, used where the
// benchmark queries condition on low-cardinality attributes.
var lowCardColumns = []string{"k100", "k25", "k10", "k5", "k4", "k2"}

// SetQueryTemplates builds the template set for a Set Query database.
func SetQueryTemplates(db *relation.Database) []*Template {
	bench := db.MustRelation("bench")
	card := func(col string) int64 {
		return bench.Cardinality(bench.MustColumnIndex(col))
	}
	rows := bench.Rows

	pickCol := func(r *rand.Rand, cols []string) string {
		return cols[uniformInt(r, int64(len(cols)))]
	}

	return []*Template{
		{
			// SQ1: COUNT(*) with a single indexed condition. The column
			// choice spans all twelve K-columns: conditions on the
			// low-cardinality columns repeat constantly and are the most
			// expensive to evaluate (an unclustered index scan touching
			// most pages), conditions on K500K almost never repeat and
			// cost two page reads — the benchmark's signature cost skew.
			Name: "sq.q1", Instances: 456_000,
			Gen: func(r *rand.Rand) Query {
				col := pickCol(r, kColumns)
				v := uniformInt(r, card(col))
				return Query{
					ID: fmt.Sprintf("select count(*) from bench where %s = %d", col, v),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel:   "bench",
							Preds: []engine.Pred{{Col: col, Op: engine.OpEQ, Lo: v}},
							Index: col,
							Cols:  []string{"kseq"},
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggCount, As: "count"}},
					},
				}
			},
		},
		{
			// SQ2A: COUNT(*) with two conditions, driven by the more
			// selective index.
			Name: "sq.q2a", Instances: 20_000,
			Gen: func(r *rand.Rand) Query {
				col := pickCol(r, kColumns[:8]) // the higher-cardinality side
				v := uniformInt(r, card(col))
				k2 := uniformInt(r, 2)
				return Query{
					ID: fmt.Sprintf("select count(*) from bench where k2 = %d and %s = %d", k2, col, v),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel: "bench",
							Preds: []engine.Pred{
								{Col: "k2", Op: engine.OpEQ, Lo: k2},
								{Col: col, Op: engine.OpEQ, Lo: v},
							},
							Index: col,
							Cols:  []string{"kseq"},
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggCount, As: "count"}},
					},
				}
			},
		},
		{
			// SQ2B: COUNT(*) with an indexed range condition over a
			// mid-cardinality column plus a low-cardinality equality. The
			// instance space is effectively unbounded, so these rarely
			// repeat; they are down-weighted the way ad-hoc range probes
			// are a minority of a drill-down stream.
			Name: "sq.q2b", Instances: 50_000, Weight: 0.5,
			Gen: func(r *rand.Rand) Query {
				col := pickCol(r, []string{"k10k", "k1k", "k100"})
				c := card(col)
				lo, hi := uniformRange(r, c, c/50+1)
				k4 := uniformInt(r, 4)
				return Query{
					ID: fmt.Sprintf("select count(*) from bench where k4 = %d and %s between %d and %d", k4, col, lo, hi),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel: "bench",
							Preds: []engine.Pred{
								{Col: "k4", Op: engine.OpEQ, Lo: k4},
								{Col: col, Op: engine.OpRange, Lo: lo, Hi: hi},
							},
							Index: col,
							Cols:  []string{"kseq"},
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggCount, As: "count"}},
					},
				}
			},
		},
		{
			// SQ3: SUM over a clustered KSEQ range with a secondary
			// condition; the range start is bucketed, keeping the space
			// moderate.
			Name: "sq.q3", Instances: 16 * 6 * 25,
			Gen: func(r *rand.Rand) Query {
				col := pickCol(r, lowCardColumns)
				v := uniformInt(r, card(col))
				width := rows / 10
				lo := uniformInt(r, 16) * (rows - width) / 16
				return Query{
					ID: fmt.Sprintf("select sum(k1k) from bench where kseq between %d and %d and %s = %d", lo, lo+width-1, col, v),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel: "bench",
							Preds: []engine.Pred{
								{Col: "kseq", Op: engine.OpRange, Lo: lo, Hi: lo + width - 1},
								{Col: col, Op: engine.OpEQ, Lo: v},
							},
							Index: "kseq",
							Cols:  []string{"k1k"},
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggSum, Col: "k1k", As: "sum"}},
					},
				}
			},
		},
		{
			// SQ4: multi-condition selection returning key lists. Three to
			// five random equality conditions on low-cardinality columns —
			// a combinatorial instance space that essentially never
			// repeats. The most selective chosen column drives an index
			// access; the residual conditions apply after the fetch.
			Name: "sq.q4", Instances: 300_000, Weight: 0.5,
			Gen: func(r *rand.Rand) Query {
				n := 3 + uniformInt(r, 3)
				perm := r.Perm(len(lowCardColumns))
				preds := make([]engine.Pred, 0, n)
				best := ""
				var bestCard int64
				id := "select kseq from bench where"
				for i := int64(0); i < n; i++ {
					col := lowCardColumns[perm[i]]
					v := uniformInt(r, card(col))
					preds = append(preds, engine.Pred{Col: col, Op: engine.OpEQ, Lo: v})
					if c := card(col); c > bestCard {
						bestCard, best = c, col
					}
					if i > 0 {
						id += " and"
					}
					id += fmt.Sprintf(" %s = %d", col, v)
				}
				return Query{
					ID: id,
					Plan: &engine.Project{
						Input: &engine.Scan{Rel: "bench", Preds: preds, Index: best, Cols: []string{"kseq"}},
						Cols:  []string{"kseq"},
					},
				}
			},
		},
		{
			// SQ5: GROUP BY (K2, KN) counts. Eleven instances in total, so
			// each repeats hundreds of times; the K500K/K250K variants
			// produce multi-megabyte retrieved sets from a full scan —
			// these groupings dominate the infinite-cache working set.
			Name: "sq.q5", Instances: 11, Weight: 1.5,
			Gen: func(r *rand.Rand) Query {
				col := pickCol(r, kColumns[:11])
				if col == "k2" {
					col = "k4"
				}
				return Query{
					ID: fmt.Sprintf("select k2, %s, count(*) from bench group by k2, %s", col, col),
					Plan: &engine.Aggregate{
						Input:   &engine.Scan{Rel: "bench", Cols: []string{"k2", col}},
						GroupBy: []string{"k2", col},
						Aggs:    []engine.AggSpec{{Kind: engine.AggCount, As: "count"}},
					},
				}
			},
		},
		{
			// SQ6: self-join on a mid-cardinality column with a clustered
			// range on one side. Ten range buckets × three join columns:
			// very expensive and constantly repeating.
			Name: "sq.q6", Instances: 30, Weight: 1.5,
			Gen: func(r *rand.Rand) Query {
				col := pickCol(r, []string{"k100k", "k40k", "k10k"})
				width := rows / 10
				lo := uniformInt(r, 10) * (rows - width) / 10
				return Query{
					ID: fmt.Sprintf("select count(*) from bench b1, bench b2 where b1.kseq between %d and %d and b1.%s = b2.%s", lo, lo+width-1, col, col),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Scan{
								Rel:   "bench",
								Preds: []engine.Pred{{Col: "kseq", Op: engine.OpRange, Lo: lo, Hi: lo + width - 1}},
								Index: "kseq",
								Cols:  []string{"kseq", col},
							},
							Right: &engine.Project{
								Input: &engine.Scan{Rel: "bench", Cols: []string{col}},
								Cols:  []string{col},
								As:    []string{"b2_" + col},
							},
							LeftCol: col, RightCol: "b2_" + col,
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggCount, As: "count"}},
					},
				}
			},
		},
		{
			// SQ7: clustered range projection — the paper's "inexpensive
			// projection": a few dozen page reads retrieving a set tens of
			// kilobytes large, which if admitted can evict hundreds of
			// cached aggregates. The case LNC-A exists for.
			Name: "sq.q7", Instances: 8 * 4 * 4,
			Gen: func(r *rand.Rand) Query {
				col := pickCol(r, []string{"k500k", "k100k", "k10k", "k100"})
				width := rows / int64(1024>>uniformInt(r, 4)) // 1/1024 .. 1/128 of rows
				lo := uniformInt(r, 8) * (rows - width) / 8
				return Query{
					ID: fmt.Sprintf("select kseq, %s from bench where kseq between %d and %d", col, lo, lo+width-1),
					Plan: &engine.Project{
						Input: &engine.Scan{
							Rel:   "bench",
							Preds: []engine.Pred{{Col: "kseq", Op: engine.OpRange, Lo: lo, Hi: lo + width - 1}},
							Index: "kseq",
							Cols:  []string{"kseq", col},
						},
						Cols: []string{"kseq", col},
					},
				}
			},
		},
	}
}
