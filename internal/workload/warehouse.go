package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/relation"
)

// WarehouseTemplates builds the query mix of the Figure 7 buffer experiment
// over a relation.Warehouse database. Relation popularity is skewed
// (weight ∝ 1/(rank+1)) so the buffer pool sees real locality: the hot
// relations' pages stay resident, queries over the tail relations churn.
// Each relation gets four template families:
//
//   - a clustered-range aggregate (drill-down style, repeats moderately),
//   - a full-scan group-by from a tiny instance space (repeats heavily —
//     these are the retrieved sets WATCHMAN caches, whose buffered pages
//     then become redundant),
//   - ad-hoc row listings with an unbounded instance space that LNC-A
//     refuses (they always execute and depend on the buffer pool), and
//   - an expensive join with the next relation.
func WarehouseTemplates(db *relation.Database) []*Template {
	names := db.RelationNames()
	var out []*Template
	for i, name := range names {
		rel := db.MustRelation(name)
		weight := 1.0 / float64(i+1)
		rows := rel.Rows
		relName := name
		next := names[(i+1)%len(names)]

		out = append(out, &Template{
			Name: fmt.Sprintf("wh.range.%s", relName), Weight: weight, Instances: 128 * 4,
			Gen: func(r *rand.Rand) Query {
				width := rows / int64(16<<uniformInt(r, 3)) // 1/16 .. 1/64
				lo := uniformInt(r, 128) * (rows - width) / 128
				return Query{
					ID: fmt.Sprintf("select sum(amount) from %s where id between %d and %d", relName, lo, lo+width-1),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel:   relName,
							Preds: []engine.Pred{{Col: "id", Op: engine.OpRange, Lo: lo, Hi: lo + width - 1}},
							Index: "id",
							Cols:  []string{"amount"},
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggSum, Col: "amount", As: "total"}},
					},
				}
			},
		})
		out = append(out, &Template{
			Name: fmt.Sprintf("wh.groupby.%s", relName), Weight: weight, Instances: 3,
			Gen: func(r *rand.Rand) Query {
				col := []string{"cat", "flag", "day"}[uniformInt(r, 3)]
				return Query{
					ID: fmt.Sprintf("select %s, count(*), sum(amount) from %s group by %s", col, relName, col),
					Plan: &engine.Aggregate{
						Input:   &engine.Scan{Rel: relName, Cols: []string{col, "amount"}},
						GroupBy: []string{col},
						Aggs: []engine.AggSpec{
							{Kind: engine.AggCount, As: "n"},
							{Kind: engine.AggSum, Col: "amount", As: "total"},
						},
					},
				}
			},
		})
		out = append(out, &Template{
			// Ad-hoc row listings over the "recent" half of the relation:
			// the instance space is effectively unbounded and the retrieved
			// sets are tens of kilobytes, so LNC-A refuses them — they
			// always execute and are the queries that still need the buffer
			// pool. The "historical" half of each relation is touched only
			// by the (cached) full-scan templates, so its pages become
			// highly redundant once those sets are cached: exactly the
			// pages a good p₀ frees, and the pages an aggressive p₀ = 0
			// wrongly extends to (collapsing the hit ratio, paper Fig. 7).
			Name: fmt.Sprintf("wh.adhoc.%s", relName), Weight: 3 * weight, Instances: 1e9,
			Gen: func(r *rand.Rand) Query {
				width := rows/32 + uniformInt(r, rows/32)
				lo := uniformInt(r, rows/4-width)
				return Query{
					ID: fmt.Sprintf("select id, amount from %s where id between %d and %d", relName, lo, lo+width-1),
					Plan: &engine.Project{
						Input: &engine.Scan{
							Rel:   relName,
							Preds: []engine.Pred{{Col: "id", Op: engine.OpRange, Lo: lo, Hi: lo + width - 1}},
							Index: "id",
							Cols:  []string{"id", "amount"},
						},
						Cols: []string{"id", "amount"},
					},
				}
			},
		})
		out = append(out, &Template{
			Name: fmt.Sprintf("wh.join.%s", relName), Weight: weight / 4, Instances: 40,
			Gen: func(r *rand.Rand) Query {
				cat := uniformInt(r, 40)
				return Query{
					ID: fmt.Sprintf("select count(*) from %s a, %s b where a.cat = %d and a.ref = b.id", relName, next, cat),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Scan{
								Rel:   relName,
								Preds: []engine.Pred{{Col: "cat", Op: engine.OpEQ, Lo: cat}},
								Cols:  []string{"ref"},
							},
							Right: &engine.Project{
								Input: &engine.Scan{Rel: next, Cols: []string{"id"}},
								Cols:  []string{"id"},
								As:    []string{"b_id"},
							},
							LeftCol: "ref", RightCol: "b_id",
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggCount, As: "n"}},
					},
				}
			},
		})
	}
	return out
}
