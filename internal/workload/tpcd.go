package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/relation"
)

// This file defines the 17 TPC-D-like query templates (the benchmark's 17
// read-only templates; the two update functions are excluded exactly as in
// §4.1 of the paper). Each template mirrors the join/aggregation shape of
// its TPC-D counterpart over the synthetic schema and draws its parameters
// uniformly from intervals sized like the specification's, which is what
// produces the paper's drill-down skew: template instance spaces below range
// from 4 (q13) to several million (q16), so some queries repeat hundreds of
// times in a 17 000-query trace and others never do.

// dateDays must match the schema's date-domain cardinality.
const dateDays = 2557

// TPCDTemplates builds the template set for a TPC-D database.
func TPCDTemplates(db *relation.Database) []*Template {
	ord := db.MustRelation("orders")
	part := db.MustRelation("part")

	partRetailCard := part.Columns[part.MustColumnIndex("p_retailprice")].Cardinality
	clerkCard := ord.Columns[ord.MustColumnIndex("o_clerk")].Cardinality

	ts := []*Template{
		{
			// Q1: pricing summary report. Params: shipdate cutoff delta.
			Name: "tpcd.q1", Instances: 61,
			Gen: func(r *rand.Rand) Query {
				delta := 60 + uniformInt(r, 61)
				cutoff := int64(dateDays) - 1 - delta
				return Query{
					ID: fmt.Sprintf("select l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*) from lineitem where l_shipdate <= %d group by l_returnflag, l_linestatus", cutoff),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel:   "lineitem",
							Preds: []engine.Pred{{Col: "l_shipdate", Op: engine.OpRange, Lo: 0, Hi: cutoff}},
							Cols:  []string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount"},
						},
						GroupBy: []string{"l_returnflag", "l_linestatus"},
						Aggs: []engine.AggSpec{
							{Kind: engine.AggSum, Col: "l_quantity", As: "sum_qty"},
							{Kind: engine.AggSum, Col: "l_extendedprice", As: "sum_price"},
							{Kind: engine.AggAvg, Col: "l_quantity", As: "avg_qty"},
							{Kind: engine.AggAvg, Col: "l_extendedprice", As: "avg_price"},
							{Kind: engine.AggAvg, Col: "l_discount", As: "avg_disc"},
							{Kind: engine.AggCount, As: "count_order"},
						},
					},
				}
			},
		},
		{
			// Q2: minimum-cost supplier. Params: part size, type, region.
			Name: "tpcd.q2", Instances: 50 * 150 * 5,
			Gen: func(r *rand.Rand) Query {
				size := uniformInt(r, 50)
				ptype := uniformInt(r, 150)
				region := uniformInt(r, 5)
				return Query{
					ID: fmt.Sprintf("select s_acctbal, s_name, n_name, p_partkey from part, partsupp, supplier, nation where p_size = %d and p_type = %d and n_regionkey = %d and p_partkey = ps_partkey and ps_suppkey = s_suppkey and s_nationkey = n_nationkey", size, ptype, region),
					Plan: &engine.Join{
						Left: &engine.Join{
							Left: &engine.Join{
								Left: &engine.Scan{
									Rel: "part",
									Preds: []engine.Pred{
										{Col: "p_size", Op: engine.OpEQ, Lo: size},
										{Col: "p_type", Op: engine.OpEQ, Lo: ptype},
									},
									Cols: []string{"p_partkey", "p_mfgr"},
								},
								Right: &engine.Scan{
									Rel:  "partsupp",
									Cols: []string{"ps_partkey", "ps_suppkey", "ps_supplycost"},
								},
								LeftCol: "p_partkey", RightCol: "ps_partkey",
							},
							Right: &engine.Scan{
								Rel:  "supplier",
								Cols: []string{"s_suppkey", "s_name", "s_acctbal", "s_nationkey"},
							},
							LeftCol: "ps_suppkey", RightCol: "s_suppkey",
						},
						Right: &engine.Scan{
							Rel:   "nation",
							Preds: []engine.Pred{{Col: "n_regionkey", Op: engine.OpEQ, Lo: region}},
							Cols:  []string{"n_nationkey", "n_name"},
						},
						LeftCol: "s_nationkey", RightCol: "n_nationkey",
					},
				}
			},
		},
		{
			// Q3: shipping priority. Params: market segment, date.
			Name: "tpcd.q3", Instances: 5 * 31,
			Gen: func(r *rand.Rand) Query {
				seg := uniformInt(r, 5)
				date := 1155 + uniformInt(r, 31) // a March-1995-like window
				return Query{
					ID: fmt.Sprintf("select l_orderkey, sum(l_extendedprice), o_orderdate, o_shippriority from customer, orders, lineitem where c_mktsegment = %d and o_orderdate < %d and l_shipdate > %d and c_custkey = o_custkey and l_orderkey = o_orderkey group by l_orderkey, o_orderdate, o_shippriority order by revenue desc limit 10", seg, date, date),
					Plan: &engine.Sort{
						Input: &engine.Aggregate{
							Input: &engine.Join{
								Left: &engine.Join{
									Left: &engine.Scan{
										Rel:   "customer",
										Preds: []engine.Pred{{Col: "c_mktsegment", Op: engine.OpEQ, Lo: seg}},
										Cols:  []string{"c_custkey"},
									},
									Right: &engine.Scan{
										Rel:   "orders",
										Preds: []engine.Pred{{Col: "o_orderdate", Op: engine.OpRange, Lo: 0, Hi: date - 1}},
										Cols:  []string{"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"},
									},
									LeftCol: "c_custkey", RightCol: "o_custkey",
								},
								Right: &engine.Scan{
									Rel:   "lineitem",
									Preds: []engine.Pred{{Col: "l_shipdate", Op: engine.OpRange, Lo: date + 1, Hi: dateDays - 1}},
									Cols:  []string{"l_orderkey", "l_extendedprice"},
								},
								LeftCol: "o_orderkey", RightCol: "l_orderkey",
							},
							GroupBy: []string{"l_orderkey", "o_orderdate", "o_shippriority"},
							Aggs:    []engine.AggSpec{{Kind: engine.AggSum, Col: "l_extendedprice", As: "revenue"}},
						},
						By: []string{"revenue"}, Desc: true, Limit: 10,
					},
				}
			},
		},
		{
			// Q4: order priority checking. Params: quarter start.
			Name: "tpcd.q4", Instances: 28,
			Gen: func(r *rand.Rand) Query {
				q := uniformInt(r, 28) * 90
				return Query{
					ID: fmt.Sprintf("select o_orderpriority, count(*) from orders, lineitem where o_orderdate >= %d and o_orderdate < %d and l_receiptdate between %d and %d and l_orderkey = o_orderkey group by o_orderpriority", q, q+90, q, q+120),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Scan{
								Rel:   "orders",
								Preds: []engine.Pred{{Col: "o_orderdate", Op: engine.OpRange, Lo: q, Hi: q + 89}},
								Cols:  []string{"o_orderkey", "o_orderpriority"},
							},
							Right: &engine.Scan{
								Rel:   "lineitem",
								Preds: []engine.Pred{{Col: "l_receiptdate", Op: engine.OpRange, Lo: q, Hi: q + 120}},
								Cols:  []string{"l_orderkey"},
							},
							LeftCol: "o_orderkey", RightCol: "l_orderkey",
						},
						GroupBy: []string{"o_orderpriority"},
						Aggs:    []engine.AggSpec{{Kind: engine.AggCount, As: "order_count"}},
					},
				}
			},
		},
		{
			// Q5: local supplier volume. Params: region, order year.
			Name: "tpcd.q5", Instances: 5 * 7,
			Gen: func(r *rand.Rand) Query {
				region := uniformInt(r, 5)
				year := uniformInt(r, 7) * 365
				return Query{
					ID: fmt.Sprintf("select n_name, sum(l_extendedprice) from customer, orders, lineitem, supplier, nation where n_regionkey = %d and o_orderdate >= %d and o_orderdate < %d and c_custkey = o_custkey and l_orderkey = o_orderkey and l_suppkey = s_suppkey and s_nationkey = n_nationkey group by n_name", region, year, year+365),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Join{
								Left: &engine.Join{
									Left: &engine.Join{
										Left: &engine.Scan{Rel: "customer", Cols: []string{"c_custkey"}},
										Right: &engine.Scan{
											Rel:   "orders",
											Preds: []engine.Pred{{Col: "o_orderdate", Op: engine.OpRange, Lo: year, Hi: year + 364}},
											Cols:  []string{"o_orderkey", "o_custkey"},
										},
										LeftCol: "c_custkey", RightCol: "o_custkey",
									},
									Right:   &engine.Scan{Rel: "lineitem", Cols: []string{"l_orderkey", "l_suppkey", "l_extendedprice"}},
									LeftCol: "o_orderkey", RightCol: "l_orderkey",
								},
								Right:   &engine.Scan{Rel: "supplier", Cols: []string{"s_suppkey", "s_nationkey"}},
								LeftCol: "l_suppkey", RightCol: "s_suppkey",
							},
							Right: &engine.Scan{
								Rel:   "nation",
								Preds: []engine.Pred{{Col: "n_regionkey", Op: engine.OpEQ, Lo: region}},
								Cols:  []string{"n_nationkey", "n_name"},
							},
							LeftCol: "s_nationkey", RightCol: "n_nationkey",
						},
						GroupBy: []string{"n_name"},
						Aggs:    []engine.AggSpec{{Kind: engine.AggSum, Col: "l_extendedprice", As: "revenue"}},
					},
				}
			},
		},
		{
			// Q6: forecasting revenue change. Params: year, discount, quantity.
			Name: "tpcd.q6", Instances: 7 * 9 * 2,
			Gen: func(r *rand.Rand) Query {
				year := uniformInt(r, 7) * 365
				disc := uniformInt(r, 9)
				qty := 24 + uniformInt(r, 2)
				return Query{
					ID: fmt.Sprintf("select sum(l_extendedprice) from lineitem where l_shipdate >= %d and l_shipdate < %d and l_discount between %d and %d and l_quantity < %d", year, year+365, disc, disc+2, qty),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel: "lineitem",
							Preds: []engine.Pred{
								{Col: "l_shipdate", Op: engine.OpRange, Lo: year, Hi: year + 364},
								{Col: "l_discount", Op: engine.OpRange, Lo: disc, Hi: disc + 2},
								{Col: "l_quantity", Op: engine.OpRange, Lo: 0, Hi: qty - 1},
							},
							Cols: []string{"l_extendedprice"},
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggSum, Col: "l_extendedprice", As: "revenue"}},
					},
				}
			},
		},
		{
			// Q7: volume shipping between two nations. Params: nation pair.
			Name: "tpcd.q7", Instances: 25 * 24,
			Gen: func(r *rand.Rand) Query {
				n1 := uniformInt(r, 25)
				n2 := uniformInt(r, 24)
				if n2 >= n1 {
					n2++
				}
				return Query{
					ID: fmt.Sprintf("select sum(l_extendedprice) from supplier, lineitem, orders, customer where s_nationkey = %d and c_nationkey = %d and s_suppkey = l_suppkey and o_orderkey = l_orderkey and c_custkey = o_custkey", n1, n2),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Join{
								Left: &engine.Join{
									Left: &engine.Scan{
										Rel:   "supplier",
										Preds: []engine.Pred{{Col: "s_nationkey", Op: engine.OpEQ, Lo: n1}},
										Cols:  []string{"s_suppkey"},
									},
									Right:   &engine.Scan{Rel: "lineitem", Cols: []string{"l_suppkey", "l_orderkey", "l_extendedprice"}},
									LeftCol: "s_suppkey", RightCol: "l_suppkey",
								},
								Right:   &engine.Scan{Rel: "orders", Cols: []string{"o_orderkey", "o_custkey"}},
								LeftCol: "l_orderkey", RightCol: "o_orderkey",
							},
							Right: &engine.Scan{
								Rel:   "customer",
								Preds: []engine.Pred{{Col: "c_nationkey", Op: engine.OpEQ, Lo: n2}},
								Cols:  []string{"c_custkey"},
							},
							LeftCol: "o_custkey", RightCol: "c_custkey",
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggSum, Col: "l_extendedprice", As: "revenue"}},
					},
				}
			},
		},
		{
			// Q8: national market share. Params: part type, region, 2-year window.
			Name: "tpcd.q8", Instances: 150 * 5,
			Gen: func(r *rand.Rand) Query {
				ptype := uniformInt(r, 150)
				region := uniformInt(r, 5)
				return Query{
					ID: fmt.Sprintf("select sum(l_extendedprice) from part, lineitem, orders, customer, nation where p_type = %d and n_regionkey = %d and o_orderdate between 365 and 1094 and p_partkey = l_partkey and l_orderkey = o_orderkey and o_custkey = c_custkey and c_nationkey = n_nationkey", ptype, region),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Join{
								Left: &engine.Join{
									Left: &engine.Join{
										Left: &engine.Scan{
											Rel:   "part",
											Preds: []engine.Pred{{Col: "p_type", Op: engine.OpEQ, Lo: ptype}},
											Cols:  []string{"p_partkey"},
										},
										Right:   &engine.Scan{Rel: "lineitem", Cols: []string{"l_partkey", "l_orderkey", "l_extendedprice"}},
										LeftCol: "p_partkey", RightCol: "l_partkey",
									},
									Right: &engine.Scan{
										Rel:   "orders",
										Preds: []engine.Pred{{Col: "o_orderdate", Op: engine.OpRange, Lo: 365, Hi: 1094}},
										Cols:  []string{"o_orderkey", "o_custkey"},
									},
									LeftCol: "l_orderkey", RightCol: "o_orderkey",
								},
								Right:   &engine.Scan{Rel: "customer", Cols: []string{"c_custkey", "c_nationkey"}},
								LeftCol: "o_custkey", RightCol: "c_custkey",
							},
							Right: &engine.Scan{
								Rel:   "nation",
								Preds: []engine.Pred{{Col: "n_regionkey", Op: engine.OpEQ, Lo: region}},
								Cols:  []string{"n_nationkey"},
							},
							LeftCol: "c_nationkey", RightCol: "n_nationkey",
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggSum, Col: "l_extendedprice", As: "mkt_share"}},
					},
				}
			},
		},
		{
			// Q9: product type profit. Params: a 1/92 slice of the part price
			// domain standing in for the benchmark's 92 part-name colors.
			Name: "tpcd.q9", Instances: 92,
			Gen: func(r *rand.Rand) Query {
				c := uniformInt(r, 92)
				w := partRetailCard / 92
				lo := c * w
				return Query{
					ID: fmt.Sprintf("select n_name, sum(l_extendedprice) from part, lineitem, supplier, nation where p_retailprice between %d and %d and p_partkey = l_partkey and l_suppkey = s_suppkey and s_nationkey = n_nationkey group by n_name", lo, lo+w-1),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Join{
								Left: &engine.Join{
									Left: &engine.Scan{
										Rel:   "part",
										Preds: []engine.Pred{{Col: "p_retailprice", Op: engine.OpRange, Lo: lo, Hi: lo + w - 1}},
										Cols:  []string{"p_partkey"},
									},
									Right:   &engine.Scan{Rel: "lineitem", Cols: []string{"l_partkey", "l_suppkey", "l_extendedprice"}},
									LeftCol: "p_partkey", RightCol: "l_partkey",
								},
								Right:   &engine.Scan{Rel: "supplier", Cols: []string{"s_suppkey", "s_nationkey"}},
								LeftCol: "l_suppkey", RightCol: "s_suppkey",
							},
							Right:   &engine.Scan{Rel: "nation", Cols: []string{"n_nationkey", "n_name"}},
							LeftCol: "s_nationkey", RightCol: "n_nationkey",
						},
						GroupBy: []string{"n_name"},
						Aggs:    []engine.AggSpec{{Kind: engine.AggSum, Col: "l_extendedprice", As: "profit"}},
					},
				}
			},
		},
		{
			// Q10: returned items. Params: quarter within a two-year window.
			// Returns the full ranked customer list (the spec's unlimited
			// result), giving TPC-D a family of repeating tens-of-KB sets
			// that keep vanilla LRU from converging within the 5% sweep.
			Name: "tpcd.q10", Instances: 24,
			Gen: func(r *rand.Rand) Query {
				m := 365 + uniformInt(r, 24)*30
				return Query{
					ID: fmt.Sprintf("select c_custkey, c_name, sum(l_extendedprice) from customer, orders, lineitem where o_orderdate between %d and %d and l_returnflag = 0 and c_custkey = o_custkey and l_orderkey = o_orderkey group by c_custkey, c_name order by revenue desc", m, m+89),
					Plan: &engine.Sort{
						Input: &engine.Aggregate{
							Input: &engine.Join{
								Left: &engine.Join{
									Left: &engine.Scan{Rel: "customer", Cols: []string{"c_custkey", "c_name"}},
									Right: &engine.Scan{
										Rel:   "orders",
										Preds: []engine.Pred{{Col: "o_orderdate", Op: engine.OpRange, Lo: m, Hi: m + 89}},
										Cols:  []string{"o_orderkey", "o_custkey"},
									},
									LeftCol: "c_custkey", RightCol: "o_custkey",
								},
								Right: &engine.Scan{
									Rel:   "lineitem",
									Preds: []engine.Pred{{Col: "l_returnflag", Op: engine.OpEQ, Lo: 0}},
									Cols:  []string{"l_orderkey", "l_extendedprice"},
								},
								LeftCol: "o_orderkey", RightCol: "l_orderkey",
							},
							GroupBy: []string{"c_custkey", "c_name"},
							Aggs:    []engine.AggSpec{{Kind: engine.AggSum, Col: "l_extendedprice", As: "revenue"}},
						},
						By: []string{"revenue"}, Desc: true,
					},
				}
			},
		},
		{
			// Q11: important stock identification. Params: nation. Produces a
			// large retrieved set from a comparatively cheap two-relation
			// join — an admission-policy stress case.
			Name: "tpcd.q11", Instances: 25,
			Gen: func(r *rand.Rand) Query {
				n := uniformInt(r, 25)
				return Query{
					ID: fmt.Sprintf("select ps_partkey, sum(ps_supplycost) from partsupp, supplier where s_nationkey = %d and ps_suppkey = s_suppkey group by ps_partkey", n),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Scan{Rel: "partsupp", Cols: []string{"ps_partkey", "ps_suppkey", "ps_supplycost"}},
							Right: &engine.Scan{
								Rel:   "supplier",
								Preds: []engine.Pred{{Col: "s_nationkey", Op: engine.OpEQ, Lo: n}},
								Cols:  []string{"s_suppkey"},
							},
							LeftCol: "ps_suppkey", RightCol: "s_suppkey",
						},
						GroupBy: []string{"ps_partkey"},
						Aggs:    []engine.AggSpec{{Kind: engine.AggSum, Col: "ps_supplycost", As: "value"}},
					},
				}
			},
		},
		{
			// Q12: shipping modes and order priority. Params: mode, year.
			Name: "tpcd.q12", Instances: 7 * 7,
			Gen: func(r *rand.Rand) Query {
				mode := uniformInt(r, 7)
				year := uniformInt(r, 7) * 365
				return Query{
					ID: fmt.Sprintf("select o_orderpriority, count(*) from orders, lineitem where l_shipmode = %d and l_receiptdate >= %d and l_receiptdate < %d and o_orderkey = l_orderkey group by o_orderpriority", mode, year, year+365),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Scan{Rel: "orders", Cols: []string{"o_orderkey", "o_orderpriority"}},
							Right: &engine.Scan{
								Rel: "lineitem",
								Preds: []engine.Pred{
									{Col: "l_shipmode", Op: engine.OpEQ, Lo: mode},
									{Col: "l_receiptdate", Op: engine.OpRange, Lo: year, Hi: year + 364},
								},
								Cols: []string{"l_orderkey"},
							},
							LeftCol: "o_orderkey", RightCol: "l_orderkey",
						},
						GroupBy: []string{"o_orderpriority"},
						Aggs:    []engine.AggSpec{{Kind: engine.AggCount, As: "count"}},
					},
				}
			},
		},
		{
			// Q13: customer distribution. Params: a clerk quartile standing
			// in for the benchmark's four word-pair combinations — the
			// smallest instance space in the trace, hence the most frequently
			// repeating template.
			Name: "tpcd.q13", Instances: 4,
			Gen: func(r *rand.Rand) Query {
				qtr := uniformInt(r, 4)
				w := clerkCard / 4
				lo := qtr * w
				return Query{
					ID: fmt.Sprintf("select c_nationkey, count(*) from customer, orders where o_clerk between %d and %d and c_custkey = o_custkey group by c_nationkey", lo, lo+w-1),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Scan{Rel: "customer", Cols: []string{"c_custkey", "c_nationkey"}},
							Right: &engine.Scan{
								Rel:   "orders",
								Preds: []engine.Pred{{Col: "o_clerk", Op: engine.OpRange, Lo: lo, Hi: lo + w - 1}},
								Cols:  []string{"o_custkey"},
							},
							LeftCol: "c_custkey", RightCol: "o_custkey",
						},
						GroupBy: []string{"c_nationkey"},
						Aggs:    []engine.AggSpec{{Kind: engine.AggCount, As: "custdist"}},
					},
				}
			},
		},
		{
			// Q14: promotion effect. Params: month.
			Name: "tpcd.q14", Instances: 84,
			Gen: func(r *rand.Rand) Query {
				m := uniformInt(r, 84) * 30
				return Query{
					ID: fmt.Sprintf("select sum(l_extendedprice) from lineitem, part where l_shipdate >= %d and l_shipdate < %d and l_partkey = p_partkey", m, m+30),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Scan{
								Rel:   "lineitem",
								Preds: []engine.Pred{{Col: "l_shipdate", Op: engine.OpRange, Lo: m, Hi: m + 29}},
								Cols:  []string{"l_partkey", "l_extendedprice"},
							},
							Right:   &engine.Scan{Rel: "part", Cols: []string{"p_partkey"}},
							LeftCol: "l_partkey", RightCol: "p_partkey",
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggSum, Col: "l_extendedprice", As: "promo_revenue"}},
					},
				}
			},
		},
		{
			// Q15: top supplier. Params: quarter.
			Name: "tpcd.q15", Instances: 28,
			Gen: func(r *rand.Rand) Query {
				q := uniformInt(r, 28) * 90
				return Query{
					ID: fmt.Sprintf("select s_suppkey, s_name, total from supplier, (select l_suppkey, sum(l_extendedprice) as total from lineitem where l_shipdate >= %d and l_shipdate < %d group by l_suppkey) where s_suppkey = l_suppkey order by total desc limit 1", q, q+90),
					Plan: &engine.Sort{
						Input: &engine.Join{
							Left: &engine.Aggregate{
								Input: &engine.Scan{
									Rel:   "lineitem",
									Preds: []engine.Pred{{Col: "l_shipdate", Op: engine.OpRange, Lo: q, Hi: q + 89}},
									Cols:  []string{"l_suppkey", "l_extendedprice"},
								},
								GroupBy: []string{"l_suppkey"},
								Aggs:    []engine.AggSpec{{Kind: engine.AggSum, Col: "l_extendedprice", As: "total"}},
							},
							Right:   &engine.Scan{Rel: "supplier", Cols: []string{"s_suppkey", "s_name"}},
							LeftCol: "l_suppkey", RightCol: "s_suppkey",
						},
						By: []string{"total"}, Desc: true, Limit: 1,
					},
				}
			},
		},
		{
			// Q16: parts/supplier relationship. Params: brand, type and a
			// random size interval — the effectively-unbounded instance
			// space (~5·10⁶), so instances essentially never repeat.
			Name: "tpcd.q16", Instances: 25 * 150 * 1275,
			Gen: func(r *rand.Rand) Query {
				brand := uniformInt(r, 25)
				ptype := uniformInt(r, 150)
				lo := uniformInt(r, 50)
				hi := lo + uniformInt(r, 50-lo)
				return Query{
					ID: fmt.Sprintf("select p_brand, p_type, p_size, count(*) from part, partsupp where p_brand = %d and p_type = %d and p_size between %d and %d and p_partkey = ps_partkey group by p_brand, p_type, p_size", brand, ptype, lo, hi),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Scan{
								Rel: "part",
								Preds: []engine.Pred{
									{Col: "p_brand", Op: engine.OpEQ, Lo: brand},
									{Col: "p_type", Op: engine.OpEQ, Lo: ptype},
									{Col: "p_size", Op: engine.OpRange, Lo: lo, Hi: hi},
								},
								Cols: []string{"p_partkey", "p_brand", "p_type", "p_size"},
							},
							Right:   &engine.Scan{Rel: "partsupp", Cols: []string{"ps_partkey"}},
							LeftCol: "p_partkey", RightCol: "ps_partkey",
						},
						GroupBy: []string{"p_brand", "p_type", "p_size"},
						Aggs:    []engine.AggSpec{{Kind: engine.AggCount, As: "supplier_cnt"}},
					},
				}
			},
		},
		{
			// Q17: small-quantity-order revenue. Params: brand, container, qty.
			Name: "tpcd.q17", Instances: 25 * 40 * 11,
			Gen: func(r *rand.Rand) Query {
				brand := uniformInt(r, 25)
				cont := uniformInt(r, 40)
				qty := 2 + uniformInt(r, 11)
				return Query{
					ID: fmt.Sprintf("select avg(l_extendedprice) from lineitem, part where p_brand = %d and p_container = %d and l_quantity < %d and p_partkey = l_partkey", brand, cont, qty),
					Plan: &engine.Aggregate{
						Input: &engine.Join{
							Left: &engine.Scan{
								Rel:   "lineitem",
								Preds: []engine.Pred{{Col: "l_quantity", Op: engine.OpRange, Lo: 0, Hi: qty - 1}},
								Cols:  []string{"l_partkey", "l_extendedprice"},
							},
							Right: &engine.Scan{
								Rel: "part",
								Preds: []engine.Pred{
									{Col: "p_brand", Op: engine.OpEQ, Lo: brand},
									{Col: "p_container", Op: engine.OpEQ, Lo: cont},
								},
								Cols: []string{"p_partkey"},
							},
							LeftCol: "l_partkey", RightCol: "p_partkey",
						},
						Aggs: []engine.AggSpec{{Kind: engine.AggAvg, Col: "l_extendedprice", As: "avg_yearly"}},
					},
				}
			},
		},
	}
	return ts
}
