// Package workload generates the benchmark query streams of the paper's
// evaluation (§4.1): a TPC-D-like trace of 17 query templates and a
// Set-Query-like trace with widened parameterization, both following the
// "drill-down analysis" distribution — templates are instantiated with
// parameters drawn uniformly from intervals of wildly different sizes, so
// queries at high summarization levels repeat frequently within a trace
// while queries at low summarization levels do not repeat at all.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/trace"
)

// Query is one instantiated query: its ID string (a compact SQL-ish
// rendering of the template with its parameter values, which the cache
// compresses into the lookup key) and its executable plan.
type Query struct {
	ID   string
	Plan engine.Node
}

// Template is a parameterized query template.
type Template struct {
	// Name identifies the template (e.g. "tpcd.q6").
	Name string
	// Class is the workload class (0 in single-class traces).
	Class int
	// Weight is the relative draw frequency; the standard traces use 1.
	Weight float64
	// Instances is the approximate size of the parameter space, reported
	// by trace statistics. It does not drive generation.
	Instances float64
	// Gen draws parameter values from r and builds the query.
	Gen func(r *rand.Rand) Query
}

// Config parameterizes trace generation.
type Config struct {
	// Queries is the trace length; the paper uses 17 000.
	Queries int
	// Seed drives all random choices; equal seeds give equal traces.
	Seed int64
	// MeanInterarrival is the mean of the exponential inter-arrival time
	// distribution, in seconds. Zero selects 1 s.
	MeanInterarrival float64
}

// normalize fills defaults.
func (c *Config) normalize() {
	if c.Queries <= 0 {
		c.Queries = 17000
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 1
	}
}

// Generate draws a trace of cfg.Queries submissions from the template set
// against the database. Cost and retrieved-set size of each distinct query
// are obtained from the engine's analytic estimator and memoized, mirroring
// the paper's setup where each trace record carries (timestamp, query ID,
// size, cost) measured once.
func Generate(db *relation.Database, templates []*Template, cfg Config) (*trace.Trace, error) {
	cfg.normalize()
	if len(templates) == 0 {
		return nil, fmt.Errorf("workload: no templates")
	}
	eng := engine.New(db)
	rng := rand.New(rand.NewSource(cfg.Seed))

	totalWeight := 0.0
	for _, t := range templates {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		totalWeight += w
	}

	type memo struct {
		size int64
		cost float64
		rels []string
		plan *engine.Descriptor
	}
	seen := make(map[string]memo)

	tr := &trace.Trace{Name: db.Name, DatabaseBytes: db.Bytes()}
	tr.Records = make([]trace.Record, 0, cfg.Queries)
	now := 0.0
	for i := 0; i < cfg.Queries; i++ {
		now += rng.ExpFloat64() * cfg.MeanInterarrival
		t := pickTemplate(templates, totalWeight, rng)
		q := t.Gen(rng)
		m, ok := seen[q.ID]
		if !ok {
			est, err := eng.Estimate(q.Plan)
			if err != nil {
				return nil, fmt.Errorf("workload: template %s: %w", t.Name, err)
			}
			m = memo{
				size: clampSize(est),
				cost: math.Max(1, math.Round(est.Cost)),
				rels: engine.BaseRelations(q.Plan),
			}
			// Derivable plan shapes travel as descriptors so the semantic
			// derivation subsystem can match cached sets against them.
			if d, ok := engine.Describe(q.Plan); ok {
				m.plan = d
			}
			seen[q.ID] = m
		}
		tr.Records = append(tr.Records, trace.Record{
			Seq:       int64(i),
			Time:      now,
			QueryID:   q.ID,
			Template:  t.Name,
			Class:     t.Class,
			Size:      m.size,
			Cost:      m.cost,
			Relations: m.rels,
			Plan:      m.plan,
		})
	}
	return tr, nil
}

// pickTemplate draws a template proportionally to its weight.
func pickTemplate(templates []*Template, totalWeight float64, rng *rand.Rand) *Template {
	x := rng.Float64() * totalWeight
	for _, t := range templates {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		x -= w
		if x < 0 {
			return t
		}
	}
	return templates[len(templates)-1]
}

// clampSize converts an estimated result size to a positive byte count; an
// empty result still occupies one output row, as in the engine's executor.
func clampSize(est engine.Est) int64 {
	w := int64(est.Schema.RowWidth())
	if w < 1 {
		w = 1
	}
	s := int64(math.Round(est.Bytes))
	if s < w {
		return w
	}
	return s
}

// uniformInt returns a uniform value in [0, n).
func uniformInt(r *rand.Rand, n int64) int64 {
	if n <= 1 {
		return 0
	}
	return r.Int63n(n)
}

// uniformRange returns a uniform subrange [lo, hi] of [0, card) of the
// given width.
func uniformRange(r *rand.Rand, card, width int64) (lo, hi int64) {
	if width >= card {
		return 0, card - 1
	}
	lo = uniformInt(r, card-width+1)
	return lo, lo + width - 1
}
