package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/trace"
)

// This file defines the drilldown/rollup benchmark: an OLAP-cube query
// stream over the TPC-D lineitem relation, purpose-built to exercise the
// semantic derivation subsystem. The templates form two derivation
// hierarchies:
//
//   - an aggregate hierarchy: per-year cubes grouped by (returnflag,
//     linestatus, shipmode) with COUNT/SUM/MIN/MAX partials, whose
//     roll-ups — coarser group-bys, residual slices on cube dimensions,
//     scalar AVG summaries — are all answerable from a cached cube;
//   - a detail hierarchy: narrow per-month column slices whose sub-window
//     re-filters and sub-window aggregates are answerable from a cached
//     slice.
//
// The cube templates repeat heavily (only 7 instances), so an exact-match
// cache gets them resident quickly; the derived templates draw from much
// larger instance spaces and rarely repeat, so an exact-only cache pays
// remote cost for them while a derive-enabled cache answers them from the
// cubes for the cost of re-scanning a few kilobytes. A one-shot ad-hoc
// template (unbounded instance space, underivable residuals) keeps the
// admission policy honest.

// drilldown time units, in days of the TPC-D date domain.
const (
	ddYears      = 7
	ddDaysPerYr  = 365
	ddMonths     = 84
	ddDaysPerMon = 30
)

// ddAggs is the partial-aggregate set every cube carries: enough to roll
// up COUNT, SUM, MIN, MAX and AVG queries.
func ddAggs() []engine.AggSpec {
	return []engine.AggSpec{
		{Kind: engine.AggCount, As: "n"},
		{Kind: engine.AggSum, Col: "l_extendedprice", As: "revenue"},
		{Kind: engine.AggMin, Col: "l_extendedprice", As: "lo_price"},
		{Kind: engine.AggMax, Col: "l_extendedprice", As: "hi_price"},
		{Kind: engine.AggSum, Col: "l_quantity", As: "qty"},
	}
}

// yearPred returns the shipdate predicate of year y.
func yearPred(y int64) engine.Pred {
	return engine.Pred{Col: "l_shipdate", Op: engine.OpRange, Lo: y * ddDaysPerYr, Hi: y*ddDaysPerYr + ddDaysPerYr - 1}
}

// DrilldownTemplates builds the drilldown/rollup template set over a TPC-D
// database.
func DrilldownTemplates(db *relation.Database) []*Template {
	_ = db.MustRelation("lineitem") // fail fast on a non-TPC-D database

	cube := func(y int64) *engine.Aggregate {
		return &engine.Aggregate{
			Input: &engine.Scan{
				Rel:   "lineitem",
				Preds: []engine.Pred{yearPred(y)},
				Cols:  []string{"l_returnflag", "l_linestatus", "l_shipmode", "l_extendedprice", "l_quantity"},
			},
			GroupBy: []string{"l_returnflag", "l_linestatus", "l_shipmode"},
			Aggs:    ddAggs(),
		}
	}

	return []*Template{
		{
			// The fine cube: 7 instances, referenced constantly — the hot
			// ancestors everything in the aggregate hierarchy derives from.
			Name: "dd.cube", Weight: 3, Instances: ddYears,
			Gen: func(r *rand.Rand) Query {
				y := uniformInt(r, ddYears)
				return Query{
					ID:   fmt.Sprintf("select l_returnflag, l_linestatus, l_shipmode, count(*), sum(l_extendedprice), min(l_extendedprice), max(l_extendedprice), sum(l_quantity) from lineitem where l_shipdate between %d and %d group by l_returnflag, l_linestatus, l_shipmode", y*ddDaysPerYr, y*ddDaysPerYr+ddDaysPerYr-1),
					Plan: cube(y),
				}
			},
		},
		{
			// Roll-up with a residual slice on a cube dimension: group by
			// (returnflag, linestatus) for one shipmode of one year.
			Name: "dd.mode", Weight: 3, Instances: ddYears * 7,
			Gen: func(r *rand.Rand) Query {
				y := uniformInt(r, ddYears)
				m := uniformInt(r, 7)
				return Query{
					ID: fmt.Sprintf("select l_returnflag, l_linestatus, count(*), sum(l_extendedprice) from lineitem where l_shipdate between %d and %d and l_shipmode = %d group by l_returnflag, l_linestatus", y*ddDaysPerYr, y*ddDaysPerYr+ddDaysPerYr-1, m),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel:   "lineitem",
							Preds: []engine.Pred{yearPred(y), {Col: "l_shipmode", Op: engine.OpEQ, Lo: m}},
							Cols:  []string{"l_returnflag", "l_linestatus", "l_extendedprice"},
						},
						GroupBy: []string{"l_returnflag", "l_linestatus"},
						Aggs: []engine.AggSpec{
							{Kind: engine.AggCount, As: "n"},
							{Kind: engine.AggSum, Col: "l_extendedprice", As: "revenue"},
						},
					},
				}
			},
		},
		{
			// Scalar roll-up: yearly average price and volume for one
			// returnflag — AVG derives from the cube's SUM and COUNT.
			Name: "dd.scalar", Weight: 2, Instances: ddYears * 3,
			Gen: func(r *rand.Rand) Query {
				y := uniformInt(r, ddYears)
				f := uniformInt(r, 3)
				return Query{
					ID: fmt.Sprintf("select avg(l_extendedprice), count(*), sum(l_quantity) from lineitem where l_shipdate between %d and %d and l_returnflag = %d", y*ddDaysPerYr, y*ddDaysPerYr+ddDaysPerYr-1, f),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel:   "lineitem",
							Preds: []engine.Pred{yearPred(y), {Col: "l_returnflag", Op: engine.OpEQ, Lo: f}},
							Cols:  []string{"l_extendedprice", "l_quantity"},
						},
						Aggs: []engine.AggSpec{
							{Kind: engine.AggAvg, Col: "l_extendedprice", As: "avg_price"},
							{Kind: engine.AggCount, As: "n"},
							{Kind: engine.AggSum, Col: "l_quantity", As: "qty"},
						},
					},
				}
			},
		},
		{
			// The detail slice: one month of three narrow columns, the
			// ancestor of the detail hierarchy. 84 instances repeat enough
			// to stay resident without crowding the cache.
			Name: "dd.detail", Weight: 2, Instances: ddMonths,
			Gen: func(r *rand.Rand) Query {
				m := uniformInt(r, ddMonths)
				lo := m * ddDaysPerMon
				return Query{
					ID: fmt.Sprintf("select l_shipdate, l_shipmode, l_extendedprice from lineitem where l_shipdate between %d and %d", lo, lo+ddDaysPerMon-1),
					Plan: &engine.Scan{
						Rel:   "lineitem",
						Preds: []engine.Pred{{Col: "l_shipdate", Op: engine.OpRange, Lo: lo, Hi: lo + ddDaysPerMon - 1}},
						Cols:  []string{"l_shipdate", "l_shipmode", "l_extendedprice"},
					},
				}
			},
		},
		{
			// Sub-window re-filter of a detail slice (rule R1): a shorter
			// window inside one month, one shipmode.
			Name: "dd.window", Weight: 2, Instances: ddMonths * 7 * 16,
			Gen: func(r *rand.Rand) Query {
				m := uniformInt(r, ddMonths)
				width := 7 + uniformInt(r, 8) // 7..14 days
				off := uniformInt(r, ddDaysPerMon-width+1)
				lo := m*ddDaysPerMon + off
				mode := uniformInt(r, 7)
				return Query{
					ID: fmt.Sprintf("select l_shipdate, l_extendedprice from lineitem where l_shipdate between %d and %d and l_shipmode = %d", lo, lo+width-1, mode),
					Plan: &engine.Scan{
						Rel: "lineitem",
						Preds: []engine.Pred{
							{Col: "l_shipdate", Op: engine.OpRange, Lo: lo, Hi: lo + width - 1},
							{Col: "l_shipmode", Op: engine.OpEQ, Lo: mode},
						},
						Cols: []string{"l_shipdate", "l_extendedprice"},
					},
				}
			},
		},
		{
			// Sub-window aggregate over a detail slice (rule R3).
			Name: "dd.windowsum", Weight: 2, Instances: ddMonths * 16,
			Gen: func(r *rand.Rand) Query {
				m := uniformInt(r, ddMonths)
				width := 7 + uniformInt(r, 8)
				off := uniformInt(r, ddDaysPerMon-width+1)
				lo := m*ddDaysPerMon + off
				return Query{
					ID: fmt.Sprintf("select l_shipmode, sum(l_extendedprice), count(*) from lineitem where l_shipdate between %d and %d group by l_shipmode", lo, lo+width-1),
					Plan: &engine.Aggregate{
						Input: &engine.Scan{
							Rel:   "lineitem",
							Preds: []engine.Pred{{Col: "l_shipdate", Op: engine.OpRange, Lo: lo, Hi: lo + width - 1}},
							Cols:  []string{"l_shipmode", "l_extendedprice"},
						},
						GroupBy: []string{"l_shipmode"},
						Aggs: []engine.AggSpec{
							{Kind: engine.AggSum, Col: "l_extendedprice", As: "revenue"},
							{Kind: engine.AggCount, As: "n"},
						},
					},
				}
			},
		},
		{
			// Ad-hoc one-shots: residuals on columns no ancestor retains,
			// from an effectively unbounded instance space — underivable
			// noise that keeps admission honest.
			Name: "dd.adhoc", Weight: 1, Instances: 1e6,
			Gen: func(r *rand.Rand) Query {
				lo := uniformInt(r, 2557-3)
				q := uniformInt(r, 50)
				return Query{
					ID: fmt.Sprintf("select l_orderkey, l_extendedprice from lineitem where l_shipdate between %d and %d and l_quantity = %d", lo, lo+2, q),
					Plan: &engine.Scan{
						Rel: "lineitem",
						Preds: []engine.Pred{
							{Col: "l_shipdate", Op: engine.OpRange, Lo: lo, Hi: lo + 2},
							{Col: "l_quantity", Op: engine.OpEQ, Lo: q},
						},
						Cols: []string{"l_orderkey", "l_extendedprice"},
					},
				}
			},
		},
	}
}

// StandardDrilldown builds the drilldown/rollup benchmark over the TPC-D
// database at the given scale (0 selects TPCDScale) and generates its
// trace; every record carries a plan descriptor.
func StandardDrilldown(scale float64, cfg Config) (*relation.Database, *trace.Trace, error) {
	if scale <= 0 {
		scale = TPCDScale
	}
	db := relation.TPCD(scale, relation.DefaultPageSize)
	tr, err := Generate(db, DrilldownTemplates(db), cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: drilldown: %w", err)
	}
	tr.Name = "tpcd-drilldown"
	return db, tr, nil
}
