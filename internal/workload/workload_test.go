package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/trace"
)

// smallCfg keeps generation fast in tests.
var smallCfg = Config{Queries: 1200, Seed: 7}

func TestTPCDTemplateCount(t *testing.T) {
	db := relation.TPCD(0.005, 0)
	ts := TPCDTemplates(db)
	if len(ts) != 17 {
		t.Fatalf("TPC-D must have 17 templates (the benchmark's read-only set), got %d", len(ts))
	}
	seen := map[string]bool{}
	for _, tpl := range ts {
		if seen[tpl.Name] {
			t.Fatalf("duplicate template name %s", tpl.Name)
		}
		seen[tpl.Name] = true
		if !strings.HasPrefix(tpl.Name, "tpcd.q") {
			t.Fatalf("unexpected template name %s", tpl.Name)
		}
	}
}

func TestAllTemplatesProduceValidPlans(t *testing.T) {
	cases := []struct {
		name string
		db   *relation.Database
		ts   []*Template
	}{
		{"tpcd", relation.TPCD(0.005, 0), nil},
		{"setquery", relation.SetQuery(0.01, 0), nil},
	}
	cases[0].ts = TPCDTemplates(cases[0].db)
	cases[1].ts = SetQueryTemplates(cases[1].db)

	for _, c := range cases {
		eng := engine.New(c.db)
		rng := rand.New(rand.NewSource(1))
		for _, tpl := range c.ts {
			for i := 0; i < 20; i++ {
				q := tpl.Gen(rng)
				if q.ID == "" {
					t.Fatalf("%s/%s: empty query ID", c.name, tpl.Name)
				}
				est, err := eng.Estimate(q.Plan)
				if err != nil {
					t.Fatalf("%s/%s: %v", c.name, tpl.Name, err)
				}
				if est.Cost < 0 || est.Rows < 0 {
					t.Fatalf("%s/%s: negative estimate %+v", c.name, tpl.Name, est)
				}
				if len(engine.BaseRelations(q.Plan)) == 0 {
					t.Fatalf("%s/%s: plan reads no relations", c.name, tpl.Name)
				}
			}
		}
	}
}

func TestTemplateIDsEmbedParameters(t *testing.T) {
	// Two different draws from a huge-space template must (almost surely)
	// give different IDs; re-seeding gives identical sequences.
	db := relation.TPCD(0.005, 0)
	ts := TPCDTemplates(db)
	var q16 *Template
	for _, tpl := range ts {
		if tpl.Name == "tpcd.q16" {
			q16 = tpl
		}
	}
	a := q16.Gen(rand.New(rand.NewSource(1)))
	b := q16.Gen(rand.New(rand.NewSource(2)))
	if a.ID == b.ID {
		t.Fatal("different parameters produced identical IDs")
	}
	c := q16.Gen(rand.New(rand.NewSource(1)))
	if a.ID != c.ID {
		t.Fatal("same seed produced different IDs")
	}
}

func TestGenerateTrace(t *testing.T) {
	db, tr, err := StandardTPCD(0.005, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != smallCfg.Queries {
		t.Fatalf("trace has %d records", tr.Len())
	}
	if tr.DatabaseBytes != db.Bytes() {
		t.Fatal("trace database size mismatch")
	}
	// Memoization: equal IDs must carry equal size/cost.
	sizes := map[string]int64{}
	costs := map[string]float64{}
	for i := range tr.Records {
		r := &tr.Records[i]
		if s, ok := sizes[r.QueryID]; ok && s != r.Size {
			t.Fatalf("query %q has sizes %d and %d", r.QueryID, s, r.Size)
		}
		if c, ok := costs[r.QueryID]; ok && c != r.Cost {
			t.Fatalf("query %q has costs %g and %g", r.QueryID, c, r.Cost)
		}
		sizes[r.QueryID] = r.Size
		costs[r.QueryID] = r.Cost
		if r.Cost < 1 {
			t.Fatalf("cost %g below one block read", r.Cost)
		}
		if len(r.Relations) == 0 {
			t.Fatal("record without base relations")
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	_, a, err := StandardTPCD(0.005, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := StandardTPCD(0.005, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i].QueryID != b.Records[i].QueryID || a.Records[i].Time != b.Records[i].Time {
			t.Fatalf("record %d differs between identically seeded runs", i)
		}
	}
	_, c, err := StandardTPCD(0.005, Config{Queries: smallCfg.Queries, Seed: smallCfg.Seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Records {
		if a.Records[i].QueryID != c.Records[i].QueryID {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestDrillDownSkew(t *testing.T) {
	// The defining property of the paper's traces: some templates repeat
	// heavily, others essentially never.
	_, tr, err := StandardTPCD(0.005, Config{Queries: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	type agg struct{ refs, unique int }
	per := map[string]*agg{}
	seen := map[string]bool{}
	for i := range tr.Records {
		r := &tr.Records[i]
		a := per[r.Template]
		if a == nil {
			a = &agg{}
			per[r.Template] = a
		}
		a.refs++
		if !seen[r.QueryID] {
			seen[r.QueryID] = true
			a.unique++
		}
	}
	// q13 has 4 instances: repetition ratio must be very high.
	if q13 := per["tpcd.q13"]; q13 == nil || q13.unique > 4 || q13.refs < 50 {
		t.Fatalf("q13 skew wrong: %+v", q13)
	}
	// q16's space is ~5M: virtually every instance unique.
	if q16 := per["tpcd.q16"]; q16 == nil || float64(q16.unique) < 0.95*float64(q16.refs) {
		t.Fatalf("q16 must be effectively unique: %+v", q16)
	}
}

func TestSetQueryWeights(t *testing.T) {
	// The down-weighted templates (q2b, q4 at 0.5) must appear roughly
	// half as often as the up-weighted ones appear 1.5×.
	_, tr, err := StandardSetQuery(0.02, Config{Queries: 8000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := range tr.Records {
		counts[tr.Records[i].Template]++
	}
	if counts["sq.q4"] >= counts["sq.q1"] {
		t.Fatalf("q4 (weight 0.5) drawn %d ≥ q1 (weight 1) %d", counts["sq.q4"], counts["sq.q1"])
	}
	if counts["sq.q5"] <= counts["sq.q1"] {
		t.Fatalf("q5 (weight 1.5) drawn %d ≤ q1 (weight 1) %d", counts["sq.q5"], counts["sq.q1"])
	}
}

func TestSetQueryCostSkewExceedsTPCD(t *testing.T) {
	// §4.2's explanation of Figure 2: the Set Query cost distribution is
	// more skewed than TPC-D's. Compare max/min template mean costs.
	_, td, err := StandardTPCD(0.005, Config{Queries: 3000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	_, sq, err := StandardSetQuery(0.02, Config{Queries: 3000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	spread := func(tr *trace.Trace) float64 {
		min, max := 1e18, 0.0
		for i := range tr.Records {
			c := tr.Records[i].Cost
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max / min
	}
	if spread(sq) <= spread(td) {
		t.Fatalf("Set Query cost spread %.1f must exceed TPC-D's %.1f", spread(sq), spread(td))
	}
}

func TestInterarrivalTimes(t *testing.T) {
	_, tr, err := StandardTPCD(0.005, Config{Queries: 2000, Seed: 9, MeanInterarrival: 2})
	if err != nil {
		t.Fatal(err)
	}
	mean := tr.Records[tr.Len()-1].Time / float64(tr.Len())
	if mean < 1.5 || mean > 2.5 {
		t.Fatalf("mean inter-arrival = %.2f, want ≈ 2", mean)
	}
}

func TestMulticlassStructure(t *testing.T) {
	_, tr, err := GenerateMulticlass(0.005, MulticlassConfig{
		Config: Config{Queries: 3000, Seed: 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	classes := map[int]int{}
	bursts := 0
	for i := range tr.Records {
		classes[tr.Records[i].Class]++
		if i > 0 && tr.Records[i].QueryID == tr.Records[i-1].QueryID && tr.Records[i].Class == 2 {
			bursts++
		}
	}
	if len(classes) != 3 {
		t.Fatalf("class mix = %v, want 3 classes", classes)
	}
	if bursts < 100 {
		t.Fatalf("only %d correlated duplicates; the noise class must fire bursts", bursts)
	}
	// Class-2 queries must be one-shot beyond their burst: count distinct
	// burst groups vs references.
	refs := map[string]int{}
	for i := range tr.Records {
		if tr.Records[i].Class == 2 {
			refs[tr.Records[i].QueryID]++
		}
	}
	over := 0
	for _, n := range refs {
		if n > 3 {
			over++
		}
	}
	if float64(over) > 0.05*float64(len(refs)) {
		t.Fatalf("%d/%d noise queries exceed the burst length", over, len(refs))
	}
}

func TestGenerateErrors(t *testing.T) {
	db := relation.TPCD(0.005, 0)
	if _, err := Generate(db, nil, smallCfg); err == nil {
		t.Fatal("empty template set must fail")
	}
}

func TestUniformRangeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(cardRaw, widthRaw uint16) bool {
		card := int64(cardRaw%1000) + 1
		width := int64(widthRaw%1000) + 1
		lo, hi := uniformRange(rng, card, width)
		if lo < 0 || hi >= card || hi < lo {
			return false
		}
		if width <= card && hi-lo+1 != width {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPickTemplateRespectsWeights(t *testing.T) {
	a := &Template{Name: "a", Weight: 3}
	b := &Template{Name: "b", Weight: 1}
	rng := rand.New(rand.NewSource(4))
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[pickTemplate([]*Template{a, b}, 4, rng).Name]++
	}
	ratio := float64(counts["a"]) / float64(counts["b"])
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("weight ratio = %.2f, want ≈ 3", ratio)
	}
}
