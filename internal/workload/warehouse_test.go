package workload

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
)

func TestWarehouseTemplatesValid(t *testing.T) {
	db := relation.Warehouse(0.05, 0)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(db.Relations) != 14 {
		t.Fatalf("warehouse must have the paper's 14 relations, got %d", len(db.Relations))
	}
	templates := WarehouseTemplates(db)
	if len(templates) != 14*4 {
		t.Fatalf("templates = %d, want 4 per relation", len(templates))
	}
	eng := engine.New(db)
	rng := rand.New(rand.NewSource(1))
	for _, tpl := range templates {
		for i := 0; i < 5; i++ {
			q := tpl.Gen(rng)
			if _, err := eng.Estimate(q.Plan); err != nil {
				t.Fatalf("%s: %v", tpl.Name, err)
			}
		}
	}
}

func TestWarehouseScale(t *testing.T) {
	db := relation.Warehouse(1, 0)
	gb := float64(db.Bytes())
	if gb < 95e6 || gb > 115e6 {
		t.Fatalf("warehouse scale 1 = %.1f MB, want ≈ 100 MB (the §4.2 setup)", gb/1e6)
	}
}

func TestWarehousePopularitySkew(t *testing.T) {
	// Relation popularity must be skewed: rel00 templates carry the
	// largest weights, the tail the smallest.
	db := relation.Warehouse(0.05, 0)
	templates := WarehouseTemplates(db)
	weightOf := func(rel string) float64 {
		total := 0.0
		for _, tpl := range templates {
			if strings.HasSuffix(tpl.Name, rel) {
				total += tpl.Weight
			}
		}
		return total
	}
	if weightOf("rel00") <= 2*weightOf("rel07") {
		t.Fatalf("popularity skew too weak: rel00 %.2f vs rel07 %.2f",
			weightOf("rel00"), weightOf("rel07"))
	}
}

func TestWarehouseAdhocCharacteristics(t *testing.T) {
	// The ad-hoc templates must produce large retrieved sets relative to
	// their cost (LNC-A rejection material) and effectively never repeat.
	db := relation.Warehouse(0.05, 0)
	templates := WarehouseTemplates(db)
	eng := engine.New(db)
	rng := rand.New(rand.NewSource(2))
	seen := map[string]bool{}
	for _, tpl := range templates {
		if !strings.HasPrefix(tpl.Name, "wh.adhoc.") {
			continue
		}
		distinct := 0
		for i := 0; i < 30; i++ {
			q := tpl.Gen(rng)
			if !seen[q.ID] {
				distinct++
			}
			seen[q.ID] = true
			est, err := eng.Estimate(q.Plan)
			if err != nil {
				t.Fatal(err)
			}
			// e-profit = cost/size must be well under 1 (a groupby's is
			// thousands), so admission refuses these once the cache is full.
			if est.Cost/est.Bytes > 0.1 {
				t.Fatalf("%s: e-profit %.3f too high for the rejection role",
					tpl.Name, est.Cost/est.Bytes)
			}
		}
		// Effectively never repeats: allow the odd birthday collision at
		// this miniature scale.
		if distinct < 28 {
			t.Fatalf("%s: only %d/30 distinct instances", tpl.Name, distinct)
		}
	}
}

func TestWarehouseGroupbyRepeats(t *testing.T) {
	db := relation.Warehouse(0.05, 0)
	templates := WarehouseTemplates(db)
	rng := rand.New(rand.NewSource(3))
	for _, tpl := range templates {
		if !strings.HasPrefix(tpl.Name, "wh.groupby.") {
			continue
		}
		ids := map[string]bool{}
		for i := 0; i < 50; i++ {
			ids[tpl.Gen(rng).ID] = true
		}
		if len(ids) > 3 {
			t.Fatalf("%s: %d distinct instances, want ≤ 3 (heavy repeats)", tpl.Name, len(ids))
		}
	}
}
