package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/trace"
)

// Standard experiment scales (§4.1 of the paper): the TPC-D database is
// 30 MB (scale factor 0.03 of the suggested 1 GB) and the Set Query database
// 100 MB (scale 0.5 of the suggested 200 MB).
const (
	// TPCDScale is the default TPC-D scale factor.
	TPCDScale = 0.03
	// SetQueryScale is the default Set Query scale.
	SetQueryScale = 0.5
)

// StandardTPCD builds the paper's TPC-D database and trace at the given
// scale (0 selects TPCDScale).
func StandardTPCD(scale float64, cfg Config) (*relation.Database, *trace.Trace, error) {
	if scale <= 0 {
		scale = TPCDScale
	}
	db := relation.TPCD(scale, relation.DefaultPageSize)
	tr, err := Generate(db, TPCDTemplates(db), cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: tpcd: %w", err)
	}
	return db, tr, nil
}

// StandardSetQuery builds the paper's Set Query database and trace at the
// given scale (0 selects SetQueryScale).
func StandardSetQuery(scale float64, cfg Config) (*relation.Database, *trace.Trace, error) {
	if scale <= 0 {
		scale = SetQueryScale
	}
	db := relation.SetQuery(scale, relation.DefaultPageSize)
	tr, err := Generate(db, SetQueryTemplates(db), cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: setquery: %w", err)
	}
	return db, tr, nil
}

// MulticlassConfig parameterizes the multiclass extension workload. §6 of
// the paper names multiclass streams — several query classes with distinct
// reference characteristics — as the environment where keeping more than
// the last reference time should pay off most, citing the LRU-K paper's
// argument: a single reference time cannot tell a genuinely hot set from
// one that was touched in a short correlated burst and will never return.
type MulticlassConfig struct {
	Config
	// NoiseFraction is the fraction of submissions drawn from the
	// correlated one-shot class: each such query fires a tight burst of
	// duplicate submissions and then never returns. Zero selects 0.4.
	NoiseFraction float64
	// BurstLength is the number of correlated duplicate submissions per
	// one-shot query (including the first). Zero selects 3.
	BurstLength int
	// BurstGap is the mean spacing in seconds between the duplicates of a
	// burst. Zero selects 2 s.
	BurstGap float64
}

// GenerateMulticlass builds a TPC-D-based three-class trace:
//
//	class 0 — steady "reporting" queries from small instance spaces,
//	          re-referenced throughout the trace (the signal);
//	class 1 — medium-space analysis queries, re-referenced a few times;
//	class 2 — ad-hoc one-shot queries from effectively unbounded spaces
//	          that fire a short burst of correlated duplicates and never
//	          return (the noise).
//
// Under K = 1 the class-2 bursts look like hot sets at eviction time; with
// K ≥ BurstLength the K-th most recent reference exposes them as one-shots.
func GenerateMulticlass(scale float64, cfg MulticlassConfig) (*relation.Database, *trace.Trace, error) {
	if scale <= 0 {
		scale = TPCDScale
	}
	if cfg.NoiseFraction <= 0 {
		cfg.NoiseFraction = 0.4
	}
	if cfg.BurstLength <= 0 {
		cfg.BurstLength = 3
	}
	if cfg.BurstGap <= 0 {
		cfg.BurstGap = 2
	}
	cfg.Config.normalize()

	db := relation.TPCD(scale, relation.DefaultPageSize)
	all := TPCDTemplates(db)
	byName := make(map[string]*Template, len(all))
	for _, t := range all {
		byName[t.Name] = t
	}
	classes := [][]*Template{
		pickTemplates(byName, "tpcd.q13", "tpcd.q4", "tpcd.q15", "tpcd.q5", "tpcd.q6"),
		pickTemplates(byName, "tpcd.q1", "tpcd.q3", "tpcd.q9", "tpcd.q12", "tpcd.q14"),
		pickTemplates(byName, "tpcd.q2", "tpcd.q16", "tpcd.q17"),
	}
	for ci, class := range classes {
		for _, t := range class {
			t.Class = ci
		}
	}

	eng := engine.New(db)
	rng := rand.New(rand.NewSource(cfg.Seed))
	type memo struct {
		size int64
		cost float64
		rels []string
		plan *engine.Descriptor
	}
	seen := make(map[string]memo)

	describe := func(t *Template, q Query) (memo, error) {
		m, ok := seen[q.ID]
		if !ok {
			est, err := eng.Estimate(q.Plan)
			if err != nil {
				return memo{}, fmt.Errorf("workload: multiclass: template %s: %w", t.Name, err)
			}
			m = memo{size: clampSize(est), cost: math.Max(1, math.Round(est.Cost)), rels: engine.BaseRelations(q.Plan)}
			if d, ok := engine.Describe(q.Plan); ok {
				m.plan = d
			}
			seen[q.ID] = m
		}
		return m, nil
	}

	tr := &trace.Trace{Name: "tpcd-multiclass", DatabaseBytes: db.Bytes()}
	tr.Records = make([]trace.Record, 0, cfg.Queries)
	now := 0.0
	emit := func(t *Template, q Query, class int, m memo) {
		tr.Records = append(tr.Records, trace.Record{
			Seq:       int64(len(tr.Records)),
			Time:      now,
			QueryID:   q.ID,
			Template:  t.Name,
			Class:     class,
			Size:      m.size,
			Cost:      m.cost,
			Relations: m.rels,
			Plan:      m.plan,
		})
	}

	for len(tr.Records) < cfg.Queries {
		now += rng.ExpFloat64() * cfg.MeanInterarrival
		if rng.Float64() < cfg.NoiseFraction {
			// Correlated one-shot burst from the ad-hoc class.
			class := classes[2]
			t := class[rng.Intn(len(class))]
			q := t.Gen(rng)
			m, err := describe(t, q)
			if err != nil {
				return nil, nil, err
			}
			for b := 0; b < cfg.BurstLength && len(tr.Records) < cfg.Queries; b++ {
				if b > 0 {
					now += rng.ExpFloat64() * cfg.BurstGap
				}
				emit(t, q, 2, m)
			}
			continue
		}
		ci := 0
		if rng.Float64() < 0.4 {
			ci = 1
		}
		class := classes[ci]
		t := class[rng.Intn(len(class))]
		q := t.Gen(rng)
		m, err := describe(t, q)
		if err != nil {
			return nil, nil, err
		}
		emit(t, q, ci, m)
	}
	return db, tr, nil
}

// pickTemplates fetches templates by name, panicking on unknown names —
// a misspelled class roster is a programming error.
func pickTemplates(byName map[string]*Template, names ...string) []*Template {
	out := make([]*Template, len(names))
	for i, n := range names {
		t, ok := byName[n]
		if !ok {
			panic(fmt.Sprintf("workload: unknown template %q", n))
		}
		out[i] = t
	}
	return out
}
