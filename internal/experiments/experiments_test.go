package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// smallSuite keeps the runners fast: 4 000 queries (enough for the traces'
// repeat structure to emerge), 400 for the buffer run.
func smallSuite() *Suite {
	return NewSuite(Options{Queries: 4000, BufferQueries: 400, Seed: 21})
}

func TestFigure2Shape(t *testing.T) {
	s := smallSuite()
	tb, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want TPC-D and Set Query", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		csr, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if csr <= 0 || csr >= 1 || hr <= 0 || hr >= 1 {
			t.Fatalf("degenerate infinite-cache row: %v", row)
		}
	}
	// The paper's Figure 2 signature: Set Query has the lower HR but the
	// higher CSR (its cost distribution is more skewed).
	sqCSR, _ := strconv.ParseFloat(tb.Rows[1][1], 64)
	tdCSR, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	sqHR, _ := strconv.ParseFloat(tb.Rows[1][2], 64)
	tdHR, _ := strconv.ParseFloat(tb.Rows[0][2], 64)
	if !(sqCSR > tdCSR && sqHR < tdHR) {
		t.Fatalf("Figure 2 signature broken: tpcd (%.3f, %.3f) sq (%.3f, %.3f)",
			tdCSR, tdHR, sqCSR, sqHR)
	}
}

func TestFigure3Shape(t *testing.T) {
	tbs, err := smallSuite().Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbs) != 2 {
		t.Fatalf("tables = %d", len(tbs))
	}
	for _, tb := range tbs {
		if len(tb.Rows) != 5 {
			t.Fatalf("K rows = %d, want 5", len(tb.Rows))
		}
		if tb.Columns[1] != "LNC-RA" || tb.Columns[2] != "LRU-K" {
			t.Fatalf("columns = %v", tb.Columns)
		}
	}
}

func TestFigure4And5ShareSweep(t *testing.T) {
	s := smallSuite()
	f4, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	f5, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, tbs := range [][]*metrics.Table{f4, f5} {
		for _, tb := range tbs {
			if len(tb.Rows) != len(standardPcts) {
				t.Fatalf("sweep rows = %d", len(tb.Rows))
			}
			for _, col := range []string{"LNC-RA", "LNC-R", "LRU", "inf"} {
				if !strings.Contains(strings.Join(tb.Columns, " "), col) {
					t.Fatalf("missing column %s in %v", col, tb.Columns)
				}
			}
		}
	}
	// CSR at every point must not exceed the infinite bound (last column).
	for _, tb := range f4 {
		for _, row := range tb.Rows {
			inf, _ := strconv.ParseFloat(row[len(row)-1], 64)
			for i := 1; i < len(row)-1; i++ {
				v, _ := strconv.ParseFloat(row[i], 64)
				if v > inf+1e-9 {
					t.Fatalf("CSR %v exceeds infinite bound %v in row %v", v, inf, row)
				}
			}
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	tbs, err := smallSuite().Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tbs {
		for _, row := range tb.Rows {
			for i := 1; i < len(row); i++ {
				util, err := strconv.ParseFloat(row[i], 64)
				if err != nil {
					t.Fatal(err)
				}
				if util < 0 || util > 100 {
					t.Fatalf("utilization %v out of range in %v", util, row)
				}
			}
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	tb, err := smallSuite().Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// One baseline row plus the p0 sweep.
	if len(tb.Rows) != 1+len(Figure7P0s) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "no hints" {
		t.Fatalf("first row = %v", tb.Rows[0])
	}
}

func TestOptimality(t *testing.T) {
	tb, err := smallSuite().Optimality(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := strconv.ParseFloat(tb.Rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	// The greedy LNC* must come close to the exhaustive optimum on random
	// universes (Theorem 1 holds exactly only under exact fill).
	if ratio < 0.9 {
		t.Fatalf("mean LNC*/OPT = %.4f, suspiciously low", ratio)
	}
	if ratio > 1.0+1e-9 {
		t.Fatalf("greedy cannot beat the optimum: %v", ratio)
	}
}

func TestAblationRetained(t *testing.T) {
	tb, err := smallSuite().AblationRetained()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestBaselines(t *testing.T) {
	tb, err := smallSuite().Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 { // 6 policies × 2 traces
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// LNC-RA must top vanilla LRU on both traces.
	byKey := map[string]float64{}
	for _, row := range tb.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		byKey[row[0]+"/"+row[1]] = v
	}
	for _, tr := range []string{"TPC-D", "Set Query"} {
		if byKey[tr+"/LNC-RA"] <= byKey[tr+"/LRU"] {
			t.Fatalf("%s: LNC-RA %.3f not above LRU %.3f", tr, byKey[tr+"/LNC-RA"], byKey[tr+"/LRU"])
		}
	}
}

func TestMulticlass(t *testing.T) {
	tb, err := smallSuite().Multiclass()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}
