// Package experiments reproduces every table and figure of the paper's
// evaluation (§4) plus the ablations and extensions listed in DESIGN.md.
// Each runner returns a metrics.Table shaped like the paper's artifact; the
// bench harness at the repository root and cmd/watchman both drive this
// package.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options scales the experiment suite. The zero value reproduces the
// paper's setup (17 000 queries, 30 MB TPC-D, 100 MB Set Query).
type Options struct {
	// Queries is the trace length; 0 selects the paper's 17 000.
	Queries int
	// Seed drives workload generation; runs with equal seeds are
	// bit-identical.
	Seed int64
	// TPCDScale and SetQueryScale override the database scales; zero
	// selects the paper's 0.03 / 0.5.
	TPCDScale     float64
	SetQueryScale float64
	// BufferQueries is the trace length of the Figure 7 run; 0 selects
	// Queries. The Figure 7 run streams tens of millions of page
	// references, so benchmarks may want a smaller value.
	BufferQueries int
}

// Suite generates and memoizes the traces and sweeps shared by the
// experiment runners. It is not safe for concurrent use.
type Suite struct {
	opts     Options
	tpcd     *trace.Trace
	setquery *trace.Trace
	sweeps   map[string][]sim.SweepPoint
}

// NewSuite creates a suite with the given options.
func NewSuite(opts Options) *Suite {
	if opts.Queries <= 0 {
		opts.Queries = 17000
	}
	if opts.BufferQueries <= 0 {
		opts.BufferQueries = opts.Queries
	}
	return &Suite{opts: opts, sweeps: make(map[string][]sim.SweepPoint)}
}

// TPCD returns the memoized TPC-D trace.
func (s *Suite) TPCD() (*trace.Trace, error) {
	if s.tpcd == nil {
		_, tr, err := workload.StandardTPCD(s.opts.TPCDScale, workload.Config{
			Queries: s.opts.Queries,
			Seed:    s.opts.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		s.tpcd = tr
	}
	return s.tpcd, nil
}

// SetQuery returns the memoized Set Query trace.
func (s *Suite) SetQuery() (*trace.Trace, error) {
	if s.setquery == nil {
		_, tr, err := workload.StandardSetQuery(s.opts.SetQueryScale, workload.Config{
			Queries: s.opts.Queries,
			Seed:    s.opts.Seed + 2,
		})
		if err != nil {
			return nil, err
		}
		s.setquery = tr
	}
	return s.setquery, nil
}

// traces returns both benchmark traces with their display names.
func (s *Suite) traces() ([]*trace.Trace, []string, error) {
	td, err := s.TPCD()
	if err != nil {
		return nil, nil, err
	}
	sq, err := s.SetQuery()
	if err != nil {
		return nil, nil, err
	}
	return []*trace.Trace{td, sq}, []string{"TPC-D", "Set Query"}, nil
}

// standardSetups are the policies of Figures 4–6: LNC-RA and LNC-R with
// K = 4 and vanilla LRU (K = 1), as in §4.2.
func standardSetups() []sim.Setup {
	return []sim.Setup{
		{Policy: core.LNCRA, K: 4},
		{Policy: core.LNCR, K: 4},
		{Policy: core.LRU, K: 1},
	}
}

// standardPcts is the cache-size sweep of Figures 4–5 (0.1 % – 5 % of the
// database size).
var standardPcts = []float64{0.1, 0.2, 0.5, 1, 2, 3, 4, 5}

// fragPcts is the Figure 6 sweep.
var fragPcts = []float64{0.2, 0.5, 1, 2, 3, 4, 5}

// sweep memoizes the standard sweep for a trace.
func (s *Suite) sweep(tr *trace.Trace) ([]sim.SweepPoint, error) {
	if pts, ok := s.sweeps[tr.Name]; ok {
		return pts, nil
	}
	pts, err := sim.Sweep(tr, standardPcts, standardSetups())
	if err != nil {
		return nil, err
	}
	s.sweeps[tr.Name] = pts
	return pts, nil
}

// Figure2 reproduces the infinite-cache table: CSR, HR and required cache
// size for both traces.
func (s *Suite) Figure2() (*metrics.Table, error) {
	traces, names, err := s.traces()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Figure 2: performance with infinite cache",
		"trace", "CSR", "HR", "cache size", "db size")
	for i, tr := range traces {
		res, err := sim.InfiniteCache(tr, 4)
		if err != nil {
			return nil, err
		}
		st := trace.ComputeStats(tr)
		t.AddRow(names[i],
			metrics.Ratio(res.CSR()),
			metrics.Ratio(res.HR()),
			metrics.Bytes(st.UniqueBytes),
			metrics.Bytes(tr.DatabaseBytes))
	}
	return t, nil
}

// Figure3 reproduces the impact-of-K experiment: CSR of LNC-RA and LRU-K
// for K = 1…5 with the cache at 1 % of the database size.
func (s *Suite) Figure3() ([]*metrics.Table, error) {
	traces, names, err := s.traces()
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for i, tr := range traces {
		capacity := sim.CacheBytesForFraction(tr, 1)
		lnc := &metrics.Series{Name: "LNC-RA"}
		lruk := &metrics.Series{Name: "LRU-K"}
		for k := 1; k <= 5; k++ {
			r1, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LNCRA, K: k}, capacity)
			if err != nil {
				return nil, err
			}
			r2, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LRUK, K: k}, capacity)
			if err != nil {
				return nil, err
			}
			lnc.Add(float64(k), r1.CSR())
			lruk.Add(float64(k), r2.CSR())
		}
		tb, err := metrics.SeriesTable(
			fmt.Sprintf("Figure 3 (%s): impact of K on CSR, cache = 1%% of database", names[i]),
			"K", "%.3f", lnc, lruk)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Figure4 reproduces the cost-savings-ratio curves: CSR over cache sizes
// for LNC-RA, LNC-R, LRU and the infinite-cache bound.
func (s *Suite) Figure4() ([]*metrics.Table, error) {
	return s.sweepTables("Figure 4", "cost savings ratio", sim.Result.CSR,
		func(st trace.Stats) float64 { return st.MaxCostSavings })
}

// Figure5 reproduces the hit-ratio curves over the same sweep.
func (s *Suite) Figure5() ([]*metrics.Table, error) {
	return s.sweepTables("Figure 5", "hit ratio", sim.Result.HR,
		func(st trace.Stats) float64 { return st.MaxHitRatio })
}

// sweepTables renders one table per trace for a metric over the standard
// sweep, appending the infinite-cache bound as a final column.
func (s *Suite) sweepTables(figure, metric string, value func(sim.Result) float64, bound func(trace.Stats) float64) ([]*metrics.Table, error) {
	traces, names, err := s.traces()
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for i, tr := range traces {
		pts, err := s.sweep(tr)
		if err != nil {
			return nil, err
		}
		series := make(map[string]*metrics.Series)
		var order []string
		for _, p := range pts {
			name := p.Setup.Policy.String()
			sr, ok := series[name]
			if !ok {
				sr = &metrics.Series{Name: name}
				series[name] = sr
				order = append(order, name)
			}
			sr.Add(p.Pct, value(p.Result))
		}
		inf := &metrics.Series{Name: "inf"}
		st := trace.ComputeStats(tr)
		for _, pct := range standardPcts {
			inf.Add(pct, bound(st))
		}
		list := make([]*metrics.Series, 0, len(order)+1)
		for _, n := range order {
			list = append(list, series[n])
		}
		list = append(list, inf)
		tb, err := metrics.SeriesTable(
			fmt.Sprintf("%s (%s): %s vs cache size (%% of database)", figure, names[i], metric),
			"cache%", "%.3f", list...)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Figure6 reproduces the external-fragmentation experiment: average used
// fraction of the cache for LNC-RA, LNC-R and LRU.
func (s *Suite) Figure6() ([]*metrics.Table, error) {
	traces, names, err := s.traces()
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for i, tr := range traces {
		var list []*metrics.Series
		for _, setup := range standardSetups() {
			sr := &metrics.Series{Name: setup.Policy.String()}
			for _, pct := range fragPcts {
				res, err := sim.ReplaySetup(tr, setup, sim.CacheBytesForFraction(tr, pct))
				if err != nil {
					return nil, err
				}
				sr.Add(pct, 100*res.Stats.AvgUtilization())
			}
			list = append(list, sr)
		}
		tb, err := metrics.SeriesTable(
			fmt.Sprintf("Figure 6 (%s): cache space utilization %% vs cache size", names[i]),
			"cache%", "%.1f", list...)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Figure7P0s is the hint-threshold sweep of Figure 7, in percent.
var Figure7P0s = []float64{100, 80, 60, 40, 20, 0}

// Figure7 reproduces the buffer-manager interaction experiment: buffer
// pool hit ratio as the p₀ redundancy threshold decreases, with a no-hints
// baseline. The setup matches §4.2: 17 000 queries against 14 relations
// totaling 100 MB, a 15 MB buffer pool and a 15 MB WATCHMAN cache.
func (s *Suite) Figure7() (*metrics.Table, error) {
	db := relation.Warehouse(1, relation.DefaultPageSize)
	templates := workload.WarehouseTemplates(db)
	t := metrics.NewTable("Figure 7: effect of hints on buffer hit ratio (15 MB pool, 15 MB cache)",
		"p0", "buffer HR", "page refs", "hints", "demotions")

	base := sim.BufferSimConfig{
		Queries: s.opts.BufferQueries,
		Seed:    s.opts.Seed + 7,
		P0:      -1, // hints disabled
	}
	res, err := sim.RunBufferSim(db, templates, base)
	if err != nil {
		return nil, err
	}
	t.AddRow("no hints", metrics.Ratio(res.BufferHitRatio()),
		fmt.Sprint(res.PageReferences), "0", "0")

	for _, p0 := range Figure7P0s {
		cfg := base
		cfg.P0 = p0 / 100
		res, err := sim.RunBufferSim(db, templates, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f%%", p0),
			metrics.Ratio(res.BufferHitRatio()),
			fmt.Sprint(res.PageReferences),
			fmt.Sprint(res.HintsSent),
			fmt.Sprint(res.PagesDemoted))
	}
	return t, nil
}

// Optimality exercises §2.3: it generates random retrieved-set universes,
// compares the LNC* greedy selection against the exhaustive knapsack
// optimum, and reports how close the greedy objective gets.
func (s *Suite) Optimality(universes, itemsPer int) (*metrics.Table, error) {
	if universes <= 0 {
		universes = 200
	}
	if itemsPer <= 0 || itemsPer > 16 {
		itemsPer = 12
	}
	rng := rand.New(rand.NewSource(s.opts.Seed + 23))
	t := metrics.NewTable("§2.3: LNC* vs exhaustive knapsack optimum",
		"universes", "items", "mean savings ratio LNC*/OPT", "worst", "exact ties")
	var sum, worst float64
	worst = 1
	ties := 0
	for u := 0; u < universes; u++ {
		items := make([]core.Item, itemsPer)
		var total int64
		for i := range items {
			items[i] = core.Item{
				ID:   fmt.Sprintf("rs%d", i),
				Prob: rng.Float64(),
				Cost: 1 + rng.Float64()*999,
				Size: 1 + rng.Int63n(99),
			}
			total += items[i].Size
		}
		capacity := total / 3
		greedy := core.LNCStar(items, capacity)
		opt, err := core.OptimalKnapsack(items, capacity)
		if err != nil {
			return nil, err
		}
		g := core.ExpectedCostSavings(items, greedy)
		o := core.ExpectedCostSavings(items, opt)
		ratio := 1.0
		if o > 0 {
			ratio = g / o
		}
		sum += ratio
		if ratio < worst {
			worst = ratio
		}
		if ratio > 0.999999 {
			ties++
		}
	}
	t.AddRow(fmt.Sprint(universes), fmt.Sprint(itemsPer),
		fmt.Sprintf("%.4f", sum/float64(universes)),
		fmt.Sprintf("%.4f", worst),
		fmt.Sprintf("%d/%d", ties, universes))
	return t, nil
}

// AblationRetained contrasts LNC-RA with and without retained reference
// information (ablation A2): without it, re-referenced sets restart with
// empty windows and keep getting evicted (§2.4's starvation).
func (s *Suite) AblationRetained() (*metrics.Table, error) {
	traces, names, err := s.traces()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Ablation A2: retained reference information (LNC-RA, K=4)",
		"trace", "cache%", "CSR retained", "CSR disabled")
	for i, tr := range traces {
		for _, pct := range []float64{0.5, 1} {
			capacity := sim.CacheBytesForFraction(tr, pct)
			on, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LNCRA, K: 4}, capacity)
			if err != nil {
				return nil, err
			}
			off, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LNCRA, K: 4, DisableRetained: true}, capacity)
			if err != nil {
				return nil, err
			}
			t.AddRow(names[i], fmt.Sprintf("%.1f", pct),
				metrics.Ratio(on.CSR()), metrics.Ratio(off.CSR()))
		}
	}
	return t, nil
}

// Multiclass runs the §6 extension: a three-class TPC-D stream with bursty
// per-class activity, where retaining K > 1 reference times should matter
// more than in the single-class traces.
func (s *Suite) Multiclass() (*metrics.Table, error) {
	_, tr, err := workload.GenerateMulticlass(s.opts.TPCDScale, workload.MulticlassConfig{
		Config: workload.Config{Queries: s.opts.Queries, Seed: s.opts.Seed + 11},
	})
	if err != nil {
		return nil, err
	}
	capacity := sim.CacheBytesForFraction(tr, 1)
	lnc := &metrics.Series{Name: "LNC-RA"}
	lruk := &metrics.Series{Name: "LRU-K"}
	for k := 1; k <= 5; k++ {
		r1, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LNCRA, K: k}, capacity)
		if err != nil {
			return nil, err
		}
		r2, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LRUK, K: k}, capacity)
		if err != nil {
			return nil, err
		}
		lnc.Add(float64(k), r1.CSR())
		lruk.Add(float64(k), r2.CSR())
	}
	return metrics.SeriesTable(
		"Extension A4: multiclass workload, CSR vs K (cache = 1% of database)",
		"K", "%.3f", lnc, lruk)
}

// Baselines compares the related-work policies (LFU and the ADMS LCS) with
// the paper's algorithms at 1 % cache (experiment A5).
func (s *Suite) Baselines() (*metrics.Table, error) {
	traces, names, err := s.traces()
	if err != nil {
		return nil, err
	}
	setups := []sim.Setup{
		{Policy: core.LNCRA, K: 4},
		{Policy: core.LNCR, K: 4},
		{Policy: core.LRUK, K: 4},
		{Policy: core.LRU, K: 1},
		{Policy: core.LFU, K: 1},
		{Policy: core.LCS, K: 1},
	}
	t := metrics.NewTable("A5: baseline comparison at cache = 1% of database",
		"trace", "policy", "CSR", "HR")
	for i, tr := range traces {
		capacity := sim.CacheBytesForFraction(tr, 1)
		for _, setup := range setups {
			res, err := sim.ReplaySetup(tr, setup, capacity)
			if err != nil {
				return nil, err
			}
			t.AddRow(names[i], setup.Policy.String(),
				metrics.Ratio(res.CSR()), metrics.Ratio(res.HR()))
		}
	}
	return t, nil
}
