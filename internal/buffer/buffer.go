// Package buffer implements the page buffer manager WATCHMAN cooperates
// with (§3 of the paper). It is a classic LRU buffer pool over fixed-size
// frames, extended with the hint interface the paper describes: WATCHMAN may
// instruct the pool to demote pages that have become redundant (because the
// retrieved sets referencing them are now cached) to the eviction end of the
// LRU chain, freeing buffer space faster.
package buffer

import (
	"errors"
	"fmt"
)

// PageID identifies a page in the database. The storage layer packs a
// relation number and a page number into it; the pool treats it as opaque.
type PageID uint64

// frame is one buffered page, threaded on the pool's intrusive LRU list.
// prev points toward the MRU end, next toward the LRU (eviction) end.
type frame struct {
	id         PageID
	prev, next *frame
	pins       int
}

// Stats aggregates buffer pool activity counters.
type Stats struct {
	Reads     int64 // page read requests
	Hits      int64 // requests satisfied without a fault
	Evictions int64 // frames reclaimed
	Demotions int64 // frames moved to the LRU end by hints
}

// HitRatio returns Hits/Reads, or 0 when no reads happened.
func (s Stats) HitRatio() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Reads)
}

// ErrNoEvictable is returned when every frame is pinned and a new page
// cannot be brought in.
var ErrNoEvictable = errors.New("buffer: all frames pinned")

// Pool is an LRU page buffer pool. It is not safe for concurrent use; the
// simulator drives it from a single goroutine, matching the paper's
// single-stream trace replay.
type Pool struct {
	capacity int
	frames   map[PageID]*frame
	// head/tail are sentinels: head.next is the MRU frame, tail.prev the
	// LRU (next eviction victim).
	head, tail frame
	stats      Stats
}

// NewPool creates a pool with room for capacity pages. It panics if
// capacity is not positive, since a pool that cannot hold a single page is
// a configuration error.
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: non-positive capacity %d", capacity))
	}
	p := &Pool{
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
	}
	p.head.next = &p.tail
	p.tail.prev = &p.head
	return p
}

// Capacity returns the pool size in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of buffered pages.
func (p *Pool) Len() int { return len(p.frames) }

// Stats returns a copy of the activity counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the activity counters without touching pool contents.
func (p *Pool) ResetStats() { p.stats = Stats{} }

// Contains reports whether the page is currently buffered, without touching
// recency state or counters.
func (p *Pool) Contains(id PageID) bool {
	_, ok := p.frames[id]
	return ok
}

func (p *Pool) unlink(f *frame) {
	f.prev.next = f.next
	f.next.prev = f.prev
	f.prev, f.next = nil, nil
}

func (p *Pool) pushFront(f *frame) {
	f.next = p.head.next
	f.prev = &p.head
	p.head.next.prev = f
	p.head.next = f
}

func (p *Pool) pushBack(f *frame) {
	f.prev = p.tail.prev
	f.next = &p.tail
	p.tail.prev.next = f
	p.tail.prev = f
}

// evictOne reclaims the least recently used unpinned frame. It returns
// ErrNoEvictable when every frame is pinned.
func (p *Pool) evictOne() error {
	for f := p.tail.prev; f != &p.head; f = f.prev {
		if f.pins == 0 {
			p.unlink(f)
			delete(p.frames, f.id)
			p.stats.Evictions++
			return nil
		}
	}
	return ErrNoEvictable
}

// Read requests the page, faulting it in if absent, and returns whether the
// request was a hit. On a hit or a fault the page becomes most recently
// used.
//
//watchman:hotpath
func (p *Pool) Read(id PageID) (hit bool, err error) {
	p.stats.Reads++
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		p.unlink(f)
		p.pushFront(f)
		return true, nil
	}
	if len(p.frames) >= p.capacity {
		if err := p.evictOne(); err != nil {
			p.stats.Reads-- // the request did not complete
			return false, err
		}
	}
	//lint:ignore hotpathalloc the fault path must materialize a frame; the hit path above is allocation-free
	f := &frame{id: id}
	p.frames[id] = f
	p.pushFront(f)
	return false, nil
}

// Pin marks the page as unevictable; it must be buffered. Pins nest.
func (p *Pool) Pin(id PageID) error {
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("buffer: pin of non-resident page %d", id)
	}
	f.pins++
	return nil
}

// Unpin releases one pin on the page.
func (p *Pool) Unpin(id PageID) error {
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("buffer: unpin of non-resident page %d", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: unpin of unpinned page %d", id)
	}
	f.pins--
	return nil
}

// Demote moves the page, if buffered, to the eviction end of the LRU chain.
// This is the hint operation from the paper: "the buffer manager takes
// advantage of the hints sent from WATCHMAN and moves selected pages to the
// end of the LRU chain." Demoting a non-resident page is a no-op, since the
// hint may arrive after the page was already evicted.
func (p *Pool) Demote(id PageID) {
	f, ok := p.frames[id]
	if !ok {
		return
	}
	p.unlink(f)
	p.pushBack(f)
	p.stats.Demotions++
}

// LRUOrder returns the buffered page IDs from most to least recently used.
// It exists for tests and diagnostics.
func (p *Pool) LRUOrder() []PageID {
	out := make([]PageID, 0, len(p.frames))
	for f := p.head.next; f != &p.tail; f = f.next {
		out = append(out, f.id)
	}
	return out
}
