package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoolBasics(t *testing.T) {
	p := NewPool(2)
	if p.Capacity() != 2 || p.Len() != 0 {
		t.Fatal("fresh pool state wrong")
	}
	hit, err := p.Read(1)
	if err != nil || hit {
		t.Fatalf("first read: hit=%v err=%v", hit, err)
	}
	hit, err = p.Read(1)
	if err != nil || !hit {
		t.Fatalf("second read must hit: hit=%v err=%v", hit, err)
	}
	s := p.Stats()
	if s.Reads != 2 || s.Hits != 1 || s.HitRatio() != 0.5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPoolLRUEviction(t *testing.T) {
	p := NewPool(3)
	for _, id := range []PageID{1, 2, 3} {
		if _, err := p.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	p.Read(1) // 1 becomes MRU; LRU order now 1,3,2
	p.Read(4) // evicts 2
	if p.Contains(2) {
		t.Fatal("LRU page not evicted")
	}
	for _, id := range []PageID{1, 3, 4} {
		if !p.Contains(id) {
			t.Fatalf("page %d unexpectedly evicted", id)
		}
	}
	if got := p.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d", got)
	}
}

func TestPoolLRUOrder(t *testing.T) {
	p := NewPool(3)
	p.Read(10)
	p.Read(20)
	p.Read(30)
	p.Read(10) // MRU
	got := p.LRUOrder()
	want := []PageID{10, 30, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LRU order = %v, want %v", got, want)
		}
	}
}

func TestPoolDemote(t *testing.T) {
	p := NewPool(3)
	p.Read(1)
	p.Read(2)
	p.Read(3) // LRU order: 3,2,1
	p.Demote(3)
	// 3 is now the eviction victim despite being most recently used.
	p.Read(4)
	if p.Contains(3) {
		t.Fatal("demoted page must be evicted first")
	}
	if !p.Contains(1) || !p.Contains(2) {
		t.Fatal("non-demoted pages evicted")
	}
	if p.Stats().Demotions != 1 {
		t.Fatalf("demotions = %d", p.Stats().Demotions)
	}
}

func TestPoolDemoteNonResident(t *testing.T) {
	p := NewPool(2)
	p.Demote(99) // no-op
	if p.Stats().Demotions != 0 {
		t.Fatal("demoting a non-resident page must not count")
	}
}

func TestPoolPinning(t *testing.T) {
	p := NewPool(2)
	p.Read(1)
	p.Read(2)
	if err := p.Pin(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(2); err != nil {
		t.Fatal(err)
	}
	// Everything pinned: a new page cannot enter.
	if _, err := p.Read(3); err != ErrNoEvictable {
		t.Fatalf("err = %v, want ErrNoEvictable", err)
	}
	if err := p.Unpin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(3); err != nil {
		t.Fatal(err)
	}
	if p.Contains(1) {
		t.Fatal("unpinned page 1 should have been the victim")
	}
	if !p.Contains(2) {
		t.Fatal("pinned page 2 must survive")
	}
}

func TestPoolPinErrors(t *testing.T) {
	p := NewPool(2)
	if err := p.Pin(5); err == nil {
		t.Error("pinning a non-resident page must fail")
	}
	if err := p.Unpin(5); err == nil {
		t.Error("unpinning a non-resident page must fail")
	}
	p.Read(5)
	if err := p.Unpin(5); err == nil {
		t.Error("unpinning an unpinned page must fail")
	}
	p.Pin(5)
	p.Pin(5) // pins nest
	if err := p.Unpin(5); err != nil {
		t.Error(err)
	}
	if err := p.Unpin(5); err != nil {
		t.Error(err)
	}
	if err := p.Unpin(5); err == nil {
		t.Error("unbalanced unpin must fail")
	}
}

func TestPoolFailedReadNotCounted(t *testing.T) {
	p := NewPool(1)
	p.Read(1)
	p.Pin(1)
	before := p.Stats().Reads
	if _, err := p.Read(2); err == nil {
		t.Fatal("expected ErrNoEvictable")
	}
	if p.Stats().Reads != before {
		t.Fatal("failed reads must not count")
	}
}

func TestPoolCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	NewPool(0)
}

func TestPoolResetStats(t *testing.T) {
	p := NewPool(2)
	p.Read(1)
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatal("stats not reset")
	}
	if !p.Contains(1) {
		t.Fatal("reset must not drop contents")
	}
}

// modelLRU is a trivial reference implementation: a slice ordered MRU→LRU.
type modelLRU struct {
	cap   int
	pages []PageID
}

func (m *modelLRU) read(id PageID) bool {
	for i, p := range m.pages {
		if p == id {
			copy(m.pages[1:i+1], m.pages[:i])
			m.pages[0] = id
			return true
		}
	}
	if len(m.pages) == m.cap {
		m.pages = m.pages[:m.cap-1]
	}
	m.pages = append([]PageID{id}, m.pages...)
	return false
}

func (m *modelLRU) demote(id PageID) {
	for i, p := range m.pages {
		if p == id {
			m.pages = append(append(append([]PageID{}, m.pages[:i]...), m.pages[i+1:]...), id)
			return
		}
	}
}

func TestPoolMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := rng.Intn(8) + 1
		pool := NewPool(capacity)
		model := &modelLRU{cap: capacity}
		for op := 0; op < 500; op++ {
			id := PageID(rng.Intn(20))
			if rng.Intn(5) == 0 {
				pool.Demote(id)
				model.demote(id)
				continue
			}
			hit, err := pool.Read(id)
			if err != nil {
				return false
			}
			if hit != model.read(id) {
				return false
			}
		}
		got := pool.LRUOrder()
		if len(got) != len(model.pages) {
			return false
		}
		for i := range got {
			if got[i] != model.pages[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoolNeverExceedsCapacityQuick(t *testing.T) {
	f := func(ids []uint16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		p := NewPool(capacity)
		for _, id := range ids {
			if _, err := p.Read(PageID(id % 64)); err != nil {
				return false
			}
			if p.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
