package metrics

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("title", "col1", "longer column")
	tb.AddRow("a", "b")
	tb.AddRow("wide cell value", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Fatalf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "col1") || !strings.Contains(lines[1], "longer column") {
		t.Fatalf("header wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator wrong: %q", lines[2])
	}
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns align: "b" must start at the same offset as "longer".
	if strings.Index(lines[3], "b") != strings.Index(lines[1], "longer") {
		t.Fatalf("columns not aligned:\n%s", out)
	}
}

func TestTableRowClamping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")           // short row padded
	tb.AddRow("1", "2", "3") // long row truncated
	if len(tb.Rows[0]) != 2 || len(tb.Rows[1]) != 2 {
		t.Fatal("rows must be clamped to the column count")
	}
	if tb.Rows[0][1] != "" || tb.Rows[1][1] != "2" {
		t.Fatal("clamping semantics wrong")
	}
}

func TestTableAddRowValues(t *testing.T) {
	tb := NewTable("", "n", "f")
	tb.AddRowValues(42, 1.5)
	if tb.Rows[0][0] != "42" || tb.Rows[0][1] != "1.5" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("plain", `with "quotes", and comma`)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"with \"quotes\", and comma"`) {
		t.Fatalf("CSV escaping wrong: %q", out)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(1, 10)
	s.Add(2, 20)
	if v, err := s.At(2); err != nil || v != 20 {
		t.Fatalf("At(2) = %g, %v", v, err)
	}
	if _, err := s.At(3); err == nil {
		t.Fatal("missing X must error")
	}
}

func TestSeriesTable(t *testing.T) {
	a := &Series{Name: "A"}
	b := &Series{Name: "B"}
	for _, x := range []float64{0.5, 1, 2} {
		a.Add(x, x*2)
		b.Add(x, x*3)
	}
	tb, err := SeriesTable("t", "x", "%.1f", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 || tb.Columns[1] != "A" || tb.Columns[2] != "B" {
		t.Fatalf("table = %+v", tb)
	}
	if tb.Rows[1][1] != "2.0" || tb.Rows[1][2] != "3.0" {
		t.Fatalf("row = %v", tb.Rows[1])
	}
}

func TestSeriesTableMismatch(t *testing.T) {
	a := &Series{Name: "A"}
	a.Add(1, 1)
	b := &Series{Name: "B"} // missing x=1
	if _, err := SeriesTable("t", "x", "%.1f", a, b); err == nil {
		t.Fatal("mismatched series must error")
	}
}

func TestSeriesTableEmpty(t *testing.T) {
	tb, err := SeriesTable("t", "x", "%.1f")
	if err != nil || len(tb.Columns) != 1 {
		t.Fatalf("empty series table: %v, %v", tb, err)
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(0.8415) != "0.842" {
		t.Fatalf("Ratio = %q", Ratio(0.8415))
	}
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(0.123))
	}
	cases := map[int64]string{
		512:          "512 B",
		2048:         "2.0 KiB",
		16 << 20:     "16.0 MiB",
		3 << 30:      "3.0 GiB",
		1<<40 + 1e11: "1.1 TiB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}
