// Package metrics provides the small reporting toolkit the experiment
// harness prints paper-style tables and curve series with.
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rectangular, left-aligned text table with a title.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped and
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowValues appends a row of arbitrary values formatted with %v.
func (t *Table) AddRowValues(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		s[i] = fmt.Sprint(c)
	}
	t.AddRow(s...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// CSV writes the table as CSV (title omitted).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return strconv.Quote(s)
		}
		return s
	}
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(cell))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Point is one (x, y) sample of a curve.
type Point struct {
	X, Y float64
}

// Series is a named curve, e.g. one policy's CSR over cache sizes.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{x, y})
}

// At returns the Y value at the given X, or an error when X is absent.
func (s *Series) At(x float64) (float64, error) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, nil
		}
	}
	return 0, fmt.Errorf("metrics: series %q has no point at x=%g", s.Name, x)
}

// SeriesTable renders several series sharing an X axis as a table.
func SeriesTable(title, xLabel string, format string, series ...*Series) (*Table, error) {
	if len(series) == 0 {
		return NewTable(title, xLabel), nil
	}
	cols := []string{xLabel}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	t := NewTable(title, cols...)
	base := series[0]
	for _, p := range base.Points {
		row := []string{strconv.FormatFloat(p.X, 'g', -1, 64)}
		for _, s := range series {
			y, err := s.At(p.X)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf(format, y))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Ratio formats v as a ratio with three decimals ("0.842").
func Ratio(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats v (a fraction) as a percentage with one decimal ("84.2%").
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Bytes formats a byte count in binary units.
func Bytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
