// Package storage maps relations onto pages and routes page references to a
// consumer, typically the buffer pool. It is the glue between the query
// engine (which thinks in relations and row indices) and the buffer manager
// (which thinks in opaque page IDs).
package storage

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/relation"
)

// PageSink consumes page references emitted by the engine. The buffer pool
// is the usual sink; tests use recording sinks.
type PageSink interface {
	// Reference notes one logical read of the page.
	Reference(id buffer.PageID)
}

// SinkFunc adapts a function to the PageSink interface.
type SinkFunc func(buffer.PageID)

// Reference calls the underlying function.
func (f SinkFunc) Reference(id buffer.PageID) { f(id) }

// CountingSink counts references without retaining them.
type CountingSink struct {
	// N is the number of references observed.
	N int64
}

// Reference increments the counter.
func (c *CountingSink) Reference(buffer.PageID) { c.N++ }

// PoolSink feeds references into a buffer pool, recording faults.
type PoolSink struct {
	// Pool is the destination buffer pool.
	Pool *buffer.Pool
	// Err holds the first error returned by the pool, if any.
	Err error
}

// Reference reads the page through the pool.
func (s *PoolSink) Reference(id buffer.PageID) {
	if s.Err != nil {
		return
	}
	if _, err := s.Pool.Read(id); err != nil {
		s.Err = err
	}
}

// Pager assigns each relation a dense ID and packs (relation, page) pairs
// into buffer.PageID values. Page numbers are local to their relation.
type Pager struct {
	db       *relation.Database
	relIDs   map[string]uint64
	relNames []string
	pages    []int64 // pages per relation, indexed by relation ID
}

// pageBits is the number of low bits of a PageID holding the page number,
// leaving the high bits for the relation ID. 2^40 pages × 4 KiB = 4 PiB per
// relation, far beyond any configuration this simulator runs.
const pageBits = 40

// NewPager builds a pager over the database. Relation IDs are assigned in
// sorted name order so they are stable across runs.
func NewPager(db *relation.Database) *Pager {
	names := db.RelationNames()
	p := &Pager{
		db:       db,
		relIDs:   make(map[string]uint64, len(names)),
		relNames: names,
		pages:    make([]int64, len(names)),
	}
	for i, n := range names {
		p.relIDs[n] = uint64(i)
		p.pages[i] = db.Relations[n].Pages(db.PageSize)
	}
	return p
}

// DB returns the database the pager was built over.
func (p *Pager) DB() *relation.Database { return p.db }

// PageID packs a relation name and relation-local page number. It panics on
// unknown relations or out-of-range pages: both indicate a bug in plan
// construction, not runtime input.
func (p *Pager) PageID(rel string, page int64) buffer.PageID {
	id, ok := p.relIDs[rel]
	if !ok {
		panic(fmt.Sprintf("storage: unknown relation %q", rel))
	}
	if page < 0 || page >= p.pages[id] {
		panic(fmt.Sprintf("storage: relation %s: page %d out of range [0,%d)", rel, page, p.pages[id]))
	}
	return buffer.PageID(id<<pageBits | uint64(page))
}

// Decode unpacks a PageID into its relation name and page number.
func (p *Pager) Decode(id buffer.PageID) (rel string, page int64, err error) {
	relID := uint64(id) >> pageBits
	if relID >= uint64(len(p.relNames)) {
		return "", 0, fmt.Errorf("storage: page ID %d has unknown relation %d", id, relID)
	}
	page = int64(uint64(id) & (1<<pageBits - 1))
	rel = p.relNames[int(relID)]
	if page >= p.pages[relID] {
		return "", 0, fmt.Errorf("storage: page ID %d out of range for relation %s", id, rel)
	}
	return rel, page, nil
}

// Pages returns the number of pages of the named relation.
func (p *Pager) Pages(rel string) int64 {
	id, ok := p.relIDs[rel]
	if !ok {
		panic(fmt.Sprintf("storage: unknown relation %q", rel))
	}
	return p.pages[id]
}

// TotalPages returns the number of data pages across all relations.
func (p *Pager) TotalPages() int64 {
	var t int64
	for _, n := range p.pages {
		t += n
	}
	return t
}

// PageOfRow returns the relation-local page holding the given row index.
func (p *Pager) PageOfRow(rel *relation.Relation, row int64) int64 {
	return row / rel.RowsPerPage(p.db.PageSize)
}

// EmitRange references pages [lo, hi] of the relation in ascending order.
func (p *Pager) EmitRange(rel string, lo, hi int64, sink PageSink) {
	for pg := lo; pg <= hi; pg++ {
		sink.Reference(p.PageID(rel, pg))
	}
}

// EmitAll references every page of the relation in ascending order, as a
// sequential scan would.
func (p *Pager) EmitAll(rel string, sink PageSink) {
	p.EmitRange(rel, 0, p.Pages(rel)-1, sink)
}

// EmitSet references the given relation-local pages in ascending order,
// deduplicating first; the slice is modified in place.
func (p *Pager) EmitSet(rel string, pages []int64, sink PageSink) {
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var prev int64 = -1
	for _, pg := range pages {
		if pg == prev {
			continue
		}
		prev = pg
		sink.Reference(p.PageID(rel, pg))
	}
}
