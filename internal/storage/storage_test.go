package storage

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/relation"
)

func testDB() *relation.Database {
	return relation.TPCD(0.001, 0)
}

func TestPageIDRoundtrip(t *testing.T) {
	p := NewPager(testDB())
	for _, rel := range p.DB().RelationNames() {
		for _, page := range []int64{0, p.Pages(rel) - 1} {
			id := p.PageID(rel, page)
			gotRel, gotPage, err := p.Decode(id)
			if err != nil {
				t.Fatal(err)
			}
			if gotRel != rel || gotPage != page {
				t.Fatalf("roundtrip (%s,%d) -> (%s,%d)", rel, page, gotRel, gotPage)
			}
		}
	}
}

func TestPageIDsDistinctAcrossRelations(t *testing.T) {
	p := NewPager(testDB())
	seen := make(map[buffer.PageID]string)
	for _, rel := range p.DB().RelationNames() {
		for page := int64(0); page < p.Pages(rel); page++ {
			id := p.PageID(rel, page)
			if prev, ok := seen[id]; ok {
				t.Fatalf("page ID collision between %s and %s", prev, rel)
			}
			seen[id] = rel
		}
	}
	if int64(len(seen)) != p.TotalPages() {
		t.Fatalf("distinct IDs %d != total pages %d", len(seen), p.TotalPages())
	}
}

func TestPageIDPanics(t *testing.T) {
	p := NewPager(testDB())
	for name, f := range map[string]func(){
		"unknown relation": func() { p.PageID("nope", 0) },
		"negative page":    func() { p.PageID("orders", -1) },
		"page overflow":    func() { p.PageID("orders", p.Pages("orders")) },
		"unknown pages":    func() { p.Pages("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDecodeErrors(t *testing.T) {
	p := NewPager(testDB())
	if _, _, err := p.Decode(buffer.PageID(1<<63 - 1)); err == nil {
		t.Error("absurd relation ID must fail to decode")
	}
	// A page number past the relation's end.
	bad := p.PageID("region", 0) + buffer.PageID(1000000)
	if _, _, err := p.Decode(bad); err == nil {
		t.Error("out-of-range page must fail to decode")
	}
}

func TestEmitAll(t *testing.T) {
	p := NewPager(testDB())
	var got []buffer.PageID
	p.EmitAll("orders", SinkFunc(func(id buffer.PageID) { got = append(got, id) }))
	if int64(len(got)) != p.Pages("orders") {
		t.Fatalf("emitted %d pages, want %d", len(got), p.Pages("orders"))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("sequential scan must emit ascending page IDs")
		}
	}
}

func TestEmitRange(t *testing.T) {
	p := NewPager(testDB())
	var n int
	p.EmitRange("orders", 2, 5, SinkFunc(func(buffer.PageID) { n++ }))
	if n != 4 {
		t.Fatalf("emitted %d pages, want 4", n)
	}
}

func TestEmitSetDeduplicates(t *testing.T) {
	p := NewPager(testDB())
	var got []buffer.PageID
	p.EmitSet("orders", []int64{5, 1, 5, 3, 1}, SinkFunc(func(id buffer.PageID) { got = append(got, id) }))
	if len(got) != 3 {
		t.Fatalf("emitted %d pages, want 3 after dedup", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("EmitSet must emit ascending page IDs")
		}
	}
}

func TestCountingSink(t *testing.T) {
	var c CountingSink
	c.Reference(1)
	c.Reference(2)
	c.Reference(1)
	if c.N != 3 {
		t.Fatalf("N = %d, want 3", c.N)
	}
}

func TestPoolSink(t *testing.T) {
	pool := buffer.NewPool(2)
	s := &PoolSink{Pool: pool}
	s.Reference(1)
	s.Reference(2)
	s.Reference(1)
	if s.Err != nil {
		t.Fatal(s.Err)
	}
	st := pool.Stats()
	if st.Reads != 3 || st.Hits != 1 {
		t.Fatalf("pool stats = %+v", st)
	}
}

func TestPoolSinkErrorSticks(t *testing.T) {
	pool := buffer.NewPool(1)
	pool.Read(7)
	if err := pool.Pin(7); err != nil {
		t.Fatal(err)
	}
	s := &PoolSink{Pool: pool}
	s.Reference(8) // cannot evict the pinned page
	if s.Err == nil {
		t.Fatal("expected an error")
	}
	before := pool.Stats()
	s.Reference(9) // must be a no-op after the first error
	if pool.Stats() != before {
		t.Fatal("sink continued after error")
	}
}

func TestPageOfRow(t *testing.T) {
	db := testDB()
	p := NewPager(db)
	ord := db.MustRelation("orders")
	rpp := ord.RowsPerPage(db.PageSize)
	if got := p.PageOfRow(ord, 0); got != 0 {
		t.Fatalf("row 0 on page %d", got)
	}
	if got := p.PageOfRow(ord, rpp); got != 1 {
		t.Fatalf("row %d on page %d, want 1", rpp, got)
	}
	if got := p.PageOfRow(ord, ord.Rows-1); got != p.Pages("orders")-1 {
		t.Fatalf("last row on page %d, want %d", got, p.Pages("orders")-1)
	}
}

func TestTotalPages(t *testing.T) {
	p := NewPager(testDB())
	var sum int64
	for _, rel := range p.DB().RelationNames() {
		sum += p.Pages(rel)
	}
	if p.TotalPages() != sum {
		t.Fatalf("TotalPages = %d, want %d", p.TotalPages(), sum)
	}
}
