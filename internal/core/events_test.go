package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// eventTally accumulates the event stream into the same quantities Stats
// counts, so replays can assert event/stat equivalence.
type eventTally struct {
	byKind    [numEventKinds]int64
	costTotal float64
	costSaved float64
	bytes     int64
	byClass   map[int]int64
}

func (t *eventTally) Emit(ev Event) {
	t.byKind[ev.Kind]++
	switch ev.Kind {
	case EventHit, EventMissAdmitted, EventMissRejected, EventExternalMiss:
		t.costTotal += ev.Cost
		if ev.Kind == EventHit {
			t.costSaved += ev.Cost
			t.bytes += ev.Size
		}
		if t.byClass == nil {
			t.byClass = make(map[int]int64)
		}
		t.byClass[ev.Class]++
	}
}

// checkTallyMatches asserts that the cache's Stats are exactly the sum of
// the emitted events.
func checkTallyMatches(t *testing.T, c *Cache, tally *eventTally) {
	t.Helper()
	s := c.Stats()
	refs := tally.byKind[EventHit] + tally.byKind[EventMissAdmitted] +
		tally.byKind[EventMissRejected] + tally.byKind[EventExternalMiss]
	if refs != s.References {
		t.Fatalf("events sum to %d references, Stats has %d", refs, s.References)
	}
	if tally.byKind[EventHit] != s.Hits {
		t.Fatalf("hit events %d, Stats.Hits %d", tally.byKind[EventHit], s.Hits)
	}
	if tally.byKind[EventMissAdmitted] != s.Admissions {
		t.Fatalf("admit events %d, Stats.Admissions %d", tally.byKind[EventMissAdmitted], s.Admissions)
	}
	if tally.byKind[EventMissRejected] != s.Rejections {
		t.Fatalf("reject events %d, Stats.Rejections %d", tally.byKind[EventMissRejected], s.Rejections)
	}
	if tally.byKind[EventExternalMiss] != s.ExternalMisses {
		t.Fatalf("external-miss events %d, Stats.ExternalMisses %d", tally.byKind[EventExternalMiss], s.ExternalMisses)
	}
	if tally.byKind[EventEvict] != s.Evictions {
		t.Fatalf("evict events %d, Stats.Evictions %d", tally.byKind[EventEvict], s.Evictions)
	}
	if tally.byKind[EventInvalidate] != s.Invalidations {
		t.Fatalf("invalidate events %d, Stats.Invalidations %d", tally.byKind[EventInvalidate], s.Invalidations)
	}
	if tally.costTotal != s.CostTotal {
		t.Fatalf("event cost total %g, Stats.CostTotal %g", tally.costTotal, s.CostTotal)
	}
	if tally.costSaved != s.CostSaved {
		t.Fatalf("event cost saved %g, Stats.CostSaved %g", tally.costSaved, s.CostSaved)
	}
	if tally.bytes != s.BytesServed {
		t.Fatalf("event bytes served %d, Stats.BytesServed %d", tally.bytes, s.BytesServed)
	}
}

// TestPropertyEventsMatchStats replays pseudo-random traces (with
// invalidation churn and occasional Account charges) across the policy
// grid and asserts that Stats is exactly the sum of the emitted events —
// the core guarantee the telemetry spine rests on.
func TestPropertyEventsMatchStats(t *testing.T) {
	for _, cfg := range allSetups() {
		cfg := cfg
		name := fmt.Sprintf("%s-%s-meta%d-cap%d", cfg.Policy, cfg.Evictor, cfg.MetadataOverhead, cfg.Capacity)
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				tally := &eventTally{}
				cfg := cfg
				cfg.Sink = tally
				c, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed))
				now := 0.0
				for i := 0; i < 800; i++ {
					now += rng.ExpFloat64()
					id := fmt.Sprintf("q%d", rng.Intn(60))
					h := Signature(id)
					size := int64(h%300) + 1
					cost := float64(h%5000) + 1
					class := int(h % 3)
					rels := []string{fmt.Sprintf("r%d", h%5)}
					req := Request{QueryID: id, Time: now, Class: class, Size: size, Cost: cost, Relations: rels}
					switch {
					case rng.Intn(41) == 0:
						// External outcome, resolved outside the lifecycle.
						c.Account(req, rng.Intn(2) == 0)
					default:
						c.Reference(req)
					}
					if rng.Intn(97) == 0 {
						c.Invalidate(fmt.Sprintf("r%d", rng.Intn(5)))
					}
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				checkTallyMatches(t, c, tally)
			}
		})
	}
}

// TestCallbackAdapterMatchesEvents runs the same pressured workload as
// TestCallbacks twice — once observed through the legacy callbacks, once
// through an event sink — and asserts the adapter preserved every firing
// rule (OnReject only on admitter denials, OnEvict also on resident
// invalidations).
func TestCallbackAdapterMatchesEvents(t *testing.T) {
	run := func(cfg Config) *Cache {
		c := newCache(t, cfg)
		c.Reference(req("a", 1, 100, 100))
		c.Reference(req("b", 2, 100, 100))
		c.Reference(req("junk", 3, 200, 1)) // rejected: e-profit too low
		c.Reference(req("gold", 4, 200, 1e6))
		c.Invalidate("rel-of-nobody")
		return c
	}

	var admits, evicts, rejects int
	run(Config{
		Capacity: 250,
		Policy:   LNCRA,
		OnAdmit:  func(*Entry) { admits++ },
		OnEvict:  func(*Entry) { evicts++ },
		OnReject: func(*Entry, []*Entry, float64, float64) { rejects++ },
	})

	var sinkAdmits, sinkEvicts, sinkRejects int
	run(Config{
		Capacity: 250,
		Policy:   LNCRA,
		Sink: EventSinkFunc(func(ev Event) {
			switch ev.Kind {
			case EventMissAdmitted:
				sinkAdmits++
			case EventEvict:
				sinkEvicts++
			case EventInvalidate:
				if ev.Resident {
					sinkEvicts++
				}
			case EventMissRejected:
				if ev.Victims != nil {
					sinkRejects++
				}
			}
		}),
	})

	if admits != sinkAdmits || evicts != sinkEvicts || rejects != sinkRejects {
		t.Fatalf("adapter drift: callbacks saw admits=%d evicts=%d rejects=%d, sink saw %d/%d/%d",
			admits, evicts, rejects, sinkAdmits, sinkEvicts, sinkRejects)
	}
	if admits == 0 || rejects == 0 {
		t.Fatalf("workload exercised nothing: admits=%d rejects=%d", admits, rejects)
	}
}

// TestAccount verifies the Account API's charging rules: hit=true accrues
// the savings counters, hit=false accrues ExternalMisses, and both count
// the reference and its cost.
func TestAccount(t *testing.T) {
	var events []Event
	c := newCache(t, Config{Capacity: 1000, Policy: LNCRA,
		Sink: EventSinkFunc(func(ev Event) { events = append(events, ev) })})

	c.Account(Request{QueryID: "ext", Time: 1, Class: 2, Size: 40, Cost: 70}, false)
	s := c.Stats()
	if s.References != 1 || s.ExternalMisses != 1 || s.Hits != 0 {
		t.Fatalf("after external miss: %+v", s)
	}
	if s.CostTotal != 70 || s.CostSaved != 0 {
		t.Fatalf("external miss mischarged: %+v", s)
	}

	c.Account(Request{QueryID: "elsewhere", Time: 2, Size: 30, Cost: 50}, true)
	s = c.Stats()
	if s.References != 2 || s.Hits != 1 || s.CostSaved != 50 || s.BytesServed != 30 {
		t.Fatalf("after external hit: %+v", s)
	}
	if s.ExternalMisses != 1 {
		t.Fatalf("external hit must not count as external miss: %+v", s)
	}

	// Nothing was inserted, looked up or evicted.
	if c.Resident() != 0 || c.Retained() != 0 {
		t.Fatalf("Account touched cache content: resident=%d retained=%d", c.Resident(), c.Retained())
	}
	if len(events) != 2 || events[0].Kind != EventExternalMiss || events[1].Kind != EventHit {
		t.Fatalf("unexpected events: %+v", events)
	}
	if events[0].Class != 2 {
		t.Fatalf("class not carried on event: %+v", events[0])
	}
}

// TestHitPathAllocationFree asserts the hot hit path stays allocation-free
// with a sink attached — the telemetry spine must not tax every hit with
// garbage.
func TestHitPathAllocationFree(t *testing.T) {
	var hits int64
	c := newCache(t, Config{Capacity: 1 << 20, K: 4, Policy: LNCRA,
		Sink: EventSinkFunc(func(ev Event) {
			if ev.Kind == EventHit {
				hits++
			}
		})})
	id := CompressID("hot query")
	sig := Signature(id)
	c.ReferenceCanonical(Request{QueryID: id, Time: 1, Size: 100, Cost: 50}, sig)

	now := 2.0
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		c.ReferenceCanonical(Request{QueryID: id, Time: now, Size: 100, Cost: 50}, sig)
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %.1f objects per reference with a sink attached", allocs)
	}
	if hits == 0 {
		t.Fatal("sink observed no hits")
	}
}
