package core

import (
	"container/heap"
	"sort"
)

// EvictorKind selects the victim-search data structure. Both produce
// candidates in the policy's (tier, key) order; they trade exactness for
// speed and are compared in the A3 ablation benchmark.
type EvictorKind int

const (
	// ScanEvictor recomputes every entry's rank at selection time and
	// sorts. Exact, O(n log n) per eviction.
	ScanEvictor EvictorKind = iota
	// HeapEvictor keeps per-policy heaps with lazily refreshed keys.
	// Near-exact for time-decaying keys (LNC profits), exact for static
	// keys, O(k log n) per eviction.
	HeapEvictor
)

// String names the evictor kind.
func (k EvictorKind) String() string {
	if k == HeapEvictor {
		return "heap"
	}
	return "scan"
}

// evictor maintains the set of resident entries and selects eviction
// candidates.
type evictor interface {
	add(e *Entry, now float64)
	remove(e *Entry)
	touch(e *Entry, now float64)
	// candidates returns a minimal prefix of resident entries, in eviction
	// order, whose sizes sum to at least need. The call must not mutate
	// residency; the cache decides whether to actually evict. It returns
	// nil when the resident set cannot cover need.
	candidates(need int64, now float64) []*Entry
	count() int
}

func newEvictor(kind EvictorKind, r ranker) evictor {
	if kind == HeapEvictor {
		return &heapEvictor{r: r, items: make(map[*Entry]*heapItem)}
	}
	return &scanEvictor{r: r, entries: make(map[*Entry]struct{})}
}

// scanEvictor: exact selection by full sort.
type scanEvictor struct {
	r       ranker
	entries map[*Entry]struct{}
}

func (s *scanEvictor) add(e *Entry, _ float64) { s.entries[e] = struct{}{} }
func (s *scanEvictor) remove(e *Entry)         { delete(s.entries, e) }
func (s *scanEvictor) touch(*Entry, float64)   {}
func (s *scanEvictor) count() int              { return len(s.entries) }

func (s *scanEvictor) candidates(need int64, now float64) []*Entry {
	all := make([]*Entry, 0, len(s.entries))
	for e := range s.entries {
		all = append(all, e)
	}
	type ranked struct {
		e    *Entry
		tier int
		key  float64
	}
	rs := make([]ranked, len(all))
	for i, e := range all {
		t, k := s.r.rank(e, now)
		rs[i] = ranked{e, t, k}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].tier != rs[j].tier {
			return rs[i].tier < rs[j].tier
		}
		if rs[i].key != rs[j].key {
			return rs[i].key < rs[j].key
		}
		return rs[i].e.ID < rs[j].e.ID // deterministic tie-break
	})
	var out []*Entry
	var freed int64
	for _, r := range rs {
		if freed >= need {
			return out
		}
		out = append(out, r.e)
		freed += r.e.Size
	}
	if freed >= need {
		return out
	}
	return nil
}

// heapEvictor: lazy min-heap keyed by (tier, key) captured at push time.
// Keys may go stale between touches (LNC profits decay as time advances);
// candidates refreshes stale keys at most once per entry per call, which
// bounds the work and makes the selection near-exact.
type heapItem struct {
	e    *Entry // nil when the item is stale
	tier int
	key  float64
	id   string
}

type itemHeap []*heapItem

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].tier != h[j].tier {
		return h[i].tier < h[j].tier
	}
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].id < h[j].id
}
func (h itemHeap) Swap(i, j int)          { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)            { *h = append(*h, x.(*heapItem)) }
func (h *itemHeap) Pop() any              { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h itemHeap) Peek() *heapItem        { return h[0] }
func (h itemHeap) Empty() bool            { return len(h) == 0 }
func (h itemHeap) stale(i *heapItem) bool { return i.e == nil }

type heapEvictor struct {
	r     ranker
	h     itemHeap
	items map[*Entry]*heapItem
	n     int
}

func (he *heapEvictor) push(e *Entry, now float64) {
	t, k := he.r.rank(e, now)
	it := &heapItem{e: e, tier: t, key: k, id: e.ID}
	he.items[e] = it
	heap.Push(&he.h, it)
}

func (he *heapEvictor) add(e *Entry, now float64) {
	he.push(e, now)
	he.n++
}

func (he *heapEvictor) remove(e *Entry) {
	if it, ok := he.items[e]; ok {
		it.e = nil // lazy delete
		delete(he.items, e)
		he.n--
	}
}

func (he *heapEvictor) touch(e *Entry, now float64) {
	if it, ok := he.items[e]; ok {
		it.e = nil
	}
	he.push(e, now)
}

func (he *heapEvictor) count() int { return he.n }

// compact drops stale items when they dominate the heap.
func (he *heapEvictor) compact() {
	if len(he.h) < 64 || len(he.h) < 4*he.n {
		return
	}
	live := he.h[:0]
	for _, it := range he.h {
		if it.e != nil {
			live = append(live, it)
		}
	}
	he.h = live
	heap.Init(&he.h)
}

func (he *heapEvictor) candidates(need int64, now float64) []*Entry {
	he.compact()
	var out []*Entry
	var popped []*heapItem
	refreshed := make(map[*Entry]bool)
	var freed int64
	for freed < need && !he.h.Empty() {
		it := heap.Pop(&he.h).(*heapItem)
		e := it.e
		if e == nil {
			continue // stale
		}
		if !refreshed[e] {
			refreshed[e] = true
			// Refresh the key once per entry per call: stored LNC profits
			// decay between touches, so re-rank and re-insert to restore
			// ordering against the rest of the heap.
			t, k := he.r.rank(e, now)
			if t != it.tier || k != it.key {
				it.e = nil
				fresh := &heapItem{e: e, tier: t, key: k, id: e.ID}
				he.items[e] = fresh
				heap.Push(&he.h, fresh)
				continue
			}
		}
		out = append(out, e)
		popped = append(popped, it)
		freed += e.Size
	}
	// Non-destructive: restore popped items.
	for _, it := range popped {
		heap.Push(&he.h, it)
	}
	if freed >= need {
		return out
	}
	return nil
}
