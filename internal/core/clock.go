package core

// This file is the package's designated time-source file: the only place
// in core allowed to read the process clock. Core's cache logic works in
// logical seconds supplied by the caller (trace replay or the shard
// layer's injected time source) — the monotonic clock below exists
// solely for flight-recorder span timing, which measures wall latency
// and is invisible to replay determinism. The timesource analyzer
// (cmd/watchmanlint) enforces that no other file in the package reads
// the clock.
//
//watchman:timesource

import "time"

// spanEpoch anchors the monotonic clock every span timing is read from.
// time.Since on a fixed anchor uses the runtime's monotonic reading, so
// stage durations are immune to wall-clock steps.
var spanEpoch = time.Now()

// monotonicNanos returns nanoseconds elapsed on the monotonic clock since
// process start (strictly: since package initialization).
func monotonicNanos() int64 { return int64(time.Since(spanEpoch)) }

// MonotonicNanos exposes the span clock to callers that attribute
// externally measured durations to a stage — the buffered shard front
// stamps promotions at enqueue time and charges the queue delay to
// StageApply when the worker applies them. Comparable only with other
// readings from the same process.
func MonotonicNanos() int64 { return monotonicNanos() }
