package core

// Ghost derives a configuration for a counterfactual shadow of this
// cache: same estimator parameters (K, evictor, retained-information and
// metadata settings), a different capacity and policy, and every observer
// stripped. Shadows built from it — the admission tuner's θ arms, the
// what-if ghost matrix — replay reference streams without re-emitting
// events, tracing spans, deriving answers or firing callbacks, so a ghost
// can safely run inside a sink of the live cache it shadows.
//
// The admitter is also cleared: admission falls back to the policy
// default (the static LNC-A test for LNCRA), and callers that want an
// adaptive ghost attach their own tuner's admitter.
func (cfg Config) Ghost(capacity int64, policy PolicyKind) Config {
	g := cfg
	g.Capacity = capacity
	g.Policy = policy
	g.Admitter = nil
	g.Sink = nil
	g.Tracer = nil
	g.Deriver = nil
	g.OnAdmit = nil
	g.OnEvict = nil
	g.OnReject = nil
	return g
}

// WarmInsert makes a set resident without charging a reference — the
// ghost-side image of the snapshot-restore path. The set is inserted only
// when it fits in free space (evicting for a restored set would let dead
// snapshot content push out observed references); a ghost too small to
// hold it simply starts colder, which is the honest counterfactual. One
// reference is recorded at the restore time so the profit estimators have
// a starting point, mirroring a freshly-admitted set's state. It reports
// whether the set became resident.
func (c *Cache) WarmInsert(req Request, sig uint64) bool {
	if req.Size <= 0 {
		return false
	}
	if t := req.Time; t > c.now {
		c.now = t
	}
	e := c.lookup(req.QueryID, sig)
	if e != nil && e.resident {
		return false
	}
	extraMeta := c.cfg.MetadataOverhead
	if e != nil {
		if _, isRetained := c.retained[e]; isRetained {
			extraMeta = 0 // its record is already charged
		}
	}
	free := c.cfg.Capacity - c.usedPayload - c.metaBytes()
	if free < req.Size+extraMeta {
		return false
	}
	if e == nil {
		e = &Entry{ID: req.QueryID, Sig: sig, Size: req.Size, Cost: req.Cost,
			Class: req.Class, Relations: req.Relations, rc: c.rc}
		e.window = newRefWindow(c.cfg.K)
	}
	e.window.record(c.now)
	c.insert(e, req)
	return true
}
