package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// stateReplayRandom feeds n random references into the cache and returns the
// requests so a second cache can replay them identically.
func stateReplayRandom(c *Cache, seed int64, n int) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		now += rng.Float64() * 2
		r := Request{
			QueryID: fmt.Sprintf("q%d", rng.Intn(n/3+1)),
			Time:    now,
			Class:   rng.Intn(3),
			Size:    rng.Int63n(400) + 1,
			Cost:    float64(rng.Intn(1000)) + 1,
		}
		if rng.Intn(3) == 0 {
			r.Relations = []string{fmt.Sprintf("rel%d", rng.Intn(4))}
		}
		reqs = append(reqs, r)
		c.Reference(r)
	}
	return reqs
}

// entriesEqual compares the full observable record state of two caches.
func entriesEqual(t *testing.T, a, b *Cache) {
	t.Helper()
	ae, be := a.ExportState().Entries, b.ExportState().Entries
	if len(ae) != len(be) {
		t.Fatalf("entry counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		x, y := ae[i], be[i]
		if x.ID != y.ID || x.Size != y.Size || x.Cost != y.Cost || x.Class != y.Class ||
			x.Resident != y.Resident || x.TotalRefs != y.TotalRefs ||
			!reflect.DeepEqual(x.RefTimes, y.RefTimes) || !reflect.DeepEqual(x.Relations, y.Relations) {
			t.Fatalf("entry %d differs:\n  a: %+v\n  b: %+v", i, x, y)
		}
	}
}

// TestExportRestoreRoundTrip is the core warm-restart property: a
// restored cache is indistinguishable from the original — same entries,
// same Stats, and identical behavior on all future traffic.
func TestExportRestoreRoundTrip(t *testing.T) {
	for _, policy := range []PolicyKind{LNCRA, LNCR, LRU, LRUK} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := Config{Capacity: 20 << 10, K: 3, Policy: policy, MetadataOverhead: 16}
			orig := newCache(t, cfg)
			reqs := stateReplayRandom(orig, 7, 3000)

			restored := newCache(t, cfg)
			rep, err := restored.RestoreState(orig.ExportState())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Resident != orig.Resident() || rep.DemotedResident != 0 || rep.Dropped != 0 {
				t.Fatalf("report %+v, want %d resident, nothing demoted/dropped", rep, orig.Resident())
			}
			if restored.Stats() != orig.Stats() {
				t.Fatalf("stats differ:\n  orig     %+v\n  restored %+v", orig.Stats(), restored.Stats())
			}
			if restored.Clock() != orig.Clock() || restored.UsedBytes() != orig.UsedBytes() ||
				restored.Retained() != orig.Retained() {
				t.Fatalf("clock/used/retained differ")
			}
			entriesEqual(t, orig, restored)
			checkInv(t, restored)

			// The decisive test: both caches must now behave identically
			// on the same future traffic.
			rng := rand.New(rand.NewSource(99))
			now := orig.Clock()
			for i := 0; i < 2000; i++ {
				now += rng.Float64()
				r := Request{
					QueryID: fmt.Sprintf("q%d", rng.Intn(len(reqs)/3+5)),
					Time:    now,
					Size:    rng.Int63n(400) + 1,
					Cost:    float64(rng.Intn(1000)) + 1,
				}
				h1, _ := orig.Reference(r)
				h2, _ := restored.Reference(r)
				if h1 != h2 {
					t.Fatalf("reference %d diverged: orig hit=%v restored hit=%v", i, h1, h2)
				}
			}
			if restored.Stats() != orig.Stats() {
				t.Fatalf("post-restore replay diverged:\n  orig     %+v\n  restored %+v", orig.Stats(), restored.Stats())
			}
			entriesEqual(t, orig, restored)
		})
	}
}

// TestRestoreRejectsWarmCache pins the precondition: restore replaces
// state wholesale and must refuse a cache that already served traffic.
func TestRestoreRejectsWarmCache(t *testing.T) {
	orig := newCache(t, Config{Capacity: 1 << 20, Policy: LNCRA})
	stateReplayRandom(orig, 1, 50)
	st := orig.ExportState()

	warm := newCache(t, Config{Capacity: 1 << 20, Policy: LNCRA})
	warm.Reference(req("x", 1, 10, 10))
	if _, err := warm.RestoreState(st); err == nil {
		t.Fatal("restore into a warm cache must fail")
	}
}

// TestRestoreRejectsBadState pins validation of hostile snapshot content:
// duplicates and impossible sizes must not reach the index.
func TestRestoreRejectsBadState(t *testing.T) {
	base := &CacheState{Clock: 10}
	for name, entries := range map[string][]EntryState{
		"empty id":       {{ID: "", Size: 5, Resident: true}},
		"duplicate":      {{ID: "a", Size: 5}, {ID: "a", Size: 6}},
		"zero size":      {{ID: "a", Size: 0, Resident: true}},
		"negative cost":  {{ID: "a", Size: 5, Cost: -1}},
		"negative size2": {{ID: "a", Size: -9}},
		"NaN cost":       {{ID: "a", Size: 5, Cost: math.NaN()}},
		"inf cost":       {{ID: "a", Size: 5, Cost: math.Inf(1)}},
		"NaN ref time":   {{ID: "a", Size: 5, RefTimes: []float64{1, math.NaN()}}},
		"negative total": {{ID: "a", Size: 5, RefTimes: []float64{1}, TotalRefs: -5}},
		"short total":    {{ID: "a", Size: 5, RefTimes: []float64{1, 2}, TotalRefs: 1}},
	} {
		st := *base
		st.Entries = entries
		c := newCache(t, Config{Capacity: 1 << 20, Policy: LNCRA})
		if _, err := c.RestoreState(&st); err == nil {
			t.Errorf("%s: restore must fail", name)
		}
	}
	// Non-finite clock state poisons every λ denominator.
	for name, st := range map[string]CacheState{
		"NaN clock": {Clock: math.NaN()},
		"inf minDt": {MinDt: math.Inf(1)},
	} {
		c := newCache(t, Config{Capacity: 1 << 20, Policy: LNCRA})
		if _, err := c.RestoreState(&st); err == nil {
			t.Errorf("%s: restore must fail", name)
		}
	}
}

// TestRestoreSmallerCapacityDemotes: restoring into a smaller cache keeps
// the most profitable residents and demotes the rest to retained records,
// never violating capacity.
func TestRestoreSmallerCapacityDemotes(t *testing.T) {
	big := newCache(t, Config{Capacity: 64 << 10, K: 2, Policy: LNCRA})
	stateReplayRandom(big, 3, 2000)
	st := big.ExportState()

	small := newCache(t, Config{Capacity: 8 << 10, K: 2, Policy: LNCRA})
	rep, err := small.RestoreState(st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DemotedResident == 0 {
		t.Fatal("expected demotions when restoring into an 8x smaller cache")
	}
	if small.UsedBytes() > 8<<10 {
		t.Fatalf("restored cache over capacity: %d", small.UsedBytes())
	}
	if rep.Resident != small.Resident() {
		t.Fatalf("report says %d resident, cache has %d", rep.Resident, small.Resident())
	}
	checkInv(t, small)

	// No-retained-info policy: what does not fit is dropped, not demoted.
	lru := newCache(t, Config{Capacity: 8 << 10, K: 2, Policy: LRU, DisableRetainedInfo: true})
	stLRU := &CacheState{Clock: st.Clock, Entries: st.Entries}
	repLRU, err := lru.RestoreState(stLRU)
	if err != nil {
		t.Fatal(err)
	}
	if repLRU.DemotedResident != 0 || repLRU.Dropped == 0 {
		t.Fatalf("LRU restore report %+v, want drops and no demotions", repLRU)
	}
	checkInv(t, lru)
}

// TestRestoreEmitsRestoreEvents: sinks that track cached content must see
// one EventRestore per restored resident entry.
func TestRestoreEmitsRestoreEvents(t *testing.T) {
	orig := newCache(t, Config{Capacity: 32 << 10, K: 2, Policy: LNCRA})
	stateReplayRandom(orig, 11, 500)
	st := orig.ExportState()

	var restores int
	var other int
	sink := EventSinkFunc(func(ev Event) {
		switch ev.Kind {
		case EventRestore:
			restores++
			if ev.Entry == nil || !ev.Entry.Resident() {
				t.Error("restore event must carry a resident entry")
			}
		default:
			other++
		}
	})
	restored := newCache(t, Config{Capacity: 32 << 10, K: 2, Policy: LNCRA, Sink: sink})
	rep, err := restored.RestoreState(st)
	if err != nil {
		t.Fatal(err)
	}
	if restores != rep.Resident {
		t.Fatalf("%d restore events for %d restored residents", restores, rep.Resident)
	}
	if other != 0 {
		t.Fatalf("restore emitted %d non-restore events", other)
	}
}

// TestWindowExportRestore pins the reference-window round trip, including
// the shrink-on-restore rule (only the most recent K times survive).
func TestWindowExportRestore(t *testing.T) {
	w := newRefWindow(3)
	for _, ts := range []float64{1, 2, 5, 9} {
		w.record(ts)
	}
	times := w.export()
	if want := []float64{2, 5, 9}; !reflect.DeepEqual(times, want) {
		t.Fatalf("export = %v, want %v", times, want)
	}
	same := restoreWindow(3, times, w.totalRefs())
	if !reflect.DeepEqual(same.export(), times) || same.totalRefs() != 4 {
		t.Fatalf("round trip = %v/%d", same.export(), same.totalRefs())
	}
	shrunk := restoreWindow(2, times, w.totalRefs())
	if want := []float64{5, 9}; !reflect.DeepEqual(shrunk.export(), want) {
		t.Fatalf("shrunk restore = %v, want %v", shrunk.export(), want)
	}
}
