package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRefWindowBasics(t *testing.T) {
	w := newRefWindow(3)
	if w.count() != 0 || w.totalRefs() != 0 {
		t.Fatal("fresh window is not empty")
	}
	if w.rate(10, 0) != 0 {
		t.Fatal("empty window must have zero rate")
	}

	w.record(1)
	if w.count() != 1 || w.last() != 1 || w.kth() != 1 {
		t.Fatalf("after one record: count=%d last=%g kth=%g", w.count(), w.last(), w.kth())
	}
	w.record(2)
	w.record(3)
	if w.count() != 3 || w.last() != 3 || w.kth() != 1 {
		t.Fatalf("after three records: count=%d last=%g kth=%g", w.count(), w.last(), w.kth())
	}
	// The fourth record evicts the oldest time from the window.
	w.record(5)
	if w.count() != 3 || w.last() != 5 || w.kth() != 2 {
		t.Fatalf("after wraparound: count=%d last=%g kth=%g", w.count(), w.last(), w.kth())
	}
	if w.totalRefs() != 4 {
		t.Fatalf("totalRefs = %d, want 4", w.totalRefs())
	}
}

func TestRefWindowRateFormula(t *testing.T) {
	// λ = k / (t − t_k), the paper's equation (3).
	w := newRefWindow(2)
	w.record(10)
	w.record(20)
	got := w.rate(30, 0)
	want := 2.0 / (30 - 10)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("rate = %g, want %g", got, want)
	}
}

func TestRefWindowPartialUsesAvailable(t *testing.T) {
	// With fewer than K references, the maximal available number is used.
	w := newRefWindow(5)
	w.record(100)
	got := w.rate(150, 0)
	want := 1.0 / 50
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("partial-window rate = %g, want %g", got, want)
	}
}

func TestRefWindowAging(t *testing.T) {
	// Including the current time ages unreferenced sets: the rate must be
	// strictly decreasing as now advances.
	w := newRefWindow(3)
	w.record(1)
	w.record(2)
	w.record(3)
	prev := math.Inf(1)
	for now := 4.0; now < 100; now += 7 {
		r := w.rate(now, 0)
		if r >= prev {
			t.Fatalf("rate did not decay: %g -> %g at now=%g", prev, r, now)
		}
		prev = r
	}
}

func TestRefWindowFloor(t *testing.T) {
	w := newRefWindow(1)
	w.record(100)
	// Evaluated at the instant of its only reference, the raw formula
	// would divide by ~zero; the floor caps the rate at 1/minDt.
	if got, want := w.rate(100, 2.0), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("floored rate = %g, want %g", got, want)
	}
	// Once more time has passed than the floor, the floor is inert.
	if got, want := w.rate(110, 2.0), 0.1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("rate = %g, want %g", got, want)
	}
}

func TestRefWindowSameInstantFiniteRate(t *testing.T) {
	w := newRefWindow(2)
	w.record(5)
	w.record(5)
	r := w.rate(5, 0)
	if math.IsInf(r, 0) || math.IsNaN(r) {
		t.Fatalf("rate at zero elapsed time must be finite, got %g", r)
	}
}

func TestRefWindowKOne(t *testing.T) {
	w := newRefWindow(1)
	for i := 0; i < 10; i++ {
		w.record(float64(i))
	}
	if w.count() != 1 || w.kth() != 9 || w.last() != 9 {
		t.Fatalf("K=1 window: count=%d kth=%g last=%g", w.count(), w.kth(), w.last())
	}
}

func TestRefWindowMinimumCapacity(t *testing.T) {
	w := newRefWindow(0) // clamps to 1
	w.record(3)
	if w.count() != 1 {
		t.Fatalf("count = %d, want 1", w.count())
	}
}

func TestRefWindowClone(t *testing.T) {
	w := newRefWindow(3)
	w.record(1)
	w.record(2)
	cp := w.clone()
	w.record(3)
	if cp.count() != 2 || cp.last() != 2 {
		t.Fatal("clone shares state with original")
	}
}

func TestRefWindowInvariantsQuick(t *testing.T) {
	f := func(times []float64, k uint8) bool {
		w := newRefWindow(int(k%8) + 1)
		now := 0.0
		for _, dt := range times {
			now += math.Abs(dt)
			if math.IsNaN(now) || math.IsInf(now, 0) {
				return true
			}
			w.record(now)
			// kth never exceeds last; count bounded by capacity.
			if w.kth() > w.last() {
				return false
			}
			if w.count() > len(w.times) {
				return false
			}
			if w.rate(now+1, 0) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
