package core

import "testing"

// stubDeriver derives any request whose Plan is the string "derivable",
// at a fixed derivation cost, so the accounting can be asserted without
// the real matcher.
type stubDeriver struct {
	cost     float64
	ancestor string
	calls    int
}

func (s *stubDeriver) Derive(req Request) (Derivation, bool) {
	s.calls++
	if p, ok := req.Plan.(string); !ok || p != "derivable" {
		return Derivation{}, false
	}
	return Derivation{Cost: s.cost, Remote: req.Cost, AncestorID: s.ancestor}, true
}

// deriveEventTally counts events by kind, separating derived-flagged admission
// bookkeeping from reference outcomes.
type deriveEventTally struct {
	byKind  map[EventKind]int64
	derived int64
}

func (t *deriveEventTally) Emit(ev Event) {
	if ev.Derived {
		t.derived++
		return
	}
	t.byKind[ev.Kind]++
}

func TestDerivedHitAccounting(t *testing.T) {
	sd := &stubDeriver{cost: 10, ancestor: "anc"}
	tally := &deriveEventTally{byKind: make(map[EventKind]int64)}
	c, err := New(Config{Capacity: 1 << 20, K: 2, Policy: LNCRA, Deriver: sd, Sink: tally})
	if err != nil {
		t.Fatal(err)
	}

	// Admit the ancestor (underivable plan), then derive a child from it.
	c.Reference(Request{QueryID: "anc", Time: 1, Size: 1024, Cost: 500, Plan: "opaque"})
	hit, _ := c.Reference(Request{QueryID: "child", Time: 2, Size: 256, Cost: 100, Plan: "derivable"})
	if !hit {
		t.Fatal("derived reference returned hit=false")
	}

	st := c.Stats()
	if st.References != 2 || st.Hits != 0 || st.DerivedHits != 1 {
		t.Fatalf("stats = refs %d hits %d derived %d, want 2/0/1", st.References, st.Hits, st.DerivedHits)
	}
	if st.CostTotal != 600 || st.CostSaved != 90 || st.DeriveCost != 10 {
		t.Fatalf("cost accounting = total %g saved %g derive %g, want 600/90/10", st.CostTotal, st.CostSaved, st.DeriveCost)
	}
	if hr := st.HitRatio(); hr != 0.5 {
		t.Fatalf("HitRatio = %g, want 0.5 (derived hits count)", hr)
	}

	// Event partition: one HitDerived, one MissAdmitted for the ancestor;
	// the derived set's admission rode the Derived flag.
	if tally.byKind[EventHitDerived] != 1 {
		t.Fatalf("HitDerived events = %d, want 1", tally.byKind[EventHitDerived])
	}
	if tally.byKind[EventMissAdmitted] != 1 {
		t.Fatalf("MissAdmitted events = %d, want 1 (ancestor only)", tally.byKind[EventMissAdmitted])
	}
	if tally.derived != 1 {
		t.Fatalf("derived-flagged admission events = %d, want 1", tally.derived)
	}
	refs := tally.byKind[EventHit] + tally.byKind[EventHitDerived] +
		tally.byKind[EventMissAdmitted] + tally.byKind[EventMissRejected] + tally.byKind[EventExternalMiss]
	if refs != st.References {
		t.Fatalf("reference-outcome events sum to %d, Stats.References = %d", refs, st.References)
	}

	// The derived set was admitted at residual cost 90.
	e, ok := c.Lookup("child")
	if !ok {
		t.Fatal("derived set not resident")
	}
	if e.Cost != 90 {
		t.Fatalf("derived entry cost = %g, want residual 90", e.Cost)
	}

	// The ancestor's reference window was credited with the derivation.
	anc, _ := c.Lookup("anc")
	if anc.TotalRefs() != 2 {
		t.Fatalf("ancestor TotalRefs = %d, want 2 (admission + derivation credit)", anc.TotalRefs())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSkippedWithPayloadOrZeroCost(t *testing.T) {
	sd := &stubDeriver{cost: 1, ancestor: "anc"}
	c, err := New(Config{Capacity: 1 << 20, K: 2, Policy: LNCRA, Deriver: sd})
	if err != nil {
		t.Fatal(err)
	}
	// A request already carrying its payload has nothing to save.
	c.Reference(Request{QueryID: "q1", Time: 1, Size: 64, Cost: 100, Plan: "derivable", Payload: "rows"})
	// A request without a cost basis cannot be compared.
	c.Reference(Request{QueryID: "q2", Time: 2, Size: 64, Plan: "derivable"})
	if sd.calls != 0 {
		t.Fatalf("deriver consulted %d times, want 0", sd.calls)
	}
	if st := c.Stats(); st.DerivedHits != 0 {
		t.Fatalf("DerivedHits = %d, want 0", st.DerivedHits)
	}
}

func TestReferenceDerivedOnResidentEntryChargesHit(t *testing.T) {
	c, err := New(Config{Capacity: 1 << 20, K: 2, Policy: LNCRA})
	if err != nil {
		t.Fatal(err)
	}
	// The set becomes resident between a Load leader's derivation (off
	// the shard lock) and its commit: ReferenceDerived must charge an
	// ordinary hit, not re-run the insert machinery on the resident
	// entry (which would double-charge capacity and the evictor).
	id := CompressID("q")
	sig := Signature(id)
	c.ReferenceCanonical(Request{QueryID: id, Time: 1, Size: 512, Cost: 100, Payload: "rows"}, sig)
	usedBefore := c.UsedBytes()

	p := c.ReferenceDerived(Request{QueryID: id, Time: 2, Size: 512, Cost: 100},
		sig, Derivation{Cost: 3, Remote: 100, AncestorID: "anc"})
	if p != "rows" {
		t.Fatalf("payload = %v, want the resident payload", p)
	}
	st := c.Stats()
	if st.Hits != 1 || st.DerivedHits != 0 {
		t.Fatalf("stats = hits %d derived %d, want 1/0", st.Hits, st.DerivedHits)
	}
	if c.UsedBytes() != usedBefore || c.Resident() != 1 {
		t.Fatalf("capacity accounting changed: used %d→%d, resident %d",
			usedBefore, c.UsedBytes(), c.Resident())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReferenceExecutedSkipsDerivation(t *testing.T) {
	sd := &stubDeriver{cost: 1, ancestor: "anc"}
	c, err := New(Config{Capacity: 1 << 20, K: 2, Policy: LNCRA, Deriver: sd})
	if err != nil {
		t.Fatal(err)
	}
	id := CompressID("loaded")
	hit, _ := c.ReferenceExecuted(Request{QueryID: id, Time: 1, Size: 64, Cost: 100, Plan: "derivable"}, Signature(id))
	if hit {
		t.Fatal("ReferenceExecuted must not report a hit on first sight")
	}
	if sd.calls != 0 {
		t.Fatalf("deriver consulted %d times on the executed path, want 0", sd.calls)
	}
	if st := c.Stats(); st.Admissions != 1 || st.DerivedHits != 0 {
		t.Fatalf("stats = admissions %d derived %d, want 1/0", st.Admissions, st.DerivedHits)
	}
}
