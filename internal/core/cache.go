package core

import (
	"fmt"
	"math"
	"sort"
)

// Config parameterizes a Cache.
type Config struct {
	// Capacity is the cache size in bytes. Use Unlimited for an infinite
	// cache.
	Capacity int64
	// K is the number of reference times kept per retrieved set (the K of
	// LRU-K and of the λ estimate). Vanilla LRU corresponds to K = 1.
	K int
	// Policy selects the replacement/admission algorithm.
	Policy PolicyKind
	// Evictor selects the victim-search structure (scan or heap).
	Evictor EvictorKind
	// MetadataOverhead is the space in bytes charged against Capacity for
	// every entry record, resident or retained. The paper's §2.4 retained-
	// information policy relies on retained records consuming cache space.
	MetadataOverhead int64
	// RetainedPruneEvery runs the retained-information pruning pass every
	// N misses. Zero selects the default (64).
	RetainedPruneEvery int
	// RetainedTimeout is the retention period in logical seconds for
	// policies that prune retained information by age (LRU-K, following
	// the Five Minute Rule discussion in §2.4). Zero selects the default
	// of 300 s. LNC-R/LNC-RA ignore it: they prune by the paper's
	// profit-based rule instead.
	RetainedTimeout float64
	// DisableRetainedInfo turns off retained reference information even
	// for policies that normally keep it (ablation A2).
	DisableRetainedInfo bool
	// StrictTiers enables the literal Figure-1 LNC-R victim loop: all
	// sets with one recorded reference in profit order, then all with two,
	// and so on. By default entries compete on profit alone — the λ
	// smoothing floor already discounts unreliable young estimates, and
	// the strict tier loop measurably inverts the paper's Figure 3 trend
	// on these workloads (ablation A6 quantifies this; see DESIGN.md).
	StrictTiers bool
	// Deriver, if non-nil, is consulted on the miss path with requests
	// that carry a plan descriptor (Request.Plan): when a cached ancestor
	// subsumes the query and deriving beats remote execution, the
	// reference ends in a HitDerived outcome instead of a miss, and the
	// derived set runs admission at its residual cost. A Deriver that also
	// implements EventSink is attached to the event stream so it can track
	// cached content.
	Deriver Deriver
	// Admitter, if non-nil, replaces the policy's default admission
	// behavior: it is consulted whenever admitting a missed set would
	// require evictions (sets that fit in free space are always admitted,
	// per Figure 1). Nil selects the policy default — the LNC-A profit
	// test for LNCRA, admit-always for every other policy. The adaptive
	// admission tuner plugs in here.
	Admitter Admitter
	// Sink, if non-nil, receives one typed Event per lifecycle outcome
	// (hit, admitted/rejected miss, eviction, invalidation, external
	// miss). Sinks run under the cache's execution context and must not
	// call back into the cache. The telemetry registry plugs in here.
	Sink EventSink
	// OnAdmit, if non-nil, is called after a retrieved set is cached. The
	// buffer-manager hint pipeline hangs off this callback. It is served
	// by an adapter sink over the same event stream Sink observes.
	OnAdmit func(*Entry)
	// OnEvict, if non-nil, is called after a retrieved set is evicted or
	// invalidated.
	OnEvict func(*Entry)
	// OnReject, if non-nil, is called when the admission test denies a
	// set: the rejected entry, its candidate list and both sides of the
	// profit comparison. Observability only; the decision is already made.
	OnReject func(e *Entry, victims []*Entry, profit, bar float64)
	// Tracer, if non-nil, receives one flight-recorder Span per reference,
	// carrying per-stage monotonic timings and the admission decision's
	// inputs. Like Sink, it runs under the cache's execution context and
	// must not call back into the cache. Nil disables span capture with no
	// hot-path cost beyond a nil check.
	Tracer SpanSink
}

// Unlimited is a Capacity value denoting an effectively infinite cache.
const Unlimited = math.MaxInt64

// defaultPruneEvery is the retained-info pruning period in misses.
const defaultPruneEvery = 64

// Stats are the cache's cumulative counters. The ratios defined on it are
// the paper's three performance metrics (§4.1).
type Stats struct {
	References      int64   `json:"references"`       // total Reference calls
	Hits            int64   `json:"hits"`             // references satisfied exactly from cache
	DerivedHits     int64   `json:"derived_hits"`     // references answered by semantic derivation
	CostTotal       float64 `json:"cost_total"`       // Σ cᵢ over all references
	CostSaved       float64 `json:"cost_saved"`       // Σ cᵢ over hits + residual savings of derived hits
	DeriveCost      float64 `json:"derive_cost"`      // Σ derivation cost spent on derived hits
	BytesServed     int64   `json:"bytes_served"`     // Σ sᵢ over hits
	Admissions      int64   `json:"admissions"`       // retrieved sets cached
	Rejections      int64   `json:"rejections"`       // admissions denied by LNC-A
	Evictions       int64   `json:"evictions"`        // retrieved sets evicted for space
	Invalidations   int64   `json:"invalidations"`    // entries dropped by coherence events
	ExternalMisses  int64   `json:"external_misses"`  // references charged via Account(req, false)
	RetainedDropped int64   `json:"retained_dropped"` // retained records pruned
	FragSamples     int64   `json:"frag_samples"`     // fragmentation samples taken
	FragSum         float64 `json:"frag_sum"`         // Σ unused-fraction samples
}

// HitRatio returns hits (exact plus derived) divided by references (paper
// metric HR; derived hits are served from cache content, so they count).
func (s Stats) HitRatio() float64 {
	if s.References == 0 {
		return 0
	}
	return float64(s.Hits+s.DerivedHits) / float64(s.References)
}

// CostSavingsRatio returns the cost savings ratio (paper metric CSR):
// Σ cᵢhᵢ / Σ cᵢrᵢ.
func (s Stats) CostSavingsRatio() float64 {
	if s.CostTotal == 0 {
		return 0
	}
	return s.CostSaved / s.CostTotal
}

// Add accumulates another Stats into s, field by field. Aggregators (the
// sharded front, multi-cache reports) use it so that counters added to
// this struct later cannot be silently dropped from their sums.
func (s *Stats) Add(o Stats) {
	s.References += o.References
	s.Hits += o.Hits
	s.DerivedHits += o.DerivedHits
	s.CostTotal += o.CostTotal
	s.CostSaved += o.CostSaved
	s.DeriveCost += o.DeriveCost
	s.BytesServed += o.BytesServed
	s.Admissions += o.Admissions
	s.Rejections += o.Rejections
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.ExternalMisses += o.ExternalMisses
	s.RetainedDropped += o.RetainedDropped
	s.FragSamples += o.FragSamples
	s.FragSum += o.FragSum
}

// Sub subtracts another Stats from s, field by field — the inverse of
// Add. The restart experiments use it to isolate the counters accrued
// over one segment of a replay (end minus checkpoint).
func (s *Stats) Sub(o Stats) {
	s.References -= o.References
	s.Hits -= o.Hits
	s.DerivedHits -= o.DerivedHits
	s.CostTotal -= o.CostTotal
	s.CostSaved -= o.CostSaved
	s.DeriveCost -= o.DeriveCost
	s.BytesServed -= o.BytesServed
	s.Admissions -= o.Admissions
	s.Rejections -= o.Rejections
	s.Evictions -= o.Evictions
	s.Invalidations -= o.Invalidations
	s.ExternalMisses -= o.ExternalMisses
	s.RetainedDropped -= o.RetainedDropped
	s.FragSamples -= o.FragSamples
	s.FragSum -= o.FragSum
}

// AvgFragmentation returns the average fraction of unused cache space
// (paper's tertiary metric, §4.1).
func (s Stats) AvgFragmentation() float64 {
	if s.FragSamples == 0 {
		return 0
	}
	return s.FragSum / float64(s.FragSamples)
}

// AvgUtilization returns 1 − AvgFragmentation.
func (s Stats) AvgUtilization() float64 { return 1 - s.AvgFragmentation() }

// Request describes one query submission presented to the cache.
type Request struct {
	// QueryID is the raw query string or ID; it is compressed with
	// CompressID before lookup.
	QueryID string
	// Time is the submission time in logical seconds. Times must be
	// non-decreasing across calls.
	Time float64
	// Class is the workload class of the submission (the multiclass
	// extension of §6). Single-class workloads use class 0. It keys the
	// telemetry registry's per-class accounting.
	Class int
	// Size is the retrieved set size in bytes (> 0).
	Size int64
	// Cost is the execution cost in logical block reads (≥ 0).
	Cost float64
	// Relations lists base relations for coherence invalidation.
	Relations []string
	// Payload optionally carries the materialized retrieved set.
	Payload any
	// Plan optionally carries the query's plan descriptor (opaque to the
	// cache; the derivation subsystem reads it). It is stored on the
	// admitted entry so cached content stays matchable.
	Plan any
	// ExecNanos optionally attributes wall nanoseconds spent executing or
	// deriving the query outside the cache (the concurrent front times its
	// loader and derivation calls outside the shard lock) to the
	// reference's flight-recorder span. Zero when untimed or untraced; it
	// has no effect on caching decisions.
	ExecNanos int64
}

// Cache is the WATCHMAN cache manager.
type Cache struct {
	cfg      Config
	index    map[uint64][]*Entry
	ev       evictor
	admitter Admitter // nil = no admission control (admit always)
	deriver  Deriver  // nil = exact-match lookups only
	sinks    []EventSink
	retained map[*Entry]struct{}
	rc       *rateContext

	// tracer receives completed reference spans; nil disables tracing.
	// span is the per-reference scratch record — execution through the
	// cache is serialized (single-threaded or under the shard mutex), so
	// one scratch span keeps the traced hot path allocation-free. theta
	// reads the admitter's current threshold for decision records; nil
	// when the admitter reports none.
	tracer   SpanSink
	span     Span
	spanMark int64
	theta    func() float64

	usedPayload int64
	resident    int
	now         float64
	firstTime   float64
	haveFirst   bool

	missesSincePrune int
	stats            Stats
}

// New creates a cache. It returns an error for nonsensical configurations.
func New(cfg Config) (*Cache, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("core: non-positive capacity %d", cfg.Capacity)
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.MetadataOverhead < 0 {
		return nil, fmt.Errorf("core: negative metadata overhead %d", cfg.MetadataOverhead)
	}
	if cfg.RetainedPruneEvery <= 0 {
		cfg.RetainedPruneEvery = defaultPruneEvery
	}
	if cfg.RetainedTimeout <= 0 {
		cfg.RetainedTimeout = 300 // the Five Minute Rule, per §2.4
	}
	admitter := cfg.Admitter
	if admitter == nil && cfg.Policy.HasAdmission() {
		admitter = LNCA()
	}
	var sinks []EventSink
	if cfg.Sink != nil {
		sinks = append(sinks, cfg.Sink)
	}
	if cfg.OnAdmit != nil || cfg.OnEvict != nil || cfg.OnReject != nil {
		// The legacy callbacks ride the same event stream as Sink, via one
		// adapter; the cache itself only ever emits events.
		sinks = append(sinks, callbackSink{cfg.OnAdmit, cfg.OnEvict, cfg.OnReject})
	}
	if ds, ok := cfg.Deriver.(EventSink); ok {
		// The deriver tracks cached content off the same event stream
		// every other accountant observes.
		sinks = append(sinks, ds)
	}
	var theta func() float64
	if tr, ok := admitter.(ThresholdReporter); ok {
		theta = tr.Threshold
	}
	return &Cache{
		cfg:      cfg,
		index:    make(map[uint64][]*Entry),
		ev:       newEvictor(cfg.Evictor, ranker{policy: cfg.Policy, strictTiers: cfg.StrictTiers}),
		admitter: admitter,
		deriver:  cfg.Deriver,
		sinks:    sinks,
		retained: make(map[*Entry]struct{}),
		rc:       &rateContext{},
		tracer:   cfg.Tracer,
		theta:    theta,
	}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the cumulative counters.
func (c *Cache) Stats() Stats { return c.stats }

// Clock returns the cache's logical time (the latest Request.Time seen).
func (c *Cache) Clock() float64 { return c.now }

// Resident returns the number of cached retrieved sets.
func (c *Cache) Resident() int { return c.resident }

// Retained returns the number of retained-information-only records.
func (c *Cache) Retained() int { return len(c.retained) }

// UsedBytes returns payload plus metadata bytes charged against capacity.
func (c *Cache) UsedBytes() int64 { return c.usedPayload + c.metaBytes() }

// FreeBytes returns the uncommitted capacity.
func (c *Cache) FreeBytes() int64 { return c.cfg.Capacity - c.UsedBytes() }

func (c *Cache) metaBytes() int64 {
	return c.cfg.MetadataOverhead * int64(c.resident+len(c.retained))
}

func (c *Cache) retainsInfo() bool {
	return c.cfg.Policy.RetainsRefInfo() && !c.cfg.DisableRetainedInfo
}

// lookup finds the entry for a compressed ID via the signature index.
//
//watchman:hotpath
func (c *Cache) lookup(id string, sig uint64) *Entry {
	for _, e := range c.index[sig] {
		if e.ID == id {
			return e
		}
	}
	return nil
}

func (c *Cache) indexInsert(e *Entry) {
	c.index[e.Sig] = append(c.index[e.Sig], e)
}

func (c *Cache) indexRemove(e *Entry) {
	bucket := c.index[e.Sig]
	for i, x := range bucket {
		if x == e {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(c.index, e.Sig)
	} else {
		c.index[e.Sig] = bucket
	}
}

// Peek reports whether the query's retrieved set is resident, without
// touching reference statistics.
func (c *Cache) Peek(queryID string) (payload any, ok bool) {
	e, ok := c.Lookup(queryID)
	if !ok {
		return nil, false
	}
	return e.Payload, true
}

// Lookup returns the resident entry for the query, if any, without
// recording a reference. Concurrent wrappers use it to learn the stored
// Size and Cost of a set before charging a hit against it.
func (c *Cache) Lookup(queryID string) (*Entry, bool) {
	id := CompressID(queryID)
	return c.LookupCanonical(id, Signature(id))
}

// LookupCanonical is Lookup for callers that already hold the compressed
// query ID and its signature.
func (c *Cache) LookupCanonical(id string, sig uint64) (*Entry, bool) {
	e := c.lookup(id, sig)
	if e == nil || !e.resident {
		return nil, false
	}
	return e, true
}

// Reference processes one query submission: on a hit it returns the cached
// payload; on a miss it runs the policy's admission/replacement logic and
// returns hit = false. The caller is expected to have executed (or to now
// execute) the query on a miss; Request.Cost is charged either way for the
// cost-savings accounting.
//
//watchman:accounted
func (c *Cache) Reference(req Request) (hit bool, payload any) {
	id := CompressID(req.QueryID)
	return c.reference(req, id, Signature(id), true)
}

// ReferenceCanonical is Reference for callers that already hold the
// compressed query ID and its signature — the sharded front computes both
// to route the request, and recomputing them on the serialized hot path
// would double the per-request work under the shard lock. req.QueryID must
// be a CompressID result and sig its Signature.
//
//watchman:accounted
func (c *Cache) ReferenceCanonical(req Request, sig uint64) (hit bool, payload any) {
	return c.reference(req, req.QueryID, sig, true)
}

// ReferenceExecuted is ReferenceCanonical minus the derivation stage: the
// caller has already executed the query remotely (the concurrent Load
// path commits loader results through it), so answering the reference by
// derivation would claim savings that were never realized.
//
//watchman:accounted
func (c *Cache) ReferenceExecuted(req Request, sig uint64) (hit bool, payload any) {
	return c.reference(req, req.QueryID, sig, false)
}

// ReferenceEntry charges a hit against a resident entry previously
// returned by Lookup/LookupCanonical, using the entry's stored size and
// cost but the referencing request's class (matching Reference, which
// attributes hits to the submitting class, not the admitting one). It is
// the single-lookup hit path for concurrent front-ends: the caller has
// already located the entry, so no second index probe runs.
//
//watchman:accounted
func (c *Cache) ReferenceEntry(e *Entry, t float64, class int) (payload any) {
	now := c.tick(t, e.Cost)
	c.spanBegin(e.ID, class, e.Size, e.Cost, now)
	c.spanStage(StageLookup) // the caller's probe located the entry
	c.chargeHit(e, e.Cost, class, now)
	c.spanEntry(e, now)
	c.spanFinish(EventHit)
	return e.Payload
}

// ApplyHit charges a hit whose payload was already served elsewhere — the
// buffered shard front answers hits from a lock-free read index and
// defers the bookkeeping here, applied in batches under the shard lock.
// Unlike ReferenceEntry it charges the referencing request's cost rather
// than the entry's stored cost, so a deferred application is bit-identical
// to the serial Reference hit path. t is the reference's original logical
// time; tick's clamp tolerates the out-of-order timestamps a queue
// introduces (time never runs backwards, late applications charge at the
// current clock). queueNanos, when positive, is attributed to StageApply:
// the time the promotion spent queued between the lock-free hit and its
// application.
//
//watchman:hotpath
func (c *Cache) ApplyHit(e *Entry, t float64, class int, cost float64, queueNanos int64) {
	now := c.tick(t, cost)
	c.spanBegin(e.ID, class, e.Size, cost, now)
	c.spanCharge(StageApply, queueNanos)
	c.spanStage(StageLookup) // the front's lock-free probe located the entry
	c.chargeHit(e, cost, class, now)
	c.spanEntry(e, now)
	c.spanFinish(EventHit)
}

// Account charges one reference into Stats without running the lookup or
// admission stages of the lifecycle. hit reports how the reference was
// served: true charges a cache hit resolved elsewhere (cost saved, bytes
// served); false charges an external miss — a reference that consulted
// the cache but whose outcome never reached the miss lifecycle, such as a
// stale singleflight result or a failed loader execution — counted in
// Stats.ExternalMisses so the CSR and hit-ratio denominators stay honest
// under invalidation churn. Request.Time obeys the usual clock contract;
// Size and Cost may be zero when unknown (a failed execution).
func (c *Cache) Account(req Request, hit bool) {
	now := c.tick(req.Time, req.Cost)
	c.spanBegin(req.QueryID, req.Class, req.Size, req.Cost, now)
	c.spanCharge(StageLoad, req.ExecNanos)
	kind := EventExternalMiss
	if hit {
		c.stats.Hits++
		c.stats.CostSaved += req.Cost
		c.stats.BytesServed += req.Size
		kind = EventHit
	} else {
		c.stats.ExternalMisses++
	}
	if c.hasSinks() {
		c.emit(Event{Kind: kind, Time: now, Class: req.Class, ID: req.QueryID,
			Size: req.Size, Cost: req.Cost, Relations: req.Relations})
	}
	c.spanFinish(kind)
	c.sampleFragmentation()
}

// tick advances the logical clock and the per-reference counters shared by
// the hit and miss paths, returning the effective (clamped) time.
func (c *Cache) tick(t, cost float64) float64 {
	if t > c.now {
		c.now = t
	}
	now := c.now
	c.stats.References++
	c.stats.CostTotal += cost
	// Track the mean inter-arrival gap of references; it floors the λ
	// denominators (see refWindow.rate).
	if !c.haveFirst {
		c.firstTime, c.haveFirst = now, true
	} else if n := c.stats.References - 1; n > 0 && now > c.firstTime {
		c.rc.minDt = (now - c.firstTime) / float64(n)
	}
	return now
}

// chargeHit is the account stage of the hit path: it records the
// reference, touches the evictor, accrues the cost-savings counters and
// emits the Hit event.
//
//watchman:accounting
//watchman:hotpath
func (c *Cache) chargeHit(e *Entry, cost float64, class int, now float64) {
	e.window.record(now)
	c.ev.touch(e, now)
	c.stats.Hits++
	c.stats.CostSaved += cost
	c.stats.BytesServed += e.Size
	if c.hasSinks() {
		c.emit(Event{Kind: EventHit, Time: now, Class: class, ID: e.ID,
			Size: e.Size, Cost: cost, Relations: e.Relations, Entry: e})
	}
	c.sampleFragmentation()
}

// reference drives the lifecycle of one submission: the lookup stage finds
// the entry, the account stage charges the reference (hit or miss), and on
// a miss the derivation stage may answer it from a cached ancestor before
// the admit and insert/evict stages run via miss.
//
//watchman:accounted
func (c *Cache) reference(req Request, id string, sig uint64, allowDerive bool) (hit bool, payload any) {
	now := c.tick(req.Time, req.Cost)
	c.spanBegin(id, req.Class, req.Size, req.Cost, now)
	c.spanCharge(StageLoad, req.ExecNanos)

	// Lookup stage.
	e := c.lookup(id, sig)
	c.spanStage(StageLookup)

	if e != nil && e.resident {
		// Account stage, hit outcome.
		c.chargeHit(e, req.Cost, req.Class, now)
		c.spanEntry(e, now)
		c.spanFinish(EventHit)
		return true, e.Payload
	}

	// Derivation stage: before running the miss lifecycle, a configured
	// deriver may answer the query from a cached ancestor. Only requests
	// with a known remote cost and no materialized result in hand qualify
	// — the comparison needs a basis, and a request that already carries
	// its payload has nothing left to save.
	if allowDerive && c.deriver != nil && req.Plan != nil && req.Payload == nil && req.Cost > 0 {
		d, ok := c.deriver.Derive(req)
		c.spanStage(StageDerive)
		if ok && d.Cost < req.Cost {
			payload = c.deriveHit(e, id, sig, req, d, now)
			c.spanFinish(EventHitDerived)
			return true, payload
		}
	}

	// Miss path (Figure 1 of the paper).
	c.missesSincePrune++
	c.miss(e, id, sig, req, now, false)
	c.spanSubmit()
	if c.missesSincePrune >= c.cfg.RetainedPruneEvery {
		c.pruneRetained(now)
		c.missesSincePrune = 0
	}
	c.enforceRetainedBudget(now)
	c.sampleFragmentation()
	return false, nil
}

// enforceRetainedBudget drops lowest-profit retained records whenever their
// metadata charge pushes the cache over capacity. Admission accounting
// guarantees resident entries never overflow; only retained-record growth
// between pruning passes can, and §2.4's self-scaling argument says exactly
// that retained information must yield to cache pressure.
func (c *Cache) enforceRetainedBudget(now float64) {
	if c.cfg.MetadataOverhead == 0 || c.cfg.Capacity == Unlimited {
		return
	}
	for c.UsedBytes() > c.cfg.Capacity && len(c.retained) > 0 {
		var worst *Entry
		worstP := math.Inf(1)
		for e := range c.retained {
			if p := e.Profit(now); p < worstP || (p == worstP && (worst == nil || e.ID < worst.ID)) {
				worstP, worst = p, e
			}
		}
		delete(c.retained, worst)
		c.indexRemove(worst)
		c.stats.RetainedDropped++
	}
}

// miss drives the miss half of the lifecycle, decomposed into the named
// stages of the LNC-RA pseudo-code: the account stage records reference
// information, the admit stage selects victims and rules on admission, and
// the insert/evict stage commits the decision. derived marks the admission
// of a derived set (reached via deriveHit, not a reference outcome of its
// own); its events carry Event.Derived so accountants skip them.
//
//watchman:accounting
func (c *Cache) miss(e *Entry, id string, sig uint64, req Request, now float64, derived bool) {
	needBytes := req.Size + c.cfg.MetadataOverhead
	if needBytes > c.cfg.Capacity {
		// The set can never fit; at most remember its reference.
		c.noteRejected(e, id, sig, req, now, derived)
		return
	}

	e, hadHistory := c.accountMiss(e, id, sig, req, now)
	victims, dec, admitted := c.admit(e, hadHistory, req, now, derived)
	c.spanEntry(e, now)
	c.spanStage(StageAdmit)
	if !admitted {
		return
	}
	c.commit(e, victims, req, now, derived, dec)
}

// accountMiss is the account stage of the miss path: it updates (or
// allocates) the entry's reference information first, as in Figure 1, so
// the profit comparisons of the admit stage see the current reference. It
// returns the entry and whether it had reference history before this call.
func (c *Cache) accountMiss(e *Entry, id string, sig uint64, req Request, now float64) (*Entry, bool) {
	hadHistory := e != nil && e.window.count() > 0
	if e == nil {
		e = &Entry{ID: id, Sig: sig, Size: req.Size, Cost: req.Cost, Class: req.Class, Relations: req.Relations, rc: c.rc}
		e.window = newRefWindow(c.cfg.K)
	}
	e.window.record(now)
	return e, hadHistory
}

// admitOutcome summarizes what the admit stage decided and on what
// grounds, for the decision payloads of events and spans. decided is true
// only when an Admitter ruled on a profit comparison; free-space
// admissions and can-never-fit rejections leave it false.
type admitOutcome struct {
	profit, bar, theta float64
	hasHistory         bool
	decided            bool
}

// admitTheta reads the admitter's current threshold θ, or 0 when the
// admitter does not report one.
func (c *Cache) admitTheta() float64 {
	if c.theta == nil {
		return 0
	}
	return c.theta()
}

// admit is the admit stage: when free space suffices the set is admitted
// outright (Figure 1); otherwise replacement selection produces the victim
// list and the configured Admitter rules on the §2.2 profit comparison.
// Denials are recorded (with the failed comparison on the event) and
// return admitted = false.
func (c *Cache) admit(e *Entry, hadHistory bool, req Request, now float64, derived bool) (victims []*Entry, dec admitOutcome, admitted bool) {
	free := c.cfg.Capacity - c.usedPayload - c.metaBytes()
	extraMeta := c.cfg.MetadataOverhead
	if _, isRetained := c.retained[e]; isRetained {
		extraMeta = 0 // its record is already charged
	}
	if free >= req.Size+extraMeta {
		return nil, dec, true
	}

	victims = c.ev.candidates(req.Size+extraMeta-free, now)
	if victims == nil {
		// Cannot free enough space (pathological capacity); reject.
		c.noteRejectedEntry(e, req, now, nil, dec, derived)
		return nil, dec, false
	}
	if c.admitter != nil {
		var incoming, bar float64
		if hadHistory {
			incoming, bar = e.Profit(now), profitOf(victims, now)
		} else {
			incoming, bar = e.EProfit(), eprofitOf(victims)
		}
		dec = admitOutcome{profit: incoming, bar: bar, theta: c.admitTheta(),
			hasHistory: hadHistory, decided: true}
		if !c.admitter.Admit(AdmissionDecision{
			Entry:      e,
			Victims:    victims,
			Now:        now,
			HasHistory: hadHistory,
			Profit:     incoming,
			Bar:        bar,
		}) {
			c.noteRejectedEntry(e, req, now, victims, dec, derived)
			return nil, dec, false
		}
	}
	return victims, dec, true
}

// commit is the insert/evict stage: evict the victims, make the entry
// resident and emit the MissAdmitted event, carrying the admit stage's
// comparison (dec) so decision accountants see what the gate evaluated.
func (c *Cache) commit(e *Entry, victims []*Entry, req Request, now float64, derived bool, dec admitOutcome) {
	for i, v := range victims {
		c.evict(v, now, i)
	}
	c.spanStage(StageEvict)
	c.insert(e, req)
	c.spanStage(StageInsert)
	c.stats.Admissions++
	if c.hasSinks() {
		c.emit(Event{Kind: EventMissAdmitted, Time: now, Class: e.Class, ID: e.ID,
			Size: e.Size, Cost: e.Cost, Relations: e.Relations, Entry: e, Derived: derived,
			Victims: victims, Profit: dec.profit, Bar: dec.bar, Theta: dec.theta,
			HasHistory: dec.hasHistory, Decided: dec.decided})
	}
	c.spanDecision(EventMissAdmitted, dec, len(victims))
}

// noteRejected handles rejections where the entry may not exist yet.
func (c *Cache) noteRejected(e *Entry, id string, sig uint64, req Request, now float64, derived bool) {
	if e == nil {
		if !c.retainsInfo() {
			c.stats.Rejections++
			if c.hasSinks() {
				c.emit(Event{Kind: EventMissRejected, Time: now, Class: req.Class, ID: id,
					Size: req.Size, Cost: req.Cost, Relations: req.Relations, Derived: derived})
			}
			c.spanDecision(EventMissRejected, admitOutcome{}, 0)
			return
		}
		e = &Entry{ID: id, Sig: sig, Size: req.Size, Cost: req.Cost, Class: req.Class, Relations: req.Relations, rc: c.rc}
		e.window = newRefWindow(c.cfg.K)
		c.indexInsert(e)
		c.retained[e] = struct{}{}
	}
	e.window.record(now)
	c.noteRejectedEntry(e, req, now, nil, admitOutcome{}, derived)
}

// noteRejectedEntry records a rejection for an entry whose reference window
// is already up to date, emitting the MissRejected event (victims, profit,
// bar and theta carry the failed admission comparison when an Admitter
// denied the set — Decided is true; victims is nil and Decided false
// otherwise). The entry's reference information is retained (§2.4: "a
// retrieved set that is initially rejected from cache may be admitted
// after sufficient reference information is collected"), unless the policy
// does not keep retained info, in which case an entry not in any structure
// is dropped.
func (c *Cache) noteRejectedEntry(e *Entry, req Request, now float64, victims []*Entry, dec admitOutcome, derived bool) {
	c.stats.Rejections++
	if c.hasSinks() {
		c.emit(Event{Kind: EventMissRejected, Time: now, Class: req.Class, ID: e.ID,
			Size: req.Size, Cost: req.Cost, Relations: req.Relations, Entry: e,
			Victims: victims, Profit: dec.profit, Bar: dec.bar, Theta: dec.theta,
			HasHistory: dec.hasHistory, Decided: dec.decided, Derived: derived})
	}
	c.spanDecision(EventMissRejected, dec, len(victims))
	if _, ok := c.retained[e]; ok {
		return
	}
	if !c.retainsInfo() {
		return
	}
	c.retained[e] = struct{}{}
	if c.lookup(e.ID, e.Sig) != e {
		c.indexInsert(e)
	}
}

// insert makes the entry resident.
func (c *Cache) insert(e *Entry, req Request) {
	if _, ok := c.retained[e]; ok {
		delete(c.retained, e)
	}
	if c.lookup(e.ID, e.Sig) != e {
		c.indexInsert(e)
	}
	e.Size = req.Size
	e.Cost = req.Cost
	e.Class = req.Class
	e.Relations = req.Relations
	e.Payload = req.Payload
	e.Plan = req.Plan
	e.resident = true
	c.usedPayload += e.Size
	c.resident++
	c.ev.add(e, c.now)
}

// evict removes a resident entry, retaining its reference information when
// the policy keeps it, and emits the Evict event. rank is the entry's
// position in the victim batch (0 = least profitable, evicted first); the
// event carries it together with the victim's profit at eviction time so
// decision accountants can audit the replacement ordering.
func (c *Cache) evict(e *Entry, now float64, rank int) {
	e.resident = false
	e.Payload = nil
	c.usedPayload -= e.Size
	c.resident--
	c.ev.remove(e)
	c.stats.Evictions++
	if c.retainsInfo() {
		c.retained[e] = struct{}{}
	} else {
		c.indexRemove(e)
	}
	if c.hasSinks() {
		c.emit(Event{Kind: EventEvict, Time: now, Class: e.Class, ID: e.ID,
			Size: e.Size, Cost: e.Cost, Relations: e.Relations, Entry: e,
			Profit: e.Profit(now), Rank: rank})
	}
}

// pruneRetained drops stale retained-information records. LNC-R/LNC-RA use
// the paper's §2.4 rule — drop a record when its profit falls below the
// least profit among all cached retrieved sets — which self-scales the
// retained footprint with cache pressure. LRU-K uses the timeout retention
// of the original LRU-K design (Five Minute Rule by default), which §2.4
// critiques; keeping both makes the contrast testable.
func (c *Cache) pruneRetained(now float64) {
	if len(c.retained) == 0 {
		return
	}
	if c.cfg.Policy == LRUK {
		for e := range c.retained {
			if now-e.LastRef() > c.cfg.RetainedTimeout {
				delete(c.retained, e)
				c.indexRemove(e)
				c.stats.RetainedDropped++
			}
		}
		return
	}
	if c.resident == 0 {
		return
	}
	minProfit := math.Inf(1)
	c.eachResident(func(e *Entry) {
		if p := e.Profit(now); p < minProfit {
			minProfit = p
		}
	})
	for e := range c.retained {
		if e.Profit(now) < minProfit {
			delete(c.retained, e)
			c.indexRemove(e)
			c.stats.RetainedDropped++
		}
	}
}

// eachResident visits every resident entry.
func (c *Cache) eachResident(f func(*Entry)) {
	for _, bucket := range c.index {
		for _, e := range bucket {
			if e.resident {
				f(e)
			}
		}
	}
}

// Invalidate drops every entry (resident or retained) whose query reads any
// of the given base relations, implementing the §3 coherence hook. It
// returns the number of resident sets dropped.
func (c *Cache) Invalidate(relations ...string) int {
	rels := make(map[string]bool, len(relations))
	for _, r := range relations {
		rels[r] = true
	}
	var victims []*Entry
	for _, bucket := range c.index {
		for _, e := range bucket {
			if e.touchesAny(rels) {
				victims = append(victims, e)
			}
		}
	}
	dropped := 0
	for _, e := range victims {
		wasResident := e.resident
		if wasResident {
			e.resident = false
			e.Payload = nil
			c.usedPayload -= e.Size
			c.resident--
			c.ev.remove(e)
			dropped++
		}
		delete(c.retained, e)
		c.indexRemove(e)
		c.stats.Invalidations++
		if c.hasSinks() {
			c.emit(Event{Kind: EventInvalidate, Time: c.now, Class: e.Class, ID: e.ID,
				Size: e.Size, Cost: e.Cost, Relations: e.Relations, Entry: e, Resident: wasResident})
		}
	}
	return dropped
}

// Entries returns a snapshot of all resident entries, sorted by ID. It is
// meant for tests and diagnostics, not hot paths.
func (c *Cache) Entries() []*Entry {
	out := make([]*Entry, 0, c.resident)
	c.eachResident(func(e *Entry) { out = append(out, e) })
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// sampleFragmentation records one external-fragmentation sample: the
// fraction of unused cache space right now.
func (c *Cache) sampleFragmentation() {
	if c.cfg.Capacity == Unlimited {
		return // meaningless for the infinite cache
	}
	free := float64(c.FreeBytes())
	if free < 0 {
		free = 0
	}
	c.stats.FragSamples++
	c.stats.FragSum += free / float64(c.cfg.Capacity)
}

// CheckInvariants verifies internal consistency and returns the first
// violation found. Property-based tests drive it after random workloads.
func (c *Cache) CheckInvariants() error {
	var payload int64
	resident := 0
	total := 0
	for sig, bucket := range c.index {
		for _, e := range bucket {
			total++
			if e.Sig != sig {
				return fmt.Errorf("entry %q indexed under wrong signature", e.ID)
			}
			if Signature(e.ID) != e.Sig {
				return fmt.Errorf("entry %q has stale signature", e.ID)
			}
			_, isRetained := c.retained[e]
			if e.resident == isRetained {
				return fmt.Errorf("entry %q resident=%v retained=%v", e.ID, e.resident, isRetained)
			}
			if e.resident {
				resident++
				payload += e.Size
			}
		}
	}
	if resident != c.resident {
		return fmt.Errorf("resident count %d, accounted %d", resident, c.resident)
	}
	if payload != c.usedPayload {
		return fmt.Errorf("payload bytes %d, accounted %d", payload, c.usedPayload)
	}
	if total != c.resident+len(c.retained) {
		return fmt.Errorf("index holds %d entries, want %d resident + %d retained",
			total, c.resident, len(c.retained))
	}
	if c.ev.count() != c.resident {
		return fmt.Errorf("evictor tracks %d entries, want %d", c.ev.count(), c.resident)
	}
	if c.cfg.Capacity != Unlimited && c.UsedBytes() > c.cfg.Capacity {
		return fmt.Errorf("used %d exceeds capacity %d", c.UsedBytes(), c.cfg.Capacity)
	}
	return nil
}

// profitOf returns the aggregate profit of a candidate list (§2.2, eq. 5):
// Σ λⱼcⱼ / Σ sⱼ.
func profitOf(entries []*Entry, now float64) float64 {
	var num, den float64
	for _, e := range entries {
		num += e.Rate(now) * e.Cost
		den += float64(e.Size)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// eprofitOf returns the aggregate estimated profit (§2.2, eq. 8):
// Σ cⱼ / Σ sⱼ.
func eprofitOf(entries []*Entry) float64 {
	var num, den float64
	for _, e := range entries {
		num += e.Cost
		den += float64(e.Size)
	}
	if den == 0 {
		return 0
	}
	return num / den
}
