package core
