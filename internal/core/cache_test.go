package core

import (
	"fmt"
	"testing"
)

// req is a test shorthand for building requests.
func req(id string, at float64, size int64, cost float64) Request {
	return Request{QueryID: id, Time: at, Size: size, Cost: cost}
}

func newCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func checkInv(t *testing.T, c *Cache) {
	t.Helper()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Error("zero capacity must be rejected")
	}
	if _, err := New(Config{Capacity: -5}); err == nil {
		t.Error("negative capacity must be rejected")
	}
	if _, err := New(Config{Capacity: 10, MetadataOverhead: -1}); err == nil {
		t.Error("negative overhead must be rejected")
	}
	c, err := New(Config{Capacity: 10, K: 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().K != 1 {
		t.Error("K must default to 1")
	}
	if c.Config().RetainedPruneEvery != defaultPruneEvery {
		t.Error("prune period must default")
	}
}

func TestHitMissBasics(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, K: 2, Policy: LNCRA})
	hit, _ := c.Reference(Request{QueryID: "q1", Time: 1, Size: 100, Cost: 50, Payload: "rows"})
	if hit {
		t.Fatal("first reference cannot hit")
	}
	hit, payload := c.Reference(req("q1", 2, 100, 50))
	if !hit {
		t.Fatal("second reference must hit")
	}
	if payload != "rows" {
		t.Fatalf("payload = %v, want the stored retrieved set", payload)
	}
	s := c.Stats()
	if s.References != 2 || s.Hits != 1 || s.CostTotal != 100 || s.CostSaved != 50 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRatio() != 0.5 || s.CostSavingsRatio() != 0.5 {
		t.Fatalf("HR=%g CSR=%g", s.HitRatio(), s.CostSavingsRatio())
	}
	checkInv(t, c)
}

func TestQueryIDCompressionInLookup(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, Policy: LRU})
	c.Reference(req("select  a,b from t", 1, 10, 5))
	hit, _ := c.Reference(req("select a, b  from t;", 2, 10, 5))
	if !hit {
		t.Fatal("differently spaced query strings must map to the same entry")
	}
}

func TestUnconditionalAdmissionWithFreeSpace(t *testing.T) {
	// Figure 1: "RSi not in cache and avail ≥ si: cache RSi" — no admission
	// test when the set fits in free space, even for LNC-RA.
	c := newCache(t, Config{Capacity: 1000, Policy: LNCRA})
	c.Reference(req("cheapbig", 1, 900, 1)) // terrible profit but fits
	if _, ok := c.Peek("cheapbig"); !ok {
		t.Fatal("set fitting in free space must be cached")
	}
}

func TestAdmissionRejectsLowEProfit(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, Policy: LNCRA})
	c.Reference(req("dear1", 1, 400, 4000))
	c.Reference(req("dear2", 2, 400, 4000))
	// First-ever set, cache full: e-profit(new) = 10/500 = 0.02 must beat
	// e-profit(victims) = 4000/400 = 10. It does not: rejected.
	c.Reference(req("bulky", 3, 500, 10))
	if _, ok := c.Peek("bulky"); ok {
		t.Fatal("low e-profit set must be rejected when eviction is needed")
	}
	if _, ok := c.Peek("dear1"); !ok {
		t.Fatal("existing high-profit sets must survive")
	}
	if c.Stats().Rejections != 1 {
		t.Fatalf("rejections = %d, want 1", c.Stats().Rejections)
	}
	// The rejected set's reference info is retained (§2.4).
	if c.Retained() != 1 {
		t.Fatalf("retained = %d, want 1", c.Retained())
	}
	checkInv(t, c)
}

func TestAdmissionAcceptsHighEProfit(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, Policy: LNCRA})
	c.Reference(req("cheap1", 1, 400, 1))
	c.Reference(req("cheap2", 2, 400, 1))
	// e-profit(new) = 9000/500 = 18 > e-profit(victims) = 2/800: admitted.
	c.Reference(req("valuable", 3, 500, 9000))
	if _, ok := c.Peek("valuable"); !ok {
		t.Fatal("high e-profit set must be admitted")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("admission under pressure must evict")
	}
	checkInv(t, c)
}

func TestAdmissionUsesRetainedHistory(t *testing.T) {
	// A set rejected at first sight must eventually be admitted once its
	// retained reference information shows a high rate (§2.4: "a retrieved
	// set that is initially rejected from cache may be admitted after a
	// sufficient reference information is collected").
	c := newCache(t, Config{Capacity: 1000, K: 3, Policy: LNCRA})
	c.Reference(req("occupant1", 1, 400, 500))
	c.Reference(req("occupant2", 2, 400, 500))
	// comeback's e-profit (400/500 = 0.8) loses against the victims'
	// aggregate (500/400 = 1.25), so the first submission is rejected;
	// the retained reference information must get it admitted later.
	admittedAt := -1
	for i := 0; i < 8; i++ {
		at := 10 + float64(i)
		c.Reference(req("comeback", at, 500, 400))
		if _, ok := c.Peek("comeback"); ok {
			admittedAt = i
			break
		}
	}
	if admittedAt <= 0 {
		t.Fatalf("comeback admitted at attempt %d; want a later-than-first admission", admittedAt)
	}
	checkInv(t, c)
}

func TestTooLargeToEverFit(t *testing.T) {
	c := newCache(t, Config{Capacity: 100, Policy: LNCRA})
	c.Reference(req("whale", 1, 500, 1e6))
	if _, ok := c.Peek("whale"); ok {
		t.Fatal("sets larger than the cache cannot be admitted")
	}
	if c.Stats().Rejections != 1 {
		t.Fatalf("rejections = %d", c.Stats().Rejections)
	}
	// Its reference info is still retained for later (it may shrink, or
	// the admission decision may be revisited — the paper retains it).
	if c.Retained() != 1 {
		t.Fatalf("retained = %d, want 1", c.Retained())
	}
	checkInv(t, c)
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newCache(t, Config{Capacity: 300, Policy: LRU})
	c.Reference(req("a", 1, 100, 10))
	c.Reference(req("b", 2, 100, 10))
	c.Reference(req("c", 3, 100, 10))
	c.Reference(req("a", 4, 100, 10)) // refresh a; b is now LRU
	c.Reference(req("d", 5, 100, 10)) // evicts b
	if _, ok := c.Peek("b"); ok {
		t.Fatal("LRU must evict the least recently used entry")
	}
	for _, id := range []string{"a", "c", "d"} {
		if _, ok := c.Peek(id); !ok {
			t.Fatalf("%s unexpectedly evicted", id)
		}
	}
	checkInv(t, c)
}

func TestLCSEvictsLargestFirst(t *testing.T) {
	c := newCache(t, Config{Capacity: 350, Policy: LCS})
	c.Reference(req("large", 1, 200, 10))
	c.Reference(req("small", 2, 100, 10))
	c.Reference(req("mid", 3, 150, 10)) // needs 100: LCS evicts "large"
	if _, ok := c.Peek("large"); ok {
		t.Fatal("LCS must evict the largest set first")
	}
	if _, ok := c.Peek("small"); !ok {
		t.Fatal("small set must survive under LCS")
	}
	checkInv(t, c)
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := newCache(t, Config{Capacity: 300, Policy: LFU})
	c.Reference(req("hot", 1, 100, 10))
	c.Reference(req("hot", 2, 100, 10))
	c.Reference(req("hot", 3, 100, 10))
	c.Reference(req("cold", 4, 100, 10))
	c.Reference(req("warm", 5, 100, 10))
	c.Reference(req("warm", 6, 100, 10))
	c.Reference(req("new", 7, 100, 10)) // evicts cold (1 lifetime ref)
	if _, ok := c.Peek("cold"); ok {
		t.Fatal("LFU must evict the least frequently used entry")
	}
	if _, ok := c.Peek("hot"); !ok {
		t.Fatal("hot entry must survive under LFU")
	}
	checkInv(t, c)
}

func TestLNCREvictsLowestProfit(t *testing.T) {
	c := newCache(t, Config{Capacity: 250, Policy: LNCR})
	c.Reference(req("dear", 1, 100, 10000))
	c.Reference(req("cheap", 2, 100, 1))
	c.Reference(req("dear", 3, 100, 10000))
	c.Reference(req("cheap", 4, 100, 1))
	c.Reference(req("new", 5, 100, 50)) // must evict "cheap": lowest λc/s
	if _, ok := c.Peek("cheap"); ok {
		t.Fatal("LNC-R must evict the lowest-profit set")
	}
	if _, ok := c.Peek("dear"); !ok {
		t.Fatal("high-profit set must survive under LNC-R")
	}
	checkInv(t, c)
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, Policy: LRU})
	for i := 0; i < 300; i++ {
		c.Reference(req(fmt.Sprintf("q%d", i%40), float64(i+1), int64(37+11*(i%13)), float64(i%7+1)))
		if c.UsedBytes() > 1000 {
			t.Fatalf("used %d exceeds capacity after request %d", c.UsedBytes(), i)
		}
	}
	checkInv(t, c)
}

func TestMetadataOverheadAccounting(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, Policy: LNCRA, MetadataOverhead: 100})
	c.Reference(req("a", 1, 300, 10))
	if got, want := c.UsedBytes(), int64(400); got != want {
		t.Fatalf("UsedBytes = %d, want %d (payload + overhead)", got, want)
	}
	c.Reference(req("b", 2, 500, 10))
	if got, want := c.UsedBytes(), int64(1000); got != want {
		t.Fatalf("UsedBytes = %d, want %d", got, want)
	}
	// A third 300-byte set does not fit (would need 400 incl. overhead).
	c.Reference(req("c", 3, 300, 1e9))
	if c.UsedBytes() > 1000 {
		t.Fatalf("capacity exceeded with overhead accounting: %d", c.UsedBytes())
	}
	checkInv(t, c)
}

func TestRetainedInfoSurvivesEviction(t *testing.T) {
	c := newCache(t, Config{Capacity: 200, Policy: LNCR, K: 2})
	c.Reference(req("first", 1, 200, 10))
	c.Reference(req("second", 2, 200, 1000)) // evicts first
	if _, ok := c.Peek("first"); ok {
		t.Fatal("first must be evicted")
	}
	if c.Retained() != 1 {
		t.Fatalf("retained = %d, want 1 (evicted set keeps its reference info)", c.Retained())
	}
	checkInv(t, c)
}

func TestDisableRetainedInfo(t *testing.T) {
	c := newCache(t, Config{Capacity: 200, Policy: LNCR, K: 2, DisableRetainedInfo: true})
	c.Reference(req("first", 1, 200, 10))
	c.Reference(req("second", 2, 200, 1000))
	if c.Retained() != 0 {
		t.Fatalf("retained = %d, want 0 when disabled", c.Retained())
	}
	checkInv(t, c)
}

func TestRetainedPruningByProfit(t *testing.T) {
	// §2.4: retained info is dropped when its profit falls below the least
	// profit among cached sets.
	c := newCache(t, Config{Capacity: 400, Policy: LNCRA, K: 2, RetainedPruneEvery: 1})
	// A worthless one-shot that gets evicted and retained.
	c.Reference(req("oneshot", 1, 400, 1))
	// Hot valuable sets take over the cache.
	for i := 0; i < 60; i++ {
		at := 2 + float64(i)
		c.Reference(req("hotA", at, 200, 5000))
		c.Reference(req("hotB", at+0.5, 200, 5000))
	}
	if c.Retained() != 0 {
		t.Fatalf("retained = %d; the stale one-shot's info must be pruned", c.Retained())
	}
	if c.Stats().RetainedDropped == 0 {
		t.Fatal("prune counter not incremented")
	}
	checkInv(t, c)
}

func TestLRUKRetainedTimeout(t *testing.T) {
	c := newCache(t, Config{Capacity: 200, Policy: LRUK, K: 2, RetainedTimeout: 50, RetainedPruneEvery: 1})
	c.Reference(req("gone", 1, 200, 10))
	c.Reference(req("stay", 2, 200, 10)) // evicts gone; info retained
	if c.Retained() != 1 {
		t.Fatalf("retained = %d, want 1", c.Retained())
	}
	c.Reference(req("stay", 60, 200, 10)) // keep stay's info young
	// Far in the future: "gone" (last reference t=1) times out, while
	// "stay" (last reference t=60, evicted now) is retained.
	c.Reference(req("later", 100, 200, 10))
	if c.Retained() != 1 {
		t.Fatalf("retained = %d after timeout pass, want 1", c.Retained())
	}
	found := false
	for e := range c.retained {
		if e.ID == CompressID("gone") {
			found = true
		}
	}
	if found {
		t.Fatal("timed-out retained record still present")
	}
	checkInv(t, c)
}

func TestInvalidate(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, Policy: LNCRA})
	c.Reference(Request{QueryID: "q1", Time: 1, Size: 100, Cost: 10, Relations: []string{"orders", "lineitem"}})
	c.Reference(Request{QueryID: "q2", Time: 2, Size: 100, Cost: 10, Relations: []string{"customer"}})
	c.Reference(Request{QueryID: "q3", Time: 3, Size: 100, Cost: 10, Relations: []string{"lineitem"}})
	dropped := c.Invalidate("lineitem")
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if _, ok := c.Peek("q2"); !ok {
		t.Fatal("unrelated entry must survive invalidation")
	}
	if _, ok := c.Peek("q1"); ok {
		t.Fatal("q1 must be invalidated")
	}
	if got := c.Stats().Invalidations; got != 2 {
		t.Fatalf("invalidations = %d, want 2", got)
	}
	// Invalidation drops reference info entirely: a re-reference is a
	// fresh first-ever submission.
	hit, _ := c.Reference(Request{QueryID: "q1", Time: 4, Size: 100, Cost: 10, Relations: []string{"orders"}})
	if hit {
		t.Fatal("invalidated entry cannot hit")
	}
	checkInv(t, c)
}

func TestInvalidateUnknownRelation(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, Policy: LRU})
	c.Reference(req("q", 1, 10, 1))
	if got := c.Invalidate("nonexistent"); got != 0 {
		t.Fatalf("dropped = %d, want 0", got)
	}
	checkInv(t, c)
}

func TestCallbacks(t *testing.T) {
	var admits, evicts, rejects int
	c := newCache(t, Config{
		Capacity: 250,
		Policy:   LNCRA,
		OnAdmit:  func(*Entry) { admits++ },
		OnEvict:  func(*Entry) { evicts++ },
		OnReject: func(*Entry, []*Entry, float64, float64) { rejects++ },
	})
	c.Reference(req("a", 1, 100, 100))
	c.Reference(req("b", 2, 100, 100))
	c.Reference(req("junk", 3, 200, 1)) // rejected: e-profit too low
	c.Reference(req("gold", 4, 200, 1e6))
	if admits != 3 {
		t.Fatalf("admits = %d, want 3", admits)
	}
	if evicts < 2 {
		t.Fatalf("evicts = %d, want ≥ 2", evicts)
	}
	if rejects != 1 {
		t.Fatalf("rejects = %d, want 1", rejects)
	}
}

func TestFragmentationSampling(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, Policy: LRU})
	c.Reference(req("half", 1, 500, 10))
	c.Reference(req("half", 2, 500, 10))
	s := c.Stats()
	if s.FragSamples != 2 {
		t.Fatalf("samples = %d, want 2", s.FragSamples)
	}
	// First sample: cache was empty before the insert completed → 0.5
	// unused; second: still 0.5 unused.
	if got := s.AvgFragmentation(); got != 0.5 {
		t.Fatalf("avg fragmentation = %g, want 0.5", got)
	}
	if got := s.AvgUtilization(); got != 0.5 {
		t.Fatalf("avg utilization = %g, want 0.5", got)
	}
}

func TestInfiniteCacheNeverEvicts(t *testing.T) {
	c := newCache(t, Config{Capacity: Unlimited, Policy: LNCRA})
	for i := 0; i < 500; i++ {
		c.Reference(req(fmt.Sprintf("q%d", i), float64(i+1), 1<<20, 100))
	}
	if c.Stats().Evictions != 0 || c.Stats().Rejections != 0 {
		t.Fatal("infinite cache must neither evict nor reject")
	}
	if c.Resident() != 500 {
		t.Fatalf("resident = %d, want 500", c.Resident())
	}
	if c.Stats().FragSamples != 0 {
		t.Fatal("fragmentation is not sampled for the infinite cache")
	}
	checkInv(t, c)
}

func TestPeekDoesNotTouchStats(t *testing.T) {
	c := newCache(t, Config{Capacity: 100, Policy: LRU})
	c.Reference(req("q", 1, 10, 1))
	before := c.Stats()
	if _, ok := c.Peek("q"); !ok {
		t.Fatal("peek must find the entry")
	}
	if _, ok := c.Peek("absent"); ok {
		t.Fatal("peek must miss absent entries")
	}
	if c.Stats() != before {
		t.Fatal("peek must not modify statistics")
	}
}

func TestEntriesSnapshot(t *testing.T) {
	c := newCache(t, Config{Capacity: 1000, Policy: LRU})
	c.Reference(req("bbb", 1, 10, 1))
	c.Reference(req("aaa", 2, 10, 1))
	es := c.Entries()
	if len(es) != 2 || es[0].ID != "aaa" || es[1].ID != "bbb" {
		t.Fatalf("entries snapshot wrong: %v", es)
	}
}

func TestClockMonotonic(t *testing.T) {
	c := newCache(t, Config{Capacity: 100, Policy: LRU})
	c.Reference(req("a", 5, 10, 1))
	c.Reference(req("b", 3, 10, 1)) // out-of-order timestamp
	if c.Clock() != 5 {
		t.Fatalf("clock = %g, want 5 (never goes backward)", c.Clock())
	}
}

func TestSignatureCollisionHandling(t *testing.T) {
	// Force two entries into the same bucket by direct index manipulation:
	// the exact-match loop must distinguish them.
	c := newCache(t, Config{Capacity: 1000, Policy: LRU})
	a := &Entry{ID: "ida", Sig: 42, Size: 10, resident: true, rc: c.rc}
	a.window = newRefWindow(1)
	b := &Entry{ID: "idb", Sig: 42, Size: 10, resident: true, rc: c.rc}
	b.window = newRefWindow(1)
	c.index[42] = []*Entry{a, b}
	if got := c.lookup("idb", 42); got != b {
		t.Fatal("collision bucket lookup failed")
	}
	if got := c.lookup("idc", 42); got != nil {
		t.Fatal("lookup invented an entry")
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 || s.CostSavingsRatio() != 0 || s.AvgFragmentation() != 0 {
		t.Fatal("zero-value stats must yield zero ratios, not NaN")
	}
}
