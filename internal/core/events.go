package core

// This file is the core half of the telemetry spine: the reference
// lifecycle (lookup → account → admit → insert/evict) emits one typed
// Event per outcome on the cache's configured EventSink. Everything the
// paper's accounting is judged by — hits, admissions, rejections,
// evictions, coherence drops, and the externally-resolved misses that
// bypass admission — flows through here, so a single sink observes the
// complete reference stream. The legacy OnAdmit/OnEvict/OnReject
// callbacks are implemented as one adapter sink over the same events.

// EventKind enumerates the cache lifecycle outcomes an EventSink observes.
type EventKind uint8

// The lifecycle outcomes. Every Reference call ends in exactly one of
// Hit, HitDerived, MissAdmitted or MissRejected (where the admission
// events of a derived set carry Derived=true and do not count as a
// reference outcome of their own); every Account call ends in Hit or
// ExternalMiss; Evict and Invalidate record entry departures (space
// pressure and coherence, respectively) and are not references.
const (
	// EventHit is a reference satisfied from cache.
	EventHit EventKind = iota
	// EventMissAdmitted is a miss whose retrieved set was cached.
	EventMissAdmitted
	// EventMissRejected is a miss denied admission (by the admission test,
	// by a set too large to ever fit, or by an unsatisfiable victim search).
	EventMissRejected
	// EventEvict is a resident set evicted by replacement.
	EventEvict
	// EventInvalidate is an entry (resident or retained) dropped by a
	// coherence event.
	EventInvalidate
	// EventExternalMiss is a reference charged via Account(req, false): it
	// consulted the cache but its outcome was resolved outside the miss
	// lifecycle (stale singleflight results, loader failures).
	EventExternalMiss
	// EventHitDerived is a reference answered by semantic derivation: the
	// exact set was not cached, but a cached ancestor subsumed it and
	// re-deriving cost less than remote execution. Cost carries the remote
	// cost, DeriveCost the derivation cost; the saving is their difference.
	EventHitDerived
	// EventRestore announces a resident entry re-admitted from a snapshot
	// by Cache.RestoreState. It is not a reference outcome and carries no
	// cost accounting (the restored Stats already include the entry's
	// history); sinks that track cached content (the derivation index) use
	// it to relearn residency.
	EventRestore

	numEventKinds // sentinel; keep last
)

// String names the kind for logs and metrics.
func (k EventKind) String() string {
	switch k {
	case EventHit:
		return "hit"
	case EventMissAdmitted:
		return "miss_admitted"
	case EventMissRejected:
		return "miss_rejected"
	case EventEvict:
		return "evict"
	case EventInvalidate:
		return "invalidate"
	case EventExternalMiss:
		return "external_miss"
	case EventHitDerived:
		return "hit_derived"
	case EventRestore:
		return "restore"
	default:
		return "unknown"
	}
}

// Event is one typed lifecycle notification. It is passed by value and
// must not be retained beyond the Emit call if Entry or Victims are kept:
// those point into live cache state.
type Event struct {
	// Kind is the lifecycle outcome.
	Kind EventKind
	// Time is the logical time of the event.
	Time float64
	// Class is the workload class of the request (or of the entry, for
	// departures). Single-class workloads use class 0.
	Class int
	// ID is the compressed query ID.
	ID string
	// Size is the retrieved-set size in bytes.
	Size int64
	// Cost is the execution cost charged or saved by the event, in logical
	// block reads.
	Cost float64
	// Relations lists the base relations the query reads.
	Relations []string
	// Entry is the cache record involved, when one exists. It is nil for
	// ExternalMiss events and for rejections of sets that never
	// materialized a record.
	Entry *Entry
	// Resident reports, on Invalidate events, whether the entry still held
	// its payload when the coherence event dropped it (false = only
	// retained reference information was dropped).
	Resident bool
	// Victims is the replacement-candidate list an admission comparison
	// ruled on: the victims evicted by a MissAdmitted decision, or the
	// candidates spared by a MissRejected one. It is non-nil exactly when
	// Decided is true.
	Victims []*Entry
	// Profit and Bar are the two sides of the admission comparison on
	// MissAdmitted/MissRejected events with Decided set. On Evict events
	// Profit carries the victim's own profit at eviction time.
	Profit, Bar float64
	// Theta is the admission threshold θ the comparison used (admit ⇔
	// Profit > Theta·Bar), when the admitter reports one; 0 means unknown.
	// Meaningful only when Decided is true.
	Theta float64
	// HasHistory reports whether the comparison used the sliding-window
	// profit estimates (true) or the e-profit estimates (false).
	// Meaningful only when Decided is true.
	HasHistory bool
	// Decided reports whether an Admitter ruled on a profit comparison for
	// this MissAdmitted/MissRejected event. False means the set was
	// admitted into free space, or rejected without a comparison (too
	// large to ever fit, or no victim set could free enough space).
	Decided bool
	// Rank is, on Evict events, the victim's position in its eviction
	// batch (0 = least profitable, evicted first).
	Rank int
	// DeriveCost is the derivation cost of a HitDerived event; the cost
	// saved by the derivation is Cost − DeriveCost.
	DeriveCost float64
	// AncestorID names the cached entry a HitDerived answer was computed
	// from.
	AncestorID string
	// Derived marks MissAdmitted/MissRejected events that record the
	// admission decision for a derived retrieved set (inserted at residual
	// cost after a HitDerived outcome) rather than a reference outcome.
	// Reference accountants must skip them: the reference was already
	// counted by the HitDerived event.
	Derived bool
}

// Sig returns the signature of the event's query ID, reading it off the
// attached Entry when one exists (hits and admissions carry the entry) and
// hashing the ID otherwise (external misses, recordless rejections). Both
// paths yield the same value: entries store Signature(ID) at creation.
func (ev Event) Sig() uint64 {
	if ev.Entry != nil {
		return ev.Entry.Sig
	}
	return Signature(ev.ID)
}

// EventSink observes lifecycle events. Implementations run under the
// cache's execution context (single-threaded, or with the owning shard's
// mutex held), must not call back into the cache, and must be cheap: the
// hit path emits an event per reference.
type EventSink interface {
	Emit(Event)
}

// EventSinkFunc adapts a plain function to the EventSink interface.
type EventSinkFunc func(Event)

// Emit calls f.
func (f EventSinkFunc) Emit(ev Event) { f(ev) }

// multiSink fans one event stream out to several sinks, in order.
type multiSink []EventSink

// Emit forwards the event to every sink.
func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// MultiSink combines several sinks into one that forwards every event to
// each, in argument order. Nil sinks are skipped; a single survivor is
// returned unwrapped.
func MultiSink(sinks ...EventSink) EventSink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// callbackSink implements the legacy OnAdmit/OnEvict/OnReject callbacks as
// one adapter over the event stream, preserving their exact firing rules:
// OnAdmit after every admission, OnEvict after every replacement eviction
// and after coherence drops of resident sets, OnReject only when an
// Admitter denied the set (Victims non-nil).
type callbackSink struct {
	onAdmit  func(*Entry)
	onEvict  func(*Entry)
	onReject func(e *Entry, victims []*Entry, profit, bar float64)
}

// Emit dispatches the event to the matching callback.
func (s callbackSink) Emit(ev Event) {
	switch ev.Kind {
	case EventMissAdmitted:
		if s.onAdmit != nil {
			s.onAdmit(ev.Entry)
		}
	case EventEvict:
		if s.onEvict != nil {
			s.onEvict(ev.Entry)
		}
	case EventInvalidate:
		if ev.Resident && s.onEvict != nil {
			s.onEvict(ev.Entry)
		}
	case EventMissRejected:
		if ev.Victims != nil && s.onReject != nil {
			s.onReject(ev.Entry, ev.Victims, ev.Profit, ev.Bar)
		}
	case EventHit, EventExternalMiss, EventHitDerived, EventRestore:
		// No legacy callback observes reference outcomes or snapshot
		// restores; stats and telemetry sinks consume those kinds.
	}
}

// emit forwards one event to every configured sink. Call sites guard with
// hasSinks so the hit path never constructs an Event nobody consumes.
func (c *Cache) emit(ev Event) {
	for _, s := range c.sinks {
		s.Emit(ev)
	}
}

// hasSinks reports whether any sink is attached.
func (c *Cache) hasSinks() bool { return len(c.sinks) > 0 }
