package core

import "fmt"

// PolicyKind selects a cache replacement (and, for LNC-RA, admission)
// policy.
type PolicyKind int

const (
	// LRU is the vanilla least-recently-used baseline (K = 1) the paper
	// compares against.
	LRU PolicyKind = iota
	// LRUK is the LRU-K policy of O'Neil, O'Neil and Weikum, applied at
	// retrieved-set granularity: the victim is the set with the oldest
	// K-th most recent reference, with sets holding fewer than K reference
	// times evicted first (most recent reference breaking ties).
	LRUK
	// LFU evicts the least frequently used set (related-work baseline).
	LFU
	// LCS evicts the largest set first (the ADMS "Largest Cache Space"
	// baseline the paper cites as the best of the ADMS trio).
	LCS
	// LNCR is the paper's Least Normalized Cost replacement algorithm:
	// victims in ascending profit order, sets with fewer reference times
	// considered before sets with more (§2.1, Figure 1).
	LNCR
	// LNCRA is LNCR integrated with the LNC-A admission algorithm (§2.2):
	// a set is cached only if its (estimated) profit exceeds the aggregate
	// (estimated) profit of its replacement candidates.
	LNCRA
)

// String returns the conventional name of the policy.
func (p PolicyKind) String() string {
	switch p {
	case LRU:
		return "LRU"
	case LRUK:
		return "LRU-K"
	case LFU:
		return "LFU"
	case LCS:
		return "LCS"
	case LNCR:
		return "LNC-R"
	case LNCRA:
		return "LNC-RA"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// HasAdmission reports whether the policy runs the LNC-A admission test.
func (p PolicyKind) HasAdmission() bool { return p == LNCRA }

// RetainsRefInfo reports whether the policy keeps reference information
// after eviction. The paper's LNC-R/LNC-RA retain it under the §2.4 policy;
// LRU-K retains it per the original LRU-K design. LRU, LFU and LCS do not
// use reference history beyond what they cache.
func (p PolicyKind) RetainsRefInfo() bool {
	switch p {
	case LRUK, LNCR, LNCRA:
		return true
	default:
		return false
	}
}

// ranker orders entries for eviction.
type ranker struct {
	policy PolicyKind
	// strictTiers enables the literal Figure-1 reference-count tiers for
	// the LNC policies (ablation A6).
	strictTiers bool
}

// rank returns the eviction priority: victims are selected in ascending
// (tier, key) order. Lower tiers are evicted before higher tiers regardless
// of key; within a tier, lower keys go first.
func (r ranker) rank(e *Entry, now float64) (tier int, key float64) {
	switch r.policy {
	case LRU:
		return 0, e.LastRef()
	case LRUK:
		// Sets with incomplete windows have infinite backward K-distance:
		// evict them first, least recently used first. Full windows are
		// ordered by the K-th most recent reference time.
		if e.window.count() < len(e.window.times) {
			return 0, e.LastRef()
		}
		return 1, e.window.kth()
	case LFU:
		return 0, float64(e.TotalRefs())
	case LCS:
		return 0, -float64(e.Size)
	default: // LNCR, LNCRA
		// Strict Figure-1 ordering: all sets with exactly one reference in
		// profit order, then all with two references, etc. The default
		// collapses the tiers and competes on profit alone.
		if !r.strictTiers {
			return 1, e.Profit(now)
		}
		tier = e.window.count()
		if tier < 1 {
			tier = 1
		}
		return tier, e.Profit(now)
	}
}
