// Package core implements WATCHMAN, the data warehouse intelligent cache
// manager of Scheuermann, Shim and Vingralek (VLDB 1996): a cache of whole
// retrieved sets with the LNC-R cache replacement algorithm, the LNC-A cache
// admission algorithm, their combination LNC-RA, the retained-reference-
// information policy of §2.4, and the baseline policies the paper compares
// against (vanilla LRU, LRU-K, and the related-work baselines LFU and LCS).
//
// All time is logical (trace timestamps in seconds); the package never reads
// the wall clock, so every simulation is deterministic.
package core

import "strings"

// idSeparator is the single special character that replaces delimiter runs
// when query IDs are compressed, per §3 of the paper ("the query string
// compressed by substituting all delimiters with a single special
// character").
const idSeparator = '\x1f'

// isDelimiter reports whether the byte is a query-string delimiter:
// whitespace, commas, parentheses, and semicolons.
func isDelimiter(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\r', ',', '(', ')', ';':
		return true
	}
	return false
}

// CompressID canonicalizes a query string into a query ID by collapsing
// every run of delimiters into one separator character and trimming
// leading/trailing delimiters. Two query strings that differ only in
// whitespace or punctuation spacing therefore map to the same ID.
func CompressID(query string) string {
	// Already-canonical strings (no delimiter bytes anywhere — the
	// separator itself is not a delimiter) compress to themselves; return
	// the input without allocating so hot paths can pass precompressed IDs
	// through for free.
	i := 0
	for i < len(query) && !isDelimiter(query[i]) {
		i++
	}
	if i == len(query) {
		return query
	}
	var b strings.Builder
	b.Grow(len(query))
	pendingSep := false
	for i := 0; i < len(query); i++ {
		c := query[i]
		if isDelimiter(c) {
			pendingSep = b.Len() > 0
			continue
		}
		if pendingSep {
			b.WriteByte(idSeparator)
			pendingSep = false
		}
		b.WriteByte(c)
	}
	return b.String()
}

// Signature returns the 64-bit FNV-1a hash of a query ID. The cache's
// lookup structure buckets entries by signature and compares IDs exactly
// only within a bucket, as described in §3 of the paper.
func Signature(id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}
