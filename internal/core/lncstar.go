package core

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the offline machinery of §2.3: the LNC* greedy
// algorithm, the exact (exponential) knapsack solver used to verify its
// optimality claim in tests, and the expected-cost objective both optimize.
//
// The constrained model: retrieved sets RS₁..RSₙ with sizes sᵢ, costs cᵢ and
// stationary reference probabilities pᵢ. The optimal static cache content
// I* ⊆ N minimizes Σ_{i∉I*} pᵢcᵢ subject to Σ_{i∈I*} sᵢ ≤ S, which under
// the "sets fill the cache exactly" assumption (eq. 11) is solved by the
// greedy LNC*: sort by pᵢcᵢ/sᵢ descending, take items until the budget is
// violated.

// Item is one retrieved set in the offline model.
type Item struct {
	// ID labels the item (diagnostics only).
	ID string
	// Prob is the stationary reference probability pᵢ.
	Prob float64
	// Cost is the execution cost cᵢ.
	Cost float64
	// Size is the retrieved set size sᵢ.
	Size int64
}

// ExpectedMissCost returns Σ_{i∉I} pᵢcᵢ for the cached index set I, the
// objective (9) that the optimal replacement minimizes.
func ExpectedMissCost(items []Item, cached map[int]bool) float64 {
	var c float64
	for i, it := range items {
		if !cached[i] {
			c += it.Prob * it.Cost
		}
	}
	return c
}

// ExpectedCostSavings returns Σ_{i∈I} pᵢcᵢ / Σᵢ pᵢcᵢ, the steady-state cost
// savings ratio of the static cache content I.
func ExpectedCostSavings(items []Item, cached map[int]bool) float64 {
	var num, den float64
	for i, it := range items {
		den += it.Prob * it.Cost
		if cached[i] {
			num += it.Prob * it.Cost
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// LNCStar runs the greedy LNC* algorithm: items sorted by pᵢcᵢ/sᵢ in
// descending order are admitted until one no longer fits. Following the
// paper's construction ("assigns items from the start of the list until the
// space requirement is violated"), the scan stops at the first item that
// violates the budget. It returns the selected index set.
func LNCStar(items []Item, capacity int64) map[int]bool {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	density := func(i int) float64 {
		if items[i].Size <= 0 {
			return math.Inf(1)
		}
		return items[i].Prob * items[i].Cost / float64(items[i].Size)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := density(order[a]), density(order[b])
		if da != db {
			return da > db
		}
		return items[order[a]].ID < items[order[b]].ID
	})
	selected := make(map[int]bool)
	var used int64
	for _, i := range order {
		if used+items[i].Size > capacity {
			break
		}
		selected[i] = true
		used += items[i].Size
	}
	return selected
}

// OptimalKnapsack solves objective (9)/(10) exactly by exhaustive search.
// It is exponential in len(items) and exists to verify LNC* in tests; it
// returns an error beyond 24 items.
func OptimalKnapsack(items []Item, capacity int64) (map[int]bool, error) {
	n := len(items)
	if n > 24 {
		return nil, fmt.Errorf("core: exhaustive knapsack limited to 24 items, got %d", n)
	}
	bestMask := uint32(0)
	bestValue := math.Inf(-1)
	for mask := uint32(0); mask < 1<<n; mask++ {
		var size int64
		var value float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				size += items[i].Size
				value += items[i].Prob * items[i].Cost
			}
		}
		if size <= capacity && value > bestValue {
			bestValue = value
			bestMask = mask
		}
	}
	out := make(map[int]bool)
	for i := 0; i < n; i++ {
		if bestMask&(1<<i) != 0 {
			out[i] = true
		}
	}
	return out, nil
}

// PackedExactly reports whether the selection fills the capacity exactly,
// the eq. (11) regime in which Theorem 1 proves LNC* optimal.
func PackedExactly(items []Item, selected map[int]bool, capacity int64) bool {
	var used int64
	for i := range selected {
		used += items[i].Size
	}
	return used == capacity
}
