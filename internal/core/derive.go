package core

// This file is the core half of the semantic derivation hook. The cache
// itself knows nothing about plans: a configured Deriver is consulted on
// the miss path with the request (whose opaque Plan field carries the plan
// descriptor) and may answer it from content cached elsewhere in the same
// cache — a superset scan re-filtered, a finer aggregate rolled up. A
// successful derivation is a HitDerived outcome: the reference saves the
// remote cost minus the derivation cost, the ancestor entry is credited
// with a reference, and the derived set itself runs the ordinary admission
// machinery at its residual cost (what caching it would actually save,
// now that it is derivable).

// Derivation is the outcome of a successful Deriver.Derive call.
type Derivation struct {
	// Payload is the materialized derived retrieved set, or nil when the
	// deriver only does the cost accounting (trace replays without
	// materialized results).
	Payload any
	// Size is the derived set's size in bytes; zero means "unknown, use
	// the request's size".
	Size int64
	// Cost is the derivation cost in logical block reads. It must be
	// strictly below the remote cost for the derivation to count.
	Cost float64
	// Remote is the remote-cost basis the deriver compared against: the
	// request's cost when known, its own estimate otherwise (the
	// concurrent Load path, where size and cost come from the loader).
	Remote float64
	// AncestorID is the compressed query ID of the cached entry the answer
	// was derived from.
	AncestorID string
}

// Deriver attempts to answer a missed request from currently cached
// content. Derive runs under the cache's execution context (single-
// threaded, or with the owning shard's mutex held) and must not call back
// into the cache. When req.Cost > 0 it is the remote-cost basis the
// derivation must beat; otherwise the deriver supplies its own estimate in
// Derivation.Remote. A Deriver that also implements EventSink is attached
// to the cache's event stream automatically, which is how the derive
// package tracks what is currently cached.
type Deriver interface {
	Derive(req Request) (Derivation, bool)
}

// deriveHit drives the HitDerived half of the reference lifecycle: account
// the partial saving, credit the ancestor with a reference, emit the event
// and run the admission machinery for the derived set at residual cost.
// The caller has already charged the reference via tick. It returns the
// derived payload.
//
//watchman:accounting
func (c *Cache) deriveHit(e *Entry, id string, sig uint64, req Request, d Derivation, now float64) any {
	size := d.Size
	if size == 0 {
		size = req.Size
	}
	saved := req.Cost - d.Cost
	c.stats.DerivedHits++
	c.stats.CostSaved += saved
	c.stats.DeriveCost += d.Cost
	c.stats.BytesServed += size

	// Deriving from the ancestor is a reference to it: record it so the
	// ancestor's λ (and therefore its profit) reflects its derivative
	// value. In a sharded deployment the ancestor may live in another
	// shard, in which case the credit is skipped (crossing shard locks
	// from inside a reference would invert the lock order).
	if anc := c.lookup(d.AncestorID, Signature(d.AncestorID)); anc != nil && anc.resident {
		anc.window.record(now)
		c.ev.touch(anc, now)
	}

	if c.hasSinks() {
		c.emit(Event{Kind: EventHitDerived, Time: now, Class: req.Class, ID: id,
			Size: size, Cost: req.Cost, DeriveCost: d.Cost, Relations: req.Relations,
			AncestorID: d.AncestorID})
	}
	if c.tracer != nil {
		c.span.AncestorID = d.AncestorID
	}

	// Admission at residual cost: with a derivable ancestor resident, a
	// future reference to this set would save only remote − derivation,
	// so that is the cost its profit is charged with.
	res := req
	res.Size = size
	res.Cost = saved
	res.Payload = d.Payload
	c.missesSincePrune++
	c.miss(e, id, sig, res, now, true)
	if c.missesSincePrune >= c.cfg.RetainedPruneEvery {
		c.pruneRetained(now)
		c.missesSincePrune = 0
	}
	c.enforceRetainedBudget(now)
	c.sampleFragmentation()
	return d.Payload
}

// ReferenceDerived charges a reference that a concurrent front-end
// answered by derivation outside the Reference path (shard.Load derives
// inside its singleflight loader, off the shard lock, and commits the
// outcome here). req.QueryID must be a CompressID result and sig its
// Signature; req.Cost must carry the remote-cost basis (Derivation.Remote)
// and req.Size the derived set's size. It returns the payload served.
//
//watchman:accounted
func (c *Cache) ReferenceDerived(req Request, sig uint64, d Derivation) (payload any) {
	now := c.tick(req.Time, req.Cost)
	c.spanBegin(req.QueryID, req.Class, req.Size, req.Cost, now)
	c.spanCharge(StageDerive, req.ExecNanos)
	e := c.lookup(req.QueryID, sig)
	c.spanStage(StageLookup)
	if e != nil && e.resident {
		// The set became resident while the derivation ran (a concurrent
		// direct Reference admitted it — the singleflight table only
		// fences Load callers): charge an ordinary hit. Re-running the
		// insert machinery on a resident entry would double-charge
		// capacity and the evictor.
		c.chargeHit(e, req.Cost, req.Class, now)
		c.spanEntry(e, now)
		c.spanFinish(EventHit)
		return e.Payload
	}
	payload = c.deriveHit(e, req.QueryID, sig, req, d, now)
	c.spanFinish(EventHitDerived)
	return payload
}
