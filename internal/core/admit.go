package core

// AdmissionDecision carries everything the cache knows at the moment it must
// decide whether a missed retrieved set may displace its replacement
// candidates. The cache computes the profit comparison of §2.2 up front —
// using the sliding-window estimates when the entry has reference history,
// and the e-profit estimates (eq. 8) when it does not — so admitters can
// gate on the paper's quantities without recomputing them.
type AdmissionDecision struct {
	// Entry is the candidate retrieved set, with its reference window
	// already updated to include the current reference.
	Entry *Entry
	// Victims is the minimal replacement-candidate prefix (in eviction
	// order) that would be evicted to make room for Entry.
	Victims []*Entry
	// Now is the logical time of the decision.
	Now float64
	// HasHistory reports whether Entry had recorded references before the
	// current one; when false, Profit and Bar are the e-profit estimates.
	HasHistory bool
	// Profit is the candidate's (estimated) profit λ·c/s.
	Profit float64
	// Bar is the aggregate (estimated) profit of Victims (§2.2, eq. 5/8).
	Bar float64
}

// Admitter decides cache admission on the miss path. It is consulted only
// when admitting the set requires evictions — when free space suffices the
// set is always admitted, exactly as in Figure 1 of the paper. Admit
// returns whether the set may displace its victims. Implementations run
// under the cache's execution context (single-threaded, or with the owning
// shard's mutex held) and must not call back into the cache.
type Admitter interface {
	Admit(AdmissionDecision) bool
}

// AdmitterFunc adapts a plain function to the Admitter interface.
type AdmitterFunc func(AdmissionDecision) bool

// Admit calls f.
func (f AdmitterFunc) Admit(d AdmissionDecision) bool { return f(d) }

// ThresholdReporter is implemented by admitters whose rule is the
// thresholded profit comparison admit ⇔ profit > θ·bar and that can report
// the current θ. The cache stamps the reported θ onto decision events and
// spans so operators can reproduce the exact inequality the gate
// evaluated; admitters without a meaningful θ simply don't implement it.
type ThresholdReporter interface {
	Threshold() float64
}

// lncaAdmitter is the paper's static LNC-A admission test; its threshold
// θ is the constant 1.
type lncaAdmitter struct{}

// Admit applies the §2.2 comparison: profit must strictly exceed bar.
func (lncaAdmitter) Admit(d AdmissionDecision) bool { return d.Profit > d.Bar }

// Threshold reports LNC-A's fixed θ = 1.
func (lncaAdmitter) Threshold() float64 { return 1 }

// LNCA returns the paper's static LNC-A admission test: cache a set only
// when its (estimated) profit strictly exceeds the aggregate (estimated)
// profit of the sets it would evict. It is the default admitter of the
// LNCRA policy.
func LNCA() Admitter {
	return lncaAdmitter{}
}
