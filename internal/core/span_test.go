package core

import (
	"testing"
)

// captureTracer records every span handed to it.
type captureTracer struct {
	spans []Span
}

func (t *captureTracer) ObserveSpan(sp Span) { t.spans = append(t.spans, sp) }

func (t *captureTracer) last(tt *testing.T) Span {
	tt.Helper()
	if len(t.spans) == 0 {
		tt.Fatal("no spans captured")
	}
	return t.spans[len(t.spans)-1]
}

// captureSink records every event, for cross-checking spans against the
// event stream.
type captureEventSink struct {
	events []Event
}

func (s *captureEventSink) Emit(ev Event) { s.events = append(s.events, ev) }

func newTracedCache(t *testing.T, cfg Config, tr *captureTracer) *Cache {
	t.Helper()
	cfg.Tracer = tr
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSpanPerReference checks that with a tracer attached every reference
// completes exactly one span carrying its identity and outcome.
func TestSpanPerReference(t *testing.T) {
	tr := &captureTracer{}
	c := newTracedCache(t, Config{Capacity: 1 << 20, K: 2, Policy: LNCRA}, tr)

	c.Reference(Request{QueryID: "q1", Time: 1, Class: 3, Size: 100, Cost: 50})
	if len(tr.spans) != 1 {
		t.Fatalf("spans after miss = %d, want 1", len(tr.spans))
	}
	sp := tr.last(t)
	if sp.Outcome != EventMissAdmitted {
		t.Errorf("miss outcome = %v, want %v", sp.Outcome, EventMissAdmitted)
	}
	if sp.ID != CompressID("q1") || sp.Class != 3 || sp.Size != 100 || sp.Cost != 50 || sp.Time != 1 {
		t.Errorf("span identity = %+v", sp)
	}
	if sp.Decided {
		t.Error("free-space admission must not report a decided comparison")
	}
	if sp.Total < 0 {
		t.Errorf("total = %d, want >= 0", sp.Total)
	}

	c.Reference(Request{QueryID: "q1", Time: 2, Class: 3, Size: 100, Cost: 50})
	if len(tr.spans) != 2 {
		t.Fatalf("spans after hit = %d, want 2", len(tr.spans))
	}
	sp = tr.last(t)
	if sp.Outcome != EventHit {
		t.Errorf("hit outcome = %v, want %v", sp.Outcome, EventHit)
	}
	if sp.Lambda <= 0 || sp.RefDepth != 2 {
		t.Errorf("hit span λ=%g refs=%d, want λ>0 refs=2", sp.Lambda, sp.RefDepth)
	}
}

// TestSpanRejectionMatchesEvent checks the span's decision inputs are the
// exact floats the admission gate evaluated (cross-checked against the
// MissRejected event), including θ from the LNC-A admitter.
func TestSpanRejectionMatchesEvent(t *testing.T) {
	tr := &captureTracer{}
	sink := &captureEventSink{}
	// A tiny cache the resident set fills exactly, so the next admission
	// must propose victims and run the profit comparison.
	c := newTracedCache(t, Config{Capacity: 1000, K: 2, Policy: LNCRA, Sink: sink}, tr)

	// Make "hot" valuable: many references, high cost.
	for i := 0; i < 6; i++ {
		c.Reference(Request{QueryID: "hot", Time: float64(i + 1), Size: 1000, Cost: 500})
	}
	// A cheap, never-seen set must be rejected by LNC-A.
	c.Reference(Request{QueryID: "cheap", Time: 10, Size: 1000, Cost: 0.001})

	sp := tr.last(t)
	if sp.Outcome != EventMissRejected {
		t.Fatalf("outcome = %v, want %v", sp.Outcome, EventMissRejected)
	}
	if !sp.Decided {
		t.Fatal("rejection with victims must report a decided comparison")
	}
	if sp.Theta != 1 {
		t.Errorf("θ = %g, want 1 (the static LNC-A admitter)", sp.Theta)
	}
	if sp.HasHistory {
		t.Error("first reference must use the e-profit estimate (no history)")
	}
	if sp.Profit > sp.Theta*sp.Bar {
		t.Errorf("rejected span has profit %g > θ·bar %g", sp.Profit, sp.Theta*sp.Bar)
	}
	if sp.Victims == 0 {
		t.Error("decided rejection must report its victim candidates")
	}

	var ev Event
	found := false
	for _, e := range sink.events {
		if e.Kind == EventMissRejected {
			ev, found = e, true
		}
	}
	if !found {
		t.Fatal("no MissRejected event emitted")
	}
	if ev.Profit != sp.Profit || ev.Bar != sp.Bar || ev.Theta != sp.Theta ||
		ev.Decided != sp.Decided || ev.HasHistory != sp.HasHistory {
		t.Errorf("span decision %+v disagrees with event %+v", sp, ev)
	}
}

// TestSpanEvictionStage checks an admission that displaces victims times
// the evict and insert stages and reports the victim count.
func TestSpanEvictionStage(t *testing.T) {
	tr := &captureTracer{}
	c := newTracedCache(t, Config{Capacity: 1000, K: 2, Policy: LNCRA}, tr)

	for i := 0; i < 4; i++ {
		c.Reference(Request{QueryID: "old", Time: float64(i + 1), Size: 1000, Cost: 1})
	}
	// A much more profitable set displaces it.
	for i := 0; i < 4; i++ {
		c.Reference(Request{QueryID: "new", Time: float64(10 + i), Size: 1000, Cost: 1e6})
	}
	var admitted *Span
	for i := range tr.spans {
		sp := &tr.spans[i]
		if sp.ID == CompressID("new") && sp.Outcome == EventMissAdmitted && sp.Decided {
			admitted = sp
		}
	}
	if admitted == nil {
		t.Fatal("no decided admission span for the displacing set")
	}
	if admitted.Victims != 1 {
		t.Errorf("victims = %d, want 1", admitted.Victims)
	}
	if admitted.Profit <= admitted.Theta*admitted.Bar {
		t.Errorf("admitted span has profit %g <= θ·bar %g", admitted.Profit, admitted.Theta*admitted.Bar)
	}
}

// TestSpanExecNanosAttribution checks externally measured loader time
// (Request.ExecNanos) lands in the load stage, and derivation time from
// the singleflight path in the derive stage.
func TestSpanExecNanosAttribution(t *testing.T) {
	tr := &captureTracer{}
	c := newTracedCache(t, Config{Capacity: 1 << 20, K: 2, Policy: LNCRA}, tr)

	c.Reference(Request{QueryID: "q", Time: 1, Size: 100, Cost: 10, ExecNanos: 12345})
	sp := tr.last(t)
	if sp.Stages[StageLoad] != 12345 {
		t.Errorf("load stage = %d ns, want 12345", sp.Stages[StageLoad])
	}

	id := CompressID("qd")
	c.ReferenceDerived(Request{QueryID: id, Time: 2, Size: 100, Cost: 10, ExecNanos: 777}, Signature(id),
		Derivation{Cost: 1, Remote: 10, AncestorID: CompressID("q")})
	sp = tr.last(t)
	if sp.Stages[StageDerive] != 777 {
		t.Errorf("derive stage = %d ns, want 777", sp.Stages[StageDerive])
	}
	if sp.AncestorID != CompressID("q") {
		t.Errorf("ancestor = %q, want %q", sp.AncestorID, CompressID("q"))
	}
	if sp.Outcome != EventHitDerived {
		t.Errorf("outcome = %v, want %v", sp.Outcome, EventHitDerived)
	}

	c.Account(Request{QueryID: id, Time: 3, Size: 100, Cost: 10, ExecNanos: 999}, false)
	sp = tr.last(t)
	if sp.Stages[StageLoad] != 999 {
		t.Errorf("Account load stage = %d ns, want 999", sp.Stages[StageLoad])
	}
	if sp.Outcome != EventExternalMiss {
		t.Errorf("Account outcome = %v, want %v", sp.Outcome, EventExternalMiss)
	}
}

// TestSpanReferenceEntry checks the single-lookup hit path completes a
// Hit span with the entry's stored identity.
func TestSpanReferenceEntry(t *testing.T) {
	tr := &captureTracer{}
	c := newTracedCache(t, Config{Capacity: 1 << 20, K: 2, Policy: LNCRA}, tr)
	c.Reference(Request{QueryID: "q", Time: 1, Size: 64, Cost: 5, Payload: "rows"})
	e, ok := c.Lookup("q")
	if !ok {
		t.Fatal("entry not resident")
	}
	before := len(tr.spans)
	c.ReferenceEntry(e, 2, 7)
	if len(tr.spans) != before+1 {
		t.Fatalf("spans = %d, want %d", len(tr.spans), before+1)
	}
	sp := tr.last(t)
	if sp.Outcome != EventHit || sp.ID != CompressID("q") || sp.Class != 7 || sp.Size != 64 {
		t.Errorf("span = %+v", sp)
	}
}

// TestSpanStageNames pins the stage labels the telemetry exposition uses.
func TestSpanStageNames(t *testing.T) {
	want := map[Stage]string{
		StageLookup: "lookup", StageDerive: "derive", StageLoad: "load",
		StageAdmit: "admit", StageInsert: "insert", StageEvict: "evict",
		NumStages: "unknown",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), name)
		}
	}
}

// TestSpanDisabled checks no spans are produced (and nothing panics)
// without a tracer — the nil-check contract of the disabled hot path.
func TestSpanDisabled(t *testing.T) {
	c, err := New(Config{Capacity: 1000, K: 2, Policy: LNCRA})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Reference(Request{QueryID: "q", Time: float64(i + 1), Size: 1000, Cost: 10})
		c.Reference(Request{QueryID: "other", Time: float64(i + 1), Size: 1000, Cost: 1})
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
