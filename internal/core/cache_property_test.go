package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// replayRandom drives a cache with a pseudo-random request stream derived
// from seed and returns it.
func replayRandom(cfg Config, seed int64, n int) (*Cache, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	now := 0.0
	for i := 0; i < n; i++ {
		now += rng.ExpFloat64()
		id := fmt.Sprintf("q%d", rng.Intn(60))
		size := rng.Int63n(300) + 1
		cost := float64(rng.Intn(5000) + 1)
		// Sizes and costs must be stable per query ID, as they are for
		// deterministic engines; derive them from the ID instead.
		h := Signature(id)
		size = int64(h%300) + 1
		cost = float64(h%5000) + 1
		rels := []string{fmt.Sprintf("r%d", h%5)}
		c.Reference(Request{QueryID: id, Time: now, Size: size, Cost: cost, Relations: rels})
		if rng.Intn(97) == 0 {
			c.Invalidate(fmt.Sprintf("r%d", rng.Intn(5)))
		}
	}
	return c, nil
}

// allSetups enumerates the policy/evictor grid the property tests cover.
func allSetups() []Config {
	var out []Config
	for _, p := range []PolicyKind{LRU, LRUK, LFU, LCS, LNCR, LNCRA} {
		for _, ev := range []EvictorKind{ScanEvictor, HeapEvictor} {
			out = append(out, Config{Capacity: 2000, K: 3, Policy: p, Evictor: ev})
		}
	}
	// Variants: strict tiers, disabled retention, metadata overhead.
	out = append(out,
		Config{Capacity: 2000, K: 4, Policy: LNCRA, StrictTiers: true},
		Config{Capacity: 2000, K: 4, Policy: LNCRA, DisableRetainedInfo: true},
		Config{Capacity: 2000, K: 4, Policy: LNCRA, MetadataOverhead: 64},
		Config{Capacity: 50, K: 2, Policy: LNCRA},
	)
	return out
}

func TestPropertyInvariantsAcrossPolicies(t *testing.T) {
	for _, cfg := range allSetups() {
		cfg := cfg
		name := fmt.Sprintf("%s-%s-strict%v-ret%v-meta%d-cap%d",
			cfg.Policy, cfg.Evictor, cfg.StrictTiers, !cfg.DisableRetainedInfo, cfg.MetadataOverhead, cfg.Capacity)
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				c, err := replayRandom(cfg, seed, 800)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				s := c.Stats()
				if hr := s.HitRatio(); hr < 0 || hr > 1 {
					t.Fatalf("seed %d: HR out of range: %g", seed, hr)
				}
				if csr := s.CostSavingsRatio(); csr < 0 || csr > 1 {
					t.Fatalf("seed %d: CSR out of range: %g", seed, csr)
				}
				if frag := s.AvgFragmentation(); frag < 0 || frag > 1 {
					t.Fatalf("seed %d: fragmentation out of range: %g", seed, frag)
				}
				if c.UsedBytes() > cfg.Capacity {
					t.Fatalf("seed %d: capacity exceeded", seed)
				}
				if s.Hits+s.Admissions+s.Rejections < s.References {
					t.Fatalf("seed %d: every reference must hit, admit or reject", seed)
				}
			}
		})
	}
}

func TestPropertyDeterminism(t *testing.T) {
	for _, p := range []PolicyKind{LRU, LNCR, LNCRA} {
		cfg := Config{Capacity: 3000, K: 3, Policy: p}
		a, err := replayRandom(cfg, 99, 1000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := replayRandom(cfg, 99, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats() != b.Stats() {
			t.Fatalf("%s: identical streams produced different stats:\n%+v\n%+v", p, a.Stats(), b.Stats())
		}
	}
}

func TestPropertyHitImpliesResidentQuick(t *testing.T) {
	// A hit must be preceded by an admission of the same ID without an
	// intervening eviction — checked indirectly: after any stream, Peek
	// agreement with a fresh Reference.
	f := func(seed int64) bool {
		c, err := New(Config{Capacity: 1500, K: 2, Policy: LNCRA})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		now := 0.0
		for i := 0; i < 300; i++ {
			now += rng.Float64() + 0.001
			id := fmt.Sprintf("q%d", rng.Intn(30))
			h := Signature(id)
			size := int64(h%400) + 1
			cost := float64(h%900) + 1
			_, present := c.Peek(id)
			hit, _ := c.Reference(Request{QueryID: id, Time: now, Size: size, Cost: cost})
			if hit != present {
				return false
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInfiniteCacheMatchesBound(t *testing.T) {
	// With an unlimited cache, every repeat reference hits: HR and CSR
	// must exactly equal the trace's analytic bounds.
	f := func(seed int64) bool {
		c, err := New(Config{Capacity: Unlimited, K: 4, Policy: LNCRA})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		refs := make(map[string]int)
		costs := make(map[string]float64)
		now := 0.0
		for i := 0; i < 400; i++ {
			now += rng.Float64() + 0.001
			id := fmt.Sprintf("q%d", rng.Intn(50))
			h := Signature(id)
			cost := float64(h%1000) + 1
			c.Reference(Request{QueryID: id, Time: now, Size: int64(h%100) + 1, Cost: cost})
			refs[id]++
			costs[id] = cost
		}
		var hitNum, hitDen, csrNum, csrDen float64
		for id, r := range refs {
			hitNum += float64(r - 1)
			hitDen += float64(r)
			csrNum += costs[id] * float64(r-1)
			csrDen += costs[id] * float64(r)
		}
		s := c.Stats()
		return approxEq(s.HitRatio(), hitNum/hitDen) && approxEq(s.CostSavingsRatio(), csrNum/csrDen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestPropertyScanHeapSameStaticPolicies(t *testing.T) {
	// For static-key policies the two evictors must produce identical
	// replay statistics (they select identical victims).
	for _, p := range []PolicyKind{LRU, LFU, LCS} {
		scan, err := replayRandom(Config{Capacity: 2500, K: 2, Policy: p, Evictor: ScanEvictor}, 5, 1200)
		if err != nil {
			t.Fatal(err)
		}
		heap, err := replayRandom(Config{Capacity: 2500, K: 2, Policy: p, Evictor: HeapEvictor}, 5, 1200)
		if err != nil {
			t.Fatal(err)
		}
		if scan.Stats() != heap.Stats() {
			t.Fatalf("%s: evictors disagree:\nscan %+v\nheap %+v", p, scan.Stats(), heap.Stats())
		}
	}
}

func TestPropertyHeapEvictorCloseToScanForLNC(t *testing.T) {
	// LNC profits decay over time, so the heap evictor is approximate; its
	// CSR must stay within a few percent of the exact scan evictor.
	scan, err := replayRandom(Config{Capacity: 2500, K: 3, Policy: LNCRA, Evictor: ScanEvictor}, 11, 2000)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := replayRandom(Config{Capacity: 2500, K: 3, Policy: LNCRA, Evictor: HeapEvictor}, 11, 2000)
	if err != nil {
		t.Fatal(err)
	}
	s, h := scan.Stats().CostSavingsRatio(), heap.Stats().CostSavingsRatio()
	if d := s - h; d > 0.1 || d < -0.1 {
		t.Fatalf("heap evictor diverges: scan CSR %.3f vs heap CSR %.3f", s, h)
	}
}
