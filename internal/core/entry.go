package core

// Entry is the cache's record for one retrieved set. Per §3 of the paper,
// an entry holds the query ID, an array of K reference timestamps, the
// retrieved set size, the execution cost of the query, and a pointer to the
// retrieved set itself. The same record doubles as the retained reference
// information of §2.4: after eviction the payload is dropped but the entry
// (with its reference times, size and cost) may stay behind, flagged
// non-resident.
type Entry struct {
	// ID is the compressed query ID.
	ID string
	// Sig is the signature (hash) of ID used by the lookup structure.
	Sig uint64
	// Size is the retrieved set size in bytes.
	Size int64
	// Cost is the execution cost of the associated query in logical block
	// reads.
	Cost float64
	// Class is the workload class of the query (multiclass extension, §6);
	// the telemetry registry's per-class accounting keys on it. Single-
	// class workloads use class 0.
	Class int
	// Relations lists the base relations the query reads; the coherence
	// hook invalidates entries by these names.
	Relations []string
	// Payload is the cached retrieved set (opaque to the cache). It is nil
	// for non-resident entries.
	Payload any
	// Plan is the query's plan descriptor (opaque to the cache); the
	// derivation subsystem indexes cached entries by it.
	Plan any

	window   refWindow
	resident bool
	// rc is the rate context shared with the owning cache; it supplies
	// the smoothing floor for λ denominators. It is nil for entries
	// created outside a cache, which then use the raw formula.
	rc *rateContext
}

// rateContext carries the cache-wide λ-denominator floor: the observed
// mean inter-arrival gap of references. All entries of one cache share it.
type rateContext struct {
	minDt float64
}

// floor returns the context's denominator floor, or 0 without a context.
func (e *Entry) floor() float64 {
	if e.rc == nil {
		return 0
	}
	return e.rc.minDt
}

// Resident reports whether the retrieved set itself is in the cache (true)
// or only its retained reference information (false).
func (e *Entry) Resident() bool { return e.resident }

// Refs returns the number of reference times currently recorded, capped at
// the window size K.
func (e *Entry) Refs() int { return e.window.count() }

// TotalRefs returns the lifetime number of references to the entry.
func (e *Entry) TotalRefs() int64 { return e.window.totalRefs() }

// LastRef returns the time of the most recent reference.
func (e *Entry) LastRef() float64 { return e.window.last() }

// Rate returns the sliding-window reference-rate estimate λ at time now.
func (e *Entry) Rate(now float64) float64 { return e.window.rate(now, e.floor()) }

// Profit returns the paper's profit metric at time now (§2.1):
//
//	profit(RSᵢ) = λᵢ · cᵢ / sᵢ
//
// Entries with no recorded references have zero profit.
func (e *Entry) Profit(now float64) float64 {
	if e.Size <= 0 {
		return 0
	}
	return e.Rate(now) * e.Cost / float64(e.Size)
}

// EProfit returns the estimated profit used when no reference information
// exists (§2.2): e-profit(RSᵢ) = cᵢ / sᵢ.
func (e *Entry) EProfit() float64 {
	if e.Size <= 0 {
		return 0
	}
	return e.Cost / float64(e.Size)
}

// touchesAny reports whether the entry's query reads any of the given
// relations.
func (e *Entry) touchesAny(rels map[string]bool) bool {
	for _, r := range e.Relations {
		if rels[r] {
			return true
		}
	}
	return false
}
