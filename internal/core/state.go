package core

// This file is the state-export half of snapshot persistence: everything
// the cache has learned — resident entries, retained reference histories,
// the λ-estimator context and the cumulative Stats — can be copied out as
// plain data (ExportState) and poured back into a freshly constructed
// cache (RestoreState). The binary encoding lives in internal/persist;
// core only defines the state model, so the dependency points outward.

import (
	"fmt"
	"math"
	"sort"
)

// EntryState is the exportable form of one Entry: the §3 record fields
// plus the reference window, free of pointers into live cache state.
type EntryState struct {
	// ID is the compressed query ID.
	ID string
	// Size is the retrieved set size in bytes.
	Size int64
	// Cost is the execution cost in logical block reads.
	Cost float64
	// Class is the workload class of the query.
	Class int
	// Relations lists the base relations the query reads.
	Relations []string
	// Resident reports whether the payload itself was cached (true) or
	// only retained reference information (false).
	Resident bool
	// RefTimes holds the recorded reference times, oldest first, at most
	// K of them.
	RefTimes []float64
	// TotalRefs is the lifetime reference count.
	TotalRefs int64
	// Payload is the cached retrieved set of a resident entry. It is
	// copied as an interface value: payloads are treated as immutable by
	// the whole system, so the copy is safe to serialize outside the
	// cache's execution context.
	Payload any
	// Plan is the query's plan descriptor, opaque to core; the persist
	// codec serializes the concrete types it knows.
	Plan any
}

// CacheState is a full copy of one cache's learned state. It is plain
// data: exporting takes one pass over the index, and the export shares no
// mutable structure with the cache (payload and plan values are assumed
// immutable).
type CacheState struct {
	// Capacity, K and Policy echo the configuration the state was
	// captured under, so a restore into a differently shaped cache can be
	// detected and reported.
	Capacity int64
	K        int
	Policy   PolicyKind
	// Clock is the cache's logical time at capture.
	Clock float64
	// FirstTime and HaveFirst carry the λ-denominator anchor (the time of
	// the first reference ever seen), MinDt the observed mean
	// inter-arrival gap that floors every λ estimate.
	FirstTime float64
	HaveFirst bool
	MinDt     float64
	// MissesSincePrune is the position within the retained-info pruning
	// period.
	MissesSincePrune int
	// Stats are the cumulative counters at capture.
	Stats Stats
	// Entries holds every record, resident and retained, in deterministic
	// (ascending ID) order.
	Entries []EntryState
}

// RestoreReport summarizes what a RestoreState call did.
type RestoreReport struct {
	// Resident and Retained count the records restored into each state.
	Resident int
	Retained int
	// DemotedResident counts resident entries that no longer fit the
	// capacity and were demoted to retained records (reference history
	// kept, payload dropped).
	DemotedResident int
	// Dropped counts records discarded entirely: resident sets that fit
	// neither state, or retained records under a policy that keeps none.
	Dropped int
}

// export copies the window's valid reference times, oldest first.
func (w *refWindow) export() []float64 {
	if w.n == 0 {
		return nil
	}
	out := make([]float64, w.n)
	for i := 0; i < w.n; i++ {
		idx := (w.head - (w.n - 1 - i) + len(w.times)*2) % len(w.times)
		out[i] = w.times[idx]
	}
	return out
}

// restoreWindow rebuilds a K-sized window from exported times (oldest
// first) and the lifetime total. When the exported window is wider than
// K (a restore into a smaller K), only the most recent K times survive —
// exactly what a live window would have kept.
func restoreWindow(k int, times []float64, total int64) refWindow {
	w := newRefWindow(k)
	for _, t := range times {
		w.record(t)
	}
	w.total = total
	return w
}

// exportEntry copies one entry into its exportable form.
func exportEntry(e *Entry) EntryState {
	st := EntryState{
		ID:        e.ID,
		Size:      e.Size,
		Cost:      e.Cost,
		Class:     e.Class,
		Resident:  e.resident,
		RefTimes:  e.window.export(),
		TotalRefs: e.window.totalRefs(),
		Payload:   e.Payload,
		Plan:      e.Plan,
	}
	if len(e.Relations) > 0 {
		st.Relations = append([]string(nil), e.Relations...)
	}
	return st
}

// ExportState captures the cache's full learned state: every resident and
// retained record with its reference history, the λ-estimator context and
// the cumulative Stats. The export is copy-on-read — it shares no mutable
// structure with the cache — so a concurrent wrapper can serialize it
// after releasing its lock. Entries come out in ascending ID order, so
// two captures of identical caches are identical.
func (c *Cache) ExportState() *CacheState {
	st := &CacheState{
		Capacity:         c.cfg.Capacity,
		K:                c.cfg.K,
		Policy:           c.cfg.Policy,
		Clock:            c.now,
		FirstTime:        c.firstTime,
		HaveFirst:        c.haveFirst,
		MinDt:            c.rc.minDt,
		MissesSincePrune: c.missesSincePrune,
		Stats:            c.stats,
		Entries:          make([]EntryState, 0, c.resident+len(c.retained)),
	}
	for _, bucket := range c.index {
		for _, e := range bucket {
			st.Entries = append(st.Entries, exportEntry(e))
		}
	}
	sortEntryStates(st.Entries)
	return st
}

// sortEntryStates orders exported entries by ID, making exports of
// identical caches byte-identical.
func sortEntryStates(es []EntryState) {
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
}

// RestoreState pours an exported state into the cache. The cache must be
// freshly constructed — no references served, nothing resident — because
// restore replaces the learned state wholesale rather than merging; the
// serving stack restores before it starts listening.
//
// Restoring into the same configuration reproduces the captured cache
// exactly. A smaller capacity demotes the lowest-profit resident sets to
// retained records until the rest fit (and the retained budget rule then
// applies as usual); a policy without retained information drops retained
// records. Each restored resident entry is announced to the configured
// event sinks with an EventRestore, so accountants that track cached
// content (the derivation index) relearn it.
func (c *Cache) RestoreState(st *CacheState) (RestoreReport, error) {
	var rep RestoreReport
	if c.stats.References != 0 || c.resident != 0 || len(c.retained) != 0 {
		return rep, fmt.Errorf("core: restore into a cache that already served traffic (%d refs, %d resident, %d retained)",
			c.stats.References, c.resident, len(c.retained))
	}
	// Non-finite values are the same poison class the trace decoder
	// rejects: one NaN cost or reference time makes Profit NaN, every
	// ordering comparison against it false, and the eviction order
	// silently wrong. A CRC only proves the file is what was written,
	// not that what was written is sane.
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	if !finite(st.Clock) || !finite(st.FirstTime) || !finite(st.MinDt) {
		return rep, fmt.Errorf("core: restore: non-finite clock state (clock %g, first %g, minDt %g)",
			st.Clock, st.FirstTime, st.MinDt)
	}
	if !finite(st.Stats.CostTotal) || !finite(st.Stats.CostSaved) ||
		!finite(st.Stats.DeriveCost) || !finite(st.Stats.FragSum) {
		// A NaN counter would make CostSavingsRatio NaN for the process
		// lifetime — the counters install verbatim, so check them here.
		return rep, fmt.Errorf("core: restore: non-finite stats (costTotal %g, costSaved %g, deriveCost %g, fragSum %g)",
			st.Stats.CostTotal, st.Stats.CostSaved, st.Stats.DeriveCost, st.Stats.FragSum)
	}
	seen := make(map[string]struct{}, len(st.Entries))
	for i := range st.Entries {
		es := &st.Entries[i]
		if es.ID == "" {
			return rep, fmt.Errorf("core: restore: entry %d has empty ID", i)
		}
		if _, dup := seen[es.ID]; dup {
			return rep, fmt.Errorf("core: restore: duplicate entry %q", es.ID)
		}
		seen[es.ID] = struct{}{}
		if es.Size <= 0 {
			return rep, fmt.Errorf("core: restore: entry %q has non-positive size %d", es.ID, es.Size)
		}
		if !finite(es.Cost) || es.Cost < 0 {
			return rep, fmt.Errorf("core: restore: entry %q has bad cost %g", es.ID, es.Cost)
		}
		for _, ts := range es.RefTimes {
			if !finite(ts) {
				return rep, fmt.Errorf("core: restore: entry %q has non-finite reference time %g", es.ID, ts)
			}
		}
		if es.TotalRefs < int64(len(es.RefTimes)) {
			// The lifetime count can never undercut the recorded window;
			// a negative count would pin the entry as LFU's first victim.
			return rep, fmt.Errorf("core: restore: entry %q has total refs %d below its %d recorded times",
				es.ID, es.TotalRefs, len(es.RefTimes))
		}
	}

	// Resident sets restore in descending profit order, so when the new
	// capacity is smaller than the captured one, the least profitable
	// sets are the ones demoted — the same preference the replacement
	// policy would express.
	order := make([]int, 0, len(st.Entries))
	profits := make([]float64, len(st.Entries))
	rc := &rateContext{minDt: st.MinDt}
	for i := range st.Entries {
		es := &st.Entries[i]
		if !es.Resident {
			continue
		}
		e := &Entry{Size: es.Size, Cost: es.Cost, window: restoreWindow(c.cfg.K, es.RefTimes, es.TotalRefs), rc: rc}
		profits[i] = e.Profit(st.Clock)
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		if profits[order[a]] != profits[order[b]] {
			return profits[order[a]] > profits[order[b]]
		}
		return st.Entries[order[a]].ID < st.Entries[order[b]].ID
	})

	// The λ context must be live before profits are computed against the
	// restored clock.
	c.now = st.Clock
	c.firstTime = st.FirstTime
	c.haveFirst = st.HaveFirst
	c.rc.minDt = st.MinDt
	c.missesSincePrune = st.MissesSincePrune
	c.stats = st.Stats

	place := func(es *EntryState, resident bool) *Entry {
		e := &Entry{
			ID:    es.ID,
			Sig:   Signature(es.ID),
			Size:  es.Size,
			Cost:  es.Cost,
			Class: es.Class,
			rc:    c.rc,
		}
		if len(es.Relations) > 0 {
			e.Relations = append([]string(nil), es.Relations...)
		}
		e.window = restoreWindow(c.cfg.K, es.RefTimes, es.TotalRefs)
		// The plan descriptor survives eviction on live retained records
		// (only the payload is dropped), so restore keeps it for both
		// kinds — a restored cache re-snapshots to the captured bytes.
		e.Plan = es.Plan
		if resident {
			e.resident = true
			e.Payload = es.Payload
			c.usedPayload += e.Size
			c.resident++
			c.ev.add(e, c.now)
		} else {
			c.retained[e] = struct{}{}
		}
		c.indexInsert(e)
		return e
	}

	for _, i := range order {
		es := &st.Entries[i]
		need := es.Size + c.cfg.MetadataOverhead
		if c.cfg.Capacity != Unlimited && c.UsedBytes()+need > c.cfg.Capacity {
			if c.retainsInfo() {
				place(es, false)
				rep.Retained++
				rep.DemotedResident++
			} else {
				rep.Dropped++
			}
			continue
		}
		e := place(es, true)
		rep.Resident++
		if c.hasSinks() {
			c.emit(Event{Kind: EventRestore, Time: c.now, Class: e.Class, ID: e.ID,
				Size: e.Size, Cost: e.Cost, Relations: e.Relations, Entry: e, Resident: true})
		}
	}
	for i := range st.Entries {
		es := &st.Entries[i]
		if es.Resident {
			continue
		}
		if !c.retainsInfo() {
			rep.Dropped++
			continue
		}
		place(es, false)
		rep.Retained++
	}
	// Retained metadata alone may overflow a smaller capacity; the
	// standard budget rule sheds the least profitable records.
	c.enforceRetainedBudget(c.now)
	if err := c.CheckInvariants(); err != nil {
		return rep, fmt.Errorf("core: restore left inconsistent state: %w", err)
	}
	return rep, nil
}
