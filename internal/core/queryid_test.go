package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCompressID(t *testing.T) {
	tests := []struct {
		name  string
		in    string
		want  string
		equal string // another raw string that must compress identically
	}{
		{
			name:  "spaces collapse",
			in:    "select  *   from t",
			want:  "select\x1f*\x1ffrom\x1ft",
			equal: "select * from t",
		},
		{
			name: "mixed delimiters collapse",
			in:   "select a, b from t;",
			want: "select\x1fa\x1fb\x1ffrom\x1ft",
		},
		{
			name: "parens are delimiters",
			in:   "count(*)",
			want: "count\x1f*",
		},
		{
			name: "leading and trailing trimmed",
			in:   "  select 1  ",
			want: "select\x1f1",
		},
		{
			name: "tabs and newlines",
			in:   "select\t1\nfrom\r\nt",
			want: "select\x1f1\x1ffrom\x1ft",
		},
		{name: "empty", in: "", want: ""},
		{name: "only delimiters", in: " ,;() ", want: ""},
		{name: "no delimiters", in: "abc", want: "abc"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := CompressID(tc.in)
			if got != tc.want {
				t.Errorf("CompressID(%q) = %q, want %q", tc.in, got, tc.want)
			}
			if tc.equal != "" && CompressID(tc.equal) != got {
				t.Errorf("CompressID(%q) != CompressID(%q)", tc.equal, tc.in)
			}
		})
	}
}

func TestCompressIDIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := CompressID(s)
		return CompressID(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompressIDNeverContainsDelimiters(t *testing.T) {
	f := func(s string) bool {
		return !strings.ContainsAny(CompressID(s), " \t\n\r,();")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompressIDDistinguishesTokens(t *testing.T) {
	// Collapsing must not merge distinct tokens into one.
	a := CompressID("select ab")
	b := CompressID("select a b")
	if a == b {
		t.Fatalf("token boundary lost: %q == %q", a, b)
	}
}

func TestSignatureDeterministic(t *testing.T) {
	if Signature("abc") != Signature("abc") {
		t.Fatal("signature is not deterministic")
	}
	if Signature("abc") == Signature("abd") {
		t.Fatal("trivially distinct strings collide (FNV-1a should separate them)")
	}
}

func TestSignatureKnownValue(t *testing.T) {
	// FNV-1a of the empty string is the offset basis.
	if got := Signature(""); got != 14695981039346656037 {
		t.Fatalf("Signature(\"\") = %d, want FNV-1a offset basis", got)
	}
}

func TestSignatureSpread(t *testing.T) {
	// Signatures of similar query strings should not cluster: check that
	// 1000 generated IDs produce close to 1000 distinct signatures.
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[Signature(CompressID("select sum(x) from t where k = "+strings.Repeat("i", i%7)+string(rune('a'+i%26))))] = true
	}
	if len(seen) < 170 { // IDs themselves repeat (7×26 distinct), all must hash apart
		t.Fatalf("only %d distinct signatures", len(seen))
	}
}
