package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLNCStarGreedyOrder(t *testing.T) {
	items := []Item{
		{ID: "low", Prob: 0.1, Cost: 10, Size: 10},   // density 0.1
		{ID: "high", Prob: 0.9, Cost: 100, Size: 10}, // density 9
		{ID: "mid", Prob: 0.5, Cost: 20, Size: 10},   // density 1
	}
	sel := LNCStar(items, 20)
	if !sel[1] || !sel[2] || sel[0] {
		t.Fatalf("selection = %v, want the two densest items", sel)
	}
}

func TestLNCStarStopsAtFirstViolation(t *testing.T) {
	// The paper's construction stops when the next item violates the
	// budget (it does not skip ahead).
	items := []Item{
		{ID: "a", Prob: 1, Cost: 100, Size: 8}, // density 12.5
		{ID: "b", Prob: 1, Cost: 50, Size: 8},  // density 6.25, does not fit
		{ID: "c", Prob: 1, Cost: 1, Size: 2},   // density 0.5, would fit
	}
	sel := LNCStar(items, 10)
	if !sel[0] || sel[1] || sel[2] {
		t.Fatalf("selection = %v, want greedy prefix {a} only", sel)
	}
}

func TestLNCStarOptimalUnderExactFill(t *testing.T) {
	// Theorem 1: when every feasible solution fills the cache exactly
	// (equal sizes dividing the capacity), the greedy choice is optimal.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(5)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				ID:   fmt.Sprintf("i%d", i),
				Prob: rng.Float64(),
				Cost: float64(rng.Intn(100) + 1),
				Size: 10, // uniform sizes → exact fill
			}
		}
		capacity := int64(10 * (2 + rng.Intn(n-3)))
		greedy := LNCStar(items, capacity)
		opt, err := OptimalKnapsack(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		g := ExpectedCostSavings(items, greedy)
		o := ExpectedCostSavings(items, opt)
		if !approxEq(g, o) {
			t.Fatalf("trial %d: greedy %.6f < optimal %.6f under exact fill", trial, g, o)
		}
		if !PackedExactly(items, greedy, capacity) {
			t.Fatalf("trial %d: greedy did not fill the cache exactly", trial)
		}
	}
}

func TestLNCStarNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				ID:   fmt.Sprintf("i%d", i),
				Prob: rng.Float64(),
				Cost: rng.Float64() * 100,
				Size: rng.Int63n(50) + 1,
			}
		}
		capacity := rng.Int63n(200) + 1
		sel := LNCStar(items, capacity)
		var used int64
		for i := range sel {
			used += items[i].Size
		}
		return used <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimalKnapsackExhaustive(t *testing.T) {
	items := []Item{
		{ID: "a", Prob: 0.5, Cost: 10, Size: 6}, // value 5
		{ID: "b", Prob: 0.5, Cost: 8, Size: 5},  // value 4
		{ID: "c", Prob: 0.5, Cost: 7, Size: 5},  // value 3.5
	}
	// Capacity 10: greedy takes {a} (density 0.833), optimum is {b, c}
	// with value 7.5 > 5.
	opt, err := OptimalKnapsack(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if opt[0] || !opt[1] || !opt[2] {
		t.Fatalf("opt = %v, want {b, c}", opt)
	}
	greedy := LNCStar(items, 10)
	if ExpectedCostSavings(items, greedy) >= ExpectedCostSavings(items, opt) {
		t.Fatal("this instance is constructed to beat greedy; the exact solver must find it")
	}
}

func TestOptimalKnapsackLimit(t *testing.T) {
	items := make([]Item, 25)
	if _, err := OptimalKnapsack(items, 10); err == nil {
		t.Fatal("exhaustive solver must refuse more than 24 items")
	}
}

func TestExpectedCostMetrics(t *testing.T) {
	items := []Item{
		{ID: "a", Prob: 0.25, Cost: 100, Size: 1},
		{ID: "b", Prob: 0.75, Cost: 20, Size: 1},
	}
	cached := map[int]bool{0: true}
	// Miss cost: 0.75 × 20 = 15; savings: 25 / 40 = 0.625.
	if got := ExpectedMissCost(items, cached); got != 15 {
		t.Fatalf("miss cost = %g, want 15", got)
	}
	if got := ExpectedCostSavings(items, cached); got != 0.625 {
		t.Fatalf("savings = %g, want 0.625", got)
	}
	if got := ExpectedCostSavings(nil, nil); got != 0 {
		t.Fatalf("degenerate savings = %g, want 0", got)
	}
}

func TestMissCostPlusSavingsComplement(t *testing.T) {
	// For any selection: savings + missCost/totalValue = 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 1
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Prob: rng.Float64() + 0.01,
				Cost: rng.Float64()*100 + 1,
				Size: rng.Int63n(20) + 1,
			}
		}
		cached := make(map[int]bool)
		for i := range items {
			if rng.Intn(2) == 0 {
				cached[i] = true
			}
		}
		var total float64
		for _, it := range items {
			total += it.Prob * it.Cost
		}
		return approxEq(ExpectedCostSavings(items, cached)+ExpectedMissCost(items, cached)/total, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLNCStarConvergenceOfOnlineLNCRA(t *testing.T) {
	// §2.3's asymptotic claim, miniaturized: under a stationary reference
	// distribution the online LNC-RA's steady-state cost savings should
	// approach the offline LNC* selection's expected savings.
	rng := rand.New(rand.NewSource(17))
	n := 30
	items := make([]Item, n)
	var probSum float64
	for i := range items {
		items[i] = Item{
			ID:   fmt.Sprintf("q%d", i),
			Prob: rng.Float64() + 0.02,
			Cost: float64(rng.Intn(900) + 100),
			Size: rng.Int63n(150) + 20,
		}
		probSum += items[i].Prob
	}
	capacity := int64(0)
	for _, it := range items {
		capacity += it.Size
	}
	capacity /= 3

	offline := ExpectedCostSavings(items, LNCStar(items, capacity))

	c, err := New(Config{Capacity: capacity, K: 4, Policy: LNCRA})
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	var refs, hits, costAll, costHit float64
	warmup := 4000
	for i := 0; i < 20000; i++ {
		now += rng.ExpFloat64()
		x := rng.Float64() * probSum
		var pick int
		for j := range items {
			x -= items[j].Prob
			if x < 0 {
				pick = j
				break
			}
		}
		it := items[pick]
		hit, _ := c.Reference(Request{QueryID: it.ID, Time: now, Size: it.Size, Cost: it.Cost})
		if i >= warmup {
			refs++
			costAll += it.Cost
			if hit {
				hits++
				costHit += it.Cost
			}
		}
	}
	online := costHit / costAll
	// The online policy pays for misses that refresh statistics, so allow
	// a modest gap — but it must land in the offline optimum's ballpark.
	if online < offline-0.15 {
		t.Fatalf("online LNC-RA steady state %.3f far below offline LNC* %.3f", online, offline)
	}
}
