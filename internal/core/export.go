package core

// Chunked state export: the incremental counterpart of ExportState. A
// concurrent wrapper that cannot afford one long critical section per
// shard captures the cache-level header once (ExportBegin), then drains
// the entries in bounded slices (ExportChunk), re-acquiring its lock
// around each call. The cursor's sorted ID list is the epoch fence:
// entries present at ExportBegin are visited exactly once, in the same
// ascending-ID order ExportState uses, so a quiesced chunked export
// concatenates to exactly the ExportState output. Entries that vanish
// between chunks (eviction, invalidation) are skipped; entries mutated
// between chunks export their current state — both shapes RestoreState
// tolerates (see docs/PERSISTENCE.md, "Streaming capture & consistency").

import "sort"

// ExportCursor is an in-progress chunked export of one cache. Create it
// with ExportBegin and drain it with ExportChunk; both must run under
// the same external synchronization that guards every other cache call.
type ExportCursor struct {
	// Header is the cache-level state captured at ExportBegin: every
	// CacheState field except Entries, which stays nil — entries travel
	// through ExportChunk instead.
	Header *CacheState

	// ids is the fence: the sorted IDs of every record present at
	// ExportBegin. pos is the next one to visit.
	ids []string
	pos int
}

// Remaining returns how many fenced IDs have not been visited yet. It
// reaches zero exactly when ExportChunk has drained the cursor; some of
// the remaining IDs may still export to nothing if their entries vanish
// before their chunk.
func (cur *ExportCursor) Remaining() int { return len(cur.ids) - cur.pos }

// ExportBegin starts a chunked export: it captures the cache-level
// header (clock, λ context, Stats) and fences the set of records to
// visit, but copies no entries — that is ExportChunk's job, so the
// caller's lock hold here is O(index) pointer walking, not O(bytes).
func (c *Cache) ExportBegin() *ExportCursor {
	cur := &ExportCursor{
		Header: &CacheState{
			Capacity:         c.cfg.Capacity,
			K:                c.cfg.K,
			Policy:           c.cfg.Policy,
			Clock:            c.now,
			FirstTime:        c.firstTime,
			HaveFirst:        c.haveFirst,
			MinDt:            c.rc.minDt,
			MissesSincePrune: c.missesSincePrune,
			Stats:            c.stats,
		},
		ids: make([]string, 0, c.resident+len(c.retained)),
	}
	for _, bucket := range c.index {
		for _, e := range bucket {
			cur.ids = append(cur.ids, e.ID)
		}
	}
	sort.Strings(cur.ids)
	return cur
}

// ExportChunk exports up to maxEntries of the cursor's remaining records
// into scratch, reusing its elements' RefTimes and Relations capacity,
// and returns the filled prefix plus whether records remain. The
// returned slice aliases scratch and is valid only until the next call
// with the same scratch — the caller must consume (encode) it first.
// Fenced entries that no longer exist are skipped; ones that mutated
// since ExportBegin export their current state.
func (c *Cache) ExportChunk(cur *ExportCursor, maxEntries int, scratch []EntryState) ([]EntryState, bool) {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	filled := 0
	for filled < maxEntries && cur.pos < len(cur.ids) {
		id := cur.ids[cur.pos]
		cur.pos++
		e := c.lookup(id, Signature(id))
		if e == nil {
			continue
		}
		if filled < len(scratch) {
			exportEntryInto(e, &scratch[filled])
		} else {
			scratch = append(scratch, EntryState{})
			exportEntryInto(e, &scratch[len(scratch)-1])
		}
		filled++
	}
	return scratch[:filled], cur.pos < len(cur.ids)
}

// exportEntryInto copies one entry into st, overwriting every field and
// reusing st's slice capacity. Payload and Plan are shared interface
// values, exactly as exportEntry shares them: both are immutable by
// system-wide convention.
func exportEntryInto(e *Entry, st *EntryState) {
	st.ID = e.ID
	st.Size = e.Size
	st.Cost = e.Cost
	st.Class = e.Class
	st.Resident = e.resident
	st.RefTimes = e.window.exportInto(st.RefTimes[:0])
	st.TotalRefs = e.window.totalRefs()
	st.Payload = e.Payload
	st.Plan = e.Plan
	st.Relations = st.Relations[:0]
	st.Relations = append(st.Relations, e.Relations...)
}
