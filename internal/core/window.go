package core

// refWindow records the last K reference times of a retrieved set. It backs
// the paper's sliding-window estimate of the average reference rate (§2.1):
//
//	λᵢ = K / (t − t_K)
//
// where t is the current time and t_K the time of the K-th most recent
// reference. When fewer than K references have been observed, the maximal
// available number is used (§2.1, §2.2). Including the current time t ages
// sets that are no longer referenced without requiring explicit updates.
type refWindow struct {
	// times is a ring buffer of the most recent reference times; head is
	// the index of the most recent one.
	times []float64
	head  int
	// n is the number of valid times, at most len(times).
	n int
	// total counts every reference ever recorded, beyond the window.
	total int64
}

// newRefWindow creates a window holding up to k reference times; k must be
// at least 1.
func newRefWindow(k int) refWindow {
	if k < 1 {
		k = 1
	}
	return refWindow{times: make([]float64, k)}
}

// record appends a reference at time t.
func (w *refWindow) record(t float64) {
	if w.n == 0 {
		w.head = 0
	} else {
		w.head = (w.head + 1) % len(w.times)
	}
	w.times[w.head] = t
	if w.n < len(w.times) {
		w.n++
	}
	w.total++
}

// count returns the number of reference times available, in [0, K].
func (w *refWindow) count() int { return w.n }

// totalRefs returns the lifetime reference count.
func (w *refWindow) totalRefs() int64 { return w.total }

// last returns the most recent reference time, or 0 when empty.
func (w *refWindow) last() float64 {
	if w.n == 0 {
		return 0
	}
	return w.times[w.head]
}

// kth returns the oldest reference time in the window (the t_K of the λ
// formula when the window is full, or t_k with k = count otherwise). It
// returns 0 when the window is empty.
func (w *refWindow) kth() float64 {
	if w.n == 0 {
		return 0
	}
	idx := (w.head - (w.n - 1) + len(w.times)*2) % len(w.times)
	return w.times[idx]
}

// rateEpsilon bounds the λ denominator away from zero so that references
// arriving at identical timestamps yield a very large but finite rate.
const rateEpsilon = 1e-9

// rate returns the estimated average reference rate at time now, or 0 when
// no references have been recorded. The denominator is floored at minDt.
//
// The floor matters because λ = k/(t − t_k) diverges when a set is
// evaluated at the instant of its own (few) references: a set referenced
// once, right now, would look infinitely profitable and poison both sides
// of the LNC-A admission comparison. Flooring the elapsed time at the
// cache's observed mean inter-arrival gap gives such sets a high but sane
// initial rate — "about one reference per arrival" — that then ages
// normally. The paper's formula (3) leaves the t → t_K limit unspecified;
// this is the deviation that resolves it, recorded in DESIGN.md.
func (w *refWindow) rate(now, minDt float64) float64 {
	if w.n == 0 {
		return 0
	}
	dt := now - w.kth()
	if dt < minDt {
		dt = minDt
	}
	if dt < rateEpsilon {
		dt = rateEpsilon
	}
	return float64(w.n) / dt
}

// exportInto appends the window's valid reference times, oldest first,
// onto out and returns the extended slice. It is the allocation-reusing
// form of export (see state.go) for the chunked export path.
func (w *refWindow) exportInto(out []float64) []float64 {
	for i := 0; i < w.n; i++ {
		idx := (w.head - (w.n - 1 - i) + len(w.times)*2) % len(w.times)
		out = append(out, w.times[idx])
	}
	return out
}

// clone returns a deep copy of the window.
func (w *refWindow) clone() refWindow {
	cp := *w
	cp.times = make([]float64, len(w.times))
	copy(cp.times, w.times)
	return cp
}
