package core

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestScanEvictorMinimalPrefix(t *testing.T) {
	ev := newEvictor(ScanEvictor, ranker{policy: LCS})
	sizes := []int64{100, 300, 50, 200}
	for i, s := range sizes {
		ev.add(mkEntry(fmt.Sprintf("e%d", i), s, 1, 1, float64(i)), float64(i))
	}
	// LCS evicts largest first: 300, then 200 covers need 400.
	c := ev.candidates(400, 10)
	if len(c) != 2 || c[0].Size != 300 || c[1].Size != 200 {
		t.Fatalf("candidates = %v", sizesOf(c))
	}
}

func sizesOf(es []*Entry) []int64 {
	out := make([]int64, len(es))
	for i, e := range es {
		out[i] = e.Size
	}
	return out
}

func TestScanEvictorInsufficient(t *testing.T) {
	ev := newEvictor(ScanEvictor, ranker{policy: LRU})
	ev.add(mkEntry("a", 10, 1, 1, 1), 1)
	if c := ev.candidates(100, 5); c != nil {
		t.Fatalf("expected nil when space cannot be covered, got %v", sizesOf(c))
	}
}

func TestScanEvictorRemove(t *testing.T) {
	ev := newEvictor(ScanEvictor, ranker{policy: LRU})
	a := mkEntry("a", 10, 1, 1, 1)
	b := mkEntry("b", 10, 1, 1, 2)
	ev.add(a, 1)
	ev.add(b, 2)
	ev.remove(a)
	if ev.count() != 1 {
		t.Fatalf("count = %d, want 1", ev.count())
	}
	c := ev.candidates(10, 5)
	if len(c) != 1 || c[0] != b {
		t.Fatal("removed entry still produced as candidate")
	}
}

func TestScanEvictorDeterministicTies(t *testing.T) {
	// Entries with identical rank keys must be ordered by ID.
	ev := newEvictor(ScanEvictor, ranker{policy: LRU})
	for _, id := range []string{"zeta", "alpha", "mid"} {
		ev.add(mkEntry(id, 10, 1, 1, 5), 5)
	}
	c := ev.candidates(20, 9)
	if len(c) != 2 || c[0].ID != "alpha" || c[1].ID != "mid" {
		t.Fatalf("tie-break order wrong: %v", []string{c[0].ID, c[1].ID})
	}
}

func TestHeapEvictorMatchesScanOnStaticKeys(t *testing.T) {
	// For policies with static keys (LRU, LFU, LCS), scan and heap must
	// select identical candidate lists.
	for _, policy := range []PolicyKind{LRU, LFU, LCS} {
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			scan := newEvictor(ScanEvictor, ranker{policy: policy})
			heapE := newEvictor(HeapEvictor, ranker{policy: policy})
			var entries []*Entry
			now := 0.0
			for i := 0; i < 200; i++ {
				now += rng.Float64()
				e := mkEntry(fmt.Sprintf("e%03d", i), rng.Int63n(100)+1, float64(rng.Intn(1000)+1), 2, now)
				entries = append(entries, e)
				scan.add(e, now)
				heapE.add(e, now)
			}
			// Touch a random subset to vary the keys.
			for i := 0; i < 100; i++ {
				now += rng.Float64()
				e := entries[rng.Intn(len(entries))]
				e.window.record(now)
				scan.touch(e, now)
				heapE.touch(e, now)
			}
			for _, need := range []int64{1, 50, 500, 2000} {
				cs := scan.candidates(need, now+10)
				ch := heapE.candidates(need, now+10)
				if len(cs) != len(ch) {
					t.Fatalf("need %d: scan %d candidates, heap %d", need, len(cs), len(ch))
				}
				for i := range cs {
					if cs[i] != ch[i] {
						t.Fatalf("need %d: candidate %d differs: %s vs %s", need, i, cs[i].ID, ch[i].ID)
					}
				}
			}
		})
	}
}

func TestHeapEvictorNonDestructive(t *testing.T) {
	ev := newEvictor(HeapEvictor, ranker{policy: LRU})
	for i := 0; i < 10; i++ {
		ev.add(mkEntry(fmt.Sprintf("e%d", i), 10, 1, 1, float64(i)), float64(i))
	}
	first := ev.candidates(30, 20)
	second := ev.candidates(30, 20)
	if len(first) != len(second) {
		t.Fatalf("repeated candidate calls differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("candidates must not consume the heap")
		}
	}
}

func TestHeapEvictorRemoveIsLazy(t *testing.T) {
	ev := newEvictor(HeapEvictor, ranker{policy: LRU}).(*heapEvictor)
	a := mkEntry("a", 10, 1, 1, 1)
	ev.add(a, 1)
	ev.remove(a)
	if ev.count() != 0 {
		t.Fatalf("count = %d, want 0", ev.count())
	}
	if c := ev.candidates(5, 2); c != nil {
		t.Fatal("removed entry returned as candidate")
	}
}

func TestHeapEvictorCompaction(t *testing.T) {
	ev := newEvictor(HeapEvictor, ranker{policy: LRU}).(*heapEvictor)
	// Create heavy churn so stale items accumulate, then verify compaction
	// keeps the heap bounded and correct.
	var live []*Entry
	for i := 0; i < 500; i++ {
		e := mkEntry(fmt.Sprintf("e%d", i), 10, 1, 1, float64(i))
		ev.add(e, float64(i))
		live = append(live, e)
		if i%2 == 1 {
			ev.remove(live[i-1])
		}
	}
	if got := ev.count(); got != 250 {
		t.Fatalf("count = %d, want 250", got)
	}
	c := ev.candidates(10*250, 1e6)
	if len(c) != 250 {
		t.Fatalf("candidates covered %d entries, want all 250", len(c))
	}
	if len(ev.h) > 4*ev.n+64 {
		t.Fatalf("heap not compacted: %d items for %d entries", len(ev.h), ev.n)
	}
}

func TestHeapEvictorDecayedKeysStillOrdered(t *testing.T) {
	// LNC profits decay between touches. After a long pause the heap must
	// still produce victims in (near-)profit order thanks to refresh.
	ev := newEvictor(HeapEvictor, ranker{policy: LNCR})
	a := mkEntry("a", 10, 100, 2, 1, 2)    // stale
	b := mkEntry("b", 10, 100, 2, 90, 95)  // fresh
	c := mkEntry("c", 10, 5000, 2, 90, 95) // fresh and expensive
	ev.add(a, 2)
	ev.add(b, 95)
	ev.add(c, 95)
	// The heap evictor is approximate for decaying keys: it may pick
	// either of the two low-profit entries first, but never the clearly
	// highest-profit one.
	victims := ev.candidates(10, 1000)
	if len(victims) != 1 {
		t.Fatalf("want one victim, got %d", len(victims))
	}
	if victims[0] == c {
		t.Fatalf("highest-profit entry selected first: %s", victims[0].ID)
	}
	// Covering everything must rank c last even with stale keys refreshed.
	all := ev.candidates(30, 1000)
	if len(all) != 3 || all[2] != c {
		t.Fatalf("full cover must put the high-profit entry last: %v",
			[]string{all[0].ID, all[1].ID, all[2].ID})
	}
}

func TestEvictorKindString(t *testing.T) {
	if ScanEvictor.String() != "scan" || HeapEvictor.String() != "heap" {
		t.Fatal("evictor kind names wrong")
	}
}
