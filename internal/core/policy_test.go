package core

import (
	"testing"
)

// mkEntry builds a resident entry with the given reference times.
func mkEntry(id string, size int64, cost float64, k int, refs ...float64) *Entry {
	e := &Entry{ID: id, Sig: Signature(id), Size: size, Cost: cost}
	e.window = newRefWindow(k)
	for _, r := range refs {
		e.window.record(r)
	}
	return e
}

func TestPolicyKindString(t *testing.T) {
	cases := map[PolicyKind]string{
		LRU: "LRU", LRUK: "LRU-K", LFU: "LFU", LCS: "LCS",
		LNCR: "LNC-R", LNCRA: "LNC-RA", PolicyKind(99): "PolicyKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestPolicyKindFlags(t *testing.T) {
	if !LNCRA.HasAdmission() {
		t.Error("LNC-RA must run admission")
	}
	for _, p := range []PolicyKind{LRU, LRUK, LFU, LCS, LNCR} {
		if p.HasAdmission() {
			t.Errorf("%s must not run admission", p)
		}
	}
	for _, p := range []PolicyKind{LRUK, LNCR, LNCRA} {
		if !p.RetainsRefInfo() {
			t.Errorf("%s must retain reference info", p)
		}
	}
	for _, p := range []PolicyKind{LRU, LFU, LCS} {
		if p.RetainsRefInfo() {
			t.Errorf("%s must not retain reference info", p)
		}
	}
}

func TestRankLRU(t *testing.T) {
	r := ranker{policy: LRU}
	old := mkEntry("old", 1, 1, 1, 10)
	recent := mkEntry("recent", 1, 1, 1, 50)
	to, ko := r.rank(old, 100)
	tr, kr := r.rank(recent, 100)
	if to != tr {
		t.Fatal("LRU uses a single tier")
	}
	if ko >= kr {
		t.Fatal("older last reference must rank lower (evicted first)")
	}
}

func TestRankLRUK(t *testing.T) {
	r := ranker{policy: LRUK}
	partial := mkEntry("partial", 1, 1, 3, 90) // 1 of 3 references
	full := mkEntry("full", 1, 1, 3, 10, 20, 30)
	tp, _ := r.rank(partial, 100)
	tf, kf := r.rank(full, 100)
	if tp >= tf {
		t.Fatal("incomplete windows must be evicted before complete ones")
	}
	if kf != 10 {
		t.Fatalf("full-window key = %g, want K-th most recent reference 10", kf)
	}
}

func TestRankLFU(t *testing.T) {
	r := ranker{policy: LFU}
	rare := mkEntry("rare", 1, 1, 2, 1)
	frequent := mkEntry("freq", 1, 1, 2, 1, 2)
	frequent.window.record(3) // 3 lifetime references
	_, kr := r.rank(rare, 10)
	_, kf := r.rank(frequent, 10)
	if kr >= kf {
		t.Fatal("less frequently used must rank lower")
	}
}

func TestRankLCS(t *testing.T) {
	r := ranker{policy: LCS}
	small := mkEntry("small", 10, 1, 1, 1)
	big := mkEntry("big", 1000, 1, 1, 1)
	_, ks := r.rank(small, 10)
	_, kb := r.rank(big, 10)
	if kb >= ks {
		t.Fatal("largest set must rank lowest (evicted first)")
	}
}

func TestRankLNCProfitOrder(t *testing.T) {
	r := ranker{policy: LNCR}
	// Same reference history; profit differs through cost/size.
	cheapBig := mkEntry("cheapBig", 1000, 10, 4, 10, 20)
	dearSmall := mkEntry("dearSmall", 10, 1000, 4, 10, 20)
	tc, kc := r.rank(cheapBig, 100)
	td, kd := r.rank(dearSmall, 100)
	if tc != td {
		t.Fatal("equal reference counts must share a tier")
	}
	if kc >= kd {
		t.Fatal("low-profit set must rank lower")
	}
}

func TestRankLNCStrictTiers(t *testing.T) {
	strict := ranker{policy: LNCRA, strictTiers: true}
	relaxed := ranker{policy: LNCRA}
	oneRef := mkEntry("one", 10, 1e6, 4, 90) // huge profit, one reference
	fourRef := mkEntry("four", 10, 1, 4, 10, 20, 30, 40)

	t1, _ := strict.rank(oneRef, 100)
	t4, _ := strict.rank(fourRef, 100)
	if t1 >= t4 {
		t.Fatal("strict tiers: fewer references must be evicted first regardless of profit")
	}

	r1, k1 := relaxed.rank(oneRef, 100)
	r4, k4 := relaxed.rank(fourRef, 100)
	if r1 != r4 {
		t.Fatal("relaxed ranking must use a single tier")
	}
	if k1 <= k4 {
		t.Fatal("relaxed ranking must order by profit")
	}
}

func TestRankLNCAgingChangesOrder(t *testing.T) {
	r := ranker{policy: LNCR}
	// Two sets with equal cost/size: the one referenced more recently (and
	// more densely) must outrank the stale one, and the gap must narrow as
	// time passes (aging).
	stale := mkEntry("stale", 10, 100, 2, 1, 2)
	fresh := mkEntry("fresh", 10, 100, 2, 90, 95)
	_, ks := r.rank(stale, 100)
	_, kf := r.rank(fresh, 100)
	if ks >= kf {
		t.Fatal("stale set must rank below fresh set")
	}
	_, ksLater := r.rank(stale, 10000)
	_, kfLater := r.rank(fresh, 10000)
	if ratioNow, ratioLater := kf/ks, kfLater/ksLater; ratioLater >= ratioNow {
		t.Fatalf("aging must narrow the profit gap: %g -> %g", ratioNow, ratioLater)
	}
}

func TestProfitFormula(t *testing.T) {
	e := mkEntry("e", 50, 1000, 2, 10, 20)
	// profit = λ·c/s with λ = 2/(100−10).
	want := (2.0 / 90) * 1000 / 50
	if got := e.Profit(100); got != want {
		t.Fatalf("Profit = %g, want %g", got, want)
	}
	if got := e.EProfit(); got != 20 {
		t.Fatalf("EProfit = %g, want 20", got)
	}
}

func TestProfitZeroSize(t *testing.T) {
	e := mkEntry("z", 0, 100, 1, 1)
	if e.Profit(10) != 0 || e.EProfit() != 0 {
		t.Fatal("zero-size entries must have zero profit, not NaN/Inf")
	}
}

func TestProfitAggregates(t *testing.T) {
	a := mkEntry("a", 100, 500, 2, 10, 20)
	b := mkEntry("b", 300, 900, 2, 30, 40)
	now := 100.0
	wantNum := a.Rate(now)*a.Cost + b.Rate(now)*b.Cost
	if got, want := profitOf([]*Entry{a, b}, now), wantNum/400; got != want {
		t.Fatalf("profitOf = %g, want %g", got, want)
	}
	if got, want := eprofitOf([]*Entry{a, b}), (500.0+900)/400; got != want {
		t.Fatalf("eprofitOf = %g, want %g", got, want)
	}
	if profitOf(nil, now) != 0 || eprofitOf(nil) != 0 {
		t.Fatal("empty candidate lists must have zero profit")
	}
}
