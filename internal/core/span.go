package core

// This file is the core half of the flight recorder: the reference
// lifecycle optionally times itself through its named stages (lookup →
// derive → load → admit → insert/evict) into a per-cache scratch Span and
// hands the completed span to a configured SpanSink. The instrumentation
// follows the telemetry spine's contract — zero overhead when disabled
// (every hook is a nil check on Config.Tracer), no allocation when
// enabled (the scratch span lives on the Cache and is passed by value),
// and sinks run under the cache's execution context.

// Stage indexes one lifecycle stage of a reference span. The stages are
// the named steps of the reference lifecycle; a span accumulates wall
// nanoseconds per stage as the reference moves through them.
type Stage uint8

// The lifecycle stages, in hot-path order.
const (
	// StageLookup is the index probe locating the entry (or not).
	StageLookup Stage = iota
	// StageDerive is time spent consulting the semantic deriver — inline
	// on the Reference miss path, or attributed from the singleflight
	// flight via Request.ExecNanos on the concurrent Load path.
	StageDerive
	// StageLoad is loader execution time attributed by the concurrent
	// front via Request.ExecNanos; the core never runs loaders itself.
	StageLoad
	// StageAdmit covers reference accounting, victim selection and the
	// LNC-A profit comparison of the miss path.
	StageAdmit
	// StageInsert is the residency commit of an admitted set.
	StageInsert
	// StageEvict covers evicting the victim batch of an admission.
	StageEvict
	// StageApply is the deferred-application stage of the buffered hit
	// path: the time a promotion spent queued between the lock-free hit
	// and the shard worker charging its recency/λ bookkeeping.
	StageApply

	// NumStages is the number of stages; keep last.
	NumStages
)

// String names the stage for metrics and logs.
func (s Stage) String() string {
	switch s {
	case StageLookup:
		return "lookup"
	case StageDerive:
		return "derive"
	case StageLoad:
		return "load"
	case StageAdmit:
		return "admit"
	case StageInsert:
		return "insert"
	case StageEvict:
		return "evict"
	case StageApply:
		return "apply"
	default:
		return "unknown"
	}
}

// Span is the flight-recorder record of one reference: its identity and
// outcome, monotonic per-stage timings, and the decision inputs the
// admission gate evaluated. Spans are passed by value; they never point
// into live cache state.
type Span struct {
	// ID is the compressed query ID.
	ID string
	// Class is the workload class of the reference.
	Class int
	// Outcome is the reference's lifecycle outcome (Hit, HitDerived,
	// MissAdmitted, MissRejected or ExternalMiss).
	Outcome EventKind
	// Size and Cost are the request's retrieved-set size and execution
	// cost.
	Size int64
	// Cost is the execution cost in logical block reads.
	Cost float64
	// Time is the logical time of the reference.
	Time float64
	// Start is the span's begin timestamp in monotonic nanoseconds (an
	// ordering key, comparable across spans of one process only).
	Start int64
	// Stages holds wall nanoseconds accumulated per lifecycle stage.
	Stages [NumStages]int64
	// Total is the span's end-to-end wall nanoseconds, including loader
	// or derivation time attributed via Request.ExecNanos.
	Total int64
	// Decided reports whether an admission comparison ran; when false the
	// set was admitted into free space or rejected without a comparison
	// (too large to ever fit, or no victim set could free enough space).
	Decided bool
	// HasHistory reports whether the profit comparison used the sliding-
	// window estimates (true) or the e-profit estimates (false).
	HasHistory bool
	// Profit, Bar and Theta are the admission comparison's inputs: the
	// candidate's (estimated) profit, the victims' aggregate (estimated)
	// profit, and the admission threshold θ (zero when the admitter does
	// not report one). The rule is admit ⇔ profit > θ·bar.
	Profit, Bar, Theta float64
	// Lambda is the entry's reference-rate estimate λ after this
	// reference, and RefDepth the number of recorded reference times (≤ K).
	Lambda   float64
	RefDepth int
	// Victims is the number of entries evicted (admitted outcomes) or
	// proposed for eviction (rejected outcomes with a comparison).
	Victims int
	// AncestorID names the cached ancestor of a derived hit.
	AncestorID string
}

// SpanSink observes completed reference spans. Implementations run under
// the cache's execution context (single-threaded, or with the owning
// shard's mutex held), must not call back into the cache, and must be
// cheap: with a tracer attached every reference completes a span.
type SpanSink interface {
	ObserveSpan(Span)
}

// spanBegin resets the scratch span for a new reference. All span hooks
// compile to a nil check when no tracer is configured; the disabled hot
// path never reads the clock or touches the scratch span.
func (c *Cache) spanBegin(id string, class int, size int64, cost, now float64) {
	if c.tracer == nil {
		return
	}
	c.span = Span{ID: id, Class: class, Size: size, Cost: cost, Time: now, Start: monotonicNanos()}
	c.spanMark = c.span.Start
}

// spanStage closes the stage that began at the previous mark, attributing
// the elapsed monotonic nanoseconds to it.
func (c *Cache) spanStage(st Stage) {
	if c.tracer == nil {
		return
	}
	now := monotonicNanos()
	c.span.Stages[st] += now - c.spanMark
	c.spanMark = now
}

// spanCharge attributes externally measured nanoseconds to a stage — the
// concurrent front times loader executions and derivations outside the
// shard lock and reports them via Request.ExecNanos.
func (c *Cache) spanCharge(st Stage, nanos int64) {
	if c.tracer == nil || nanos <= 0 {
		return
	}
	c.span.Stages[st] += nanos
}

// spanEntry records the decision inputs derivable from the entry: its λ
// estimate and reference-window depth after the current reference.
func (c *Cache) spanEntry(e *Entry, now float64) {
	if c.tracer == nil || e == nil {
		return
	}
	c.span.Lambda = e.Rate(now)
	c.span.RefDepth = e.Refs()
}

// spanDecision records the admission gate's inputs on the scratch span.
func (c *Cache) spanDecision(outcome EventKind, dec admitOutcome, victims int) {
	if c.tracer == nil {
		return
	}
	c.span.Outcome = outcome
	c.span.Profit, c.span.Bar, c.span.Theta = dec.profit, dec.bar, dec.theta
	c.span.HasHistory, c.span.Decided = dec.hasHistory, dec.decided
	c.span.Victims = victims
}

// spanFinish stamps the outcome and submits the scratch span.
func (c *Cache) spanFinish(outcome EventKind) {
	if c.tracer == nil {
		return
	}
	c.span.Outcome = outcome
	c.spanSubmit()
}

// spanSubmit completes the scratch span with its total duration and hands
// it to the tracer. The miss path uses it directly: the outcome was
// already stamped by the admit/commit stage that resolved the reference.
func (c *Cache) spanSubmit() {
	if c.tracer == nil {
		return
	}
	c.span.Total = monotonicNanos() - c.span.Start
	c.tracer.ObserveSpan(c.span)
}
