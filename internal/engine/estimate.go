package engine

import (
	"fmt"
	"math"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Est is the analytic estimate for a plan: output cardinality, output size
// and execution cost in logical block reads.
type Est struct {
	// Rows is the expected output cardinality (fractional; expectations).
	Rows float64
	// Bytes is the expected retrieved-set size: Rows × output row width.
	Bytes float64
	// Cost is the expected number of logical block reads.
	Cost float64
	// Schema carries per-column distinct-value estimates for the output.
	Schema Schema
}

// yao returns the expected number of distinct pages touched when m rows are
// fetched at random from a relation occupying p pages (Cardenas/Yao
// approximation): p·(1 − (1 − 1/p)^m).
func yao(p, m float64) float64 {
	if p <= 1 {
		return math.Min(p, math.Max(m, 0))
	}
	if m <= 0 {
		return 0
	}
	// Compute via exp/log for numerical stability at large m.
	return p * -math.Expm1(m*math.Log1p(-1/p))
}

// cardenas returns the expected number of distinct values observed when n
// draws are made uniformly from a domain of d values: d·(1 − (1 − 1/d)^n).
func cardenas(d, n float64) float64 {
	if d <= 1 {
		return math.Min(d, math.Max(n, 0))
	}
	if n <= 0 {
		return 0
	}
	return d * -math.Expm1(n*math.Log1p(-1/d))
}

// Engine evaluates plans against a database.
type Engine struct {
	db    *relation.Database
	pager *storage.Pager
}

// New creates an engine over the database.
func New(db *relation.Database) *Engine {
	return &Engine{db: db}
}

// DB returns the engine's database.
func (e *Engine) DB() *relation.Database { return e.db }

// Estimate computes the analytic estimate for the plan.
func (e *Engine) Estimate(n Node) (Est, error) {
	switch t := n.(type) {
	case *Scan:
		return e.estimateScan(t)
	case *Join:
		return e.estimateJoin(t)
	case *Aggregate:
		return e.estimateAggregate(t)
	case *Project:
		return e.estimateProject(t)
	case *Sort:
		return e.estimateSort(t)
	default:
		return Est{}, fmt.Errorf("engine: estimate: unknown node type %T", n)
	}
}

// indexUsable reports whether the scan's index column has a predicate that
// can drive an index access, returning that predicate.
func indexUsable(s *Scan) (Pred, bool) {
	if s.Index == "" {
		return Pred{}, false
	}
	for _, p := range s.Preds {
		if p.Col == s.Index {
			return p, true
		}
	}
	return Pred{}, false
}

func (e *Engine) estimateScan(s *Scan) (Est, error) {
	rel, err := e.db.Relation(s.Rel)
	if err != nil {
		return Est{}, err
	}
	schema, err := s.Schema(e.db)
	if err != nil {
		return Est{}, err
	}
	rows := float64(rel.Rows)
	pages := float64(rel.Pages(e.db.PageSize))
	rpp := float64(rel.RowsPerPage(e.db.PageSize))

	// Combined selectivity of all predicates (attribute independence).
	sel := 1.0
	for i := range s.Preds {
		ci, err := rel.ColumnIndex(s.Preds[i].Col)
		if err != nil {
			return Est{}, err
		}
		sel *= s.Preds[i].selectivity(rel.Cardinality(ci))
	}
	outRows := rows * sel

	// Access-path cost.
	cost := pages
	if ip, ok := indexUsable(s); ok {
		ci := rel.MustColumnIndex(s.Index)
		matches := rows * ip.selectivity(rel.Cardinality(ci))
		if rel.Columns[ci].Kind == relation.KindSequential {
			// Clustered: matching rows are contiguous.
			cost = math.Min(pages, math.Max(1, math.Ceil(matches/rpp)))
		} else {
			// Unclustered: matching rows scatter across pages.
			cost = math.Min(pages, math.Max(1, math.Ceil(yao(pages, matches))))
		}
	}

	// Per-column distinct estimates, tightened by equality/range predicates.
	for i := range schema {
		card := schema[i].Card
		for _, p := range s.Preds {
			if p.Col != schema[i].Name {
				continue
			}
			if p.Op == OpEQ {
				card = 1
			} else {
				width := float64(p.Hi - p.Lo + 1)
				card = math.Min(card, math.Max(width, 1))
			}
		}
		schema[i].Card = math.Min(card, math.Max(outRows, 1))
	}
	return Est{
		Rows:   outRows,
		Bytes:  outRows * float64(schema.RowWidth()),
		Cost:   cost,
		Schema: schema,
	}, nil
}

func (e *Engine) estimateJoin(j *Join) (Est, error) {
	left, err := e.Estimate(j.Left)
	if err != nil {
		return Est{}, err
	}
	right, err := e.Estimate(j.Right)
	if err != nil {
		return Est{}, err
	}
	li := left.Schema.Index(j.LeftCol)
	ri := right.Schema.Index(j.RightCol)
	if li < 0 || ri < 0 {
		return Est{}, fmt.Errorf("engine: join: column %q/%q not in inputs", j.LeftCol, j.RightCol)
	}
	denom := math.Max(left.Schema[li].Card, right.Schema[ri].Card)
	if denom < 1 {
		denom = 1
	}
	outRows := left.Rows * right.Rows / denom

	schema := make(Schema, 0, len(left.Schema)+len(right.Schema))
	schema = append(schema, left.Schema...)
	schema = append(schema, right.Schema...)
	for i := range schema {
		schema[i].Card = math.Min(schema[i].Card, math.Max(outRows, 1))
	}
	return Est{
		Rows:   outRows,
		Bytes:  outRows * float64(schema.RowWidth()),
		Cost:   left.Cost + right.Cost,
		Schema: schema,
	}, nil
}

// maxGroupDomain caps the modeled group-key domain so products of large
// cardinalities do not overflow the estimate; beyond the input size the cap
// is irrelevant because cardenas saturates at the number of input rows.
const maxGroupDomain = 1e15

func (e *Engine) estimateAggregate(a *Aggregate) (Est, error) {
	in, err := e.Estimate(a.Input)
	if err != nil {
		return Est{}, err
	}
	schema, err := a.Schema(e.db)
	if err != nil {
		return Est{}, err
	}
	groups := 1.0
	if len(a.GroupBy) > 0 {
		domain := 1.0
		for _, g := range a.GroupBy {
			gi := in.Schema.Index(g)
			if gi < 0 {
				return Est{}, fmt.Errorf("engine: aggregate: no group-by column %q", g)
			}
			domain = math.Min(domain*in.Schema[gi].Card, maxGroupDomain)
		}
		groups = cardenas(domain, in.Rows)
	}
	if groups > in.Rows && in.Rows > 0 {
		groups = in.Rows
	}
	for i := range schema {
		if schema[i].Card == 0 {
			schema[i].Card = math.Max(groups, 1) // aggregate outputs
		} else {
			schema[i].Card = math.Min(schema[i].Card, math.Max(groups, 1))
		}
	}
	return Est{
		Rows:   groups,
		Bytes:  groups * float64(schema.RowWidth()),
		Cost:   in.Cost,
		Schema: schema,
	}, nil
}

func (e *Engine) estimateProject(p *Project) (Est, error) {
	in, err := e.Estimate(p.Input)
	if err != nil {
		return Est{}, err
	}
	schema, err := p.Schema(e.db)
	if err != nil {
		return Est{}, err
	}
	// Rebind column card estimates from the input (Schema() resolves from
	// base relations; the input may have tightened them). Lookup goes by
	// the source column name, since the output may be renamed.
	for i := range schema {
		if j := in.Schema.Index(p.Cols[i]); j >= 0 {
			schema[i].Card = in.Schema[j].Card
		}
	}
	outRows := in.Rows
	if p.Dedup {
		domain := 1.0
		for i := range schema {
			domain = math.Min(domain*math.Max(schema[i].Card, 1), maxGroupDomain)
		}
		outRows = cardenas(domain, in.Rows)
	}
	for i := range schema {
		schema[i].Card = math.Min(schema[i].Card, math.Max(outRows, 1))
	}
	return Est{
		Rows:   outRows,
		Bytes:  outRows * float64(schema.RowWidth()),
		Cost:   in.Cost,
		Schema: schema,
	}, nil
}

func (e *Engine) estimateSort(s *Sort) (Est, error) {
	in, err := e.Estimate(s.Input)
	if err != nil {
		return Est{}, err
	}
	outRows := in.Rows
	if s.Limit > 0 {
		outRows = math.Min(outRows, float64(s.Limit))
	}
	schema := in.Schema
	for i := range schema {
		schema[i].Card = math.Min(schema[i].Card, math.Max(outRows, 1))
	}
	return Est{
		Rows:   outRows,
		Bytes:  outRows * float64(schema.RowWidth()),
		Cost:   in.Cost,
		Schema: schema,
	}, nil
}
