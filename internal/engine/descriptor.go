package engine

import "fmt"

// This file defines the plan descriptor — the serializable summary of a
// plan that the semantic derivation subsystem (internal/derive) matches
// and rewrites against. A descriptor covers the derivable plan shapes: a
// predicated, projected scan of one base relation, optionally topped by a
// group-by aggregate. Join plans are not describable; they fall back to
// exact-match caching only.
//
// Descriptors travel everywhere a query does: workload generators attach
// them to trace records (the v2 binary codec encodes them), the HTTP
// server accepts them on POST /v1/reference, and the cache stores one per
// admitted entry so the deriver can index cached content.

// Descriptor is the serializable plan summary of a derivable query:
//
//	SELECT Cols            FROM Rel WHERE Preds              (scan shape)
//	SELECT GroupBy, Aggs   FROM Rel WHERE Preds GROUP BY ... (aggregate shape)
//
// The shape is an aggregate exactly when len(Aggs) > 0; GroupBy without
// aggregates is a grouped projection and uses the aggregate shape too.
type Descriptor struct {
	// Rel is the scanned base relation.
	Rel string `json:"rel"`
	// Preds are the conjunctive scan predicates.
	Preds []Pred `json:"preds,omitempty"`
	// Cols are the projected output columns of the scan shape. The
	// derivation rules require them to be explicit: an empty Cols means
	// "all columns", whose expansion needs the schema, so such descriptors
	// are never used as rewrite ancestors.
	Cols []string `json:"cols,omitempty"`
	// GroupBy lists the grouping columns of the aggregate shape.
	GroupBy []string `json:"group_by,omitempty"`
	// Aggs lists the aggregate outputs; non-empty selects the aggregate
	// shape.
	Aggs []AggSpec `json:"aggs,omitempty"`
	// Index is the access-path column of the scan, used only for
	// remote-cost estimation; it never affects containment or results.
	Index string `json:"index,omitempty"`
}

// IsAggregate reports whether the descriptor has the aggregate shape.
func (d *Descriptor) IsAggregate() bool { return len(d.Aggs) > 0 || len(d.GroupBy) > 0 }

// Validate reports whether the descriptor is structurally sound. It is
// called at trust boundaries (trace decoding, the HTTP server).
func (d *Descriptor) Validate() error {
	if d.Rel == "" {
		return fmt.Errorf("engine: descriptor: empty relation")
	}
	for i := range d.Preds {
		if d.Preds[i].Col == "" {
			return fmt.Errorf("engine: descriptor: predicate %d has empty column", i)
		}
	}
	for _, g := range d.GroupBy {
		if g == "" {
			return fmt.Errorf("engine: descriptor: empty group-by column")
		}
	}
	for i := range d.Aggs {
		sp := &d.Aggs[i]
		if sp.As == "" {
			return fmt.Errorf("engine: descriptor: aggregate %d missing output name", i)
		}
		if sp.Kind < AggCount || sp.Kind > AggMax {
			return fmt.Errorf("engine: descriptor: aggregate %q has unknown kind %d", sp.As, sp.Kind)
		}
		if sp.Kind != AggCount && sp.Col == "" {
			return fmt.Errorf("engine: descriptor: aggregate %q over empty column", sp.As)
		}
	}
	if len(d.GroupBy) > 0 && len(d.Aggs) == 0 && len(d.Cols) > 0 {
		return fmt.Errorf("engine: descriptor: group-by with projected columns is ambiguous")
	}
	return nil
}

// Plan builds the executable plan tree of the descriptor. The aggregate
// shape scans exactly the columns its grouping and aggregation consume.
func (d *Descriptor) Plan() Node {
	if !d.IsAggregate() {
		return &Scan{Rel: d.Rel, Preds: d.Preds, Index: d.Index, Cols: d.Cols}
	}
	var inCols []string
	seen := make(map[string]bool)
	need := func(c string) {
		if c != "" && !seen[c] {
			seen[c] = true
			inCols = append(inCols, c)
		}
	}
	for _, g := range d.GroupBy {
		need(g)
	}
	for i := range d.Aggs {
		if d.Aggs[i].Kind != AggCount {
			need(d.Aggs[i].Col)
		}
	}
	return &Aggregate{
		Input:   &Scan{Rel: d.Rel, Preds: d.Preds, Index: d.Index, Cols: inCols},
		GroupBy: d.GroupBy,
		Aggs:    d.Aggs,
	}
}

// Describe summarizes a plan tree into a Descriptor when the tree has one
// of the derivable shapes: a Scan, a plain Project over a Scan (no
// renames, no dedup), or an Aggregate over a Scan. Executing the returned
// descriptor's Plan produces the same result as executing n. Any other
// shape returns (nil, false).
func Describe(n Node) (*Descriptor, bool) {
	switch t := n.(type) {
	case *Scan:
		return &Descriptor{Rel: t.Rel, Preds: t.Preds, Cols: t.Cols, Index: t.Index}, true
	case *Project:
		s, ok := t.Input.(*Scan)
		if !ok || t.As != nil || t.Dedup {
			return nil, false
		}
		// Projecting a scan's output is the same rows as scanning the
		// projected columns directly: predicates read the base relation,
		// not the projection.
		return &Descriptor{Rel: s.Rel, Preds: s.Preds, Cols: t.Cols, Index: s.Index}, true
	case *Aggregate:
		s, ok := t.Input.(*Scan)
		if !ok {
			return nil, false
		}
		return &Descriptor{Rel: s.Rel, Preds: s.Preds, GroupBy: t.GroupBy, Aggs: t.Aggs, Index: s.Index}, true
	default:
		return nil, false
	}
}
