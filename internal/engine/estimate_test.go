package engine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/storage"
)

func TestYaoProperties(t *testing.T) {
	// Bounds: 0 ≤ yao(p, m) ≤ min(p, m); monotone in m.
	f := func(pRaw, mRaw uint16) bool {
		p := float64(pRaw%1000) + 1
		m := float64(mRaw % 5000)
		y := yao(p, m)
		if y < 0 || y > p+1e-9 || y > m+1e-9 {
			return false
		}
		return yao(p, m+1) >= y-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Saturation: touching far more rows than pages reads every page.
	if got := yao(100, 1e6); math.Abs(got-100) > 1e-6 {
		t.Fatalf("yao saturation = %g", got)
	}
	// One row touches one page.
	if got := yao(100, 1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("yao(100,1) = %g", got)
	}
	if yao(0, 5) != 0 || yao(10, 0) != 0 {
		t.Fatal("yao edge cases")
	}
}

func TestCardenasProperties(t *testing.T) {
	f := func(dRaw, nRaw uint16) bool {
		d := float64(dRaw%1000) + 1
		n := float64(nRaw % 5000)
		c := cardenas(d, n)
		return c >= 0 && c <= d+1e-9 && c <= n+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if got := cardenas(10, 1e9); math.Abs(got-10) > 1e-6 {
		t.Fatalf("cardenas saturation = %g", got)
	}
}

// estimateVsExec runs both paths and checks the estimate is within rtol of
// the executed truth (for counts) and exact for scan costs.
func estimateVsExec(t *testing.T, e *Engine, n Node, rtol float64) {
	t.Helper()
	est, err := e.Estimate(n)
	if err != nil {
		t.Fatal(err)
	}
	res, cost, err := e.ExecuteCount(n)
	if err != nil {
		t.Fatal(err)
	}
	gotRows := float64(len(res.Rows))
	if gotRows == 0 {
		if est.Rows > 5 {
			t.Fatalf("estimate %.1f rows for empty result", est.Rows)
		}
		return
	}
	if rel := math.Abs(est.Rows-gotRows) / gotRows; rel > rtol {
		t.Fatalf("cardinality estimate %.1f vs actual %d (rel err %.2f > %.2f)",
			est.Rows, len(res.Rows), rel, rtol)
	}
	if relc := math.Abs(est.Cost-float64(cost)) / float64(cost); relc > rtol {
		t.Fatalf("cost estimate %.1f vs actual %d (rel err %.2f)", est.Cost, cost, relc)
	}
}

func TestEstimateScanCrossValidation(t *testing.T) {
	e := New(tinyDB())
	estimateVsExec(t, e, &Scan{Rel: "t"}, 0.01)
	estimateVsExec(t, e, &Scan{Rel: "t", Preds: []Pred{{Col: "grp", Op: OpEQ, Lo: 1}}}, 0.15)
	estimateVsExec(t, e, &Scan{Rel: "t", Preds: []Pred{{Col: "val", Op: OpRange, Lo: 0, Hi: 49}}}, 0.15)
	estimateVsExec(t, e, &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "id", Op: OpRange, Lo: 100, Hi: 499}},
		Index: "id",
	}, 0.05)
}

func TestEstimateJoinCrossValidation(t *testing.T) {
	e := New(tinyDB())
	estimateVsExec(t, e, &Join{
		Left:     &Scan{Rel: "u", Cols: []string{"uid", "tref"}},
		Right:    &Scan{Rel: "t", Cols: []string{"id", "grp"}},
		LeftCol:  "tref",
		RightCol: "id",
	}, 0.05)
}

func TestEstimateAggregateCrossValidation(t *testing.T) {
	e := New(tinyDB())
	estimateVsExec(t, e, &Aggregate{
		Input:   &Scan{Rel: "t", Cols: []string{"grp", "val"}},
		GroupBy: []string{"grp"},
		Aggs:    []AggSpec{{Kind: AggCount, As: "n"}},
	}, 0.05)
	estimateVsExec(t, e, &Aggregate{
		Input: &Scan{Rel: "t", Cols: []string{"val"}},
		Aggs:  []AggSpec{{Kind: AggSum, Col: "val", As: "s"}},
	}, 0.01)
}

func TestEstimateProjectDedupCrossValidation(t *testing.T) {
	e := New(tinyDB())
	estimateVsExec(t, e, &Project{
		Input: &Scan{Rel: "t", Cols: []string{"grp", "cat"}},
		Cols:  []string{"grp", "cat"},
		Dedup: true,
	}, 0.1)
}

func TestEstimateSortLimit(t *testing.T) {
	e := New(tinyDB())
	est, err := e.Estimate(&Sort{
		Input: &Scan{Rel: "t"},
		By:    []string{"val"},
		Limit: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 7 {
		t.Fatalf("limited estimate = %g rows", est.Rows)
	}
}

func TestEstimateSelectivityTightensCards(t *testing.T) {
	e := New(tinyDB())
	est, err := e.Estimate(&Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "grp", Op: OpEQ, Lo: 2}},
		Cols:  []string{"grp", "val"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Schema[0].Card != 1 {
		t.Fatalf("equality predicate must pin the column cardinality, got %g", est.Schema[0].Card)
	}
}

func TestEstimateBytesMatchesRowWidth(t *testing.T) {
	e := New(tinyDB())
	est, err := e.Estimate(&Scan{Rel: "t", Cols: []string{"id", "grp"}})
	if err != nil {
		t.Fatal(err)
	}
	if est.Bytes != est.Rows*12 {
		t.Fatalf("bytes %g != rows %g × 12", est.Bytes, est.Rows)
	}
}

func TestEstimateZeroSelectivity(t *testing.T) {
	e := New(tinyDB())
	est, err := e.Estimate(&Scan{Rel: "t", Preds: []Pred{{Col: "grp", Op: OpEQ, Lo: 99}}})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 0 {
		t.Fatalf("out-of-domain equality must estimate 0 rows, got %g", est.Rows)
	}
	est, err = e.Estimate(&Scan{Rel: "t", Preds: []Pred{{Col: "val", Op: OpRange, Lo: 90, Hi: 10}}})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 0 {
		t.Fatalf("inverted range must estimate 0 rows, got %g", est.Rows)
	}
}

func TestEmitAccessMatchesExecutePages(t *testing.T) {
	// For full scans and clustered ranges, EmitAccess must reference
	// exactly the pages Execute references.
	e := New(tinyDB())
	for _, plan := range []Node{
		&Scan{Rel: "t"},
		&Scan{Rel: "t", Preds: []Pred{{Col: "id", Op: OpRange, Lo: 50, Hi: 449}}, Index: "id"},
		&Join{
			Left:     &Scan{Rel: "u", Cols: []string{"tref"}},
			Right:    &Scan{Rel: "t", Cols: []string{"id"}},
			LeftCol:  "tref",
			RightCol: "id",
		},
	} {
		var fromExec, fromAccess []uint64
		if _, err := e.Execute(plan, storage.SinkFunc(func(id buffer.PageID) {
			fromExec = append(fromExec, uint64(id))
		})); err != nil {
			t.Fatal(err)
		}
		if _, err := e.EmitAccess(plan, 1, storage.SinkFunc(func(id buffer.PageID) {
			fromAccess = append(fromAccess, uint64(id))
		})); err != nil {
			t.Fatal(err)
		}
		if len(fromExec) != len(fromAccess) {
			t.Fatalf("page counts differ: exec %d vs access %d", len(fromExec), len(fromAccess))
		}
		for i := range fromExec {
			if fromExec[i] != fromAccess[i] {
				t.Fatalf("page %d differs", i)
			}
		}
	}
}

func TestEmitAccessUnclusteredDeterministic(t *testing.T) {
	e := New(tinyDB())
	plan := &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "val", Op: OpEQ, Lo: 3}},
		Index: "val",
	}
	collect := func(seed uint64) []uint64 {
		var out []uint64
		if _, err := e.EmitAccess(plan, seed, storage.SinkFunc(func(id buffer.PageID) {
			out = append(out, uint64(id))
		})); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(42), collect(42)
	if len(a) != len(b) {
		t.Fatal("same seed produced different page counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different pages")
		}
	}
	c := collect(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical page sets (suspicious)")
	}
	// Cost returned must equal pages emitted and be close to the Yao
	// estimate used by Estimate.
	n, err := e.EmitAccess(plan, 7, &storage.CountingSink{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(n)-est.Cost) > est.Cost*0.2+2 {
		t.Fatalf("access pages %d vs estimated cost %g", n, est.Cost)
	}
}
