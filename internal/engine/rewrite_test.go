package engine

import "testing"

// desc helpers for the containment tests.
func scanDesc(rel string, preds []Pred, cols ...string) *Descriptor {
	return &Descriptor{Rel: rel, Preds: preds, Cols: cols}
}

func dayRange(lo, hi int64) Pred {
	return Pred{Col: "day", Op: OpRange, Lo: lo, Hi: hi}
}

// TestSubsumesNegatives pins every rejection rule: containment must fail
// closed, because a false positive would serve wrong rows.
func TestSubsumesNegatives(t *testing.T) {
	detail := scanDesc("fact", []Pred{dayRange(10, 40)}, "day", "cat", "amt")
	cube := &Descriptor{
		Rel:     "fact",
		Preds:   []Pred{dayRange(10, 40)},
		GroupBy: []string{"day", "cat"},
		Aggs:    []AggSpec{{Kind: AggSum, Col: "amt", As: "s"}},
	}
	cases := []struct {
		name string
		anc  *Descriptor
		q    *Descriptor
	}{
		{"different-relation", detail, scanDesc("other", []Pred{dayRange(12, 20)}, "day")},
		{"wider-predicate", detail, scanDesc("fact", []Pred{dayRange(5, 20)}, "day")},
		{"missing-predicate-column", detail, scanDesc("fact", nil, "day")},
		{"residual-column-not-projected", detail, scanDesc("fact",
			[]Pred{dayRange(12, 20), {Col: "flag", Op: OpEQ, Lo: 1}}, "day")},
		{"projection-not-available", detail, scanDesc("fact", []Pred{dayRange(12, 20)}, "flag")},
		{"implicit-all-columns-query", detail, scanDesc("fact", []Pred{dayRange(12, 20)})},
		{"implicit-all-columns-ancestor", scanDesc("fact", []Pred{dayRange(10, 40)}),
			scanDesc("fact", []Pred{dayRange(12, 20)}, "day")},
		{"scan-from-aggregate", cube, scanDesc("fact", []Pred{dayRange(10, 40)}, "day", "cat")},
		{"groupby-not-subset", cube, &Descriptor{
			Rel: "fact", Preds: []Pred{dayRange(10, 40)},
			GroupBy: []string{"flag"},
			Aggs:    []AggSpec{{Kind: AggSum, Col: "amt", As: "s"}},
		}},
		{"aggregate-not-derivable", cube, &Descriptor{
			Rel: "fact", Preds: []Pred{dayRange(10, 40)},
			GroupBy: []string{"cat"},
			Aggs:    []AggSpec{{Kind: AggMin, Col: "amt", As: "mn"}}, // cube has no MIN partial
		}},
		{"avg-needs-count", cube, &Descriptor{
			Rel: "fact", Preds: []Pred{dayRange(10, 40)},
			GroupBy: []string{"cat"},
			Aggs:    []AggSpec{{Kind: AggAvg, Col: "amt", As: "a"}}, // cube has no COUNT partial
		}},
		{"residual-on-aggregated-column", cube, &Descriptor{
			Rel: "fact", Preds: []Pred{dayRange(10, 40), {Col: "amt", Op: OpEQ, Lo: 5}},
			GroupBy: []string{"cat"},
			Aggs:    []AggSpec{{Kind: AggSum, Col: "amt", As: "s"}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if Subsumes(tc.anc, tc.q) {
				t.Fatalf("Subsumes accepted an underivable pair:\nanc %+v\nq   %+v", tc.anc, tc.q)
			}
			if _, err := Rewrite(tc.anc, tc.q, &Result{}); err == nil {
				t.Fatal("Rewrite must refuse an underivable pair")
			}
		})
	}
}

// TestDescribePlanRoundTrip checks Describe captures the derivable shapes
// and that the descriptor's Plan rebuilds an equivalent tree.
func TestDescribePlanRoundTrip(t *testing.T) {
	scan := &Scan{Rel: "fact", Preds: []Pred{dayRange(1, 5)}, Index: "day", Cols: []string{"day", "amt"}}
	agg := &Aggregate{Input: scan, GroupBy: []string{"day"},
		Aggs: []AggSpec{{Kind: AggSum, Col: "amt", As: "s"}}}

	d, ok := Describe(scan)
	if !ok || d.IsAggregate() || d.Rel != "fact" || len(d.Cols) != 2 {
		t.Fatalf("Describe(scan) = %+v, %v", d, ok)
	}
	if _, ok := d.Plan().(*Scan); !ok {
		t.Fatalf("scan descriptor rebuilt as %T", d.Plan())
	}

	d, ok = Describe(agg)
	if !ok || !d.IsAggregate() || len(d.GroupBy) != 1 || len(d.Aggs) != 1 {
		t.Fatalf("Describe(agg) = %+v, %v", d, ok)
	}
	a, ok := d.Plan().(*Aggregate)
	if !ok {
		t.Fatalf("aggregate descriptor rebuilt as %T", d.Plan())
	}
	if s, ok := a.Input.(*Scan); !ok || len(s.Cols) != 2 {
		t.Fatalf("rebuilt aggregate input = %+v", a.Input)
	}

	// Underivable shapes: joins, renames, dedup.
	if _, ok := Describe(&Join{Left: scan, Right: scan, LeftCol: "day", RightCol: "day"}); ok {
		t.Fatal("Describe accepted a join")
	}
	if _, ok := Describe(&Project{Input: scan, Cols: []string{"day"}, As: []string{"d"}}); ok {
		t.Fatal("Describe accepted a renaming projection")
	}
	if _, ok := Describe(&Project{Input: scan, Cols: []string{"day"}, Dedup: true}); ok {
		t.Fatal("Describe accepted a dedup projection")
	}
	if d, ok := Describe(&Project{Input: scan, Cols: []string{"day"}}); !ok || len(d.Cols) != 1 {
		t.Fatalf("Describe(plain project over scan) = %+v, %v", d, ok)
	}
}

func TestDeriveCost(t *testing.T) {
	if got := DeriveCost(0, 4096); got != 1 {
		t.Fatalf("DeriveCost(0) = %g, want 1", got)
	}
	if got := DeriveCost(4096, 4096); got != 1 {
		t.Fatalf("DeriveCost(one page) = %g, want 1", got)
	}
	if got := DeriveCost(4097, 4096); got != 2 {
		t.Fatalf("DeriveCost(one page + 1) = %g, want 2", got)
	}
	if got := DeriveCost(1<<20, 0); got != 256 {
		t.Fatalf("DeriveCost(1MiB, default page) = %g, want 256", got)
	}
}
