// Package engine is the mini query engine behind the WATCHMAN reproduction.
// It stands in for the Oracle 7 installation the paper collected traces from
// (§4.1) and provides three evaluation paths over the synthetic databases in
// package relation:
//
//   - Estimate: closed-form cardinality/size/cost estimation. Cost is
//     measured in logical block reads, the paper's cost metric ("the number
//     of disk block reads which would be done if no buffers were
//     available"), so it is independent of buffer state.
//   - EmitAccess: the page-reference pattern of a plan, streamed to a sink
//     (usually the buffer pool) without materializing rows. Used by the
//     buffer-interaction experiment (Figure 7).
//   - Execute: actual row-at-a-time execution over the deterministic tuple
//     generators, used at small scale to validate the estimator and by the
//     runnable examples.
//
// Plans are trees of Scan, Join, Aggregate, Project and Sort nodes. Only
// scans incur cost: the paper's workloads are I/O-dominated and all
// operators above the scans run in memory.
package engine

import (
	"fmt"

	"repro/internal/relation"
)

// ColRef describes one column of an operator's output.
type ColRef struct {
	// Rel is the base relation the column originates from, or "" for
	// computed columns (aggregates).
	Rel string
	// Name is the output column name, unique within a schema.
	Name string
	// Width is the stored width in bytes; result sizes are row count times
	// the sum of widths.
	Width int
	// Card is the estimated number of distinct values in this column of
	// the operator's output.
	Card float64
}

// Schema is an ordered list of output columns.
type Schema []ColRef

// Index returns the position of the named column or −1.
func (s Schema) Index(name string) int {
	for i := range s {
		if s[i].Name == name {
			return i
		}
	}
	return -1
}

// RowWidth returns the byte width of one output row.
func (s Schema) RowWidth() int {
	w := 0
	for i := range s {
		w += s[i].Width
	}
	return w
}

// Op is a predicate comparison operator.
type Op int

const (
	// OpEQ matches values equal to Lo.
	OpEQ Op = iota
	// OpRange matches values in the closed interval [Lo, Hi].
	OpRange
)

// Pred is a predicate over one column of a scan's relation. All predicates
// on a scan are conjunctive.
type Pred struct {
	Col string `json:"col"`
	Op  Op     `json:"op"`
	Lo  int64  `json:"lo"`
	Hi  int64  `json:"hi"` // used by OpRange only
}

// matches reports whether v satisfies the predicate.
func (p *Pred) matches(v int64) bool {
	switch p.Op {
	case OpEQ:
		return v == p.Lo
	default:
		return v >= p.Lo && v <= p.Hi
	}
}

// selectivity returns the matching fraction of a column with the given
// cardinality, assuming uniform values in [0, card).
func (p *Pred) selectivity(card int64) float64 {
	if card <= 0 {
		return 1
	}
	switch p.Op {
	case OpEQ:
		if p.Lo < 0 || p.Lo >= card {
			return 0
		}
		return 1 / float64(card)
	default:
		lo, hi := p.Lo, p.Hi
		if lo < 0 {
			lo = 0
		}
		if hi >= card {
			hi = card - 1
		}
		if hi < lo {
			return 0
		}
		return float64(hi-lo+1) / float64(card)
	}
}

// Node is a relational operator in a plan tree.
type Node interface {
	// Schema resolves the operator's output schema against the database.
	Schema(db *relation.Database) (Schema, error)
}

// Scan reads a base relation, applies conjunctive predicates and projects
// columns. If Index names a column with a usable predicate, the scan is an
// index scan: it touches only the pages that hold matching tuples (clustered
// range access on sequential columns, Yao-estimated page subsets otherwise).
type Scan struct {
	Rel   string
	Preds []Pred
	// Index is the access-path column, or "" for a full sequential scan.
	Index string
	// Cols are the projected column names; empty means all columns.
	Cols []string
}

// Schema implements Node.
func (s *Scan) Schema(db *relation.Database) (Schema, error) {
	rel, err := db.Relation(s.Rel)
	if err != nil {
		return nil, err
	}
	names := s.Cols
	if len(names) == 0 {
		names = make([]string, len(rel.Columns))
		for i := range rel.Columns {
			names[i] = rel.Columns[i].Name
		}
	}
	out := make(Schema, len(names))
	for i, n := range names {
		ci, err := rel.ColumnIndex(n)
		if err != nil {
			return nil, err
		}
		c := &rel.Columns[ci]
		out[i] = ColRef{Rel: rel.Name, Name: c.Name, Width: c.Width, Card: float64(rel.Cardinality(ci))}
	}
	return out, nil
}

// Join is an equi-join of two inputs on one column from each side. The
// output schema is the concatenation of the input schemas; column names must
// remain unique (TPC-D's per-relation prefixes guarantee this).
type Join struct {
	Left, Right Node
	// LeftCol and RightCol name the join columns in the respective input
	// schemas.
	LeftCol, RightCol string
}

// Schema implements Node.
func (j *Join) Schema(db *relation.Database) (Schema, error) {
	ls, err := j.Left.Schema(db)
	if err != nil {
		return nil, err
	}
	rs, err := j.Right.Schema(db)
	if err != nil {
		return nil, err
	}
	if ls.Index(j.LeftCol) < 0 {
		return nil, fmt.Errorf("engine: join: left input has no column %q", j.LeftCol)
	}
	if rs.Index(j.RightCol) < 0 {
		return nil, fmt.Errorf("engine: join: right input has no column %q", j.RightCol)
	}
	out := make(Schema, 0, len(ls)+len(rs))
	out = append(out, ls...)
	for _, c := range rs {
		if out.Index(c.Name) >= 0 {
			return nil, fmt.Errorf("engine: join: duplicate output column %q", c.Name)
		}
		out = append(out, c)
	}
	return out, nil
}

// AggKind enumerates the supported aggregate functions.
type AggKind int

const (
	// AggCount is COUNT(*).
	AggCount AggKind = iota
	// AggSum is SUM(col).
	AggSum
	// AggAvg is AVG(col), computed with integer division at finalize.
	AggAvg
	// AggMin is MIN(col).
	AggMin
	// AggMax is MAX(col).
	AggMax
)

// String returns the SQL-ish name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	default:
		return "max"
	}
}

// AggSpec is one aggregate output of an Aggregate node.
type AggSpec struct {
	Kind AggKind `json:"kind"`
	// Col is the aggregated input column; ignored by AggCount.
	Col string `json:"col,omitempty"`
	// As is the output column name.
	As string `json:"as"`
}

// Aggregate groups its input by the GroupBy columns and computes the Aggs.
// With no GroupBy columns it produces exactly one row (scalar aggregation),
// the shape of most of the paper's "statistical" warehouse queries.
type Aggregate struct {
	Input   Node
	GroupBy []string
	Aggs    []AggSpec
}

// aggWidth is the output width of an aggregate column.
const aggWidth = 8

// Schema implements Node.
func (a *Aggregate) Schema(db *relation.Database) (Schema, error) {
	in, err := a.Input.Schema(db)
	if err != nil {
		return nil, err
	}
	out := make(Schema, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		i := in.Index(g)
		if i < 0 {
			return nil, fmt.Errorf("engine: aggregate: no group-by column %q", g)
		}
		out = append(out, in[i])
	}
	for _, sp := range a.Aggs {
		if sp.As == "" {
			return nil, fmt.Errorf("engine: aggregate: %s missing output name", sp.Kind)
		}
		if out.Index(sp.As) >= 0 {
			return nil, fmt.Errorf("engine: aggregate: duplicate output column %q", sp.As)
		}
		if sp.Kind != AggCount {
			if in.Index(sp.Col) < 0 {
				return nil, fmt.Errorf("engine: aggregate: %s over unknown column %q", sp.Kind, sp.Col)
			}
		}
		out = append(out, ColRef{Name: sp.As, Width: aggWidth, Card: 0})
	}
	return out, nil
}

// Project restricts the output columns of its input and optionally removes
// duplicate rows. A multi-attribute dedup projection over a large relation
// is the paper's canonical example of a cheap query with a huge retrieved
// set — the case the admission algorithm exists to guard against.
type Project struct {
	Input Node
	Cols  []string
	// As optionally renames the output columns; when non-nil it must have
	// the same length as Cols. Renaming disambiguates self-joins.
	As    []string
	Dedup bool
}

// Schema implements Node.
func (p *Project) Schema(db *relation.Database) (Schema, error) {
	in, err := p.Input.Schema(db)
	if err != nil {
		return nil, err
	}
	if len(p.Cols) == 0 {
		return nil, fmt.Errorf("engine: project: no columns")
	}
	if p.As != nil && len(p.As) != len(p.Cols) {
		return nil, fmt.Errorf("engine: project: %d aliases for %d columns", len(p.As), len(p.Cols))
	}
	out := make(Schema, len(p.Cols))
	for i, n := range p.Cols {
		j := in.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("engine: project: no column %q", n)
		}
		out[i] = in[j]
		if p.As != nil && p.As[i] != "" {
			out[i].Name = p.As[i]
		}
	}
	return out, nil
}

// Sort orders its input by the By columns (ascending, or descending when
// Desc is set) and truncates to Limit rows when Limit > 0.
type Sort struct {
	Input Node
	By    []string
	Desc  bool
	// Limit truncates output to the first Limit rows; 0 means no limit.
	Limit int64
}

// Schema implements Node.
func (s *Sort) Schema(db *relation.Database) (Schema, error) {
	in, err := s.Input.Schema(db)
	if err != nil {
		return nil, err
	}
	for _, b := range s.By {
		if in.Index(b) < 0 {
			return nil, fmt.Errorf("engine: sort: no column %q", b)
		}
	}
	if s.Limit < 0 {
		return nil, fmt.Errorf("engine: sort: negative limit %d", s.Limit)
	}
	return in, nil
}

// BaseRelations returns the names of all base relations read by the plan,
// in first-visit order. The cache-coherence hook invalidates cached
// retrieved sets by these names.
func BaseRelations(n Node) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Scan:
			if !seen[t.Rel] {
				seen[t.Rel] = true
				out = append(out, t.Rel)
			}
		case *Join:
			walk(t.Left)
			walk(t.Right)
		case *Aggregate:
			walk(t.Input)
		case *Project:
			walk(t.Input)
		case *Sort:
			walk(t.Input)
		}
	}
	walk(n)
	return out
}
