package engine

import (
	"math"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

// tinyDB builds a small custom database with known contents for exact
// executor checks: values are deterministic functions the tests can
// recompute independently.
func tinyDB() *relation.Database {
	db := &relation.Database{
		Name:     "tiny",
		PageSize: 512,
		Relations: map[string]*relation.Relation{
			"t": {
				Name: "t", Rows: 1000, Seed: 0x7357,
				Columns: []relation.Column{
					{Name: "id", Kind: relation.KindSequential, Width: 8},
					{Name: "grp", Kind: relation.KindUniform, Cardinality: 4, Width: 4},
					{Name: "val", Kind: relation.KindUniform, Cardinality: 100, Width: 8},
					{Name: "cat", Kind: relation.KindUniform, Cardinality: 10, Width: 4},
				},
			},
			"u": {
				Name: "u", Rows: 200, Seed: 0xcafe,
				Columns: []relation.Column{
					{Name: "uid", Kind: relation.KindSequential, Width: 8},
					{Name: "tref", Kind: relation.KindForeign, Cardinality: 1000, Width: 8, Parent: "t"},
					{Name: "w", Kind: relation.KindUniform, Cardinality: 50, Width: 4},
				},
			},
		},
	}
	if err := db.Validate(); err != nil {
		panic(err)
	}
	return db
}

func mustExec(t *testing.T, e *Engine, n Node) (*Result, int64) {
	t.Helper()
	res, cost, err := e.ExecuteCount(n)
	if err != nil {
		t.Fatal(err)
	}
	return res, cost
}

func TestScanFullTable(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, cost := mustExec(t, e, &Scan{Rel: "t"})
	if len(res.Rows) != 1000 {
		t.Fatalf("rows = %d, want 1000", len(res.Rows))
	}
	if cost != db.MustRelation("t").Pages(db.PageSize) {
		t.Fatalf("cost = %d, want full page count", cost)
	}
	if res.Schema.RowWidth() != 24 {
		t.Fatalf("row width = %d", res.Schema.RowWidth())
	}
}

func TestScanFilterMatchesManualCount(t *testing.T) {
	db := tinyDB()
	e := New(db)
	rel := db.MustRelation("t")
	grp := rel.MustColumnIndex("grp")
	want := 0
	for row := int64(0); row < rel.Rows; row++ {
		if rel.Value(row, grp) == 2 {
			want++
		}
	}
	res, _ := mustExec(t, e, &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "grp", Op: OpEQ, Lo: 2}},
		Cols:  []string{"id"},
	})
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestScanRangePredicate(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, _ := mustExec(t, e, &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "val", Op: OpRange, Lo: 10, Hi: 19}},
		Cols:  []string{"val"},
	})
	for _, row := range res.Rows {
		if row[0] < 10 || row[0] > 19 {
			t.Fatalf("value %d outside range", row[0])
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("range should match something")
	}
}

func TestClusteredIndexScan(t *testing.T) {
	db := tinyDB()
	e := New(db)
	full, _ := mustExec(t, e, &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "id", Op: OpRange, Lo: 100, Hi: 299}},
		Cols:  []string{"id"},
	})
	indexed, cost := mustExec(t, e, &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "id", Op: OpRange, Lo: 100, Hi: 299}},
		Index: "id",
		Cols:  []string{"id"},
	})
	if len(indexed.Rows) != len(full.Rows) || len(indexed.Rows) != 200 {
		t.Fatalf("indexed rows = %d, full = %d, want 200", len(indexed.Rows), len(full.Rows))
	}
	rel := db.MustRelation("t")
	rpp := rel.RowsPerPage(db.PageSize)
	wantPages := 299/rpp - 100/rpp + 1
	if cost != wantPages {
		t.Fatalf("clustered range cost = %d, want %d", cost, wantPages)
	}
}

func TestClusteredIndexScanEQ(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, cost := mustExec(t, e, &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "id", Op: OpEQ, Lo: 42}},
		Index: "id",
	})
	if len(res.Rows) != 1 || res.Rows[0][0] != 42 {
		t.Fatalf("point lookup failed: %v", res.Rows)
	}
	if cost != 1 {
		t.Fatalf("point lookup cost = %d, want 1", cost)
	}
}

func TestClusteredIndexScanEmptyRange(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, cost := mustExec(t, e, &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "id", Op: OpRange, Lo: 5000, Hi: 6000}},
		Index: "id",
	})
	if len(res.Rows) != 0 || cost != 0 {
		t.Fatalf("empty range: rows=%d cost=%d", len(res.Rows), cost)
	}
}

func TestUnclusteredIndexScan(t *testing.T) {
	db := tinyDB()
	e := New(db)
	// Same result set as a full scan with the predicate, cheaper access.
	full, fullCost := mustExec(t, e, &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "val", Op: OpEQ, Lo: 7}},
		Cols:  []string{"id"},
	})
	idx, idxCost := mustExec(t, e, &Scan{
		Rel:   "t",
		Preds: []Pred{{Col: "val", Op: OpEQ, Lo: 7}},
		Index: "val",
		Cols:  []string{"id"},
	})
	if len(full.Rows) != len(idx.Rows) {
		t.Fatalf("index scan changed the result: %d vs %d", len(idx.Rows), len(full.Rows))
	}
	if idxCost > fullCost {
		t.Fatalf("index scan cost %d > full scan %d", idxCost, fullCost)
	}
	if idxCost <= 0 {
		t.Fatal("index scan with matches must read pages")
	}
}

func TestUnclusteredIndexResidualPredicates(t *testing.T) {
	db := tinyDB()
	e := New(db)
	// The index drives on val; grp is residual. Pages are charged for all
	// index matches, rows filtered afterward.
	plain, _ := mustExec(t, e, &Scan{
		Rel: "t",
		Preds: []Pred{
			{Col: "val", Op: OpEQ, Lo: 7},
			{Col: "grp", Op: OpEQ, Lo: 1},
		},
		Cols: []string{"id"},
	})
	idx, _ := mustExec(t, e, &Scan{
		Rel: "t",
		Preds: []Pred{
			{Col: "val", Op: OpEQ, Lo: 7},
			{Col: "grp", Op: OpEQ, Lo: 1},
		},
		Index: "val",
		Cols:  []string{"id"},
	})
	if len(plain.Rows) != len(idx.Rows) {
		t.Fatalf("residual filtering broken: %d vs %d", len(idx.Rows), len(plain.Rows))
	}
}

func TestJoinMatchesNestedLoop(t *testing.T) {
	db := tinyDB()
	e := New(db)
	join := &Join{
		Left:     &Scan{Rel: "u", Cols: []string{"uid", "tref"}},
		Right:    &Scan{Rel: "t", Cols: []string{"id", "grp"}},
		LeftCol:  "tref",
		RightCol: "id",
	}
	res, cost := mustExec(t, e, join)

	// Reference: nested loop over the generators.
	tt := db.MustRelation("t")
	uu := db.MustRelation("u")
	trefCol := uu.MustColumnIndex("tref")
	want := 0
	for urow := int64(0); urow < uu.Rows; urow++ {
		ref := uu.Value(urow, trefCol)
		if ref >= 0 && ref < tt.Rows {
			want++ // id is sequential: exactly one match
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("join rows = %d, want %d", len(res.Rows), want)
	}
	wantCost := uu.Pages(db.PageSize) + tt.Pages(db.PageSize)
	if cost != wantCost {
		t.Fatalf("join cost = %d, want %d (sum of scans)", cost, wantCost)
	}
	// Verify the join columns really match on every output row.
	s := res.Schema
	li, ri := s.Index("tref"), s.Index("id")
	for _, row := range res.Rows {
		if row[li] != row[ri] {
			t.Fatal("join produced non-matching pair")
		}
	}
}

func TestAggregateScalar(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, _ := mustExec(t, e, &Aggregate{
		Input: &Scan{Rel: "t", Cols: []string{"val"}},
		Aggs: []AggSpec{
			{Kind: AggCount, As: "n"},
			{Kind: AggSum, Col: "val", As: "s"},
			{Kind: AggAvg, Col: "val", As: "a"},
			{Kind: AggMin, Col: "val", As: "lo"},
			{Kind: AggMax, Col: "val", As: "hi"},
		},
	})
	if len(res.Rows) != 1 {
		t.Fatalf("scalar aggregate rows = %d", len(res.Rows))
	}
	rel := db.MustRelation("t")
	vc := rel.MustColumnIndex("val")
	var sum, lo, hi int64
	lo, hi = math.MaxInt64, math.MinInt64
	for row := int64(0); row < rel.Rows; row++ {
		v := rel.Value(row, vc)
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	got := res.Rows[0]
	if got[0] != 1000 || got[1] != sum || got[2] != sum/1000 || got[3] != lo || got[4] != hi {
		t.Fatalf("aggregates = %v, want [1000 %d %d %d %d]", got, sum, sum/1000, lo, hi)
	}
}

func TestAggregateGroupBy(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, _ := mustExec(t, e, &Aggregate{
		Input:   &Scan{Rel: "t", Cols: []string{"grp", "val"}},
		GroupBy: []string{"grp"},
		Aggs:    []AggSpec{{Kind: AggCount, As: "n"}, {Kind: AggSum, Col: "val", As: "s"}},
	})
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}
	// Output must be sorted by group key and counts must total the rows.
	var total int64
	for i, row := range res.Rows {
		if int64(i) != row[0] {
			t.Fatalf("groups not sorted: %v", res.Rows)
		}
		total += row[1]
	}
	if total != 1000 {
		t.Fatalf("group counts sum to %d", total)
	}
}

func TestAggregateEmptyScalar(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, _ := mustExec(t, e, &Aggregate{
		Input: &Scan{Rel: "t", Preds: []Pred{{Col: "val", Op: OpEQ, Lo: -5}}, Cols: []string{"val"}},
		Aggs:  []AggSpec{{Kind: AggCount, As: "n"}, {Kind: AggSum, Col: "val", As: "s"}},
	})
	if len(res.Rows) != 1 || res.Rows[0][0] != 0 || res.Rows[0][1] != 0 {
		t.Fatalf("empty scalar aggregation = %v, want one zero row", res.Rows)
	}
}

func TestProjectDedup(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, _ := mustExec(t, e, &Project{
		Input: &Scan{Rel: "t", Cols: []string{"grp"}},
		Cols:  []string{"grp"},
		Dedup: true,
	})
	if len(res.Rows) != 4 {
		t.Fatalf("distinct grp = %d rows, want 4", len(res.Rows))
	}
}

func TestProjectRename(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, _ := mustExec(t, e, &Project{
		Input: &Scan{Rel: "t", Cols: []string{"grp", "val"}},
		Cols:  []string{"grp", "val"},
		As:    []string{"g2", ""},
	})
	if res.Schema[0].Name != "g2" || res.Schema[1].Name != "val" {
		t.Fatalf("renamed schema = %v", res.Schema)
	}
}

func TestSelfJoinViaRename(t *testing.T) {
	db := tinyDB()
	e := New(db)
	join := &Join{
		Left: &Scan{Rel: "t", Preds: []Pred{{Col: "id", Op: OpRange, Lo: 0, Hi: 49}}, Index: "id", Cols: []string{"id", "cat"}},
		Right: &Project{
			Input: &Scan{Rel: "t", Cols: []string{"cat"}},
			Cols:  []string{"cat"},
			As:    []string{"cat2"},
		},
		LeftCol:  "cat",
		RightCol: "cat2",
	}
	res, _ := mustExec(t, e, join)
	if len(res.Rows) == 0 {
		t.Fatal("self join returned nothing")
	}
	s := res.Schema
	a, b := s.Index("cat"), s.Index("cat2")
	for _, row := range res.Rows {
		if row[a] != row[b] {
			t.Fatal("self-join pair mismatch")
		}
	}
}

func TestSortAndLimit(t *testing.T) {
	db := tinyDB()
	e := New(db)
	res, _ := mustExec(t, e, &Sort{
		Input: &Scan{Rel: "t", Cols: []string{"val", "id"}},
		By:    []string{"val"},
		Desc:  true,
		Limit: 10,
	})
	if len(res.Rows) != 10 {
		t.Fatalf("limit produced %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][0] > res.Rows[i-1][0] {
			t.Fatal("descending sort violated")
		}
	}
	asc, _ := mustExec(t, e, &Sort{
		Input: &Scan{Rel: "t", Cols: []string{"val"}},
		By:    []string{"val"},
	})
	for i := 1; i < len(asc.Rows); i++ {
		if asc.Rows[i][0] < asc.Rows[i-1][0] {
			t.Fatal("ascending sort violated")
		}
	}
}

func TestSchemaErrors(t *testing.T) {
	db := tinyDB()
	nodes := []Node{
		&Scan{Rel: "missing"},
		&Scan{Rel: "t", Cols: []string{"missing"}},
		&Join{Left: &Scan{Rel: "t"}, Right: &Scan{Rel: "u"}, LeftCol: "missing", RightCol: "uid"},
		&Join{Left: &Scan{Rel: "t"}, Right: &Scan{Rel: "u"}, LeftCol: "id", RightCol: "missing"},
		&Join{Left: &Scan{Rel: "t", Cols: []string{"id"}}, Right: &Scan{Rel: "t", Cols: []string{"id"}}, LeftCol: "id", RightCol: "id"},
		&Aggregate{Input: &Scan{Rel: "t"}, GroupBy: []string{"missing"}},
		&Aggregate{Input: &Scan{Rel: "t"}, Aggs: []AggSpec{{Kind: AggSum, Col: "missing", As: "x"}}},
		&Aggregate{Input: &Scan{Rel: "t"}, Aggs: []AggSpec{{Kind: AggSum, Col: "val"}}},
		&Aggregate{Input: &Scan{Rel: "t"}, GroupBy: []string{"grp"}, Aggs: []AggSpec{{Kind: AggCount, As: "grp"}}},
		&Project{Input: &Scan{Rel: "t"}},
		&Project{Input: &Scan{Rel: "t"}, Cols: []string{"missing"}},
		&Project{Input: &Scan{Rel: "t"}, Cols: []string{"id"}, As: []string{"a", "b"}},
		&Sort{Input: &Scan{Rel: "t"}, By: []string{"missing"}},
		&Sort{Input: &Scan{Rel: "t"}, Limit: -1},
	}
	for i, n := range nodes {
		if _, err := n.Schema(db); err == nil {
			t.Errorf("node %d: expected schema error", i)
		}
	}
}

func TestBaseRelations(t *testing.T) {
	plan := &Aggregate{
		Input: &Join{
			Left:    &Scan{Rel: "u"},
			Right:   &Sort{Input: &Project{Input: &Scan{Rel: "t"}, Cols: []string{"id"}}, By: []string{"id"}},
			LeftCol: "tref", RightCol: "id",
		},
		Aggs: []AggSpec{{Kind: AggCount, As: "n"}},
	}
	rels := BaseRelations(plan)
	if len(rels) != 2 || rels[0] != "u" || rels[1] != "t" {
		t.Fatalf("base relations = %v", rels)
	}
}

func TestResultBytes(t *testing.T) {
	r := &Result{Schema: Schema{{Name: "a", Width: 8}, {Name: "b", Width: 4}}}
	if r.Bytes() != 12 {
		t.Fatalf("empty result bytes = %d, want one row width", r.Bytes())
	}
	r.Rows = [][]int64{{1, 2}, {3, 4}, {5, 6}}
	if r.Bytes() != 36 {
		t.Fatalf("bytes = %d, want 36", r.Bytes())
	}
}

func TestExecuteUnknownNode(t *testing.T) {
	e := New(tinyDB())
	if _, err := e.Execute(nil, &storage.CountingSink{}); err == nil {
		t.Fatal("nil node must error")
	}
	if _, err := e.Estimate(nil); err == nil {
		t.Fatal("nil node must error in estimate")
	}
	if _, err := e.EmitAccess(nil, 0, &storage.CountingSink{}); err == nil {
		t.Fatal("nil node must error in access")
	}
}
